// Command simdserve runs the HTTP/JSON search service over the simulated
// SIMD machine: submit job specs, poll results, cancel jobs, and scrape
// runtime metrics.  Results are deterministic in the job spec, so the
// service caches them by canonical spec hash.  With -spool DIR, running
// jobs checkpoint into DIR and a restarted server resumes any job a
// previous process left interrupted, completing it to the identical
// result.
//
// The traffic layer (internal/traffic) fronts the service by default:
// batch submission (POST /v1/jobs:batch), single-flight collapsing of
// concurrent identical specs, SSE progress streams
// (GET /v1/jobs/{id}/events, resumable via Last-Event-ID), cost
// estimation (POST /v1/estimate), and deficit-round-robin tenant
// fairness keyed on the X-Tenant header (-fair=false restores the
// global FIFO; -tenant-quota bounds one tenant's outstanding jobs).
//
// Quickstart:
//
//	simdserve -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{
//	  "domain": "puzzle", "scheme": "GP-DK", "p": 256,
//	  "puzzle": {"seed": 5, "steps": 16}
//	}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simdtree/internal/server"
	"simdtree/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simdserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent job executors")
		queueSize   = flag.Int("queue", 64, "bounded job queue size (full queue returns 429)")
		cacheSize   = flag.Int("cache", 512, "result cache capacity in entries")
		history     = flag.Int("history", 4096, "finished jobs kept addressable")
		timeout     = flag.Duration("timeout", 5*time.Minute, "default per-job deadline (0 = none)")
		simWorkers  = flag.Int("simworkers", 0, "goroutines per simulated cycle (0 = sequential; never changes results)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for running jobs")
		spool       = flag.String("spool", "", "directory for crash-recovery job checkpoints (empty = disabled); on startup interrupted jobs found there are resumed")
		ckptEvery   = flag.Int("checkpoint-every", 1000, "cycles between spooled checkpoints of a running job (needs -spool)")
		memBudget   = flag.Int64("mem-budget", 0, "default per-job memory budget in bytes for simulated stack storage (0 = unbounded); budgeted jobs spill cold stack levels to disk with identical results")
		memLimit    = flag.Int64("mem-limit", 0, "refuse specs whose predicted peak resident memory exceeds this many bytes unless they set mem_budget (0 = no check)")
		enablePprof = flag.Bool("pprof", false, "serve the net/http/pprof profiling endpoints under /debug/pprof/ (exposes internals; enable only on trusted networks)")

		fair          = flag.Bool("fair", true, "per-tenant deficit-round-robin scheduling (X-Tenant header); false restores the global FIFO")
		quantum       = flag.Float64("quantum", 1, "DRR cost units granted per tenant visit (needs -fair)")
		tenantQuota   = flag.Int("tenant-quota", 0, "max outstanding jobs per tenant (0 = unlimited)")
		maxBatch      = flag.Int("max-batch", 64, "max specs per POST /v1/jobs:batch request")
		heartbeat     = flag.Duration("sse-heartbeat", 15*time.Second, "SSE comment-heartbeat cadence on /v1/jobs/{id}/events")
		progressEvery = flag.Int("progress-every", 250, "cycles between SSE progress events (negative = disabled)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	var drr *traffic.DRR
	var sched server.Scheduler
	if *fair {
		drr = traffic.NewDRR(*queueSize, *quantum)
		sched = drr
	}
	svc, err := server.New(server.Config{
		Workers:         *workers,
		QueueSize:       *queueSize,
		CacheSize:       *cacheSize,
		JobHistory:      *history,
		DefaultTimeout:  *timeout,
		SimWorkers:      *simWorkers,
		Spool:           *spool,
		CheckpointEvery: *ckptEvery,
		EnablePprof:     *enablePprof,
		DrainTimeout:    *drain,
		Scheduler:       sched,
		ProgressEvery:   *progressEvery,
		MemBudget:       *memBudget,
	})
	if err != nil {
		return err
	}
	frontend := traffic.New(svc, drr, traffic.Config{
		MaxBatch:       *maxBatch,
		TenantQuota:    *tenantQuota,
		HeartbeatEvery: *heartbeat,
		MemLimit:       *memLimit,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           frontend.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "simdserve: listening on %s (workers=%d queue=%d cache=%d)\n",
			*addr, *workers, *queueSize, *cacheSize)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "simdserve: shutting down, draining jobs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), svc.DrainTimeout())
	defer cancel()
	httpErr := httpSrv.Shutdown(drainCtx)
	svcErr := svc.Shutdown(drainCtx)
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	if svcErr != nil {
		return fmt.Errorf("drain incomplete: %w", svcErr)
	}
	fmt.Fprintln(os.Stderr, "simdserve: drained cleanly")
	return nil
}

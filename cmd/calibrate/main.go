// Command calibrate measures the serial problem size W of scrambled
// 15-puzzle instances over a range of seeds and walk lengths; it is the
// tool used to pin the instances quoted in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"

	"simdtree/internal/puzzle"
	"simdtree/internal/search"
)

func main() {
	minSteps := flag.Int("min", 36, "minimum scramble length")
	maxSteps := flag.Int("max", 48, "maximum scramble length")
	seeds := flag.Int("seeds", 6, "seeds per length")
	base := flag.Uint64("base", 2020, "first seed")
	flag.Parse()
	for steps := *minSteps; steps <= *maxSteps; steps += 4 {
		for s := 0; s < *seeds; s++ {
			seed := *base + uint64(s)
			dom := puzzle.NewDomain(puzzle.Scramble(seed, steps))
			b, w := search.FinalIterationBound(dom)
			fmt.Printf("steps=%d seed=%d bound=%d W=%d\n", steps, seed, b, w)
		}
	}
}

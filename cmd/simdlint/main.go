// Command simdlint runs the repository's determinism and correctness
// analyzers (internal/lint) over the module and exits non-zero on any
// unsuppressed finding, so it can gate CI.
//
// Usage:
//
//	simdlint [./... | ./internal/simd ...]
//	simdlint -analyzers
//
// With no arguments (or "./...") every non-test package of the enclosing
// module is checked.  Directory arguments restrict the run; a trailing
// "/..." includes subdirectories.  Findings print as
//
//	path/file.go:line:col: analyzer: message
//
// and are suppressed only by an in-source "//lint:allow <analyzer>
// <reason>" comment (see internal/lint).  Exit status: 0 clean, 1
// findings, 2 load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"simdtree/internal/lint"
)

func main() {
	analyzers := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: simdlint [-analyzers] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *analyzers {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdlint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		cwd, err := os.Getwd()
		if err != nil {
			cwd = "" // fall back to absolute paths in the report
		}
		for _, d := range diags {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "simdlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func run(args []string) ([]lint.Diagnostic, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		return nil, err
	}
	pkgs, err = filter(pkgs, args, root)
	if err != nil {
		return nil, err
	}
	return lint.Run(pkgs, lint.Analyzers()), nil
}

// filter restricts pkgs to the directories named by args.  No args, or
// any "./..."-style whole-module pattern, keeps everything.
func filter(pkgs []*lint.Package, args []string, root string) ([]*lint.Package, error) {
	if len(args) == 0 {
		return pkgs, nil
	}
	var keep []*lint.Package
	seen := map[string]bool{}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "." {
			return pkgs, nil
		}
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
		}
		dir, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range pkgs {
			if p.Dir == dir || (recursive && strings.HasPrefix(p.Dir+string(filepath.Separator), dir+string(filepath.Separator))) {
				matched = true
				if !seen[p.Path] {
					seen[p.Path] = true
					keep = append(keep, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %s (module root %s)", arg, root)
		}
	}
	return keep, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

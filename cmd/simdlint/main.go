// Command simdlint runs the repository's determinism and correctness
// analyzers (internal/lint) over the module and exits non-zero on any
// unsuppressed finding, so it can gate CI.
//
// Usage:
//
//	simdlint [flags] [./... | ./internal/simd ...]
//	simdlint -analyzers
//	simdlint -hotpath
//
// With no arguments (or "./...") every non-test package of the enclosing
// module is checked.  Directory arguments restrict which findings are
// reported; the whole module is always loaded and analysed, since the
// cross-package analyzers (hotalloc, lockorder, atomicmix, ctxflow) need
// the complete call graph either way.  Findings print as
//
//	path/file.go:line:col: analyzer: message
//
// sorted by file, line, column and analyzer, and are suppressed only by
// an in-source "//lint:allow <analyzer> <reason>" comment (see
// internal/lint).
//
// -json - (or -json FILE) additionally emits the findings as a JSON
// array; -github prints GitHub Actions ::error workflow annotations;
// -hotpath lists the //lint:hotpath roots and exits.  Exit status: 0
// clean, 1 findings, 2 load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"simdtree/internal/lint"
)

func main() {
	analyzers := flag.Bool("analyzers", false, "list the analyzers and exit")
	hotpath := flag.Bool("hotpath", false, "list the //lint:hotpath roots and exit")
	jsonOut := flag.String("json", "", "write findings as JSON to `file` (\"-\" for stdout)")
	github := flag.Bool("github", false, "print GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: simdlint [-analyzers] [-hotpath] [-json file] [-github] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *analyzers {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fail(err)
	}

	if *hotpath {
		for _, id := range lint.HotpathRoots(pkgs) {
			fmt.Println(id)
		}
		return
	}

	diags := lint.Run(pkgs, lint.Analyzers())
	diags, err = filter(diags, flag.Args(), pkgs, root)
	if err != nil {
		fail(err)
	}
	relativize(diags)

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, diags); err != nil {
			fail(err)
		}
	}
	if len(diags) == 0 {
		return
	}
	if *jsonOut != "-" {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *github {
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d::%s: %s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	fmt.Fprintf(os.Stderr, "simdlint: %d finding(s)\n", len(diags))
	os.Exit(1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simdlint:", err)
	os.Exit(2)
}

// relativize rewrites diagnostic filenames relative to the working
// directory when they fall under it, matching the compiler's style and
// the paths GitHub annotations expect.
func relativize(diags []lint.Diagnostic) {
	cwd, err := os.Getwd()
	if err != nil {
		return // fall back to absolute paths in the report
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

// jsonDiag is the stable serialisation of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits diags as a JSON array to dst ("-" meaning stdout).
func writeJSON(dst string, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dst == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// filter restricts diags to findings under the directories named by args.
// No args, or any "./..."-style whole-module pattern, keeps everything.
// The module is always fully loaded and analysed — the cross-package
// analyzers need the complete call graph — so restricting is a report
// filter, not an analysis scope.
func filter(diags []lint.Diagnostic, args []string, pkgs []*lint.Package, root string) ([]lint.Diagnostic, error) {
	if len(args) == 0 {
		return diags, nil
	}
	type scope struct {
		dir       string
		recursive bool
	}
	var scopes []scope
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "." {
			return diags, nil
		}
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
		}
		dir, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range pkgs {
			if p.Dir == dir || (recursive && underDir(p.Dir, dir)) {
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %s (module root %s)", arg, root)
		}
		scopes = append(scopes, scope{dir: dir, recursive: recursive})
	}
	var keep []lint.Diagnostic
	for _, d := range diags {
		fileDir := filepath.Dir(d.Pos.Filename)
		for _, s := range scopes {
			if fileDir == s.dir || (s.recursive && underDir(fileDir, s.dir)) {
				keep = append(keep, d)
				break
			}
		}
	}
	return keep, nil
}

// underDir reports whether path is dir or below it.
func underDir(path, dir string) bool {
	return strings.HasPrefix(path+string(filepath.Separator), dir+string(filepath.Separator))
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

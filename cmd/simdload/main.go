// Command simdload drives service-level load against a simdserve (or
// simdfleet) endpoint and reports jobs/sec, latency percentiles, the
// single-flight collapse rate, and per-tenant fairness — the traffic
// layer's acceptance numbers, as one BENCH_<n>.json row.
//
// Two loop disciplines:
//
//   - closed loop (default): -clients workers each submit-wait-repeat, so
//     offered load adapts to service capacity;
//   - open loop (-rate N): arrivals at a fixed N jobs/sec regardless of
//     completions, the discipline that exposes queueing collapse.
//
// A -hot fraction of submissions reuse one identical spec, exercising
// single-flight collapsing; the rest are unique.  Submissions rotate
// through -tenants tenant labels.  Every ?wait=1 response body is checked
// byte-for-byte against the first body seen for its cache key — a
// violation means collapsed subscribers diverged, which the traffic layer
// promises never happens.
//
// With -inproc the tool runs a full server + traffic frontend inside the
// process on a loopback listener, so CI can smoke the whole stack with no
// external setup:
//
//	simdload -inproc -duration 5s -check -out /dev/null
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"simdtree/internal/server"
	"simdtree/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simdload:", err)
		os.Exit(1)
	}
}

type options struct {
	url       string
	inproc    bool
	duration  time.Duration
	clients   int
	rate      float64
	tenants   int
	hot       float64
	hotRotate int64
	batch     int
	wait      bool
	seed      int64
	out       string
	check     bool

	p       int
	scheme  string
	specW   int64
	workers int
}

func parseFlags() (options, error) {
	var o options
	flag.StringVar(&o.url, "url", "", "target base URL (e.g. http://localhost:8080); empty requires -inproc")
	flag.BoolVar(&o.inproc, "inproc", false, "run an in-process server + traffic frontend on a loopback listener")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "load duration")
	flag.IntVar(&o.clients, "clients", 8, "closed-loop concurrent clients (also the open-loop in-flight cap)")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in jobs/sec (0 = closed loop)")
	flag.IntVar(&o.tenants, "tenants", 3, "tenant labels to rotate through (X-Tenant: load-<i>)")
	flag.Float64Var(&o.hot, "hot", 0.5, "fraction of submissions reusing the current hot spec (collapse fodder)")
	flag.Int64Var(&o.hotRotate, "hot-rotate", 100, "submissions between hot-spec rotations; rotation keeps the hot spec un-cached so duplicates collapse in flight rather than hit the result cache")
	flag.IntVar(&o.batch, "batch", 0, "submit via POST /v1/jobs:batch with this many specs per request (0 = single submissions)")
	flag.BoolVar(&o.wait, "wait", true, "synchronous submissions (?wait=1): latency covers the full job")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.StringVar(&o.out, "out", "BENCH_1.json", "output file (- for stdout)")
	flag.BoolVar(&o.check, "check", false, "exit non-zero unless jobs/sec > 0, no transport errors, and zero byte-identity violations")
	flag.IntVar(&o.p, "p", 64, "simulated machine size of generated specs")
	flag.StringVar(&o.scheme, "scheme", "GP-S0.90", "load-balancing scheme of generated specs")
	flag.Int64Var(&o.specW, "w", 20000, "synthetic tree size of generated specs")
	flag.IntVar(&o.workers, "workers", 2, "in-process server workers (needs -inproc)")
	flag.Parse()
	if flag.NArg() != 0 {
		return o, fmt.Errorf("unexpected arguments %q", flag.Args())
	}
	if o.url == "" && !o.inproc {
		return o, fmt.Errorf("need -url or -inproc")
	}
	if o.tenants < 1 {
		o.tenants = 1
	}
	if o.clients < 1 {
		o.clients = 1
	}
	return o, nil
}

// results accumulates observations across client goroutines.
type results struct {
	mu         sync.Mutex
	latencies  []time.Duration
	ok         int64
	rejected   int64
	httpErrors int64
	transport  int64
	collapsed  int64
	perTenant  map[string]int64
	bodies     map[string][]byte // job id -> first wait-mode body
	violations int64
}

func (r *results) observe(tenant string, lat time.Duration, code int, collapsed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latencies = append(r.latencies, lat)
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		r.ok++
		r.perTenant[tenant]++
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		r.rejected++
	default:
		r.httpErrors++
	}
	if collapsed {
		r.collapsed++
	}
}

// checkBody enforces the fan-out contract: every wait-mode body carrying
// one job id must be byte-identical to the first one seen.  (Keying on
// the cache key would be wrong: after a flight completes, a resubmission
// of the same spec legitimately opens a fresh cache-hit job with new id
// and timestamps.)
func (r *results) checkBody(key string, body []byte) {
	if key == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	first, seen := r.bodies[key]
	if !seen {
		r.bodies[key] = append([]byte(nil), body...)
		return
	}
	if !bytes.Equal(first, body) {
		r.violations++
	}
}

func run() error {
	o, err := parseFlags()
	if err != nil {
		return err
	}

	base := o.url
	var shutdown func() error
	if o.inproc {
		base, shutdown, err = startInproc(o)
		if err != nil {
			return err
		}
		defer func() { _ = shutdown() }() //lint:allow errdrop exit path; the report already printed
	}

	res := &results{perTenant: make(map[string]int64), bodies: make(map[string][]byte)}
	client := &http.Client{} // no overall timeout: wait-mode requests run job-length
	deadline := time.Now().Add(o.duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	started := time.Now()
	if o.rate > 0 {
		runOpenLoop(ctx, o, client, base, res)
	} else {
		runClosedLoop(ctx, o, client, base, res)
	}
	elapsed := time.Since(started)

	report := buildReport(o, res, elapsed)
	if err := emit(report, o.out); err != nil {
		return err
	}
	if o.check {
		if report.JobsPerSec <= 0 {
			return fmt.Errorf("check failed: %.2f jobs/sec", report.JobsPerSec)
		}
		if report.TransportErrors > 0 || report.HTTPErrors > 0 {
			return fmt.Errorf("check failed: %d transport / %d http errors",
				report.TransportErrors, report.HTTPErrors)
		}
		if report.ByteIdentityViolations > 0 {
			return fmt.Errorf("check failed: %d byte-identity violations (collapsed responses diverged)",
				report.ByteIdentityViolations)
		}
	}
	return nil
}

// startInproc builds a DRR-scheduled server with the traffic frontend on
// a loopback listener and returns its base URL.
func startInproc(o options) (string, func() error, error) {
	drr := traffic.NewDRR(1024, 1)
	svc, err := server.New(server.Config{
		Workers:      o.workers,
		QueueSize:    1024,
		CacheSize:    4096,
		JobHistory:   1 << 16,
		Scheduler:    drr,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		return "", nil, err
	}
	frontend := traffic.New(svc, drr, traffic.Config{HeartbeatEvery: time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: frontend.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }() //lint:allow errdrop Serve always returns ErrServerClosed on shutdown
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx) //lint:allow errdrop best-effort teardown of the load target
		return svc.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// workload generates submissions: a -hot fraction reuses the current hot
// spec (rotated every -hot-rotate submissions so it stays un-cached and
// concurrent duplicates genuinely collapse in flight), the rest walk
// fresh indices.  Hot and unique seeds live in disjoint ranges.  Safe for
// concurrent use.
type workload struct {
	mu    sync.Mutex
	rng   *rand.Rand
	next  int64
	count int64
	o     options
}

func (wl *workload) spec() (server.JobSpec, string) {
	wl.mu.Lock()
	wl.count++
	var seed uint64
	if wl.rng.Float64() < wl.o.hot {
		rotate := wl.o.hotRotate
		if rotate < 1 {
			rotate = 1
		}
		seed = 1<<62 + uint64(wl.count/rotate)
	} else {
		wl.next++
		seed = uint64(wl.next)
	}
	tenant := fmt.Sprintf("load-%d", wl.rng.Intn(wl.o.tenants))
	wl.mu.Unlock()
	return server.JobSpec{
		Domain:    "synthetic",
		Scheme:    wl.o.scheme,
		P:         wl.o.p,
		Synthetic: &server.SyntheticSpec{W: wl.o.specW, Seed: seed},
	}, tenant
}

func runClosedLoop(ctx context.Context, o options, client *http.Client, base string, res *results) {
	wl := &workload{rng: rand.New(rand.NewSource(o.seed)), o: o}
	var wg sync.WaitGroup
	for i := 0; i < o.clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				submit(ctx, o, client, base, wl, res)
			}
		}()
	}
	wg.Wait()
}

func runOpenLoop(ctx context.Context, o options, client *http.Client, base string, res *results) {
	wl := &workload{rng: rand.New(rand.NewSource(o.seed)), o: o}
	interval := time.Duration(float64(time.Second) / o.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	// The in-flight cap keeps an overloaded target from accumulating
	// unbounded goroutines; arrivals beyond it are dropped and counted as
	// rejected (the open-loop analogue of a connection refusal).
	sem := make(chan struct{}, 4*o.clients)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					submit(ctx, o, client, base, wl, res)
				}()
			default:
				res.mu.Lock()
				res.rejected++
				res.mu.Unlock()
			}
		}
	}
}

// submit fires one submission (or one batch) and records the outcome.
func submit(ctx context.Context, o options, client *http.Client, base string, wl *workload, res *results) {
	if o.batch > 0 {
		submitBatch(ctx, o, client, base, wl, res)
		return
	}
	spec, tenant := wl.spec()
	body, err := json.Marshal(spec)
	if err != nil {
		panic(err) // a generated spec always marshals
	}
	url := base + "/v1/jobs"
	if o.wait {
		url += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			res.mu.Lock()
			res.transport++
			res.mu.Unlock()
		}
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	lat := time.Since(start)
	if err != nil {
		if ctx.Err() == nil {
			res.mu.Lock()
			res.transport++
			res.mu.Unlock()
		}
		return
	}
	collapsed := resp.Header.Get("X-Collapsed") != ""
	res.observe(tenant, lat, resp.StatusCode, collapsed)
	if o.wait && resp.StatusCode == http.StatusOK {
		var doc struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(respBody, &doc) == nil {
			res.checkBody(doc.ID, respBody)
		}
	}
}

func submitBatch(ctx context.Context, o options, client *http.Client, base string, wl *workload, res *results) {
	specs := make([]server.JobSpec, o.batch)
	var tenant string
	for i := range specs {
		specs[i], tenant = wl.spec()
	}
	body, err := json.Marshal(map[string]any{"jobs": specs, "wait": o.wait})
	if err != nil {
		panic(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs:batch", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			res.mu.Lock()
			res.transport++
			res.mu.Unlock()
		}
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	lat := time.Since(start)
	if err != nil || resp.StatusCode != http.StatusOK {
		if ctx.Err() == nil {
			res.mu.Lock()
			res.httpErrors++
			res.mu.Unlock()
		}
		return
	}
	var batch struct {
		Items []struct {
			Code      int             `json:"code"`
			ID        string          `json:"id"`
			Collapsed bool            `json:"collapsed"`
			Job       json.RawMessage `json:"job"`
		} `json:"items"`
	}
	if err := json.Unmarshal(respBody, &batch); err != nil {
		res.mu.Lock()
		res.httpErrors++
		res.mu.Unlock()
		return
	}
	for _, it := range batch.Items {
		res.observe(tenant, lat, it.Code, it.Collapsed)
		if o.wait && it.Code == http.StatusOK && len(it.Job) > 0 {
			res.checkBody(it.ID, it.Job)
		}
	}
}

// Report is the BENCH_<n>.json row.  Wall-clock figures are environment
// facts, recorded for context; gates should key on the correctness fields
// (errors, violations) and jobs/sec > 0.
type Report struct {
	Name       string    `json:"name"`
	Timestamp  time.Time `json:"timestamp"`
	DurationMS int64     `json:"duration_ms"`

	URL       string  `json:"url,omitempty"`
	Inproc    bool    `json:"inproc"`
	Clients   int     `json:"clients"`
	Rate      float64 `json:"rate,omitempty"`
	Tenants   int     `json:"tenants"`
	Hot       float64 `json:"hot"`
	HotRotate int64   `json:"hot_rotate"`
	Batch     int     `json:"batch,omitempty"`
	Wait      bool    `json:"wait"`
	SpecW     int64   `json:"spec_w"`
	SpecP     int     `json:"spec_p"`
	Scheme    string  `json:"scheme"`

	JobsTotal       int64   `json:"jobs_total"`
	JobsOK          int64   `json:"jobs_ok"`
	JobsRejected    int64   `json:"jobs_rejected"`
	HTTPErrors      int64   `json:"http_errors"`
	TransportErrors int64   `json:"transport_errors"`
	JobsPerSec      float64 `json:"jobs_per_sec"`

	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMeanMS float64 `json:"latency_mean_ms"`

	CollapsedTotal         int64   `json:"collapsed_total"`
	CollapseRate           float64 `json:"collapse_rate"`
	ByteIdentityViolations int64   `json:"byte_identity_violations"`

	PerTenantOK     map[string]int64 `json:"per_tenant_ok"`
	FairnessSpread  float64          `json:"fairness_spread"`
	DistinctTenants int              `json:"distinct_tenants"`
}

func buildReport(o options, res *results, elapsed time.Duration) Report {
	res.mu.Lock()
	defer res.mu.Unlock()
	r := Report{
		Name:       "simdload",
		Timestamp:  time.Now().UTC(),
		DurationMS: elapsed.Milliseconds(),
		URL:        o.url,
		Inproc:     o.inproc,
		Clients:    o.clients,
		Rate:       o.rate,
		Tenants:    o.tenants,
		Hot:        o.hot,
		HotRotate:  o.hotRotate,
		Batch:      o.batch,
		Wait:       o.wait,
		SpecW:      o.specW,
		SpecP:      o.p,
		Scheme:     o.scheme,

		JobsTotal:       res.ok + res.rejected + res.httpErrors,
		JobsOK:          res.ok,
		JobsRejected:    res.rejected,
		HTTPErrors:      res.httpErrors,
		TransportErrors: res.transport,

		CollapsedTotal:         res.collapsed,
		ByteIdentityViolations: res.violations,
		PerTenantOK:            res.perTenant,
		DistinctTenants:        len(res.perTenant),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		r.JobsPerSec = float64(res.ok) / secs
	}
	if r.JobsTotal > 0 {
		r.CollapseRate = float64(res.collapsed) / float64(r.JobsTotal)
	}
	if n := len(res.latencies); n > 0 {
		sorted := append([]time.Duration(nil), res.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		pct := func(p float64) float64 {
			i := int(p * float64(n-1))
			return float64(sorted[i]) / float64(time.Millisecond)
		}
		r.LatencyP50MS = pct(0.50)
		r.LatencyP90MS = pct(0.90)
		r.LatencyP99MS = pct(0.99)
		r.LatencyMeanMS = float64(sum) / float64(n) / float64(time.Millisecond)
	}
	// Fairness spread: max/min completed jobs across tenants; 1.0 is a
	// perfectly even rotation, large values mean starvation.
	var min, max int64
	for _, n := range res.perTenant {
		if min == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min > 0 {
		r.FairnessSpread = float64(max) / float64(min)
	}
	return r
}

func emit(r Report, out string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simdload: %d ok, %.1f jobs/sec, p99 %.1fms, collapse rate %.2f, fairness spread %.2f -> %s\n",
		r.JobsOK, r.JobsPerSec, r.LatencyP99MS, r.CollapseRate, r.FairnessSpread, out)
	return nil
}

// Command predict answers the capacity-planning questions the paper's
// scalability analysis exists for, from the closed forms alone (no
// simulation):
//
//   - the optimal static trigger xo for a given (W, P) — equation 18;
//   - the modelled efficiency of GP-S^x and nGP-S^x at (W, P);
//   - the problem size needed to sustain a target efficiency
//     (inverse isoefficiency);
//   - the symbolic isoefficiency function per topology (Table 6).
//
// Example:
//
//	predict -w 16e6 -p 8192 -x 0.9 -topology cm2 -target 0.85
package main

import (
	"flag"
	"fmt"
	"os"

	"simdtree/internal/analysis"
	"simdtree/internal/simd"
	"simdtree/internal/topology"
)

func main() {
	var (
		w        = flag.Float64("w", 1e6, "problem size (nodes the serial search expands)")
		p        = flag.Float64("p", 8192, "number of processors")
		x        = flag.Float64("x", 0.9, "static trigger threshold for the efficiency model")
		alpha    = flag.Float64("alpha", 0.5, "work-splitting quality (0,1)")
		topoName = flag.String("topology", "cm2", "interconnect: cm2, hypercube, mesh or crossbar")
		target   = flag.Float64("target", 0.85, "target efficiency for the inverse-isoefficiency question")
	)
	flag.Parse()

	net, err := topology.ByName(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	costs := simd.CM2Costs()
	ratio := float64(costs.PhaseCost(net, int(*p), 1)) / float64(costs.NodeExpansion)

	fmt.Printf("machine: P=%.0f on %s; tlb/Ucalc = %.3f (CM-2 unit costs)\n\n", *p, net.Name(), ratio)

	xo := analysis.OptimalStaticTrigger(*w, *p, ratio, *alpha)
	fmt.Printf("optimal static trigger (eq. 18): xo = %.3f for W = %.3g\n\n", xo, *w)

	fmt.Println("modelled efficiency at (W, P):")
	for _, m := range []string{"GP", "nGP"} {
		v := analysis.VBoundGP(*x)
		if m == "nGP" {
			v = analysis.VBoundNGP(*x, *w, *alpha)
		}
		e := analysis.ModelEfficiency(*x, 0, *w, *p, v, ratio, *alpha)
		fmt.Printf("  %-4s S%.2f: E = %.3f\n", m, *x, e)
	}
	fmt.Println()

	fmt.Printf("problem size to sustain E = %.2f:\n", *target)
	for _, m := range []string{"GP", "nGP"} {
		if req, ok := analysis.RequiredW(*target, *p, m, *x, ratio, *alpha); ok {
			fmt.Printf("  %-4s S%.2f: W >= %.3g\n", m, *x, req)
		} else {
			fmt.Printf("  %-4s S%.2f: unreachable (model caps E below the target at this x)\n", m, *x)
		}
	}
	fmt.Println()

	fmt.Println("isoefficiency functions (Table 6):")
	for _, mName := range []string{"GP", "nGP"} {
		iso, err := analysis.IsoStatic(mName, *x, net.Name())
		if err != nil {
			continue
		}
		fmt.Printf("  %-4s S%.2f on %s: %s\n", mName, *x, net.Name(), iso)
	}
}

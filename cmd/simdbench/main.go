// Command simdbench runs the pinned benchmark scenarios of internal/bench
// and emits a machine-readable baseline (BENCH_<n>.json) recording the
// repository's performance trajectory: wall-clock and allocation cost per
// scenario plus the schedule quantities (W, cycles, LB phases) that prove
// the run executed the exact pinned schedule.
//
// With -compare it checks a fresh measurement against a committed baseline
// and exits non-zero when the schedule drifted (W/cycles/phases differ — a
// determinism bug, never tolerated) or allocations regressed beyond the
// tolerance.  Wall-clock time is compared per scenario against the
// baseline's ns/op and reported, but only gated with -time, since shared
// CI runners make it noisy; the Workers speedups (global and per
// scenario) are gated only on hosts with at least four CPUs, where the
// eight-way sharding has enough cores for parallelism to reliably show up
// in wall-clock time at all.
//
// Usage:
//
//	simdbench [-short] [-out FILE] [-compare FILE] [-tolerance 0.15] [-time]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"simdtree/internal/bench"
)

// Result is one scenario's measurement.
type Result struct {
	bench.Scenario
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	TotalW      int64 `json:"total_w"`
	Cycles      int   `json:"cycles"`
	LBPhases    int   `json:"lb_phases"`
	// Spill traffic of one op under the scenario's MemBudget (zero for
	// unbounded scenarios).  Eviction and fault counts are part of the
	// deterministic schedule — a drift is a correctness bug like a W
	// drift; the byte volumes price the residency manager's disk I/O.
	SpillEvictions         int64 `json:"spill_evictions,omitempty"`
	SpillFaults            int64 `json:"spill_faults,omitempty"`
	SpillBytesWrittenPerOp int64 `json:"spill_bytes_written_per_op,omitempty"`
	SpillBytesReadPerOp    int64 `json:"spill_bytes_read_per_op,omitempty"`
	// SpeedupW8OverW1 is the wall-clock ratio of this scenario at
	// Workers=1 over the same configuration rerun at Workers=8 — about
	// 1.0 on single-CPU hosts, where the shards serialise.  Scenarios
	// already pinned at Workers>1 omit it.
	SpeedupW8OverW1 float64 `json:"speedup_w8_over_w1,omitempty"`
}

// Baseline is the BENCH_<n>.json document.  It deliberately carries no
// timestamp so a committed baseline only changes when the measurements do.
type Baseline struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Short     bool     `json:"short,omitempty"`
	Scenarios []Result `json:"scenarios"`
	// SpeedupW8OverW1 is the wall-clock ratio of the table5 Workers=1
	// scenario over the Workers=8 one; about 1.0 on single-CPU hosts.
	SpeedupW8OverW1 float64 `json:"speedup_w8_over_w1"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simdbench:", err)
		os.Exit(1)
	}
}

func run() error {
	short := flag.Bool("short", false, "one measured iteration per scenario (CI smoke mode)")
	out := flag.String("out", "", "write the baseline JSON to this file (default stdout)")
	compare := flag.String("compare", "", "compare against this committed baseline and fail on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional allocs/op regression")
	gateTime := flag.Bool("time", false, "also gate ns/op against the baseline (noisy on shared runners)")
	flag.Parse()

	base := Baseline{
		Schema:    3,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Short:     *short,
	}
	var nsW1, nsW8 int64
	for _, sc := range bench.Scenarios() {
		iters := iterations(sc.Name, *short)
		res, err := measure(sc, iters)
		if err != nil {
			return err
		}
		base.Scenarios = append(base.Scenarios, res)
		switch sc.Name {
		case bench.Table5W1:
			nsW1 = res.NsPerOp
		case bench.Table5W8:
			nsW8 = res.NsPerOp
		}
		fmt.Fprintf(os.Stderr, "%-18s %10s/op  %8d allocs/op  %10d B/op  cycles=%d phases=%d\n",
			sc.Name, time.Duration(res.NsPerOp), res.AllocsPerOp, res.BytesPerOp, res.Cycles, res.LBPhases)
	}
	if nsW8 > 0 {
		base.SpeedupW8OverW1 = float64(nsW1) / float64(nsW8)
		fmt.Fprintf(os.Stderr, "workers speedup (w1/w8): %.2fx on %d CPU(s)\n", base.SpeedupW8OverW1, base.CPUs)
	}
	if err := fillScenarioSpeedups(&base, *short); err != nil {
		return err
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
	} else if _, err := os.Stdout.Write(enc); err != nil {
		return err
	}

	if *compare != "" {
		return gate(base, *compare, *tolerance, *gateTime)
	}
	return nil
}

// fillScenarioSpeedups records, for every Workers=1 scenario, the
// wall-clock ratio over the same configuration at Workers=8.  When the
// pinned suite already contains the eight-worker twin (the table5 pair)
// its measurement is reused; otherwise the variant is run here, timed the
// same way but kept out of the scenario list (the variant's schedule is
// identical by the determinism contract, so only its wall-clock matters).
func fillScenarioSpeedups(base *Baseline, short bool) error {
	w8ns := make(map[bench.Scenario]int64, len(base.Scenarios))
	for _, r := range base.Scenarios {
		if r.Workers == 8 {
			key := r.Scenario
			key.Name, key.Workers = "", 1
			w8ns[key] = r.NsPerOp
		}
	}
	for i, r := range base.Scenarios {
		if r.Workers != 1 {
			continue
		}
		key := r.Scenario
		key.Name = ""
		ns, ok := w8ns[key]
		if !ok {
			variant := r.Scenario
			variant.Workers = 8
			res, err := measure(variant, iterations(variant.Name, short))
			if err != nil {
				return err
			}
			ns = res.NsPerOp
		}
		if ns > 0 {
			base.Scenarios[i].SpeedupW8OverW1 = float64(r.NsPerOp) / float64(ns)
			fmt.Fprintf(os.Stderr, "%-18s workers speedup (w1/w8): %.2fx\n",
				r.Name, base.Scenarios[i].SpeedupW8OverW1)
		}
	}
	return nil
}

// iterations picks the measured iteration count per scenario: the micro
// scenarios are cheap and get more samples; the full-scale table5 pair is
// two orders of magnitude heavier.
func iterations(name string, short bool) int {
	if short {
		return 1
	}
	switch name {
	case bench.Table5W1, bench.Table5W8:
		return 3
	default:
		return 10
	}
}

// measure runs the scenario iters times after one warm-up run and derives
// per-op cost from runtime.MemStats deltas, the same accounting
// testing.B.ReportAllocs uses (mallocs and total bytes are monotonic
// counters).
func measure(sc bench.Scenario, iters int) (Result, error) {
	stats, sst, err := sc.RunSpill() // warm-up: page in the code path, size the caches
	if err != nil {
		return Result{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if stats, sst, err = sc.RunSpill(); err != nil {
			return Result{}, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	return Result{
		Scenario:    sc,
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		TotalW:      stats.W,
		Cycles:      stats.Cycles,
		LBPhases:    stats.LBPhases,
		// The counters are per run, not cumulative: RunSpill builds a
		// fresh manager each op, so the last iteration's numbers are the
		// per-op numbers.
		SpillEvictions:         sst.Evictions,
		SpillFaults:            sst.Faults,
		SpillBytesWrittenPerOp: sst.BytesWritten,
		SpillBytesReadPerOp:    sst.BytesRead,
	}, nil
}

// gate compares cur against the committed baseline at path and returns an
// error describing every regression found.
func gate(cur Baseline, path string, tolerance float64, gateTime bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ref Baseline
	if err := json.Unmarshal(raw, &ref); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	byName := make(map[string]Result, len(cur.Scenarios))
	for _, r := range cur.Scenarios {
		byName[r.Name] = r
	}
	var fails []string
	for _, want := range ref.Scenarios {
		got, ok := byName[want.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: scenario missing from current run", want.Name))
			continue
		}
		// Schedule quantities are deterministic: any drift is a
		// correctness bug, not a perf regression, and has no tolerance.
		if got.TotalW != want.TotalW || got.Cycles != want.Cycles || got.LBPhases != want.LBPhases {
			fails = append(fails, fmt.Sprintf("%s: schedule drifted: W=%d cycles=%d phases=%d, baseline W=%d cycles=%d phases=%d",
				want.Name, got.TotalW, got.Cycles, got.LBPhases, want.TotalW, want.Cycles, want.LBPhases))
			continue
		}
		// Spill traffic under a fixed budget is as deterministic as the
		// schedule: the eviction sweep and fault barrier run at fixed
		// points of a fixed schedule.
		if got.SpillEvictions != want.SpillEvictions || got.SpillFaults != want.SpillFaults {
			fails = append(fails, fmt.Sprintf("%s: spill traffic drifted: evictions=%d faults=%d, baseline evictions=%d faults=%d",
				want.Name, got.SpillEvictions, got.SpillFaults, want.SpillEvictions, want.SpillFaults))
			continue
		}
		if limit := float64(want.AllocsPerOp) * (1 + tolerance); float64(got.AllocsPerOp) > limit && got.AllocsPerOp > want.AllocsPerOp+64 {
			fails = append(fails, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
				want.Name, got.AllocsPerOp, want.AllocsPerOp, tolerance*100))
		}
		// Wall-clock is always compared and reported; it only fails the
		// gate with -time.
		if want.NsPerOp > 0 {
			delta := 100 * (float64(got.NsPerOp) - float64(want.NsPerOp)) / float64(want.NsPerOp)
			fmt.Fprintf(os.Stderr, "%-18s %10s/op vs baseline %10s/op (%+.1f%%)\n",
				want.Name, time.Duration(got.NsPerOp), time.Duration(want.NsPerOp), delta)
			if gateTime && float64(got.NsPerOp) > float64(want.NsPerOp)*(1+tolerance) {
				fails = append(fails, fmt.Sprintf("%s: ns/op %d exceeds baseline %d by more than %.0f%%",
					want.Name, got.NsPerOp, want.NsPerOp, tolerance*100))
			}
		}
		// A per-scenario Workers speedup that inverts (parallel slower
		// than serial) on a genuinely multi-core host is a sharding
		// regression.  Four CPUs is the floor at which the eight-way
		// shards reliably overlap; below that the ratio is noise.
		if cur.CPUs >= 4 && want.SpeedupW8OverW1 > 1 && got.SpeedupW8OverW1 > 0 && got.SpeedupW8OverW1 < 1.0 {
			fails = append(fails, fmt.Sprintf("%s: workers speedup dropped to %.2fx (baseline %.2fx)",
				want.Name, got.SpeedupW8OverW1, want.SpeedupW8OverW1))
		}
	}
	// The Workers speedup only materialises in wall-clock time when the
	// host can actually run shards concurrently.
	if cur.CPUs >= 4 && ref.SpeedupW8OverW1 > 1 && cur.SpeedupW8OverW1 < 1.0 {
		fails = append(fails, fmt.Sprintf("workers speedup dropped to %.2fx (baseline %.2fx)",
			cur.SpeedupW8OverW1, ref.SpeedupW8OverW1))
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		return fmt.Errorf("%d regression(s) against %s", len(fails), path)
	}
	fmt.Fprintf(os.Stderr, "no regressions against %s\n", path)
	return nil
}

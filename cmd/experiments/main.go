// Command experiments regenerates the tables and figures of the paper's
// evaluation.  Each subcommand maps to one table or figure (see DESIGN.md
// for the per-experiment index):
//
//	experiments [flags] table2|table3|table4|table5|table6
//	experiments [flags] fig1|fig3|fig4|fig7|fig8
//	experiments [flags] ablations|baselines|mimd|anomalies
//	experiments [flags] report|all
//
// Flags:
//
//	-scale full|quick|tiny   experiment size (default quick; full mirrors
//	                         the paper's 8192-processor CM-2 runs)
//	-domain puzzle|synthetic workload for the table experiments (default
//	                         puzzle, as in the paper; synthetic is faster
//	                         and hits the problem-size tiers exactly)
//	-csv DIR                 additionally write machine-readable CSV files
//	                         into DIR (one per experiment)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"simdtree/internal/experiments"
	"simdtree/internal/puzzle"
	"simdtree/internal/synthetic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "quick", "experiment scale: full, quick or tiny")
	domain := flag.String("domain", "puzzle", "table workload domain: puzzle or synthetic")
	csvDir := flag.String("csv", "", "directory for machine-readable CSV copies of the results")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-scale S] [-domain D] [-csv DIR] <table2|table3|table4|table5|table6|fig1|fig3|fig4|fig7|fig8|ablations|baselines|mimd|anomalies|report|all>")
		os.Exit(2)
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	cmd := flag.Arg(0)
	out := os.Stdout

	switch *domain {
	case "puzzle":
		return dispatch(newPuzzleSuite(scale, cmd, out), scale, cmd, out, *csvDir)
	case "synthetic":
		return dispatch(newSyntheticSuite(scale, out), scale, cmd, out, *csvDir)
	}
	return fmt.Errorf("unknown domain %q", *domain)
}

// tableCommands are the subcommands that need tier workloads (and hence a
// potentially expensive instance search for the puzzle domain).
var tableCommands = map[string]bool{
	"table2": true, "table3": true, "table4": true, "table5": true,
	"fig1": true, "fig3": true, "fig8": true, "all": true, "report": true,
}

func newPuzzleSuite(scale experiments.Scale, cmd string, out io.Writer) *experiments.Suite[puzzle.Node] {
	s := &experiments.Suite[puzzle.Node]{P: scale.P, Workers: scale.Workers, Out: out}
	if tableCommands[cmd] {
		fmt.Fprintln(os.Stderr, "# calibrating 15-puzzle instances (serial searches)...")
		s.Workloads = experiments.PuzzleWorkloads(scale.Tiers, os.Stderr)
	}
	return s
}

func newSyntheticSuite(scale experiments.Scale, out io.Writer) *experiments.Suite[synthetic.Node] {
	return &experiments.Suite[synthetic.Node]{
		Workloads: experiments.SyntheticWorkloads(scale.Tiers),
		P:         scale.P,
		Workers:   scale.Workers,
		Out:       out,
	}
}

// table5Workload picks the Table 5 problem instance for a suite: the tier
// closest to the scale's Table5W target.
func table5Workload[S any](s *experiments.Suite[S], scale experiments.Scale) experiments.Workload[S] {
	best := s.Workloads[0]
	bestD := diff(best.W, scale.Table5W)
	for _, wl := range s.Workloads[1:] {
		if d := diff(wl.W, scale.Table5W); d < bestD {
			best, bestD = wl, d
		}
	}
	return best
}

func diff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

var staticThresholds = []float64{0.50, 0.60, 0.70, 0.80, 0.90}

var isoLevels = []float64{0.50, 0.65, 0.75, 0.85}

// saveCSV writes one experiment's CSV file when a CSV directory is set.
func saveCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

func dispatch[S any](s *experiments.Suite[S], scale experiments.Scale, cmd string, out io.Writer, csvDir string) error {
	switch cmd {
	case "table2":
		rows, err := s.Table2(staticThresholds)
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "table2.csv", func(w io.Writer) error { return experiments.Table2CSV(rows, w) })
	case "table3":
		rows, err := s.Table3()
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "table3.csv", func(w io.Writer) error { return experiments.Table3CSV(rows, w) })
	case "table4":
		rows, err := s.Table4()
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "table4.csv", func(w io.Writer) error { return experiments.Table4CSV(rows, w) })
	case "table5":
		rows, err := s.Table5(table5Workload(s, scale))
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "table5.csv", func(w io.Writer) error { return experiments.Table5CSV(rows, w) })
	case "table6":
		return experiments.Table6(out)
	case "fig1":
		for _, label := range []string{"GP-DP", "GP-DK"} {
			tr, err := s.Fig1(label, s.Workloads[0])
			if err != nil {
				return err
			}
			name := fmt.Sprintf("fig1_%s.csv", label)
			if err := saveCSV(csvDir, name, func(w io.Writer) error { return experiments.TraceCSV(tr, w) }); err != nil {
				return err
			}
		}
		return nil
	case "fig3":
		rows, err := s.Table2(staticThresholds)
		if err != nil {
			return err
		}
		if err := experiments.Fig3(rows, out); err != nil {
			return err
		}
		return saveCSV(csvDir, "fig3.csv", func(w io.Writer) error { return experiments.Table2CSV(rows, w) })
	case "fig4":
		res, err := experiments.IsoGrid(experiments.Fig4Labels(), scale.GridPs, scale.GridWs, scale.Workers, isoLevels, out)
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "fig4.csv", func(w io.Writer) error { return experiments.GridCSV(res, w) })
	case "fig7":
		res, err := experiments.IsoGrid(experiments.Fig7Labels(), scale.GridPs, scale.GridWs, scale.Workers, isoLevels, out)
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "fig7.csv", func(w io.Writer) error { return experiments.GridCSV(res, w) })
	case "fig8":
		_, err := s.Fig8(table5Workload(s, scale))
		return err
	case "ablations":
		w := scale.Tiers[len(scale.Tiers)/2]
		if _, err := experiments.AblationSplitters(w, scale.P, 0.85, scale.Workers, out); err != nil {
			return err
		}
		if _, err := experiments.AblationInit(w, scale.P, scale.Workers, out); err != nil {
			return err
		}
		if _, err := experiments.AblationTransfers(w, scale.P, scale.Workers, out); err != nil {
			return err
		}
		if _, err := experiments.AblationTopology(w, scale.P, 0.85, scale.Workers, out); err != nil {
			return err
		}
		if _, err := experiments.AblationMessageSize(w, scale.P, scale.Workers, 1.0, out); err != nil {
			return err
		}
		if _, err := experiments.AblationDKGamma(w, scale.P, scale.Workers, out); err != nil {
			return err
		}
		steps := 36
		if scale.Name == "full" {
			steps = 60
		}
		_, err := experiments.AblationHeuristic(2023, steps, scale.P, scale.Workers, out)
		return err
	case "baselines":
		_, err := experiments.BaselineComparison(scale.Tiers[len(scale.Tiers)/2], scale.P, scale.Workers, out)
		return err
	case "mimd":
		_, err := experiments.MIMDComparison(scale.Tiers[0], scale.P, scale.Workers, 1, out)
		return err
	case "anomalies":
		items := 22
		if scale.Name == "full" {
			items = 28
		}
		rows, err := experiments.Anomalies(items, []uint64{1, 2, 3}, []int{16, 64, 256}, scale.Workers, out)
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "anomalies.csv", func(w io.Writer) error { return experiments.AnomalyCSV(rows, w) })
	case "variance":
		_, err := experiments.Variance(scale.Tiers[len(scale.Tiers)/2], scale.P, scale.Workers, 5,
			[]string{"GP-DK", "GP-S0.90", "nGP-S0.90"}, out)
		return err
	case "report":
		return experiments.WriteReport(s, scale, out)
	case "all":
		rows, err := s.Table2(staticThresholds)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "table2.csv", func(w io.Writer) error { return experiments.Table2CSV(rows, w) }); err != nil {
			return err
		}
		t3, err := s.Table3()
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "table3.csv", func(w io.Writer) error { return experiments.Table3CSV(t3, w) }); err != nil {
			return err
		}
		t4, err := s.Table4()
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "table4.csv", func(w io.Writer) error { return experiments.Table4CSV(t4, w) }); err != nil {
			return err
		}
		t5, err := s.Table5(table5Workload(s, scale))
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "table5.csv", func(w io.Writer) error { return experiments.Table5CSV(t5, w) }); err != nil {
			return err
		}
		if err := experiments.Table6(out); err != nil {
			return err
		}
		if err := experiments.Fig3(rows, out); err != nil {
			return err
		}
		g4, err := experiments.IsoGrid(experiments.Fig4Labels(), scale.GridPs, scale.GridWs, scale.Workers, isoLevels, out)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig4.csv", func(w io.Writer) error { return experiments.GridCSV(g4, w) }); err != nil {
			return err
		}
		g7, err := experiments.IsoGrid(experiments.Fig7Labels(), scale.GridPs, scale.GridWs, scale.Workers, isoLevels, out)
		if err != nil {
			return err
		}
		if err := saveCSV(csvDir, "fig7.csv", func(w io.Writer) error { return experiments.GridCSV(g7, w) }); err != nil {
			return err
		}
		if _, err := s.Fig8(table5Workload(s, scale)); err != nil {
			return err
		}
		if _, err := experiments.BaselineComparison(scale.Tiers[len(scale.Tiers)/2], scale.P, scale.Workers, out); err != nil {
			return err
		}
		if _, err := experiments.MIMDComparison(scale.Tiers[0], scale.P, scale.Workers, 1, out); err != nil {
			return err
		}
		an, err := experiments.Anomalies(22, []uint64{1, 2, 3}, []int{16, 64, 256}, scale.Workers, out)
		if err != nil {
			return err
		}
		return saveCSV(csvDir, "anomalies.csv", func(w io.Writer) error { return experiments.AnomalyCSV(an, w) })
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

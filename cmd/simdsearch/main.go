// Command simdsearch runs a single parallel tree search on the simulated
// SIMD machine and reports the paper's Section 3.1 statistics.
//
// Examples:
//
//	simdsearch -domain puzzle -scramble 42 -steps 40 -scheme GP-DK -p 1024
//	simdsearch -domain synthetic -w 1000000 -scheme nGP-S0.80 -p 8192
//	simdsearch -domain queens -n 11 -scheme GP-S0.90 -p 256 -topology mesh
//
// The process exits 0 only on a completed run: runner errors, invalid
// flags and interrupted runs all exit non-zero, so scripts and health
// checks can trust the exit code.  An interrupt (Ctrl-C) stops the
// simulation at the next cycle boundary and prints the partial statistics
// of the completed prefix before exiting 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"simdtree/internal/metrics"
	"simdtree/internal/mimd"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
	"simdtree/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simdsearch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		domain   = flag.String("domain", "puzzle", "problem domain: puzzle, synthetic or queens")
		scheme   = flag.String("scheme", "GP-DK", "load-balancing scheme, e.g. GP-S0.90, nGP-DP, GP-DK")
		p        = flag.Int("p", 1024, "number of simulated processors")
		workers  = flag.Int("workers", 0, "goroutines per simulated cycle (0 = sequential)")
		topoName = flag.String("topology", "cm2", "interconnect: cm2, hypercube, mesh or crossbar")
		lbScale  = flag.Float64("lbscale", 1, "multiplier on load-balancing cost (Table 5 style)")
		stop     = flag.Bool("stop", false, "stop at the first goal instead of searching exhaustively")
		showTr   = flag.Bool("trace", false, "print the per-cycle active-processor trace")
		progress = flag.Int("progress", 0, "print a liveness line to stderr every N cycles (0 = off)")

		engine = flag.String("engine", "simd", "execution model: simd (the paper's lock-step machine) or mimd (work stealing: scheme GRR, ARR or RP)")
		ida    = flag.Bool("ida", false, "puzzle: run complete parallel IDA* (all iterations on the machine) instead of only the final bounded iteration")
		lc     = flag.Bool("lc", false, "puzzle: use the Manhattan+linear-conflict heuristic (smaller W, costlier bound)")

		scramble = flag.Uint64("scramble", 1, "puzzle: scramble seed")
		steps    = flag.Int("steps", 40, "puzzle: scramble walk length")
		bound    = flag.Int("bound", 0, "puzzle: explicit IDA* cost bound (0 = bound of the first solving iteration)")

		w    = flag.Int64("w", 100000, "synthetic: exact tree size")
		seed = flag.Uint64("seed", 7, "synthetic: tree seed")
		n    = flag.Int("n", 10, "queens: board size")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	net, err := topology.ByName(*topoName)
	if err != nil {
		return err
	}
	opts := simd.Options{P: *p, Workers: *workers, Topology: net, StopAtFirstGoal: *stop}
	opts.Costs = simd.CM2Costs()
	opts.Costs.LBScale = *lbScale
	var tr *trace.Trace
	if *showTr {
		tr = &trace.Trace{}
		opts.Trace = tr
	}
	if *progress > 0 {
		opts.ProgressEvery = *progress
		opts.Progress = func(p simd.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "  cycle %d: active=%d W=%d phases=%d Tpar=%v\n",
				p.Cycles, p.Active, p.W, p.LBPhases, p.Tpar)
		}
	}

	var stats metrics.Stats
	switch *domain {
	case "puzzle":
		inst := puzzle.Scramble(*scramble, *steps)
		fmt.Println("start position:")
		fmt.Println(inst)
		var dom search.CostDomain[puzzle.Node] = puzzle.NewDomain(inst)
		if *lc {
			dom = puzzle.NewDomainLC(inst)
		}
		if *ida {
			stats, err = runIDAStar(ctx, dom, *scheme, opts)
			break
		}
		b := *bound
		var serialW int64
		if b == 0 {
			b, serialW = search.FinalIterationBound(dom)
		} else {
			serialW = search.DFS[puzzle.Node](search.NewBounded(dom, b)).Expanded
		}
		fmt.Printf("cost bound %d, serial W = %d\n", b, serialW)
		stats, err = runScheme(ctx, search.NewBounded(dom, b), *scheme, opts, *engine)
	case "synthetic":
		stats, err = runScheme(ctx, synthetic.New(*w, *seed), *scheme, opts, *engine)
	case "queens":
		stats, err = runScheme(ctx, queens.New(*n), *scheme, opts, *engine)
	default:
		err = fmt.Errorf("unknown domain %q", *domain)
	}
	if err != nil && !stats.Cancelled {
		return err
	}

	fmt.Println(stats)
	fmt.Printf("  Tpar=%v Tcalc=%v Tidle=%v Tlb=%v\n", stats.Tpar, stats.Tcalc, stats.Tidle, stats.Tlb)
	fmt.Printf("  init: %d cycles, %d phases; peak stack %d nodes; largest transfer %d nodes\n",
		stats.InitCycles, stats.InitPhases, stats.PeakStack, stats.MaxTransfer)
	if tr != nil {
		min, at := tr.MinActive()
		fmt.Printf("  trace: %d samples, min active %d at cycle %d\n", len(tr.Samples), min, at)
		stride := len(tr.Samples)/40 + 1
		for i, s := range tr.Samples {
			if i%stride == 0 {
				fmt.Printf("  cycle %5d  active %6d\n", s.Cycle, s.Active)
			}
		}
	}
	if err != nil {
		// Interrupted: the numbers above are the completed prefix only.
		return fmt.Errorf("run interrupted after %d cycles: %w", stats.Cycles, err)
	}
	return nil
}

func runScheme[S any](ctx context.Context, d search.Domain[S], label string, opts simd.Options, engine string) (metrics.Stats, error) {
	switch engine {
	case "simd":
		sch, err := simd.ParseScheme[S](label)
		if err != nil {
			return metrics.Stats{}, err
		}
		return simd.RunContext[S](ctx, d, sch, opts)
	case "mimd":
		pol, err := mimd.ParsePolicy(label)
		if err != nil {
			return metrics.Stats{}, fmt.Errorf("mimd engine wants -scheme GRR, ARR or RP: %w", err)
		}
		st, err := mimd.Run[S](d, mimd.Options{
			P:             opts.P,
			Policy:        pol,
			Topology:      opts.Topology,
			NodeExpansion: opts.Costs.NodeExpansion,
			TransferUnit:  opts.Costs.TransferUnit,
			Seed:          1,
		})
		return st.Stats, err
	}
	return metrics.Stats{}, fmt.Errorf("unknown engine %q", engine)
}

// runIDAStar executes the paper's complete algorithm: every IDA*
// iteration on the SIMD machine, printing the per-iteration progression.
func runIDAStar(ctx context.Context, dom search.CostDomain[puzzle.Node], label string, opts simd.Options) (metrics.Stats, error) {
	sch, err := simd.ParseScheme[puzzle.Node](label)
	if err != nil {
		return metrics.Stats{}, err
	}
	res, runErr := simd.RunIDAStarContext[puzzle.Node](ctx, dom, sch, opts, 0)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return res.Stats, runErr
	}
	fmt.Printf("parallel IDA*: %d iterations, final bound %d\n", len(res.Iterations), res.Bound)
	for _, it := range res.Iterations {
		fmt.Printf("  bound %2d: W=%-9d cycles=%-6d phases=%-5d E=%.3f\n",
			it.Bound, it.Stats.W, it.Stats.Cycles, it.Stats.LBPhases, it.Stats.Efficiency())
	}
	return res.Stats, runErr
}

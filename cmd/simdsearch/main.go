// Command simdsearch runs a single parallel tree search on the simulated
// SIMD machine and reports the paper's Section 3.1 statistics.
//
// Examples:
//
//	simdsearch -domain puzzle -scramble 42 -steps 40 -scheme GP-DK -p 1024
//	simdsearch -domain synthetic -w 1000000 -scheme nGP-S0.80 -p 8192
//	simdsearch -domain queens -n 11 -scheme GP-S0.90 -p 256 -topology mesh
//
// Long runs survive interruption: -checkpoint FILE writes a crash-safe
// snapshot every -every cycles (and a final one when the run is
// interrupted), and -resume FILE continues such a run to the exact same
// statistics an uninterrupted run would have produced:
//
//	simdsearch -domain synthetic -w 100000000 -checkpoint run.ckpt -every 10000
//	simdsearch -domain synthetic -w 100000000 -resume run.ckpt -checkpoint run.ckpt -every 10000
//
// The process exits 0 only on a completed run; see the -help text for the
// full exit-code contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/mimd"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/spill"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// Exit codes.  Scripts and health checks rely on these; -help documents
// them.
const (
	exitOK          = 0   // run completed
	exitError       = 1   // runtime or configuration error
	exitUsage       = 2   // invalid flags (written by package flag)
	exitInterrupted = 130 // SIGINT: stopped at a cycle boundary (128+SIGINT)
)

func main() {
	err := run()
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "simdsearch:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(exitInterrupted)
	}
	os.Exit(exitError)
}

// ckptConfig carries the checkpoint flags plus the identity fields a
// resumed run must match.
type ckptConfig struct {
	write  string // file to write checkpoints to ("" = off)
	every  int    // cycle cadence for periodic checkpoints
	resume string // file to resume from ("" = fresh run)
	domain string // canonical domain description, pinned in Meta.Domain
	topo   string // topology name, pinned in Meta.Topology
}

func (c ckptConfig) enabled() bool { return c.write != "" || c.resume != "" }

func run() error {
	var (
		domain   = flag.String("domain", "puzzle", "problem domain: puzzle, synthetic or queens")
		scheme   = flag.String("scheme", "GP-DK", "load-balancing scheme, e.g. GP-S0.90, nGP-DP, GP-DK")
		p        = flag.Int("p", 1024, "number of simulated processors")
		workers  = flag.Int("workers", 0, "goroutines per simulated cycle (0 = sequential)")
		topoName = flag.String("topology", "cm2", "interconnect: cm2, hypercube, mesh or crossbar")
		lbScale  = flag.Float64("lbscale", 1, "multiplier on load-balancing cost (Table 5 style)")
		stop     = flag.Bool("stop", false, "stop at the first goal instead of searching exhaustively")
		showTr   = flag.Bool("trace", false, "print the per-cycle active-processor trace")
		progress = flag.Int("progress", 0, "print a liveness line to stderr every N cycles (0 = off)")

		engine    = flag.String("engine", "simd", "execution model: simd (the paper's lock-step machine) or mimd (work stealing: scheme GRR, ARR or RP)")
		memBudget = flag.Int64("mem-budget", 0, "memory budget in bytes for simulated stack storage (0 = unbounded); cold stack levels spill to a temp directory and fault back on demand, with identical results")
		ida       = flag.Bool("ida", false, "puzzle: run complete parallel IDA* (all iterations on the machine) instead of only the final bounded iteration")
		lc        = flag.Bool("lc", false, "puzzle: use the Manhattan+linear-conflict heuristic (smaller W, costlier bound)")

		cpuProfile = flag.String("pprof", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when the run finishes")

		ckptPath   = flag.String("checkpoint", "", "write a resumable checkpoint to this file every -every cycles, plus a final one on interrupt")
		ckptEvery  = flag.Int("every", 1000, "checkpoint cadence in expansion cycles (with -checkpoint)")
		resumePath = flag.String("resume", "", "resume an interrupted run from this checkpoint file (domain, scheme and -p must match)")

		scramble = flag.Uint64("scramble", 1, "puzzle: scramble seed")
		steps    = flag.Int("steps", 40, "puzzle: scramble walk length")
		bound    = flag.Int("bound", 0, "puzzle: explicit IDA* cost bound (0 = bound of the first solving iteration)")

		w    = flag.Int64("w", 100000, "synthetic: exact tree size")
		seed = flag.Uint64("seed", 7, "synthetic: tree seed")
		n    = flag.Int("n", 10, "queens: board size")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: simdsearch [flags]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, `
exit codes:
  %3d  run completed
  %3d  runtime or configuration error
  %3d  invalid flags
  %3d  interrupted (SIGINT): the run stopped at a cycle boundary after
       printing the statistics of the completed prefix; with -checkpoint,
       a final checkpoint was written first, so -resume loses no work
`, exitOK, exitError, exitUsage, exitInterrupted)
	}
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	if *memBudget > 0 {
		if *engine != "simd" {
			return fmt.Errorf("-mem-budget requires -engine simd (the %s engine has no spillable stack arena)", *engine)
		}
		if *ida {
			return fmt.Errorf("-mem-budget is not supported with -ida (the iteration driver builds its machines internally)")
		}
	}

	cfg := ckptConfig{write: *ckptPath, every: *ckptEvery, resume: *resumePath, topo: *topoName}
	if cfg.enabled() {
		if *engine != "simd" {
			return fmt.Errorf("-checkpoint/-resume require -engine simd (the %s engine has no cycle boundaries to snapshot at)", *engine)
		}
		if cfg.every <= 0 {
			return fmt.Errorf("-every must be positive, got %d", cfg.every)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simdsearch: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "simdsearch: memprofile:", err)
			}
		}()
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	net, err := topology.ByName(*topoName)
	if err != nil {
		return err
	}
	opts := simd.Options{P: *p, Workers: *workers, Topology: net, StopAtFirstGoal: *stop, MemBudget: *memBudget}
	opts.Costs = simd.CM2Costs()
	opts.Costs.LBScale = *lbScale
	var tr *trace.Trace
	if *showTr {
		tr = &trace.Trace{}
		opts.Trace = tr
	}
	if *progress > 0 {
		opts.ProgressEvery = *progress
		opts.Progress = func(p simd.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "  cycle %d: active=%d W=%d phases=%d Tpar=%v\n",
				p.Cycles, p.Active, p.W, p.LBPhases, p.Tpar)
		}
	}

	var stats metrics.Stats
	switch *domain {
	case "puzzle":
		inst := puzzle.Scramble(*scramble, *steps)
		fmt.Println("start position:")
		fmt.Println(inst)
		var dom search.CostDomain[puzzle.Node] = puzzle.NewDomain(inst)
		if *lc {
			dom = puzzle.NewDomainLC(inst)
		}
		if *ida {
			cfg.domain = fmt.Sprintf("puzzle-ida scramble=%d steps=%d lc=%t", *scramble, *steps, *lc)
			stats, err = runIDAStar(ctx, dom, *scheme, opts, cfg)
			break
		}
		b := *bound
		var serialW int64
		if b == 0 {
			b, serialW = search.FinalIterationBound(dom)
		} else {
			serialW = search.DFS[puzzle.Node](search.NewBounded(dom, b)).Expanded
		}
		fmt.Printf("cost bound %d, serial W = %d\n", b, serialW)
		cfg.domain = fmt.Sprintf("puzzle scramble=%d steps=%d lc=%t bound=%d", *scramble, *steps, *lc, b)
		stats, err = runScheme(ctx, search.NewBounded(dom, b), wire.PuzzleCodec{}, *scheme, opts, *engine, cfg)
	case "synthetic":
		cfg.domain = fmt.Sprintf("synthetic w=%d seed=%d", *w, *seed)
		stats, err = runScheme(ctx, synthetic.New(*w, *seed), wire.SyntheticCodec{}, *scheme, opts, *engine, cfg)
	case "queens":
		cfg.domain = fmt.Sprintf("queens n=%d", *n)
		stats, err = runScheme(ctx, queens.New(*n), wire.QueensCodec{}, *scheme, opts, *engine, cfg)
	default:
		err = fmt.Errorf("unknown domain %q", *domain)
	}
	if err != nil && !stats.Cancelled {
		return err
	}

	fmt.Println(stats)
	fmt.Printf("  Tpar=%v Tcalc=%v Tidle=%v Tlb=%v\n", stats.Tpar, stats.Tcalc, stats.Tidle, stats.Tlb)
	fmt.Printf("  init: %d cycles, %d phases; peak stack %d nodes; largest transfer %d nodes\n",
		stats.InitCycles, stats.InitPhases, stats.PeakStack, stats.MaxTransfer)
	if tr != nil {
		min, at := tr.MinActive()
		fmt.Printf("  trace: %d samples, min active %d at cycle %d\n", len(tr.Samples), min, at)
		stride := len(tr.Samples)/40 + 1
		for i, s := range tr.Samples {
			if i%stride == 0 {
				fmt.Printf("  cycle %5d  active %6d\n", s.Cycle, s.Active)
			}
		}
	}
	if err != nil {
		// Interrupted: the numbers above are the completed prefix only.
		return fmt.Errorf("run interrupted after %d cycles: %w", stats.Cycles, err)
	}
	return nil
}

// meta builds the identity header pinned into every checkpoint this
// invocation writes, and checked against every checkpoint it resumes.
func (c ckptConfig) meta(label string) checkpoint.Meta {
	return checkpoint.Meta{Domain: c.domain, Scheme: label, Topology: c.topo}
}

// check verifies that a checkpoint belongs to this invocation's
// configuration before any state is restored.
func (c ckptConfig) check(meta checkpoint.Meta, label string, p int) error {
	want := c.meta(label)
	if meta.Domain != want.Domain || meta.Scheme != want.Scheme || meta.Topology != want.Topology || meta.P != p {
		return fmt.Errorf("checkpoint %s was taken for {%s, scheme %s, topology %s, p %d}; flags say {%s, scheme %s, topology %s, p %d}",
			c.resume, meta.Domain, meta.Scheme, meta.Topology, meta.P, want.Domain, want.Scheme, want.Topology, p)
	}
	return nil
}

func runScheme[S any](ctx context.Context, d search.Domain[S], codec wire.Codec[S], label string, opts simd.Options, engine string, cfg ckptConfig) (metrics.Stats, error) {
	switch engine {
	case "simd":
		sch, err := simd.ParseScheme[S](label)
		if err != nil {
			return metrics.Stats{}, err
		}
		if cfg.write != "" {
			opts.CheckpointEvery = cfg.every
		}
		m, err := simd.NewMachine[S](d, sch, opts)
		if err != nil {
			return metrics.Stats{}, err
		}
		if opts.MemBudget > 0 {
			dir, err := os.MkdirTemp("", "simdspill-*")
			if err != nil {
				return metrics.Stats{}, fmt.Errorf("spill dir: %w", err)
			}
			defer os.RemoveAll(dir) //lint:allow errdrop temp segments, wiped by the OS eventually anyway
			mgr, err := spill.NewManager[S](codec, spill.Config{
				Dir:       dir,
				MemBudget: opts.MemBudget,
				NodeBytes: wire.NodeSize(codec, d.Root()),
			})
			if err != nil {
				return metrics.Stats{}, err
			}
			m.SetSpiller(mgr)
			defer func() {
				st := mgr.Stats()
				fmt.Fprintf(os.Stderr, "simdsearch: spill: %d evictions, %d faults, %d bytes written, %d read, peak resident %d nodes\n",
					st.Evictions, st.Faults, st.BytesWritten, st.BytesRead, st.PeakResident)
			}()
		}
		if cfg.resume != "" {
			meta, snap, err := checkpoint.ReadFile[S](cfg.resume, codec)
			if err != nil {
				return metrics.Stats{}, err
			}
			if err := cfg.check(meta, label, opts.P); err != nil {
				return metrics.Stats{}, err
			}
			if snap.IDA != nil {
				return metrics.Stats{}, fmt.Errorf("checkpoint %s holds an IDA* run; resume it with -ida", cfg.resume)
			}
			if err := m.RestoreSnapshot(snap); err != nil {
				return metrics.Stats{}, err
			}
			fmt.Printf("resumed from %s at cycle %d\n", cfg.resume, snap.Cycle)
		}
		if cfg.write != "" {
			m.OnCheckpoint(func(s *simd.Snapshot[S]) error {
				return checkpoint.WriteFile[S](cfg.write, codec, cfg.meta(label), s)
			})
		}
		st, runErr := m.RunContext(ctx)
		if runErr != nil && st.Cancelled && cfg.write != "" {
			if snap, err := m.Snapshot(); err == nil {
				if err := checkpoint.WriteFile[S](cfg.write, codec, cfg.meta(label), snap); err != nil {
					return st, errors.Join(runErr, err)
				}
				fmt.Fprintf(os.Stderr, "simdsearch: wrote checkpoint %s at cycle %d\n", cfg.write, snap.Cycle)
			}
		}
		if runErr == nil && cfg.write != "" {
			// The run completed; a periodic checkpoint left behind would
			// only invite resuming a finished run.
			if err := os.Remove(cfg.write); err != nil && !errors.Is(err, os.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "simdsearch: removing stale checkpoint: %v\n", err)
			}
		}
		return st, runErr
	case "mimd":
		pol, err := mimd.ParsePolicy(label)
		if err != nil {
			return metrics.Stats{}, fmt.Errorf("mimd engine wants -scheme GRR, ARR or RP: %w", err)
		}
		st, err := mimd.Run[S](d, mimd.Options{
			P:             opts.P,
			Policy:        pol,
			Topology:      opts.Topology,
			NodeExpansion: opts.Costs.NodeExpansion,
			TransferUnit:  opts.Costs.TransferUnit,
			Seed:          1,
		})
		return st.Stats, err
	}
	return metrics.Stats{}, fmt.Errorf("unknown engine %q", engine)
}

// runIDAStar executes the paper's complete algorithm: every IDA*
// iteration on the SIMD machine, printing the per-iteration progression.
// With -checkpoint/-resume the run checkpoints across iteration
// boundaries too.
func runIDAStar(ctx context.Context, dom search.CostDomain[puzzle.Node], label string, opts simd.Options, cfg ckptConfig) (metrics.Stats, error) {
	sch, err := simd.ParseScheme[puzzle.Node](label)
	if err != nil {
		return metrics.Stats{}, err
	}
	codec := wire.PuzzleCodec{}
	var resume *simd.Snapshot[puzzle.Node]
	if cfg.resume != "" {
		meta, snap, err := checkpoint.ReadFile[puzzle.Node](cfg.resume, codec)
		if err != nil {
			return metrics.Stats{}, err
		}
		if err := cfg.check(meta, label, opts.P); err != nil {
			return metrics.Stats{}, err
		}
		if snap.IDA == nil {
			return metrics.Stats{}, fmt.Errorf("checkpoint %s holds a single bounded run, not an IDA* run; resume it without -ida", cfg.resume)
		}
		resume = snap
		fmt.Printf("resumed from %s at iteration %d (bound %d), cycle %d\n", cfg.resume, snap.IDA.Iteration, snap.IDA.Bound, snap.Cycle)
	}
	var sink func(*simd.Snapshot[puzzle.Node]) error
	if cfg.write != "" {
		opts.CheckpointEvery = cfg.every
		sink = func(s *simd.Snapshot[puzzle.Node]) error {
			return checkpoint.WriteFile[puzzle.Node](cfg.write, codec, cfg.meta(label), s)
		}
	}
	res, runErr := simd.RunIDAStarCheckpointed[puzzle.Node](ctx, dom, sch, opts, 0, resume, sink)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return res.Stats, runErr
	}
	if runErr != nil && cfg.write != "" {
		fmt.Fprintf(os.Stderr, "simdsearch: wrote checkpoint %s\n", cfg.write)
	}
	if runErr == nil && cfg.write != "" {
		if err := os.Remove(cfg.write); err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "simdsearch: removing stale checkpoint: %v\n", err)
		}
	}
	fmt.Printf("parallel IDA*: %d iterations, final bound %d\n", len(res.Iterations), res.Bound)
	for _, it := range res.Iterations {
		fmt.Printf("  bound %2d: W=%-9d cycles=%-6d phases=%-5d E=%.3f\n",
			it.Bound, it.Stats.W, it.Stats.Cycles, it.Stats.LBPhases, it.Stats.Efficiency())
	}
	return res.Stats, runErr
}

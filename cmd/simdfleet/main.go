// Command simdfleet runs the fleet coordinator: an HTTP front end over
// N simdserve nodes that routes jobs by consistent hashing on the
// canonical cache key, spills overflow with a GP-style rotating pointer
// (the paper's §4.1 matcher, one level up), health-probes the nodes
// with exponential backoff, and on node death re-dispatches in-flight
// jobs to a survivor with their latest checkpoint — so an interrupted
// job still completes to the byte-identical result.
//
// Quickstart (or just `make fleet`):
//
//	simdserve -addr 127.0.0.1:18081 -spool /tmp/fleet/n1 &
//	simdserve -addr 127.0.0.1:18082 -spool /tmp/fleet/n2 &
//	simdserve -addr 127.0.0.1:18083 -spool /tmp/fleet/n3 &
//	simdfleet -addr :18080 -nodes http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083
//	curl -s -X POST localhost:18080/v1/jobs -d '{
//	  "domain": "puzzle", "scheme": "GP-DK", "p": 256,
//	  "puzzle": {"seed": 5, "steps": 16}
//	}'
//	curl -s localhost:18080/fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simdtree/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simdfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":18080", "listen address")
		nodesFlag   = flag.String("nodes", "", "comma-separated backend base URLs (required), e.g. http://127.0.0.1:18081,http://127.0.0.1:18082")
		replicas    = flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per backend on the hash ring")
		overflow    = flag.Int("overflow", 8, "queue depth above which the GP pointer spills jobs to an underloaded node")
		probe       = flag.Duration("probe", 2*time.Second, "health-probe cadence")
		syncEvery   = flag.Duration("sync", 2*time.Second, "job-status and checkpoint-pull cadence")
		failAfter   = flag.Int("fail-threshold", 3, "consecutive probe failures before a node is ejected")
		backoffMax  = flag.Duration("backoff-max", 30*time.Second, "cap on the exponential probe backoff")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request timeout for node calls")
		stealEvery  = flag.Duration("steal", 0, "work-stealing sweep cadence; 0 disables cross-node stealing")
		stealShards = flag.Int("steal-shards", 2, "shards a stolen job is split into (donor keeps one)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, strings.TrimRight(n, "/"))
		}
	}
	if len(nodes) == 0 {
		return errors.New("need -nodes with at least one backend URL")
	}

	coord, err := cluster.New(cluster.Config{
		Nodes:          nodes,
		Replicas:       *replicas,
		OverflowDepth:  *overflow,
		ProbeInterval:  *probe,
		SyncInterval:   *syncEvery,
		FailThreshold:  *failAfter,
		BackoffMax:     *backoffMax,
		RequestTimeout: *reqTimeout,
		StealInterval:  *stealEvery,
		StealShards:    *stealShards,
	})
	if err != nil {
		return err
	}
	// Prime the health and queue-depth view before the first request.
	coord.ProbeOnce(context.Background())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "simdfleet: listening on %s, fronting %d node(s)\n", *addr, len(nodes))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "simdfleet: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpErr := httpSrv.Shutdown(shutCtx)
	coordErr := coord.Shutdown(shutCtx)
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	return coordErr
}

#!/bin/sh
# Launch a local fleet: N simdserve nodes with checkpoint spools, fronted
# by one simdfleet coordinator.  Ctrl-C tears everything down.
# Used by `make fleet`; the CI smoke test drives the same topology.
#
# Flags (also settable via the environment variable of the same purpose):
#   -n COUNT      number of nodes (default 3, env FLEET_NODES)
#   -p PORT       first node port; nodes take PORT, PORT+1, ... (default
#                 18081, env FLEET_BASE_PORT)
#   -c ADDR       coordinator listen address (default 127.0.0.1:18080,
#                 env COORD_ADDR)
#   -s INTERVAL   steal sweep cadence passed to simdfleet -steal; empty
#                 disables cross-node work stealing (env FLEET_STEAL)
set -eu

BIN=${BIN:-./bin}
BASE=${FLEET_DIR:-/tmp/simdfleet-local}
COORD_ADDR=${COORD_ADDR:-127.0.0.1:18080}
COUNT=${FLEET_NODES:-3}
BASE_PORT=${FLEET_BASE_PORT:-18081}
STEAL=${FLEET_STEAL:-}

usage() {
    echo "usage: $0 [-n nodes] [-p base-port] [-c coord-addr] [-s steal-interval]" >&2
    exit 2
}
while getopts "n:p:c:s:h" opt; do
    case $opt in
    n) COUNT=$OPTARG ;;
    p) BASE_PORT=$OPTARG ;;
    c) COORD_ADDR=$OPTARG ;;
    s) STEAL=$OPTARG ;;
    h | *) usage ;;
    esac
done
shift $((OPTIND - 1))
[ $# -eq 0 ] || usage
case $COUNT in
'' | *[!0-9]*) echo "node count must be a positive integer, got '$COUNT'" >&2; exit 2 ;;
esac
[ "$COUNT" -ge 1 ] || { echo "need at least one node" >&2; exit 2; }

NODE_PORTS=""
i=0
while [ "$i" -lt "$COUNT" ]; do
    NODE_PORTS="$NODE_PORTS $((BASE_PORT + i))"
    i=$((i + 1))
done

mkdir -p "$BASE"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup INT TERM EXIT

NODES=""
for port in $NODE_PORTS; do
    mkdir -p "$BASE/n$port"
    "$BIN/simdserve" -addr "127.0.0.1:$port" -spool "$BASE/n$port" -checkpoint-every 200 &
    PIDS="$PIDS $!"
    NODES="$NODES,http://127.0.0.1:$port"
done
NODES=${NODES#,}

# Wait for every node to answer before starting the coordinator.
for port in $NODE_PORTS; do
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && { echo "node on :$port never came up" >&2; exit 1; }
        sleep 0.2
    done
done

echo "fleet: $COUNT node(s) up ($NODES); coordinator on $COORD_ADDR"
if [ -n "$STEAL" ]; then
    "$BIN/simdfleet" -addr "$COORD_ADDR" -nodes "$NODES" -probe 1s -sync 1s -steal "$STEAL" &
else
    "$BIN/simdfleet" -addr "$COORD_ADDR" -nodes "$NODES" -probe 1s -sync 1s &
fi
PIDS="$PIDS $!"

wait

#!/bin/sh
# Launch a local fleet: three simdserve nodes with checkpoint spools,
# fronted by one simdfleet coordinator.  Ctrl-C tears everything down.
# Used by `make fleet`; the CI smoke test drives the same topology.
set -eu

BIN=${BIN:-./bin}
BASE=${FLEET_DIR:-/tmp/simdfleet-local}
COORD_ADDR=${COORD_ADDR:-127.0.0.1:18080}
NODE_PORTS="18081 18082 18083"

mkdir -p "$BASE"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup INT TERM EXIT

NODES=""
for port in $NODE_PORTS; do
    mkdir -p "$BASE/n$port"
    "$BIN/simdserve" -addr "127.0.0.1:$port" -spool "$BASE/n$port" -checkpoint-every 200 &
    PIDS="$PIDS $!"
    NODES="$NODES,http://127.0.0.1:$port"
done
NODES=${NODES#,}

# Wait for every node to answer before starting the coordinator.
for port in $NODE_PORTS; do
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && { echo "node on :$port never came up" >&2; exit 1; }
        sleep 0.2
    done
done

echo "fleet: 3 nodes up ($NODES); coordinator on $COORD_ADDR"
"$BIN/simdfleet" -addr "$COORD_ADDR" -nodes "$NODES" -probe 1s -sync 1s &
PIDS="$PIDS $!"

wait

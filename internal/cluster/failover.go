package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"simdtree/internal/checkpoint"
)

// SyncOnce refreshes every non-terminal job's status from its owning
// node and pulls a warm copy of its latest spooled checkpoint.  The
// pulled bytes are what failover ships to a survivor when the owning
// node dies without a chance to hand anything off — the coordinator is
// the only place the checkpoint outlives the node.  The background sync
// loop calls this on its cadence; tests call it to step deterministically.
func (c *Coordinator) SyncOnce(ctx context.Context) {
	for _, f := range c.jobs.all() {
		f.mu.Lock()
		terminal, node, nodeJobID := f.terminal, f.node, f.nodeJobID
		dist := f.dist != nil
		f.mu.Unlock()
		if terminal || node == "" || dist {
			// A distributed run is coordinator-driven: its status lives
			// here, and the steal driver ships its own checkpoints to the
			// donor's spool.
			continue
		}
		body, code, err := c.getJSONBody(ctx, node+"/v1/jobs/"+nodeJobID)
		if err != nil || code != http.StatusOK {
			f.mu.Lock()
			f.unreachable = true
			f.mu.Unlock()
			continue
		}
		var nj nodeJob
		if json.Unmarshal(body, &nj) != nil {
			continue
		}
		f.observe(string(nj.Status))
		if terminalStatus(string(nj.Status)) {
			continue
		}
		c.pullCheckpoint(ctx, f, node, nodeJobID)
	}
}

// pullCheckpoint fetches the job's latest spooled checkpoint from its
// node.  A 404 (no checkpoint yet) and a 409 (node runs spool-less) are
// normal; anything that parses as a valid SCKP frame replaces the warm
// copy.
func (c *Coordinator) pullCheckpoint(ctx context.Context, f *fleetJob, node, nodeJobID string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+nodeJobID+"/checkpoint", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	b, _, err := checkpoint.ReadFrame(resp.Body)
	if err != nil {
		return
	}
	f.mu.Lock()
	f.ckpt = b
	f.mu.Unlock()
	c.ctr.checkpointsPulled.Add(1)
}

// failover re-dispatches every non-terminal job owned by the dead node
// to a survivor.  The target is the key's next ring owner among the
// remaining routable nodes, so the key's routing stays consistent for
// the rest of the outage.  A job with a warm checkpoint is shipped via
// the survivor's import endpoint and resumes from its last cycle
// boundary; a job without one (it died queued, or before its first
// checkpoint cadence) is re-submitted fresh.  Either way the completed
// result is byte-identical to an uninterrupted run, by the determinism
// contract.
func (c *Coordinator) failover(ctx context.Context, dead string) {
	for _, f := range c.jobs.all() {
		f.mu.Lock()
		owned := !f.terminal && f.node == dead && f.dist == nil
		ckpt := f.ckpt
		f.mu.Unlock()
		if !owned {
			// Distributed runs recover through the steal driver's own
			// failure path (re-import of the last assembled checkpoint),
			// not through node failover.
			continue
		}
		target, ok := c.ring.Lookup(f.key, func(u string) bool {
			return u != dead && c.routable(u)
		})
		if !ok {
			f.mu.Lock()
			f.lastErr = "failover: no routable survivor"
			f.unreachable = true
			f.mu.Unlock()
			continue
		}
		if ckpt != nil {
			if nj, err := c.importCheckpoint(ctx, target, ckpt); err == nil {
				f.mu.Lock()
				f.node = target
				f.nodeJobID = nj.ID
				f.status = string(nj.Status)
				f.terminal = terminalStatus(string(nj.Status))
				f.resumed = true
				f.failovers++
				f.unreachable = false
				f.lastErr = ""
				f.mu.Unlock()
				c.ctr.jobsFailedOver.Add(1)
				c.ctr.failoverResumed.Add(1)
				continue
			}
		}
		f.mu.Lock()
		spec := f.spec
		f.mu.Unlock()
		nj, _, err := c.submitToNode(ctx, target, spec, "")
		if err != nil {
			f.mu.Lock()
			f.lastErr = fmt.Sprintf("failover to %s: %v", target, err)
			f.unreachable = true
			f.mu.Unlock()
			continue
		}
		f.mu.Lock()
		f.node = target
		f.nodeJobID = nj.ID
		f.status = string(nj.Status)
		f.terminal = terminalStatus(string(nj.Status))
		f.resumed = false
		f.failovers++
		f.unreachable = false
		f.lastErr = ""
		f.mu.Unlock()
		c.ctr.jobsFailedOver.Add(1)
	}
}

// importCheckpoint ships a warm checkpoint to a survivor's import
// endpoint and returns the node's job record.
func (c *Coordinator) importCheckpoint(ctx context.Context, target string, ckpt []byte) (nodeJob, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/jobs/import", bytes.NewReader(ckpt))
	if err != nil {
		return nodeJob{}, err
	}
	req.Header.Set("Content-Type", checkpoint.ContentType)
	resp, err := c.client.Do(req)
	if err != nil {
		return nodeJob{}, err
	}
	defer resp.Body.Close()
	body, err := readBounded(resp.Body)
	if err != nil {
		return nodeJob{}, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nodeJob{}, fmt.Errorf("import: node answered %d: %s", resp.StatusCode, truncateForErr(body))
	}
	var nj nodeJob
	if err := json.Unmarshal(body, &nj); err != nil {
		return nodeJob{}, err
	}
	return nj, nil
}

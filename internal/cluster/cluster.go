// Package cluster implements simdfleet, the multi-node coordination
// layer over simdserve backends.  The paper's core matching idea — idle
// PEs are paired with busy donors by a rotating global pointer so no
// donor is re-picked before the pointer wraps (§4.1, Table 1) — is
// applied one level up: the fleet's nodes are the PEs, their bounded
// job queues are the work, and the coordinator is the front end that
//
//   - routes jobs by consistent hashing on the canonical SHA-256 cache
//     key, so identical specs land on the node that already holds the
//     cached or checkpointed result (ring.go);
//   - spills overflow with a GP-style rotating pointer when the home
//     node's queue depth crosses a threshold (gpselect.go);
//   - health-probes nodes with exponential backoff, ejecting and
//     readmitting them (health.go);
//   - keeps a warm copy of every running job's latest checkpoint and,
//     on node death, ships it to a survivor so the job resumes from its
//     last cycle boundary and — by the determinism contract — still
//     produces byte-identical results (failover.go).
//
// The coordinator's HTTP API mirrors a node's /v1/jobs surface, so a
// client written against one simdserve talks to the fleet unchanged.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"simdtree/internal/server"
)

// Config shapes a Coordinator.  Only Nodes is required.
type Config struct {
	// Nodes are the backend base URLs (e.g. "http://127.0.0.1:18081").
	Nodes []string
	// Replicas is the virtual-node count per node on the hash ring
	// (default DefaultReplicas).
	Replicas int
	// OverflowDepth is the queue depth (as last scraped from a node's
	// /metrics) above which the home node is considered overloaded and
	// the GP pointer picks an underloaded target instead (default 8).
	OverflowDepth int
	// FailThreshold ejects a node after this many consecutive probe
	// failures (default 3).
	FailThreshold int
	// ProbeInterval is the health-probe cadence; 0 disables the
	// background prober (tests drive ProbeOnce explicitly).
	ProbeInterval time.Duration
	// SyncInterval is the job-status/checkpoint-pull cadence; 0
	// disables the background loop (tests drive SyncOnce explicitly).
	SyncInterval time.Duration
	// StealInterval is the work-stealing sweep cadence: on each tick the
	// coordinator looks for one running stealable job and a fresh
	// underloaded receiver node, and converts the job into a distributed
	// sharded run (steal.Driver over per-node shard sessions).  0 disables
	// the steal controller (tests drive StealOnce explicitly).
	StealInterval time.Duration
	// StealShards is the number of shards a stolen job is split across,
	// the donor node keeping shard 0 (default 2).
	StealShards int
	// BackoffMax caps the exponential probe backoff for an unreachable
	// node (default 30s).
	BackoffMax time.Duration
	// RequestTimeout bounds every HTTP call to a node (default 10s).
	RequestTimeout time.Duration
	// ExtraDomains extends the builtin domain set the coordinator
	// canonicalizes against, for nodes running injected runners (tests).
	ExtraDomains []string
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.OverflowDepth <= 0 {
		c.OverflowDepth = 8
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.StealShards <= 0 {
		c.StealShards = 2
	}
	return c
}

// errNoNodes is returned (as a 503) when no routable node remains.
var errNoNodes = errors.New("cluster: no healthy node available")

// Coordinator fronts a fleet of simdserve nodes.
type Coordinator struct {
	cfg  Config
	ring *Ring
	gp   *GPSelector
	// stealGP is the steal controller's own rotating pointer over the node
	// list, picking receiver nodes for stolen shards.  It is separate from
	// the overflow pointer so stealing and overflow spill rotate
	// independently, but obeys the same invariant: no eligible node is
	// re-targeted before the pointer wraps.
	stealGP *GPSelector
	domains map[string]bool
	client  *http.Client
	// stream is the client for long-lived SSE proxying: no overall
	// timeout (a progress stream legitimately outlives RequestTimeout);
	// cancellation comes from the subscriber's request context.
	stream *http.Client

	nodesMu sync.RWMutex // guards the map structure only; nodes lock themselves
	nodes   map[string]*node
	order   []string // sorted node URLs, the ring/GP membership order

	// inflight collapses identical in-flight specs across the ring: cache
	// key -> fleet job id of a non-terminal routed job.  Entries are
	// dropped lazily when the job is observed terminal.
	inflightMu sync.Mutex
	inflight   map[string]string

	jobs    *fleetStore
	ctr     fleetCounters
	nextID  atomic.Int64
	started time.Time

	loopCtx  context.Context
	loopStop context.CancelFunc
	wg       sync.WaitGroup
}

// fleetCounters are the /metrics monotonic counters.
type fleetCounters struct {
	jobsRouted        atomic.Int64 // jobs forwarded to their ring home
	jobsCollapsed     atomic.Int64 // submissions answered by an in-flight identical spec
	jobsOverflow      atomic.Int64 // jobs spilled to a GP-picked target
	jobsFailedOver    atomic.Int64 // jobs re-dispatched after a node death
	failoverResumed   atomic.Int64 // ...of which resumed from a shipped checkpoint
	checkpointsPulled atomic.Int64 // warm checkpoint copies fetched from nodes
	jobsStolen        atomic.Int64 // jobs converted into distributed sharded runs
	stealCompleted    atomic.Int64 // distributed runs that finished cleanly
	stealFailed       atomic.Int64 // distributed runs that aborted
	stealDonations    atomic.Int64 // cross-node stack-segment frames shipped
	stealLocal        atomic.Int64 // matched transfers that stayed within one shard
	probes            atomic.Int64
	probeFailures     atomic.Int64
	nodesEjected      atomic.Int64
	nodesReadmitted   atomic.Int64
}

// New builds a Coordinator over the configured nodes and starts its
// probe and sync loops (each only when its interval is non-zero).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: need at least one node")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, errors.New("cluster: empty node URL")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	domains := make(map[string]bool)
	for _, d := range server.BuiltinDomains() {
		domains[d] = true
	}
	for _, d := range cfg.ExtraDomains {
		domains[d] = true
	}
	ring := NewRing(cfg.Nodes, cfg.Replicas)
	order := ring.Nodes() // sorted; the GP rotation order
	nodes := make(map[string]*node, len(order))
	for _, u := range order {
		nodes[u] = newNode(u)
	}
	//lint:allow ctxflow coordinator-lifetime root context, cancelled by Stop
	loopCtx, loopStop := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:      cfg,
		ring:     ring,
		gp:       NewGPSelector(order),
		stealGP:  NewGPSelector(order),
		domains:  domains,
		client:   &http.Client{Timeout: cfg.RequestTimeout},
		stream:   &http.Client{},
		nodes:    nodes,
		order:    order,
		inflight: make(map[string]string),
		jobs:     newFleetStore(),
		started:  time.Now(),
		loopCtx:  loopCtx,
		loopStop: loopStop,
	}
	if cfg.ProbeInterval > 0 {
		c.wg.Add(1)
		go c.loop(cfg.ProbeInterval, func(ctx context.Context) { c.probe(ctx, false) })
	}
	if cfg.SyncInterval > 0 {
		c.wg.Add(1)
		go c.loop(cfg.SyncInterval, c.SyncOnce)
	}
	if cfg.StealInterval > 0 {
		c.wg.Add(1)
		go c.loop(cfg.StealInterval, func(ctx context.Context) {
			_, _ = c.StealOnce(ctx) //lint:allow errdrop per-job errors are recorded on the fleet job
		})
	}
	return c, nil
}

// Shutdown stops the background loops.  The nodes themselves are not
// owned by the coordinator and keep running.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.loopStop()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// loop runs fn at the given cadence until shutdown.
func (c *Coordinator) loop(every time.Duration, fn func(context.Context)) {
	defer c.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.loopCtx.Done():
			return
		case <-t.C:
			fn(c.loopCtx)
		}
	}
}

// nodeByURL returns the tracked node state.
func (c *Coordinator) nodeByURL(url string) (*node, bool) {
	c.nodesMu.RLock()
	defer c.nodesMu.RUnlock()
	n, ok := c.nodes[url]
	return n, ok
}

// routable reports whether url currently accepts new work.
func (c *Coordinator) routable(url string) bool {
	n, ok := c.nodeByURL(url)
	return ok && n.currentStatus() == NodeHealthy
}

// depth returns url's last scraped queue depth (0 when unknown).
func (c *Coordinator) depth(url string) int {
	n, ok := c.nodeByURL(url)
	if !ok {
		return 0
	}
	return n.currentDepth()
}

// fresh reports whether url's last queue-gauge scrape is recent enough to
// trust for placement decisions: no older than one probe interval.  A
// stale scrape means the depth could hide a pile-up that built since, so
// overflow spill and steal placement skip the node.  With the background
// prober disabled (ProbeInterval 0, tests drive ProbeOnce explicitly)
// every scrape counts as fresh.
func (c *Coordinator) fresh(url string) bool {
	if c.cfg.ProbeInterval <= 0 {
		return true
	}
	n, ok := c.nodeByURL(url)
	if !ok {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.scraped.IsZero() && time.Since(n.scraped) <= c.cfg.ProbeInterval
}

// route picks the node for a cache key: the ring home unless its queue
// depth exceeds the overflow threshold, in which case the GP pointer
// selects the next underloaded routable node (never re-targeting one
// before the pointer wraps).  The bool reports an overflow routing.
func (c *Coordinator) route(key string) (string, bool, error) {
	home, ok := c.ring.Lookup(key, c.routable)
	if !ok {
		return "", false, errNoNodes
	}
	if c.depth(home) > c.cfg.OverflowDepth {
		alt, ok := c.gp.Pick(func(u string) bool {
			return u != home && c.routable(u) && c.fresh(u) && c.depth(u) <= c.cfg.OverflowDepth
		})
		if ok {
			return alt, true, nil
		}
	}
	return home, false, nil
}

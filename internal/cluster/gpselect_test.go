package cluster

import (
	"strconv"
	"testing"
)

// lcg is a tiny deterministic generator for synthetic queue-depth skew;
// explicit state, so the property test replays bit-for-bit.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

// TestGPRotationInvariant is the fleet-level restatement of the paper's
// Table 1 GP invariant: while the eligible set is stable, no node is
// selected as an overflow target twice before every eligible node has
// been selected once — each full window of |eligible| picks is a
// permutation of the eligible set.
func TestGPRotationInvariant(t *testing.T) {
	const nNodes = 8
	nodes := make([]string, nNodes)
	for i := range nodes {
		nodes[i] = "node-" + strconv.Itoa(i)
	}
	g := NewGPSelector(nodes)
	rng := lcg(42)

	const threshold = 10
	// 200 phases of synthetic queue-depth skew; the eligible set changes
	// between phases but is held stable within one, matching how the
	// coordinator's scraped depths only move between probe sweeps.
	for phase := 0; phase < 200; phase++ {
		depth := make(map[string]int, nNodes)
		eligibleCount := 0
		for _, n := range nodes {
			depth[n] = int(rng.next() % 20)
			if depth[n] <= threshold {
				eligibleCount++
			}
		}
		eligible := func(n string) bool { return depth[n] <= threshold }
		if eligibleCount == 0 {
			if _, ok := g.Pick(eligible); ok {
				t.Fatal("Pick succeeded with nothing eligible")
			}
			continue
		}
		// One full rotation: every eligible node exactly once.
		seen := make(map[string]bool, eligibleCount)
		for i := 0; i < eligibleCount; i++ {
			n, ok := g.Pick(eligible)
			if !ok {
				t.Fatalf("phase %d pick %d: no selection with %d eligible", phase, i, eligibleCount)
			}
			if !eligible(n) {
				t.Fatalf("phase %d: selected overloaded node %s", phase, n)
			}
			if seen[n] {
				t.Fatalf("phase %d: node %s re-targeted before the pointer wrapped (seen %d of %d)", phase, n, len(seen), eligibleCount)
			}
			seen[n] = true
		}
	}
}

// TestGPPointerPersists checks the pointer is not reset between
// windows: with everyone eligible, 2N picks hit each node exactly
// twice, in the same rotational order.
func TestGPPointerPersists(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	g := NewGPSelector(nodes)
	var seq []string
	for i := 0; i < 2*len(nodes); i++ {
		n, ok := g.Pick(nil)
		if !ok {
			t.Fatal("pick failed with all eligible")
		}
		seq = append(seq, n)
	}
	for i := 0; i < len(nodes); i++ {
		if seq[i] != seq[i+len(nodes)] {
			t.Fatalf("rotation order drifted: %v", seq)
		}
	}
	counts := map[string]int{}
	for _, n := range seq {
		counts[n]++
	}
	for _, n := range nodes {
		if counts[n] != 2 {
			t.Fatalf("node %s picked %d times in two full rotations", n, counts[n])
		}
	}
}

package cluster

import "sync"

// fleetJob is the coordinator's record of one routed job: where it
// lives, what key it hashes to, and the warm checkpoint copy that makes
// failover possible when the owning node dies without warning.
type fleetJob struct {
	id   string // fleet-level id ("f1", ...)
	key  string // canonical cache key; the routing hash
	spec []byte // canonical spec JSON, for checkpoint-less re-dispatch

	mu          sync.Mutex
	node        string // owning node URL
	nodeJobID   string // job id on the owning node
	status      string // last observed node-side status
	terminal    bool
	overflow    bool     // was GP-routed away from its ring home
	failovers   int      // times re-dispatched after a node death
	resumed     bool     // last dispatch resumed from a shipped checkpoint
	unreachable bool     // last proxy attempt failed
	lastErr     string   // last coordination error (e.g. failed failover)
	ckpt        []byte   // latest pulled checkpoint, nil before the first pull
	dist        *distRun // non-nil once the job was stolen into a sharded run
}

// distRun returns the job's distributed-run state, nil for ordinary
// node-owned jobs.
func (f *fleetJob) distRun() *distRun {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dist
}

// place records a (re)dispatch to a node.
func (f *fleetJob) place(node, nodeJobID, status string, resumed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.node = node
	f.nodeJobID = nodeJobID
	f.status = status
	f.terminal = terminalStatus(status)
	f.resumed = resumed
	f.unreachable = false
	f.lastErr = ""
}

// observe records a status seen while proxying or syncing.
func (f *fleetJob) observe(status string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.status = status
	f.terminal = terminalStatus(status)
	f.unreachable = false
	if f.terminal {
		f.ckpt = nil // the result exists; the warm copy is dead weight
	}
}

// snapshot returns an immutable copy for handlers.
func (f *fleetJob) snapshot() fleetJobView {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fleetJobView{
		ID:          f.id,
		Key:         f.key,
		Node:        f.node,
		NodeJobID:   f.nodeJobID,
		Status:      f.status,
		Terminal:    f.terminal,
		Overflow:    f.overflow,
		Failovers:   f.failovers,
		Resumed:     f.resumed,
		Unreachable: f.unreachable,
		LastErr:     f.lastErr,
		HasCkpt:     f.ckpt != nil,
		Distributed: f.dist != nil,
	}
}

type fleetJobView struct {
	ID          string
	Key         string
	Node        string
	NodeJobID   string
	Status      string
	Terminal    bool
	Overflow    bool
	Failovers   int
	Resumed     bool
	Unreachable bool
	LastErr     string
	HasCkpt     bool
	Distributed bool
}

// terminalStatus mirrors the node-side terminal set (server.Status).
func terminalStatus(s string) bool {
	switch s {
	case "done", "cancelled", "timeout", "exhausted", "failed":
		return true
	}
	return false
}

// fleetStore maps fleet job ids to records, in submission order.
type fleetStore struct {
	mu    sync.Mutex
	byID  map[string]*fleetJob
	order []string
}

func newFleetStore() *fleetStore {
	return &fleetStore{byID: make(map[string]*fleetJob)}
}

func (s *fleetStore) add(f *fleetJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[f.id] = f
	s.order = append(s.order, f.id)
}

func (s *fleetStore) get(id string) (*fleetJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byID[id]
	return f, ok
}

// all returns the jobs in submission order.
func (s *fleetStore) all() []*fleetJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*fleetJob, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

package cluster

import (
	"strconv"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i)
	}
	return keys
}

// TestRingDeterministic pins that ring construction is independent of
// the node-list order and of the process: the same membership must
// place every key identically, or a restarted coordinator would scatter
// cached results.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2"}, 64)
	for _, k := range sampleKeys(500) {
		na, ok := a.Lookup(k, nil)
		if !ok {
			t.Fatalf("lookup %q failed", k)
		}
		nb, _ := b.Lookup(k, nil)
		if na != nb {
			t.Fatalf("key %q: ring order changed placement: %s vs %s", k, na, nb)
		}
	}
}

// TestRingCoverage checks the virtual nodes spread keys over every
// member — the reason replicas exist.
func TestRingCoverage(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(nodes, 64)
	owned := map[string]int{}
	for _, k := range sampleKeys(3000) {
		n, _ := r.Lookup(k, nil)
		owned[n]++
	}
	for _, n := range nodes {
		if owned[n] == 0 {
			t.Errorf("node %s owns no keys out of 3000", n)
		}
	}
}

// TestRingEligibilityRemap pins the consistent-hashing property the
// failover path relies on: excluding one node moves only the keys it
// owned (each to a deterministic successor), and restoring it moves
// exactly those keys back.
func TestRingEligibilityRemap(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(nodes, 64)
	keys := sampleKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k, nil)
	}
	dead := "http://n2"
	alive := func(n string) bool { return n != dead }
	for _, k := range keys {
		during, ok := r.Lookup(k, alive)
		if !ok {
			t.Fatalf("no eligible node for %q", k)
		}
		if during == dead {
			t.Fatalf("key %q routed to excluded node", k)
		}
		if before[k] != dead && during != before[k] {
			t.Errorf("key %q owned by %s moved to %s during an unrelated outage", k, before[k], during)
		}
	}
	// Readmission: placement returns to exactly the pre-outage state.
	for _, k := range keys {
		after, _ := r.Lookup(k, nil)
		if after != before[k] {
			t.Errorf("key %q: %s before outage, %s after readmission", k, before[k], after)
		}
	}
	// Exclude everything: lookup must report failure, not spin.
	if _, ok := r.Lookup("x", func(string) bool { return false }); ok {
		t.Error("lookup succeeded with no eligible nodes")
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"simdtree/internal/server"
)

// The coordinator's HTTP surface mirrors a node's /v1/jobs API: a
// client that speaks simdserve speaks simdfleet.  Responses wrap the
// owning node's verbatim job document in a fleet envelope that adds the
// routing facts (node, overflow, failovers).

// nodeJob is the slice of a node's job JSON the coordinator reads.
type nodeJob struct {
	ID       string        `json:"id"`
	Status   server.Status `json:"status"`
	CacheKey string        `json:"cache_key"`
}

// fleetJobResponse is the coordinator's wire form of a routed job.
type fleetJobResponse struct {
	ID          string          `json:"id"`
	CacheKey    string          `json:"cache_key"`
	Node        string          `json:"node"`
	NodeJobID   string          `json:"node_job_id"`
	Status      string          `json:"status"`
	Distributed bool            `json:"distributed,omitempty"`
	Overflow    bool            `json:"overflow,omitempty"`
	Failovers   int             `json:"failovers,omitempty"`
	Resumed     bool            `json:"resumed_by_failover,omitempty"`
	Unreachable bool            `json:"node_unreachable,omitempty"`
	Error       string          `json:"error,omitempty"`
	Job         json.RawMessage `json:"job,omitempty"`
}

func renderFleetJob(v fleetJobView, raw json.RawMessage) fleetJobResponse {
	return fleetJobResponse{
		ID:          v.ID,
		CacheKey:    v.Key,
		Node:        v.Node,
		NodeJobID:   v.NodeJobID,
		Status:      v.Status,
		Distributed: v.Distributed,
		Overflow:    v.Overflow,
		Failovers:   v.Failovers,
		Resumed:     v.Resumed,
		Unreachable: v.Unreachable,
		Error:       v.LastErr,
		Job:         raw,
	}
}

// Handler returns the coordinator's HTTP routing table.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", c.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleTrace)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /fleet", c.handleFleet)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// handleSubmit implements POST /v1/jobs: canonicalize against the same
// rules a node applies, hash the canonical spec, collapse onto an
// identical in-flight job if one exists anywhere in the ring, otherwise
// route by ring (or GP overflow) and forward.  A 429/503 from the chosen
// node triggers one GP retry on the remaining underloaded nodes before
// the rejection is passed through.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	canonical, err := server.Canonicalize(spec, c.domains)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := r.Header.Get(server.TenantHeader)
	f, raw, collapsed, code, msg := c.submitOne(r.Context(), canonical, tenant)
	if code != 0 {
		writeError(w, code, msg)
		return
	}
	if collapsed {
		w.Header().Set("X-Collapsed", "1")
	}
	v := f.snapshot()
	status := http.StatusAccepted
	if terminalStatus(v.Status) {
		status = http.StatusOK // node served it from cache
	}
	writeJSON(w, status, renderFleetJob(v, raw))
}

// submitToNode POSTs a canonical spec to one node's /v1/jobs, forwarding
// the submitting tenant.
func (c *Coordinator) submitToNode(ctx context.Context, target string, specJSON []byte, tenant string) (nodeJob, json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/jobs", bytes.NewReader(specJSON))
	if err != nil {
		return nodeJob{}, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(server.TenantHeader, tenant)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nodeJob{}, nil, err
	}
	defer resp.Body.Close()
	body, err := readBounded(resp.Body)
	if err != nil {
		return nodeJob{}, nil, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nodeJob{}, nil, fmt.Errorf("node answered %d: %s", resp.StatusCode, truncateForErr(body))
	}
	var nj nodeJob
	if err := json.Unmarshal(body, &nj); err != nil {
		return nodeJob{}, nil, err
	}
	return nj, body, nil
}

// handleGet implements GET /v1/jobs/{id}: proxy to the owning node and
// refresh the fleet record.  When the node is unreachable (mid-outage),
// the last known state is served with node_unreachable set, so pollers
// keep working across a failover window.
func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	f, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	if d := f.distRun(); d != nil {
		// A distributed run's merged document lives on the coordinator.
		writeJSON(w, http.StatusOK, renderFleetJob(f.snapshot(), d.document()))
		return
	}
	f.mu.Lock()
	node, nodeJobID := f.node, f.nodeJobID
	f.mu.Unlock()
	body, code, err := c.getJSONBody(r.Context(), node+"/v1/jobs/"+nodeJobID)
	if err != nil || code != http.StatusOK {
		f.mu.Lock()
		f.unreachable = true
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, renderFleetJob(f.snapshot(), nil))
		return
	}
	var nj nodeJob
	if json.Unmarshal(body, &nj) == nil {
		f.observe(string(nj.Status))
	}
	writeJSON(w, http.StatusOK, renderFleetJob(f.snapshot(), body))
}

// handleCancel implements DELETE /v1/jobs/{id}, proxied to the owner.
func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	f, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	if d := f.distRun(); d != nil {
		// Cancel the coordinator-driven run; the donor keeps its spooled
		// cancel checkpoint, exactly like a node-side cancel.
		d.cancel(errStealCancelled)
		select {
		case <-d.done:
		case <-r.Context().Done():
		}
		writeJSON(w, http.StatusOK, renderFleetJob(f.snapshot(), d.document()))
		return
	}
	f.mu.Lock()
	node, nodeJobID := f.node, f.nodeJobID
	f.mu.Unlock()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, node+"/v1/jobs/"+nodeJobID, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("node %s: %v", node, err))
		return
	}
	defer resp.Body.Close()
	body, err := readBounded(resp.Body)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	if resp.StatusCode != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body) //lint:allow errdrop response writer errors are unreportable
		return
	}
	var nj nodeJob
	if json.Unmarshal(body, &nj) == nil {
		f.observe(string(nj.Status))
	}
	writeJSON(w, http.StatusOK, renderFleetJob(f.snapshot(), body))
}

// handleTrace implements GET /v1/jobs/{id}/trace as a pure proxy,
// passing the query string (including ?trace_limit=) through to the
// owning node.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	f, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	if d := f.distRun(); d != nil {
		c.serveDistTrace(w, r, f, d)
		return
	}
	f.mu.Lock()
	node, nodeJobID := f.node, f.nodeJobID
	f.mu.Unlock()
	url := node + "/v1/jobs/" + nodeJobID + "/trace"
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	body, code, err := c.getJSONBody(r.Context(), url)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("node %s: %v", node, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body) //lint:allow errdrop response writer errors are unreportable
}

// handleList implements GET /v1/jobs: the fleet's job records, oldest
// first, without proxying (statuses are as fresh as the last sync).
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := c.jobs.all()
	out := make([]fleetJobResponse, 0, len(jobs))
	for _, f := range jobs {
		out = append(out, renderFleetJob(f.snapshot(), nil))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleHealthz reports coordinator liveness: ok while at least one
// node is routable.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, u := range c.order {
		if c.routable(u) {
			healthy++
		}
	}
	if healthy == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy nodes"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// fleetNodeJSON is one node's row in the /fleet document.
type fleetNodeJSON struct {
	URL            string  `json:"url"`
	Status         string  `json:"status"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	Failures       int     `json:"failures"`
	DrainTimeoutMS int64   `json:"drain_timeout_ms"`
	LastSeenAgeSec float64 `json:"last_seen_age_seconds,omitempty"`
	// ScrapedAgoMS is the age of the last queue-gauge scrape, -1 when the
	// node has never been scraped.  Overflow spill and steal receiver
	// selection both skip nodes whose scrape is older than one probe
	// interval — routing on stale depth is how herds form.
	ScrapedAgoMS int64 `json:"scraped_ago_ms"`
}

// handleFleet implements GET /fleet: the membership, health and routing
// state an operator needs to see at a glance.
func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	nodes := make([]fleetNodeJSON, 0, len(c.order))
	for _, u := range c.order {
		n, ok := c.nodeByURL(u)
		if !ok {
			continue
		}
		n.mu.Lock()
		row := fleetNodeJSON{
			URL:            n.url,
			Status:         string(n.status),
			QueueDepth:     n.queueDepth,
			QueueCapacity:  n.queueCap,
			Failures:       n.failures,
			DrainTimeoutMS: n.drain.Milliseconds(),
			ScrapedAgoMS:   -1,
		}
		if !n.lastSeen.IsZero() {
			row.LastSeenAgeSec = now.Sub(n.lastSeen).Seconds()
		}
		if !n.scraped.IsZero() {
			row.ScrapedAgoMS = now.Sub(n.scraped).Milliseconds()
		}
		n.mu.Unlock()
		nodes = append(nodes, row)
	}
	type stealJobJSON struct {
		ID             string      `json:"id"`
		Status         string      `json:"status"`
		Shards         []shardProv `json:"shards"`
		Donations      int         `json:"donations"`
		LocalTransfers int         `json:"local_transfers"`
	}
	stealJobs := make([]stealJobJSON, 0)
	for _, f := range c.jobs.all() {
		d := f.distRun()
		if d == nil {
			continue
		}
		status, _, _, donations, locals, _ := d.view()
		stealJobs = append(stealJobs, stealJobJSON{
			ID:             d.id,
			Status:         status,
			Shards:         d.shards,
			Donations:      donations,
			LocalTransfers: locals,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": nodes,
		"ring": map[string]any{
			"replicas": c.ring.Replicas(),
			"points":   len(c.ring.points),
		},
		"gp_pointer": c.gp.Pointer(),
		"steal": map[string]any{
			"pointer": c.stealGP.Pointer(),
			"jobs":    stealJobs,
		},
	})
}

// fleetMetrics is the coordinator's /metrics document.
type fleetMetrics struct {
	UptimeSeconds     float64 `json:"uptime_seconds"`
	NodesTotal        int     `json:"nodes_total"`
	NodesHealthy      int     `json:"nodes_healthy"`
	JobsRouted        int64   `json:"jobs_routed_total"`
	JobsCollapsed     int64   `json:"jobs_collapsed_total"`
	JobsOverflow      int64   `json:"jobs_overflow_routed_total"`
	JobsFailedOver    int64   `json:"jobs_failed_over_total"`
	FailoverResumed   int64   `json:"jobs_failed_over_resumed_total"`
	CheckpointsPulled int64   `json:"checkpoints_pulled_total"`
	Probes            int64   `json:"probes_total"`
	ProbeFailures     int64   `json:"probe_failures_total"`
	NodesEjected      int64   `json:"nodes_ejected_total"`
	NodesReadmitted   int64   `json:"nodes_readmitted_total"`
	JobsStolen        int64   `json:"jobs_stolen_total"`
	StealCompleted    int64   `json:"steal_runs_completed_total"`
	StealFailed       int64   `json:"steal_runs_failed_total"`
	StealDonations    int64   `json:"steal_donations_total"`
	StealLocal        int64   `json:"steal_local_transfers_total"`
}

// handleMetrics implements GET /metrics.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, u := range c.order {
		if c.routable(u) {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, fleetMetrics{
		UptimeSeconds:     time.Since(c.started).Seconds(),
		NodesTotal:        len(c.order),
		NodesHealthy:      healthy,
		JobsRouted:        c.ctr.jobsRouted.Load(),
		JobsCollapsed:     c.ctr.jobsCollapsed.Load(),
		JobsOverflow:      c.ctr.jobsOverflow.Load(),
		JobsFailedOver:    c.ctr.jobsFailedOver.Load(),
		FailoverResumed:   c.ctr.failoverResumed.Load(),
		CheckpointsPulled: c.ctr.checkpointsPulled.Load(),
		Probes:            c.ctr.probes.Load(),
		ProbeFailures:     c.ctr.probeFailures.Load(),
		NodesEjected:      c.ctr.nodesEjected.Load(),
		NodesReadmitted:   c.ctr.nodesReadmitted.Load(),
		JobsStolen:        c.ctr.jobsStolen.Load(),
		StealCompleted:    c.ctr.stealCompleted.Load(),
		StealFailed:       c.ctr.stealFailed.Load(),
		StealDonations:    c.ctr.stealDonations.Load(),
		StealLocal:        c.ctr.stealLocal.Load(),
	})
}

// maxNodeResponse bounds any body read from a node; traces are the
// largest legitimate payload and fit comfortably.
const maxNodeResponse = 64 << 20

func readBounded(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxNodeResponse+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxNodeResponse {
		return nil, fmt.Errorf("cluster: node response exceeds %d bytes", maxNodeResponse)
	}
	return b, nil
}

// truncateForErr keeps error messages readable when a node answers with
// a large body.
func truncateForErr(b []byte) string {
	const max = 256
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //lint:allow errdrop response writer errors are unreportable
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

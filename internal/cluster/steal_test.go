package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simdtree/internal/server"
)

// stealSpec is the job the steal e2e distributes: a built-in domain (only
// built-ins can host shard sessions), sharded-friendly P, traced so the
// merged trace can be compared against the undistributed run.  The
// workload matches the steal driver's donation test: an early donation of
// it reliably produces cross-shard frames.
const stealSpec = `{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":4000,"seed":3},"trace":true}`

// distWireDoc mirrors the coordinator's merged job document for decoding.
type distWireDoc struct {
	ID             string          `json:"id"`
	Status         string          `json:"status"`
	CacheKey       string          `json:"cache_key"`
	Distributed    bool            `json:"distributed"`
	Shards         []shardProv     `json:"shards"`
	Donations      int             `json:"donations"`
	LocalTransfers int             `json:"local_transfers"`
	Stats          json.RawMessage `json:"stats"`
	Efficiency     float64         `json:"efficiency"`
	Speedup        float64         `json:"speedup"`
}

// getTraceNormalized fetches a trace document and strips the job id (the
// only field legitimately differing between a node's rendering and the
// coordinator's), returning canonical bytes for comparison.
func getTraceNormalized(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body) //lint:allow errdrop the error body is advisory
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	delete(m, "id")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetStealDistributedRun is the subsystem's kill-free acceptance
// path: a job starts on node A, the coordinator steals it mid-run —
// donation checkpoint off A, shard sessions opened on A and B, lock-step
// driver over both — at least one stack segment crosses to node B as a
// donation frame, and the merged result (stats, efficiency, speedup,
// trace) is byte-identical to the same spec run undistributed on a
// standalone node.
func TestFleetStealDistributedRun(t *testing.T) {
	ctx := context.Background()

	// Reference: the same spec, undistributed, on a spool-less node with
	// the stock built-in runner.
	ref := startNode(t, server.Config{Workers: 1})
	refSub, code := postJSONAs[innerWireJob](t, ref.ts.URL+"/v1/jobs", stealSpec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d", code)
	}
	refFin := waitNodeTerminal(t, ref.ts.URL, refSub.ID)
	if refFin.Status != "done" {
		t.Fatalf("reference job finished %q: %s", refFin.Status, refFin.Error)
	}
	var refEff struct {
		Efficiency float64 `json:"efficiency"`
		Speedup    float64 `json:"speedup"`
	}
	refDoc := getJSONAs[json.RawMessage](t, ref.ts.URL+"/v1/jobs/"+refSub.ID)
	if err := json.Unmarshal(refDoc, &refEff); err != nil {
		t.Fatal(err)
	}
	refTrace := getTraceNormalized(t, ref.ts.URL+"/v1/jobs/"+refSub.ID+"/trace")

	// Two spooled nodes.  The synthetic runner is overridden with a gated
	// wrapper around the identical machine construction, so the run can
	// be held at a cycle boundary long enough for the steal sweep to land
	// deterministically; the gate releases the moment the donation's
	// cancellation fires.  Both nodes carry a gate (ring placement of the
	// key is port-dependent), only the home node's is armed.
	const ckptEvery = 50
	gates := make([]*fleetGate, 2)
	nodes := make([]*testNode, 2)
	urls := make([]string, 2)
	for i := range nodes {
		gates[i] = newFleetGate(2)
		nodes[i] = startNode(t, server.Config{
			Workers: 1, Spool: t.TempDir(), CheckpointEvery: ckptEvery,
			Runners: map[string]server.Runner{"synthetic": fleetRunner(gates[i].fn)},
		})
		urls[i] = nodes[i].ts.URL
	}

	c, err := New(Config{
		Nodes:          urls,
		OverflowDepth:  1000, // routing here is purely by ring
		StealShards:    2,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running
	c.ProbeOnce(ctx)

	var spec server.JobSpec
	if err := json.Unmarshal([]byte(stealSpec), &spec); err != nil {
		t.Fatal(err)
	}
	canonical, err := server.Canonicalize(spec, c.domains)
	if err != nil {
		t.Fatal(err)
	}
	key := server.CacheKey(canonical)
	home, _, err := c.route(key)
	if err != nil {
		t.Fatal(err)
	}
	homeIdx := 0
	if urls[1] == home {
		homeIdx = 1
	}
	other := urls[1-homeIdx]
	gates[homeIdx].armed.Store(true)

	front := httptest.NewServer(c.Handler())
	defer front.Close()

	sub, code := postJSONAs[fleetWireJob](t, front.URL+"/v1/jobs", stealSpec)
	if code != http.StatusAccepted {
		t.Fatalf("fleet submit: %d", code)
	}
	if sub.Node != home {
		t.Fatalf("job routed to %s, ring home is %s", sub.Node, home)
	}
	<-gates[homeIdx].started // held at cycle 2, provably mid-run

	stolen, err := c.StealOnce(ctx)
	if err != nil {
		t.Fatalf("StealOnce: %v", err)
	}
	if stolen != sub.ID {
		t.Fatalf("StealOnce converted %q, want %q", stolen, sub.ID)
	}

	fin := waitFleetTerminal(t, front.URL, sub.ID)
	if fin.Status != "done" {
		t.Fatalf("distributed job finished %q", fin.Status)
	}
	var doc distWireDoc
	if err := json.Unmarshal(fin.Job, &doc); err != nil {
		t.Fatalf("merged job document: %v", err)
	}
	if !doc.Distributed || doc.Status != "done" {
		t.Fatalf("merged doc distributed=%t status=%q, want true/done", doc.Distributed, doc.Status)
	}
	if doc.CacheKey != key {
		t.Errorf("merged doc key %s, want %s", doc.CacheKey, key)
	}

	// Shard provenance: donor kept [0, 4) on node A, node B absorbed
	// [4, 8).
	if len(doc.Shards) != 2 {
		t.Fatalf("merged doc has %d shards, want 2", len(doc.Shards))
	}
	if doc.Shards[0].Node != home || doc.Shards[0].Lo != 0 || doc.Shards[0].Hi != 4 {
		t.Errorf("shard 0 = %+v, want donor %s [0,4)", doc.Shards[0], home)
	}
	if doc.Shards[1].Node != other || doc.Shards[1].Lo != 4 || doc.Shards[1].Hi != 8 {
		t.Errorf("shard 1 = %+v, want receiver %s [4,8)", doc.Shards[1], other)
	}

	// At least one stack segment crossed node A -> node B mid-run.
	if doc.Donations < 1 {
		t.Errorf("distributed run shipped %d cross-node donation frames, want >= 1", doc.Donations)
	}

	// The merged result is byte-identical to the undistributed run.
	if !bytes.Equal(compactJSON(t, doc.Stats), compactJSON(t, refFin.Stats)) {
		t.Errorf("merged stats differ from undistributed run:\n got %s\nwant %s", doc.Stats, refFin.Stats)
	}
	if doc.Efficiency != refEff.Efficiency || doc.Speedup != refEff.Speedup {
		t.Errorf("merged efficiency/speedup %v/%v, want %v/%v",
			doc.Efficiency, doc.Speedup, refEff.Efficiency, refEff.Speedup)
	}
	distTrace := getTraceNormalized(t, front.URL+"/v1/jobs/"+sub.ID+"/trace")
	if !bytes.Equal(distTrace, refTrace) {
		t.Errorf("merged trace differs from undistributed run:\n got %d bytes\nwant %d bytes", len(distTrace), len(refTrace))
	}

	// Node A's own record of the job shows the donation.
	nodeView := getJSONAs[innerWireJob](t, home+"/v1/jobs/"+sub.NodeJobID)
	if nodeView.Status != "donated" {
		t.Errorf("donor node job status %q, want donated", nodeView.Status)
	}

	// The coordinator-local SSE stream carries the run: per-shard
	// progress events, checkpoint events on the ship cadence, and a
	// terminal status event that closes the stream.
	resp, err := http.Get(front.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sse, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"event: status", "event: progress", "event: checkpoint", `"shard":1`, `"shards":2`} {
		if !strings.Contains(string(sse), want) {
			t.Errorf("distributed SSE stream lacks %q", want)
		}
	}

	// /fleet surfaces the distributed run and the scrape freshness.
	fleet := getJSONAs[map[string]any](t, front.URL+"/fleet")
	stealSec, ok := fleet["steal"].(map[string]any)
	if !ok {
		t.Fatal("/fleet has no steal section")
	}
	jobs, _ := stealSec["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("/fleet steal.jobs has %d entries, want 1", len(jobs))
	}
	row := jobs[0].(map[string]any)
	if row["status"] != "done" || row["id"] != sub.ID {
		t.Errorf("/fleet steal job row %v, want id %s done", row, sub.ID)
	}
	for _, nv := range fleet["nodes"].([]any) {
		n := nv.(map[string]any)
		if ms, ok := n["scraped_ago_ms"].(float64); !ok || ms < 0 {
			t.Errorf("node %v scraped_ago_ms = %v, want >= 0 after a probe", n["url"], n["scraped_ago_ms"])
		}
	}

	// The counters account for the episode.
	m := getJSONAs[map[string]any](t, front.URL+"/metrics")
	for metric, want := range map[string]float64{
		"jobs_stolen_total":          1,
		"steal_runs_completed_total": 1,
		"steal_runs_failed_total":    0,
	} {
		if got := m[metric].(float64); got != want {
			t.Errorf("%s = %v, want %v", metric, got, want)
		}
	}
	if got := m["steal_donations_total"].(float64); got < 1 {
		t.Errorf("steal_donations_total = %v, want >= 1", got)
	}
}

// TestStealReceiverRotationProperty pins the cluster-wide GP invariant on
// the steal controller's receiver pointer: under any eligibility subset,
// a window of |S| consecutive picks targets every eligible node exactly
// once — no node is re-targeted before the pointer wraps — regardless of
// where previous windows left the pointer.
func TestStealReceiverRotationProperty(t *testing.T) {
	urls := []string{"http://n1", "http://n2", "http://n3", "http://n4", "http://n5", "http://n6", "http://n7"}
	c, err := New(Config{Nodes: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running

	// Inline LCG; the repo bans math/rand for reproducibility.
	seed := uint64(0x9e3779b97f4a7c15)
	rnd := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	for trial := 0; trial < 300; trial++ {
		eligible := make(map[string]bool)
		for _, u := range urls {
			if rnd()%2 == 0 {
				eligible[u] = true
			}
		}
		if len(eligible) == 0 {
			if _, ok := c.stealGP.Pick(func(u string) bool { return eligible[u] }); ok {
				t.Fatal("empty eligibility set still produced a pick")
			}
			continue
		}
		seen := make(map[string]bool, len(eligible))
		for i := 0; i < len(eligible); i++ {
			u, ok := c.stealGP.Pick(func(u string) bool { return eligible[u] })
			if !ok {
				t.Fatalf("trial %d: pick %d found no node among %d eligible", trial, i, len(eligible))
			}
			if !eligible[u] {
				t.Fatalf("trial %d: picked ineligible node %s", trial, u)
			}
			if seen[u] {
				t.Fatalf("trial %d: node %s re-targeted before the pointer wrapped over %d eligible nodes", trial, u, len(eligible))
			}
			seen[u] = true
		}
	}
}

// TestOverflowSkipsStaleScrapes pins the freshness gate: with the
// background prober configured, a node whose queue gauges have not been
// scraped within one probe interval is not an overflow target — its depth
// could hide a pile-up — and /fleet reports scraped_ago_ms of -1 for a
// node never scraped at all.
func TestOverflowSkipsStaleScrapes(t *testing.T) {
	urls := []string{"http://n1", "http://n2", "http://n3"}
	c, err := New(Config{Nodes: urls, OverflowDepth: 4, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// The probe loop ticks hourly; it never fires within the test.
	defer c.Shutdown(context.Background()) //lint:allow errdrop the loop is stopped before its first tick

	const key = "deadbeef"
	home, _, err := c.route(key)
	if err != nil {
		t.Fatal(err)
	}
	hn, _ := c.nodeByURL(home)
	hn.setDepth(10)

	// No node has ever been scraped: the home stays loaded but keeps the
	// job rather than spilling onto unknown queues.
	if tgt, ov, err := c.route(key); err != nil || ov || tgt != home {
		t.Fatalf("unscraped fleet routed %s (overflow %t, err %v), want home %s", tgt, ov, err, home)
	}

	// Freshly scraped alternates become eligible again...
	var fresh string
	for _, u := range urls {
		if u == home {
			continue
		}
		fresh = u
		break
	}
	fn, _ := c.nodeByURL(fresh)
	fn.mu.Lock()
	fn.scraped = time.Now()
	fn.mu.Unlock()
	if tgt, ov, err := c.route(key); err != nil || !ov || tgt != fresh {
		t.Fatalf("route gave %s (overflow %t, err %v), want spill to freshly scraped %s", tgt, ov, err, fresh)
	}

	// ...and a scrape older than the probe interval goes stale again.
	fn.mu.Lock()
	fn.scraped = time.Now().Add(-2 * time.Hour)
	fn.mu.Unlock()
	if tgt, ov, err := c.route(key); err != nil || ov || tgt != home {
		t.Fatalf("stale-scrape fleet routed %s (overflow %t, err %v), want home %s", tgt, ov, err, home)
	}

	// /fleet distinguishes never-scraped (-1) from scraped.
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	fleet := getJSONAs[map[string]any](t, ts.URL+"/fleet")
	ages := make(map[string]float64)
	for _, nv := range fleet["nodes"].([]any) {
		n := nv.(map[string]any)
		ages[n["url"].(string)] = n["scraped_ago_ms"].(float64)
	}
	if ages[home] != -1 {
		t.Errorf("never-scraped home reports scraped_ago_ms %v, want -1", ages[home])
	}
	if ages[fresh] < 0 {
		t.Errorf("scraped node reports scraped_ago_ms %v, want >= 0", ages[fresh])
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"simdtree/internal/server"
)

// Fleet-side traffic management, mirroring the node-level traffic layer
// (internal/traffic) one level up: identical in-flight specs collapse
// onto one routed job ring-wide, batches fan out through the same router
// as single submissions, and a node's SSE progress stream proxies
// through the coordinator with the same resume semantics.

// collapseLookup returns the live fleet job an identical spec should
// collapse onto, dropping stale (terminal) entries on the way.
func (c *Coordinator) collapseLookup(key string) (*fleetJob, bool) {
	c.inflightMu.Lock()
	id, ok := c.inflight[key]
	c.inflightMu.Unlock()
	if !ok {
		return nil, false
	}
	f, ok := c.jobs.get(id)
	if !ok || terminalStatus(f.snapshot().Status) {
		c.inflightMu.Lock()
		if c.inflight[key] == id {
			delete(c.inflight, key)
		}
		c.inflightMu.Unlock()
		return nil, false
	}
	return f, true
}

// collapseStore registers a freshly routed non-terminal job as the
// collapse target for its key.
func (c *Coordinator) collapseStore(key, id string) {
	c.inflightMu.Lock()
	c.inflight[key] = id
	c.inflightMu.Unlock()
}

// submitOne admits one canonical spec: collapse, route, forward, record.
// On success code is 0; otherwise code/msg carry the HTTP error.  The
// node cache makes the collapse safe: even when two identical specs race
// past each other here, the second lands on the same ring node and hits
// its cache or its node-level flight table.
func (c *Coordinator) submitOne(ctx context.Context, canonical server.JobSpec, tenant string) (f *fleetJob, raw json.RawMessage, collapsed bool, code int, msg string) {
	key := server.CacheKey(canonical)
	if f, ok := c.collapseLookup(key); ok {
		c.ctr.jobsCollapsed.Add(1)
		return f, nil, true, 0, ""
	}
	specJSON, err := json.Marshal(canonical)
	if err != nil {
		return nil, nil, false, http.StatusInternalServerError, err.Error()
	}
	target, overflow, err := c.route(key)
	if err != nil {
		return nil, nil, false, http.StatusServiceUnavailable, err.Error()
	}
	nj, rawBody, err := c.submitToNode(ctx, target, specJSON, tenant)
	if err != nil {
		// The routed node refused or vanished between probe and submit;
		// give the GP pointer one chance to place the job elsewhere.
		alt, ok := c.gp.Pick(func(u string) bool {
			return u != target && c.routable(u) && c.fresh(u) && c.depth(u) <= c.cfg.OverflowDepth
		})
		if !ok {
			return nil, nil, false, http.StatusServiceUnavailable, fmt.Sprintf("node %s: %v", target, err)
		}
		nj, rawBody, err = c.submitToNode(ctx, alt, specJSON, tenant)
		if err != nil {
			return nil, nil, false, http.StatusServiceUnavailable, fmt.Sprintf("node %s: %v", alt, err)
		}
		target, overflow = alt, true
	}
	f = &fleetJob{
		id:       "f" + strconv.FormatInt(c.nextID.Add(1), 10),
		key:      key,
		spec:     specJSON,
		overflow: overflow,
	}
	f.place(target, nj.ID, string(nj.Status), false)
	c.jobs.add(f)
	c.ctr.jobsRouted.Add(1)
	if overflow {
		c.ctr.jobsOverflow.Add(1)
	}
	if !terminalStatus(string(nj.Status)) {
		c.collapseStore(key, f.id)
	}
	return f, rawBody, false, 0, ""
}

// fleetBatchRequest is the coordinator's POST /v1/jobs:batch body — the
// same shape the node-level traffic layer accepts, minus wait (the
// coordinator does not hold long-poll connections open per item; poll or
// subscribe to /v1/jobs/{id}/events instead).
type fleetBatchRequest struct {
	Jobs []server.JobSpec `json:"jobs"`
}

// fleetBatchItem is one per-spec verdict.
type fleetBatchItem struct {
	Index     int    `json:"index"`
	Code      int    `json:"code"`
	Error     string `json:"error,omitempty"`
	ID        string `json:"id,omitempty"`
	CacheKey  string `json:"cache_key,omitempty"`
	Node      string `json:"node,omitempty"`
	Status    string `json:"status,omitempty"`
	Collapsed bool   `json:"collapsed,omitempty"`
	Overflow  bool   `json:"overflow,omitempty"`
}

// maxFleetBatch bounds one batch submission.
const maxFleetBatch = 64

// handleBatch implements POST /v1/jobs:batch: each spec runs through the
// exact single-submission path (collapse, ring route, GP overflow retry),
// one verdict per item, always answered 200.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req fleetBatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad batch: %v", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch carries no jobs")
		return
	}
	if len(req.Jobs) > maxFleetBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-job limit", len(req.Jobs), maxFleetBatch))
		return
	}
	tenant := r.Header.Get(server.TenantHeader)
	items := make([]fleetBatchItem, len(req.Jobs))
	accepted, rejected, collapsedN := 0, 0, 0
	for i, spec := range req.Jobs {
		it := &items[i]
		it.Index = i
		canonical, err := server.Canonicalize(spec, c.domains)
		if err != nil {
			it.Code = http.StatusBadRequest
			it.Error = err.Error()
			rejected++
			continue
		}
		f, _, collapsed, code, msg := c.submitOne(r.Context(), canonical, tenant)
		if code != 0 {
			it.Code = code
			it.Error = msg
			rejected++
			continue
		}
		v := f.snapshot()
		it.ID = v.ID
		it.CacheKey = v.Key
		it.Node = v.Node
		it.Status = v.Status
		it.Collapsed = collapsed
		it.Overflow = v.Overflow
		it.Code = http.StatusAccepted
		if terminalStatus(v.Status) {
			it.Code = http.StatusOK
		}
		accepted++
		if collapsed {
			collapsedN++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":  accepted,
		"rejected":  rejected,
		"collapsed": collapsedN,
		"items":     items,
	})
}

// handleEvents implements GET /v1/jobs/{id}/events: a streaming proxy of
// the owning node's SSE progress feed.  Last-Event-ID passes through, so
// a client that reconnects to the coordinator resumes exactly as it would
// against the node; every chunk is flushed as it arrives, and either
// side's disconnect tears the stream down via the request context.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	if d := f.distRun(); d != nil {
		// A distributed run's events are coordinator-local; serve them
		// with the same SSE contract the node would.
		c.serveDistEvents(w, r, d)
		return
	}
	f.mu.Lock()
	node, nodeJobID := f.node, f.nodeJobID
	f.mu.Unlock()

	url := node + "/v1/jobs/" + nodeJobID + "/events"
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		req.Header.Set("Last-Event-ID", id)
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("node %s: %v", node, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := readBounded(resp.Body) //lint:allow errdrop the error body is advisory
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body) //lint:allow errdrop response writer errors are unreportable
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	buf := make([]byte, 4096)
	for {
		// The subscriber's context cancels the upstream request, which
		// surfaces here as a read error — both directions tear down.
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if ferr := rc.Flush(); ferr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				// Mid-stream upstream failure: surface it as an SSE
				// comment before closing so the client knows the break
				// was abnormal.
				_, _ = fmt.Fprintf(w, ": upstream error: %v\n\n", err) //lint:allow errdrop the stream is over either way
				_ = rc.Flush()                                         //lint:allow errdrop the stream is over either way
			}
			return
		}
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// NodeStatus is a node's lifecycle state as the coordinator sees it.
type NodeStatus string

const (
	// NodeHealthy nodes accept new work.
	NodeHealthy NodeStatus = "healthy"
	// NodeDraining nodes answered /healthz with a draining signal; no
	// new work is routed to them, and probe failures are not counted
	// against them until their advertised drain deadline has elapsed.
	NodeDraining NodeStatus = "draining"
	// NodeSuspect nodes failed recent probes but have not crossed the
	// ejection threshold; no new work is routed to them.
	NodeSuspect NodeStatus = "suspect"
	// NodeEjected nodes crossed the failure threshold; their in-flight
	// jobs have been failed over.  Probing continues with backoff, and
	// a succeeding probe readmits them.
	NodeEjected NodeStatus = "ejected"
)

// node is the coordinator's view of one backend.
type node struct {
	url string

	mu            sync.Mutex
	status        NodeStatus
	failures      int           // consecutive probe failures
	backoff       time.Duration // current probe backoff while failing
	nextProbe     time.Time     // earliest next probe while failing
	drainingSince time.Time     // first draining observation
	drain         time.Duration // node-advertised drain deadline (/version)
	queueDepth    int           // last scraped queue_depth
	queueCap      int           // last scraped queue_capacity
	scraped       time.Time     // when the queue gauges were last scraped
	lastSeen      time.Time     // last successful probe
}

func newNode(url string) *node {
	return &node{url: url, status: NodeHealthy}
}

func (n *node) currentStatus() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.status
}

func (n *node) currentDepth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queueDepth
}

// setDepth overrides the scraped queue depth; tests use it to create
// synthetic skew without standing up loaded nodes.
func (n *node) setDepth(d int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queueDepth = d
}

// ProbeOnce sweeps every node immediately, ignoring backoff schedules.
// The background prober calls the same path on its cadence; tests call
// this to step the health machinery deterministically.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	c.probe(ctx, true)
}

// probe sweeps the fleet.  force ignores per-node backoff windows.
// Ejections are collected first and failed over after the sweep, so a
// dead node's jobs move in one pass.
func (c *Coordinator) probe(ctx context.Context, force bool) {
	now := time.Now()
	var ejected []string
	for _, url := range c.order {
		n, ok := c.nodeByURL(url)
		if !ok {
			continue
		}
		n.mu.Lock()
		due := force || n.failures == 0 || !now.Before(n.nextProbe)
		n.mu.Unlock()
		if !due {
			continue
		}
		if c.probeNode(ctx, n, now) {
			ejected = append(ejected, url)
		}
	}
	for _, url := range ejected {
		c.failover(ctx, url)
	}
}

// nodeHealth mirrors the fields of a node's /healthz body.
type nodeHealth struct {
	Status string `json:"status"`
}

// nodeMetrics mirrors the queue gauges of a node's /metrics body.
type nodeMetrics struct {
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}

// probeNode probes one node and updates its state; it reports whether
// this probe ejected the node (the caller then runs failover).
func (c *Coordinator) probeNode(ctx context.Context, n *node, now time.Time) bool {
	c.ctr.probes.Add(1)
	body, code, err := c.getJSONBody(ctx, n.url+"/healthz")
	var h nodeHealth
	if err == nil {
		// /healthz answers 200 when serving and 503 while draining;
		// both bodies carry the status string.
		if jerr := json.Unmarshal(body, &h); jerr != nil {
			err = jerr
		}
	}
	switch {
	case err == nil && code == http.StatusOK && h.Status == "ok":
		c.markHealthy(ctx, n, now)
		return false
	case err == nil && h.Status == "draining":
		return c.markDraining(n, now)
	default:
		c.ctr.probeFailures.Add(1)
		return c.markFailed(n, now)
	}
}

// markHealthy records a successful probe: readmission if the node was
// ejected, plus a queue-gauge scrape (and a drain-deadline scrape when
// it is not yet known).
func (c *Coordinator) markHealthy(ctx context.Context, n *node, now time.Time) {
	n.mu.Lock()
	wasEjected := n.status == NodeEjected
	needDrain := n.drain == 0
	n.status = NodeHealthy
	n.failures = 0
	n.backoff = 0
	n.drainingSince = time.Time{}
	n.lastSeen = now
	n.mu.Unlock()
	if wasEjected {
		c.ctr.nodesReadmitted.Add(1)
	}
	if body, code, err := c.getJSONBody(ctx, n.url+"/metrics"); err == nil && code == http.StatusOK {
		var m nodeMetrics
		if json.Unmarshal(body, &m) == nil {
			n.mu.Lock()
			n.queueDepth = m.QueueDepth
			n.queueCap = m.QueueCapacity
			n.scraped = time.Now()
			n.mu.Unlock()
		}
	}
	if needDrain || wasEjected {
		c.scrapeDrain(ctx, n)
	}
}

// scrapeDrain reads the node's advertised graceful-drain deadline from
// /version, so ejection of a draining node waits exactly that long.
func (c *Coordinator) scrapeDrain(ctx context.Context, n *node) {
	body, code, err := c.getJSONBody(ctx, n.url+"/version")
	if err != nil || code != http.StatusOK {
		return
	}
	var v map[string]string
	if json.Unmarshal(body, &v) != nil {
		return
	}
	ms, err := strconv.ParseInt(v["drain_timeout_ms"], 10, 64)
	if err != nil || ms < 0 {
		return
	}
	n.mu.Lock()
	n.drain = time.Duration(ms) * time.Millisecond
	n.mu.Unlock()
}

// markDraining handles a node that is shutting down gracefully: new
// work stops immediately, but the failure countdown starts only after
// the node's own advertised drain deadline has elapsed — the node told
// us exactly how long its jobs may keep running.
func (c *Coordinator) markDraining(n *node, now time.Time) bool {
	n.mu.Lock()
	if n.drainingSince.IsZero() {
		n.drainingSince = now
	}
	deadline := n.drainingSince.Add(n.drain)
	n.status = NodeDraining
	n.lastSeen = now
	overdue := n.drain > 0 && now.After(deadline)
	n.mu.Unlock()
	if overdue {
		return c.markFailed(n, now)
	}
	return false
}

// markFailed counts a consecutive probe failure with exponential
// backoff; crossing the threshold ejects the node and reports true so
// the caller runs failover.
func (c *Coordinator) markFailed(n *node, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failures++
	if n.backoff == 0 {
		n.backoff = c.cfg.ProbeInterval
		if n.backoff <= 0 {
			n.backoff = time.Second
		}
	} else {
		n.backoff *= 2
	}
	if n.backoff > c.cfg.BackoffMax {
		n.backoff = c.cfg.BackoffMax
	}
	n.nextProbe = now.Add(n.backoff)
	if n.status == NodeEjected {
		return false
	}
	if n.failures >= c.cfg.FailThreshold {
		n.status = NodeEjected
		c.ctr.nodesEjected.Add(1)
		return true
	}
	n.status = NodeSuspect
	return false
}

// getJSONBody GETs url and returns the body bytes and status code.
func (c *Coordinator) getJSONBody(ctx context.Context, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := readBounded(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return b, resp.StatusCode, nil
}

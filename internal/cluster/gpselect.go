package cluster

import "sync"

// GPSelector is the fleet-level instance of the paper's global-pointer
// matcher (§4.1, Table 1): a rotating pointer over the node list that
// remembers the last node it targeted, so overflow work fans out
// round-robin instead of piling onto one cool node.  Where the SIMD
// machine's GP pointer rotates over *donors* (busy PEs picked to give
// work away), the fleet pointer rotates over *receivers* (underloaded
// nodes picked to take overflow) — the invariant is the same: while a
// node stays eligible, it is never selected twice before every other
// eligible node has been selected once, i.e. no re-targeting before
// the pointer wraps.
type GPSelector struct {
	mu      sync.Mutex
	nodes   []string
	pointer int // index of the last selected node; -1 while parked
}

// NewGPSelector builds a selector over the fixed node order, with the
// pointer parked before the first node exactly like match.NewGP parks
// it before processor 0.
func NewGPSelector(nodes []string) *GPSelector {
	return &GPSelector{nodes: append([]string(nil), nodes...), pointer: -1}
}

// Pick scans from the node after the pointer, wrapping once around, and
// selects the first node satisfying eligible; the pointer advances to
// the selection.  It reports false when no node is eligible, leaving
// the pointer where it was.
func (g *GPSelector) Pick(eligible func(string) bool) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.nodes)
	for off := 1; off <= n; off++ {
		i := (g.pointer + off) % n
		if i < 0 {
			i += n
		}
		if eligible == nil || eligible(g.nodes[i]) {
			g.pointer = i
			return g.nodes[i], true
		}
	}
	return "", false
}

// Pointer returns the index of the last selected node, or -1 while the
// pointer is parked; it exists for observability (/fleet) and tests.
func (g *GPSelector) Pointer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pointer
}

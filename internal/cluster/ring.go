package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the fleet's node identifiers.
// Job routing hashes the job's canonical cache key (the same SHA-256
// the node-side result cache and checkpoint spool are keyed by) onto
// the ring, so identical specs always land on the node that already
// holds the cached or checkpointed result — and a node's death only
// remaps the keys it owned, not the whole fleet.
//
// The ring is immutable after construction; membership changes are
// expressed through the eligibility predicate at lookup time, which is
// how an ejected node's keys flow to its ring successor and flow back
// on readmission.
type Ring struct {
	replicas int
	points   []ringPoint
	nodes    []string
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per physical node; enough
// to even out key ownership across a handful of nodes.
const DefaultReplicas = 64

// NewRing builds a ring with the given virtual-node count per node
// (replicas <= 0 selects DefaultReplicas).  Construction is
// deterministic in the node set: the same nodes yield the same ring in
// every process, which the failover test relies on to assert that a
// key routes to the same node before and after a readmission.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		replicas: replicas,
		nodes:    append([]string(nil), nodes...),
		points:   make([]ringPoint, 0, len(nodes)*replicas),
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's membership in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replicas returns the virtual-node count per node.
func (r *Ring) Replicas() int { return r.replicas }

// Lookup walks clockwise from the key's hash to the first point whose
// node satisfies eligible (nil means every node is eligible).  It
// reports false only when no node in the ring is eligible.
func (r *Ring) Lookup(key string, eligible func(string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if eligible == nil || eligible(p.node) {
			return p.node, true
		}
	}
	return "", false
}

// ringHash maps a string onto the ring: the first eight bytes of its
// SHA-256, the same primitive the cache key itself is built from, so
// the placement is stable across processes and platforms.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

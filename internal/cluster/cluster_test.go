package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/server"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// fleetSpec is the job the e2e tests route through the fleet: the same
// fixed synthetic instance the server spool tests use, under a domain
// name only the test nodes serve.
const fleetSpec = `{"domain":"fleetsim","scheme":"GP-DK","p":8}`

// fleetRunner executes a synthetic instance through the full
// checkpointable path — build, restore-if-resuming, periodic checkpoint
// sink, final checkpoint on cancellation — using only the server
// package's exported surface, so the cluster tests exercise exactly the
// plumbing the built-in domains use.  A spec carrying a synthetic block
// selects that instance (matching the built-in synthetic runner's
// construction exactly, which the steal test's byte-identity check
// relies on); without one the fixed 20000/7 instance runs.  gate, when
// non-nil, is called at every cycle boundary with the run context and
// may block on it; that is how the kill and steal tests hold a job
// mid-flight deterministically and release it the instant a shutdown or
// donation cancels the run.
func fleetRunner(gate func(ctx context.Context, cycle int)) server.Runner {
	return func(ctx context.Context, spec server.JobSpec, opts simd.Options, env server.RunEnv) (metrics.Stats, error) {
		if gate != nil {
			opts.ProgressEvery = 1
			opts.Progress = func(pi simd.ProgressInfo) { gate(ctx, pi.Cycles) }
		}
		w, seed := int64(20000), uint64(7)
		if spec.Synthetic != nil {
			w, seed = spec.Synthetic.W, spec.Synthetic.Seed
		}
		codec := wire.SyntheticCodec{}
		sch, err := simd.ParseScheme[synthetic.Node](spec.Scheme)
		if err != nil {
			return metrics.Stats{}, err
		}
		checkpointing := env.Write != nil && env.CheckpointEvery > 0
		if checkpointing {
			opts.CheckpointEvery = env.CheckpointEvery
		}
		m, err := simd.NewMachine[synthetic.Node](synthetic.New(w, seed), sch, opts)
		if err != nil {
			return metrics.Stats{}, err
		}
		if env.Resume != nil {
			_, snap, err := checkpoint.Decode[synthetic.Node](codec, env.Resume)
			if err != nil {
				return metrics.Stats{}, err
			}
			if err := m.RestoreSnapshot(snap); err != nil {
				return metrics.Stats{}, err
			}
			if env.OnResume != nil {
				env.OnResume(snap.Cycle)
			}
		}
		meta := checkpoint.Meta{Domain: spec.Domain, Scheme: spec.Scheme, Topology: spec.Topology, Extra: env.SpecJSON}
		save := func(snap *simd.Snapshot[synthetic.Node]) error {
			b, err := checkpoint.Encode[synthetic.Node](codec, meta, snap)
			if err != nil {
				return err
			}
			return env.Write(b)
		}
		if checkpointing {
			m.OnCheckpoint(save)
		}
		stats, runErr := m.RunContext(ctx)
		if runErr != nil && stats.Cancelled && checkpointing {
			if snap, err := m.Snapshot(); err == nil {
				_ = save(snap) //lint:allow errdrop the previous periodic checkpoint remains usable
			}
		}
		return stats, runErr
	}
}

// testNode hosts one simdserve behind a fixed URL whose backing server
// can be killed (connections die mid-handshake, the in-process stand-in
// for a machine going dark) and later revived as a fresh process on the
// same address — the listener outlives the server, like a rebooted host
// keeps its IP.
type testNode struct {
	t       *testing.T
	ts      *httptest.Server
	srv     *server.Server
	handler atomic.Value // http.Handler
	dead    atomic.Bool
	killed  bool
}

func startNode(t *testing.T, cfg server.Config) *testNode {
	t.Helper()
	n := &testNode{t: t}
	n.boot(cfg)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.dead.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close() //lint:allow errdrop the point is to drop the connection
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		n.handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		n.ts.Close()
		if !n.killed {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := n.srv.Shutdown(ctx); err != nil {
				t.Errorf("node shutdown: %v", err)
			}
		}
	})
	return n
}

func (n *testNode) boot(cfg server.Config) {
	n.t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		n.t.Fatal(err)
	}
	n.srv = s
	n.handler.Store(s.Handler())
}

// kill takes the node dark: the grace period is already expired, so the
// shutdown cancels the running jobs immediately (the in-process
// equivalent of SIGKILL after SIGTERM), and every subsequent connection
// is dropped without an HTTP response.
func (n *testNode) kill() {
	n.t.Helper()
	n.dead.Store(true)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_ = n.srv.Shutdown(expired) //lint:allow errdrop the expired grace period is the point of the kill
	n.ts.CloseClientConnections()
	n.killed = true
}

// revive boots a fresh server on the node's original URL.
func (n *testNode) revive(cfg server.Config) {
	n.t.Helper()
	n.boot(cfg)
	n.dead.Store(false)
	n.killed = false
}

// TestOverflowRoutingRotates pins the fleet-level GP invariant on the
// routing path itself: once a home node's scraped queue depth crosses
// the overflow threshold, successive submissions spill to the other
// nodes in strict rotation — none re-targeted before the pointer wraps —
// and when everyone is overloaded the job stays home rather than
// bouncing.
func TestOverflowRoutingRotates(t *testing.T) {
	urls := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	c, err := New(Config{Nodes: urls, OverflowDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running

	const key = "deadbeef"
	home, overflow, err := c.route(key)
	if err != nil {
		t.Fatal(err)
	}
	if overflow {
		t.Fatal("unloaded fleet routed overflow")
	}
	hn, _ := c.nodeByURL(home)
	hn.setDepth(10)

	others := 0
	for _, u := range urls {
		if u != home {
			others++
		}
	}
	for window := 0; window < 3; window++ {
		seen := map[string]bool{}
		for i := 0; i < others; i++ {
			tgt, ov, err := c.route(key)
			if err != nil {
				t.Fatal(err)
			}
			if !ov || tgt == home {
				t.Fatalf("window %d: overloaded home not spilled (target %s, overflow %t)", window, tgt, ov)
			}
			if seen[tgt] {
				t.Fatalf("window %d: node %s re-targeted before the GP pointer wrapped", window, tgt)
			}
			seen[tgt] = true
		}
	}

	// All overloaded: the ring home keeps the job (no thrashing).
	for _, u := range urls {
		nn, _ := c.nodeByURL(u)
		nn.setDepth(10)
	}
	if tgt, ov, err := c.route(key); err != nil || ov || tgt != home {
		t.Fatalf("all-overloaded fleet routed %s (overflow %t, err %v), want home %s", tgt, ov, err, home)
	}
}

// TestProbeEjectAndReadmit steps the health machinery against a stub
// node: failures accumulate through suspect to ejected at the threshold,
// and a single good probe readmits the node, rescrapes its queue gauges
// and learns its advertised drain deadline.
func TestProbeEjectAndReadmit(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			if healthy.Load() {
				writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			} else {
				writeError(w, http.StatusInternalServerError, "boom")
			}
		case "/metrics":
			writeJSON(w, http.StatusOK, nodeMetrics{QueueDepth: 2, QueueCapacity: 64})
		case "/version":
			writeJSON(w, http.StatusOK, map[string]string{"drain_timeout_ms": "5000"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer stub.Close()

	c, err := New(Config{Nodes: []string{stub.URL}, FailThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running
	ctx := context.Background()

	c.ProbeOnce(ctx)
	n, _ := c.nodeByURL(stub.URL)
	if got := n.currentStatus(); got != NodeHealthy {
		t.Fatalf("after good probe: %s", got)
	}
	if got := n.currentDepth(); got != 2 {
		t.Errorf("scraped queue depth %d, want 2", got)
	}
	n.mu.Lock()
	drain := n.drain
	n.mu.Unlock()
	if drain != 5*time.Second {
		t.Errorf("scraped drain deadline %v, want 5s", drain)
	}

	healthy.Store(false)
	c.ProbeOnce(ctx)
	c.ProbeOnce(ctx)
	if got := n.currentStatus(); got != NodeSuspect {
		t.Fatalf("after 2 failures: %s, want suspect", got)
	}
	if _, _, err := c.route("k"); err == nil {
		t.Fatal("suspect-only fleet still routed a job")
	}
	c.ProbeOnce(ctx)
	if got := n.currentStatus(); got != NodeEjected {
		t.Fatalf("after 3 failures: %s, want ejected", got)
	}
	if got := c.ctr.nodesEjected.Load(); got != 1 {
		t.Errorf("nodes_ejected_total = %d, want 1", got)
	}

	healthy.Store(true)
	c.ProbeOnce(ctx)
	if got := n.currentStatus(); got != NodeHealthy {
		t.Fatalf("after recovery probe: %s, want healthy", got)
	}
	if got := c.ctr.nodesReadmitted.Load(); got != 1 {
		t.Errorf("nodes_readmitted_total = %d, want 1", got)
	}
	if tgt, _, err := c.route("k"); err != nil || tgt != stub.URL {
		t.Fatalf("readmitted node not routable: %s, %v", tgt, err)
	}
}

// fleetWireJob mirrors fleetJobResponse for decoding in tests.
type fleetWireJob struct {
	ID        string          `json:"id"`
	CacheKey  string          `json:"cache_key"`
	Node      string          `json:"node"`
	NodeJobID string          `json:"node_job_id"`
	Status    string          `json:"status"`
	Overflow  bool            `json:"overflow"`
	Failovers int             `json:"failovers"`
	Resumed   bool            `json:"resumed_by_failover"`
	Job       json.RawMessage `json:"job"`
}

// innerWireJob mirrors a node's job document, stats kept raw for byte
// identity checks.
type innerWireJob struct {
	ID               string          `json:"id"`
	Status           string          `json:"status"`
	CacheKey         string          `json:"cache_key"`
	Error            string          `json:"error"`
	Resumed          bool            `json:"resumed"`
	ResumedFromCycle int             `json:"resumed_from_cycle"`
	Stats            json.RawMessage `json:"stats"`
}

func postJSONAs[T any](t *testing.T, url, body string) (T, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v, resp.StatusCode
}

func getJSONAs[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitNodeTerminal polls a node's job until it leaves the queue/run
// states.
func waitNodeTerminal(t *testing.T, base, id string) innerWireJob {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j := getJSONAs[innerWireJob](t, base+"/v1/jobs/"+id)
		if terminalStatus(j.Status) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node job %s did not finish in time", id)
	return innerWireJob{}
}

// waitFleetTerminal polls the coordinator's view of a fleet job.
func waitFleetTerminal(t *testing.T, base, id string) fleetWireJob {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		j := getJSONAs[fleetWireJob](t, base+"/v1/jobs/"+id)
		if terminalStatus(j.Status) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fleet job %s did not finish in time", id)
	return fleetWireJob{}
}

// fleetGate holds a job at one cycle boundary when armed; sync.Once
// keeps the signal single-shot across the per-cycle callbacks.
type fleetGate struct {
	armed   atomic.Bool
	once    sync.Once
	started chan struct{}
	at      int
}

func newFleetGate(at int) *fleetGate {
	return &fleetGate{started: make(chan struct{}), at: at}
}

func (g *fleetGate) fn(ctx context.Context, cycle int) {
	if g.armed.Load() && cycle == g.at {
		g.once.Do(func() { close(g.started) })
		<-ctx.Done()
	}
}

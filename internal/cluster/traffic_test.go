package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/server"
	"simdtree/internal/simd"
	"simdtree/internal/traffic"
)

// startTrafficNode boots a node the way simdserve does in production:
// the server wrapped in the traffic frontend, so it serves the batch and
// SSE routes the coordinator proxies to.
func startTrafficNode(t *testing.T, cfg server.Config) string {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := traffic.New(s, nil, traffic.Config{})
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("node shutdown: %v", err)
		}
	})
	return ts.URL
}

// fleetBatchWire mirrors the coordinator's batch response for tests.
type fleetBatchWire struct {
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Collapsed int `json:"collapsed"`
	Items     []struct {
		Index     int    `json:"index"`
		Code      int    `json:"code"`
		Error     string `json:"error"`
		ID        string `json:"id"`
		Node      string `json:"node"`
		Status    string `json:"status"`
		Collapsed bool   `json:"collapsed"`
	} `json:"items"`
}

// blockingRunner counts invocations and blocks until release closes.
func blockingRunner(runs *atomic.Int64, release <-chan struct{}) server.Runner {
	return func(ctx context.Context, spec server.JobSpec, opts simd.Options, env server.RunEnv) (metrics.Stats, error) {
		runs.Add(1)
		select {
		case <-ctx.Done():
			return metrics.Stats{Cancelled: true}, context.Cause(ctx)
		case <-release:
			return metrics.Stats{P: spec.P, W: 1}, nil
		}
	}
}

// TestFleetCollapseAndBatch covers the coordinator's traffic layer: an
// identical in-flight spec collapses ring-wide onto one routed job (for
// single submissions and batch items alike), batches return per-item
// verdicts, and the collapse counter surfaces in /metrics.
func TestFleetCollapseAndBatch(t *testing.T) {
	ctx := context.Background()
	var runs atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })

	nodeCfg := server.Config{Workers: 1, Runners: map[string]server.Runner{
		"gatesim":  blockingRunner(&runs, release),
		"fleetsim": fleetRunner(nil),
	}}
	urls := []string{startTrafficNode(t, nodeCfg), startTrafficNode(t, nodeCfg)}

	c, err := New(Config{
		Nodes:          urls,
		OverflowDepth:  1000,
		ExtraDomains:   []string{"gatesim", "fleetsim"},
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running
	c.ProbeOnce(ctx)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	const gated = `{"domain":"gatesim","scheme":"GP-DK","p":8}`
	first, code := postJSONAs[fleetWireJob](t, front.URL+"/v1/jobs", gated)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}

	// The identical spec must collapse onto the same fleet job, marked
	// by the X-Collapsed header.
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(gated))
	if err != nil {
		t.Fatal(err)
	}
	var dup fleetWireJob
	if err := json.NewDecoder(resp.Body).Decode(&dup); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Collapsed") != "1" {
		t.Error("duplicate submission not marked X-Collapsed")
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate routed to fleet job %s, want collapse onto %s", dup.ID, first.ID)
	}

	// Batch: a collapsing duplicate, a fresh job, and a bad domain.
	batch := fmt.Sprintf(`{"jobs": [%s, %s, {"domain":"nope","scheme":"GP-DK","p":8}]}`,
		gated, fleetSpec)
	br, code := postJSONAs[fleetBatchWire](t, front.URL+"/v1/jobs:batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if br.Accepted != 2 || br.Rejected != 1 || br.Collapsed != 1 {
		t.Fatalf("batch tallies accepted=%d rejected=%d collapsed=%d, want 2/1/1", br.Accepted, br.Rejected, br.Collapsed)
	}
	if !br.Items[0].Collapsed || br.Items[0].ID != first.ID {
		t.Errorf("batch item 0 = %+v, want collapse onto %s", br.Items[0], first.ID)
	}
	if br.Items[1].Code != http.StatusAccepted || br.Items[1].Node == "" {
		t.Errorf("batch item 1 = %+v, want 202 with a routed node", br.Items[1])
	}
	if br.Items[2].Code != http.StatusBadRequest || br.Items[2].Error == "" {
		t.Errorf("batch item 2 = %+v, want 400 with message", br.Items[2])
	}

	if got := runs.Load(); got != 1 {
		t.Fatalf("gated engine ran %d times across 3 identical submissions, want 1", got)
	}

	once.Do(func() { close(release) })
	fin := waitFleetTerminal(t, front.URL, first.ID)
	if fin.Status != "done" {
		t.Fatalf("gated job finished %q", fin.Status)
	}

	// After the flight is terminal, the collapse entry lapses: the same
	// spec now opens a new fleet job (served from the node's cache).
	again, _ := postJSONAs[fleetWireJob](t, front.URL+"/v1/jobs", gated)
	if again.ID == first.ID {
		t.Error("terminal fleet job still collapsing new submissions")
	}

	m := getJSONAs[map[string]any](t, front.URL+"/metrics")
	if got, _ := m["jobs_collapsed_total"].(float64); got != 2 {
		t.Errorf("jobs_collapsed_total = %v, want 2", m["jobs_collapsed_total"])
	}
}

// TestFleetSSEProxy streams a finished job's progress events through the
// coordinator and resumes with Last-Event-ID, checking the proxy
// preserves the node's stream and cursor semantics.
func TestFleetSSEProxy(t *testing.T) {
	ctx := context.Background()
	url := startTrafficNode(t, server.Config{Workers: 1, ProgressEvery: 50})
	c, err := New(Config{
		Nodes:          []string{url},
		OverflowDepth:  1000,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running
	c.ProbeOnce(ctx)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	spec := `{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":20000,"seed":7}}`
	sub, code := postJSONAs[fleetWireJob](t, front.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	waitFleetTerminal(t, front.URL, sub.ID)

	type frame struct {
		id       int64
		terminal bool
	}
	readStream := func(lastEventID string) []frame {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, front.URL+"/v1/jobs/"+sub.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("events content type %q", ct)
		}
		var frames []frame
		var cur frame
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if cur.id != 0 {
					frames = append(frames, cur)
				}
				cur = frame{}
			case strings.HasPrefix(line, "id: "):
				fmt.Sscanf(line, "id: %d", &cur.id)
			case strings.HasPrefix(line, "data: "):
				cur.terminal = strings.Contains(line, `"terminal":true`)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("stream read: %v", err)
		}
		return frames
	}

	full := readStream("")
	if len(full) < 3 {
		t.Fatalf("only %d events through the proxy", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i].id <= full[i-1].id {
			t.Fatalf("ids not increasing: %d after %d", full[i].id, full[i-1].id)
		}
	}
	if !full[len(full)-1].terminal {
		t.Fatal("stream did not end with the terminal event")
	}

	mid := full[len(full)/2].id
	tail := readStream(fmt.Sprint(mid))
	if len(tail) == 0 || tail[0].id != mid+1 {
		t.Fatalf("resumed stream starts at %v, want %d", tail, mid+1)
	}
	if tail[len(tail)-1].id != full[len(full)-1].id {
		t.Fatalf("resumed stream ends at %d, want %d", tail[len(tail)-1].id, full[len(full)-1].id)
	}

	// Unknown fleet id is refused before any proxying.
	resp, err := http.Get(front.URL + "/v1/jobs/zzz/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d", resp.StatusCode)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"simdtree/internal/server"
)

// compactJSON strips transport indentation so raw documents produced at
// different nesting depths compare byte-for-byte on content.
func compactJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compact %q: %v", b, err)
	}
	return buf.Bytes()
}

// TestFleetKillNodeFailover is the fleet's acceptance path, the cluster
// analogue of the server's kill-and-restart test: three in-process
// nodes behind a coordinator, the node owning a job is killed mid-run
// (connections dropped without a response — the in-process equivalent
// of SIGKILL), the coordinator ejects it after the failure threshold
// and ships its warm checkpoint copy to a survivor, and the job
// completes with result bytes identical to an uninterrupted run on a
// standalone node.  Afterwards the dead node is revived on the same URL
// and the test pins the consistent-hashing satellite: the ring routes
// the same cache key to the same node as before the outage.
func TestFleetKillNodeFailover(t *testing.T) {
	ctx := context.Background()

	// Reference: the same job on a standalone, spool-less node.
	ref := startNode(t, server.Config{Workers: 1,
		Runners: map[string]server.Runner{"fleetsim": fleetRunner(nil)}})
	refSub, code := postJSONAs[innerWireJob](t, ref.ts.URL+"/v1/jobs", fleetSpec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d", code)
	}
	refFin := waitNodeTerminal(t, ref.ts.URL, refSub.ID)
	if refFin.Status != "done" {
		t.Fatalf("reference job finished %q: %s", refFin.Status, refFin.Error)
	}

	// Three spooled nodes; each carries a gate it only honors when
	// armed, because which node owns the job depends on the ring over
	// the (port-randomized) node URLs.  Checkpoints land every 50
	// cycles; the gate holds the run at cycle 120, so cycles 50 and 100
	// are on disk when the coordinator pulls its warm copy.
	const (
		ckptEvery = 50
		gateCycle = 120
	)
	nodeCfg := func(gate *fleetGate) server.Config {
		g := fleetRunner(nil)
		if gate != nil {
			g = fleetRunner(gate.fn)
		}
		return server.Config{Workers: 1, Spool: t.TempDir(), CheckpointEvery: ckptEvery,
			Runners: map[string]server.Runner{"fleetsim": g}}
	}
	gates := make([]*fleetGate, 3)
	nodes := make([]*testNode, 3)
	urls := make([]string, 3)
	for i := range nodes {
		gates[i] = newFleetGate(gateCycle)
		nodes[i] = startNode(t, nodeCfg(gates[i]))
		urls[i] = nodes[i].ts.URL
	}

	c, err := New(Config{
		Nodes:          urls,
		FailThreshold:  3,
		OverflowDepth:  1000, // routing in this test is purely by ring
		ExtraDomains:   []string{"fleetsim"},
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background()) //lint:allow errdrop no loops are running
	c.ProbeOnce(ctx)

	// Work out which node the ring will hand the job to, and arm only
	// that node's gate.
	var spec server.JobSpec
	if err := json.Unmarshal([]byte(fleetSpec), &spec); err != nil {
		t.Fatal(err)
	}
	canonical, err := server.Canonicalize(spec, map[string]bool{"fleetsim": true})
	if err != nil {
		t.Fatal(err)
	}
	key := server.CacheKey(canonical)
	home, _, err := c.route(key)
	if err != nil {
		t.Fatal(err)
	}
	homeIdx := -1
	for i, u := range urls {
		if u == home {
			homeIdx = i
		}
	}
	if homeIdx < 0 {
		t.Fatalf("ring home %s is not one of the nodes", home)
	}
	gates[homeIdx].armed.Store(true)

	front := httptest.NewServer(c.Handler())
	defer front.Close()

	sub, code := postJSONAs[fleetWireJob](t, front.URL+"/v1/jobs", fleetSpec)
	if code != http.StatusAccepted {
		t.Fatalf("fleet submit: %d", code)
	}
	if sub.Node != home {
		t.Fatalf("job routed to %s, ring home is %s", sub.Node, home)
	}
	if sub.CacheKey != key {
		t.Fatalf("coordinator key %s, locally computed %s", sub.CacheKey, key)
	}
	<-gates[homeIdx].started // blocked at cycle 120; checkpoints 50 and 100 spooled

	// Pull the warm checkpoint copy, then take the home node dark.
	c.SyncOnce(ctx)
	f, ok := c.jobs.get(sub.ID)
	if !ok {
		t.Fatal("fleet job not in store")
	}
	f.mu.Lock()
	warm := f.ckpt
	f.mu.Unlock()
	if warm == nil {
		t.Fatal("sync pulled no warm checkpoint while the job was running")
	}
	nodes[homeIdx].kill()

	// Three failed probes eject the node and trigger failover in the
	// same sweep.
	for i := 0; i < 3; i++ {
		c.ProbeOnce(ctx)
	}
	f.mu.Lock()
	movedTo, resumed := f.node, f.resumed
	f.mu.Unlock()
	if movedTo == home {
		t.Fatalf("job still owned by the dead node %s", home)
	}
	if !resumed {
		t.Fatal("failover re-submitted fresh instead of shipping the checkpoint")
	}

	fin := waitFleetTerminal(t, front.URL, sub.ID)
	if fin.Status != "done" {
		t.Fatalf("failed-over job finished %q", fin.Status)
	}
	if !fin.Resumed || fin.Failovers != 1 {
		t.Errorf("resumed_by_failover=%t failovers=%d, want true/1", fin.Resumed, fin.Failovers)
	}
	var inner innerWireJob
	if err := json.Unmarshal(fin.Job, &inner); err != nil {
		t.Fatalf("inner job document: %v", err)
	}
	if !inner.Resumed || inner.ResumedFromCycle != 100 {
		t.Errorf("survivor resumed=%t from cycle %d, want resumption from cycle 100", inner.Resumed, inner.ResumedFromCycle)
	}
	if inner.CacheKey != key {
		t.Errorf("survivor ran key %s, want %s", inner.CacheKey, key)
	}
	// The coordinator's indenting encoder re-flows the nested node
	// document, so normalize whitespace before the byte comparison —
	// field order and values must still match exactly.
	if !bytes.Equal(compactJSON(t, inner.Stats), compactJSON(t, refFin.Stats)) {
		t.Errorf("failed-over result differs from uninterrupted run:\n got %s\nwant %s", inner.Stats, refFin.Stats)
	}

	// Revive the home node on its original URL with a fresh spool (its
	// old spool still holds the dead copy, which must not race the
	// failed-over one) and readmit it.  The ring must route the same
	// cache key to the same node as before the outage.
	nodes[homeIdx].revive(nodeCfg(nil))
	c.ProbeOnce(ctx)
	after, overflow, err := c.route(key)
	if err != nil {
		t.Fatal(err)
	}
	if overflow || after != home {
		t.Fatalf("post-readmission route %s (overflow %t), want pre-outage home %s", after, overflow, home)
	}

	// The fleet counters account for the episode.
	m := getJSONAs[map[string]any](t, front.URL+"/metrics")
	for metric, want := range map[string]float64{
		"jobs_failed_over_total":         1,
		"jobs_failed_over_resumed_total": 1,
		"nodes_ejected_total":            1,
		"nodes_readmitted_total":         1,
	} {
		if got := m[metric].(float64); got != want {
			t.Errorf("%s = %v, want %v", metric, got, want)
		}
	}
	if got := m["checkpoints_pulled_total"].(float64); got < 1 {
		t.Errorf("checkpoints_pulled_total = %v, want >= 1", got)
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/server"
	"simdtree/internal/simd"
	"simdtree/internal/steal"
	"simdtree/internal/topology"
	"simdtree/internal/trace"
)

// The steal controller: the paper's work-stealing idea applied across
// nodes.  Where a single machine's LB phase moves stack segments between
// PEs, the controller moves a whole job onto several nodes at once: it
// donates the running job off its node as an exact-prefix checkpoint,
// re-opens the checkpoint as shard sessions over disjoint PE ranges (the
// donor keeps shard 0, receivers picked by the cluster-wide GP pointer
// take the rest), and drives them in lock-step with steal.Driver.  Every
// global decision in the driven run is a function of globally reduced
// scalars, so the distributed schedule — and therefore the merged stats,
// trace and checkpoints — is byte-identical to the single-node run the
// job would have had.
//
// Failure handling leans on the same checkpoint: the driver ships every
// assembled cluster-wide checkpoint to the donor's spool, so a crashed
// coordinator or receiver leaves the donor able to resume the job
// single-node (immediately via re-import, or at restart via spool rescan).

// errStealCancelled marks a client cancel of a distributed run (DELETE on
// the fleet job), distinguishing it from coordinator shutdown.
var errStealCancelled = errors.New("distributed run cancelled by client")

// shardProv is the provenance of one shard of a distributed run, surfaced
// in /fleet and in the merged job document.
type shardProv struct {
	Node    string `json:"node"`
	Session string `json:"session"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
}

// distRun is the coordinator-held state of one stolen job's distributed
// execution — and, once finished, its locally served result.
type distRun struct {
	id     string // fleet job id
	key    string
	spec   server.JobSpec
	shards []shardProv
	events *fleetEventLog
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu             sync.Mutex
	status         string // running | done | cancelled | failed
	stats          *metrics.Stats
	trace          *trace.Trace
	donations      int
	localTransfers int
	errMsg         string
	lastCkpt       []byte // latest assembled cluster-wide checkpoint
}

// view snapshots the mutable fields for handlers.
func (d *distRun) view() (status string, stats *metrics.Stats, tr *trace.Trace, donations, locals int, errMsg string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.status, d.stats, d.trace, d.donations, d.localTransfers, d.errMsg
}

// distJobDoc is the merged job document of a distributed run, mirroring a
// node's job document where the fields overlap (spec, stats, efficiency,
// speedup are rendered identically) and adding the shard provenance.
type distJobDoc struct {
	ID             string         `json:"id"`
	Status         string         `json:"status"`
	CacheKey       string         `json:"cache_key"`
	Distributed    bool           `json:"distributed"`
	Shards         []shardProv    `json:"shards"`
	Donations      int            `json:"donations"`
	LocalTransfers int            `json:"local_transfers"`
	Error          string         `json:"error,omitempty"`
	Spec           server.JobSpec `json:"spec"`

	Stats      *metrics.Stats `json:"stats,omitempty"`
	Efficiency float64        `json:"efficiency,omitempty"`
	Speedup    float64        `json:"speedup,omitempty"`
}

// document renders the distributed job document for the fleet envelope.
func (d *distRun) document() json.RawMessage {
	status, stats, _, donations, locals, errMsg := d.view()
	doc := distJobDoc{
		ID:             d.id,
		Status:         status,
		CacheKey:       d.key,
		Distributed:    true,
		Shards:         d.shards,
		Donations:      donations,
		LocalTransfers: locals,
		Error:          errMsg,
		Spec:           d.spec,
	}
	if stats != nil {
		doc.Stats = stats
		doc.Efficiency = stats.Efficiency()
		doc.Speedup = stats.Speedup()
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// distJobDoc is plain data; MarshalIndent cannot fail on it.
		panic(fmt.Sprintf("cluster: marshal distributed job document: %v", err))
	}
	return b
}

// stealVerdict mirrors a node's GET /v1/jobs/{id}/stealable body.
type stealVerdict struct {
	Stealable       bool   `json:"stealable"`
	Reason          string `json:"reason"`
	Status          string `json:"status"`
	P               int    `json:"p"`
	CheckpointEvery int    `json:"checkpoint_every"`
}

// StealOnce sweeps the fleet for one steal opportunity: the oldest
// running, not-yet-distributed job whose node reports it stealable, paired
// with receiver nodes picked by the cluster-wide GP rotation (routable,
// freshly scraped, not the donor).  It returns the fleet id of the job it
// converted, or "" when nothing was stealable.  The background steal loop
// calls this on its cadence; tests call it to step deterministically.
func (c *Coordinator) StealOnce(ctx context.Context) (string, error) {
	for _, f := range c.jobs.all() {
		f.mu.Lock()
		candidate := !f.terminal && f.dist == nil && f.node != ""
		donor, nodeJobID := f.node, f.nodeJobID
		f.mu.Unlock()
		if !candidate || !c.routable(donor) {
			continue
		}
		body, code, err := c.getJSONBody(ctx, donor+"/v1/jobs/"+nodeJobID+"/stealable")
		if err != nil || code != http.StatusOK {
			continue
		}
		var verdict stealVerdict
		if json.Unmarshal(body, &verdict) != nil || !verdict.Stealable {
			continue
		}
		shards := c.cfg.StealShards
		if shards > verdict.P {
			shards = verdict.P
		}
		if shards < 2 {
			continue
		}
		// One receiver pick per remote shard.  With one eligible node the
		// pointer wraps back to it; with many, consecutive steals fan out
		// round-robin — the GP invariant, cluster-wide.
		recvs := make([]string, 0, shards-1)
		for i := 1; i < shards; i++ {
			alt, ok := c.stealGP.Pick(func(u string) bool {
				return u != donor && c.routable(u) && c.fresh(u)
			})
			if !ok {
				break
			}
			recvs = append(recvs, alt)
		}
		if len(recvs) == 0 {
			continue // no receiver in reach; nothing to steal onto
		}
		id, err := c.stealJob(ctx, f, donor, nodeJobID, verdict.CheckpointEvery, recvs)
		if err != nil {
			c.ctr.stealFailed.Add(1)
			f.mu.Lock()
			f.lastErr = "steal: " + err.Error()
			f.mu.Unlock()
			return "", err
		}
		return id, nil
	}
	return "", nil
}

// donate asks the donor node to stop the job at its next cycle boundary
// and hand over the exact-prefix checkpoint.
func (c *Coordinator) donate(ctx context.Context, donor, nodeJobID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, donor+"/v1/jobs/"+nodeJobID+"/donate", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := readBounded(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("donate: node answered %d: %s", resp.StatusCode, truncateForErr(body))
	}
	if _, err := checkpoint.Peek(body); err != nil {
		return nil, fmt.Errorf("donate: node sent an invalid checkpoint: %v", err)
	}
	return body, nil
}

// stealJob converts one running node job into a distributed sharded run.
// It is all-or-nothing up to the driver launch: any failure after the
// donation re-imports the checkpoint to the donor, so the job resumes
// single-node and nothing is lost.
func (c *Coordinator) stealJob(ctx context.Context, f *fleetJob, donor, nodeJobID string, checkpointEvery int, recvs []string) (string, error) {
	ckpt, err := c.donate(ctx, donor, nodeJobID)
	if err != nil {
		return "", err
	}
	meta, raw, err := checkpoint.DecodeRaw(ckpt)
	if err != nil {
		return "", c.stealAbort(ctx, f, donor, ckpt, nil, fmt.Errorf("decoding donation: %w", err))
	}
	var spec server.JobSpec
	if len(meta.Extra) == 0 || json.Unmarshal(meta.Extra, &spec) != nil {
		return "", c.stealAbort(ctx, f, donor, ckpt, nil, errors.New("donation carries no job spec"))
	}
	canonical, err := server.Canonicalize(spec, c.domains)
	if err != nil {
		return "", c.stealAbort(ctx, f, donor, ckpt, nil, fmt.Errorf("donated spec: %w", err))
	}
	scheme, err := simd.ParseSchemeParts(canonical.Scheme)
	if err != nil {
		return "", c.stealAbort(ctx, f, donor, ckpt, nil, err)
	}
	topo, err := topology.ByName(canonical.Topology)
	if err != nil {
		return "", c.stealAbort(ctx, f, donor, ckpt, nil, err)
	}

	// Open the shard sessions: the donor keeps shard 0 (with spooling, so
	// shipped checkpoints land under the job's existing spool entry), each
	// receiver hosts one of the remaining contiguous PE ranges.
	n := len(recvs) + 1
	bases := append([]string{donor}, recvs...)
	shards := make([]steal.Shard, 0, n)
	sessions := make([]*steal.HTTPShard, 0, n)
	prov := make([]shardProv, 0, n)
	for i, base := range bases {
		lo, hi := i*canonical.P/n, (i+1)*canonical.P/n
		sh, err := steal.OpenHTTPShard(ctx, c.client, base, ckpt, lo, hi, i == 0)
		if err != nil {
			return "", c.stealAbort(ctx, f, donor, ckpt, sessions, fmt.Errorf("opening shard %d on %s: %w", i, base, err))
		}
		sessions = append(sessions, sh)
		shards = append(shards, sh)
		prov = append(prov, shardProv{Node: base, Session: sh.Session(), Lo: lo, Hi: hi})
	}

	d := &distRun{
		id:     f.id,
		key:    f.key,
		spec:   canonical,
		shards: prov,
		events: newFleetEventLog(),
		done:   make(chan struct{}),
		status: "running",
	}
	runCtx, cancel := context.WithCancelCause(c.loopCtx)
	d.cancel = cancel

	cfg := steal.Config{
		Key:             f.key,
		Meta:            meta,
		Scheme:          scheme,
		Costs:           simd.CM2Costs(),
		Topology:        topo,
		P:               canonical.P,
		StopAtFirstGoal: canonical.StopAtFirstGoal,
		MaxCycles:       canonical.BudgetCycles,
		CheckpointEvery: checkpointEvery,
		OnCheckpoint: func(ctx context.Context, encoded []byte) error {
			d.mu.Lock()
			d.lastCkpt = encoded
			d.mu.Unlock()
			if err := sessions[0].WriteCheckpoint(ctx, encoded); err != nil {
				return err
			}
			d.events.append(server.JobEvent{Type: server.EventCheckpoint, Shards: n})
			return nil
		},
		Progress: func(pi steal.ProgressInfo) {
			d.events.append(server.JobEvent{
				Type: server.EventProgress, Cycle: pi.Cycles, Active: pi.Active,
				W: pi.W, LBPhases: pi.LBPhases, Shards: n,
			})
			for i, a := range pi.ShardActive {
				d.events.append(server.JobEvent{
					Type: server.EventProgress, Cycle: pi.Cycles, Active: a,
					Shard: i + 1, Shards: n,
				})
			}
		},
		// The fleet's event cadence, finer than the engine default so a
		// short distributed run still streams shard-dimension progress.
		ProgressEvery: 250,
	}
	drv, err := steal.NewDriver(cfg, raw, shards)
	if err != nil {
		cancel(nil)
		return "", c.stealAbort(ctx, f, donor, ckpt, sessions, err)
	}

	f.mu.Lock()
	f.dist = d
	f.status = string(server.StatusRunning)
	f.terminal = false
	f.unreachable = false
	f.lastErr = ""
	f.mu.Unlock()
	c.ctr.jobsStolen.Add(1)
	d.events.append(server.JobEvent{Type: server.EventStatus, Status: server.StatusRunning, Shards: n})

	c.wg.Add(1)
	go c.runDistributed(runCtx, f, d, drv, sessions)
	return f.id, nil
}

// stealAbort unwinds a failed steal setup: close any opened shard
// sessions (keeping the donor's spool entry) and re-import the donation
// checkpoint to the donor so the job resumes single-node.  It returns an
// error wrapping cause with the recovery outcome.
func (c *Coordinator) stealAbort(ctx context.Context, f *fleetJob, donor string, ckpt []byte, sessions []*steal.HTTPShard, cause error) error {
	for _, sh := range sessions {
		_ = sh.Close(ctx, false) //lint:allow errdrop best-effort cleanup; the spool entry is the recovery path
	}
	nj, err := c.importCheckpoint(ctx, donor, ckpt)
	if err != nil {
		return fmt.Errorf("%w (and re-importing to %s failed: %v; the job recovers from %s's spool at its next restart)", cause, donor, err, donor)
	}
	f.place(donor, nj.ID, string(nj.Status), true)
	return fmt.Errorf("%w (job re-imported to %s as %s)", cause, donor, nj.ID)
}

// runDistributed drives a stolen job's shards to completion and records
// the merged result on the fleet job, serving it locally from then on.
func (c *Coordinator) runDistributed(ctx context.Context, f *fleetJob, d *distRun, drv *steal.Driver, sessions []*steal.HTTPShard) {
	defer c.wg.Done()
	defer close(d.done)
	defer d.cancel(nil)
	n := len(sessions)

	res, runErr := drv.Run(ctx)
	if runErr == nil {
		d.mu.Lock()
		d.status = "done"
		st := res.Stats
		d.stats = &st
		d.trace = res.Trace
		d.donations = res.Donations
		d.localTransfers = res.LocalTransfers
		d.mu.Unlock()
		c.ctr.stealCompleted.Add(1)
		c.ctr.stealDonations.Add(int64(res.Donations))
		c.ctr.stealLocal.Add(int64(res.LocalTransfers))
		f.observe("done")
		d.events.append(server.JobEvent{
			Type: server.EventStatus, Status: server.StatusDone, Terminal: true,
			Cycle: res.Stats.Cycles, W: res.Stats.W, LBPhases: res.Stats.LBPhases, Shards: n,
		})
		// The run completed; the donor's spool entry is dead weight.
		c.closeSessions(sessions, true)
		return
	}

	c.ctr.stealFailed.Add(1)
	c.ctr.stealDonations.Add(int64(res.Donations))
	c.ctr.stealLocal.Add(int64(res.LocalTransfers))
	cancelled := errors.Is(runErr, errStealCancelled)
	// Keep the donor's spool entry: the last shipped checkpoint is the
	// exact prefix of the interrupted schedule.
	c.closeSessions(sessions, cancelled)

	status := "failed"
	switch {
	case cancelled:
		status = "cancelled"
	case ctx.Err() != nil:
		// Coordinator shutdown: the final cancel checkpoint (if
		// checkpointing was on) is already in the donor's spool; the donor
		// resumes the job at its next restart.
	default:
		// A shard died mid-run.  Re-import the last assembled checkpoint to
		// the donor so the job resumes single-node right away.
		d.mu.Lock()
		ckpt := d.lastCkpt
		d.mu.Unlock()
		if ckpt != nil {
			//lint:allow ctxflow the run context is dead; recovery gets its own deadline
			rctx, rcancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
			nj, err := c.importCheckpoint(rctx, sessions[0].Base(), ckpt)
			rcancel()
			if err == nil {
				f.mu.Lock()
				f.dist = nil
				f.mu.Unlock()
				f.place(sessions[0].Base(), nj.ID, string(nj.Status), true)
				f.mu.Lock()
				f.lastErr = fmt.Sprintf("distributed run aborted (%v); resumed single-node as %s", runErr, nj.ID)
				f.mu.Unlock()
				d.mu.Lock()
				d.status = "failed"
				d.errMsg = runErr.Error()
				d.mu.Unlock()
				return
			}
		}
	}
	d.mu.Lock()
	d.status = status
	d.errMsg = runErr.Error()
	st := res.Stats
	d.stats = &st
	d.trace = res.Trace
	d.donations = res.Donations
	d.localTransfers = res.LocalTransfers
	d.mu.Unlock()
	f.observe(status)
	f.mu.Lock()
	f.lastErr = runErr.Error()
	f.mu.Unlock()
	d.events.append(server.JobEvent{
		Type: server.EventStatus, Status: server.Status(status), Error: runErr.Error(),
		Terminal: true, Shards: n,
	})
}

// closeSessions releases every shard session; dropSpool also removes the
// donor's spool entry (shard 0 is the only spooling session).
func (c *Coordinator) closeSessions(sessions []*steal.HTTPShard, dropSpool bool) {
	//lint:allow ctxflow teardown outlives the run context; it gets its own deadline
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
	defer cancel()
	for i, sh := range sessions {
		_ = sh.Close(ctx, dropSpool && i == 0) //lint:allow errdrop an orphaned session only holds memory until the node restarts
	}
}

// fleetEventLog is the coordinator-local analogue of a node's per-job
// event log, feeding GET /v1/jobs/{id}/events for distributed jobs with
// the same SSE contract (sequence ids, Last-Event-ID resume, terminal
// event closes the stream).
type fleetEventLog struct {
	mu     sync.Mutex
	next   int64
	base   int64
	events []server.JobEvent
	wake   chan struct{}
}

// fleetEventLogCap bounds the buffer; progress events of a long
// distributed run trim from the front, like a node's log.
const fleetEventLogCap = 1024

func newFleetEventLog() *fleetEventLog {
	return &fleetEventLog{next: 1, base: 1, wake: make(chan struct{})}
}

func (l *fleetEventLog) append(ev server.JobEvent) {
	l.mu.Lock()
	ev.Seq = l.next
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > fleetEventLogCap {
		drop := len(l.events) - fleetEventLogCap
		l.base += int64(drop)
		l.events = append(l.events[:0], l.events[drop:]...)
	}
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

func (l *fleetEventLog) since(after int64) ([]server.JobEvent, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := after + 1 - l.base
	if start < 0 {
		start = 0
	}
	var out []server.JobEvent
	if int(start) < len(l.events) {
		out = append(out, l.events[start:]...)
	}
	return out, l.wake
}

// serveDistTrace serves a distributed job's merged trace with the exact
// semantics of a node's /v1/jobs/{id}/trace: 409 before the run
// finishes, 404 when no trace was recorded, ?trace_limit= bounds the
// payload, and the rendering is the node's own (server.RenderTrace).
func (c *Coordinator) serveDistTrace(w http.ResponseWriter, r *http.Request, f *fleetJob, d *distRun) {
	if !d.spec.Trace {
		writeError(w, http.StatusConflict, "job was not submitted with trace=true")
		return
	}
	status, _, tr, _, _, _ := d.view()
	if status == "running" {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; trace is available once it finishes", status))
		return
	}
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace recorded")
		return
	}
	limit := -1
	if q := r.URL.Query().Get("trace_limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("trace_limit must be a non-negative integer, got %q", q))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, server.RenderTrace(f.id, tr, limit))
}

// serveDistEvents streams a distributed job's coordinator-local event log
// as SSE, mirroring the node-side stream format byte for byte.
func (c *Coordinator) serveDistEvents(w http.ResponseWriter, r *http.Request, d *distRun) {
	after := int64(0)
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad Last-Event-ID %q", raw))
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	ctx := r.Context()
	for {
		events, wake := d.events.since(after)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			after = ev.Seq
			if ev.Terminal {
				_ = rc.Flush() //lint:allow errdrop the stream is over either way
				return
			}
		}
		if err := rc.Flush(); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wake:
		}
	}
}

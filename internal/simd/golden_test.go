package simd

import (
	"testing"

	"simdtree/internal/synthetic"
)

// TestGoldenSchedule pins the exact simulated schedule of a reference
// configuration.  The simulator's value lies in its reproducibility: any
// change to matching, triggering, splitting, cost accounting or the
// synthetic generator that alters cycle or phase counts must be a
// conscious decision, surfaced by this test rather than silently shifting
// every experiment.  Update the constants only alongside a DESIGN.md note
// explaining the behavioural change.
func TestGoldenSchedule(t *testing.T) {
	cases := []struct {
		label     string
		wantCyc   int
		wantNlb   int
		wantXfers int
	}{
		{"GP-S0.90", 189, 91, 3964},
		{"nGP-S0.90", 197, 112, 7076},
		{"GP-DK", 200, 66, 3528},
		{"GP-DP", 205, 56, 3926},
	}
	tree := synthetic.New(40000, 0x60D)
	for _, c := range cases {
		sch, err := ParseScheme[synthetic.Node](c.label)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run[synthetic.Node](tree, sch, Options{P: 256})
		if err != nil {
			t.Fatal(err)
		}
		if st.W != 40000 {
			t.Fatalf("%s: W=%d", c.label, st.W)
		}
		if c.wantCyc == 0 {
			// Bootstrap mode: print the values to pin.
			t.Logf("{%q, %d, %d, %d},", c.label, st.Cycles, st.LBPhases, st.Transfers)
			continue
		}
		if st.Cycles != c.wantCyc || st.LBPhases != c.wantNlb || st.Transfers != c.wantXfers {
			t.Errorf("%s: schedule drifted: cycles=%d (want %d) phases=%d (want %d) transfers=%d (want %d)",
				c.label, st.Cycles, c.wantCyc, st.LBPhases, c.wantNlb, st.Transfers, c.wantXfers)
		}
	}
}

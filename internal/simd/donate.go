package simd

import (
	"fmt"

	"simdtree/internal/stack"
)

// This file is the engine half of the distributed work-stealing subsystem
// (internal/steal): a machine can be driven one lock-step cycle at a time
// by an external coordinator, donate split stack halves to a peer machine
// on another node, and absorb donated halves into idle PEs.  Everything
// here preserves the determinism contract — donations and absorptions
// happen only at cycle boundaries, mirror the exact stack operations of a
// local transfer (Context.transferNodes), and never touch the machine's
// own schedule ledger, which a distributed run keeps on the coordinator.

// CycleInfo is the globally reducible result of one driven expansion
// cycle: exactly the quantities the run loop derives from a cycle before
// making its trigger and balance decisions.
type CycleInfo struct {
	// Active is the number of PEs that expanded a node this cycle.
	Active int
	// Goals is the number of goal nodes found this cycle.
	Goals int64
	// Peak is the largest stack size observed this cycle.
	Peak int
	// AllEmpty reports that every stack is empty after the cycle (the
	// run-loop termination condition for the next iteration).
	AllEmpty bool
	// AnyDonor reports that some PE can split its work after the cycle
	// (the donor-eligibility half of the balance gate).
	AnyDonor bool
}

// StepCycle runs exactly one lock-step node-expansion cycle across all PEs
// and returns its reductions without touching the machine's schedule
// ledger (stats, phase accumulators, virtual clock).  It is the shard-side
// primitive of a distributed run: the coordinator owns the ledger and the
// trigger/balance decisions, and because those decisions are functions of
// globally reduced scalars only, stepping every shard one cycle at a time
// reproduces the single-machine schedule exactly.
func (m *Machine[S]) StepCycle() CycleInfo {
	var res cycleResult
	res, m.expandBufs[0] = m.expandRange(0, m.stats.P, m.expandBufs[0])
	return CycleInfo{
		Active:   int(res.expanded),
		Goals:    res.goals,
		Peak:     res.peak,
		AllEmpty: m.done(),
		AnyDonor: m.anyDonor(),
	}
}

// Status reports the cycle-boundary flags of an idle machine: whether all
// stacks are empty and whether any PE could donate.  A freshly installed
// shard reads it before its first driven cycle.
func (m *Machine[S]) Status() (allEmpty, anyDonor bool) {
	return m.done(), m.anyDonor()
}

// Arena exposes the machine's structure-of-arrays stack storage for
// read-only inspection (flag scans, serialisation via wire.AppendArena).
// Mutating it outside a cycle boundary breaks the determinism contract;
// use InstallStack, TransferLocal, Donate and Absorb for sanctioned
// mutation.
func (m *Machine[S]) Arena() *stack.Arena[S] { return m.arena }

// StackAt returns a copy of PE pe's stack, materialised from the arena —
// the Stack-typed inspection surface.  Mutating the copy never affects
// the machine; callers that need the live flags or bytes without the copy
// use Arena.  On a memory-bounded machine the PE is made fully resident
// first; a fault error is latched and surfaced at the next cycle boundary.
func (m *Machine[S]) StackAt(pe int) *stack.Stack[S] {
	if err := m.faultFull(pe); err != nil && m.spillErr == nil {
		m.spillErr = err
	}
	return m.arena.MaterializeStack(pe)
}

// InstallStack replaces PE pe's contents with a copy of s (nil clears the
// PE).  It is the shard-construction primitive: a driven shard machine is
// built at full P and then has its [lo, hi) range installed from decoded
// payloads and everything else cleared.  Only valid at a cycle boundary.
func (m *Machine[S]) InstallStack(pe int, s *stack.Stack[S]) error {
	if pe < 0 || pe >= m.opts.P {
		return fmt.Errorf("simd: install PE %d out of range [0, %d)", pe, m.opts.P)
	}
	m.arena.InstallFromStack(pe, s)
	return nil
}

// TransferLocal performs one donor-to-receiver stack transfer between two
// PEs of this machine, using the scheme's splitter exactly like a
// load-balancing phase does, without touching the phase accounting (a
// distributed run accounts on the coordinator).  It returns the number of
// stack nodes moved; a donor that cannot split moves nothing.
func (m *Machine[S]) TransferLocal(from, to int) (int, error) {
	if from < 0 || from >= m.opts.P || to < 0 || to >= m.opts.P {
		return 0, fmt.Errorf("simd: transfer %d->%d out of range [0, %d)", from, to, m.opts.P)
	}
	if err := m.faultFull(from); err != nil {
		return 0, err
	}
	n := m.lbCtx.transferNodes(from, to)
	m.arena.SyncBits(from)
	m.arena.SyncBits(to)
	return n, nil
}

// Donation is one split stack half in flight between two PEs that may
// live on different machines.  The coordinator mints the ID; donations of
// one distributed run are totally ordered by it, which keeps replays
// byte-identical.
type Donation[S any] struct {
	// ID orders the donation within its distributed run.
	ID uint64
	// From and To are global PE indices (donor and receiver).
	From, To int
	// Stack holds the donated levels; the donation owns it.
	Stack *stack.Stack[S]
}

// Donate splits PE from's stack with the scheme's splitter and returns the
// donated half as a Donation addressed to PE to, leaving the donor's
// remainder in place — the cross-machine analogue of the donor side of
// Context.Transfer.  A donor that cannot split returns an empty donation
// (Stack.Size() == 0) and no error.  Only valid at a cycle boundary.
func (m *Machine[S]) Donate(id uint64, from, to int) (Donation[S], error) {
	if from < 0 || from >= m.opts.P {
		return Donation[S]{}, fmt.Errorf("simd: donor PE %d out of range [0, %d)", from, m.opts.P)
	}
	d := Donation[S]{ID: id, From: from, To: to, Stack: stack.New[S]()}
	if !m.arena.Splittable(from) {
		return d, nil
	}
	if err := m.faultFull(from); err != nil {
		return Donation[S]{}, err
	}
	// Materialise the donor, run the exact splitter a local transfer would,
	// and reinstall the remainder: the donated bytes are identical to the
	// pre-arena implementation (materialisation preserves level structure).
	donor := m.arena.MaterializeStack(from)
	if is, ok := m.sch.Splitter.(stack.IntoSplitter[S]); ok {
		is.SplitInto(donor, d.Stack)
	} else {
		d.Stack = m.sch.Splitter.Split(donor)
	}
	m.arena.InstallFromStack(from, donor)
	return d, nil
}

// Absorb installs a donation into the addressed PE, which must be idle —
// the receiver side of a cross-machine transfer.  The install performs the
// exact stack operation a local transfer would (AppendCopy of the split
// half), so a distributed schedule stays byte-identical to the
// single-machine one.  It returns the number of stack nodes absorbed.
// Only valid at a cycle boundary.
func (m *Machine[S]) Absorb(d Donation[S]) (int, error) {
	if d.To < 0 || d.To >= m.opts.P {
		return 0, fmt.Errorf("simd: absorb PE %d out of range [0, %d)", d.To, m.opts.P)
	}
	if d.Stack == nil || d.Stack.Size() == 0 {
		return 0, nil
	}
	if !m.arena.Empty(d.To) {
		return 0, fmt.Errorf("simd: absorb target PE %d is not idle (%d nodes)", d.To, m.arena.Size(d.To))
	}
	m.absorbInstall(d.To, d.Stack)
	return d.Stack.Size(), nil
}

// absorbInstall is the allocation-sensitive tail of Absorb: the level copy
// into the receiver's arena window, identical to the local-transfer
// install.
//
//lint:hotpath
func (m *Machine[S]) absorbInstall(to int, s *stack.Stack[S]) {
	m.arena.AppendFromStack(to, s)
}

package simd

import (
	"testing"

	"simdtree/internal/synthetic"
)

func TestProgressCallback(t *testing.T) {
	var snaps []ProgressInfo
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.85")
	opts := Options{
		P:             64,
		ProgressEvery: 50,
		Progress:      func(p ProgressInfo) { snaps = append(snaps, p) },
	}
	st, err := Run[synthetic.Node](synthetic.New(40000, 3), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress callbacks fired")
	}
	want := st.Cycles / 50
	if len(snaps) != want {
		t.Errorf("%d callbacks, want %d (every 50 of %d cycles)", len(snaps), want, st.Cycles)
	}
	prev := ProgressInfo{}
	for _, s := range snaps {
		if s.Cycles <= prev.Cycles || s.W < prev.W || s.Tpar <= prev.Tpar {
			t.Fatalf("progress not monotone: %+v after %+v", s, prev)
		}
		if s.Active < 0 || s.Active > 64 {
			t.Fatalf("active out of range: %+v", s)
		}
		prev = s
	}
}

func TestProgressDefaultCadence(t *testing.T) {
	calls := 0
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.85")
	opts := Options{P: 16, Progress: func(ProgressInfo) { calls++ }}
	st, err := Run[synthetic.Node](synthetic.New(5000, 3), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := st.Cycles / 1000; calls != want {
		t.Errorf("%d callbacks with default cadence over %d cycles, want %d", calls, st.Cycles, want)
	}
}

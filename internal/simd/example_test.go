package simd_test

import (
	"fmt"

	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
)

// Searching a deterministic 100k-node tree on a simulated 512-processor
// CM-2 with the paper's GP matching and D^K triggering.
func ExampleRun() {
	sch, err := simd.ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		panic(err)
	}
	stats, err := simd.Run[synthetic.Node](synthetic.New(100_000, 1), sch, simd.Options{P: 512})
	if err != nil {
		panic(err)
	}
	fmt.Printf("W=%d, E=%.2f, accounting residual=%v\n",
		stats.W, stats.Efficiency(), stats.BalanceCheck())
	// Output:
	// W=100000, E=0.68, accounting residual=0s
}

// The six schemes of the paper's Table 1 all parse from their labels.
func ExampleParseScheme() {
	for _, label := range simd.Table1Labels(0.90) {
		sch, err := simd.ParseScheme[synthetic.Node](label)
		if err != nil {
			panic(err)
		}
		fmt.Println(sch.Label)
	}
	// Output:
	// nGP-S0.90
	// nGP-DP
	// nGP-DK
	// GP-S0.90
	// GP-DP
	// GP-DK
}

// Running complete parallel IDA* — the paper's full algorithm — on a
// custom cost domain: every iteration is one exhaustive bounded search on
// the machine, so serial and parallel node counts match by construction.
func ExampleRunIDAStar() {
	dom := costChain{}
	sch, _ := simd.ParseScheme[int]("GP-S0.80")
	res, err := simd.RunIDAStar[int](dom, sch, simd.Options{P: 8}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterations=%d final bound=%d W=%d goals=%d\n",
		len(res.Iterations), res.Bound, res.Stats.W, res.Stats.Goals)
	// Output:
	// iterations=3 final bound=2 W=11 goals=4
}

// costChain is a tiny complete binary tree of depth 2 with f = depth;
// goals live at the leaves.
type costChain struct{}

func (costChain) Root() int       { return 0 } // nodes encoded as depth*10+index
func (costChain) Goal(n int) bool { return n/10 == 2 }
func (costChain) F(n int) int     { return n / 10 }
func (costChain) Expand(n int, buf []int) []int {
	if n/10 >= 2 {
		return buf
	}
	d, i := n/10, n%10
	return append(buf, (d+1)*10+2*i, (d+1)*10+2*i+1)
}

var _ search.CostDomain[int] = costChain{}

package simd

import (
	"testing"

	"simdtree/internal/synthetic"
)

// chainTree is the worst case for load balancing: a pure chain — every
// node has exactly one child, so no stack is ever splittable and no work
// can be shared.  The machine must degrade gracefully: one processor does
// everything, triggers fire but no phases can run, and the search still
// terminates with exact accounting.
type chainTree struct{ length int }

type chainNode struct{ depth int }

func (c chainTree) Root() chainNode       { return chainNode{} }
func (c chainTree) Goal(n chainNode) bool { return n.depth == c.length-1 }
func (c chainTree) Expand(n chainNode, buf []chainNode) []chainNode {
	if n.depth >= c.length-1 {
		return buf
	}
	return append(buf, chainNode{depth: n.depth + 1})
}

func TestChainTreeNoDonors(t *testing.T) {
	const length = 3000
	sch, err := ParseScheme[chainNode]("GP-S0.90")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run[chainNode](chainTree{length: length}, sch, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.W != length {
		t.Errorf("W=%d, want %d", st.W, length)
	}
	if st.Goals != 1 {
		t.Errorf("goals=%d, want 1", st.Goals)
	}
	if st.LBPhases != 0 {
		t.Errorf("performed %d phases with nothing splittable", st.LBPhases)
	}
	// One processor working out of 64: efficiency ~1/64.
	if e := st.Efficiency(); e > 0.02 {
		t.Errorf("efficiency %f, want ~1/64", e)
	}
	if st.BalanceCheck() != 0 {
		t.Error("accounting identity violated")
	}
}

// wideTree explodes immediately: the root has `width` children, each a
// leaf.  Exercises very wide levels and one-shot distribution.
type wideTree struct{ width int }

type wideNode struct{ id int }

func (w wideTree) Root() wideNode     { return wideNode{id: -1} }
func (w wideTree) Goal(wideNode) bool { return false }
func (w wideTree) Expand(n wideNode, buf []wideNode) []wideNode {
	if n.id >= 0 {
		return buf
	}
	for i := 0; i < w.width; i++ {
		buf = append(buf, wideNode{id: i})
	}
	return buf
}

func TestWideTree(t *testing.T) {
	sch, err := ParseScheme[wideNode]("GP-S0.90")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run[wideNode](wideTree{width: 5000}, sch, Options{P: 128})
	if err != nil {
		t.Fatal(err)
	}
	if st.W != 5001 {
		t.Errorf("W=%d, want 5001", st.W)
	}
	if st.PeakStack < 5000 {
		t.Errorf("peak stack %d, want >= 5000 (the root's whole level)", st.PeakStack)
	}
	if st.BalanceCheck() != 0 {
		t.Error("accounting identity violated")
	}
}

// TestSingleNodeTree is the minimal search.
func TestSingleNodeTree(t *testing.T) {
	sch, _ := ParseScheme[synthetic.Node]("GP-DK")
	st, err := Run[synthetic.Node](synthetic.New(1, 1), sch, Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.W != 1 || st.Cycles != 1 {
		t.Errorf("W=%d cycles=%d, want 1/1", st.W, st.Cycles)
	}
}

// TestMorePEsThanNodes: a tiny tree on a big machine terminates cleanly
// with most processors never receiving work.
func TestMorePEsThanNodes(t *testing.T) {
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.50")
	st, err := Run[synthetic.Node](synthetic.New(30, 2), sch, Options{P: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if st.W != 30 {
		t.Errorf("W=%d, want 30", st.W)
	}
	if st.BalanceCheck() != 0 {
		t.Error("accounting identity violated")
	}
}

package simd

import (
	"errors"
	"fmt"
	"time"

	"simdtree/internal/match"
	"simdtree/internal/metrics"
	"simdtree/internal/search"
	"simdtree/internal/stack"
	"simdtree/internal/trace"
)

// Snapshot is the complete deterministic state of a machine at a cycle
// boundary: everything the remaining schedule depends on, and nothing
// else.  Running to cycle k, snapshotting, restoring into a fresh machine
// and running to the end produces Stats and trace byte-identical to an
// uninterrupted run — the invariant internal/checkpoint's tests enforce
// across every Table 1 scheme.
//
// A Snapshot owns its data: stacks, trace and domain state are deep copies
// decoupled from the machine that produced them.
type Snapshot[S any] struct {
	// Cycle is the number of completed expansion cycles (== Stats.Cycles).
	Cycle int
	// InitDone reports that the Section 7 initial-distribution phase has
	// completed; a restored run with InitDone false re-enters it.
	InitDone bool
	// Stacks holds one DFS stack per processing element, level structure
	// preserved.
	Stacks []*stack.Stack[S]
	// MatcherPointer is the GP global pointer (-1 when parked); it is
	// ignored for the stateless nGP matcher.
	MatcherPointer int

	// Search-phase accumulators since the last load-balancing phase — the
	// ledger the D^K and D^P triggers read (w_idle, w, t) and the static
	// trigger's phase position.
	PhaseCycles  int
	PhaseElapsed time.Duration
	PhaseWork    time.Duration
	PhaseIdle    time.Duration
	// EstLB is L, the projected cost of the next balancing phase.
	EstLB time.Duration

	// Stats are the cumulative Section 3.1 aggregates of the prefix, with
	// the derived fields (Tcalc, Goals) filled and Cancelled cleared.
	Stats metrics.Stats

	// DomainState is the opaque payload of a search.Stateful domain (the
	// IDA* bounded domain's smallest-pruned-f accumulator); nil for
	// stateless domains.
	DomainState []byte

	// Trace is a deep copy of the per-cycle trace recorded so far; nil
	// when the run is untraced.  Restore preloads the new run's trace
	// with it so the full trace equals an uninterrupted run's.
	Trace *trace.Trace

	// IDA carries the surrounding parallel-IDA* iteration state; it is
	// set only for snapshots taken via RunIDAStarCheckpointed.
	IDA *IDAState
}

// IDAState is the iteration-level state of a parallel IDA* run in flight:
// which cost-bounded iteration the machine snapshot belongs to and the
// iterations already completed.
type IDAState struct {
	// Iteration is the zero-based index of the in-flight iteration.
	Iteration int
	// Bound is the cost bound of the in-flight iteration.
	Bound int
	// Done lists the completed iterations in bound order.
	Done []IterationStat
}

// clone returns a deep copy of the IDA state.
func (s *IDAState) clone() *IDAState {
	if s == nil {
		return nil
	}
	c := &IDAState{Iteration: s.Iteration, Bound: s.Bound}
	c.Done = append([]IterationStat(nil), s.Done...)
	return c
}

// Snapshot captures the machine state at the current cycle boundary.  It
// must only be called while the machine is quiescent: before RunContext,
// after it returned, or from inside an OnCheckpoint sink.  It returns an
// error when the scheme uses a stateful balancer the snapshot format
// cannot capture (none of the paper's Table 1 schemes do).
func (m *Machine[S]) Snapshot() (*Snapshot[S], error) {
	ptr, err := m.matcherPointer()
	if err != nil {
		return nil, err
	}
	// A memory-bounded machine reabsorbs its evicted levels first, so the
	// snapshot is self-contained and byte-identical to an unbounded run's;
	// the next sweep deterministically re-evicts.
	if err := m.faultAllPEs(); err != nil {
		return nil, err
	}
	m.fillDerivedStats()
	snap := &Snapshot[S]{
		Cycle:          m.stats.Cycles,
		InitDone:       m.initDone,
		Stacks:         make([]*stack.Stack[S], m.opts.P),
		MatcherPointer: ptr,
		PhaseCycles:    m.phaseCycles,
		PhaseElapsed:   m.phaseElapsed,
		PhaseWork:      m.phaseWork,
		PhaseIdle:      m.phaseIdle,
		EstLB:          m.estLB,
		Stats:          m.stats,
		Trace:          m.opts.Trace.Clone(),
	}
	snap.Stats.Cancelled = false
	for i := range snap.Stacks {
		snap.Stacks[i] = m.arena.MaterializeStack(i)
	}
	if st, ok := m.d.(search.Stateful); ok {
		snap.DomainState = st.SaveState()
	}
	return snap, nil
}

// RestoreSnapshot replaces the machine state with snap's, deep-copying so
// the snapshot stays valid.  The machine must have been built by
// NewMachine for the same domain, scheme and machine size the snapshot was
// taken under; mismatches that are detectable (processor count, domain
// statefulness, IDA* provenance) return an error and leave the machine
// unchanged.
func (m *Machine[S]) RestoreSnapshot(snap *Snapshot[S]) error {
	if snap == nil {
		return errors.New("simd: nil snapshot")
	}
	if len(snap.Stacks) != m.opts.P {
		return fmt.Errorf("simd: snapshot has %d stacks, machine has P=%d", len(snap.Stacks), m.opts.P)
	}
	if snap.Stats.P != m.opts.P {
		return fmt.Errorf("simd: snapshot stats are for P=%d, machine has P=%d", snap.Stats.P, m.opts.P)
	}
	st, stateful := m.d.(search.Stateful)
	if snap.DomainState != nil && !stateful {
		return errors.New("simd: snapshot carries domain state but the domain is stateless")
	}
	if _, err := m.matcherPointer(); err != nil {
		return err
	}
	if snap.DomainState != nil {
		if err := st.RestoreState(snap.DomainState); err != nil {
			return err
		}
	}
	for i, s := range snap.Stacks {
		m.arena.InstallFromStack(i, s)
	}
	m.stats = snap.Stats
	m.stats.Cancelled = false
	m.goals = snap.Stats.Goals
	m.initDone = snap.InitDone
	m.phaseCycles = snap.PhaseCycles
	m.phaseElapsed = snap.PhaseElapsed
	m.phaseWork = snap.PhaseWork
	m.phaseIdle = snap.PhaseIdle
	m.estLB = snap.EstLB
	m.setMatcherPointer(snap.MatcherPointer)
	if m.opts.Trace != nil && snap.Trace != nil {
		pre := snap.Trace.Clone()
		m.opts.Trace.Samples = pre.Samples
		m.opts.Trace.Events = pre.Events
	}
	// The snapshot replaced the machine state wholesale, so any segments
	// the residency manager still holds describe stacks that no longer
	// exist; drop them (the next sweep re-evicts deterministically).
	m.spillErr = nil
	if m.spiller != nil {
		if err := m.spiller.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// matcherPointer extracts the cross-phase matcher state.  The paper's
// schemes all use MatchBalancer, whose only state is the GP pointer; a
// foreign balancer that carries state of its own (it exposes Reset) cannot
// be captured and poisons the snapshot.
func (m *Machine[S]) matcherPointer() (int, error) {
	if mb, ok := m.sch.Balancer.(*MatchBalancer[S]); ok {
		if gp, ok := mb.Matcher.(*match.GP); ok {
			return gp.Pointer(), nil
		}
		return -1, nil
	}
	if _, stateful := m.sch.Balancer.(interface{ Reset() }); stateful {
		return 0, fmt.Errorf("simd: balancer %s carries state a snapshot cannot capture", m.sch.Balancer.Name())
	}
	return -1, nil
}

// setMatcherPointer restores the GP pointer; it is a no-op for stateless
// matchers and balancers.
func (m *Machine[S]) setMatcherPointer(p int) {
	if mb, ok := m.sch.Balancer.(*MatchBalancer[S]); ok {
		if gp, ok := mb.Matcher.(*match.GP); ok {
			gp.SetPointer(p)
		}
	}
}

package simd

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
)

// cancelAtCycle runs the scheme until cycle k, cancels at that boundary,
// and returns the machine (quiescent, resumable) plus its partial stats.
func cancelAtCycle[S any](t *testing.T, d search.Domain[S], label string, opts Options, k int) *Machine[S] {
	t.Helper()
	sch, err := ParseScheme[S](label)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.ProgressEvery = 1
	opts.Progress = func(p ProgressInfo) {
		if p.Cycles >= k {
			cancel()
		}
	}
	m, err := NewMachine[S](d, sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel at cycle %d: err = %v, want context.Canceled", k, err)
	}
	if st.Cycles != k {
		t.Fatalf("cancelled run completed %d cycles, want %d", st.Cycles, k)
	}
	return m
}

// TestSnapshotResumeEquivalence is the in-memory core of the checkpoint
// invariant: run to cycle k, Snapshot, restore into a fresh machine, run
// to the end — Stats and trace equal the uninterrupted run's exactly.
// (The serialized version lives in internal/checkpoint.)
func TestSnapshotResumeEquivalence(t *testing.T) {
	const label = "GP-DK"
	newDomain := func() search.Domain[synthetic.Node] { return synthetic.New(4000, 3) }
	newOpts := func() (Options, *trace.Trace) {
		tr := &trace.Trace{}
		return Options{P: 32, Trace: tr}, tr
	}

	refOpts, refTr := newOpts()
	sch, err := ParseScheme[synthetic.Node](label)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run[synthetic.Node](newDomain(), sch, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cycles < 3 {
		t.Fatalf("reference run too short: %d cycles", ref.Cycles)
	}

	for _, k := range []int{1, ref.Cycles / 2, ref.Cycles - 1} {
		partOpts, _ := newOpts()
		m := cancelAtCycle[synthetic.Node](t, newDomain(), label, partOpts, k)
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatalf("k=%d: Snapshot: %v", k, err)
		}
		if snap.Cycle != k {
			t.Fatalf("k=%d: snapshot cycle %d", k, snap.Cycle)
		}
		resOpts, resTr := newOpts()
		sch2, err := ParseScheme[synthetic.Node](label)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ResumeContext[synthetic.Node](context.Background(), newDomain(), sch2, resOpts, snap)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got != ref {
			t.Errorf("k=%d: resumed stats differ:\n got %+v\nwant %+v", k, got, ref)
		}
		if !reflect.DeepEqual(resTr.Samples, refTr.Samples) {
			t.Errorf("k=%d: resumed trace samples differ", k)
		}
		if !reflect.DeepEqual(resTr.Events, refTr.Events) {
			t.Errorf("k=%d: resumed trace events differ", k)
		}
	}
}

// TestMachineContinueAfterCancel: the same machine object can simply keep
// running after a cancellation — resume without any snapshot at all.
func TestMachineContinueAfterCancel(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("nGP-S0.80")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run[synthetic.Node](synthetic.New(4000, 3), sch, Options{P: 32})
	if err != nil {
		t.Fatal(err)
	}
	m := cancelAtCycle[synthetic.Node](t, synthetic.New(4000, 3), "nGP-S0.80", Options{P: 32}, ref.Cycles/2)
	got, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatalf("continue: %v", err)
	}
	if got != ref {
		t.Errorf("continued stats differ:\n got %+v\nwant %+v", got, ref)
	}
}

// TestOnCheckpointCadenceAndAbort: the sink fires at the configured
// cadence with prefix-consistent snapshots, and a sink error aborts the
// run with that error, unmarked as cancellation.
func TestOnCheckpointCadenceAndAbort(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{P: 32, CheckpointEvery: 5}
	m, err := NewMachine[synthetic.Node](synthetic.New(4000, 3), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	var cycles []int
	m.OnCheckpoint(func(s *Snapshot[synthetic.Node]) error {
		cycles = append(cycles, s.Cycle)
		return nil
	})
	if _, err := m.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(cycles) == 0 {
		t.Fatal("checkpoint sink never fired")
	}
	for i, c := range cycles {
		if c%5 != 0 || c == 0 {
			t.Errorf("snapshot %d at cycle %d, want positive multiples of 5", i, c)
		}
	}

	sinkErr := errors.New("disk full")
	m2, err := NewMachine[synthetic.Node](synthetic.New(4000, 3), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2.OnCheckpoint(func(*Snapshot[synthetic.Node]) error { return sinkErr })
	st, err := m2.RunContext(context.Background())
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if st.Cancelled {
		t.Error("sink error must not mark the run cancelled")
	}
}

// TestIDAStarCheckpointResume: cancel a parallel IDA* run mid-iteration,
// capture the final checkpoint the driver writes, resume, and require the
// aggregate result to match an uninterrupted run.
func TestIDAStarCheckpointResume(t *testing.T) {
	const label = "GP-S0.80"
	newDomain := func() search.CostDomain[puzzle.Node] { return puzzle.NewDomain(puzzle.Scramble(23, 30)) }
	sch, err := ParseScheme[puzzle.Node](label)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{P: 16}
	ref, err := RunIDAStar[puzzle.Node](newDomain(), sch, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Iterations) < 2 {
		t.Fatalf("want a multi-iteration reference, got %d iterations", len(ref.Iterations))
	}

	// Cancel somewhere inside the final iteration; every periodic snapshot
	// goes through the sink, and the driver adds a final one on cancel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Snapshot[puzzle.Node]
	ckptOpts := opts
	ckptOpts.CheckpointEvery = 3
	sch2, err := ParseScheme[puzzle.Node](label)
	if err != nil {
		t.Fatal(err)
	}
	sink := func(s *Snapshot[puzzle.Node]) error {
		last = s
		if s.IDA.Iteration == len(ref.Iterations)-1 && s.Cycle >= 2 {
			cancel()
		}
		return nil
	}
	_, runErr := RunIDAStarCheckpointed[puzzle.Node](ctx, newDomain(), sch2, ckptOpts, 0, nil, sink)
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
	if last == nil || last.IDA == nil {
		t.Fatal("no checkpoint captured")
	}

	sch3, err := ParseScheme[puzzle.Node](label)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunIDAStarCheckpointed[puzzle.Node](context.Background(), newDomain(), sch3, opts, 0, last, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Stats != ref.Stats {
		t.Errorf("resumed aggregate stats differ:\n got %+v\nwant %+v", got.Stats, ref.Stats)
	}
	if got.Bound != ref.Bound || len(got.Iterations) != len(ref.Iterations) {
		t.Errorf("resumed shape differs: bound %d/%d, iterations %d/%d",
			got.Bound, ref.Bound, len(got.Iterations), len(ref.Iterations))
	}
	for i := range got.Iterations {
		if got.Iterations[i] != ref.Iterations[i] {
			t.Errorf("iteration %d differs:\n got %+v\nwant %+v", i, got.Iterations[i], ref.Iterations[i])
		}
	}
}

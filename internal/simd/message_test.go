package simd

import (
	"testing"
	"time"

	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
)

func TestMessageCost(t *testing.T) {
	c := CM2Costs()
	if c.MessageCost(topology.CM2{}, 1024, 100) != 0 {
		t.Error("message cost should be zero under the paper's constant-size model")
	}
	c.PerNodeTransfer = time.Millisecond
	if got := c.MessageCost(topology.CM2{}, 1024, 100); got != 100*time.Millisecond {
		t.Errorf("message cost %v, want 100ms", got)
	}
	// Scaled by topology steps and LBScale.
	c.LBScale = 2
	if got := c.MessageCost(topology.CM2{}, 1024, 100); got != 200*time.Millisecond {
		t.Errorf("scaled message cost %v, want 200ms", got)
	}
	if c.MessageCost(topology.CM2{}, 1024, 0) != 0 {
		t.Error("no nodes moved means no message cost")
	}
}

// TestPerNodeCostPenalisesBulkSplits runs the same search with both
// splitters under a per-node transfer cost and verifies the accounting
// reacts: the half-stack variant must pay more per phase (its Tlb per
// phase exceeds bottom-node's), since it ships bulk messages.
func TestPerNodeCostPenalisesBulkSplits(t *testing.T) {
	tree := synthetic.New(60000, 0x88)
	run := func(split stack.Splitter[synthetic.Node]) (perPhase float64, maxTransfer int) {
		sch, err := ParseScheme[synthetic.Node]("GP-S0.85")
		if err != nil {
			t.Fatal(err)
		}
		sch.Splitter = split
		opts := Options{P: 128}
		opts.Costs = CM2Costs()
		opts.Costs.PerNodeTransfer = time.Millisecond
		st, err := Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Tlb) / float64(st.LBPhases), st.MaxTransfer
	}
	bottomPer, bottomMax := run(stack.BottomNode[synthetic.Node]{})
	halfPer, halfMax := run(stack.HalfStack[synthetic.Node]{})
	if bottomMax != 1 {
		t.Errorf("bottom-node max transfer %d, want 1", bottomMax)
	}
	if halfMax <= 1 {
		t.Errorf("half-stack max transfer %d, want > 1", halfMax)
	}
	if halfPer <= bottomPer {
		t.Errorf("half-stack per-phase cost %.0f should exceed bottom-node %.0f under per-node pricing",
			halfPer, bottomPer)
	}
}

func TestDKGammaParse(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-DK0.50")
	if err != nil {
		t.Fatal(err)
	}
	if sch.Label != "GP-DK0.50" {
		t.Errorf("label %q", sch.Label)
	}
	if _, err := ParseScheme[synthetic.Node]("GP-DK-1"); err == nil {
		t.Error("negative gamma accepted")
	}
}

// TestDKGammaTradeoff: smaller gamma balances more often.  The effect
// shows when per-cycle idle time is small against the gamma*L*P
// threshold, i.e. while the machine stays mostly busy — a modest P with a
// modest tree keeps it in that regime.
func TestDKGammaTradeoff(t *testing.T) {
	tree := synthetic.New(6000, 0xAB8)
	phases := map[string]int{}
	for _, label := range []string{"GP-DK0.25", "GP-DK4.00"} {
		sch, err := ParseScheme[synthetic.Node](label)
		if err != nil {
			t.Fatal(err)
		}
		sch.WantInit = true
		st, err := Run[synthetic.Node](tree, sch, Options{P: 64})
		if err != nil {
			t.Fatal(err)
		}
		phases[label] = st.LBPhases
	}
	if phases["GP-DK0.25"] <= phases["GP-DK4.00"] {
		t.Errorf("gamma 0.25 balanced %d times, gamma 4 %d times; expected more phases at smaller gamma",
			phases["GP-DK0.25"], phases["GP-DK4.00"])
	}
}

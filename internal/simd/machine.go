// Package simd simulates the paper's machine model: P processing elements
// executing a parallel depth-first search in lock-step, alternating between
// a search phase (node-expansion cycles) and a load-balancing phase (idle
// processors matched to busy donors, which split their DFS stacks).  The
// simulator substitutes for the CM-2 of the paper's experiments: it
// reproduces the lock-step schedule exactly — every busy PE expands one
// node per cycle, the trigger is evaluated globally between cycles, phases
// are barrier-synchronised — and charges the paper's measured unit costs
// (Ucalc per cycle, tlb per phase) to a deterministic virtual clock, from
// which the Section 3.1 aggregates (Tcalc, Tidle, Tlb, efficiency) follow.
//
// The schedule, node counts and virtual times are bit-for-bit deterministic
// for a given (domain, scheme, options); the Workers option only shards the
// host-side simulation work — the expansion of each cycle, and the flag
// scans, matching enumerations and stack transfers of each load-balancing
// phase — across goroutines to speed up wall-clock simulation and never
// changes results: every parallel step either writes disjoint state or is
// reduced sequentially in shard order.
//
// One deliberate deviation from the paper's terminology: the paper calls a
// processor "busy" only when its stack is splittable (at least two nodes).
// Here the active count A used by triggers and idle-time accounting counts
// processors with any work at all (they do expand a node that cycle), while
// donor eligibility still requires a splittable stack.  The two coincide
// except for the rare single-node stacks, and the accounting identity
// P*Tpar = Tcalc + Tidle + Tlb requires the has-work notion.
package simd

import (
	"context"
	"errors"
	"fmt"
	"math"
	mbits "math/bits"
	"sync"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/search"
	"simdtree/internal/stack"
	"simdtree/internal/topology"
	"simdtree/internal/trace"
	"simdtree/internal/trigger"
)

// Options configures a simulated run.  The zero value (plus a positive P)
// reproduces the paper's CM-2 setup.
type Options struct {
	// P is the number of processing elements; it must be positive.
	P int
	// Topology is the interconnection network; nil means the CM-2.
	Topology topology.Network
	// Costs is the virtual cost model; zero fields default to CM2Costs.
	Costs Costs
	// InitThreshold controls the initial distribution phase the paper
	// uses before dynamic triggering (Section 7): expansion cycles and
	// distribution phases alternate until this fraction of PEs has work.
	// 0 selects the paper's default (0.85 for dynamic triggers, none for
	// static); a negative value disables the phase outright.
	InitThreshold float64
	// StopAtFirstGoal stops the search once any PE finds a goal in a
	// cycle.  The default (false) searches exhaustively, matching the
	// paper's all-solutions runs that keep serial and parallel node
	// counts identical.
	StopAtFirstGoal bool
	// Workers shards each expansion cycle across this many goroutines;
	// values below 1 mean sequential execution.  Results are identical
	// for any worker count.
	Workers int
	// MaxCycles aborts runaway simulations; 0 means no limit.
	MaxCycles int
	// Trace, when non-nil, records per-cycle active counts and trigger
	// quantities (Figures 1 and 8).
	Trace *trace.Trace
	// Progress, when non-nil, is called every ProgressEvery expansion
	// cycles (default 1000) with a liveness snapshot — useful for the
	// multi-minute full-scale runs.  It runs on the simulation goroutine;
	// keep it cheap.
	Progress func(ProgressInfo)
	// ProgressEvery sets the Progress callback cadence in cycles.
	ProgressEvery int
	// CheckpointEvery invokes the checkpoint sink registered with
	// Machine.OnCheckpoint every N completed expansion cycles, at the
	// cycle boundary (the only point where the machine state is a
	// well-defined prefix of the schedule).  0 disables periodic
	// checkpoints; the sink can still be driven manually via Snapshot.
	CheckpointEvery int
	// MemBudget caps the resident stack memory, in bytes: when positive,
	// the spill manager registered with Machine.SetSpiller evicts the
	// coldest bottom-of-stack levels to disk at cycle boundaries and
	// faults them back on demand.  The schedule, stats, traces and
	// checkpoints are byte-identical with any budget, including none —
	// residency is invisible to the search order.  A positive budget with
	// no registered spiller is an error at run time; codec-aware entry
	// points (the facade search helpers, the server, the CLIs) wire a
	// manager automatically.
	MemBudget int64
}

// ProgressInfo is the snapshot handed to Options.Progress.
type ProgressInfo struct {
	Cycles   int           // expansion cycles completed
	Active   int           // processors busy in the latest cycle
	W        int64         // nodes expanded so far
	LBPhases int           // load-balancing phases so far
	Tpar     time.Duration // virtual time elapsed
}

// Machine is the mutable state of one simulated run.  NewMachine builds
// one; RunContext (the method) advances it to completion.  Between cycles
// — before RunContext starts, after it returns on cancellation, or inside
// an OnCheckpoint sink — the machine is quiescent and Snapshot /
// RestoreSnapshot may capture or replace its state.  The package-level Run
// and RunContext remain the one-call form for runs that never checkpoint.
type Machine[S any] struct {
	ctx   context.Context
	d     search.Domain[S]
	sch   Scheme[S]
	opts  Options
	topo  topology.Network
	costs Costs

	// arena holds every PE stack in structure-of-arrays form: flat per-PE
	// size/offset arrays, contiguous per-PE node buffers, and the has-work
	// and can-split bitsets the cycle loop reduces over.
	arena   *stack.Arena[S]
	workers int

	// shards are the fixed [lo, hi) PE ranges the worker goroutines cover,
	// computed once at construction rather than re-derived every cycle.
	// cycleRes and expandBufs are the matching per-shard result slots and
	// expansion scratch buffers, reused every cycle so the hot path does
	// not allocate; taskExpand is the pre-bound shard task.
	shards     []shardRange
	cycleRes   []cycleResult
	expandBufs [][]S
	taskExpand func(w int)

	// Worker pool: long-lived goroutines (started by RunContext, stopped
	// when it returns) that execute parTask once per shard between two
	// barriers, so per-cycle parallelism costs channel signals instead of
	// goroutine spawns.  parReady is nil while the pool is down.
	parReady []chan struct{}
	parWG    sync.WaitGroup
	parTask  func(w int)

	// lbCtx is the reusable load-balancing context, reset per phase.
	lbCtx *Context[S]

	stats metrics.Stats
	goals int64

	// initDone records that the Section 7 initial-distribution phase (if
	// the scheme wants one) has completed; snapshots carry it so a resumed
	// run re-enters the correct loop.
	initDone bool

	// ckpt is the sink registered with OnCheckpoint, driven every
	// Options.CheckpointEvery cycles.
	ckpt func(*Snapshot[S]) error

	// spiller is the residency manager registered with SetSpiller; nil
	// runs unbounded.  spillErr latches the first fault error raised from
	// inside a balancing phase (whose transfer paths cannot return one);
	// the run loop surfaces it at the next boundary.
	spiller  Spiller[S]
	spillErr error

	// Search-phase accumulators, reset after every load-balancing phase.
	phaseCycles  int
	phaseElapsed time.Duration
	phaseWork    time.Duration
	phaseIdle    time.Duration
	estLB        time.Duration
}

// Run simulates the parallel search of d under scheme sch and returns the
// Section 3.1 statistics.  It is RunContext with a background context.
func Run[S any](d search.Domain[S], sch Scheme[S], opts Options) (metrics.Stats, error) {
	//lint:allow ctxflow deprecated context-free wrapper kept for API compatibility
	return RunContext[S](context.Background(), d, sch, opts)
}

// RunContext is Run with cooperative cancellation.  The context is checked
// only at cycle boundaries — between lock-step node-expansion cycles —
// never inside one, so cancellation can not perturb the schedule of the
// cycles that did complete: a run cancelled after k cycles is bit-for-bit
// the k-cycle prefix of the uncancelled run.  On cancellation it returns
// the partial Stats accumulated so far with Stats.Cancelled set, plus the
// context's cause (context.Canceled or context.DeadlineExceeded).
func RunContext[S any](ctx context.Context, d search.Domain[S], sch Scheme[S], opts Options) (metrics.Stats, error) {
	m, err := NewMachine[S](d, sch, opts)
	if err != nil {
		return metrics.Stats{}, err
	}
	return m.RunContext(ctx)
}

// ResumeContext restores snap into a fresh machine for (d, sch, opts) and
// runs it to completion.  The domain, scheme and options must be the ones
// the snapshotted run was started with; the resumed run then produces
// Stats and trace byte-identical to the uninterrupted run.  Snapshots
// taken during a parallel IDA* run carry iteration state and must go
// through RunIDAStarCheckpointed instead.
func ResumeContext[S any](ctx context.Context, d search.Domain[S], sch Scheme[S], opts Options, snap *Snapshot[S]) (metrics.Stats, error) {
	if snap != nil && snap.IDA != nil {
		return metrics.Stats{}, errors.New("simd: snapshot is from an IDA* run; resume it with RunIDAStarCheckpointed")
	}
	m, err := NewMachine[S](d, sch, opts)
	if err != nil {
		return metrics.Stats{}, err
	}
	if err := m.RestoreSnapshot(snap); err != nil {
		return metrics.Stats{}, err
	}
	return m.RunContext(ctx)
}

// NewMachine validates the configuration and builds a machine with the
// root node on processor 0's stack, ready to run.  The scheme's trigger
// and balancer are Reset, so schemes may be reused across machines.
func NewMachine[S any](d search.Domain[S], sch Scheme[S], opts Options) (*Machine[S], error) {
	if d == nil {
		return nil, errors.New("simd: nil domain")
	}
	if opts.P <= 0 {
		return nil, fmt.Errorf("simd: invalid processor count %d", opts.P)
	}
	if sch.Trigger == nil || sch.Balancer == nil {
		return nil, errors.New("simd: scheme is missing a trigger or balancer")
	}
	if sch.Splitter == nil {
		sch.Splitter = stack.BottomNode[S]{}
	}
	sch.Trigger.Reset()
	if r, ok := sch.Balancer.(interface{ Reset() }); ok {
		r.Reset()
	}

	m := &Machine[S]{
		d:     d,
		sch:   sch,
		opts:  opts,
		topo:  opts.Topology,
		costs: opts.Costs.normalize(),
	}
	if m.topo == nil {
		m.topo = topology.CM2{}
	}
	m.workers = opts.Workers
	if m.workers < 1 {
		m.workers = 1
	}
	if m.workers > opts.P {
		m.workers = opts.P
	}
	m.arena = stack.NewArena[S](opts.P)
	m.arena.PushLevel(0, []S{d.Root()})
	m.stats.P = opts.P
	m.estLB = m.costs.SingleRoundCost(m.topo, opts.P)

	m.shards = makeShards(opts.P, m.workers)
	m.workers = len(m.shards)
	m.cycleRes = make([]cycleResult, len(m.shards))
	m.expandBufs = make([][]S, len(m.shards))
	m.taskExpand = func(w int) {
		sh := m.shards[w]
		m.cycleRes[w], m.expandBufs[w] = m.expandRange(sh.lo, sh.hi, m.expandBufs[w])
	}
	m.lbCtx = &Context[S]{
		Arena:    m.arena,
		Splitter: m.sch.Splitter,
		Topo:     m.topo,
		workers:  m.workers,
	}
	if m.workers > 1 {
		m.lbCtx.runParallel = m.parallel
	}
	return m, nil
}

// shardRange is one worker's fixed [lo, hi) slice of the PE array.
type shardRange struct{ lo, hi int }

// makeShards divides p processing elements into at most workers contiguous
// chunks, dropping empty trailing chunks.  Chunks are rounded up to whole
// 64-PE bitset words so no two shards ever share a flag word: the parallel
// expansion updates each PE's has-work/can-split bits in place, and word
// ownership per shard keeps those read-modify-writes race-free.
func makeShards(p, workers int) []shardRange {
	chunk := (p + workers - 1) / workers
	chunk = (chunk + 63) &^ 63
	shards := make([]shardRange, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > p {
			hi = p
		}
		if lo >= hi {
			break
		}
		shards = append(shards, shardRange{lo: lo, hi: hi})
	}
	return shards
}

// startPool launches the worker-pool goroutines; a no-op for sequential
// machines or when the pool is already up.
func (m *Machine[S]) startPool() {
	if m.workers <= 1 || m.parReady != nil {
		return
	}
	m.parReady = make([]chan struct{}, m.workers)
	for w := range m.parReady {
		ch := make(chan struct{}, 1)
		m.parReady[w] = ch
		go func(w int, ready chan struct{}) {
			for range ready {
				m.parTask(w)
				m.parWG.Done()
			}
		}(w, ch)
	}
}

// stopPool shuts the worker-pool goroutines down so a quiescent machine
// holds no background resources.
func (m *Machine[S]) stopPool() {
	for _, ch := range m.parReady {
		close(ch)
	}
	m.parReady = nil
}

// parallel runs task once per shard and waits for all of them.  The channel
// send publishes parTask to the pool goroutines and the WaitGroup publishes
// their writes back, so tasks may freely write their own shard's slots.
// Without a pool (sequential machine, or a call outside RunContext) the
// shards run in order on the calling goroutine — same results either way.
func (m *Machine[S]) parallel(task func(w int)) {
	if m.parReady == nil {
		for w := 0; w < m.workers; w++ {
			task(w)
		}
		return
	}
	m.parTask = task
	m.parWG.Add(len(m.parReady))
	for _, ch := range m.parReady {
		ch <- struct{}{}
	}
	m.parWG.Wait()
}

// OnCheckpoint registers fn as the machine's checkpoint sink.  The engine
// calls it synchronously at cycle boundaries, every Options.CheckpointEvery
// completed cycles, with a deep snapshot of the machine state; an error
// from fn aborts the run with that error.  A nil Options.CheckpointEvery
// (zero) leaves the sink dormant.
func (m *Machine[S]) OnCheckpoint(fn func(*Snapshot[S]) error) { m.ckpt = fn }

// RunContext advances the machine to completion (or cancellation, budget
// exhaustion, or a checkpoint-sink error) and returns the cumulative
// Section 3.1 statistics.  After a cancelled run the machine sits at a
// cycle boundary: Snapshot captures the exact prefix state, and calling
// RunContext again with a live context continues the schedule in place.
func (m *Machine[S]) RunContext(ctx context.Context) (metrics.Stats, error) {
	if ctx == nil {
		//lint:allow ctxflow nil-context guard preserving the context-free entry points
		ctx = context.Background()
	}
	m.ctx = ctx
	if m.opts.MemBudget > 0 && m.spiller == nil {
		return m.stats, errors.New("simd: Options.MemBudget set but no spill manager registered (SetSpiller)")
	}
	// A machine resumed after cancellation starts a fresh verdict.
	m.stats.Cancelled = false

	// Tcalc and Goals are filled in even when the run stops early
	// (cancellation, MaxCycles) so callers always see consistent partial
	// aggregates for the completed prefix of the schedule.
	m.startPool()
	err := m.run()
	m.stopPool()
	m.fillDerivedStats()
	return m.stats, err
}

// fillDerivedStats computes the aggregates that are functions of the
// accumulators, so both run exits and snapshots report consistent Stats.
func (m *Machine[S]) fillDerivedStats() {
	m.stats.Tcalc = time.Duration(m.stats.W) * m.costs.NodeExpansion
	m.stats.Goals = m.goals
}

// run executes the initial distribution followed by the main
// search/balance loop.
func (m *Machine[S]) run() error {
	if !m.initDone {
		initTh := m.opts.InitThreshold
		if initTh == 0 && m.sch.WantInit {
			initTh = 0.85
		}
		if initTh > 0 {
			if err := m.initialDistribution(initTh); err != nil {
				return err
			}
		}
		m.initDone = true
	}
	for {
		if m.done() {
			return nil
		}
		if err := m.checkBudget(); err != nil {
			return err
		}
		if err := m.checkCtx(); err != nil {
			return err
		}
		if err := m.maybeCheckpoint(); err != nil {
			return err
		}
		if err := m.spillBarrier(); err != nil {
			return err
		}
		active := m.cycle()
		st := m.triggerState(active)
		m.recordSample(st)
		if m.opts.StopAtFirstGoal && m.goals > 0 {
			return nil
		}
		if m.sch.Trigger.ShouldBalance(st) && active < m.stats.P && m.anyDonor() {
			m.balance(false)
		}
		if err := m.spillSweep(); err != nil {
			return err
		}
	}
}

// initialDistribution alternates expansion cycles with distribution phases
// until the target fraction of PEs has work (Section 7).
func (m *Machine[S]) initialDistribution(threshold float64) error {
	if threshold > 1 {
		threshold = 1
	}
	target := int(math.Ceil(threshold * float64(m.stats.P)))
	for {
		if m.done() {
			return nil
		}
		if err := m.checkBudget(); err != nil {
			return err
		}
		if err := m.checkCtx(); err != nil {
			return err
		}
		if err := m.maybeCheckpoint(); err != nil {
			return err
		}
		if err := m.spillBarrier(); err != nil {
			return err
		}
		active := m.cycle()
		m.stats.InitCycles++
		m.recordSample(m.triggerState(active))
		if m.opts.StopAtFirstGoal && m.goals > 0 {
			return nil
		}
		if active >= target {
			return nil
		}
		if active < m.stats.P && m.anyDonor() {
			m.balance(true)
		}
		if err := m.spillSweep(); err != nil {
			return err
		}
	}
}

// maybeCheckpoint drives the OnCheckpoint sink at the configured cadence.
// It runs at the top of a loop iteration, i.e. at the boundary after the
// previous cycle (and its trigger/balance decision) fully completed, so
// the snapshot is exactly the k-cycle prefix state.
func (m *Machine[S]) maybeCheckpoint() error {
	every := m.opts.CheckpointEvery
	if every <= 0 || m.ckpt == nil || m.stats.Cycles == 0 || m.stats.Cycles%every != 0 {
		return nil
	}
	snap, err := m.Snapshot()
	if err != nil {
		return err
	}
	return m.ckpt(snap)
}

// done reports whether every stack is empty: all has-work bitset words
// zero, one compare per 64 PEs instead of a pointer chase per PE.
func (m *Machine[S]) done() bool { return m.arena.NoWork() }

// anyDonor reports whether some PE can split its work (any can-split
// bitset word non-zero).
func (m *Machine[S]) anyDonor() bool { return m.arena.AnySplittable() }

// checkBudget enforces the MaxCycles safety valve.
func (m *Machine[S]) checkBudget() error {
	if m.opts.MaxCycles > 0 && m.stats.Cycles >= m.opts.MaxCycles {
		return fmt.Errorf("simd: %w MaxCycles=%d (W so far %d)", ErrBudgetExceeded, m.opts.MaxCycles, m.stats.W)
	}
	return nil
}

// ErrBudgetExceeded is wrapped by the error a run returns when it stops at
// the Options.MaxCycles node-expansion budget.  Callers that treat budget
// exhaustion as a first-class outcome (rather than a failure) detect it
// with errors.Is.
var ErrBudgetExceeded = errors.New("exceeded")

// checkCtx polls the run's context at a cycle boundary.  It never fires
// mid-cycle, so the completed prefix of the schedule is untouched by
// cancellation; it marks the partial stats and returns the cancellation
// cause.
func (m *Machine[S]) checkCtx() error {
	select {
	case <-m.ctx.Done():
		m.stats.Cancelled = true
		return context.Cause(m.ctx)
	default:
		return nil
	}
}

// cycleResult carries one worker's share of an expansion cycle.
type cycleResult struct {
	expanded int64
	goals    int64
	peak     int
}

// cycle performs one lock-step node-expansion cycle: every PE with work
// pops its next node, tests it for the goal and pushes its successors.  It
// returns the number of PEs that expanded a node and charges the virtual
// clock.
//
//lint:hotpath
func (m *Machine[S]) cycle() int {
	var res cycleResult
	if m.workers == 1 {
		res, m.expandBufs[0] = m.expandRange(0, m.stats.P, m.expandBufs[0])
	} else {
		m.parallel(m.taskExpand)
		for _, r := range m.cycleRes {
			res.expanded += r.expanded
			res.goals += r.goals
			if r.peak > res.peak {
				res.peak = r.peak
			}
		}
	}

	active := int(res.expanded)
	m.goals += res.goals
	if res.peak > m.stats.PeakStack {
		m.stats.PeakStack = res.peak
	}

	ucalc := m.costs.NodeExpansion
	m.stats.W += res.expanded
	m.stats.Cycles++
	m.stats.Tpar += ucalc
	idle := time.Duration(m.stats.P-active) * ucalc
	m.stats.Tidle += idle
	m.phaseCycles++
	m.phaseElapsed += ucalc
	m.phaseWork += time.Duration(active) * ucalc
	m.phaseIdle += idle

	if m.opts.Progress != nil {
		every := m.opts.ProgressEvery
		if every <= 0 {
			every = 1000
		}
		if m.stats.Cycles%every == 0 {
			m.opts.Progress(ProgressInfo{
				Cycles:   m.stats.Cycles,
				Active:   active,
				W:        m.stats.W,
				LBPhases: m.stats.LBPhases,
				Tpar:     m.stats.Tpar,
			})
		}
	}
	return active
}

// expandRange expands one node on every non-empty stack in [lo, hi),
// iterating the set bits of the has-work bitset so empty PEs cost nothing
// beyond one word load per 64 of them.  Each word is snapshotted before
// its PEs are expanded, which is exactly the lock-step semantics: the set
// of PEs that expand this cycle is fixed at the cycle boundary.  lo is
// 64-aligned for every shard but the degenerate lo=0, so concurrent
// shards never read or write the same bitset word.  It returns the
// (possibly grown) expansion buffer so the caller can keep it for the
// next cycle.
func (m *Machine[S]) expandRange(lo, hi int, buf []S) (cycleResult, []S) {
	var res cycleResult
	a := m.arena
	words := a.WorkBits()
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		w := words[wi]
		base := wi << 6
		for w != 0 {
			pe := base + mbits.TrailingZeros64(w)
			if pe >= hi {
				break
			}
			w &= w - 1
			node, _ := a.Pop(pe)
			res.expanded++
			if m.d.Goal(node) {
				res.goals++
			}
			buf = m.d.Expand(node, buf[:0])
			a.PushLevel(pe, buf)
			if s := a.Size(pe); s > res.peak {
				res.peak = s
			}
		}
	}
	return res, buf
}

// triggerState assembles the globally reduced view a trigger sees after a
// cycle.
func (m *Machine[S]) triggerState(active int) trigger.State {
	return trigger.State{
		P:       m.stats.P,
		Active:  active,
		Cycles:  m.phaseCycles,
		Elapsed: m.phaseElapsed,
		Work:    m.phaseWork,
		Idle:    m.phaseIdle,
		EstLB:   m.estLB,
	}
}

// recordSample emits the per-cycle trace sample, including the trigger
// geometry of Figure 1 (R1 and R2 for the dynamic triggers; A and x*P for
// static ones).
func (m *Machine[S]) recordSample(st trigger.State) {
	if m.opts.Trace == nil {
		return
	}
	var r1, r2 time.Duration
	switch t := m.sch.Trigger.(type) {
	case trigger.DP:
		r1 = st.Work - time.Duration(st.Active)*st.Elapsed
		r2 = time.Duration(st.Active) * st.EstLB
	case trigger.DK:
		r1 = st.Idle
		r2 = time.Duration(st.P) * st.EstLB
	case trigger.Static:
		r1 = time.Duration(st.Active)
		r2 = time.Duration(t.X * float64(st.P))
	default:
		r1 = time.Duration(st.Active)
	}
	m.opts.Trace.RecordCycle(trace.Sample{
		Cycle:  m.stats.Cycles,
		Active: st.Active,
		R1:     r1,
		R2:     r2,
	})
}

// balance runs one load-balancing phase, charges its cost, and resets the
// search-phase accumulators.
//
//lint:hotpath
func (m *Machine[S]) balance(initPhase bool) {
	ctx := m.lbCtx
	ctx.reset(m.opts.Trace.WantDonors())
	rounds, transfers := m.sch.Balancer.Balance(ctx)
	var cost time.Duration
	if pc, ok := m.sch.Balancer.(PhaseCoster); ok {
		cost = pc.PhaseCost(m.costs, m.topo, m.stats.P, rounds)
	} else {
		cost = m.costs.PhaseCost(m.topo, m.stats.P, rounds)
	}
	cost += m.costs.MessageCost(m.topo, m.stats.P, ctx.maxTransfer)

	m.stats.Tpar += cost
	m.stats.Tlb += cost * time.Duration(m.stats.P)
	m.stats.LBPhases++
	m.stats.Transfers += transfers
	if initPhase {
		m.stats.InitPhases++
	}
	if ctx.maxTransfer > m.stats.MaxTransfer {
		m.stats.MaxTransfer = ctx.maxTransfer
	}
	m.estLB = cost
	m.phaseCycles = 0
	m.phaseElapsed = 0
	m.phaseWork = 0
	m.phaseIdle = 0
	if m.opts.Trace != nil {
		m.opts.Trace.RecordPhase(trace.Event{
			Cycle:     m.stats.Cycles,
			Transfers: transfers,
			Cost:      cost,
			Donors:    ctx.donors,
		})
	}
}

package simd

import (
	"strings"
	"testing"

	"simdtree/internal/match"
	"simdtree/internal/synthetic"
	"simdtree/internal/trigger"
)

func TestParseSchemeLabels(t *testing.T) {
	for _, label := range []string{"GP-S0.90", "nGP-S0.50", "GP-DP", "GP-DK", "nGP-DP", "nGP-DK"} {
		sch, err := ParseScheme[synthetic.Node](label)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", label, err)
			continue
		}
		if sch.Trigger == nil || sch.Balancer == nil || sch.Splitter == nil {
			t.Errorf("ParseScheme(%q) left nil components", label)
		}
		if !strings.HasPrefix(sch.Label, strings.Split(label, "-")[0]) {
			t.Errorf("label %q round-tripped to %q", label, sch.Label)
		}
	}
	for _, bad := range []string{"", "GP", "XP-DK", "GP-QZ", "GP-S2.0"} {
		if _, err := ParseScheme[synthetic.Node](bad); err == nil {
			t.Errorf("ParseScheme(%q) should fail", bad)
		}
	}
}

func TestDPImpliesMultipleTransfers(t *testing.T) {
	sch, err := NewScheme[synthetic.Node]("GP", trigger.DP{}, false)
	if err != nil {
		t.Fatal(err)
	}
	mb, ok := sch.Balancer.(*MatchBalancer[synthetic.Node])
	if !ok {
		t.Fatal("expected a MatchBalancer")
	}
	if !mb.Multi {
		t.Error("D^P schemes must use multiple transfers per phase (Section 2.3)")
	}
	if !sch.WantInit {
		t.Error("D^P schemes expect the S^0.85 initial distribution")
	}
}

func TestStaticSchemeNoInit(t *testing.T) {
	sch, err := StaticScheme[synthetic.Node]("nGP", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if sch.WantInit {
		t.Error("static schemes do not use the initial distribution phase")
	}
	if sch.Label != "nGP-S0.80" {
		t.Errorf("label %q", sch.Label)
	}
}

func TestTable1Labels(t *testing.T) {
	labels := Table1Labels(0.85)
	if len(labels) != 6 {
		t.Fatalf("%d labels, want 6 (Table 1)", len(labels))
	}
	for _, l := range labels {
		if _, err := ParseScheme[synthetic.Node](l); err != nil {
			t.Errorf("Table 1 label %q does not parse: %v", l, err)
		}
	}
}

func TestBalancerNames(t *testing.T) {
	single := &MatchBalancer[synthetic.Node]{Matcher: match.NewGP()}
	if single.Name() != "GP" {
		t.Errorf("Name = %q", single.Name())
	}
	multi := &MatchBalancer[synthetic.Node]{Matcher: match.NewGP(), Multi: true}
	if multi.Name() != "GP*" {
		t.Errorf("Name = %q", multi.Name())
	}
}

package simd

import (
	"time"

	"simdtree/internal/match"
	"simdtree/internal/scan"
	"simdtree/internal/stack"
	"simdtree/internal/topology"
)

// Context exposes the machine state a Balancer manipulates during a
// load-balancing phase.  The PE stacks live in a structure-of-arrays
// Arena; donor/receiver eligibility is read from its can-split and
// has-work bitsets (O(P/64) to scan) or via the per-PE Splittable/Empty
// accessors.  Transfers must go through Transfer (or, for a whole
// matching round at once, TransferAll) so the engine can account for them
// and keep the bitsets in sync.  The engine keeps one Context per machine
// and resets it between phases, so the scratch below (flag buffers,
// per-pair move counts) is reused across the whole run.
type Context[S any] struct {
	Arena    *stack.Arena[S]
	Splitter stack.Splitter[S]
	Topo     topology.Network

	transfers    int
	maxTransfer  int
	recordDonors bool
	donors       []int

	// Host-side parallelism (never affects results): workers is the shard
	// count and runParallel, when non-nil, runs a task once per shard with
	// a barrier.  The engine wires both from its worker pool; a zero-value
	// Context runs everything sequentially.
	workers     int
	runParallel func(task func(w int))

	// Reusable scratch: busy/idle flag buffers for []bool consumers, the
	// idle bitset (complement of has-work), per-pair move counts, and the
	// pre-bound shard task (allocated once, not per phase).
	busy, idle   []bool
	idleB        scan.Bits
	moved        []int
	curPairs     []scan.Pair
	taskTransfer func(w int)

	// faultDonor, when non-nil (memory-bounded run), makes a donor PE
	// fully resident before its stack is split: bottom-node donation
	// reads the true bottom of the stack, which may be evicted.  It is
	// called sequentially — directly by transferNodes outside parallel
	// regions, and as a pre-pass over every donor before TransferAll's
	// parallel region (inside the region it short-circuits on the
	// donor's zero ghost count without touching shared state).
	faultDonor func(pe int)
}

// reset prepares the context for a new load-balancing phase.  The donors
// slice is dropped rather than truncated because the previous phase's trace
// event aliases it.
func (c *Context[S]) reset(recordDonors bool) {
	c.transfers = 0
	c.maxTransfer = 0
	c.recordDonors = recordDonors
	c.donors = nil
}

// P returns the machine size.
func (c *Context[S]) P() int { return c.Arena.P() }

// Splittable reports that PE i can donate (at least two stack nodes);
// unlike the bitsets it is always fresh, even between the transfers of an
// in-progress round.
func (c *Context[S]) Splittable(i int) bool { return c.Arena.Splittable(i) }

// Empty reports that PE i has no work; always fresh like Splittable.
func (c *Context[S]) Empty(i int) bool { return c.Arena.Empty(i) }

// busyBits returns the donor-eligibility bitset: bit i set when PE i can
// split its work into two non-empty parts (the paper's "busy").  It is
// the arena's live can-split bitset — read-only, fresh at phase start and
// after every accounted transfer.
func (c *Context[S]) busyBits() scan.Bits { return c.Arena.SplitBits() }

// idleBits returns the receiver bitset: bit i set when PE i has no work.
// It is computed as the masked complement of the arena's has-work bitset
// into context scratch, valid until the next idleBits call.
func (c *Context[S]) idleBits() scan.Bits {
	p := c.Arena.P()
	if len(c.idleB) < (p+63)/64 {
		//lint:allow hotalloc idle bitset scratch grows once to P/64 words and is reused across phases
		c.idleB = scan.NewBits(p)
	}
	scan.ComplementInto(c.idleB, c.Arena.WorkBits(), p)
	return c.idleB
}

// shardBounds returns shard w's [lo, hi) range over n items, using the
// same contiguous chunking as the engine's expansion sharding.
func (c *Context[S]) shardBounds(w, n int) (lo, hi int) {
	chunk := (n + c.workers - 1) / c.workers
	lo = w * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Busy returns the donor-eligibility flags as a []bool, expanded
// branch-free from the can-split bitset.  The returned slice is the
// context's scratch and is valid until the next Busy call.
func (c *Context[S]) Busy() []bool {
	p := c.Arena.P()
	if cap(c.busy) < p {
		//lint:allow hotalloc flag scratch grows once to P and is reused across phases
		c.busy = make([]bool, p)
	}
	c.busy = c.busy[:p]
	c.busyBits().FillBools(c.busy)
	return c.busy
}

// Idle returns the receiver flags (PE has no work at all) as a []bool,
// expanded branch-free from the has-work bitset's complement.  The
// returned slice is the context's scratch and is valid until the next
// Idle call.
func (c *Context[S]) Idle() []bool {
	p := c.Arena.P()
	if cap(c.idle) < p {
		//lint:allow hotalloc flag scratch grows once to P and is reused across phases
		c.idle = make([]bool, p)
	}
	c.idle = c.idle[:p]
	c.idleBits().FillBools(c.idle)
	return c.idle
}

// transferNodes moves split work from PE from to PE to without touching
// the shared phase accounting or the arena bitsets — the caller re-syncs
// the two PEs (sequentially, after any parallel region).  The three
// built-in splitters move the nodes as range copies within the arena; a
// foreign splitter falls back to materialising the donor, running its
// Split, and reinstalling both halves, which donates the identical
// contents.  It returns the number of stack nodes moved.
func (c *Context[S]) transferNodes(from, to int) int {
	a := c.Arena
	if !a.Splittable(from) {
		return 0
	}
	if c.faultDonor != nil {
		c.faultDonor(from)
	}
	if as, ok := c.Splitter.(stack.ArenaSplitter[S]); ok {
		return as.SplitArena(a, from, to)
	}
	//lint:allow hotalloc foreign-splitter fallback, the built-in splitters split within the arena
	donor := a.MaterializeStack(from)
	donated := c.Splitter.Split(donor)
	a.InstallFromStack(from, donor)
	n := donated.Size()
	if n > 0 {
		a.AppendFromStack(to, donated)
	}
	return n
}

// Transfer splits the stack of processor from and appends the donated part
// to processor to.  It reports the number of stack nodes moved; a donor
// that can no longer split moves nothing.
func (c *Context[S]) Transfer(from, to int) int {
	n := c.transferNodes(from, to)
	c.Arena.SyncBits(from)
	c.Arena.SyncBits(to)
	if n == 0 {
		return 0
	}
	c.transfers++
	if n > c.maxTransfer {
		c.maxTransfer = n
	}
	if c.recordDonors {
		//lint:allow hotalloc donor trace recording is opt-in (Trace.WantDonors)
		c.donors = append(c.donors, from)
	}
	return n
}

// parallelPairMin is the pair count below which TransferAll runs
// sequentially; the cut-over affects wall-clock time only.
const parallelPairMin = 64

// TransferAll performs every transfer of one matching round and reports how
// many pairs actually moved work.  The pairs must have pairwise-distinct
// donors and pairwise-distinct receivers — the guarantee every rendezvous
// matching round provides — so the arena mutations of different pairs
// touch disjoint PEs and the round can execute across the host worker
// shards.  The arena bitsets are not updated inside the parallel region
// (pairs in different shards may share a bitset word); they are re-synced,
// and the phase accounting (transfer count, maximum transfer size, donor
// trace) reduced, sequentially in pair order — bit-identical to calling
// Transfer pair by pair.
func (c *Context[S]) TransferAll(pairs []scan.Pair) int {
	_, arenaSplit := c.Splitter.(stack.ArenaSplitter[S])
	if c.runParallel == nil || len(pairs) < parallelPairMin || !arenaSplit {
		done := 0
		for _, p := range pairs {
			if c.Transfer(p.From, p.To) > 0 {
				done++
			}
		}
		return done
	}
	if c.faultDonor != nil {
		// Restore every donor sequentially before the parallel region, so
		// the in-region faultDonor calls reduce to a read of the donor's
		// own ghost counter and no segment I/O races.
		for _, p := range pairs {
			c.faultDonor(p.From)
		}
	}
	if cap(c.moved) < len(pairs) {
		//lint:allow hotalloc per-pair move counts grow once to the pair count
		c.moved = make([]int, len(pairs))
	}
	c.moved = c.moved[:len(pairs)]
	c.curPairs = pairs
	if c.taskTransfer == nil {
		//lint:allow hotalloc shard task closure is created once and cached
		c.taskTransfer = func(w int) {
			lo, hi := c.shardBounds(w, len(c.curPairs))
			for k := lo; k < hi; k++ {
				p := c.curPairs[k]
				c.moved[k] = c.transferNodes(p.From, p.To)
			}
		}
	}
	c.runParallel(c.taskTransfer)
	c.curPairs = nil
	done := 0
	for k, n := range c.moved {
		c.Arena.SyncBits(pairs[k].From)
		c.Arena.SyncBits(pairs[k].To)
		if n == 0 {
			continue
		}
		done++
		c.transfers++
		if n > c.maxTransfer {
			c.maxTransfer = n
		}
		if c.recordDonors {
			//lint:allow hotalloc donor trace recording is opt-in (Trace.WantDonors)
			c.donors = append(c.donors, pairs[k].From)
		}
	}
	return done
}

// Balancer performs the load-balancing phase: matching idle processors
// with busy ones and transferring work.  It returns the number of
// matching/transfer rounds it needed (each round costs communication, see
// Costs.PhaseCost) and the number of individual work transfers performed.
type Balancer[S any] interface {
	// Name identifies the balancer in reports.
	Name() string
	// Balance runs one load-balancing phase.
	Balance(c *Context[S]) (rounds, transfers int)
}

// PhaseCoster lets a Balancer override the default phase cost model.  The
// nearest-neighbour baseline implements it to charge local-hop costs
// instead of the scan-setup-plus-router cost of the standard phase.
type PhaseCoster interface {
	PhaseCost(costs Costs, net topology.Network, p, rounds int) time.Duration
}

// MatchBalancer is the paper's load-balancing phase: idle processors are
// matched one-on-one to busy donors by the configured matching scheme and
// each donor splits its stack once.  With Multi set, matching and transfer
// rounds repeat until no idle processor can be served — the multiple work
// transfers the D^P trigger requires (Table 1, Section 2.3).
type MatchBalancer[S any] struct {
	Matcher match.Matcher
	Multi   bool
}

// Name implements Balancer.
func (b *MatchBalancer[S]) Name() string {
	if b.Multi {
		return b.Matcher.Name() + "*"
	}
	return b.Matcher.Name()
}

// Reset clears the matcher's cross-phase state (the GP pointer) so the
// balancer can be reused across runs.
func (b *MatchBalancer[S]) Reset() { b.Matcher.Reset() }

// Balance implements Balancer.  Matchers that understand the engine's
// flag bitsets (both of the paper's do) match directly on them — the
// setup enumerations then visit only set bits — and foreign matchers get
// the equivalent []bool flags; the pairs are identical either way.
func (b *MatchBalancer[S]) Balance(c *Context[S]) (rounds, transfers int) {
	if pm, ok := b.Matcher.(match.ParallelMatcher); ok {
		pm.SetParallelism(c.workers)
	}
	bm, hasBits := b.Matcher.(match.BitMatcher)
	for {
		var pairs []scan.Pair
		if hasBits {
			pairs = bm.MatchBits(c.busyBits(), c.idleBits(), c.P())
		} else {
			pairs = b.Matcher.Match(c.Busy(), c.Idle())
		}
		if len(pairs) == 0 {
			if rounds == 0 {
				rounds = 1 // the phase still pays its setup scans
			}
			return rounds, transfers
		}
		rounds++
		transfers += c.TransferAll(pairs)
		if !b.Multi {
			return rounds, transfers
		}
	}
}

package simd

import (
	"time"

	"simdtree/internal/match"
	"simdtree/internal/scan"
	"simdtree/internal/stack"
	"simdtree/internal/topology"
)

// Context exposes the machine state a Balancer manipulates during a
// load-balancing phase.  Transfers must go through Transfer (or, for a
// whole matching round at once, TransferAll) so the engine can account for
// them.  The engine keeps one Context per machine and resets it between
// phases, so the scratch below (flag buffers, spare stacks, per-pair move
// counts) is reused across the whole run.
type Context[S any] struct {
	Stacks   []*stack.Stack[S]
	Splitter stack.Splitter[S]
	Topo     topology.Network

	transfers    int
	maxTransfer  int
	recordDonors bool
	donors       []int

	// Host-side parallelism (never affects results): workers is the shard
	// count and runParallel, when non-nil, runs a task once per shard with
	// a barrier.  The engine wires both from its worker pool; a zero-value
	// Context runs everything sequentially.
	workers     int
	runParallel func(task func(w int))

	// Reusable scratch: busy/idle flag buffers, per-pair move counts, the
	// per-shard spare stacks that shuttle split work from donor to
	// receiver, and the pre-bound shard tasks (allocated once, not per
	// phase).
	busy, idle   []bool
	moved        []int
	curPairs     []scan.Pair
	spares       []*stack.Stack[S]
	taskBusy     func(w int)
	taskIdle     func(w int)
	taskTransfer func(w int)
}

// reset prepares the context for a new load-balancing phase.  The donors
// slice is dropped rather than truncated because the previous phase's trace
// event aliases it.
func (c *Context[S]) reset(recordDonors bool) {
	c.transfers = 0
	c.maxTransfer = 0
	c.recordDonors = recordDonors
	c.donors = nil
}

// P returns the machine size.
func (c *Context[S]) P() int { return len(c.Stacks) }

// shardBounds returns shard w's [lo, hi) range over n items, using the
// same contiguous chunking as the engine's expansion sharding.
func (c *Context[S]) shardBounds(w, n int) (lo, hi int) {
	chunk := (n + c.workers - 1) / c.workers
	lo = w * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// parallelFlagMin is the machine size below which the flag fills run
// sequentially; the cut-over affects wall-clock time only.
const parallelFlagMin = 1024

// Busy returns the donor-eligibility flags: processor i can split its work
// into two non-empty parts (the paper's definition of busy: at least two
// nodes on the stack).  The returned slice is the context's scratch and is
// valid until the next Busy call.
func (c *Context[S]) Busy() []bool {
	if cap(c.busy) < len(c.Stacks) {
		//lint:allow hotalloc flag scratch grows once to P and is reused across phases
		c.busy = make([]bool, len(c.Stacks))
	}
	c.busy = c.busy[:len(c.Stacks)]
	if c.runParallel != nil && len(c.Stacks) >= parallelFlagMin {
		if c.taskBusy == nil {
			//lint:allow hotalloc shard task closure is created once and cached
			c.taskBusy = func(w int) {
				lo, hi := c.shardBounds(w, len(c.Stacks))
				for i := lo; i < hi; i++ {
					c.busy[i] = c.Stacks[i].Splittable()
				}
			}
		}
		c.runParallel(c.taskBusy)
	} else {
		for i, s := range c.Stacks {
			c.busy[i] = s.Splittable()
		}
	}
	return c.busy
}

// Idle returns the receiver flags: processor i has no work at all.  The
// returned slice is the context's scratch and is valid until the next Idle
// call.
func (c *Context[S]) Idle() []bool {
	if cap(c.idle) < len(c.Stacks) {
		//lint:allow hotalloc flag scratch grows once to P and is reused across phases
		c.idle = make([]bool, len(c.Stacks))
	}
	c.idle = c.idle[:len(c.Stacks)]
	if c.runParallel != nil && len(c.Stacks) >= parallelFlagMin {
		if c.taskIdle == nil {
			//lint:allow hotalloc shard task closure is created once and cached
			c.taskIdle = func(w int) {
				lo, hi := c.shardBounds(w, len(c.Stacks))
				for i := lo; i < hi; i++ {
					c.idle[i] = c.Stacks[i].Empty()
				}
			}
		}
		c.runParallel(c.taskIdle)
	} else {
		for i, s := range c.Stacks {
			c.idle[i] = s.Empty()
		}
	}
	return c.idle
}

// spare returns shard w's spare stack, the recycled intermediary that
// carries split work from donor to receiver.  Callers must have grown
// c.spares past w first (see ensureSpares); the lazy stack creation writes
// only slot w, so concurrent shards do not race.
func (c *Context[S]) spare(w int) *stack.Stack[S] {
	if c.spares[w] == nil {
		c.spares[w] = stack.New[S]()
	}
	return c.spares[w]
}

// ensureSpares grows the spare-stack table to at least n slots.  It must
// run before (never during) a parallel region.
func (c *Context[S]) ensureSpares(n int) {
	if n < 1 {
		n = 1
	}
	for len(c.spares) < n {
		//lint:allow hotalloc spare-stack table grows once to the worker count
		c.spares = append(c.spares, nil)
	}
}

// transferNodes moves split work from processor from to processor to
// without touching the shared phase accounting; w selects the per-shard
// spare stack so parallel callers do not share scratch.  It returns the
// number of stack nodes moved.
func (c *Context[S]) transferNodes(from, to, w int) int {
	donor := c.Stacks[from]
	if !donor.Splittable() {
		return 0
	}
	if is, ok := c.Splitter.(stack.IntoSplitter[S]); ok {
		sp := c.spare(w)
		is.SplitInto(donor, sp)
		n := sp.Size()
		if n > 0 {
			c.Stacks[to].AppendCopy(sp)
		}
		sp.Clear()
		return n
	}
	// Foreign splitter: fall back to the allocating Split/Append path.
	donated := c.Splitter.Split(donor)
	n := donated.Size()
	if n > 0 {
		c.Stacks[to].Append(donated)
	}
	return n
}

// Transfer splits the stack of processor from and appends the donated part
// to processor to.  It reports the number of stack nodes moved; a donor
// that can no longer split moves nothing.
func (c *Context[S]) Transfer(from, to int) int {
	c.ensureSpares(1)
	n := c.transferNodes(from, to, 0)
	if n == 0 {
		return 0
	}
	c.transfers++
	if n > c.maxTransfer {
		c.maxTransfer = n
	}
	if c.recordDonors {
		//lint:allow hotalloc donor trace recording is opt-in (Trace.WantDonors)
		c.donors = append(c.donors, from)
	}
	return n
}

// parallelPairMin is the pair count below which TransferAll runs
// sequentially; the cut-over affects wall-clock time only.
const parallelPairMin = 64

// TransferAll performs every transfer of one matching round and reports how
// many pairs actually moved work.  The pairs must have pairwise-distinct
// donors and pairwise-distinct receivers — the guarantee every rendezvous
// matching round provides — so the stack operations of different pairs are
// independent and the round can execute across the host worker shards.
// The phase accounting (transfer count, maximum transfer size, donor trace)
// is always reduced sequentially in pair order, so the results are
// bit-identical to calling Transfer pair by pair.
func (c *Context[S]) TransferAll(pairs []scan.Pair) int {
	if c.runParallel == nil || len(pairs) < parallelPairMin {
		done := 0
		for _, p := range pairs {
			if c.Transfer(p.From, p.To) > 0 {
				done++
			}
		}
		return done
	}
	c.ensureSpares(c.workers)
	if cap(c.moved) < len(pairs) {
		//lint:allow hotalloc per-pair move counts grow once to the pair count
		c.moved = make([]int, len(pairs))
	}
	c.moved = c.moved[:len(pairs)]
	c.curPairs = pairs
	if c.taskTransfer == nil {
		//lint:allow hotalloc shard task closure is created once and cached
		c.taskTransfer = func(w int) {
			lo, hi := c.shardBounds(w, len(c.curPairs))
			for k := lo; k < hi; k++ {
				p := c.curPairs[k]
				c.moved[k] = c.transferNodes(p.From, p.To, w)
			}
		}
	}
	c.runParallel(c.taskTransfer)
	c.curPairs = nil
	done := 0
	for k, n := range c.moved {
		if n == 0 {
			continue
		}
		done++
		c.transfers++
		if n > c.maxTransfer {
			c.maxTransfer = n
		}
		if c.recordDonors {
			//lint:allow hotalloc donor trace recording is opt-in (Trace.WantDonors)
			c.donors = append(c.donors, pairs[k].From)
		}
	}
	return done
}

// Balancer performs the load-balancing phase: matching idle processors
// with busy ones and transferring work.  It returns the number of
// matching/transfer rounds it needed (each round costs communication, see
// Costs.PhaseCost) and the number of individual work transfers performed.
type Balancer[S any] interface {
	// Name identifies the balancer in reports.
	Name() string
	// Balance runs one load-balancing phase.
	Balance(c *Context[S]) (rounds, transfers int)
}

// PhaseCoster lets a Balancer override the default phase cost model.  The
// nearest-neighbour baseline implements it to charge local-hop costs
// instead of the scan-setup-plus-router cost of the standard phase.
type PhaseCoster interface {
	PhaseCost(costs Costs, net topology.Network, p, rounds int) time.Duration
}

// MatchBalancer is the paper's load-balancing phase: idle processors are
// matched one-on-one to busy donors by the configured matching scheme and
// each donor splits its stack once.  With Multi set, matching and transfer
// rounds repeat until no idle processor can be served — the multiple work
// transfers the D^P trigger requires (Table 1, Section 2.3).
type MatchBalancer[S any] struct {
	Matcher match.Matcher
	Multi   bool
}

// Name implements Balancer.
func (b *MatchBalancer[S]) Name() string {
	if b.Multi {
		return b.Matcher.Name() + "*"
	}
	return b.Matcher.Name()
}

// Reset clears the matcher's cross-phase state (the GP pointer) so the
// balancer can be reused across runs.
func (b *MatchBalancer[S]) Reset() { b.Matcher.Reset() }

// Balance implements Balancer.
func (b *MatchBalancer[S]) Balance(c *Context[S]) (rounds, transfers int) {
	if pm, ok := b.Matcher.(match.ParallelMatcher); ok {
		pm.SetParallelism(c.workers)
	}
	for {
		pairs := b.Matcher.Match(c.Busy(), c.Idle())
		if len(pairs) == 0 {
			if rounds == 0 {
				rounds = 1 // the phase still pays its setup scans
			}
			return rounds, transfers
		}
		rounds++
		transfers += c.TransferAll(pairs)
		if !b.Multi {
			return rounds, transfers
		}
	}
}

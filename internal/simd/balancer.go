package simd

import (
	"time"

	"simdtree/internal/match"
	"simdtree/internal/stack"
	"simdtree/internal/topology"
)

// Context exposes the machine state a Balancer manipulates during a
// load-balancing phase.  Transfers must go through Transfer so the engine
// can account for them.
type Context[S any] struct {
	Stacks   []*stack.Stack[S]
	Splitter stack.Splitter[S]
	Topo     topology.Network

	transfers    int
	maxTransfer  int
	recordDonors bool
	donors       []int
}

// P returns the machine size.
func (c *Context[S]) P() int { return len(c.Stacks) }

// Busy returns the donor-eligibility flags: processor i can split its work
// into two non-empty parts (the paper's definition of busy: at least two
// nodes on the stack).
func (c *Context[S]) Busy() []bool {
	flags := make([]bool, len(c.Stacks))
	for i, s := range c.Stacks {
		flags[i] = s.Splittable()
	}
	return flags
}

// Idle returns the receiver flags: processor i has no work at all.
func (c *Context[S]) Idle() []bool {
	flags := make([]bool, len(c.Stacks))
	for i, s := range c.Stacks {
		flags[i] = s.Empty()
	}
	return flags
}

// Transfer splits the stack of processor from and appends the donated part
// to processor to.  It reports the number of stack nodes moved; a donor
// that can no longer split moves nothing.
func (c *Context[S]) Transfer(from, to int) int {
	donor := c.Stacks[from]
	if !donor.Splittable() {
		return 0
	}
	donated := c.Splitter.Split(donor)
	n := donated.Size()
	if n == 0 {
		return 0
	}
	c.Stacks[to].Append(donated)
	c.transfers++
	if n > c.maxTransfer {
		c.maxTransfer = n
	}
	if c.recordDonors {
		c.donors = append(c.donors, from)
	}
	return n
}

// Balancer performs the load-balancing phase: matching idle processors
// with busy ones and transferring work.  It returns the number of
// matching/transfer rounds it needed (each round costs communication, see
// Costs.PhaseCost) and the number of individual work transfers performed.
type Balancer[S any] interface {
	// Name identifies the balancer in reports.
	Name() string
	// Balance runs one load-balancing phase.
	Balance(c *Context[S]) (rounds, transfers int)
}

// PhaseCoster lets a Balancer override the default phase cost model.  The
// nearest-neighbour baseline implements it to charge local-hop costs
// instead of the scan-setup-plus-router cost of the standard phase.
type PhaseCoster interface {
	PhaseCost(costs Costs, net topology.Network, p, rounds int) time.Duration
}

// MatchBalancer is the paper's load-balancing phase: idle processors are
// matched one-on-one to busy donors by the configured matching scheme and
// each donor splits its stack once.  With Multi set, matching and transfer
// rounds repeat until no idle processor can be served — the multiple work
// transfers the D^P trigger requires (Table 1, Section 2.3).
type MatchBalancer[S any] struct {
	Matcher match.Matcher
	Multi   bool
}

// Name implements Balancer.
func (b *MatchBalancer[S]) Name() string {
	if b.Multi {
		return b.Matcher.Name() + "*"
	}
	return b.Matcher.Name()
}

// Reset clears the matcher's cross-phase state (the GP pointer) so the
// balancer can be reused across runs.
func (b *MatchBalancer[S]) Reset() { b.Matcher.Reset() }

// Balance implements Balancer.
func (b *MatchBalancer[S]) Balance(c *Context[S]) (rounds, transfers int) {
	for {
		pairs := b.Matcher.Match(c.Busy(), c.Idle())
		if len(pairs) == 0 {
			if rounds == 0 {
				rounds = 1 // the phase still pays its setup scans
			}
			return rounds, transfers
		}
		rounds++
		for _, p := range pairs {
			if c.Transfer(p.From, p.To) > 0 {
				transfers++
			}
		}
		if !b.Multi {
			return rounds, transfers
		}
	}
}

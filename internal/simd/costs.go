package simd

import (
	"time"

	"simdtree/internal/topology"
)

// Costs is the virtual cost model of Section 3.1/3.3: one node expansion
// cycle costs NodeExpansion (Ucalc); a load-balancing phase costs a setup
// of sum-scans plus one general data transfer per round, each scaled by the
// topology's step counts.  LBScale multiplies the whole phase cost — the
// knob Table 5 turns by padding messages (12x, 16x).
type Costs struct {
	NodeExpansion time.Duration // Ucalc: one node expansion cycle
	ScanUnit      time.Duration // cost per topology scan step
	TransferUnit  time.Duration // cost per topology transfer step
	LBScale       float64       // multiplier on load-balancing cost; 0 means 1

	// PerNodeTransfer extends the paper's constant-message-size model
	// (Section 3.1 assumes "the size of the messages containing work is
	// constant"): when positive, each transfer round additionally costs
	// this much per stack node in its largest message.  Since all
	// transfers of a round happen in lock-step, the round is as slow as
	// its biggest message.  Zero reproduces the paper.
	PerNodeTransfer time.Duration
}

// Load-balancing phase structure: the setup step performs setupScans
// sum-scans (enumerate idle, enumerate busy, and the global-pointer /
// termination bookkeeping); every transfer round after the first re-runs
// the two enumerations.
const (
	setupScans      = 3
	perRoundRescans = 2
)

// CM2Costs reproduces the paper's measured CM-2 constants: a 30 ms node
// expansion cycle and a 13 ms load-balancing phase (3 scan units of 1 ms
// plus one router transfer of 10 ms) — Section 5.
func CM2Costs() Costs {
	return Costs{
		NodeExpansion: 30 * time.Millisecond,
		ScanUnit:      1 * time.Millisecond,
		TransferUnit:  10 * time.Millisecond,
		LBScale:       1,
	}
}

// normalize fills in defaults: a zero-value Costs means "the paper's
// CM-2 constants"; otherwise only the expansion cost and scale get
// defaulted, so explicitly free communication (ScanUnit = TransferUnit =
// 0 with a set NodeExpansion) remains expressible.
func (c Costs) normalize() Costs {
	if c == (Costs{}) {
		return CM2Costs()
	}
	if c.NodeExpansion <= 0 {
		c.NodeExpansion = CM2Costs().NodeExpansion
	}
	if c.ScanUnit < 0 {
		c.ScanUnit = 0
	}
	if c.TransferUnit < 0 {
		c.TransferUnit = 0
	}
	if c.PerNodeTransfer < 0 {
		c.PerNodeTransfer = 0
	}
	if c.LBScale <= 0 {
		c.LBScale = 1
	}
	return c
}

// Normalized is the exported form of normalize for callers outside the
// engine that must charge the exact per-cycle and per-phase costs a
// machine would (the distributed-stealing coordinator keeps the schedule
// ledger itself).
func (c Costs) Normalized() Costs { return c.normalize() }

// PhaseCost returns the virtual duration of one load-balancing phase with
// the given number of transfer rounds on a machine of p processors wired
// as net.
func (c Costs) PhaseCost(net topology.Network, p, rounds int) time.Duration {
	if rounds < 1 {
		rounds = 1
	}
	scanSteps := net.ScanSteps(p)
	xferSteps := net.TransferSteps(p)
	scans := float64(setupScans + (rounds-1)*perRoundRescans)
	cost := scans*float64(c.ScanUnit)*scanSteps +
		float64(rounds)*float64(c.TransferUnit)*xferSteps
	return time.Duration(cost * c.LBScale)
}

// EffectiveLBScale returns LBScale with the zero value mapped to 1.
func (c Costs) EffectiveLBScale() float64 {
	if c.LBScale <= 0 {
		return 1
	}
	return c.LBScale
}

// MessageCost returns the additional size-dependent cost of a phase that
// moved at most maxNodes stack nodes in a single message, under the
// PerNodeTransfer extension; zero under the paper's constant-size model.
func (c Costs) MessageCost(net topology.Network, p, maxNodes int) time.Duration {
	if c.PerNodeTransfer <= 0 || maxNodes <= 0 {
		return 0
	}
	cost := float64(c.PerNodeTransfer) * float64(maxNodes) * net.TransferSteps(p)
	return time.Duration(cost * c.EffectiveLBScale())
}

// SingleRoundCost is the a-priori estimate of a one-round phase, used as
// the initial L before any phase has run.
func (c Costs) SingleRoundCost(net topology.Network, p int) time.Duration {
	return c.PhaseCost(net, p, 1)
}

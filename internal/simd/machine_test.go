package simd

import (
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/synthetic"
)

// TestParallelMatchesSerial verifies the anomaly-free property the paper's
// experiments are built on: because every run searches the bounded tree
// exhaustively, the parallel search expands exactly the nodes the serial
// search does, for every scheme.
func TestParallelMatchesSerial(t *testing.T) {
	inst := puzzle.Scramble(7, 30)
	dom := puzzle.NewDomain(inst)
	bound, w := search.FinalIterationBound(dom)
	serial := search.DFS[puzzle.Node](search.NewBounded(dom, bound))
	if serial.Expanded != w {
		t.Fatalf("FinalIterationBound W=%d, DFS W=%d", w, serial.Expanded)
	}
	for _, label := range Table1Labels(0.75) {
		sch, err := ParseScheme[puzzle.Node](label)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", label, err)
		}
		stats, err := Run[puzzle.Node](search.NewBounded(dom, bound), sch, Options{P: 64})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if stats.W != serial.Expanded {
			t.Errorf("%s: parallel W=%d, serial W=%d", label, stats.W, serial.Expanded)
		}
		if stats.Goals != serial.Goals {
			t.Errorf("%s: parallel goals=%d, serial goals=%d", label, stats.Goals, serial.Goals)
		}
		if res := stats.BalanceCheck(); res != 0 {
			t.Errorf("%s: accounting identity violated by %v", label, res)
		}
		if e := stats.Efficiency(); e <= 0 || e > 1 {
			t.Errorf("%s: efficiency %f out of range", label, e)
		}
	}
}

// TestWorkersOddShardCount covers a worker count that does not divide P,
// so the last shard is short; the full Workers-invariance suite (all
// Table 1 schemes, traces and checkpoint bytes) lives in workers_test.go.
func TestWorkersOddShardCount(t *testing.T) {
	tree := synthetic.New(20000, 42)
	sch, err := ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run[synthetic.Node](tree, sch, Options{P: 128, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 7} {
		sch2, _ := ParseScheme[synthetic.Node]("GP-DK")
		got, err := Run[synthetic.Node](tree, sch2, Options{P: 128, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != base {
			t.Errorf("workers=%d: stats diverged\n got %+v\nwant %+v", workers, got, base)
		}
	}
}

// TestStaticTriggerKeepsMachineFed checks that with a high static trigger
// most processors stay busy between phases.
func TestStaticTriggerKeepsMachineFed(t *testing.T) {
	tree := synthetic.New(50000, 9)
	sch, err := StaticScheme[synthetic.Node]("GP", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run[synthetic.Node](tree, sch, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.Efficiency(); e < 0.5 {
		t.Errorf("GP-S0.90 efficiency %f unexpectedly low (stats %v)", e, stats)
	}
	if stats.LBPhases == 0 {
		t.Error("expected at least one load-balancing phase")
	}
}

// BenchmarkEngineCycle measures raw simulation throughput.
func BenchmarkEngineCycle(b *testing.B) {
	tree := synthetic.New(int64(b.N)+1000, 11)
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.90")
	if _, err := Run[synthetic.Node](tree, sch, Options{P: 256}); err != nil {
		b.Fatal(err)
	}
}

package simd

import (
	"context"
	"errors"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/search"
)

// IterationStat records one cost-bounded IDA* iteration on the machine.
type IterationStat struct {
	Bound int
	Stats metrics.Stats
}

// IDAStarResult aggregates a full parallel IDA* run.
type IDAStarResult struct {
	// Stats sums the per-iteration statistics; Efficiency() is the
	// whole-run efficiency.
	Stats metrics.Stats
	// Iterations holds the per-iteration details, in bound order.
	Iterations []IterationStat
	// Bound is the cost bound of the final (solving) iteration.
	Bound int
}

// RunIDAStar executes parallel IDA* exactly as the paper's experiments do
// (Section 5): successive cost-bounded depth-first searches on the SIMD
// machine, each iteration run to exhaustion so that all solutions within
// the bound are found and serial/parallel node counts coincide; the bound
// then rises to the smallest pruned f-value.  The run stops after the
// first iteration that finds a goal (or when the space is exhausted).
// maxIters <= 0 means no iteration limit.
func RunIDAStar[S any](d search.CostDomain[S], sch Scheme[S], opts Options, maxIters int) (IDAStarResult, error) {
	//lint:allow ctxflow deprecated context-free wrapper kept for API compatibility
	return RunIDAStarContext[S](context.Background(), d, sch, opts, maxIters)
}

// RunIDAStarContext is RunIDAStar with cooperative cancellation.  The
// context is polled at the cycle boundaries of each iteration (see
// RunContext); a cancelled run returns the iterations completed so far
// plus the partial statistics of the interrupted iteration, with
// Stats.Cancelled set, and the context's cause as the error.
func RunIDAStarContext[S any](ctx context.Context, d search.CostDomain[S], sch Scheme[S], opts Options, maxIters int) (IDAStarResult, error) {
	return RunIDAStarCheckpointed[S](ctx, d, sch, opts, maxIters, nil, nil)
}

// RunIDAStarCheckpointed is RunIDAStarContext with checkpoint/restore in
// the spirit of Horie & Fukunaga's restartable block-parallel IDA*: when
// sink is non-nil it receives periodic snapshots (Options.CheckpointEvery
// cadence) whose IDA field records the in-flight iteration's bound and the
// iterations already completed, and — so an interrupt loses no work — one
// final snapshot when the run stops on cancellation or on the MaxCycles
// budget.  Passing such a snapshot as resume continues the run: the
// completed iterations are replayed from the snapshot, the interrupted
// iteration resumes at its cycle boundary, and the overall result is
// byte-identical to an uninterrupted run.  A budget-stopped run can resume
// under a larger MaxCycles, the Avis–Devroye style budget escalation.
func RunIDAStarCheckpointed[S any](ctx context.Context, d search.CostDomain[S], sch Scheme[S], opts Options, maxIters int, resume *Snapshot[S], sink func(*Snapshot[S]) error) (IDAStarResult, error) {
	if d == nil {
		return IDAStarResult{}, errors.New("simd: nil domain")
	}
	var res IDAStarResult
	bound := d.F(d.Root())
	iter := 0
	if resume != nil {
		if resume.IDA == nil {
			return IDAStarResult{}, errors.New("simd: snapshot lacks IDA* state; resume it with ResumeContext")
		}
		iter = resume.IDA.Iteration
		bound = resume.IDA.Bound
		for _, it := range resume.IDA.Done {
			res.Iterations = append(res.Iterations, it)
			accumulate(&res.Stats, it.Stats)
		}
	}
	for ; maxIters <= 0 || iter < maxIters; iter++ {
		b := search.NewBounded(d, bound)
		m, err := NewMachine[S](b, sch, opts)
		if err != nil {
			return res, err
		}
		if resume != nil {
			if err := m.RestoreSnapshot(resume); err != nil {
				return res, err
			}
			resume = nil
		}
		done := append([]IterationStat(nil), res.Iterations...)
		if sink != nil {
			m.OnCheckpoint(func(s *Snapshot[S]) error {
				s.IDA = &IDAState{Iteration: iter, Bound: bound, Done: done}
				return sink(s)
			})
		}
		st, runErr := m.RunContext(ctx)
		if runErr != nil {
			res.Iterations = append(res.Iterations, IterationStat{Bound: bound, Stats: st})
			res.Bound = bound
			accumulate(&res.Stats, st)
			if sink != nil && (st.Cancelled || errors.Is(runErr, ErrBudgetExceeded)) {
				if snap, snapErr := m.Snapshot(); snapErr == nil {
					snap.IDA = &IDAState{Iteration: iter, Bound: bound, Done: done}
					if sinkErr := sink(snap); sinkErr != nil {
						return res, errors.Join(runErr, sinkErr)
					}
				}
			}
			return res, runErr
		}
		res.Iterations = append(res.Iterations, IterationStat{Bound: bound, Stats: st})
		res.Bound = bound
		accumulate(&res.Stats, st)
		if st.Goals > 0 {
			return res, nil
		}
		next, ok := b.NextBound()
		if !ok {
			return res, nil // space exhausted without a solution
		}
		bound = next
	}
	return res, nil
}

// accumulate folds one iteration into the aggregate statistics.
func accumulate(agg *metrics.Stats, st metrics.Stats) {
	agg.P = st.P
	agg.W += st.W
	agg.Goals += st.Goals
	agg.Cycles += st.Cycles
	agg.LBPhases += st.LBPhases
	agg.Transfers += st.Transfers
	agg.InitCycles += st.InitCycles
	agg.InitPhases += st.InitPhases
	agg.Tcalc += st.Tcalc
	agg.Tidle += st.Tidle
	agg.Tlb += st.Tlb
	agg.Tpar += st.Tpar
	if st.PeakStack > agg.PeakStack {
		agg.PeakStack = st.PeakStack
	}
	if st.MaxTransfer > agg.MaxTransfer {
		agg.MaxTransfer = st.MaxTransfer
	}
	if st.Cancelled {
		agg.Cancelled = true
	}
}

// SerialIDAStarTime returns the virtual time the serial algorithm needs
// for the same complete IDA* run: every iteration's node count times the
// unit expansion cost.  It provides the Tcalc baseline when comparing the
// aggregated parallel run against serial IDA* rather than a single
// iteration.
func SerialIDAStarTime[S any](d search.CostDomain[S], ucalc time.Duration, maxIters int) (time.Duration, int64) {
	r := search.IDAStar(d, maxIters)
	return time.Duration(r.Expanded) * ucalc, r.Expanded
}

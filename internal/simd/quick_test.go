package simd

import (
	"testing"
	"testing/quick"

	"simdtree/internal/synthetic"
)

// TestEngineConservationQuick property-checks the engine over random
// (tree, machine size, scheme) combinations: the exhaustive parallel
// search always expands exactly the tree's node count, the accounting
// identity holds, and the efficiency is a valid fraction.
func TestEngineConservationQuick(t *testing.T) {
	labels := []string{"GP-S0.50", "GP-S0.90", "nGP-S0.75", "GP-DK", "nGP-DP", "GP-DP"}
	f := func(wRaw uint16, seed uint64, pRaw uint8, schemeRaw uint8) bool {
		w := int64(wRaw)%20000 + 1
		p := 1 << (uint(pRaw) % 8) // 1..128 processors
		label := labels[int(schemeRaw)%len(labels)]
		sch, err := ParseScheme[synthetic.Node](label)
		if err != nil {
			return false
		}
		st, err := Run[synthetic.Node](synthetic.New(w, seed), sch, Options{P: p})
		if err != nil {
			return false
		}
		if st.W != w || st.BalanceCheck() != 0 {
			t.Logf("label=%s w=%d p=%d: W=%d residual=%v", label, w, p, st.W, st.BalanceCheck())
			return false
		}
		e := st.Efficiency()
		return e > 0 && e <= 1
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEngineRerunIdentical property-checks determinism: running the same
// configuration twice yields identical statistics (the schemes are
// stateful, so Run must reset them).
func TestEngineRerunIdentical(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	tree := synthetic.New(30000, 0xABCD)
	first, err := Run[synthetic.Node](tree, sch, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run[synthetic.Node](tree, sch, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("re-running the same scheme instance diverged:\n%+v\n%+v", first, second)
	}
}

package simd

import (
	"testing"
	"time"

	"simdtree/internal/puzzle"
	"simdtree/internal/search"
)

func TestRunIDAStarMatchesSerial(t *testing.T) {
	inst := puzzle.Scramble(21, 20)
	dom := puzzle.NewDomain(inst)
	serial := search.IDAStar[puzzle.Node](dom, 0)

	sch, err := ParseScheme[puzzle.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunIDAStar[puzzle.Node](dom, sch, Options{P: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != serial.Bound {
		t.Errorf("parallel bound %d, serial %d", res.Bound, serial.Bound)
	}
	if res.Stats.W != serial.Expanded {
		t.Errorf("parallel W %d, serial %d", res.Stats.W, serial.Expanded)
	}
	if res.Stats.Goals == 0 {
		t.Error("no goals found")
	}
	if len(res.Iterations) != serial.Iters {
		t.Errorf("parallel ran %d iterations, serial %d", len(res.Iterations), serial.Iters)
	}
	// Bounds rise strictly across iterations.
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].Bound <= res.Iterations[i-1].Bound {
			t.Errorf("bounds not increasing: %v", res.Iterations)
		}
	}
	// Aggregate identity holds.
	if resid := res.Stats.BalanceCheck(); resid != 0 {
		t.Errorf("aggregated accounting residual %v", resid)
	}
}

func TestRunIDAStarIterationLimit(t *testing.T) {
	dom := puzzle.NewDomain(puzzle.Scramble(23, 30))
	sch, _ := ParseScheme[puzzle.Node]("GP-S0.80")
	res, err := RunIDAStar[puzzle.Node](dom, sch, Options{P: 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) > 2 {
		t.Errorf("ran %d iterations, limit was 2", len(res.Iterations))
	}
}

func TestRunIDAStarSolvedRoot(t *testing.T) {
	dom := puzzle.NewDomain(puzzle.Goal())
	sch, _ := ParseScheme[puzzle.Node]("GP-DK")
	res, err := RunIDAStar[puzzle.Node](dom, sch, Options{P: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != 0 || res.Stats.Goals == 0 {
		t.Errorf("goal-start: bound=%d goals=%d", res.Bound, res.Stats.Goals)
	}
}

func TestRunIDAStarNilDomain(t *testing.T) {
	sch, _ := ParseScheme[puzzle.Node]("GP-DK")
	if _, err := RunIDAStar[puzzle.Node](nil, sch, Options{P: 8}, 0); err == nil {
		t.Error("nil domain accepted")
	}
}

func TestSerialIDAStarTime(t *testing.T) {
	dom := puzzle.NewDomain(puzzle.Scramble(21, 20))
	d, w := SerialIDAStarTime[puzzle.Node](dom, CM2Costs().NodeExpansion, 0)
	if w <= 0 || d != time.Duration(w)*CM2Costs().NodeExpansion {
		t.Errorf("serial time %v for W=%d", d, w)
	}
}

package simd

import (
	"testing"
	"time"

	"simdtree/internal/topology"
)

func TestCM2PhaseCostMatchesPaper(t *testing.T) {
	c := CM2Costs()
	// Section 5: each load-balancing phase takes about 13ms on the CM-2
	// (3 scan units of 1ms plus one router transfer of 10ms), and each
	// node expansion cycle about 30ms — independent of machine size.
	for _, p := range []int{64, 8192, 65536} {
		if got := c.PhaseCost(topology.CM2{}, p, 1); got != 13*time.Millisecond {
			t.Errorf("P=%d: phase cost %v, want 13ms", p, got)
		}
	}
	if c.NodeExpansion != 30*time.Millisecond {
		t.Errorf("Ucalc = %v, want 30ms", c.NodeExpansion)
	}
}

func TestPhaseCostExtraRounds(t *testing.T) {
	c := CM2Costs()
	one := c.PhaseCost(topology.CM2{}, 1024, 1)
	two := c.PhaseCost(topology.CM2{}, 1024, 2)
	// Each extra round adds 2 rescans (2ms) and 1 transfer (10ms).
	if two-one != 12*time.Millisecond {
		t.Errorf("extra round cost %v, want 12ms", two-one)
	}
	// rounds < 1 is clamped.
	if c.PhaseCost(topology.CM2{}, 1024, 0) != one {
		t.Error("rounds<1 should be treated as one round")
	}
}

func TestPhaseCostScalesWithTopology(t *testing.T) {
	c := CM2Costs()
	p := 4096
	cm2 := c.PhaseCost(topology.CM2{}, p, 1)
	hyp := c.PhaseCost(topology.Hypercube{}, p, 1)
	mesh := c.PhaseCost(topology.Mesh{}, p, 1)
	if !(cm2 < hyp) {
		t.Errorf("hypercube phases (%v) should cost more than CM-2 (%v) at P=%d", hyp, cm2, p)
	}
	// Hypercube at P=4096: 3 scans * 12 steps + 1 transfer * 144 steps
	// = 36ms + 1440ms.
	if want := 36*time.Millisecond + 1440*time.Millisecond; hyp != want {
		t.Errorf("hypercube cost %v, want %v", hyp, want)
	}
	// Mesh at P=4096: sqrt = 64 steps for both.
	if want := 3*64*time.Millisecond + 640*time.Millisecond; mesh != want {
		t.Errorf("mesh cost %v, want %v", mesh, want)
	}
}

func TestLBScale(t *testing.T) {
	c := CM2Costs()
	c.LBScale = 16
	if got := c.PhaseCost(topology.CM2{}, 1024, 1); got != 16*13*time.Millisecond {
		t.Errorf("16x phase cost %v, want 208ms", got)
	}
	if c.EffectiveLBScale() != 16 {
		t.Error("EffectiveLBScale")
	}
	if (Costs{}).EffectiveLBScale() != 1 {
		t.Error("zero LBScale should be effective 1")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	n := (Costs{}).normalize()
	def := CM2Costs()
	if n.NodeExpansion != def.NodeExpansion || n.LBScale != 1 {
		t.Errorf("normalize gave %+v", n)
	}
	// Explicit values survive.
	c := Costs{NodeExpansion: time.Second, ScanUnit: time.Millisecond, TransferUnit: time.Millisecond, LBScale: 2}
	if c.normalize() != c {
		t.Error("normalize should not change explicit values")
	}
}

func TestSingleRoundCost(t *testing.T) {
	c := CM2Costs()
	if c.SingleRoundCost(topology.CM2{}, 512) != c.PhaseCost(topology.CM2{}, 512, 1) {
		t.Error("SingleRoundCost should equal a one-round phase")
	}
}

package simd

import (
	"context"
	"errors"
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
)

// TestRunContextBackgroundMatchesRun pins the wrapper contract: RunContext
// with a background context is bit-for-bit Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{P: 32}
	want, err := Run[synthetic.Node](synthetic.New(4000, 3), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext[synthetic.Node](context.Background(), synthetic.New(4000, 3), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunContext stats differ from Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunContextPreCancelled: a context cancelled before the run starts
// stops it at the first cycle boundary, before any node is expanded.
func TestRunContextPreCancelled(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-S0.80")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunContext[synthetic.Node](ctx, synthetic.New(4000, 3), sch, Options{P: 32})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !st.Cancelled {
		t.Error("Stats.Cancelled not set")
	}
	if st.W != 0 || st.Cycles != 0 {
		t.Errorf("pre-cancelled run expanded work: W=%d Cycles=%d", st.W, st.Cycles)
	}
}

// TestRunContextPrefixDeterminism is the determinism contract for
// cancellation: cancelling after cycle k (via the Progress hook, which the
// engine calls synchronously at cycle boundaries) must leave a run whose
// per-cycle trace and aggregates are exactly the k-cycle prefix of the
// uncancelled run.
func TestRunContextPrefixDeterminism(t *testing.T) {
	const cancelAt = 7
	newRun := func() (*trace.Trace, Options) {
		tr := &trace.Trace{}
		return tr, Options{P: 32, Trace: tr}
	}

	sch, err := ParseScheme[synthetic.Node]("GP-S0.80")
	if err != nil {
		t.Fatal(err)
	}
	fullTr, fullOpts := newRun()
	full, err := Run[synthetic.Node](synthetic.New(4000, 3), sch, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cycles <= cancelAt {
		t.Fatalf("reference run too short (%d cycles) for cancelAt=%d", full.Cycles, cancelAt)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partTr, partOpts := newRun()
	partOpts.ProgressEvery = cancelAt
	partOpts.Progress = func(p ProgressInfo) {
		if p.Cycles >= cancelAt {
			cancel()
		}
	}
	part, err := RunContext[synthetic.Node](ctx, synthetic.New(4000, 3), sch, partOpts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !part.Cancelled {
		t.Error("Stats.Cancelled not set")
	}
	if part.Cycles != cancelAt {
		t.Fatalf("cancelled run completed %d cycles, want exactly %d", part.Cycles, cancelAt)
	}
	if len(partTr.Samples) != cancelAt {
		t.Fatalf("cancelled run recorded %d samples, want %d", len(partTr.Samples), cancelAt)
	}
	var wantW int64
	for i, s := range partTr.Samples {
		ref := fullTr.Samples[i]
		if s != ref {
			t.Errorf("cycle %d: cancelled-run sample %+v differs from full-run %+v", i, s, ref)
		}
		wantW += int64(s.Active)
	}
	if part.W != wantW {
		t.Errorf("partial W=%d, want %d (sum of per-cycle actives)", part.W, wantW)
	}
}

// TestRunContextDeadline: a deadline surfaces as context.DeadlineExceeded
// with partial stats, exercising the path a service timeout takes.
func TestRunContextDeadline(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	st, err := RunContext[synthetic.Node](ctx, synthetic.New(100000, 3), sch, Options{P: 16})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !st.Cancelled {
		t.Error("Stats.Cancelled not set on deadline")
	}
}

// TestRunIDAStarContextCancel: cancellation mid-iteration returns the
// partial iteration and propagates both the flag and the cause.
func TestRunIDAStarContextCancel(t *testing.T) {
	sch, err := ParseScheme[puzzle.Node]("GP-S0.80")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunIDAStarContext[puzzle.Node](ctx, puzzle.NewDomain(puzzle.Scramble(5, 16)), sch, Options{P: 16}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Stats.Cancelled {
		t.Error("aggregate Stats.Cancelled not set")
	}
	if len(res.Iterations) != 1 {
		t.Errorf("%d iterations recorded, want the 1 interrupted one", len(res.Iterations))
	}
}

// TestBudgetErrIs pins the sentinel so services can classify budget
// exhaustion without string matching.
func TestBudgetErrIs(t *testing.T) {
	sch, err := ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run[synthetic.Node](synthetic.New(100000, 3), sch, Options{P: 4, MaxCycles: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if st.Cycles != 5 {
		t.Errorf("budgeted run completed %d cycles, want 5", st.Cycles)
	}
	if st.Cancelled {
		t.Error("budget exhaustion must not set Cancelled")
	}
}

package simd_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// runTraced performs one full run at the given worker count with donor
// capture on, then snapshots the quiescent machine and serialises the
// snapshot, returning every observable artefact of the run.
func runTraced[S any](t *testing.T, dom search.Domain[S], label string, p, workers int, codec wire.Codec[S]) (metrics.Stats, *trace.Trace, []byte) {
	t.Helper()
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{CaptureDonors: true}
	m, err := simd.NewMachine[S](dom, sch, simd.Options{P: p, Workers: workers, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := checkpoint.Encode[S](codec, checkpoint.Meta{Domain: "workers-test", Scheme: label}, snap)
	if err != nil {
		t.Fatal(err)
	}
	return stats, tr, blob
}

// checkWorkersInvariant runs the same configuration at Workers 1, 2, 4
// and 8 and requires the statistics, the full trace (donor lists
// included) and the serialised checkpoint to be identical — the checkpoint
// byte-for-byte.  This is the engine's core contract: the Workers option
// shards host-side simulation work and must never be observable in any
// output.
func checkWorkersInvariant(t *testing.T, run func(workers int) (metrics.Stats, *trace.Trace, []byte)) metrics.Stats {
	t.Helper()
	baseStats, baseTrace, baseBlob := run(1)
	for _, w := range []int{2, 4, 8} {
		stats, tr, blob := run(w)
		if stats != baseStats {
			t.Errorf("workers=%d: stats diverged\n got %+v\nwant %+v", w, stats, baseStats)
		}
		if !reflect.DeepEqual(tr, baseTrace) {
			t.Errorf("workers=%d: trace diverged (%d/%d samples, %d/%d events)",
				w, len(tr.Samples), len(baseTrace.Samples), len(tr.Events), len(baseTrace.Events))
		}
		if !bytes.Equal(blob, baseBlob) {
			t.Errorf("workers=%d: checkpoint bytes diverged (%d bytes vs %d)", w, len(blob), len(baseBlob))
		}
	}
	return baseStats
}

// TestWorkersDeterminism verifies the invariant across all six Table 1
// schemes on both domains, sweeping the machine sizes where the engine
// changes gear: P=256 (multi-word bitsets, sequential LB paths), P=1024
// (the parallel flag-scan and parallel transfer paths of the
// load-balancing phase engage) and P=8192 (many 64-aligned expansion
// shards per worker, sparse has-work bitsets).  Below those thresholds
// the sharded run takes the sequential paths, which would leave the
// parallel reductions untested.
func TestWorkersDeterminism(t *testing.T) {
	for _, label := range simd.Table1Labels(0.85) {
		t.Run("synthetic/"+label, func(t *testing.T) {
			tree := synthetic.New(20000, 42)
			st := checkWorkersInvariant(t, func(workers int) (metrics.Stats, *trace.Trace, []byte) {
				return runTraced[synthetic.Node](t, tree, label, 256, workers, wire.SyntheticCodec{})
			})
			if st.W != 20000 {
				t.Errorf("synthetic tree W=%d, want exactly 20000", st.W)
			}
		})
		t.Run("synthetic-p1024/"+label, func(t *testing.T) {
			tree := synthetic.New(60000, 7)
			checkWorkersInvariant(t, func(workers int) (metrics.Stats, *trace.Trace, []byte) {
				return runTraced[synthetic.Node](t, tree, label, 1024, workers, wire.SyntheticCodec{})
			})
		})
		t.Run("synthetic-p8192/"+label, func(t *testing.T) {
			if testing.Short() {
				t.Skip("P=8192 sweep skipped in -short mode")
			}
			tree := synthetic.New(120000, 19)
			checkWorkersInvariant(t, func(workers int) (metrics.Stats, *trace.Trace, []byte) {
				return runTraced[synthetic.Node](t, tree, label, 8192, workers, wire.SyntheticCodec{})
			})
		})
		t.Run("puzzle/"+label, func(t *testing.T) {
			inst := puzzle.Scramble(11, 22)
			dom := puzzle.NewDomain(inst)
			bound, _ := search.FinalIterationBound(dom)
			st := checkWorkersInvariant(t, func(workers int) (metrics.Stats, *trace.Trace, []byte) {
				return runTraced[puzzle.Node](t, search.NewBounded(dom, bound), label, 32, workers, wire.PuzzleCodec{})
			})
			if st.Goals == 0 {
				t.Error("puzzle run found no goal at the final iteration bound")
			}
		})
	}
}

package simd

import (
	"fmt"
	"strings"

	"simdtree/internal/match"
	"simdtree/internal/stack"
	"simdtree/internal/trigger"
)

// Scheme couples a triggering mechanism with a load-balancing phase
// implementation — the two components the paper identifies as making up an
// efficient SIMD tree search (Section 1).
type Scheme[S any] struct {
	// Label identifies the scheme in reports, e.g. "GP-S0.90" or "nGP-DP".
	Label string
	// Trigger decides when a load-balancing phase starts.
	Trigger trigger.Trigger
	// Balancer performs the phase.
	Balancer Balancer[S]
	// Splitter is the alpha-splitting mechanism donors use; nil selects
	// the paper's bottom-node splitter.
	Splitter stack.Splitter[S]
	// WantInit reports that the scheme expects the S^0.85 initial
	// distribution phase the paper uses for dynamic triggers (Section 7).
	WantInit bool
}

// NewScheme assembles a standard scheme from a matcher name ("GP" or
// "nGP"), a trigger, and the transfer policy.  D^P triggering always uses
// multiple work transfers per phase, as the paper requires (Section 2.3).
func NewScheme[S any](matcherName string, trig trigger.Trigger, multi bool) (Scheme[S], error) {
	var m match.Matcher
	switch matcherName {
	case "GP":
		m = match.NewGP()
	case "nGP":
		m = &match.NGP{}
	default:
		return Scheme[S]{}, fmt.Errorf("simd: unknown matcher %q", matcherName)
	}
	if _, isDP := trig.(trigger.DP); isDP {
		multi = true
	}
	_, dynDP := trig.(trigger.DP)
	_, dynDK := trig.(trigger.DK)
	return Scheme[S]{
		Label:    matcherName + "-" + trig.Name(),
		Trigger:  trig,
		Balancer: &MatchBalancer[S]{Matcher: m, Multi: multi},
		Splitter: stack.BottomNode[S]{},
		WantInit: dynDP || dynDK,
	}, nil
}

// ParseScheme parses a scheme label of the form "<matcher>-<trigger>",
// e.g. "GP-S0.90", "nGP-DP", "GP-DK".  The six combinations of Table 1 are
// all expressible; D^P implies multiple transfers.
func ParseScheme[S any](label string) (Scheme[S], error) {
	i := strings.Index(label, "-")
	if i < 0 {
		return Scheme[S]{}, fmt.Errorf("simd: scheme label %q is not <matcher>-<trigger>", label)
	}
	trig, err := trigger.Parse(label[i+1:])
	if err != nil {
		return Scheme[S]{}, err
	}
	return NewScheme[S](label[:i], trig, false)
}

// SchemeParts is the codec-erased decomposition of a scheme label: the
// matcher instance, trigger and transfer policy without the generic
// balancer wrapper.  The distributed-stealing coordinator uses it to run
// the global schedule (trigger evaluation, matching, GP pointer) for a
// run whose node type it never sees.
type SchemeParts struct {
	// Label is the canonical scheme label, e.g. "GP-DK".
	Label string
	// Matcher is a fresh matcher instance (GP pointer parked).
	Matcher match.Matcher
	// Trigger decides when a load-balancing phase starts.
	Trigger trigger.Trigger
	// Multi selects repeated matching/transfer rounds per phase.
	Multi bool
	// WantInit reports the scheme expects the S^0.85 initial distribution.
	WantInit bool
}

// ParseSchemeParts parses a scheme label into its codec-erased parts,
// applying the same rules as ParseScheme/NewScheme: D^P implies multiple
// transfers, and the dynamic triggers want the initial distribution.
func ParseSchemeParts(label string) (SchemeParts, error) {
	i := strings.Index(label, "-")
	if i < 0 {
		return SchemeParts{}, fmt.Errorf("simd: scheme label %q is not <matcher>-<trigger>", label)
	}
	trig, err := trigger.Parse(label[i+1:])
	if err != nil {
		return SchemeParts{}, err
	}
	var m match.Matcher
	switch label[:i] {
	case "GP":
		m = match.NewGP()
	case "nGP":
		m = &match.NGP{}
	default:
		return SchemeParts{}, fmt.Errorf("simd: unknown matcher %q", label[:i])
	}
	_, dynDP := trig.(trigger.DP)
	_, dynDK := trig.(trigger.DK)
	return SchemeParts{
		Label:    label[:i] + "-" + trig.Name(),
		Matcher:  m,
		Trigger:  trig,
		Multi:    dynDP,
		WantInit: dynDP || dynDK,
	}, nil
}

// StaticScheme returns <matcher>-S<x>.
func StaticScheme[S any](matcherName string, x float64) (Scheme[S], error) {
	return NewScheme[S](matcherName, trigger.Static{X: x}, false)
}

// Table1Labels lists the six load-balancing schemes of the paper's Table 1
// for a representative static threshold x.
func Table1Labels(x float64) []string {
	s := trigger.Static{X: x}.Name()
	return []string{
		"nGP-" + s, "nGP-DP", "nGP-DK",
		"GP-" + s, "GP-DP", "GP-DK",
	}
}

package simd

import (
	"testing"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
	"simdtree/internal/trace"
)

func mustScheme(t testing.TB, label string) Scheme[synthetic.Node] {
	t.Helper()
	sch, err := ParseScheme[synthetic.Node](label)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestOptionsValidation(t *testing.T) {
	tree := synthetic.New(100, 1)
	sch := mustScheme(t, "GP-DK")
	if _, err := Run[synthetic.Node](nil, sch, Options{P: 4}); err == nil {
		t.Error("nil domain accepted")
	}
	if _, err := Run[synthetic.Node](tree, sch, Options{P: 0}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := Run[synthetic.Node](tree, Scheme[synthetic.Node]{}, Options{P: 4}); err == nil {
		t.Error("empty scheme accepted")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	tree := synthetic.New(100000, 1)
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.90")
	_, err := Run[synthetic.Node](tree, sch, Options{P: 4, MaxCycles: 10})
	if err == nil {
		t.Error("MaxCycles guard did not fire")
	}
}

func TestSingleProcessorDegenerates(t *testing.T) {
	tree := synthetic.New(5000, 1)
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.90")
	st, err := Run[synthetic.Node](tree, sch, Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.W != 5000 || st.Cycles != 5000 {
		t.Errorf("P=1: W=%d cycles=%d, want 5000 each", st.W, st.Cycles)
	}
	if e := st.Efficiency(); e < 0.9999 {
		t.Errorf("P=1 efficiency %v, want 1", e)
	}
	if st.LBPhases != 0 {
		t.Errorf("P=1 performed %d LB phases", st.LBPhases)
	}
}

func TestStopAtFirstGoal(t *testing.T) {
	// A deep scramble searched without a bound limit would take long;
	// with StopAtFirstGoal the machine quits the cycle a goal appears in.
	inst := puzzle.Scramble(11, 22)
	dom := puzzle.NewDomain(inst)
	bound, _ := search.FinalIterationBound(dom)
	sch, _ := ParseScheme[puzzle.Node]("GP-S0.75")
	full, err := Run[puzzle.Node](search.NewBounded(dom, bound), sch, Options{P: 32})
	if err != nil {
		t.Fatal(err)
	}
	sch2, _ := ParseScheme[puzzle.Node]("GP-S0.75")
	early, err := Run[puzzle.Node](search.NewBounded(dom, bound), sch2, Options{P: 32, StopAtFirstGoal: true})
	if err != nil {
		t.Fatal(err)
	}
	if early.Goals == 0 {
		t.Fatal("early stop found no goal")
	}
	if early.W > full.W {
		t.Errorf("early stop expanded more (%d) than exhaustive (%d)", early.W, full.W)
	}
	if early.Cycles > full.Cycles {
		t.Errorf("early stop took more cycles (%d) than exhaustive (%d)", early.Cycles, full.Cycles)
	}
}

func TestQueensOnSIMDMatchesSerial(t *testing.T) {
	d := queens.New(9)
	serial := search.DFS[queens.Node](d)
	sch, err := ParseScheme[queens.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run[queens.Node](d, sch, Options{P: 128})
	if err != nil {
		t.Fatal(err)
	}
	if st.Goals != serial.Goals || st.W != serial.Expanded {
		t.Errorf("queens: parallel (W=%d, goals=%d) vs serial (W=%d, goals=%d)",
			st.W, st.Goals, serial.Expanded, serial.Goals)
	}
}

// TestGPNoWorsePhasesAtHighThreshold reproduces the core Table 2 property:
// at high static thresholds GP performs at most as many (and for sizeable
// trees strictly fewer) load-balancing phases as nGP.
func TestGPNoWorsePhasesAtHighThreshold(t *testing.T) {
	tree := synthetic.New(200000, 0xFACE)
	for _, x := range []string{"S0.80", "S0.90"} {
		ngp, err := Run[synthetic.Node](tree, mustScheme(t, "nGP-"+x), Options{P: 256})
		if err != nil {
			t.Fatal(err)
		}
		gp, err := Run[synthetic.Node](tree, mustScheme(t, "GP-"+x), Options{P: 256})
		if err != nil {
			t.Fatal(err)
		}
		if gp.LBPhases > ngp.LBPhases {
			t.Errorf("%s: GP phases %d > nGP phases %d", x, gp.LBPhases, ngp.LBPhases)
		}
		if gp.Efficiency() < ngp.Efficiency()-0.02 {
			t.Errorf("%s: GP efficiency %.3f below nGP %.3f", x, gp.Efficiency(), ngp.Efficiency())
		}
	}
}

// TestSchemesIdenticalAtHalfThreshold reproduces the x=0.5 observation:
// both matching schemes behave near-identically because every busy
// processor donates in every phase (V(P)=1 for both).
func TestSchemesIdenticalAtHalfThreshold(t *testing.T) {
	tree := synthetic.New(100000, 0xF00D)
	ngp, err := Run[synthetic.Node](tree, mustScheme(t, "nGP-S0.50"), Options{P: 128})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := Run[synthetic.Node](tree, mustScheme(t, "GP-S0.50"), Options{P: 128})
	if err != nil {
		t.Fatal(err)
	}
	if d := gp.LBPhases - ngp.LBPhases; d > 2 || d < -2 {
		t.Errorf("x=0.5: phase counts diverge (GP %d, nGP %d)", gp.LBPhases, ngp.LBPhases)
	}
}

// TestDKTracksOptimalStatic reproduces Section 6.2's bound measured: the
// D^K overheads stay within roughly twice those of a well-chosen static
// trigger.
func TestDKTracksOptimalStatic(t *testing.T) {
	tree := synthetic.New(150000, 0xD00D)
	dk, err := Run[synthetic.Node](tree, mustScheme(t, "GP-DK"), Options{P: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Scan static thresholds for the best efficiency.
	best := 0.0
	var bestOver time.Duration
	for _, x := range []string{"S0.70", "S0.80", "S0.85", "S0.90", "S0.95"} {
		st, err := Run[synthetic.Node](tree, mustScheme(t, "GP-"+x), Options{P: 256})
		if err != nil {
			t.Fatal(err)
		}
		if e := st.Efficiency(); e > best {
			best = e
			bestOver = st.Overhead()
		}
	}
	if dk.Efficiency() < best-0.12 {
		t.Errorf("GP-DK efficiency %.3f far below best static %.3f", dk.Efficiency(), best)
	}
	// The theorem: DK overheads <= 2x optimal static overheads (allow
	// 2.5x for the discrete simulation and the imperfect L estimate).
	if bestOver > 0 && dk.Overhead() > bestOver*5/2 {
		t.Errorf("GP-DK overhead %v exceeds 2.5x the optimal static overhead %v", dk.Overhead(), bestOver)
	}
}

// TestDPDegradesWithExpensiveLB reproduces Table 5's qualitative claim:
// when the load-balancing cost is inflated 16x, D^K beats D^P.
func TestDPDegradesWithExpensiveLB(t *testing.T) {
	tree := synthetic.New(150000, 0xCAFE)
	opts := Options{P: 256}
	opts.Costs = CM2Costs()
	opts.Costs.LBScale = 16
	dp, err := Run[synthetic.Node](tree, mustScheme(t, "GP-DP"), opts)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := Run[synthetic.Node](tree, mustScheme(t, "GP-DK"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if dk.Efficiency() < dp.Efficiency() {
		t.Errorf("at 16x tlb, GP-DK (%.3f) should not trail GP-DP (%.3f)",
			dk.Efficiency(), dp.Efficiency())
	}
}

func TestInitialDistributionFillsMachine(t *testing.T) {
	tr := &trace.Trace{}
	tree := synthetic.New(100000, 0xBEAD)
	sch := mustScheme(t, "GP-DK") // dynamic: wants the S^0.85 init phase
	st, err := Run[synthetic.Node](tree, sch, Options{P: 128, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if st.InitCycles == 0 || st.InitPhases == 0 {
		t.Fatalf("no initial distribution recorded: %+v", st)
	}
	// After the init phase, at least 85% of 128 processors had work.
	idx := st.InitCycles - 1
	if idx >= len(tr.Samples) {
		t.Fatal("trace too short")
	}
	if a := tr.Samples[idx].Active; a < 109 {
		t.Errorf("after init, active=%d, want >= 109 (85%% of 128)", a)
	}
}

func TestInitialDistributionDisabled(t *testing.T) {
	tree := synthetic.New(50000, 0xBEAD)
	sch := mustScheme(t, "GP-DK")
	st, err := Run[synthetic.Node](tree, sch, Options{P: 128, InitThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st.InitCycles != 0 || st.InitPhases != 0 {
		t.Errorf("init phase ran despite being disabled: %+v", st)
	}
}

func TestTopologyChangesCostsNotSchedule(t *testing.T) {
	tree := synthetic.New(60000, 0x70D0)
	var prev *struct {
		cycles int
		phases int
	}
	for _, topoName := range []string{"cm2", "crossbar"} {
		net, _ := topology.ByName(topoName)
		sch := mustScheme(t, "GP-S0.85")
		st, err := Run[synthetic.Node](tree, sch, Options{P: 128, Topology: net})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && (st.Cycles != prev.cycles || st.LBPhases != prev.phases) {
			t.Errorf("static trigger schedule changed with topology: %d/%d vs %d/%d",
				st.Cycles, st.LBPhases, prev.cycles, prev.phases)
		}
		prev = &struct {
			cycles int
			phases int
		}{st.Cycles, st.LBPhases}
	}
}

// TestEfficiencyImprovesWithW reproduces the isoefficiency intuition: at
// fixed P, a bigger problem is more efficient.
func TestEfficiencyImprovesWithW(t *testing.T) {
	prev := 0.0
	for _, w := range []int64{20000, 80000, 320000} {
		st := runSyntheticStats(t, w, "GP-S0.90", Options{P: 256})
		if e := st.Efficiency(); e <= prev {
			t.Errorf("W=%d: efficiency %.3f did not improve on %.3f", w, e, prev)
		} else {
			prev = e
		}
	}
}

// TestEfficiencyDropsWithP reproduces the complementary direction: at
// fixed W, more processors mean lower efficiency.
func TestEfficiencyDropsWithP(t *testing.T) {
	prev := 1.1
	for _, p := range []int{64, 256, 1024} {
		st := runSyntheticStats(t, 80000, "GP-S0.90", Options{P: p})
		if e := st.Efficiency(); e >= prev {
			t.Errorf("P=%d: efficiency %.3f did not drop from %.3f", p, e, prev)
		} else {
			prev = e
		}
	}
}

func runSyntheticStats(t testing.TB, w int64, label string, opts Options) metrics.Stats {
	t.Helper()
	st, err := Run[synthetic.Node](synthetic.New(w, 0x5EED), mustScheme(t, label), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

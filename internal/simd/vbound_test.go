package simd

import (
	"testing"

	"simdtree/internal/analysis"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
)

// donorCoverageSpan measures, from a donor-captured trace, the largest
// number of consecutive load-balancing phases needed before the set of
// donors seen covers every processor that donated at least once in the
// whole run — an empirical stand-in for the Appendix A/B quantity V(P),
// the number of phases after which every busy processor has shared its
// work.
func donorCoverageSpan(tr *trace.Trace) int {
	// Processors that never donate were never splittable during a phase,
	// so they fall outside V(P)'s scope; coverage is over the rest.
	ever := map[int]bool{}
	for _, e := range tr.Events {
		for _, d := range e.Donors {
			ever[d] = true
		}
	}
	if len(ever) == 0 {
		return 0
	}
	worst := 0
	for start := 0; start < len(tr.Events); start++ {
		need := len(ever)
		seen := map[int]bool{}
		span := 0
		for i := start; i < len(tr.Events) && len(seen) < need; i++ {
			for _, d := range tr.Events[i].Donors {
				if ever[d] && !seen[d] {
					seen[d] = true
				}
			}
			span++
		}
		if len(seen) < need {
			break // the tail never covers everyone; stop scanning
		}
		if span > worst {
			worst = span
		}
	}
	return worst
}

// TestGPDonorRotationBound validates Section 4.1 empirically: under GP
// matching with static threshold x, every (ever-donating) processor
// donates within roughly ceil(1/(1-x)) consecutive phases, whereas nGP
// can take far longer because early-enumerated donors are drained first.
func TestGPDonorRotationBound(t *testing.T) {
	const x = 0.80
	tree := synthetic.New(150000, 0xFEED)

	spans := map[string]int{}
	for _, matcher := range []string{"GP", "nGP"} {
		tr := &trace.Trace{CaptureDonors: true}
		sch, err := StaticScheme[synthetic.Node](matcher, x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run[synthetic.Node](tree, sch, Options{P: 64, Trace: tr}); err != nil {
			t.Fatal(err)
		}
		spans[matcher] = donorCoverageSpan(tr)
	}

	bound := int(analysis.VBoundGP(x)) // ceil(1/(1-x)) = 5
	// The worst-case window includes the fill/drain transients where some
	// ever-donor is temporarily empty, so the measured span overshoots the
	// steady-state bound by a constant factor; what must hold is that GP
	// stays within a small multiple of the bound while nGP — whose donors
	// at the head of the enumeration are drained over and over — is an
	// order of magnitude worse (the Appendix B picture).
	if spans["GP"] > 6*bound {
		t.Errorf("GP donor coverage span %d far exceeds the V(P) bound %d", spans["GP"], bound)
	}
	if spans["GP"]*4 > spans["nGP"] {
		t.Errorf("GP coverage span %d not clearly better than nGP's %d; rotation is not helping",
			spans["GP"], spans["nGP"])
	}
	t.Logf("coverage spans at x=%.2f: GP=%d (bound %d), nGP=%d", x, spans["GP"], bound, spans["nGP"])
}

// TestDonorsNotCapturedByDefault keeps the default path allocation-free.
func TestDonorsNotCapturedByDefault(t *testing.T) {
	tr := &trace.Trace{}
	sch, _ := ParseScheme[synthetic.Node]("GP-S0.80")
	if _, err := Run[synthetic.Node](synthetic.New(5000, 1), sch, Options{P: 32, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Donors != nil {
			t.Fatal("donors recorded without CaptureDonors")
		}
	}
}

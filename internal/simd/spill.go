package simd

import "simdtree/internal/stack"

// Spiller is the residency manager of a memory-bounded run
// (internal/spill.Manager implements it).  The engine drives it only
// from sequential code at cycle boundaries — before each expansion cycle
// (Barrier), after each cycle's trigger/balance decision (Sweep), and
// before any operation that needs a PE's whole stack resident
// (FaultAll): bottom removal, stack splits, donation, serialisation.
//
// Every method must be a pure function of the arena state it is handed
// plus the manager's own deterministic bookkeeping: the determinism
// contract extends to residency, so that a run with a budget produces
// schedules, traces and checkpoints byte-identical to an unbounded run.
type Spiller[S any] interface {
	// Barrier restores the newest segment of every PE that has work but
	// no resident nodes, so the coming cycle's pops find the true stack
	// tops.  Called at cycle boundaries before the cycle.
	Barrier(a *stack.Arena[S]) error
	// Sweep evicts cold bottom levels until the resident set fits the
	// budget.  Called at cycle boundaries after trigger/balance.
	Sweep(a *stack.Arena[S]) error
	// FaultAll restores every evicted segment of PE pe.
	FaultAll(a *stack.Arena[S], pe int) error
	// Reset discards every segment; the machine state was replaced
	// wholesale (snapshot restore) and the segments describe nothing.
	Reset() error
}

// SetSpiller registers the residency manager a positive Options.MemBudget
// requires.  It must be called before RunContext, at a cycle boundary.
// The spiller also hooks the load-balancing transfer path: a donor PE is
// made fully resident before its stack is split, because bottom-node
// donation reads the true bottom of the stack.
func (m *Machine[S]) SetSpiller(sp Spiller[S]) {
	m.spiller = sp
	if sp == nil {
		m.lbCtx.faultDonor = nil
		return
	}
	m.lbCtx.faultDonor = func(pe int) {
		// Inside a parallel transfer region every donor was pre-faulted,
		// so this read of the donor's own ghost counter short-circuits
		// without touching shared manager state.
		if m.arena.Ghost(pe) == 0 {
			return
		}
		if err := sp.FaultAll(m.arena, pe); err != nil && m.spillErr == nil {
			m.spillErr = err
		}
	}
}

// spillBarrier runs the pre-cycle fault barrier and surfaces any fault
// error latched inside the previous balancing phase.
func (m *Machine[S]) spillBarrier() error {
	if m.spillErr != nil {
		return m.spillErr
	}
	if m.spiller == nil {
		return nil
	}
	return m.spiller.Barrier(m.arena)
}

// spillSweep enforces the memory budget at the end of a loop iteration.
func (m *Machine[S]) spillSweep() error {
	if m.spillErr != nil {
		return m.spillErr
	}
	if m.spiller == nil {
		return nil
	}
	return m.spiller.Sweep(m.arena)
}

// faultFull makes PE pe fully resident — the precondition for bottom
// removal, splits, donation and serialisation.  A machine without a
// spiller is always fully resident.
func (m *Machine[S]) faultFull(pe int) error {
	if m.spiller == nil {
		return nil
	}
	return m.spiller.FaultAll(m.arena, pe)
}

// faultAllPEs makes the whole arena resident, the snapshot precondition:
// checkpoints reabsorb spilled levels so they stay self-contained and
// byte-identical to an unbounded run's.
func (m *Machine[S]) faultAllPEs() error {
	if m.spiller == nil {
		return nil
	}
	for pe := 0; pe < m.opts.P; pe++ {
		if err := m.spiller.FaultAll(m.arena, pe); err != nil {
			return err
		}
	}
	return nil
}

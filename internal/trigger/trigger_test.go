package trigger

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestStatic(t *testing.T) {
	tr := Static{X: 0.75}
	cases := []struct {
		active int
		want   bool
	}{
		{100, false}, {76, false}, {75, true}, {10, true}, {0, true},
	}
	for _, c := range cases {
		got := tr.ShouldBalance(State{P: 100, Active: c.active})
		if got != c.want {
			t.Errorf("S0.75 with A=%d: %v, want %v", c.active, got, c.want)
		}
	}
	if tr.Name() != "S0.75" {
		t.Errorf("Name = %q", tr.Name())
	}
}

func TestDPTriggersWhenWorkAreaExceeds(t *testing.T) {
	tr := DP{}
	// w >= A*(t+L): with A=4, t=100ms, L=25ms, threshold is 500ms of work.
	base := State{P: 8, Active: 4, Elapsed: ms(100), EstLB: ms(25)}
	s := base
	s.Work = ms(499)
	if tr.ShouldBalance(s) {
		t.Error("DP fired below the threshold")
	}
	s.Work = ms(500)
	if !tr.ShouldBalance(s) {
		t.Error("DP failed to fire at the threshold")
	}
}

// TestDPStarvation reproduces the Section 6.1 failure mode: with one
// active processor, R1 = w - A*t stays at zero, so D^P never triggers no
// matter how long the search runs (as long as L > 0).
func TestDPStarvation(t *testing.T) {
	tr := DP{}
	for cycles := 1; cycles <= 1000; cycles *= 10 {
		el := time.Duration(cycles) * ms(30)
		s := State{
			P:       1024,
			Active:  1,
			Elapsed: el,
			Work:    el, // one processor working the whole time: w = 1*t
			Idle:    time.Duration(1023) * el,
			EstLB:   ms(13),
		}
		if tr.ShouldBalance(s) {
			t.Fatalf("DP triggered with a single active processor after %d cycles", cycles)
		}
	}
}

// TestDKFiresUnderStarvation shows D^K handles the same scenario: idle
// time accumulates and crosses L*P quickly.
func TestDKFiresUnderStarvation(t *testing.T) {
	tr := DK{}
	el := ms(30) // one cycle
	s := State{
		P:      1024,
		Active: 1,
		Idle:   1023 * el, // ~30.7 s of idling
		EstLB:  ms(13),    // L*P = 13.3 s
	}
	if !tr.ShouldBalance(s) {
		t.Error("DK failed to fire despite idle time exceeding L*P")
	}
}

func TestDKThreshold(t *testing.T) {
	tr := DK{}
	s := State{P: 100, EstLB: ms(10)} // threshold: 1000ms of idle
	s.Idle = ms(999)
	if tr.ShouldBalance(s) {
		t.Error("DK fired below L*P")
	}
	s.Idle = ms(1000)
	if !tr.ShouldBalance(s) {
		t.Error("DK failed at L*P")
	}
}

// TestDPLateWithExpensiveLB checks observation 3 of Section 6.1: raising
// L delays D^P.
func TestDPLateWithExpensiveLB(t *testing.T) {
	tr := DP{}
	s := State{P: 8, Active: 4, Elapsed: ms(100), Work: ms(500)}
	s.EstLB = ms(25)
	if !tr.ShouldBalance(s) {
		t.Fatal("setup broken: DP should fire at cheap L")
	}
	s.EstLB = ms(400) // 16x the cost
	if tr.ShouldBalance(s) {
		t.Error("DP should be delayed by an expensive LB phase")
	}
}

func TestDKGamma(t *testing.T) {
	tr := DKGamma{Gamma: 2}
	if tr.Name() != "DK2.00" {
		t.Errorf("Name = %q", tr.Name())
	}
	tr.Reset()                        // stateless
	s := State{P: 100, EstLB: ms(10)} // threshold: 2 * 1000ms of idle
	s.Idle = ms(1999)
	if tr.ShouldBalance(s) {
		t.Error("DKGamma fired below gamma*L*P")
	}
	s.Idle = ms(2000)
	if !tr.ShouldBalance(s) {
		t.Error("DKGamma failed at gamma*L*P")
	}
	// Gamma 1 coincides with the paper's DK.
	one := DKGamma{Gamma: 1}
	for _, idle := range []time.Duration{ms(999), ms(1000), ms(5000)} {
		s.Idle = idle
		if one.ShouldBalance(s) != (DK{}).ShouldBalance(s) {
			t.Errorf("DKGamma(1) diverges from DK at idle=%v", idle)
		}
	}
}

func TestParseDKGamma(t *testing.T) {
	tr, err := Parse("DK2.5")
	if err != nil {
		t.Fatal(err)
	}
	g, ok := tr.(DKGamma)
	if !ok || g.Gamma != 2.5 {
		t.Errorf("Parse(DK2.5) = %#v", tr)
	}
	// Bare "DK" still parses as the paper's trigger.
	if tr, _ := Parse("DK"); tr.Name() != "DK" {
		t.Error("bare DK no longer parses")
	}
	for _, bad := range []string{"DK0", "DK-3", "DKx"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestAnyIdleAndAlways(t *testing.T) {
	if (AnyIdle{}).ShouldBalance(State{P: 8, Active: 8}) {
		t.Error("AnyIdle fired on a full machine")
	}
	if !(AnyIdle{}).ShouldBalance(State{P: 8, Active: 7}) {
		t.Error("AnyIdle failed with one idle processor")
	}
	if !(Always{}).ShouldBalance(State{P: 8, Active: 8}) {
		t.Error("Always must always fire")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"S0.85", "S0.85"},
		{"S0.5", "S0.50"},
		{"DP", "DP"},
		{"DK", "DK"},
		{"anyidle", "anyidle"},
		{"always", "always"},
	}
	for _, c := range cases {
		tr, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if tr.Name() != c.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.in, tr.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "S", "S1.5", "S-0.2", "DX", "Zed"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestResetIsNoop documents that all built-in triggers are stateless.
func TestResetIsNoop(t *testing.T) {
	for _, tr := range []Trigger{Static{X: 0.5}, DP{}, DK{}, AnyIdle{}, Always{}} {
		tr.Reset()
		_ = tr.Name()
	}
}

// Package trigger implements the mechanisms that decide, after every node
// expansion cycle, whether the machine should leave the search phase and
// perform a load-balancing phase (Section 2 of the paper):
//
//   - S^x — static triggering: balance as soon as the fraction of active
//     processors falls to x (equation 1).
//   - D^P — the dynamic trigger of Powley, Ferguson and Korf: balance when
//     the work done this search phase, spread over the elapsed time plus the
//     projected balancing cost, matches the active count:
//     w / (t + L) >= A (equation 2).  Section 6.1 shows it can starve.
//   - D^K — the paper's new dynamic trigger: balance when the idle time
//     accumulated this search phase reaches the projected cost of the next
//     balancing phase over the whole machine: w_idle >= L*P (equation 4).
//     Its overheads are at most twice the optimal static trigger's
//     (Section 6.2).
//
// Triggers are pure predicates over the per-cycle State the engine
// assembles; the engine owns the bookkeeping (and its virtual cost).
package trigger

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// State is the globally reduced information available to a trigger at the
// end of a node expansion cycle.  All durations are virtual time.
type State struct {
	P      int // machine size
	Active int // A: processors that expanded a node this cycle

	// Quantities accumulated since the current search phase began (they
	// reset after every load-balancing phase):
	Cycles  int           // node expansion cycles this phase
	Elapsed time.Duration // t: wall time since the phase began
	Work    time.Duration // w: processor-seconds of node expansion
	Idle    time.Duration // w_idle: processor-seconds spent idling

	// EstLB is L, the projected duration of the next load-balancing
	// phase, approximated by the cost of the previous one.
	EstLB time.Duration
}

// Trigger decides when to leave the search phase.
type Trigger interface {
	// Name identifies the trigger in reports, e.g. "S0.85", "DP", "DK".
	Name() string
	// ShouldBalance reports whether a load-balancing phase should start.
	ShouldBalance(s State) bool
	// Reset clears any cross-run state.
	Reset()
}

// Static is the S^x triggering scheme with threshold X in [0, 1]: trigger
// as soon as A <= X*P.
type Static struct {
	X float64
}

// Name implements Trigger.
func (t Static) Name() string { return fmt.Sprintf("S%.2f", t.X) }

// Reset implements Trigger.
func (t Static) Reset() {}

// ShouldBalance implements Trigger (equation 1: A <= x*P).
func (t Static) ShouldBalance(s State) bool {
	return float64(s.Active) <= t.X*float64(s.P)
}

// DP is the dynamic triggering scheme of Powley, Ferguson and Korf
// (equation 2): trigger when w/(t+L) >= A.  The comparison is done in the
// rearranged form w >= A*(t+L) to stay in integer arithmetic.
type DP struct{}

// Name implements Trigger.
func (DP) Name() string { return "DP" }

// Reset implements Trigger.
func (DP) Reset() {}

// ShouldBalance implements Trigger.
func (DP) ShouldBalance(s State) bool {
	return s.Work >= time.Duration(s.Active)*(s.Elapsed+s.EstLB)
}

// DK is the paper's dynamic triggering scheme (equation 4): trigger when
// w_idle >= L*P.
type DK struct{}

// Name implements Trigger.
func (DK) Name() string { return "DK" }

// Reset implements Trigger.
func (DK) Reset() {}

// ShouldBalance implements Trigger.
func (DK) ShouldBalance(s State) bool {
	return s.Idle >= time.Duration(s.P)*s.EstLB
}

// DKGamma generalises D^K with an aggressiveness factor (an extension
// beyond the paper): trigger when w_idle >= Gamma * L * P.  Gamma = 1 is
// the paper's D^K; smaller values balance earlier (more phases, less
// idling), larger values tolerate more idling per phase.  The ablation
// benchmarks sweep Gamma to show the paper's choice sits at the flat
// region of the tradeoff.
type DKGamma struct {
	Gamma float64
}

// Name implements Trigger.
func (t DKGamma) Name() string { return fmt.Sprintf("DK%.2f", t.Gamma) }

// Reset implements Trigger.
func (t DKGamma) Reset() {}

// ShouldBalance implements Trigger.
func (t DKGamma) ShouldBalance(s State) bool {
	return float64(s.Idle) >= t.Gamma*float64(s.P)*float64(s.EstLB)
}

// AnyIdle triggers as soon as a single processor runs out of work; it is
// the triggering condition of the FESS and FEGS baselines of Mahanti and
// Daniels (Section 8).
type AnyIdle struct{}

// Name implements Trigger.
func (AnyIdle) Name() string { return "anyidle" }

// Reset implements Trigger.
func (AnyIdle) Reset() {}

// ShouldBalance implements Trigger.
func (AnyIdle) ShouldBalance(s State) bool { return s.Active < s.P }

// Always triggers after every node expansion cycle; the nearest-neighbour
// baseline of Frye and Myczkowski balances this way.
type Always struct{}

// Name implements Trigger.
func (Always) Name() string { return "always" }

// Reset implements Trigger.
func (Always) Reset() {}

// ShouldBalance implements Trigger.
func (Always) ShouldBalance(State) bool { return true }

// Parse builds a trigger from its report name: "S<x>" (e.g. "S0.85"),
// "DP", "DK", "anyidle" or "always".
func Parse(name string) (Trigger, error) {
	switch {
	case name == "DP":
		return DP{}, nil
	case name == "DK":
		return DK{}, nil
	case strings.HasPrefix(name, "DK"):
		g, err := strconv.ParseFloat(name[2:], 64)
		if err != nil || g <= 0 {
			return nil, fmt.Errorf("trigger: bad DK gamma in %q", name)
		}
		return DKGamma{Gamma: g}, nil
	case name == "anyidle":
		return AnyIdle{}, nil
	case name == "always":
		return Always{}, nil
	case strings.HasPrefix(name, "S"):
		x, err := strconv.ParseFloat(name[1:], 64)
		if err != nil || x < 0 || x > 1 {
			return nil, fmt.Errorf("trigger: bad static threshold in %q", name)
		}
		return Static{X: x}, nil
	}
	return nil, fmt.Errorf("trigger: unknown trigger %q", name)
}

package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// sampleSnapshot builds a hand-made snapshot exercising every format
// feature: a parked PE (empty stack), multi-level stacks, domain state,
// a donor-capturing trace, and IDA* iteration state.  It is independent
// of the engine so the golden file pins the *format*, not the schedule.
func sampleSnapshot() *simd.Snapshot[synthetic.Node] {
	node := func(budget int64, seed uint64) synthetic.Node {
		return synthetic.Node{Budget: budget, Seed: seed}
	}
	s0 := stack.New[synthetic.Node](node(100, 1))
	s0.PushLevel([]synthetic.Node{node(40, 2), node(30, 3)})
	s1 := stack.New[synthetic.Node](node(90, 4))
	s2 := stack.New[synthetic.Node]() // parked PE: empty stack
	s3 := stack.New[synthetic.Node](node(80, 5))
	s3.PushLevel([]synthetic.Node{node(25, 6)})
	s3.PushLevel([]synthetic.Node{node(7, 7), node(6, 8), node(5, 9)})
	return &simd.Snapshot[synthetic.Node]{
		Cycle:          17,
		InitDone:       true,
		Stacks:         []*stack.Stack[synthetic.Node]{s0, s1, s2, s3},
		MatcherPointer: 2,
		PhaseCycles:    5,
		PhaseElapsed:   5 * time.Microsecond,
		PhaseWork:      18 * time.Microsecond,
		PhaseIdle:      2 * time.Microsecond,
		EstLB:          9 * time.Microsecond,
		Stats: metrics.Stats{
			P: 4, W: 61, Goals: 1,
			Cycles: 17, LBPhases: 3, Transfers: 5,
			InitCycles: 2, InitPhases: 1,
			Tcalc: 61 * time.Microsecond, Tidle: 7 * time.Microsecond,
			Tlb: 4 * time.Microsecond, Tpar: 18 * time.Microsecond,
			PeakStack: 9, MaxTransfer: 4,
		},
		DomainState: []byte{0x2a, 0x04},
		Trace: &trace.Trace{
			CaptureDonors: true,
			Samples: []trace.Sample{
				{Cycle: 1, Active: 4, R1: time.Microsecond, R2: 2 * time.Microsecond},
				{Cycle: 2, Active: 3, R1: 3 * time.Microsecond, R2: 4 * time.Microsecond},
			},
			Events: []trace.Event{
				{Cycle: 1, Transfers: 2, Cost: 6 * time.Microsecond, Donors: []int{0, 3}},
				{Cycle: 2, Transfers: 0, Cost: 0, Donors: []int{}},
			},
		},
		IDA: &simd.IDAState{
			Iteration: 2,
			Bound:     44,
			Done: []simd.IterationStat{
				{Bound: 40, Stats: metrics.Stats{P: 4, W: 10, Cycles: 4, Tcalc: 10 * time.Microsecond}},
				{Bound: 42, Stats: metrics.Stats{P: 4, W: 20, Cycles: 7, Tcalc: 20 * time.Microsecond}},
			},
		},
	}
}

var sampleMeta = Meta{
	Domain:   "synthetic(w=4000,seed=3)",
	Scheme:   "GP-DK",
	Topology: "hypercube",
	Extra:    []byte(`{"job":"demo"}`),
}

func encodeSample(t *testing.T) []byte {
	t.Helper()
	b, err := Encode[synthetic.Node](wire.SyntheticCodec{}, sampleMeta, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	b := encodeSample(t)
	meta, snap, err := Decode[synthetic.Node](wire.SyntheticCodec{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Domain != sampleMeta.Domain || meta.Scheme != sampleMeta.Scheme ||
		meta.Topology != sampleMeta.Topology || meta.Codec != "synthetic" ||
		meta.P != 4 || !bytes.Equal(meta.Extra, sampleMeta.Extra) {
		t.Errorf("meta mismatch: %+v", meta)
	}
	// The format is canonical: re-encoding the decoded checkpoint must
	// reproduce the input bytes exactly.
	b2, err := Encode[synthetic.Node](wire.SyntheticCodec{}, meta, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("decode→encode is not byte-identical")
	}
	want := sampleSnapshot()
	if snap.Cycle != want.Cycle || snap.InitDone != want.InitDone ||
		snap.MatcherPointer != want.MatcherPointer || snap.Stats != want.Stats ||
		snap.EstLB != want.EstLB || snap.PhaseCycles != want.PhaseCycles {
		t.Errorf("snapshot fields mismatch: %+v", snap)
	}
	for i := range want.Stacks {
		if snap.Stacks[i].Size() != want.Stacks[i].Size() || snap.Stacks[i].Depth() != want.Stacks[i].Depth() {
			t.Errorf("stack %d: size %d depth %d, want %d/%d", i,
				snap.Stacks[i].Size(), snap.Stacks[i].Depth(), want.Stacks[i].Size(), want.Stacks[i].Depth())
		}
	}
}

func TestPeek(t *testing.T) {
	b := encodeSample(t)
	meta, err := Peek(b)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Scheme != "GP-DK" || meta.Codec != "synthetic" || meta.P != 4 {
		t.Errorf("peeked meta: %+v", meta)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := encodeSample(t)
	// seal appends a fresh CRC to a CRC-less body, so the corruption
	// under test is reached rather than masked by a checksum mismatch.
	seal := func(body []byte) []byte {
		return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	}
	body := append([]byte(nil), valid[:len(valid)-crc32.Size]...)
	cases := []struct {
		name string
		b    []byte
		want error
		// peekOK marks corruptions that live in the body, which Peek
		// (a header read) legitimately does not see.
		peekOK bool
	}{
		{"empty", nil, ErrTruncated, false},
		{"short", []byte("SC"), ErrTruncated, false},
		{"bad magic", append([]byte("NOPE"), valid[4:]...), ErrBadMagic, false},
		{"wrong version", seal(append([]byte("SCKP\x02"), body[5:]...)), ErrVersion, false},
		{"bit flip", flipBit(valid, 40), ErrChecksum, false},
		{"truncated body", valid[:len(valid)-12], ErrChecksum, false},
		{"trailing bytes", seal(append(append([]byte(nil), body...), 0xEE)), ErrCorrupt, true},
		{"header only", valid[:6], ErrTruncated, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Decode[synthetic.Node](wire.SyntheticCodec{}, tc.b); !errors.Is(err, tc.want) {
				t.Errorf("Decode = %v, want %v", err, tc.want)
			}
			if _, err := Peek(tc.b); (err == nil) != tc.peekOK {
				t.Errorf("Peek err = %v, want failure=%v", err, !tc.peekOK)
			}
		})
	}
}

func TestDecodeCodecMismatch(t *testing.T) {
	b := encodeSample(t)
	if _, _, err := Decode[struct{}](badCodec{}, b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("codec mismatch: %v", err)
	}
}

type badCodec struct{}

func (badCodec) Name() string                             { return "bad" }
func (badCodec) AppendNode(buf []byte, _ struct{}) []byte { return buf }
func (badCodec) DecodeNode(b []byte) (struct{}, []byte, error) {
	return struct{}{}, b, nil
}

func flipBit(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x10
	return c
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.ckpt")
	if err := WriteFile[synthetic.Node](path, wire.SyntheticCodec{}, sampleMeta, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	meta, snap, err := ReadFile[synthetic.Node](path, wire.SyntheticCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Scheme != "GP-DK" || snap.Cycle != 17 {
		t.Errorf("read back meta=%+v cycle=%d", meta, snap.Cycle)
	}
	if meta2, err := PeekFile(path); err != nil || meta2.Scheme != "GP-DK" {
		t.Errorf("PeekFile: meta=%+v err=%v", meta2, err)
	}
	// Overwrite must be atomic: the new content replaces the old, and no
	// temp files are left behind.
	snap2 := sampleSnapshot()
	snap2.Cycle = 23
	snap2.Stats.Cycles = 23
	if err := WriteFile[synthetic.Node](path, wire.SyntheticCodec{}, sampleMeta, snap2); err != nil {
		t.Fatal(err)
	}
	if _, snap3, err := ReadFile[synthetic.Node](path, wire.SyntheticCodec{}); err != nil || snap3.Cycle != 23 {
		t.Errorf("after overwrite: cycle=%d err=%v", snap3.Cycle, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("spool dir has %d entries after atomic writes, want 1", len(entries))
	}
}

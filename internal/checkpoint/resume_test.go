package checkpoint

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// TestResumeEquivalence is the subsystem's load-bearing property: for
// every Table 1 scheme on both workloads, interrupting a run at cycle k,
// serialising the snapshot through the full Encode→Decode round trip and
// resuming in a fresh machine yields Stats and trace byte-identical to
// the uninterrupted run, for k at the start, middle and end of the
// schedule.
func TestResumeEquivalence(t *testing.T) {
	for _, label := range simd.Table1Labels(0.85) {
		label := label
		t.Run("synthetic/"+label, func(t *testing.T) {
			testResume[synthetic.Node](t, wire.SyntheticCodec{}, label, 32,
				func() search.Domain[synthetic.Node] { return synthetic.New(4000, 3) })
		})
		t.Run("puzzle/"+label, func(t *testing.T) {
			inst := puzzle.Scramble(5, 12)
			bound, _ := search.FinalIterationBound(puzzle.NewDomain(inst))
			testResume[puzzle.Node](t, wire.PuzzleCodec{}, label, 64,
				func() search.Domain[puzzle.Node] {
					return search.NewBounded(puzzle.NewDomain(inst), bound)
				})
		})
	}
}

func testResume[S any](t *testing.T, codec wire.Codec[S], label string, p int, newDomain func() search.Domain[S]) {
	t.Helper()
	parse := func() simd.Scheme[S] {
		sch, err := simd.ParseScheme[S](label)
		if err != nil {
			t.Fatal(err)
		}
		return sch
	}
	refTr := &trace.Trace{}
	ref, err := simd.Run[S](newDomain(), parse(), simd.Options{P: p, Trace: refTr})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cycles < 3 {
		t.Fatalf("reference run too short to interrupt: %d cycles", ref.Cycles)
	}

	ks := map[int]bool{1: true, ref.Cycles / 2: true, ref.Cycles - 1: true}
	for k := range ks {
		// Interrupt at cycle k via the cancellation path, exactly as a
		// SIGINT or server shutdown would.
		ctx, cancel := context.WithCancel(context.Background())
		opts := simd.Options{P: p, Trace: &trace.Trace{}, ProgressEvery: 1}
		opts.Progress = func(pi simd.ProgressInfo) {
			if pi.Cycles >= k {
				cancel()
			}
		}
		m, err := simd.NewMachine[S](newDomain(), parse(), opts)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if _, err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
			cancel()
			t.Fatalf("k=%d: interrupt: %v", k, err)
		}
		cancel()
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatalf("k=%d: snapshot: %v", k, err)
		}
		b, err := Encode[S](codec, Meta{Scheme: label}, snap)
		if err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}
		meta, decoded, err := Decode[S](codec, b)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		if meta.Scheme != label || meta.P != p {
			t.Fatalf("k=%d: meta %+v", k, meta)
		}
		resTr := &trace.Trace{}
		got, err := simd.ResumeContext[S](context.Background(), newDomain(), parse(), simd.Options{P: p, Trace: resTr}, decoded)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got != ref {
			t.Errorf("k=%d: resumed stats differ\n got %+v\nwant %+v", k, got, ref)
		}
		if !reflect.DeepEqual(resTr.Samples, refTr.Samples) || !reflect.DeepEqual(resTr.Events, refTr.Events) {
			t.Errorf("k=%d: resumed trace differs (samples %d/%d, events %d/%d)", k,
				len(resTr.Samples), len(refTr.Samples), len(resTr.Events), len(refTr.Events))
		}
	}
}

// TestResumeEquivalenceIDAStar extends the property across IDA*
// iteration boundaries: interrupt a parallel IDA* run mid-iteration,
// round-trip the checkpoint through the serialised format, resume, and
// require the aggregate result to match the uninterrupted run.
func TestResumeEquivalenceIDAStar(t *testing.T) {
	const label = "GP-DK"
	codec := wire.PuzzleCodec{}
	newDomain := func() search.CostDomain[puzzle.Node] { return puzzle.NewDomain(puzzle.Scramble(23, 30)) }
	parse := func() simd.Scheme[puzzle.Node] {
		sch, err := simd.ParseScheme[puzzle.Node](label)
		if err != nil {
			t.Fatal(err)
		}
		return sch
	}
	ref, err := simd.RunIDAStar[puzzle.Node](newDomain(), parse(), simd.Options{P: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Iterations) < 2 {
		t.Fatalf("reference solved in %d iteration(s); want a multi-iteration instance", len(ref.Iterations))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var blob []byte
	opts := simd.Options{P: 16, CheckpointEvery: 2}
	sink := func(s *simd.Snapshot[puzzle.Node]) error {
		b, err := Encode[puzzle.Node](codec, Meta{Scheme: label}, s)
		if err != nil {
			return err
		}
		blob = b
		if s.IDA.Iteration >= 1 {
			cancel()
		}
		return nil
	}
	if _, err := simd.RunIDAStarCheckpointed[puzzle.Node](ctx, newDomain(), parse(), opts, 0, nil, sink); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}
	if blob == nil {
		t.Fatal("no checkpoint written")
	}
	_, snap, err := Decode[puzzle.Node](codec, blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.IDA == nil {
		t.Fatal("checkpoint lacks IDA* state")
	}
	got, err := simd.RunIDAStarCheckpointed[puzzle.Node](context.Background(), newDomain(), parse(), simd.Options{P: 16}, 0, snap, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Stats != ref.Stats || got.Bound != ref.Bound {
		t.Errorf("resumed IDA* differs:\n got %+v bound %d\nwant %+v bound %d", got.Stats, got.Bound, ref.Stats, ref.Bound)
	}
	if !reflect.DeepEqual(got.Iterations, ref.Iterations) {
		t.Errorf("per-iteration stats differ:\n got %+v\nwant %+v", got.Iterations, ref.Iterations)
	}
}

// Package checkpoint serialises a simd.Snapshot into a versioned,
// CRC-guarded binary file so an in-flight search survives a process
// death.  The design follows the engine's determinism contract: because
// cancellation (and therefore checkpointing) happens only at cycle
// boundaries, a checkpoint is an exact prefix of the uninterrupted
// schedule, and restoring it and running to completion reproduces the
// uninterrupted run's Stats and trace byte for byte.
//
// The format is strict and canonical.  Decoding rejects bad magic, an
// unknown version byte, a CRC mismatch, truncation, trailing bytes and
// non-minimal structure with sentinel errors — it never panics on
// hostile input — and re-encoding a decoded checkpoint reproduces the
// original bytes exactly, which is how the golden-file compatibility
// test pins the format: any change to the layout must bump Version and
// teach Decode the old one, or the test fails.
//
// Layout (all integers varint/uvarint, strings and byte blobs
// uvarint-length-prefixed):
//
//	"SCKP" | version byte |
//	meta: domain scheme topology codec | P | extra |
//	flags byte | snapshot body | per-PE wire-encoded stacks |
//	CRC32-IEEE (little-endian) over everything before it
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/stack"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// Magic identifies a checkpoint file.
const Magic = "SCKP"

// Version is the current format version.  Any change to the byte layout
// must increment it; the golden-file test in this package exists to make
// silent format drift impossible.
const Version = 1

// Sentinel decode errors.  Every malformed input maps to exactly one of
// these (possibly wrapped with detail); none of them is ever a panic.
var (
	ErrBadMagic  = errors.New("checkpoint: not a checkpoint file")
	ErrVersion   = errors.New("checkpoint: unsupported format version")
	ErrChecksum  = errors.New("checkpoint: checksum mismatch")
	ErrTruncated = errors.New("checkpoint: truncated")
	ErrCorrupt   = errors.New("checkpoint: corrupt")
)

// maxP bounds the processor count a header may claim, so a corrupt
// header cannot trigger a huge allocation before the stack payloads are
// validated.
const maxP = 1 << 20

// Meta identifies what a checkpoint is a checkpoint of.  It is readable
// without the node codec (see Peek), which is how the server's spool
// rescan decides which decoder to use and which job a file belongs to.
type Meta struct {
	// Domain, Scheme and Topology name the run's configuration; they are
	// informational to this package but resume helpers compare them.
	Domain   string
	Scheme   string
	Topology string
	// Codec is the wire codec name the stacks were encoded with; Decode
	// refuses a codec whose Name differs.
	Codec string
	// P is the machine size; the body carries exactly P stacks.
	P int
	// Extra is an opaque application payload (the server stores the
	// canonical job-spec JSON here so a spooled file is self-describing).
	Extra []byte
}

// Encode serialises the snapshot.  meta.Codec and meta.P are derived
// from the codec and snapshot rather than trusted from the caller.
func Encode[S any](c wire.Codec[S], meta Meta, snap *simd.Snapshot[S]) ([]byte, error) {
	if c == nil {
		return nil, errors.New("checkpoint: nil codec")
	}
	if snap == nil {
		return nil, errors.New("checkpoint: nil snapshot")
	}
	meta.Codec = c.Name()
	meta.P = len(snap.Stacks)
	if meta.P == 0 || meta.P > maxP {
		return nil, fmt.Errorf("checkpoint: snapshot has %d stacks", meta.P)
	}
	var w writer
	w.raw(Magic)
	w.byte(Version)
	w.str(meta.Domain)
	w.str(meta.Scheme)
	w.str(meta.Topology)
	w.str(meta.Codec)
	w.uvarint(uint64(meta.P))
	w.blob(meta.Extra)

	var flags byte
	if snap.InitDone {
		flags |= flagInitDone
	}
	if len(snap.DomainState) > 0 {
		flags |= flagDomainState
	}
	if snap.Trace != nil {
		flags |= flagTrace
	}
	if snap.IDA != nil {
		flags |= flagIDA
	}
	w.byte(flags)
	w.uvarint(uint64(snap.Cycle))
	w.varint(int64(snap.MatcherPointer))
	w.uvarint(uint64(snap.PhaseCycles))
	w.varint(int64(snap.PhaseElapsed))
	w.varint(int64(snap.PhaseWork))
	w.varint(int64(snap.PhaseIdle))
	w.varint(int64(snap.EstLB))
	w.stats(snap.Stats)
	if len(snap.DomainState) > 0 {
		w.blob(snap.DomainState)
	}
	sb := wire.GetBuf()
	for _, s := range snap.Stacks {
		*sb = wire.AppendStack((*sb)[:0], c, s)
		w.blob(*sb)
	}
	wire.PutBuf(sb)
	if snap.Trace != nil {
		w.trace(snap.Trace)
	}
	if snap.IDA != nil {
		w.uvarint(uint64(snap.IDA.Iteration))
		w.varint(int64(snap.IDA.Bound))
		w.uvarint(uint64(len(snap.IDA.Done)))
		for _, it := range snap.IDA.Done {
			w.varint(int64(it.Bound))
			w.stats(it.Stats)
		}
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

// Decode parses a checkpoint produced by Encode with the same codec.  On
// success the returned snapshot owns all its data.
func Decode[S any](c wire.Codec[S], b []byte) (Meta, *simd.Snapshot[S], error) {
	if c == nil {
		return Meta{}, nil, errors.New("checkpoint: nil codec")
	}
	meta, r, err := header(b)
	if err != nil {
		return Meta{}, nil, err
	}
	if meta.Codec != c.Name() {
		return Meta{}, nil, fmt.Errorf("%w: stacks encoded with codec %q, decoding with %q", ErrCorrupt, meta.Codec, c.Name())
	}

	snap := &simd.Snapshot[S]{}
	flags := r.byte()
	if flags&^flagAll != 0 {
		return Meta{}, nil, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags&^flagAll)
	}
	snap.InitDone = flags&flagInitDone != 0
	snap.Cycle = r.count("cycle")
	snap.MatcherPointer = r.int("matcher pointer")
	snap.PhaseCycles = r.count("phase cycles")
	snap.PhaseElapsed = r.duration()
	snap.PhaseWork = r.duration()
	snap.PhaseIdle = r.duration()
	snap.EstLB = r.duration()
	snap.Stats = r.stats()
	if flags&flagDomainState != 0 {
		snap.DomainState = r.blob()
		if r.err == nil && snap.DomainState == nil {
			r.fail(fmt.Errorf("%w: domain-state flag set on empty payload", ErrCorrupt))
		}
	}
	snap.Stacks = make([]*stack.Stack[S], 0, meta.P)
	for i := 0; i < meta.P; i++ {
		payload := r.blob()
		if r.err != nil {
			break
		}
		s, err := wire.DecodeStack(c, payload)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("%w: stack %d: %v", ErrCorrupt, i, err)
		}
		snap.Stacks = append(snap.Stacks, s)
	}
	if flags&flagTrace != 0 {
		snap.Trace = r.trace()
	}
	if flags&flagIDA != 0 {
		ida := &simd.IDAState{}
		ida.Iteration = r.count("IDA* iteration")
		ida.Bound = r.int("IDA* bound")
		n := r.count("IDA* done iterations")
		if r.err == nil && n > r.remaining() {
			r.fail(fmt.Errorf("%w: %d done iterations in %d bytes", ErrCorrupt, n, r.remaining()))
		}
		for i := 0; i < n && r.err == nil; i++ {
			var it simd.IterationStat
			it.Bound = r.int("iteration bound")
			it.Stats = r.stats()
			ida.Done = append(ida.Done, it)
		}
		snap.IDA = ida
	}
	if r.err != nil {
		return Meta{}, nil, r.err
	}
	if r.remaining() != 0 {
		return Meta{}, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	if snap.MatcherPointer < -1 || snap.MatcherPointer >= meta.P {
		return Meta{}, nil, fmt.Errorf("%w: matcher pointer %d out of range for P=%d", ErrCorrupt, snap.MatcherPointer, meta.P)
	}
	return meta, snap, nil
}

// Peek reads the header of a checkpoint without decoding the body, and
// without needing the node codec.  It still verifies the CRC, so a file
// that Peeks clean is structurally intact end to end.
func Peek(b []byte) (Meta, error) {
	meta, _, err := header(b)
	return meta, err
}

// header validates magic, version and CRC, parses the meta block and
// returns a reader positioned at the flags byte, its window excluding
// the CRC trailer.
func header(b []byte) (Meta, *reader, error) {
	if len(b) < len(Magic)+1 {
		return Meta{}, nil, ErrTruncated
	}
	if string(b[:len(Magic)]) != Magic {
		return Meta{}, nil, ErrBadMagic
	}
	if v := b[len(Magic)]; v != Version {
		return Meta{}, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	if len(b) < len(Magic)+1+crc32.Size {
		return Meta{}, nil, ErrTruncated
	}
	body, trailer := b[:len(b)-crc32.Size], b[len(b)-crc32.Size:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return Meta{}, nil, ErrChecksum
	}
	r := &reader{b: body[len(Magic)+1:]}
	var meta Meta
	meta.Domain = r.str()
	meta.Scheme = r.str()
	meta.Topology = r.str()
	meta.Codec = r.str()
	meta.P = r.count("P")
	meta.Extra = r.blob()
	if r.err != nil {
		return Meta{}, nil, r.err
	}
	if meta.P == 0 || meta.P > maxP {
		return Meta{}, nil, fmt.Errorf("%w: P=%d out of range", ErrCorrupt, meta.P)
	}
	if len(meta.Extra) == 0 {
		meta.Extra = nil
	}
	return meta, r, nil
}

// WriteFile atomically writes the encoded checkpoint: encode to memory,
// write to a temp file in the target directory, fsync, rename.  A crash
// mid-write leaves either the previous checkpoint or none — never a
// torn file (the CRC catches torn renames on filesystems without atomic
// rename, turning them into a clean decode error).
func WriteFile[S any](path string, c wire.Codec[S], meta Meta, snap *simd.Snapshot[S]) error {
	b, err := Encode(c, meta, snap)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup after a failed write
	}
	return err
}

// ReadFile reads and decodes a checkpoint file.
func ReadFile[S any](path string, c wire.Codec[S]) (Meta, *simd.Snapshot[S], error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, err
	}
	return Decode(c, b)
}

// PeekFile reads only the meta block (plus CRC verification) of a file.
func PeekFile(path string) (Meta, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, err
	}
	return Peek(b)
}

const (
	flagInitDone byte = 1 << iota
	flagDomainState
	flagTrace
	flagIDA
	flagDonors

	flagAll = flagInitDone | flagDomainState | flagTrace | flagIDA | flagDonors
)

// writer appends the canonical encoding; it cannot fail.
type writer struct{ buf []byte }

func (w *writer) raw(s string)     { w.buf = append(w.buf, s...) }
func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) blob(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.raw(s)
}

func (w *writer) stats(st metrics.Stats) {
	w.uvarint(uint64(st.P))
	w.varint(st.W)
	w.varint(st.Goals)
	w.uvarint(uint64(st.Cycles))
	w.uvarint(uint64(st.LBPhases))
	w.uvarint(uint64(st.Transfers))
	w.uvarint(uint64(st.InitCycles))
	w.uvarint(uint64(st.InitPhases))
	w.varint(int64(st.Tcalc))
	w.varint(int64(st.Tidle))
	w.varint(int64(st.Tlb))
	w.varint(int64(st.Tpar))
	w.uvarint(uint64(st.PeakStack))
	w.uvarint(uint64(st.MaxTransfer))
	// Cancelled is deliberately not stored: a checkpoint is a clean
	// prefix, and a resumed run's final Cancelled must reflect the
	// resumed run, not the interrupted one.
}

func (w *writer) trace(t *trace.Trace) {
	var f byte
	if t.CaptureDonors {
		f = flagDonors
	}
	w.byte(f)
	w.uvarint(uint64(len(t.Samples)))
	for _, s := range t.Samples {
		w.uvarint(uint64(s.Cycle))
		w.uvarint(uint64(s.Active))
		w.varint(int64(s.R1))
		w.varint(int64(s.R2))
	}
	w.uvarint(uint64(len(t.Events)))
	for _, e := range t.Events {
		w.uvarint(uint64(e.Cycle))
		w.uvarint(uint64(e.Transfers))
		w.varint(int64(e.Cost))
		if e.Donors == nil {
			w.uvarint(0)
		} else {
			w.uvarint(uint64(len(e.Donors)) + 1)
			for _, d := range e.Donors {
				w.uvarint(uint64(d))
			}
		}
	}
}

// reader consumes the canonical encoding, latching the first error so
// callers can decode a whole section and check once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) remaining() int { return len(r.b) }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	switch {
	case n == 0:
		r.fail(ErrTruncated)
		return 0
	case n < 0:
		r.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		return 0
	case n > 1 && r.b[n-1] == 0:
		// A minimal varint never ends in a zero continuation group; the
		// format is canonical, so re-encoding must reproduce the input.
		r.fail(fmt.Errorf("%w: non-minimal varint", ErrCorrupt))
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	u := r.uvarint()
	// Inverse zigzag, as binary.Varint does over binary.Uvarint.
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v
}

// count reads a non-negative int-sized value, the common case for
// cycle/phase counters and lengths.
func (r *reader) count(what string) int {
	v := r.uvarint()
	if r.err == nil && v > math.MaxInt {
		r.fail(fmt.Errorf("%w: %s %d overflows int", ErrCorrupt, what, v))
		return 0
	}
	return int(v)
}

// int reads a signed int-sized value.
func (r *reader) int(what string) int {
	v := r.varint()
	if r.err == nil && (v > math.MaxInt || v < math.MinInt) {
		r.fail(fmt.Errorf("%w: %s %d overflows int", ErrCorrupt, what, v))
		return 0
	}
	return int(v)
}

func (r *reader) duration() time.Duration { return time.Duration(r.varint()) }

func (r *reader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(fmt.Errorf("%w: blob of %d bytes with %d remaining", ErrCorrupt, n, len(r.b)))
		return nil
	}
	if n == 0 {
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.blob()) }

func (r *reader) stats() metrics.Stats {
	var st metrics.Stats
	st.P = r.count("stats P")
	st.W = r.varint()
	st.Goals = r.varint()
	st.Cycles = r.count("stats cycles")
	st.LBPhases = r.count("stats LB phases")
	st.Transfers = r.count("stats transfers")
	st.InitCycles = r.count("stats init cycles")
	st.InitPhases = r.count("stats init phases")
	st.Tcalc = r.duration()
	st.Tidle = r.duration()
	st.Tlb = r.duration()
	st.Tpar = r.duration()
	st.PeakStack = r.count("stats peak stack")
	st.MaxTransfer = r.count("stats max transfer")
	return st
}

func (r *reader) trace() *trace.Trace {
	t := &trace.Trace{}
	f := r.byte()
	if r.err == nil && f&^flagDonors != 0 {
		r.fail(fmt.Errorf("%w: unknown trace flag bits %#x", ErrCorrupt, f&^flagDonors))
		return nil
	}
	t.CaptureDonors = f&flagDonors != 0
	ns := r.count("trace samples")
	if r.err == nil && ns > r.remaining() {
		r.fail(fmt.Errorf("%w: %d trace samples in %d bytes", ErrCorrupt, ns, r.remaining()))
		return nil
	}
	for i := 0; i < ns && r.err == nil; i++ {
		var s trace.Sample
		s.Cycle = r.count("sample cycle")
		s.Active = r.count("sample active")
		s.R1 = r.duration()
		s.R2 = r.duration()
		t.Samples = append(t.Samples, s)
	}
	ne := r.count("trace events")
	if r.err == nil && ne > r.remaining() {
		r.fail(fmt.Errorf("%w: %d trace events in %d bytes", ErrCorrupt, ne, r.remaining()))
		return nil
	}
	for i := 0; i < ne && r.err == nil; i++ {
		var e trace.Event
		e.Cycle = r.count("event cycle")
		e.Transfers = r.count("event transfers")
		e.Cost = r.duration()
		nd := r.count("event donors")
		if nd > 0 {
			nd--
			if r.err == nil && nd > r.remaining() {
				r.fail(fmt.Errorf("%w: %d donors in %d bytes", ErrCorrupt, nd, r.remaining()))
				return nil
			}
			e.Donors = make([]int, 0, nd)
			for j := 0; j < nd && r.err == nil; j++ {
				e.Donors = append(e.Donors, r.count("donor"))
			}
		}
		t.Events = append(t.Events, e)
	}
	return t
}

package checkpoint

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

var update = flag.Bool("update", false, "regenerate golden checkpoint files")

const goldenPath = "testdata/golden_v1.ckpt"

// TestGoldenCompatibility pins the on-disk format.  The golden file is
// the byte-exact encoding of sampleSnapshot under the current Version;
// any layout change breaks the byte comparison, and the test only
// tolerates that when the version byte was bumped too — so a format
// change can never masquerade as the old version.  Regenerate with
// `go test ./internal/checkpoint -run Golden -update` after bumping.
func TestGoldenCompatibility(t *testing.T) {
	got := encodeSample(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	const versionOff = len(Magic)
	if bytes.Equal(got, want) {
		// Same version, same bytes: decode the pinned file and require a
		// canonical re-encode, the full compatibility round trip.
		meta, snap, err := Decode[synthetic.Node](wire.SyntheticCodec{}, want)
		if err != nil {
			t.Fatalf("decoding golden file: %v", err)
		}
		re, err := Encode[synthetic.Node](wire.SyntheticCodec{}, meta, snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, want) {
			t.Error("golden file does not re-encode byte-identically")
		}
		return
	}
	if got[versionOff] == want[versionOff] {
		t.Fatalf("checkpoint layout changed but Version is still %d; bump Version, keep decoding v%d, and regenerate the golden file with -update",
			Version, want[versionOff])
	}
	// Version was bumped: files written by the old version must be
	// rejected cleanly, never misparsed as the new layout.
	if _, _, err := Decode[synthetic.Node](wire.SyntheticCodec{}, want); !errors.Is(err, ErrVersion) {
		t.Fatalf("old-version golden file decodes as %v, want ErrVersion", err)
	}
	t.Logf("note: Version bumped to %d; regenerate %s with -update once the new layout settles", Version, goldenPath)
}

package checkpoint

import (
	"fmt"
	"io"
)

// Checkpoint-over-HTTP framing.  An SCKP checkpoint is self-framing —
// magic, version byte and CRC trailer — so the HTTP body of a shipped
// checkpoint is exactly the bytes the spool holds on disk, and the same
// validation (Peek) that guards a spool rescan guards a network
// transfer.  These helpers exist so the fleet layer (internal/cluster)
// and the node-side import endpoint agree on the media type and the
// size bound without re-deriving either.

// ContentType is the media type of a raw SCKP checkpoint shipped over
// HTTP, used by the node's export/import endpoints and the fleet
// coordinator's checkpoint puller.
const ContentType = "application/vnd.simdtree.sckp"

// MaxFrameSize bounds a checkpoint-over-HTTP body.  A P=2^16 machine
// with deep stacks encodes well under this; anything larger is a
// corrupt or hostile frame, not a checkpoint.
const MaxFrameSize = 64 << 20

// ReadFrame reads one SCKP frame from r, enforcing MaxFrameSize, and
// validates it end to end (magic, version, CRC) via Peek.  It returns
// the raw bytes — suitable for re-spooling or for Decode with the
// domain codec — together with the parsed Meta.
func ReadFrame(r io.Reader) ([]byte, Meta, error) {
	b, err := io.ReadAll(io.LimitReader(r, MaxFrameSize+1))
	if err != nil {
		return nil, Meta{}, err
	}
	if len(b) > MaxFrameSize {
		return nil, Meta{}, fmt.Errorf("checkpoint: frame exceeds %d bytes", MaxFrameSize)
	}
	meta, err := Peek(b)
	if err != nil {
		return nil, Meta{}, err
	}
	return b, meta, nil
}

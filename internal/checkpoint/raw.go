package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/trace"
)

// RawSnapshot is a codec-erased simd.Snapshot: the per-PE stacks are kept
// as their wire payloads instead of decoded node values.  It is the
// coordinator-side view of a distributed run — the coordinator assembles
// and ships checkpoints for jobs whose node type it never links — and
// EncodeRaw/DecodeRaw are exact byte-level duals of Encode/Decode: a
// checkpoint encoded raw from payloads that wire-encode the same stacks
// is byte-identical to the generic encoding, and decoding raw then
// re-encoding reproduces the input.
type RawSnapshot struct {
	// Cycle is the number of completed expansion cycles (== Stats.Cycles).
	Cycle int
	// InitDone reports the initial-distribution phase has completed.
	InitDone bool
	// Stacks holds one wire.EncodeStack payload per PE.
	Stacks [][]byte
	// MatcherPointer is the GP global pointer (-1 when parked).
	MatcherPointer int

	// Search-phase accumulators since the last load-balancing phase.
	PhaseCycles  int
	PhaseElapsed time.Duration
	PhaseWork    time.Duration
	PhaseIdle    time.Duration
	// EstLB is L, the projected cost of the next balancing phase.
	EstLB time.Duration

	// Stats are the cumulative aggregates of the prefix.
	Stats metrics.Stats

	// DomainState is the opaque payload of a stateful domain; nil for
	// stateless ones.
	DomainState []byte

	// Trace is the recorded prefix trace; nil when the run is untraced.
	Trace *trace.Trace
}

// EncodeRaw serialises a raw snapshot in the exact SCKP layout of Encode.
// Unlike Encode it cannot derive meta.Codec, so the caller must supply the
// codec name of the stack payloads (normally carried over from the
// checkpoint the payloads were sourced from).  IDA* state has no raw form;
// distributed runs operate within one cost-bounded iteration.
func EncodeRaw(meta Meta, snap *RawSnapshot) ([]byte, error) {
	if snap == nil {
		return nil, errors.New("checkpoint: nil snapshot")
	}
	if meta.Codec == "" {
		return nil, errors.New("checkpoint: raw encode requires meta.Codec")
	}
	meta.P = len(snap.Stacks)
	if meta.P == 0 || meta.P > maxP {
		return nil, fmt.Errorf("checkpoint: snapshot has %d stacks", meta.P)
	}
	for i, payload := range snap.Stacks {
		if len(payload) == 0 {
			return nil, fmt.Errorf("checkpoint: stack %d has an empty payload", i)
		}
	}
	var w writer
	w.raw(Magic)
	w.byte(Version)
	w.str(meta.Domain)
	w.str(meta.Scheme)
	w.str(meta.Topology)
	w.str(meta.Codec)
	w.uvarint(uint64(meta.P))
	w.blob(meta.Extra)

	var flags byte
	if snap.InitDone {
		flags |= flagInitDone
	}
	if len(snap.DomainState) > 0 {
		flags |= flagDomainState
	}
	if snap.Trace != nil {
		flags |= flagTrace
	}
	w.byte(flags)
	w.uvarint(uint64(snap.Cycle))
	w.varint(int64(snap.MatcherPointer))
	w.uvarint(uint64(snap.PhaseCycles))
	w.varint(int64(snap.PhaseElapsed))
	w.varint(int64(snap.PhaseWork))
	w.varint(int64(snap.PhaseIdle))
	w.varint(int64(snap.EstLB))
	w.stats(snap.Stats)
	if len(snap.DomainState) > 0 {
		w.blob(snap.DomainState)
	}
	for _, payload := range snap.Stacks {
		w.blob(payload)
	}
	if snap.Trace != nil {
		w.trace(snap.Trace)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

// DecodeRaw parses a checkpoint without decoding the stack payloads, which
// stay as opaque wire encodings (structurally validated only when a shard
// machine installs them).  It rejects IDA* checkpoints: their iteration
// state has no raw form.
func DecodeRaw(b []byte) (Meta, *RawSnapshot, error) {
	meta, r, err := header(b)
	if err != nil {
		return Meta{}, nil, err
	}
	snap := &RawSnapshot{}
	flags := r.byte()
	if flags&^flagAll != 0 {
		return Meta{}, nil, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags&^flagAll)
	}
	if flags&flagIDA != 0 {
		return Meta{}, nil, fmt.Errorf("%w: IDA* checkpoints have no raw decoding", ErrCorrupt)
	}
	snap.InitDone = flags&flagInitDone != 0
	snap.Cycle = r.count("cycle")
	snap.MatcherPointer = r.int("matcher pointer")
	snap.PhaseCycles = r.count("phase cycles")
	snap.PhaseElapsed = r.duration()
	snap.PhaseWork = r.duration()
	snap.PhaseIdle = r.duration()
	snap.EstLB = r.duration()
	snap.Stats = r.stats()
	if flags&flagDomainState != 0 {
		snap.DomainState = r.blob()
		if r.err == nil && snap.DomainState == nil {
			r.fail(fmt.Errorf("%w: domain-state flag set on empty payload", ErrCorrupt))
		}
	}
	snap.Stacks = make([][]byte, 0, meta.P)
	for i := 0; i < meta.P; i++ {
		payload := r.blob()
		if r.err != nil {
			break
		}
		if len(payload) == 0 {
			return Meta{}, nil, fmt.Errorf("%w: stack %d has an empty payload", ErrCorrupt, i)
		}
		snap.Stacks = append(snap.Stacks, payload)
	}
	if flags&flagTrace != 0 {
		snap.Trace = r.trace()
	}
	if r.err != nil {
		return Meta{}, nil, r.err
	}
	if r.remaining() != 0 {
		return Meta{}, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	if snap.MatcherPointer < -1 || snap.MatcherPointer >= meta.P {
		return Meta{}, nil, fmt.Errorf("%w: matcher pointer %d out of range for P=%d", ErrCorrupt, snap.MatcherPointer, meta.P)
	}
	return meta, snap, nil
}

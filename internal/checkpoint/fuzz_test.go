package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// FuzzDecodeCheckpoint hammers the strict decoder: any input either
// decodes cleanly or returns an error — never a panic, never an
// unbounded allocation.  A successful decode must be canonical
// (re-encode byte-identical) and Peek must agree with Decode's meta.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid := mustEncodeSample(f)
	reseal := func(mutate func(body []byte) []byte) []byte {
		body := append([]byte(nil), valid[:len(valid)-crc32.Size]...)
		body = mutate(body)
		return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	}
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                 // truncated
	f.Add(valid[:len(valid)-1])                 // CRC clipped
	f.Add(flipBitF(valid, len(valid)/3))        // bit flip, CRC stale
	f.Add(append([]byte("NOPE"), valid[4:]...)) // bad magic
	f.Add([]byte("SCKP"))                       // magic only
	f.Add(reseal(func(b []byte) []byte {        // wrong version, valid CRC
		b[4] = 0x7F
		return b
	}))
	f.Add(reseal(func(b []byte) []byte { // trailing byte, valid CRC
		return append(b, 0x00)
	}))
	f.Add(reseal(func(b []byte) []byte { // body bit flip, valid CRC
		b[len(b)/2] ^= 0x40
		return b
	}))

	codec := wire.SyntheticCodec{}
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, snap, err := Decode[synthetic.Node](codec, data)
		if err != nil {
			return
		}
		re, err := Encode[synthetic.Node](codec, meta, snap)
		if err != nil {
			t.Fatalf("decoded checkpoint fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode→encode not canonical:\n in %x\nout %x", data, re)
		}
		pm, err := Peek(data)
		if err != nil {
			t.Fatalf("Decode accepted what Peek rejects: %v", err)
		}
		if pm.Codec != meta.Codec || pm.P != meta.P || pm.Scheme != meta.Scheme {
			t.Fatalf("Peek meta %+v disagrees with Decode meta %+v", pm, meta)
		}
	})
}

func mustEncodeSample(f *testing.F) []byte {
	b, err := Encode[synthetic.Node](wire.SyntheticCodec{}, sampleMeta, sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	return b
}

func flipBitF(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x10
	return c
}

// Package steal implements distributed load balancing across simdserve
// nodes: one job runs as coordinated shards — full-size machines that each
// hold a contiguous PE range — stepped in lock-step by a coordinator-side
// driver that owns the global schedule (trigger evaluation, matching, the
// GP pointer, the stats/trace ledger).  Because every scheduling decision
// of the engine's run loop is a function of globally reduced scalars, the
// distributed schedule is byte-identical to the single-machine one; split
// stack halves cross nodes as Frames, the work-transfer message of the
// paper's model made literal.
package steal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a steal frame.
const Magic = "SSTL"

// Version is the current frame format version; any layout change must
// increment it.
const Version = 1

// ContentType is the media type donation frames travel under.
const ContentType = "application/vnd.simdtree.steal"

// MaxFrameSize bounds a frame a node will accept.  A donation carries one
// split stack half — a few levels — so this is generous.
const MaxFrameSize = 8 << 20

// Sentinel decode errors; hostile input maps to exactly one of these
// (possibly wrapped), never a panic.
var (
	ErrBadMagic  = errors.New("steal: not a steal frame")
	ErrVersion   = errors.New("steal: unsupported frame version")
	ErrChecksum  = errors.New("steal: checksum mismatch")
	ErrTruncated = errors.New("steal: truncated frame")
	ErrCorrupt   = errors.New("steal: corrupt frame")
)

// Frame is one donated stack half in flight between nodes, carrying
// everything the receiver needs to install it deterministically: the job
// it belongs to, the coordinator-minted donation sequence number (total
// order over the run's donations, so replays are byte-identical), the
// cycle boundary it was split at, the global donor and receiver PE
// indices, and the wire-encoded stack levels.
//
// Layout (strings and blobs uvarint-length-prefixed, integers canonical
// varints):
//
//	"SSTL" | version byte |
//	key | codec | donation | cycle | from | to |
//	flags byte | stack blob | [domain blob] |
//	CRC32-IEEE (little-endian) over everything before it
type Frame struct {
	// Key is the cache key of the job the donation belongs to.
	Key string
	// Codec names the wire codec of the stack payload; the receiver
	// refuses a mismatch.
	Codec string
	// Donation is the coordinator-assigned sequence number.
	Donation uint64
	// Cycle is the expansion-cycle boundary the donation was split at.
	Cycle int
	// From and To are global PE indices (donor and receiver).
	From, To int
	// Stack is the wire.EncodeStack payload of the donated levels; it is
	// never empty (empty donations are not shipped).
	Stack []byte
	// DomainState optionally carries stateful-domain state; the lock-step
	// driver never ships it (shards merge state at checkpoint assembly),
	// but the format reserves it for asynchronous protocols.
	DomainState []byte
}

const frameDomainFlag byte = 1 << 0

// EncodeFrame serialises the frame canonically.
func EncodeFrame(f *Frame) ([]byte, error) {
	if f == nil {
		return nil, errors.New("steal: nil frame")
	}
	if len(f.Stack) == 0 {
		return nil, errors.New("steal: frame has an empty stack payload")
	}
	if f.Cycle < 0 || f.From < 0 || f.To < 0 {
		return nil, fmt.Errorf("steal: negative frame field (cycle %d, from %d, to %d)", f.Cycle, f.From, f.To)
	}
	buf := make([]byte, 0, len(Magic)+1+len(f.Key)+len(f.Codec)+len(f.Stack)+len(f.DomainState)+64)
	buf = append(buf, Magic...)
	buf = append(buf, Version)
	buf = appendBlob(buf, []byte(f.Key))
	buf = appendBlob(buf, []byte(f.Codec))
	buf = binary.AppendUvarint(buf, f.Donation)
	buf = binary.AppendUvarint(buf, uint64(f.Cycle))
	buf = binary.AppendUvarint(buf, uint64(f.From))
	buf = binary.AppendUvarint(buf, uint64(f.To))
	var flags byte
	if len(f.DomainState) > 0 {
		flags |= frameDomainFlag
	}
	buf = append(buf, flags)
	buf = appendBlob(buf, f.Stack)
	if len(f.DomainState) > 0 {
		buf = appendBlob(buf, f.DomainState)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeFrame parses a frame produced by EncodeFrame.  The format is
// strict and canonical: bad magic, version, CRC, truncation, non-minimal
// varints, unknown flags and trailing bytes are all rejected, and
// re-encoding a decoded frame reproduces the input bytes exactly.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes exceeds the %d-byte frame bound", ErrCorrupt, len(b), MaxFrameSize)
	}
	if len(b) < len(Magic)+1 {
		return nil, ErrTruncated
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if v := b[len(Magic)]; v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	if len(b) < len(Magic)+1+crc32.Size {
		return nil, ErrTruncated
	}
	body, trailer := b[:len(b)-crc32.Size], b[len(b)-crc32.Size:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	r := frameReader{b: body[len(Magic)+1:]}
	f := &Frame{}
	f.Key = string(r.blob("key"))
	f.Codec = string(r.blob("codec"))
	f.Donation = r.uvarint("donation")
	f.Cycle = r.count("cycle")
	f.From = r.count("from")
	f.To = r.count("to")
	flags := r.byte()
	if r.err == nil && flags&^frameDomainFlag != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags&^frameDomainFlag)
	}
	f.Stack = r.blob("stack")
	if r.err == nil && len(f.Stack) == 0 {
		return nil, fmt.Errorf("%w: empty stack payload", ErrCorrupt)
	}
	if flags&frameDomainFlag != 0 {
		f.DomainState = r.blob("domain state")
		if r.err == nil && len(f.DomainState) == 0 {
			return nil, fmt.Errorf("%w: domain-state flag set on empty payload", ErrCorrupt)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	return f, nil
}

// appendBlob appends a uvarint-length-prefixed byte blob.
func appendBlob(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// frameReader consumes the canonical frame encoding, latching the first
// error like the checkpoint reader does.
type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *frameReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *frameReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	switch {
	case n == 0:
		r.fail(fmt.Errorf("%w: %s", ErrTruncated, what))
		return 0
	case n < 0:
		r.fail(fmt.Errorf("%w: %s varint overflow", ErrCorrupt, what))
		return 0
	case n > 1 && r.b[n-1] == 0:
		// Minimal varints never end in a zero continuation group; the
		// format is canonical so re-encoding must reproduce the input.
		r.fail(fmt.Errorf("%w: non-minimal %s varint", ErrCorrupt, what))
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *frameReader) count(what string) int {
	v := r.uvarint(what)
	if r.err == nil && v > uint64(int(^uint(0)>>1)) {
		r.fail(fmt.Errorf("%w: %s %d overflows int", ErrCorrupt, what, v))
		return 0
	}
	return int(v)
}

func (r *frameReader) blob(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(fmt.Errorf("%w: %s blob of %d bytes with %d remaining", ErrCorrupt, what, n, len(r.b)))
		return nil
	}
	if n == 0 {
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}

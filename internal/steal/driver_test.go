package steal

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"simdtree/internal/checkpoint"
	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// TestDriverByteIdentity is the subsystem's load-bearing property: for
// every Table 1 scheme on both workloads, interrupting a single-machine
// run at cycle k, sharding the checkpoint across in-process shard hosts
// and finishing it under the distributed driver yields Stats, trace and
// periodic checkpoints byte-identical to the uninterrupted single-machine
// run.
func TestDriverByteIdentity(t *testing.T) {
	for _, label := range simd.Table1Labels(0.85) {
		label := label
		t.Run("synthetic/"+label, func(t *testing.T) {
			testDriver[synthetic.Node](t, wire.SyntheticCodec{}, label, 32, 3,
				func() search.Domain[synthetic.Node] { return synthetic.New(4000, 3) })
		})
		t.Run("puzzle/"+label, func(t *testing.T) {
			inst := puzzle.Scramble(5, 12)
			bound, _ := search.FinalIterationBound(puzzle.NewDomain(inst))
			testDriver[puzzle.Node](t, wire.PuzzleCodec{}, label, 64, 2,
				func() search.Domain[puzzle.Node] {
					return search.NewBounded(puzzle.NewDomain(inst), bound)
				})
		})
	}
}

// shardRanges splits [0, p) into n contiguous ranges.
func shardRanges(p, n int) [][2]int {
	ranges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*p/n, (i+1)*p/n
		if lo < hi {
			ranges = append(ranges, [2]int{lo, hi})
		}
	}
	return ranges
}

// buildShards decodes a donated checkpoint into n in-process shard hosts.
func buildShards[S any](t *testing.T, codec wire.Codec[S], label string, p, n int, raw *checkpoint.RawSnapshot, newDomain func() search.Domain[S]) []Shard {
	t.Helper()
	var shards []Shard
	for _, r := range shardRanges(p, n) {
		lo, hi := r[0], r[1]
		h, err := NewHost[S](newDomain(), codec, label, simd.Options{P: p}, lo, hi, raw.Stacks[lo:hi], raw.DomainState)
		if err != nil {
			t.Fatalf("shard [%d, %d): %v", lo, hi, err)
		}
		shards = append(shards, LocalShard{H: h})
	}
	return shards
}

func testDriver[S any](t *testing.T, codec wire.Codec[S], label string, p, nShards int, newDomain func() search.Domain[S]) {
	t.Helper()
	const every = 16
	parse := func() simd.Scheme[S] {
		sch, err := simd.ParseScheme[S](label)
		if err != nil {
			t.Fatal(err)
		}
		return sch
	}

	// Reference: the uninterrupted single-machine run, with its trace and
	// every periodic checkpoint.
	refTr := &trace.Trace{}
	refCkpts := map[int][]byte{}
	m, err := simd.NewMachine[S](newDomain(), parse(), simd.Options{P: p, Trace: refTr, CheckpointEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	m.OnCheckpoint(func(s *simd.Snapshot[S]) error {
		b, err := checkpoint.Encode[S](codec, checkpoint.Meta{Scheme: label}, s)
		if err != nil {
			return err
		}
		refCkpts[s.Cycle] = b
		return nil
	})
	ref, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cycles < 3 {
		t.Fatalf("reference run too short to interrupt: %d cycles", ref.Cycles)
	}

	parts, err := simd.ParseSchemeParts(label)
	if err != nil {
		t.Fatal(err)
	}

	ks := map[int]bool{1: true, ref.Cycles / 2: true, ref.Cycles - 1: true}
	for k := range ks {
		// Interrupt a fresh run at cycle k — the donation point.
		ctx, cancel := context.WithCancel(context.Background())
		opts := simd.Options{P: p, Trace: &trace.Trace{}, ProgressEvery: 1}
		opts.Progress = func(pi simd.ProgressInfo) {
			if pi.Cycles >= k {
				cancel()
			}
		}
		im, err := simd.NewMachine[S](newDomain(), parse(), opts)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if _, err := im.RunContext(ctx); !errors.Is(err, context.Canceled) {
			cancel()
			t.Fatalf("k=%d: interrupt: %v", k, err)
		}
		cancel()
		snap, err := im.Snapshot()
		if err != nil {
			t.Fatalf("k=%d: snapshot: %v", k, err)
		}
		donated, err := checkpoint.Encode[S](codec, checkpoint.Meta{Scheme: label}, snap)
		if err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}

		// The coordinator sees only the encoded checkpoint: decode raw,
		// shard the stacks across hosts, and drive.
		meta, raw, err := checkpoint.DecodeRaw(donated)
		if err != nil {
			t.Fatalf("k=%d: decode raw: %v", k, err)
		}
		shards := buildShards[S](t, codec, label, p, nShards, raw, newDomain)
		gotCkpts := map[int][]byte{}
		d, err := NewDriver(Config{
			Key:             "test-key",
			Meta:            meta,
			Scheme:          parts,
			P:               p,
			CheckpointEvery: every,
			OnCheckpoint: func(_ context.Context, b []byte) error {
				_, rs, err := checkpoint.DecodeRaw(b)
				if err != nil {
					return err
				}
				gotCkpts[rs.Cycle] = b
				return nil
			},
		}, raw, shards)
		if err != nil {
			t.Fatalf("k=%d: driver: %v", k, err)
		}
		res, err := d.Run(context.Background())
		if err != nil {
			t.Fatalf("k=%d: distributed run: %v", k, err)
		}

		if res.Stats != ref {
			t.Errorf("k=%d: distributed stats differ\n got %+v\nwant %+v", k, res.Stats, ref)
		}
		if !reflect.DeepEqual(res.Trace.Samples, refTr.Samples) || !reflect.DeepEqual(res.Trace.Events, refTr.Events) {
			t.Errorf("k=%d: distributed trace differs (samples %d/%d, events %d/%d)", k,
				len(res.Trace.Samples), len(refTr.Samples), len(res.Trace.Events), len(refTr.Events))
		}
		for c, b := range gotCkpts {
			want, ok := refCkpts[c]
			if !ok {
				t.Errorf("k=%d: distributed run checkpointed at cycle %d, reference did not", k, c)
				continue
			}
			if !bytes.Equal(b, want) {
				t.Errorf("k=%d: checkpoint at cycle %d differs from the single-machine bytes", k, c)
			}
		}
		if rest := ref.Transfers - raw.Stats.Transfers; rest > 0 && res.Donations+res.LocalTransfers == 0 {
			t.Errorf("k=%d: %d transfers remained after donation but the distributed run moved nothing", k, rest)
		}
	}
}

// TestDriverDonatesAcrossShards pins that sharding an early checkpoint
// actually ships cross-shard donation frames (not just shard-local
// transfers) — the distributed case the subsystem exists for.
func TestDriverDonatesAcrossShards(t *testing.T) {
	const label = "GP-DK"
	const p = 32
	newDomain := func() search.Domain[synthetic.Node] { return synthetic.New(4000, 3) }
	sch, err := simd.ParseScheme[synthetic.Node](label)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := simd.Options{P: p, ProgressEvery: 1}
	opts.Progress = func(pi simd.ProgressInfo) {
		if pi.Cycles >= 1 {
			cancel()
		}
	}
	m, err := simd.NewMachine[synthetic.Node](newDomain(), sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	donated, err := checkpoint.Encode[synthetic.Node](wire.SyntheticCodec{}, checkpoint.Meta{Scheme: label}, snap)
	if err != nil {
		t.Fatal(err)
	}
	meta, raw, err := checkpoint.DecodeRaw(donated)
	if err != nil {
		t.Fatal(err)
	}
	shards := buildShards[synthetic.Node](t, wire.SyntheticCodec{}, label, p, 2, raw, newDomain)
	parts, err := simd.ParseSchemeParts(label)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(Config{Key: "k", Meta: meta, Scheme: parts, P: p}, raw, shards)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Donations == 0 {
		t.Error("one cycle of work sharded across two nodes produced no cross-shard donations")
	}
}

// TestDriverResumeFromCancelCheckpoint drives a sharded run, cancels it
// mid-flight, and finishes from the final cancel checkpoint on a fresh
// set of shards — the failover path — requiring the completed schedule to
// match the uninterrupted single-machine run.
func TestDriverResumeFromCancelCheckpoint(t *testing.T) {
	const label = "GP-DP"
	const p = 32
	newDomain := func() search.Domain[synthetic.Node] { return synthetic.New(4000, 7) }
	sch, err := simd.ParseScheme[synthetic.Node](label)
	if err != nil {
		t.Fatal(err)
	}
	refTr := &trace.Trace{}
	ref, err := simd.Run[synthetic.Node](newDomain(), sch, simd.Options{P: p, Trace: refTr})
	if err != nil {
		t.Fatal(err)
	}

	// Donate at cycle 1.
	ctx, cancel := context.WithCancel(context.Background())
	opts := simd.Options{P: p, Trace: &trace.Trace{}, ProgressEvery: 1}
	opts.Progress = func(pi simd.ProgressInfo) {
		if pi.Cycles >= 1 {
			cancel()
		}
	}
	m, err := simd.NewMachine[synthetic.Node](newDomain(), sch, opts)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if _, err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
		cancel()
		t.Fatalf("interrupt: %v", err)
	}
	cancel()
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	donated, err := checkpoint.Encode[synthetic.Node](wire.SyntheticCodec{}, checkpoint.Meta{Scheme: label}, snap)
	if err != nil {
		t.Fatal(err)
	}
	meta, raw, err := checkpoint.DecodeRaw(donated)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := simd.ParseSchemeParts(label)
	if err != nil {
		t.Fatal(err)
	}

	// First distributed leg: cancel after a few more cycles; the driver
	// writes a final checkpoint of the exact prefix.
	shards := buildShards[synthetic.Node](t, wire.SyntheticCodec{}, label, p, 2, raw, newDomain)
	var last []byte
	dctx, dcancel := context.WithCancel(context.Background())
	defer dcancel()
	d, err := NewDriver(Config{
		Key: "k", Meta: meta, Scheme: parts, P: p,
		CheckpointEvery: 1 << 30, // periodic effectively off; final cancel checkpoint only
		OnCheckpoint: func(_ context.Context, b []byte) error {
			last = b
			return nil
		},
		ProgressEvery: 1,
		Progress: func(pi ProgressInfo) {
			if pi.Cycles >= raw.Cycle+3 {
				dcancel()
			}
		},
	}, raw, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(dctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("distributed interrupt: %v", err)
	}
	if last == nil {
		t.Fatal("cancelled driver wrote no final checkpoint")
	}

	// Second leg: fresh shards from the cancel checkpoint, run to the end.
	meta2, raw2, err := checkpoint.DecodeRaw(last)
	if err != nil {
		t.Fatal(err)
	}
	if raw2.Cycle <= raw.Cycle {
		t.Fatalf("cancel checkpoint at cycle %d did not advance past donation cycle %d", raw2.Cycle, raw.Cycle)
	}
	shards2 := buildShards[synthetic.Node](t, wire.SyntheticCodec{}, label, p, 3, raw2, newDomain)
	d2, err := NewDriver(Config{Key: "k", Meta: meta2, Scheme: parts, P: p}, raw2, shards2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != ref {
		t.Errorf("resumed distributed stats differ\n got %+v\nwant %+v", res.Stats, ref)
	}
	if !reflect.DeepEqual(res.Trace.Samples, refTr.Samples) || !reflect.DeepEqual(res.Trace.Events, refTr.Events) {
		t.Errorf("resumed distributed trace differs")
	}
}

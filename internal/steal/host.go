package steal

import (
	"errors"
	"fmt"

	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/stack"
	"simdtree/internal/wire"
)

// Host is the node-side, codec-erased face of one shard of a distributed
// run: a full-P machine whose PE range [lo, hi) holds the shard's stacks
// while every other PE is empty.  All methods are cycle-boundary
// operations driven by the coordinator; a Host is not safe for concurrent
// use (the server serialises access per session).
type Host interface {
	// Range returns the shard's [lo, hi) global PE range.
	Range() (lo, hi int)
	// Step runs one lock-step expansion cycle and returns its reductions.
	Step() simd.CycleInfo
	// Status returns the cycle-boundary flags without stepping.
	Status() (allEmpty, anyDonor bool)
	// Flags returns the busy (splittable) and idle (empty) flags of the
	// shard's PEs; index i covers global PE lo+i.
	Flags() (busy, idle []bool)
	// Transfer performs a local donor-to-receiver transfer between two
	// PEs of this shard and returns the nodes moved.
	Transfer(from, to int) (int, error)
	// Split splits PE from's stack for donation id addressed to global PE
	// to, returning the wire-encoded donated half and its node count; an
	// unsplittable donor returns (nil, 0, nil).
	Split(id uint64, from, to int) ([]byte, int, error)
	// Absorb validates an encoded frame and installs its stack into the
	// addressed idle PE, returning the nodes absorbed.
	Absorb(frame []byte) (int, error)
	// Export returns the wire payloads of the shard's [lo, hi) stacks and
	// the domain state (nil for stateless domains).
	Export() (stacks [][]byte, domainState []byte, err error)
	// Merge folds peer shards' domain-state payloads into this shard's
	// domain and returns the merged state.  Checkpoint assembly calls it
	// on shard 0 with the other shards' exports.
	Merge(states [][]byte) ([]byte, error)
}

// host is the generic Host implementation.
type host[S any] struct {
	m     *simd.Machine[S]
	d     search.Domain[S]
	codec wire.Codec[S]
	lo    int
	hi    int
}

// NewHost builds the shard machine for PE range [lo, hi) of a P-processor
// run: a full-size machine (so global PE indices and splitter semantics
// are identical to the single-machine run) with the given wire-encoded
// stacks installed in the range and every other PE empty.  stacks[i] is
// installed at global PE lo+i; domainState, when non-nil, restores a
// stateful domain.  The machine runs with one worker — a driven shard
// expands sequentially, which by the determinism contract changes nothing
// but wall-clock time.
func NewHost[S any](d search.Domain[S], codec wire.Codec[S], schemeLabel string, opts simd.Options, lo, hi int, stacks [][]byte, domainState []byte) (Host, error) {
	if codec == nil {
		return nil, errors.New("steal: nil codec")
	}
	if lo < 0 || hi > opts.P || lo >= hi {
		return nil, fmt.Errorf("steal: shard range [%d, %d) invalid for P=%d", lo, hi, opts.P)
	}
	if len(stacks) != hi-lo {
		return nil, fmt.Errorf("steal: %d stack payloads for a %d-PE shard", len(stacks), hi-lo)
	}
	sch, err := simd.ParseScheme[S](schemeLabel)
	if err != nil {
		return nil, err
	}
	opts.Workers = 1
	opts.Trace = nil // the coordinator owns the trace ledger
	opts.Progress = nil
	// Spill is node-local: the coordinator's admission already sized the
	// job, and a shard holds only its [lo, hi) slice, so shard machines
	// run unbounded (a budget here would also demand a spill dir per
	// shard for no memory the coordinator hasn't accounted).
	opts.MemBudget = 0
	m, err := simd.NewMachine[S](d, sch, opts)
	if err != nil {
		return nil, err
	}
	// NewMachine seeds the root on PE 0; a shard starts from its installed
	// range only.
	if err := m.InstallStack(0, stack.New[S]()); err != nil {
		return nil, err
	}
	for i, payload := range stacks {
		s, err := wire.DecodeStack(codec, payload)
		if err != nil {
			return nil, fmt.Errorf("steal: stack for PE %d: %w", lo+i, err)
		}
		if err := m.InstallStack(lo+i, s); err != nil {
			return nil, err
		}
	}
	if domainState != nil {
		st, ok := d.(search.Stateful)
		if !ok {
			return nil, errors.New("steal: domain state for a stateless domain")
		}
		if err := st.RestoreState(domainState); err != nil {
			return nil, err
		}
	}
	return &host[S]{m: m, d: d, codec: codec, lo: lo, hi: hi}, nil
}

func (h *host[S]) Range() (int, int) { return h.lo, h.hi }

func (h *host[S]) Step() simd.CycleInfo { return h.m.StepCycle() }

func (h *host[S]) Status() (bool, bool) { return h.m.Status() }

func (h *host[S]) Flags() (busy, idle []bool) {
	n := h.hi - h.lo
	busy = make([]bool, n)
	idle = make([]bool, n)
	a := h.m.Arena()
	for i := 0; i < n; i++ {
		busy[i] = a.Splittable(h.lo + i)
		idle[i] = a.Empty(h.lo + i)
	}
	return busy, idle
}

// inRange validates a global PE index against the shard range.
func (h *host[S]) inRange(pe int) error {
	if pe < h.lo || pe >= h.hi {
		return fmt.Errorf("steal: PE %d outside shard range [%d, %d)", pe, h.lo, h.hi)
	}
	return nil
}

func (h *host[S]) Transfer(from, to int) (int, error) {
	if err := h.inRange(from); err != nil {
		return 0, err
	}
	if err := h.inRange(to); err != nil {
		return 0, err
	}
	return h.m.TransferLocal(from, to)
}

func (h *host[S]) Split(id uint64, from, to int) ([]byte, int, error) {
	if err := h.inRange(from); err != nil {
		return nil, 0, err
	}
	d, err := h.m.Donate(id, from, to)
	if err != nil {
		return nil, 0, err
	}
	n := d.Stack.Size()
	if n == 0 {
		return nil, 0, nil
	}
	return wire.EncodeStack(h.codec, d.Stack), n, nil
}

func (h *host[S]) Absorb(frame []byte) (int, error) {
	f, err := DecodeFrame(frame)
	if err != nil {
		return 0, err
	}
	if f.Codec != h.codec.Name() {
		return 0, fmt.Errorf("steal: frame stacks encoded with codec %q, shard uses %q", f.Codec, h.codec.Name())
	}
	if err := h.inRange(f.To); err != nil {
		return 0, err
	}
	s, err := wire.DecodeStack(h.codec, f.Stack)
	if err != nil {
		return 0, fmt.Errorf("steal: frame stack: %w", err)
	}
	return h.m.Absorb(simd.Donation[S]{ID: f.Donation, From: f.From, To: f.To, Stack: s})
}

func (h *host[S]) Export() ([][]byte, []byte, error) {
	stacks := make([][]byte, h.hi-h.lo)
	a := h.m.Arena()
	for i := range stacks {
		stacks[i] = wire.EncodeArena(h.codec, a, h.lo+i)
	}
	var domain []byte
	if st, ok := h.d.(search.Stateful); ok {
		domain = st.SaveState()
	}
	return stacks, domain, nil
}

func (h *host[S]) Merge(states [][]byte) ([]byte, error) {
	st, ok := h.d.(search.StateMerger)
	if !ok {
		return nil, errors.New("steal: domain does not support state merging")
	}
	for i, s := range states {
		if err := st.MergeState(s); err != nil {
			return nil, fmt.Errorf("steal: merging shard state %d: %w", i, err)
		}
	}
	return st.SaveState(), nil
}

package steal

import (
	"bytes"
	"testing"
)

// FuzzDecodeStealFrame asserts the frame decoder's hostile-input
// contract: it never panics, and whatever it accepts re-encodes to the
// exact input bytes (the format is canonical, so a frame relayed through
// decode/encode is byte-identical).
func FuzzDecodeStealFrame(f *testing.F) {
	seed := func(fr *Frame) {
		b, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(validFrame())
	seed(&Frame{Codec: "synthetic", Stack: []byte{0}})
	seed(&Frame{Key: "deadbeef", Codec: "queens", Donation: 1 << 40, Cycle: 99, From: 7, To: 8,
		Stack: []byte{1, 2, 3}, DomainState: []byte{4, 5}})
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		again, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(again, b) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b, again)
		}
	})
}

package steal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"simdtree/internal/checkpoint"
	"simdtree/internal/match"
	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/topology"
	"simdtree/internal/trace"
	"simdtree/internal/trigger"
)

// Shard is the coordinator's view of one node-hosted shard: the Host
// operations lifted over a transport.  Every call is a cycle-boundary
// operation; the driver is the only caller and never issues two calls to
// the same shard concurrently.
type Shard interface {
	Range() (lo, hi int)
	Step(ctx context.Context) (simd.CycleInfo, error)
	Flags(ctx context.Context) (busy, idle []bool, err error)
	Transfer(ctx context.Context, from, to int) (int, error)
	Split(ctx context.Context, id uint64, from, to int) ([]byte, int, error)
	Absorb(ctx context.Context, frame []byte) (int, error)
	Export(ctx context.Context) (stacks [][]byte, domainState []byte, err error)
	Merge(ctx context.Context, states [][]byte) ([]byte, error)
	Status(ctx context.Context) (allEmpty, anyDonor bool, err error)
}

// LocalShard adapts an in-process Host to the Shard interface; the
// context is ignored because nothing blocks.
type LocalShard struct{ H Host }

func (s LocalShard) Range() (int, int) { return s.H.Range() }
func (s LocalShard) Step(context.Context) (simd.CycleInfo, error) {
	return s.H.Step(), nil
}
func (s LocalShard) Flags(context.Context) ([]bool, []bool, error) {
	busy, idle := s.H.Flags()
	return busy, idle, nil
}
func (s LocalShard) Transfer(_ context.Context, from, to int) (int, error) {
	return s.H.Transfer(from, to)
}
func (s LocalShard) Split(_ context.Context, id uint64, from, to int) ([]byte, int, error) {
	return s.H.Split(id, from, to)
}
func (s LocalShard) Absorb(_ context.Context, frame []byte) (int, error) {
	return s.H.Absorb(frame)
}
func (s LocalShard) Export(context.Context) ([][]byte, []byte, error) {
	return s.H.Export()
}
func (s LocalShard) Merge(_ context.Context, states [][]byte) ([]byte, error) {
	return s.H.Merge(states)
}
func (s LocalShard) Status(context.Context) (bool, bool, error) {
	allEmpty, anyDonor := s.H.Status()
	return allEmpty, anyDonor, nil
}

// ProgressInfo is the distributed analogue of simd.ProgressInfo, with the
// shard dimension the SSE progress events surface.
type ProgressInfo struct {
	Cycles   int
	Active   int
	W        int64
	LBPhases int
	Tpar     time.Duration
	// ShardActive is the per-shard share of Active, in shard order.
	ShardActive []int
}

// Config parameterises a distributed run.  The schedule inputs (scheme,
// costs, topology, budgets) must be the ones the original single-node job
// ran with, or the schedules diverge.
type Config struct {
	// Key is the job's cache key, stamped into every frame.
	Key string
	// Meta is the checkpoint meta of the donated job; assembled
	// checkpoints reuse it verbatim, which keeps them byte-compatible
	// with single-node ones.
	Meta checkpoint.Meta
	// Scheme is the codec-erased scheme (simd.ParseSchemeParts).
	Scheme simd.SchemeParts
	// Costs is the virtual cost model; zero fields default like the
	// engine's.
	Costs simd.Costs
	// Topology is the interconnection network; nil means the CM-2.
	Topology topology.Network
	// P is the machine size; the shards must tile [0, P).
	P int
	// InitThreshold mirrors simd.Options.InitThreshold.
	InitThreshold float64
	// StopAtFirstGoal mirrors simd.Options.StopAtFirstGoal.
	StopAtFirstGoal bool
	// MaxCycles mirrors simd.Options.MaxCycles.
	MaxCycles int
	// CheckpointEvery assembles and emits a cluster-wide checkpoint every
	// N completed cycles; 0 disables periodic checkpoints.
	CheckpointEvery int
	// OnCheckpoint receives each assembled, encoded checkpoint; an error
	// aborts the run.  The cluster ships it to the home node's spool so
	// the sharded job survives a restart.
	OnCheckpoint func(ctx context.Context, encoded []byte) error
	// Progress, when non-nil, fires every ProgressEvery cycles.
	Progress func(ProgressInfo)
	// ProgressEvery is the Progress cadence; 0 means the engine default.
	ProgressEvery int
}

// Result is the outcome of a distributed run: the same Stats and trace a
// single machine would have produced, plus steal-specific counters.
type Result struct {
	Stats metrics.Stats
	Trace *trace.Trace
	// Donations counts the cross-shard frames shipped.
	Donations int
	// LocalTransfers counts the transfers that stayed within one shard.
	LocalTransfers int
}

// Driver replicates the engine's run loop over remote shards: it owns the
// full schedule ledger (stats, phase accumulators, virtual clock, trace,
// GP pointer) seeded from the donated checkpoint, steps every shard one
// cycle per iteration, and performs load-balancing phases by assembling
// global busy/idle flags, matching them exactly as a single machine
// would, and executing each matched pair as a local transfer or a
// cross-node donation frame.
type Driver struct {
	cfg    Config
	shards []Shard
	// shardOf maps a global PE index to its shard's index.
	shardOf []int

	costs simd.Costs
	topo  topology.Network
	trig  trigger.Trigger
	mtchr match.Matcher

	stats metrics.Stats
	goals int64

	initDone     bool
	phaseCycles  int
	phaseElapsed time.Duration
	phaseWork    time.Duration
	phaseIdle    time.Duration
	estLB        time.Duration

	tr *trace.Trace

	// Cycle-boundary flags tracked from the latest reductions.
	allEmpty bool
	anyDonor bool

	// seq is the next donation id; donations are totally ordered by it.
	seq uint64

	donations      int
	localTransfers int

	// Reusable scratch for the per-cycle fan-out and the per-phase global
	// flag assembly.
	infos       []simd.CycleInfo
	stepErrs    []error
	busy, idle  []bool
	shardActive []int
}

// NewDriver validates the shard tiling and seeds the schedule ledger from
// the donated checkpoint.  The snapshot's stacks are not used here — the
// caller installed them into the shards — only its ledger fields.
func NewDriver(cfg Config, snap *checkpoint.RawSnapshot, shards []Shard) (*Driver, error) {
	if snap == nil {
		return nil, errors.New("steal: nil snapshot")
	}
	if cfg.P <= 0 {
		return nil, fmt.Errorf("steal: invalid processor count %d", cfg.P)
	}
	if len(snap.Stacks) != cfg.P {
		return nil, fmt.Errorf("steal: snapshot has %d stacks, config has P=%d", len(snap.Stacks), cfg.P)
	}
	if snap.Stats.P != cfg.P {
		return nil, fmt.Errorf("steal: snapshot stats are for P=%d, config has P=%d", snap.Stats.P, cfg.P)
	}
	if cfg.Scheme.Trigger == nil || cfg.Scheme.Matcher == nil {
		return nil, errors.New("steal: scheme is missing a trigger or matcher")
	}
	if len(shards) == 0 {
		return nil, errors.New("steal: no shards")
	}
	shardOf := make([]int, cfg.P)
	for pe := range shardOf {
		shardOf[pe] = -1
	}
	for i, sh := range shards {
		lo, hi := sh.Range()
		if lo < 0 || hi > cfg.P || lo >= hi {
			return nil, fmt.Errorf("steal: shard %d range [%d, %d) invalid for P=%d", i, lo, hi, cfg.P)
		}
		for pe := lo; pe < hi; pe++ {
			if shardOf[pe] != -1 {
				return nil, fmt.Errorf("steal: PE %d covered by shards %d and %d", pe, shardOf[pe], i)
			}
			shardOf[pe] = i
		}
	}
	for pe, s := range shardOf {
		if s == -1 {
			return nil, fmt.Errorf("steal: PE %d not covered by any shard", pe)
		}
	}

	d := &Driver{
		cfg:     cfg,
		shards:  shards,
		shardOf: shardOf,
		costs:   cfg.Costs.Normalized(),
		topo:    cfg.Topology,
		trig:    cfg.Scheme.Trigger,
		mtchr:   cfg.Scheme.Matcher,

		stats:        snap.Stats,
		goals:        snap.Stats.Goals,
		initDone:     snap.InitDone,
		phaseCycles:  snap.PhaseCycles,
		phaseElapsed: snap.PhaseElapsed,
		phaseWork:    snap.PhaseWork,
		phaseIdle:    snap.PhaseIdle,
		estLB:        snap.EstLB,
		tr:           snap.Trace,

		infos:       make([]simd.CycleInfo, len(shards)),
		stepErrs:    make([]error, len(shards)),
		busy:        make([]bool, cfg.P),
		idle:        make([]bool, cfg.P),
		shardActive: make([]int, len(shards)),
	}
	if d.topo == nil {
		d.topo = topology.CM2{}
	}
	d.stats.Cancelled = false
	d.trig.Reset()
	d.mtchr.Reset()
	if gp, ok := d.mtchr.(*match.GP); ok {
		gp.SetPointer(snap.MatcherPointer)
	}
	return d, nil
}

// Run advances the distributed schedule to completion (or cancellation,
// budget exhaustion, shard failure, or a checkpoint-sink error) and
// returns the cumulative result.  Like the engine, cancellation lands only
// at cycle boundaries, a final checkpoint is emitted for the exact prefix,
// and the Stats of a completed run are byte-identical to the
// single-machine run of the same job.
func (d *Driver) Run(ctx context.Context) (Result, error) {
	if err := d.refreshStatus(ctx); err != nil {
		return d.result(), err
	}
	runErr := d.run(ctx)
	if runErr != nil && d.stats.Cancelled && d.checkpointing() {
		// Mirror the server's cancelled-run behaviour: spool the exact
		// prefix so a restart (or a failover re-import) loses nothing.
		if err := d.emitCheckpoint(ctx); err != nil {
			runErr = errors.Join(runErr, err)
		}
	}
	d.fillDerived()
	return d.result(), runErr
}

func (d *Driver) result() Result {
	return Result{
		Stats:          d.stats,
		Trace:          d.tr,
		Donations:      d.donations,
		LocalTransfers: d.localTransfers,
	}
}

func (d *Driver) checkpointing() bool {
	return d.cfg.CheckpointEvery > 0 && d.cfg.OnCheckpoint != nil
}

// run mirrors Machine.run exactly, one globally reduced decision at a
// time.
func (d *Driver) run(ctx context.Context) error {
	if !d.initDone {
		initTh := d.cfg.InitThreshold
		if initTh == 0 && d.cfg.Scheme.WantInit {
			initTh = 0.85
		}
		if initTh > 0 {
			if err := d.initialDistribution(ctx, initTh); err != nil {
				return err
			}
		}
		d.initDone = true
	}
	for {
		if d.allEmpty {
			return nil
		}
		if err := d.checkBudget(); err != nil {
			return err
		}
		if err := d.checkCtx(ctx); err != nil {
			return err
		}
		if err := d.maybeCheckpoint(ctx); err != nil {
			return err
		}
		active, err := d.stepAll(ctx)
		if err != nil {
			return err
		}
		st := d.triggerState(active)
		d.recordSample(st)
		if d.cfg.StopAtFirstGoal && d.goals > 0 {
			return nil
		}
		if d.trig.ShouldBalance(st) && active < d.stats.P && d.anyDonor {
			if err := d.balance(ctx, false); err != nil {
				return err
			}
		}
	}
}

// initialDistribution mirrors Machine.initialDistribution.
func (d *Driver) initialDistribution(ctx context.Context, threshold float64) error {
	if threshold > 1 {
		threshold = 1
	}
	target := int(math.Ceil(threshold * float64(d.stats.P)))
	for {
		if d.allEmpty {
			return nil
		}
		if err := d.checkBudget(); err != nil {
			return err
		}
		if err := d.checkCtx(ctx); err != nil {
			return err
		}
		if err := d.maybeCheckpoint(ctx); err != nil {
			return err
		}
		active, err := d.stepAll(ctx)
		if err != nil {
			return err
		}
		d.stats.InitCycles++
		d.recordSample(d.triggerState(active))
		if d.cfg.StopAtFirstGoal && d.goals > 0 {
			return nil
		}
		if active >= target {
			return nil
		}
		if active < d.stats.P && d.anyDonor {
			if err := d.balance(ctx, true); err != nil {
				return err
			}
		}
	}
}

// refreshStatus seeds the cycle-boundary flags before the first driven
// cycle by querying every shard.
func (d *Driver) refreshStatus(ctx context.Context) error {
	d.allEmpty = true
	d.anyDonor = false
	for i, sh := range d.shards {
		empty, donor, err := sh.Status(ctx)
		if err != nil {
			return fmt.Errorf("steal: shard %d status: %w", i, err)
		}
		d.allEmpty = d.allEmpty && empty
		d.anyDonor = d.anyDonor || donor
	}
	return nil
}

// stepAll steps every shard one cycle concurrently, reduces the results in
// shard order, and applies the exact ledger mutations of Machine.cycle.
func (d *Driver) stepAll(ctx context.Context) (int, error) {
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.infos[i], d.stepErrs[i] = d.shards[i].Step(ctx)
		}(i)
	}
	wg.Wait()

	active := 0
	allEmpty, anyDonor := true, false
	peak := 0
	for i, info := range d.infos {
		if err := d.stepErrs[i]; err != nil {
			return 0, fmt.Errorf("steal: shard %d step: %w", i, err)
		}
		active += info.Active
		d.goals += info.Goals
		if info.Peak > peak {
			peak = info.Peak
		}
		allEmpty = allEmpty && info.AllEmpty
		anyDonor = anyDonor || info.AnyDonor
		d.shardActive[i] = info.Active
	}
	d.allEmpty = allEmpty
	d.anyDonor = anyDonor
	if peak > d.stats.PeakStack {
		d.stats.PeakStack = peak
	}

	ucalc := d.costs.NodeExpansion
	d.stats.W += int64(active)
	d.stats.Cycles++
	d.stats.Tpar += ucalc
	idle := time.Duration(d.stats.P-active) * ucalc
	d.stats.Tidle += idle
	d.phaseCycles++
	d.phaseElapsed += ucalc
	d.phaseWork += time.Duration(active) * ucalc
	d.phaseIdle += idle

	if d.cfg.Progress != nil {
		every := d.cfg.ProgressEvery
		if every <= 0 {
			every = 1000
		}
		if d.stats.Cycles%every == 0 {
			d.cfg.Progress(ProgressInfo{
				Cycles:      d.stats.Cycles,
				Active:      active,
				W:           d.stats.W,
				LBPhases:    d.stats.LBPhases,
				Tpar:        d.stats.Tpar,
				ShardActive: append([]int(nil), d.shardActive...),
			})
		}
	}
	return active, nil
}

// triggerState mirrors Machine.triggerState.
func (d *Driver) triggerState(active int) trigger.State {
	return trigger.State{
		P:       d.stats.P,
		Active:  active,
		Cycles:  d.phaseCycles,
		Elapsed: d.phaseElapsed,
		Work:    d.phaseWork,
		Idle:    d.phaseIdle,
		EstLB:   d.estLB,
	}
}

// recordSample mirrors Machine.recordSample.
func (d *Driver) recordSample(st trigger.State) {
	if d.tr == nil {
		return
	}
	var r1, r2 time.Duration
	switch t := d.trig.(type) {
	case trigger.DP:
		r1 = st.Work - time.Duration(st.Active)*st.Elapsed
		r2 = time.Duration(st.Active) * st.EstLB
	case trigger.DK:
		r1 = st.Idle
		r2 = time.Duration(st.P) * st.EstLB
	case trigger.Static:
		r1 = time.Duration(st.Active)
		r2 = time.Duration(t.X * float64(st.P))
	default:
		r1 = time.Duration(st.Active)
	}
	d.tr.RecordCycle(trace.Sample{
		Cycle:  d.stats.Cycles,
		Active: st.Active,
		R1:     r1,
		R2:     r2,
	})
}

// gatherFlags assembles the global busy/idle flags from every shard.
func (d *Driver) gatherFlags(ctx context.Context) ([]bool, []bool, error) {
	type flagRes struct {
		busy, idle []bool
		err        error
	}
	res := make([]flagRes, len(d.shards))
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var fr flagRes
			fr.busy, fr.idle, fr.err = d.shards[i].Flags(ctx)
			res[i] = fr
		}(i)
	}
	wg.Wait()
	for i, fr := range res {
		lo, hi := d.shards[i].Range()
		if fr.err != nil {
			return nil, nil, fmt.Errorf("steal: shard %d flags: %w", i, fr.err)
		}
		if len(fr.busy) != hi-lo || len(fr.idle) != hi-lo {
			return nil, nil, fmt.Errorf("steal: shard %d returned %d/%d flags for a %d-PE range", i, len(fr.busy), len(fr.idle), hi-lo)
		}
		copy(d.busy[lo:hi], fr.busy)
		copy(d.idle[lo:hi], fr.idle)
	}
	return d.busy, d.idle, nil
}

// balance replicates one load-balancing phase: MatchBalancer.Balance's
// round loop with the matcher run on globally assembled flags, each
// matched pair executed as a local transfer or a cross-node donation, and
// the exact accounting of Machine.balance.
func (d *Driver) balance(ctx context.Context, initPhase bool) error {
	recordDonors := d.tr.WantDonors()
	var donors []int
	rounds, transfers, maxTransfer := 0, 0, 0
	for {
		busy, idle, err := d.gatherFlags(ctx)
		if err != nil {
			return err
		}
		pairs := d.mtchr.Match(busy, idle)
		if len(pairs) == 0 {
			if rounds == 0 {
				rounds = 1 // the phase still pays its setup scans
			}
			break
		}
		rounds++
		for _, p := range pairs {
			moved, err := d.transferPair(ctx, p.From, p.To)
			if err != nil {
				return err
			}
			if moved > 0 {
				transfers++
				if moved > maxTransfer {
					maxTransfer = moved
				}
				if recordDonors {
					donors = append(donors, p.From)
				}
			}
		}
		if !d.cfg.Scheme.Multi {
			break
		}
	}
	cost := d.costs.PhaseCost(d.topo, d.stats.P, rounds)
	cost += d.costs.MessageCost(d.topo, d.stats.P, maxTransfer)

	d.stats.Tpar += cost
	d.stats.Tlb += cost * time.Duration(d.stats.P)
	d.stats.LBPhases++
	d.stats.Transfers += transfers
	if initPhase {
		d.stats.InitPhases++
	}
	if maxTransfer > d.stats.MaxTransfer {
		d.stats.MaxTransfer = maxTransfer
	}
	d.estLB = cost
	d.phaseCycles = 0
	d.phaseElapsed = 0
	d.phaseWork = 0
	d.phaseIdle = 0
	if d.tr != nil {
		d.tr.RecordPhase(trace.Event{
			Cycle:     d.stats.Cycles,
			Transfers: transfers,
			Cost:      cost,
			Donors:    donors,
		})
	}
	// A transfer can revive donor eligibility (or hand the last splittable
	// stack elsewhere); the run loop re-reads these after the next cycle,
	// but the balance itself never empties a non-empty machine.
	return nil
}

// transferPair executes one matched donor->receiver pair: shard-local
// pairs delegate to the shard's Transfer, cross-shard pairs ship a frame.
func (d *Driver) transferPair(ctx context.Context, from, to int) (int, error) {
	si, ri := d.shardOf[from], d.shardOf[to]
	if si == ri {
		moved, err := d.shards[si].Transfer(ctx, from, to)
		if err != nil {
			return 0, fmt.Errorf("steal: shard %d transfer %d->%d: %w", si, from, to, err)
		}
		if moved > 0 {
			d.localTransfers++
		}
		return moved, nil
	}
	id := d.seq
	d.seq++
	payload, moved, err := d.shards[si].Split(ctx, id, from, to)
	if err != nil {
		return 0, fmt.Errorf("steal: shard %d split PE %d: %w", si, from, err)
	}
	if moved == 0 {
		return 0, nil
	}
	f := &Frame{
		Key:      d.cfg.Key,
		Codec:    d.cfg.Meta.Codec,
		Donation: id,
		Cycle:    d.stats.Cycles,
		From:     from,
		To:       to,
		Stack:    payload,
	}
	b, err := EncodeFrame(f)
	if err != nil {
		return 0, err
	}
	got, err := d.shards[ri].Absorb(ctx, b)
	if err != nil {
		return 0, fmt.Errorf("steal: shard %d absorb donation %d: %w", ri, id, err)
	}
	if got != moved {
		return 0, fmt.Errorf("steal: donation %d split %d nodes but absorbed %d", id, moved, got)
	}
	d.donations++
	return moved, nil
}

// checkBudget mirrors Machine.checkBudget.
func (d *Driver) checkBudget() error {
	if d.cfg.MaxCycles > 0 && d.stats.Cycles >= d.cfg.MaxCycles {
		return fmt.Errorf("steal: %w MaxCycles=%d (W so far %d)", simd.ErrBudgetExceeded, d.cfg.MaxCycles, d.stats.W)
	}
	return nil
}

// checkCtx mirrors Machine.checkCtx: cancellation lands only at cycle
// boundaries.
func (d *Driver) checkCtx(ctx context.Context) error {
	select {
	case <-ctx.Done():
		d.stats.Cancelled = true
		return context.Cause(ctx)
	default:
		return nil
	}
}

// maybeCheckpoint mirrors Machine.maybeCheckpoint at the driver level.
func (d *Driver) maybeCheckpoint(ctx context.Context) error {
	every := d.cfg.CheckpointEvery
	if every <= 0 || d.cfg.OnCheckpoint == nil || d.stats.Cycles == 0 || d.stats.Cycles%every != 0 {
		return nil
	}
	return d.emitCheckpoint(ctx)
}

// emitCheckpoint assembles the cluster-wide snapshot and hands the encoded
// checkpoint to the sink.
func (d *Driver) emitCheckpoint(ctx context.Context) error {
	snap, err := d.Assemble(ctx)
	if err != nil {
		return err
	}
	b, err := checkpoint.EncodeRaw(d.cfg.Meta, snap)
	if err != nil {
		return err
	}
	return d.cfg.OnCheckpoint(ctx, b)
}

// Assemble exports every shard and builds the cluster-wide RawSnapshot for
// the current cycle boundary — byte-identical to the Snapshot a single
// machine at the same prefix would encode.  Shard domain states are merged
// through shard 0 (a min-merge for the IDA* bound accumulator), which
// reproduces the single shared accumulator's value.
func (d *Driver) Assemble(ctx context.Context) (*checkpoint.RawSnapshot, error) {
	type expRes struct {
		stacks [][]byte
		domain []byte
		err    error
	}
	res := make([]expRes, len(d.shards))
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var er expRes
			er.stacks, er.domain, er.err = d.shards[i].Export(ctx)
			res[i] = er
		}(i)
	}
	wg.Wait()

	stacks := make([][]byte, d.stats.P)
	var states [][]byte
	for i, er := range res {
		if er.err != nil {
			return nil, fmt.Errorf("steal: shard %d export: %w", i, er.err)
		}
		lo, hi := d.shards[i].Range()
		if len(er.stacks) != hi-lo {
			return nil, fmt.Errorf("steal: shard %d exported %d stacks for a %d-PE range", i, len(er.stacks), hi-lo)
		}
		copy(stacks[lo:hi], er.stacks)
		if er.domain != nil {
			states = append(states, er.domain)
		}
	}
	var domain []byte
	switch {
	case len(states) == 0:
		// Stateless domain.
	case len(states) != len(d.shards):
		return nil, fmt.Errorf("steal: %d of %d shards exported domain state", len(states), len(d.shards))
	case len(states) == 1:
		domain = states[0]
	default:
		merged, err := d.shards[0].Merge(ctx, states[1:])
		if err != nil {
			return nil, err
		}
		domain = merged
	}

	d.fillDerived()
	snap := &checkpoint.RawSnapshot{
		Cycle:          d.stats.Cycles,
		InitDone:       d.initDone,
		Stacks:         stacks,
		MatcherPointer: d.matcherPointer(),
		PhaseCycles:    d.phaseCycles,
		PhaseElapsed:   d.phaseElapsed,
		PhaseWork:      d.phaseWork,
		PhaseIdle:      d.phaseIdle,
		EstLB:          d.estLB,
		Stats:          d.stats,
		DomainState:    domain,
		Trace:          d.tr.Clone(),
	}
	snap.Stats.Cancelled = false
	return snap, nil
}

// matcherPointer mirrors Machine.matcherPointer for the driver's matcher.
func (d *Driver) matcherPointer() int {
	if gp, ok := d.mtchr.(*match.GP); ok {
		return gp.Pointer()
	}
	return -1
}

// fillDerived mirrors Machine.fillDerivedStats.
func (d *Driver) fillDerived() {
	d.stats.Tcalc = time.Duration(d.stats.W) * d.costs.NodeExpansion
	d.stats.Goals = d.goals
}

package steal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"simdtree/internal/checkpoint"
	"simdtree/internal/simd"
)

// Wire types of the shard-session protocol.  []byte fields travel as
// base64 strings (encoding/json's default), which keeps the protocol
// JSON-debuggable; the hot absorb path ships raw frame bytes instead.
type (
	// OpenResponse answers opening a shard session.
	OpenResponse struct {
		Session  string `json:"session"`
		Lo       int    `json:"lo"`
		Hi       int    `json:"hi"`
		AllEmpty bool   `json:"all_empty"`
		AnyDonor bool   `json:"any_donor"`
	}
	// StepResponse mirrors simd.CycleInfo.
	StepResponse struct {
		Active   int   `json:"active"`
		Goals    int64 `json:"goals"`
		Peak     int   `json:"peak"`
		AllEmpty bool  `json:"all_empty"`
		AnyDonor bool  `json:"any_donor"`
	}
	// FlagsResponse carries the shard's busy/idle flags.
	FlagsResponse struct {
		Busy []bool `json:"busy"`
		Idle []bool `json:"idle"`
	}
	// TransferRequest asks for a shard-local transfer.
	TransferRequest struct {
		From int `json:"from"`
		To   int `json:"to"`
	}
	// MovedResponse reports nodes moved by a transfer or absorb.
	MovedResponse struct {
		Moved int `json:"moved"`
	}
	// SplitRequest asks the donor shard to split a stack for donation.
	SplitRequest struct {
		Donation uint64 `json:"donation"`
		From     int    `json:"from"`
		To       int    `json:"to"`
	}
	// SplitResponse carries the donated half; Stack is empty when the
	// donor was unsplittable.
	SplitResponse struct {
		Moved int    `json:"moved"`
		Stack []byte `json:"stack,omitempty"`
	}
	// ExportResponse carries the shard's stack payloads and domain state.
	ExportResponse struct {
		Stacks      [][]byte `json:"stacks"`
		DomainState []byte   `json:"domain_state,omitempty"`
	}
	// MergeRequest carries peer shards' domain states to fold in.
	MergeRequest struct {
		States [][]byte `json:"states"`
	}
	// MergeResponse carries the merged domain state.
	MergeResponse struct {
		DomainState []byte `json:"domain_state,omitempty"`
	}
	// StatusResponse carries the cycle-boundary flags.
	StatusResponse struct {
		AllEmpty bool `json:"all_empty"`
		AnyDonor bool `json:"any_donor"`
	}
)

// HTTPShard drives a shard session hosted by a remote simdserve node over
// its /v1/steal/sessions endpoints.  It implements Shard.
type HTTPShard struct {
	client *http.Client
	base   string // node base URL, no trailing slash
	id     string
	lo, hi int
}

// OpenHTTPShard opens a shard session on the node at base: the node
// decodes the checkpoint, builds the shard machine for [lo, hi) and
// returns a session handle.  spool asks the node to persist checkpoints
// shipped via WriteCheckpoint under the job's spool entry, making the
// sharded job survive a node restart.
func OpenHTTPShard(ctx context.Context, client *http.Client, base string, ckpt []byte, lo, hi int, spool bool) (*HTTPShard, error) {
	if client == nil {
		client = http.DefaultClient
	}
	q := url.Values{}
	q.Set("lo", strconv.Itoa(lo))
	q.Set("hi", strconv.Itoa(hi))
	if spool {
		q.Set("spool", "1")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/steal/sessions?"+q.Encode(), bytes.NewReader(ckpt))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", checkpoint.ContentType)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	var open OpenResponse
	if err := readJSON(resp, &open); err != nil {
		return nil, fmt.Errorf("steal: opening shard session on %s: %w", base, err)
	}
	if open.Session == "" || open.Lo != lo || open.Hi != hi {
		return nil, fmt.Errorf("steal: node %s answered session %q range [%d, %d), want [%d, %d)", base, open.Session, open.Lo, open.Hi, lo, hi)
	}
	return &HTTPShard{client: client, base: base, id: open.Session, lo: lo, hi: hi}, nil
}

// Base returns the node base URL the shard session lives on.
func (s *HTTPShard) Base() string { return s.base }

// Session returns the node-assigned session id.
func (s *HTTPShard) Session() string { return s.id }

// Range implements Shard.
func (s *HTTPShard) Range() (int, int) { return s.lo, s.hi }

func (s *HTTPShard) url(suffix string) string {
	return s.base + "/v1/steal/sessions/" + url.PathEscape(s.id) + suffix
}

// roundTrip issues one session request and decodes a JSON response into
// out (when non-nil).
func (s *HTTPShard) roundTrip(ctx context.Context, method, u, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	if out == nil {
		return drain(resp)
	}
	return readJSON(resp, out)
}

// post sends a JSON body (when in is non-nil) and decodes a JSON response.
func (s *HTTPShard) post(ctx context.Context, suffix string, in, out any) error {
	var body []byte
	contentType := ""
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = b
		contentType = "application/json"
	}
	return s.roundTrip(ctx, http.MethodPost, s.url(suffix), contentType, body, out)
}

// Step implements Shard.
func (s *HTTPShard) Step(ctx context.Context) (simd.CycleInfo, error) {
	var sr StepResponse
	if err := s.post(ctx, "/step", nil, &sr); err != nil {
		return simd.CycleInfo{}, err
	}
	return simd.CycleInfo{
		Active:   sr.Active,
		Goals:    sr.Goals,
		Peak:     sr.Peak,
		AllEmpty: sr.AllEmpty,
		AnyDonor: sr.AnyDonor,
	}, nil
}

// Flags implements Shard.
func (s *HTTPShard) Flags(ctx context.Context) ([]bool, []bool, error) {
	var fr FlagsResponse
	if err := s.roundTrip(ctx, http.MethodGet, s.url("/flags"), "", nil, &fr); err != nil {
		return nil, nil, err
	}
	return fr.Busy, fr.Idle, nil
}

// Transfer implements Shard.
func (s *HTTPShard) Transfer(ctx context.Context, from, to int) (int, error) {
	var mr MovedResponse
	if err := s.post(ctx, "/transfer", TransferRequest{From: from, To: to}, &mr); err != nil {
		return 0, err
	}
	return mr.Moved, nil
}

// Split implements Shard.
func (s *HTTPShard) Split(ctx context.Context, id uint64, from, to int) ([]byte, int, error) {
	var sr SplitResponse
	if err := s.post(ctx, "/split", SplitRequest{Donation: id, From: from, To: to}, &sr); err != nil {
		return nil, 0, err
	}
	if sr.Moved == 0 {
		return nil, 0, nil
	}
	if len(sr.Stack) == 0 {
		return nil, 0, fmt.Errorf("steal: node %s split %d nodes but sent no stack", s.base, sr.Moved)
	}
	return sr.Stack, sr.Moved, nil
}

// Absorb implements Shard, shipping the frame bytes raw.
func (s *HTTPShard) Absorb(ctx context.Context, frame []byte) (int, error) {
	var mr MovedResponse
	if err := s.roundTrip(ctx, http.MethodPost, s.url("/absorb"), ContentType, frame, &mr); err != nil {
		return 0, err
	}
	return mr.Moved, nil
}

// Export implements Shard.
func (s *HTTPShard) Export(ctx context.Context) ([][]byte, []byte, error) {
	var er ExportResponse
	if err := s.roundTrip(ctx, http.MethodGet, s.url("/export"), "", nil, &er); err != nil {
		return nil, nil, err
	}
	return er.Stacks, er.DomainState, nil
}

// Merge implements Shard.
func (s *HTTPShard) Merge(ctx context.Context, states [][]byte) ([]byte, error) {
	var mr MergeResponse
	if err := s.post(ctx, "/merge", MergeRequest{States: states}, &mr); err != nil {
		return nil, err
	}
	return mr.DomainState, nil
}

// Status implements Shard.
func (s *HTTPShard) Status(ctx context.Context) (bool, bool, error) {
	var sr StatusResponse
	if err := s.roundTrip(ctx, http.MethodGet, s.url("/status"), "", nil, &sr); err != nil {
		return false, false, err
	}
	return sr.AllEmpty, sr.AnyDonor, nil
}

// WriteCheckpoint ships an assembled cluster-wide checkpoint to the node
// hosting this shard session; a session opened with spool enabled persists
// it under the job's spool entry.
func (s *HTTPShard) WriteCheckpoint(ctx context.Context, encoded []byte) error {
	return s.roundTrip(ctx, http.MethodPut, s.url("/checkpoint"), checkpoint.ContentType, encoded, nil)
}

// Close releases the session.  dropSpool additionally removes the spool
// entry the session wrote (used after a successful distributed run; a
// failed run keeps the last shipped checkpoint for recovery).
func (s *HTTPShard) Close(ctx context.Context, dropSpool bool) error {
	u := s.url("")
	if dropSpool {
		u += "?drop_spool=1"
	}
	return s.roundTrip(ctx, http.MethodDelete, u, "", nil, nil)
}

// readJSON checks the status and decodes the body into out.
func readJSON(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameSize+(1<<20)))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return statusError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

// drain consumes a no-content response, surfacing error statuses.
func drain(resp *http.Response) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return statusError(resp.StatusCode, body)
	}
	return nil
}

// statusError turns a non-OK response into an error, preferring the
// server's JSON error message.
func statusError(code int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("steal: node answered %d: %s", code, e.Error)
	}
	msg := string(body)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	if msg == "" {
		return errors.New("steal: node answered " + strconv.Itoa(code))
	}
	return fmt.Errorf("steal: node answered %d: %s", code, msg)
}

package steal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

func validFrame() *Frame {
	return &Frame{
		Key:      "0123456789abcdef",
		Codec:    "puzzle",
		Donation: 7,
		Cycle:    1234,
		From:     3,
		To:       61,
		Stack:    []byte{2, 3, 1, 2, 3, 2, 9, 9},
	}
}

// refix recomputes the CRC trailer after a mutation, so the test reaches
// the structural validation behind the checksum.
func refix(b []byte) []byte {
	body := b[:len(b)-crc32.Size]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []*Frame{
		validFrame(),
		{Key: "", Codec: "synthetic", Donation: 0, Cycle: 0, From: 0, To: 0, Stack: []byte{0}},
		{Key: "k", Codec: "queens", Donation: 1<<63 + 5, Cycle: 1 << 40, From: 1023, To: 0,
			Stack: bytes.Repeat([]byte{7}, 300), DomainState: []byte{1, 2, 3}},
	} {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip changed the frame:\n got %+v\nwant %+v", got, f)
		}
		again, err := EncodeFrame(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(again, b) {
			t.Errorf("re-encoding is not canonical:\n got %x\nwant %x", again, b)
		}
	}
}

func TestEncodeFrameRejects(t *testing.T) {
	if _, err := EncodeFrame(nil); err == nil {
		t.Error("nil frame accepted")
	}
	f := validFrame()
	f.Stack = nil
	if _, err := EncodeFrame(f); err == nil {
		t.Error("empty stack payload accepted")
	}
	f = validFrame()
	f.Cycle = -1
	if _, err := EncodeFrame(f); err == nil {
		t.Error("negative cycle accepted")
	}
	f = validFrame()
	f.From = -2
	if _, err := EncodeFrame(f); err == nil {
		t.Error("negative donor accepted")
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	valid, err := EncodeFrame(validFrame())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", valid[:3], ErrTruncated},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), ErrBadMagic},
		{"bad version", refix(append(append([]byte(nil), valid[:4]...), append([]byte{99}, valid[5:]...)...)), ErrVersion},
		{"flipped bit", flip(valid, 10), ErrChecksum},
		{"truncated body", valid[:len(valid)-6], ErrChecksum},
		{"trailing bytes", refix(append(append([]byte(nil), valid[:len(valid)-4]...), 0xee)), ErrCorrupt},
		{"unknown flags", mutateFlags(t, valid, 0x80), ErrCorrupt},
		{"oversized", make([]byte, MaxFrameSize+1), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 1
	return c
}

// mutateFlags locates the flags byte of a known valid frame (the byte
// just before the stack blob) and ORs bits into it, refixing the CRC.
func mutateFlags(t *testing.T, valid []byte, bits byte) []byte {
	t.Helper()
	f := validFrame()
	// Re-derive the flag offset by re-encoding the prefix.
	prefix := []byte(Magic)
	prefix = append(prefix, Version)
	prefix = appendBlob(prefix, []byte(f.Key))
	prefix = appendBlob(prefix, []byte(f.Codec))
	prefix = binary.AppendUvarint(prefix, f.Donation)
	prefix = binary.AppendUvarint(prefix, uint64(f.Cycle))
	prefix = binary.AppendUvarint(prefix, uint64(f.From))
	prefix = binary.AppendUvarint(prefix, uint64(f.To))
	if !bytes.HasPrefix(valid, prefix) {
		t.Fatal("prefix mismatch; frame layout changed")
	}
	c := append([]byte(nil), valid...)
	c[len(prefix)] |= bits
	return refix(c)
}

func TestDecodeFrameNonMinimalVarint(t *testing.T) {
	f := validFrame()
	// Hand-build the frame with a non-minimal donation varint (0x87 0x00
	// encodes 7 in two bytes).
	b := []byte(Magic)
	b = append(b, Version)
	b = appendBlob(b, []byte(f.Key))
	b = appendBlob(b, []byte(f.Codec))
	b = append(b, 0x87, 0x00) // donation = 7, non-minimal
	b = binary.AppendUvarint(b, uint64(f.Cycle))
	b = binary.AppendUvarint(b, uint64(f.From))
	b = binary.AppendUvarint(b, uint64(f.To))
	b = append(b, 0)
	b = appendBlob(b, f.Stack)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	if _, err := DecodeFrame(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-minimal varint: got %v, want %v", err, ErrCorrupt)
	}
}

package stack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrder(t *testing.T) {
	s := New[int]()
	s.PushLevel([]int{1, 2})
	s.PushLevel([]int{3, 4, 5})
	// Depth-first: the deepest level's alternatives come back first, last
	// alternative first.
	want := []int{5, 4, 3, 2, 1}
	for _, w := range want {
		got, ok := s.Pop()
		if !ok || got != w {
			t.Fatalf("Pop = %d,%v, want %d", got, ok, w)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("Pop on empty stack should fail")
	}
}

func TestSizeDepthAndSplittable(t *testing.T) {
	s := New(7)
	if s.Size() != 1 || s.Depth() != 1 || s.Splittable() || s.Empty() {
		t.Fatalf("unexpected state after New(7): size=%d depth=%d", s.Size(), s.Depth())
	}
	s.PushLevel([]int{8, 9})
	if s.Size() != 3 || s.Depth() != 2 || !s.Splittable() {
		t.Fatalf("unexpected state: size=%d depth=%d", s.Size(), s.Depth())
	}
	s.PushLevel(nil) // ignored
	if s.Depth() != 2 {
		t.Error("empty level should be ignored")
	}
}

func TestPopTrimsEmptyLevels(t *testing.T) {
	s := New(1)
	s.PushLevel([]int{2})
	s.PushLevel([]int{3})
	s.Pop() // removes 3 and its level
	if s.Depth() != 2 {
		t.Errorf("depth=%d, want 2 after trimming", s.Depth())
	}
}

func TestAppend(t *testing.T) {
	a := New(1, 2)
	b := New(3)
	b.PushLevel([]int{4, 5})
	a.Append(b)
	if a.Size() != 5 {
		t.Fatalf("size=%d, want 5", a.Size())
	}
	if !b.Empty() || b.Depth() != 0 {
		t.Error("donor stack should be emptied by Append")
	}
	got := a.Flatten()
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Flatten=%v, want %v", got, want)
		}
	}
}

func TestClone(t *testing.T) {
	a := New(1, 2)
	a.PushLevel([]int{3})
	b := a.Clone()
	a.Pop()
	if b.Size() != 3 {
		t.Error("clone should be unaffected by mutations of the original")
	}
}

func TestPushLevelCopyRecycles(t *testing.T) {
	s := New[int]()
	buf := []int{1, 2, 3}
	s.PushLevelCopy(buf)
	buf[0] = 99 // caller reuses its buffer; the stack must be unaffected
	if got := s.Flatten()[0]; got != 1 {
		t.Errorf("stack aliased the caller's buffer: got %d", got)
	}
	// Drain the level so its array lands on the free list, then push a
	// smaller level: it must reuse the array without allocating.
	for i := 0; i < 3; i++ {
		s.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.PushLevelCopy(buf[:2])
		s.Pop()
		s.Pop()
	})
	if allocs > 0 {
		t.Errorf("PushLevelCopy allocates %.1f times per cycle after warm-up", allocs)
	}
}

// TestFreeListCapBoundary exercises the maxFree cap from both sides: a
// Clear of exactly maxFree levels fills the recycle list to the cap, one
// more level is dropped rather than retained, and a stack at the cap
// still reuses — never grows — its list through further churn.
func TestFreeListCapBoundary(t *testing.T) {
	s := New[int]()
	for l := 0; l < maxFree; l++ {
		s.PushLevelCopy([]int{l})
	}
	s.Clear()
	if len(s.free) != maxFree {
		t.Fatalf("free list holds %d slabs after clearing %d levels, want %d", len(s.free), maxFree, maxFree)
	}
	// One level beyond the cap: the extra slab must be dropped, not kept.
	for l := 0; l < maxFree+1; l++ {
		s.PushLevelCopy([]int{l})
	}
	s.Clear()
	if len(s.free) != maxFree {
		t.Fatalf("free list grew past the cap: %d slabs", len(s.free))
	}
	// At the cap, push/pop churn must neither allocate nor grow the list.
	allocs := testing.AllocsPerRun(100, func() {
		s.PushLevelCopy([]int{1})
		s.Pop()
	})
	if allocs > 0 {
		t.Errorf("churn at the free-list cap allocates %.1f times", allocs)
	}
	if len(s.free) > maxFree {
		t.Errorf("churn at the cap grew the free list to %d", len(s.free))
	}
}

// TestFreeListSurvivesArenaMigration pins the free-list contract across
// the arena boundary: installing a stack into an arena and materialising
// it back must leave the original's recycle list intact (installs copy,
// they do not steal slabs), and the materialised copy must own fresh
// storage rather than aliasing the arena's buffers.
func TestFreeListSurvivesArenaMigration(t *testing.T) {
	s := New[int]()
	s.PushLevelCopy([]int{1, 2, 3})
	s.PushLevelCopy([]int{4, 5})
	// Build up a recycle list by draining one level.
	s.Pop()
	s.Pop()
	freeBefore := len(s.free)
	if freeBefore == 0 {
		t.Fatal("test setup: expected a recycled slab")
	}

	a := NewArena[int](1)
	a.InstallFromStack(0, s)
	if len(s.free) != freeBefore {
		t.Errorf("install changed the source free list: %d -> %d", freeBefore, len(s.free))
	}
	// The source still reuses its recycled slabs after migration.
	allocs := testing.AllocsPerRun(100, func() {
		s.PushLevelCopy([]int{7})
		s.Pop()
	})
	if allocs > 0 {
		t.Errorf("source stack allocates %.1f times per cycle after migration", allocs)
	}

	// A materialised stack owns its storage: popping it must not disturb
	// the arena, and its slabs recycle into its own free list only.
	m := a.MaterializeStack(0)
	sizeBefore := a.Size(0)
	for {
		if _, ok := m.Pop(); !ok {
			break
		}
	}
	if a.Size(0) != sizeBefore {
		t.Errorf("draining the materialised copy changed the arena: %d -> %d", sizeBefore, a.Size(0))
	}
	if len(m.free) > maxFree {
		t.Errorf("materialised stack leaked %d slabs past the cap", len(m.free))
	}
}

// TestRecycledLevelsDropStaleValues ensures reused arrays never leak old
// node values back into the stack.
func TestRecycledLevelsDropStaleValues(t *testing.T) {
	s := New[int]()
	s.PushLevelCopy([]int{10, 11, 12})
	for i := 0; i < 3; i++ {
		s.Pop()
	}
	s.PushLevelCopy([]int{20})
	got := s.Flatten()
	if len(got) != 1 || got[0] != 20 {
		t.Errorf("stale values leaked: %v", got)
	}
}

// buildRandom constructs a random multi-level stack whose node values are
// all distinct, for split-invariant checks.
func buildRandom(rng *rand.Rand) *Stack[int] {
	s := New[int]()
	next := 0
	levels := 1 + rng.Intn(6)
	for l := 0; l < levels; l++ {
		width := 1 + rng.Intn(4)
		lv := make([]int, width)
		for i := range lv {
			lv[i] = next
			next++
		}
		s.PushLevel(lv)
	}
	return s
}

// TestSplitInvariants property-checks every splitter: after a split of a
// splittable stack, (1) no node is lost or duplicated, (2) both parts are
// non-empty — the alpha-splitting contract of Section 3.
func TestSplitInvariants(t *testing.T) {
	splitters := []Splitter[int]{BottomNode[int]{}, HalfStack[int]{}, TopNode[int]{}}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		for _, sp := range splitters {
			s := buildRandom(rng)
			if !s.Splittable() {
				continue
			}
			before := append([]int(nil), s.Flatten()...)
			donated := sp.Split(s)
			if donated.Empty() {
				t.Fatalf("%s: donated part empty (stack had %d nodes)", sp.Name(), len(before))
			}
			if s.Empty() {
				t.Fatalf("%s: donor left empty", sp.Name())
			}
			after := append(s.Flatten(), donated.Flatten()...)
			sort.Ints(before)
			sort.Ints(after)
			if len(before) != len(after) {
				t.Fatalf("%s: node count changed %d -> %d", sp.Name(), len(before), len(after))
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("%s: node multiset changed", sp.Name())
				}
			}
		}
	}
}

func TestBottomNodeTakesShallowest(t *testing.T) {
	s := New(10, 11)
	s.PushLevel([]int{20})
	d := BottomNode[int]{}.Split(s)
	got := d.Flatten()
	if len(got) != 1 || got[0] != 10 {
		t.Errorf("bottom-node split donated %v, want [10]", got)
	}
}

func TestTopNodeTakesDeepest(t *testing.T) {
	s := New(10, 11)
	s.PushLevel([]int{20, 21})
	d := TopNode[int]{}.Split(s)
	got := d.Flatten()
	if len(got) != 1 || got[0] != 21 {
		t.Errorf("top-node split donated %v, want [21]", got)
	}
}

func TestHalfStackHalvesEachLevel(t *testing.T) {
	s := New(1, 2, 3, 4)
	s.PushLevel([]int{5, 6})
	d := HalfStack[int]{}.Split(s)
	if d.Size() != 3 { // 2 from the first level, 1 from the second
		t.Errorf("half-stack donated %d nodes, want 3", d.Size())
	}
	got := d.Flatten()
	want := []int{1, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("donated %v, want %v", got, want)
		}
	}
}

func TestHalfStackSingletonLevels(t *testing.T) {
	// Every level has one alternative; the fallback must still produce a
	// non-empty donation.
	s := New(1)
	s.PushLevel([]int{2})
	s.PushLevel([]int{3})
	d := HalfStack[int]{}.Split(s)
	if d.Empty() || s.Empty() {
		t.Error("half-stack fallback failed on singleton levels")
	}
	if d.Size()+s.Size() != 3 {
		t.Error("nodes lost in fallback")
	}
}

// TestPopAllMatchesFlatten property-checks that repeatedly popping yields
// exactly the Flatten multiset.
func TestPopAllMatchesFlatten(t *testing.T) {
	f := func(levels [][]byte) bool {
		s := New[int]()
		var all []int
		n := 0
		for _, lv := range levels {
			ints := make([]int, len(lv))
			for i, b := range lv {
				ints[i] = n
				_ = b
				n++
			}
			all = append(all, ints...)
			s.PushLevel(ints)
		}
		if s.Size() != len(all) {
			return false
		}
		var popped []int
		for {
			v, ok := s.Pop()
			if !ok {
				break
			}
			popped = append(popped, v)
		}
		if len(popped) != len(all) {
			return false
		}
		sort.Ints(popped)
		sort.Ints(all)
		for i := range all {
			if popped[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

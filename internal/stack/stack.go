// Package stack implements the depth-first-search stack representation the
// paper uses for the part of the search space assigned to a processor
// (Section 2): the depth of the stack is the depth of the node currently
// being explored, and each level keeps the untried alternatives at that
// depth.  A processor's unsearched space is partitioned by moving some of
// the untried alternatives to a second stack; the package provides the
// splitting strategies ("alpha-splitting mechanisms", Section 3) the paper
// discusses: giving away the node at the bottom of the stack (the paper's
// choice for the 15-puzzle), halving every level, and the deliberately poor
// top-node splitter used for ablations.
package stack

// Stack holds the untried alternatives of a depth-first search, one slice
// per tree level.  Level 0 is the shallowest.  The zero value is an empty
// stack ready for use.
type Stack[S any] struct {
	levels [][]S
	size   int
	// free recycles the backing arrays of emptied levels so the hot
	// expansion path (PushLevelCopy after every node expansion) runs
	// without allocating.  It is bounded to keep memory proportional to
	// the live stack.
	free [][]S
}

// maxFree bounds the per-stack recycle list.
const maxFree = 8

// New returns a stack seeded with the given root-level alternatives.
func New[S any](roots ...S) *Stack[S] {
	//lint:allow hotalloc foreign-splitter fallback, the engine's transfers use SplitInto
	s := &Stack[S]{}
	if len(roots) > 0 {
		s.PushLevel(roots)
	}
	return s
}

// Size returns the total number of untried alternatives on the stack.
func (s *Stack[S]) Size() int { return s.size }

// Empty reports whether no untried alternatives remain.
func (s *Stack[S]) Empty() bool { return s.size == 0 }

// Depth returns the number of levels currently on the stack.
func (s *Stack[S]) Depth() int { return len(s.levels) }

// Splittable reports whether the stack can be divided into two non-empty
// parts; the paper calls a processor with a splittable stack "busy".
func (s *Stack[S]) Splittable() bool { return s.size >= 2 }

// PushLevel pushes the untried alternatives of a newly expanded node as a
// deeper level.  Empty slices are ignored.  The stack takes ownership of
// the slice.
func (s *Stack[S]) PushLevel(alts []S) {
	if len(alts) == 0 {
		return
	}
	//lint:allow hotalloc levels array reaches steady-state depth, then stops growing
	s.levels = append(s.levels, alts)
	s.size += len(alts)
}

// Pop removes and returns the next node in depth-first order: the last
// untried alternative of the deepest level.  It reports false when the
// stack is empty.
//
//lint:hotpath
func (s *Stack[S]) Pop() (S, bool) {
	var zero S
	if s.size == 0 {
		return zero, false
	}
	top := len(s.levels) - 1
	lv := s.levels[top]
	n := len(lv) - 1
	node := lv[n]
	lv[n] = zero // release the reference for the garbage collector
	s.levels[top] = lv[:n]
	s.size--
	s.trim()
	return node, true
}

// trim drops empty levels from the top of the stack, recycling their
// backing arrays.
func (s *Stack[S]) trim() {
	for len(s.levels) > 0 && len(s.levels[len(s.levels)-1]) == 0 {
		top := len(s.levels) - 1
		if lv := s.levels[top]; cap(lv) > 0 && len(s.free) < maxFree {
			//lint:allow hotalloc free-list append is bounded by maxFree
			s.free = append(s.free, lv[:0])
		}
		s.levels[top] = nil
		s.levels = s.levels[:top]
	}
}

// PushLevelCopy pushes a copy of alts as a deeper level, reusing a
// recycled backing array when one is large enough.  Unlike PushLevel it
// does not take ownership of alts, so callers may reuse their buffer —
// this is the engine's per-expansion fast path.
//
//lint:hotpath
func (s *Stack[S]) PushLevelCopy(alts []S) {
	if len(alts) == 0 {
		return
	}
	var lv []S
	for i := len(s.free) - 1; i >= 0; i-- {
		if cap(s.free[i]) >= len(alts) {
			lv = s.free[i][:len(alts)]
			s.free[i] = s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			break
		}
	}
	if lv == nil {
		//lint:allow hotalloc free-list miss fallback, steady state reuses recycled arrays
		lv = make([]S, len(alts))
	}
	copy(lv, alts)
	//lint:allow hotalloc levels array reaches steady-state depth, then stops growing
	s.levels = append(s.levels, lv)
	s.size += len(alts)
}

// PushOne pushes a single alternative as a deeper level, reusing a
// recycled backing array when one is available.  It is the splitters'
// donation fast path (SplitInto into a recycled spare stack).
//
//lint:hotpath
func (s *Stack[S]) PushOne(n S) {
	var lv []S
	if k := len(s.free); k > 0 {
		lv = s.free[k-1][:1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		//lint:allow hotalloc free-list miss fallback, steady state reuses recycled arrays
		lv = make([]S, 1)
	}
	lv[0] = n
	//lint:allow hotalloc levels array reaches steady-state depth, then stops growing
	s.levels = append(s.levels, lv)
	s.size++
}

// Clear empties the stack in place: element references are zeroed for the
// garbage collector and the level arrays move to the recycle list (bounded
// by maxFree), so a cleared stack refills without allocating.  The engine
// uses it on the per-shard spare stacks that shuttle split work from donor
// to receiver during a load-balancing phase.
//
//lint:hotpath
func (s *Stack[S]) Clear() {
	var zero S
	for i, lv := range s.levels {
		for j := range lv {
			lv[j] = zero
		}
		if cap(lv) > 0 && len(s.free) < maxFree {
			//lint:allow hotalloc free-list append is bounded by maxFree
			s.free = append(s.free, lv[:0])
		}
		s.levels[i] = nil
	}
	s.levels = s.levels[:0]
	s.size = 0
}

// removeBottom removes and returns the first alternative of the shallowest
// non-empty level: the node closest to the root, which (in an unstructured
// tree) roots the largest expected subtree on the stack.
func (s *Stack[S]) removeBottom() (S, bool) {
	var zero S
	for i, lv := range s.levels {
		if len(lv) == 0 {
			continue
		}
		node := lv[0]
		copy(lv, lv[1:])
		lv[len(lv)-1] = zero
		s.levels[i] = lv[:len(lv)-1]
		s.size--
		s.trim()
		return node, true
	}
	return zero, false
}

// Append merges the donated stack d into s, appending its levels above the
// current top.  The donor stack is emptied.  Receivers use it to install
// transferred work; because every node carries its own path cost, the level
// renumbering does not affect search correctness.
func (s *Stack[S]) Append(d *Stack[S]) {
	for _, lv := range d.levels {
		if len(lv) > 0 {
			//lint:allow hotalloc foreign-splitter fallback, the engine's transfers use SplitInto
			s.levels = append(s.levels, lv)
			s.size += len(lv)
		}
	}
	d.levels = nil
	d.size = 0
}

// AppendCopy merges the donated stack d into s like Append, but copies the
// level contents (reusing s's recycled arrays when possible) instead of
// taking ownership of d's storage.  The donor keeps its backing arrays, so
// a spare stack that shuttles transferred work can be Cleared and reused
// without either side allocating in steady state.
//
//lint:hotpath
func (s *Stack[S]) AppendCopy(d *Stack[S]) {
	for _, lv := range d.levels {
		if len(lv) > 0 {
			s.PushLevelCopy(lv)
		}
	}
}

// Clone returns a deep structural copy of the stack (node values are
// copied with assignment).
func (s *Stack[S]) Clone() *Stack[S] {
	c := &Stack[S]{size: s.size, levels: make([][]S, len(s.levels))}
	for i, lv := range s.levels {
		c.levels[i] = append([]S(nil), lv...)
	}
	return c
}

// ForEachLevel calls f on every level in bottom-to-top order.  The slices
// are the stack's own storage and must not be mutated; serialisers use
// this to preserve level structure without copying.
func (s *Stack[S]) ForEachLevel(f func(level []S)) {
	for _, lv := range s.levels {
		f(lv)
	}
}

// Flatten returns all untried alternatives in bottom-to-top order; it is
// intended for tests and diagnostics.
func (s *Stack[S]) Flatten() []S {
	out := make([]S, 0, s.size)
	for _, lv := range s.levels {
		out = append(out, lv...)
	}
	return out
}

// A Splitter divides the work on a stack into two non-empty parts, leaving
// one part on the donor stack and returning the other.  Implementations
// must not be called on stacks with fewer than two nodes; callers guard
// with Splittable.
type Splitter[S any] interface {
	// Name identifies the splitter in reports.
	Name() string
	// Split removes part of s and returns it as a freshly allocated
	// stack.  After the call both s and the result are non-empty,
	// provided s.Splittable() held beforehand.
	Split(s *Stack[S]) *Stack[S]
}

// IntoSplitter is the allocation-free form of Splitter: the donated part is
// pushed onto dst (which must be empty) instead of a freshly allocated
// stack, so a recycled spare stack absorbs the split without allocating.
// The donated contents are identical to Split's.  All splitters in this
// package implement it; the engine falls back to Split for foreign ones.
type IntoSplitter[S any] interface {
	Splitter[S]
	// SplitInto removes part of src and pushes it onto dst.
	SplitInto(src, dst *Stack[S])
}

// BottomNode donates the single alternative at the bottom of the stack.
// For the 15-puzzle "this appears to provide a reasonable alpha-splitting
// mechanism" (Section 5): the bottom node roots the largest untried
// subtree.
type BottomNode[S any] struct{}

// Name implements Splitter.
func (BottomNode[S]) Name() string { return "bottom-node" }

// Split implements Splitter.
func (b BottomNode[S]) Split(s *Stack[S]) *Stack[S] {
	out := New[S]()
	b.SplitInto(s, out)
	return out
}

// SplitInto implements IntoSplitter.
//
//lint:hotpath
func (BottomNode[S]) SplitInto(src, dst *Stack[S]) {
	if node, ok := src.removeBottom(); ok {
		dst.PushOne(node)
	}
}

// HalfStack donates the first half of the alternatives of every level,
// approximating an alpha of one half in stack-node terms.
type HalfStack[S any] struct{}

// Name implements Splitter.
func (HalfStack[S]) Name() string { return "half-stack" }

// Split implements Splitter.
func (h HalfStack[S]) Split(s *Stack[S]) *Stack[S] {
	out := New[S]()
	h.SplitInto(s, out)
	return out
}

// SplitInto implements IntoSplitter.
//
//lint:hotpath
func (HalfStack[S]) SplitInto(src, dst *Stack[S]) {
	moved := 0
	for i, lv := range src.levels {
		k := len(lv) / 2
		if k == 0 {
			continue
		}
		dst.PushLevelCopy(lv[:k])
		rest := lv[:copy(lv, lv[k:])]
		// Zero the vacated tail so the garbage collector can reclaim nodes.
		var zero S
		for j := len(rest); j < len(lv); j++ {
			lv[j] = zero
		}
		src.levels[i] = rest
		src.size -= k
		moved += k
	}
	if moved == 0 {
		// Every level had a single alternative; fall back to the bottom
		// node so the split is still non-empty.
		if node, ok := src.removeBottom(); ok {
			dst.PushOne(node)
		}
	}
	src.trim()
}

// TopNode donates the single deepest alternative.  It is a deliberately
// poor splitting mechanism (tiny alpha) included for ablation experiments
// on splitter quality.
type TopNode[S any] struct{}

// Name implements Splitter.
func (TopNode[S]) Name() string { return "top-node" }

// Split implements Splitter.
func (t TopNode[S]) Split(s *Stack[S]) *Stack[S] {
	out := New[S]()
	t.SplitInto(s, out)
	return out
}

// SplitInto implements IntoSplitter.
//
//lint:hotpath
func (TopNode[S]) SplitInto(src, dst *Stack[S]) {
	if node, ok := src.Pop(); ok {
		dst.PushOne(node)
	}
}

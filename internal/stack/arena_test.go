package stack

import (
	"math/rand"
	"reflect"
	"testing"
)

// flattenPE returns PE pe's nodes bottom-to-top, one slice per level.
func flattenPE(a *Arena[int], pe int) [][]int {
	var out [][]int
	a.ForEachLevel(pe, func(lv []int) {
		out = append(out, append([]int(nil), lv...))
	})
	return out
}

// stackLevels returns s's levels as copies, skipping empties (the arena's
// canonical form, which the wire encoding shares).
func stackLevels(s *Stack[int]) [][]int {
	var out [][]int
	s.ForEachLevel(func(lv []int) {
		if len(lv) > 0 {
			out = append(out, append([]int(nil), lv...))
		}
	})
	return out
}

// checkBits verifies invariant 2: the has-work and can-split bits mirror
// the per-PE sizes at every quiescent point.
func checkBits(t *testing.T, a *Arena[int]) {
	t.Helper()
	for pe := 0; pe < a.P(); pe++ {
		if got, want := a.WorkBits().Get(pe), a.Size(pe) > 0; got != want {
			t.Fatalf("PE %d: work bit = %v, size = %d", pe, got, a.Size(pe))
		}
		if got, want := a.SplitBits().Get(pe), a.Size(pe) >= 2; got != want {
			t.Fatalf("PE %d: split bit = %v, size = %d", pe, got, a.Size(pe))
		}
	}
}

// checkLevelInvariant verifies invariant 1: every live level holds at
// least one node, and the level lengths sum to the size.
func checkLevelInvariant(t *testing.T, a *Arena[int], pe int) {
	t.Helper()
	total := 0
	a.ForEachLevel(pe, func(lv []int) {
		if len(lv) == 0 {
			t.Fatalf("PE %d: empty live level", pe)
		}
		total += len(lv)
	})
	if total != a.Size(pe) {
		t.Fatalf("PE %d: levels sum to %d, size is %d", pe, total, a.Size(pe))
	}
}

// TestArenaMatchesStack drives an arena PE and a Stack through the same
// random operation sequence and checks they stay observationally
// identical: same size, depth, pop results, bottom removals, and the same
// canonical level structure.
func TestArenaMatchesStack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := NewArena[int](4)
		s := New[int]()
		next := 0
		for op := 0; op < 120; op++ {
			switch rng.Intn(4) {
			case 0: // push a level
				width := 1 + rng.Intn(5)
				lv := make([]int, width)
				for i := range lv {
					lv[i] = next
					next++
				}
				a.PushLevel(1, lv)
				s.PushLevelCopy(lv)
			case 1: // pop
				av, aok := a.Pop(1)
				sv, sok := s.Pop()
				if av != sv || aok != sok {
					t.Fatalf("Pop: arena %d,%v stack %d,%v", av, aok, sv, sok)
				}
			case 2: // remove bottom
				av, aok := a.RemoveBottom(1)
				sv, sok := s.removeBottom()
				if av != sv || aok != sok {
					t.Fatalf("RemoveBottom: arena %d,%v stack %d,%v", av, aok, sv, sok)
				}
			case 3: // push one
				a.PushOne(1, next)
				s.PushOne(next)
				next++
			}
			if a.Size(1) != s.Size() {
				t.Fatalf("size: arena %d, stack %d", a.Size(1), s.Size())
			}
			if a.Empty(1) != s.Empty() || a.Splittable(1) != s.Splittable() {
				t.Fatalf("flags diverge at size %d", s.Size())
			}
			checkLevelInvariant(t, a, 1)
			checkBits(t, a)
			if got, want := flattenPE(a, 1), stackLevels(s); !reflect.DeepEqual(got, want) {
				t.Fatalf("levels diverge:\narena %v\nstack %v", got, want)
			}
		}
	}
}

// TestArenaSplittersMatchSplitInto checks that every ArenaSplitter moves
// exactly the nodes its SplitInto form would: same donated levels in the
// same order, same donor remainder.
func TestArenaSplittersMatchSplitInto(t *testing.T) {
	splitters := []ArenaSplitter[int]{BottomNode[int]{}, HalfStack[int]{}, TopNode[int]{}}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		for _, sp := range splitters {
			src := buildRandom(rng)
			if !src.Splittable() {
				continue
			}
			a := NewArena[int](2)
			a.InstallFromStack(0, src)
			// Give the receiver pre-existing work half the time, so the
			// append-above-top path is exercised too.
			var pre *Stack[int]
			if rng.Intn(2) == 0 {
				pre = New(9000, 9001)
				a.InstallFromStack(1, pre)
			}
			moved := sp.SplitArena(a, 0, 1)
			a.SyncBits(0)
			a.SyncBits(1)

			dst := New[int]()
			sp.(IntoSplitter[int]).SplitInto(src, dst)
			if moved != dst.Size() {
				t.Fatalf("%s: arena moved %d, SplitInto moved %d", sp.Name(), moved, dst.Size())
			}
			want := stackLevels(src)
			if got := flattenPE(a, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: donor remainder diverges:\narena %v\nstack %v", sp.Name(), got, want)
			}
			wantRecv := stackLevels(dst)
			if pre != nil {
				wantRecv = append(stackLevels(pre), wantRecv...)
			}
			if got := flattenPE(a, 1); !reflect.DeepEqual(got, wantRecv) {
				t.Fatalf("%s: receiver diverges:\narena %v\nstack %v", sp.Name(), got, wantRecv)
			}
			checkLevelInvariant(t, a, 0)
			checkLevelInvariant(t, a, 1)
			checkBits(t, a)
		}
	}
}

// TestArenaInstallMaterializeRoundTrip checks Install → Materialize is the
// identity on canonical level structure, and that neither direction
// aliases storage across the arena boundary.
func TestArenaInstallMaterializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		s := buildRandom(rng)
		want := stackLevels(s)
		a := NewArena[int](1)
		a.InstallFromStack(0, s)
		// The install copies: mutating the source afterwards must not be
		// visible in the arena.
		if v, ok := s.Pop(); ok {
			_ = v
		}
		if got := flattenPE(a, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("arena aliases the installed stack:\n%v\n%v", got, want)
		}
		m := a.MaterializeStack(0)
		if got := stackLevels(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip diverges:\n%v\n%v", got, want)
		}
		// Materialisation copies too: draining the arena must not disturb
		// the materialised stack.
		a.Clear(0)
		if got := stackLevels(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("materialised stack aliases the arena:\n%v\n%v", got, want)
		}
	}
}

// TestArenaNilInstallClears checks the nil-install contract InstallStack
// relies on to empty shard PEs.
func TestArenaNilInstallClears(t *testing.T) {
	a := NewArena[int](1)
	a.PushLevel(0, []int{1, 2, 3})
	a.InstallFromStack(0, nil)
	if !a.Empty(0) || a.Depth(0) != 0 || a.WorkBits().Get(0) {
		t.Fatalf("nil install left size=%d depth=%d", a.Size(0), a.Depth(0))
	}
}

// TestArenaSteadyStateZeroAlloc checks the expansion cycle contract: once
// a PE's buffer and level table have grown to the working-set size,
// push/pop churn allocates nothing.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena[int](2)
	lv := []int{1, 2, 3, 4}
	// Warm up both PEs past the working-set high-water mark.
	for i := 0; i < 64; i++ {
		a.PushLevel(0, lv)
		a.PushLevel(1, lv)
	}
	a.Clear(0)
	a.Clear(1)
	a.PushLevel(0, lv)
	a.PushLevel(0, lv)
	sp := HalfStack[int]{}
	allocs := testing.AllocsPerRun(200, func() {
		// One expansion step: pop a node, push its successors.
		a.Pop(0)
		a.PushLevel(0, lv)
		// One transfer: split half of PE 0 onto PE 1, then drain PE 1.
		sp.SplitArena(a, 0, 1)
		a.SyncBits(0)
		a.SyncBits(1)
		for !a.Empty(1) {
			a.Pop(1)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state cycle allocates %.1f times", allocs)
	}
}

// captureBottom copies the bottom k resident levels of PE pe into a Stack,
// the way the spill manager serialises an eviction.
func captureBottom(a *Arena[int], pe, k int) *Stack[int] {
	seg := New[int]()
	a.ForEachBottomLevel(pe, k, func(lv []int) {
		seg.PushLevelCopy(lv)
	})
	return seg
}

// TestArenaDropRestoreRoundTrip drives a PE through random interleavings
// of pushes, pops, evictions (DropBottom) and restores (PrependStack) and
// checks that (a) the schedule-visible quantities — total size, depth,
// flags, bits — never see the residency changes, and (b) after restoring
// everything the level structure equals a reference Stack that ran the
// same pushes and pops.
func TestArenaDropRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		a := NewArena[int](2)
		ref := New[int]()
		var segs []*Stack[int] // LIFO of evicted segments
		next := 0
		for op := 0; op < 150; op++ {
			switch rng.Intn(5) {
			case 0, 1: // push a level
				width := 1 + rng.Intn(4)
				lv := make([]int, width)
				for i := range lv {
					lv[i] = next
					next++
				}
				a.PushLevel(1, lv)
				ref.PushLevelCopy(lv)
			case 2: // pop (only when the top is resident, as the engine guarantees)
				if a.Resident(1) == 0 && a.Ghost(1) > 0 {
					a.PrependStack(1, segs[len(segs)-1])
					segs = segs[:len(segs)-1]
				}
				av, aok := a.Pop(1)
				sv, sok := ref.Pop()
				if av != sv || aok != sok {
					t.Fatalf("Pop: arena %d,%v ref %d,%v", av, aok, sv, sok)
				}
			case 3: // evict all but the top 2 resident levels
				if k := a.ResidentDepth(1) - 2; k > 0 {
					seg := captureBottom(a, 1, k)
					if n := a.DropBottom(1, k); n != seg.Size() {
						t.Fatalf("DropBottom moved %d nodes, captured %d", n, seg.Size())
					}
					segs = append(segs, seg)
				}
			case 4: // restore the newest segment
				if len(segs) > 0 {
					a.PrependStack(1, segs[len(segs)-1])
					segs = segs[:len(segs)-1]
				}
			}
			if a.Size(1) != ref.Size() || a.Depth(1) != ref.Depth() {
				t.Fatalf("totals diverge: arena size=%d depth=%d, ref size=%d depth=%d",
					a.Size(1), a.Depth(1), ref.Size(), ref.Depth())
			}
			if a.Empty(1) != ref.Empty() || a.Splittable(1) != ref.Splittable() {
				t.Fatalf("flags diverge at size %d", ref.Size())
			}
			checkBits(t, a)
			if a.Resident(1)+a.Ghost(1) != a.Size(1) {
				t.Fatalf("resident %d + ghost %d != total %d", a.Resident(1), a.Ghost(1), a.Size(1))
			}
		}
		// Restore everything and compare the full level structure.
		for len(segs) > 0 {
			a.PrependStack(1, segs[len(segs)-1])
			segs = segs[:len(segs)-1]
		}
		if a.Ghost(1) != 0 || a.GhostLevels(1) != 0 {
			t.Fatalf("ghost accounting left over: %d nodes, %d levels", a.Ghost(1), a.GhostLevels(1))
		}
		if got, want := flattenPE(a, 1), stackLevels(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("levels diverge after full restore:\narena %v\nref %v", got, want)
		}
		checkLevelInvariant(t, a, 1)
	}
}

// TestArenaClearDropsGhost checks the clear/reinstall contract: a cleared
// PE owes nothing to stable storage.
func TestArenaClearDropsGhost(t *testing.T) {
	a := NewArena[int](1)
	for i := 0; i < 6; i++ {
		a.PushLevel(0, []int{i, i + 100})
	}
	a.DropBottom(0, 3)
	if a.Ghost(0) == 0 {
		t.Fatal("eviction recorded no ghost nodes")
	}
	a.InstallFromStack(0, New(1, 2, 3))
	if a.Ghost(0) != 0 || a.GhostLevels(0) != 0 {
		t.Fatalf("reinstall kept ghost accounting: %d nodes, %d levels", a.Ghost(0), a.GhostLevels(0))
	}
	if a.Size(0) != 3 {
		t.Fatalf("reinstalled size = %d, want 3", a.Size(0))
	}
}

// TestArenaBottomRemovalReclaimsSpace checks that the head offset left by
// bottom-node donations is reclaimed by the window slide rather than by
// growing the buffer: a donor that cycles forever must reach a fixed
// buffer size.
func TestArenaBottomRemovalReclaimsSpace(t *testing.T) {
	a := NewArena[int](1)
	lv := []int{1, 2}
	a.PushLevel(0, lv)
	a.PushLevel(0, lv)
	for i := 0; i < 10; i++ {
		a.RemoveBottom(0)
		a.PushOne(0, i)
	}
	grown := len(a.bufs[0])
	for i := 0; i < 10000; i++ {
		a.RemoveBottom(0)
		a.PushOne(0, i)
	}
	if len(a.bufs[0]) != grown {
		t.Errorf("buffer grew from %d to %d under steady bottom-removal churn", grown, len(a.bufs[0]))
	}
}

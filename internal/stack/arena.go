package stack

import "simdtree/internal/scan"

// Arena is the structure-of-arrays form of P DFS stacks: instead of P
// independent Stack values whose levels are pointer-chased [][]S slices,
// every per-PE quantity lives in one flat array indexed by PE, and each
// PE's nodes occupy one contiguous window of a per-PE buffer.
//
// Layout, for processing element pe:
//
//	bufs[pe][head[pe] : head[pe]+size[pe]]   live nodes, bottom-to-top
//	lvls[pe][lvlLo[pe] : lvlLo[pe]+depth[pe]] level lengths, bottom first
//
// The head offset makes bottom-node removal O(1) (advance head, shrink
// the bottom level) and lets half-stack splits run as one compaction pass
// of range copies.  Two invariants hold at every quiescent point:
//
//  1. Every live level holds at least one node.  Empty levels are dropped
//     the moment they form (a pop draining the top level, a bottom
//     removal draining the bottom one), which the search order cannot
//     observe: every Stack operation skips or trims empty levels, and the
//     wire encoding canonically omits them.
//  2. The has-work bitset has bit pe set iff size[pe] > 0, and the
//     can-split bitset iff size[pe] >= 2 — after SyncBits(pe).  The
//     exported mutators keep the bits fresh themselves; the unexported
//     raw operations (used by ArenaSplitter implementations, which may
//     run on concurrent host shards over arbitrary PE pairs) deliberately
//     do not touch the shared bitset words, and their callers re-sync
//     sequentially afterwards.
//
// An Arena is not safe for concurrent use except as the engine shards it:
// concurrent mutators must touch disjoint PEs, and flag maintenance for
// PEs that may share a bitset word with another shard's PEs must be
// deferred to a sequential reduction (see simd.Context.TransferAll).
//
// A memory-bounded run may evict the coldest bottom levels of a PE to
// stable storage (see internal/spill): the in-memory window then holds
// only the top of the stack, and the ghost counters record how many nodes
// and levels sit below it on disk.  Everything the schedule observes —
// Size, Depth, Empty, Splittable, and the two bitsets — reports the total
// (resident + ghost), so evicting and restoring is invisible to the
// search order; the internal size/depth/lvls state and the raw mutators
// describe the resident window only.  Operations that need the whole
// stack (RemoveBottom, ForEachLevel, MaterializeStack, the splitters) are
// only valid on a fully resident PE; the engine faults evicted levels
// back in before calling them.
type Arena[S any] struct {
	p     int
	bufs  [][]S
	head  []int
	size  []int // resident nodes
	lvls  [][]int
	lvlLo []int
	depth []int     // resident levels
	ghost []int     // evicted nodes below the resident window
	ghLvl []int     // evicted levels below the resident window
	work  scan.Bits // bit pe: total size > 0
	split scan.Bits // bit pe: total size >= 2
}

// NewArena returns an arena of p empty stacks.  Per-PE buffers are
// allocated lazily on first push, so idle PEs of a large machine cost a
// few words each.
func NewArena[S any](p int) *Arena[S] {
	return &Arena[S]{
		p:     p,
		bufs:  make([][]S, p),
		head:  make([]int, p),
		size:  make([]int, p),
		lvls:  make([][]int, p),
		lvlLo: make([]int, p),
		depth: make([]int, p),
		ghost: make([]int, p),
		ghLvl: make([]int, p),
		work:  scan.NewBits(p),
		split: scan.NewBits(p),
	}
}

// P returns the number of PEs.
func (a *Arena[S]) P() int { return a.p }

// Size returns the number of live nodes on PE pe's stack, including any
// evicted (ghost) nodes — the quantity the schedule observes.
func (a *Arena[S]) Size(pe int) int { return a.size[pe] + a.ghost[pe] }

// Empty reports that PE pe has no work at all, resident or evicted.
func (a *Arena[S]) Empty(pe int) bool { return a.size[pe]+a.ghost[pe] == 0 }

// Splittable reports that PE pe's stack can be divided into two non-empty
// parts (the paper's "busy"), counting evicted nodes.
func (a *Arena[S]) Splittable(pe int) bool { return a.size[pe]+a.ghost[pe] >= 2 }

// Depth returns the number of live levels on PE pe's stack, including
// evicted ones.
func (a *Arena[S]) Depth(pe int) int { return a.depth[pe] + a.ghLvl[pe] }

// Resident returns the number of nodes held in memory for PE pe.
func (a *Arena[S]) Resident(pe int) int { return a.size[pe] }

// ResidentDepth returns the number of in-memory levels of PE pe.
func (a *Arena[S]) ResidentDepth(pe int) int { return a.depth[pe] }

// Ghost returns the number of evicted nodes sitting on stable storage
// below PE pe's resident window.
func (a *Arena[S]) Ghost(pe int) int { return a.ghost[pe] }

// GhostLevels returns the number of evicted levels of PE pe.
func (a *Arena[S]) GhostLevels(pe int) int { return a.ghLvl[pe] }

// WorkBits exposes the has-work bitset (bit pe: PE pe has nodes).  It is
// the arena's own storage: callers must treat it as read-only and as
// valid only at quiescent points (after the pending SyncBits calls).
func (a *Arena[S]) WorkBits() scan.Bits { return a.work }

// SplitBits exposes the can-split bitset (bit pe: PE pe holds at least
// two nodes).  Same ownership rules as WorkBits.
func (a *Arena[S]) SplitBits() scan.Bits { return a.split }

// NoWork reports that every PE is empty — the run-loop termination
// reduction, one word compare per 64 PEs.
func (a *Arena[S]) NoWork() bool { return a.work.None() }

// AnySplittable reports that some PE could donate.
func (a *Arena[S]) AnySplittable() bool { return a.split.Any() }

// SyncBits recomputes PE pe's has-work and can-split bits from its total
// size (resident plus ghost, so eviction never flips a flag).  The
// exported mutators call it themselves; callers of the raw splitter path
// (ArenaSplitter) call it once per touched PE, sequentially, after any
// parallel region.
//
//lint:hotpath
func (a *Arena[S]) SyncBits(pe int) {
	sz := a.size[pe] + a.ghost[pe]
	a.work.SetTo(pe, sz > 0)
	a.split.SetTo(pe, sz >= 2)
}

// minArenaCap is the initial per-PE buffer capacity on first growth.
const minArenaCap = 16

// ensureTail makes room for n more nodes at PE pe's tail and returns the
// buffer and the index to write the first new node at.  It prefers
// sliding the live window back to the front of the existing buffer
// (reclaiming the space bottom-node removals vacated) over growing.
func (a *Arena[S]) ensureTail(pe, n int) ([]S, int) {
	buf := a.bufs[pe]
	head, sz := a.head[pe], a.size[pe]
	if head+sz+n <= len(buf) {
		return buf, head + sz
	}
	if sz+n <= len(buf) {
		// Slide the live window to the front; zero the vacated tail so the
		// garbage collector can reclaim the nodes.
		copy(buf, buf[head:head+sz])
		var zero S
		for i := sz; i < head+sz; i++ {
			buf[i] = zero
		}
		a.head[pe] = 0
		return buf, sz
	}
	nc := 2 * len(buf)
	if nc < sz+n {
		nc = sz + n
	}
	if nc < minArenaCap {
		nc = minArenaCap
	}
	//lint:allow hotalloc per-PE buffer doubles to the live stack size, then stops growing
	nb := make([]S, nc)
	copy(nb, buf[head:head+sz])
	a.bufs[pe] = nb
	a.head[pe] = 0
	return nb, sz
}

// pushLevelLen appends one level length to PE pe's level table.
func (a *Arena[S]) pushLevelLen(pe, n int) {
	lv := a.lvls[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	switch {
	case lo+d < len(lv):
		lv[lo+d] = n
	case d < len(lv):
		// Slide the live window to the front of the table.
		copy(lv, lv[lo:lo+d])
		a.lvlLo[pe] = 0
		lv[d] = n
	default:
		nc := 2 * len(lv)
		if nc < d+1 {
			nc = d + 1
		}
		if nc < minArenaCap {
			nc = minArenaCap
		}
		//lint:allow hotalloc per-PE level table doubles to the live depth, then stops growing
		nl := make([]int, nc)
		copy(nl, lv[lo:lo+d])
		a.lvls[pe] = nl
		a.lvlLo[pe] = 0
		nl[d] = n
	}
	a.depth[pe] = d + 1
}

// pushLevelRaw copies alts onto PE pe as a deeper level without touching
// the bitsets.  Empty slices are ignored.
func (a *Arena[S]) pushLevelRaw(pe int, alts []S) {
	n := len(alts)
	if n == 0 {
		return
	}
	buf, tail := a.ensureTail(pe, n)
	copy(buf[tail:tail+n], alts)
	a.pushLevelLen(pe, n)
	a.size[pe] += n
}

// PushLevel copies the untried alternatives of a newly expanded node onto
// PE pe as a deeper level; the caller keeps ownership of alts.  It is the
// expansion fast path: a contiguous tail copy plus one level-table write.
//
//lint:hotpath
func (a *Arena[S]) PushLevel(pe int, alts []S) {
	a.pushLevelRaw(pe, alts)
	a.SyncBits(pe)
}

// pushOneRaw pushes a single alternative as a deeper level without
// touching the bitsets.
func (a *Arena[S]) pushOneRaw(pe int, node S) {
	buf, tail := a.ensureTail(pe, 1)
	buf[tail] = node
	a.pushLevelLen(pe, 1)
	a.size[pe]++
}

// PushOne pushes a single alternative as a deeper level — the receiver
// side of a single-node donation.
//
//lint:hotpath
func (a *Arena[S]) PushOne(pe int, node S) {
	a.pushOneRaw(pe, node)
	a.SyncBits(pe)
}

// popRaw removes and returns the deepest alternative without touching the
// bitsets.
func (a *Arena[S]) popRaw(pe int) (S, bool) {
	var zero S
	sz := a.size[pe]
	if sz == 0 {
		return zero, false
	}
	buf := a.bufs[pe]
	tail := a.head[pe] + sz - 1
	node := buf[tail]
	buf[tail] = zero // release the reference for the garbage collector
	a.size[pe] = sz - 1
	lo, d := a.lvlLo[pe], a.depth[pe]
	lv := a.lvls[pe]
	lv[lo+d-1]--
	if lv[lo+d-1] == 0 {
		// Only the decremented top level can have emptied (invariant 1).
		a.depth[pe] = d - 1
		if d == 1 {
			a.lvlLo[pe], a.head[pe] = 0, 0
		}
	}
	return node, true
}

// Pop removes and returns the next node in depth-first order: the last
// untried alternative of the deepest level.  It reports false when PE pe
// is empty.
//
//lint:hotpath
func (a *Arena[S]) Pop(pe int) (S, bool) {
	node, ok := a.popRaw(pe)
	if ok {
		a.SyncBits(pe)
	}
	return node, ok
}

// removeBottomRaw removes and returns the first alternative of the bottom
// resident level — the node closest to the root, provided the PE is fully
// resident (no ghost levels below the window) — without touching the
// bitsets.  Because empty levels are dropped as they form, this is O(1):
// advance the head offset and shrink the bottom level.
func (a *Arena[S]) removeBottomRaw(pe int) (S, bool) {
	var zero S
	sz := a.size[pe]
	if sz == 0 {
		return zero, false
	}
	head := a.head[pe]
	buf := a.bufs[pe]
	node := buf[head]
	buf[head] = zero
	a.head[pe] = head + 1
	a.size[pe] = sz - 1
	lo := a.lvlLo[pe]
	lv := a.lvls[pe]
	lv[lo]--
	if lv[lo] == 0 {
		a.lvlLo[pe] = lo + 1
		a.depth[pe]--
		if a.depth[pe] == 0 {
			a.lvlLo[pe], a.head[pe] = 0, 0
		}
	}
	return node, true
}

// RemoveBottom removes and returns the node closest to the root, which in
// an unstructured tree roots the largest expected untried subtree.  The PE
// must be fully resident: with levels evicted the true bottom lives on
// stable storage, and the engine faults it back in first.
//
//lint:hotpath
func (a *Arena[S]) RemoveBottom(pe int) (S, bool) {
	node, ok := a.removeBottomRaw(pe)
	if ok {
		a.SyncBits(pe)
	}
	return node, ok
}

// clearRaw empties PE pe in place without touching the bitsets, zeroing
// the live node window for the garbage collector.  Ghost accounting is
// dropped too — a cleared or reinstalled PE owes nothing to stable
// storage, and the spill manager discards any segment files it still
// holds for the PE the next time it looks.
func (a *Arena[S]) clearRaw(pe int) {
	var zero S
	buf := a.bufs[pe]
	head, sz := a.head[pe], a.size[pe]
	for i := head; i < head+sz; i++ {
		buf[i] = zero
	}
	a.head[pe], a.size[pe] = 0, 0
	a.lvlLo[pe], a.depth[pe] = 0, 0
	a.ghost[pe], a.ghLvl[pe] = 0, 0
}

// Clear empties PE pe, keeping its buffers for reuse.
func (a *Arena[S]) Clear(pe int) {
	a.clearRaw(pe)
	a.SyncBits(pe)
}

// ForEachLevel calls f on every resident level of PE pe in bottom-to-top
// order.  The slices are the arena's own storage and must not be mutated
// or retained; serialisers use this to preserve level structure without
// copying.  Callers that need the whole stack ensure the PE is fully
// resident first (Ghost(pe) == 0).
func (a *Arena[S]) ForEachLevel(pe int, f func(level []S)) {
	buf := a.bufs[pe]
	off := a.head[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	for _, n := range a.lvls[pe][lo : lo+d] {
		f(buf[off : off+n : off+n])
		off += n
	}
}

// MaterializeStack returns PE pe's stack as a freshly allocated Stack,
// level structure preserved.  Snapshots and donations use it to cross the
// arena boundary into the Stack-based serialisation surface; it allocates
// by design — hot transfers move nodes within the arena via SplitArena.
// The PE must be fully resident; the engine faults evicted levels back in
// before materialising.
func (a *Arena[S]) MaterializeStack(pe int) *Stack[S] {
	//lint:allow hotalloc materialisation allocates by design; hot transfers use SplitArena
	s := &Stack[S]{}
	buf := a.bufs[pe]
	off := a.head[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	for _, n := range a.lvls[pe][lo : lo+d] {
		s.PushLevelCopy(buf[off : off+n])
		off += n
	}
	return s
}

// InstallFromStack replaces PE pe's contents with a copy of s, skipping
// any empty interior levels (which the arena never represents — they are
// invisible to the search order and to the wire encoding).  The caller
// keeps ownership of s.
func (a *Arena[S]) InstallFromStack(pe int, s *Stack[S]) {
	a.clearRaw(pe)
	if s != nil {
		for _, lv := range s.levels {
			a.pushLevelRaw(pe, lv)
		}
	}
	a.SyncBits(pe)
}

// AppendFromStack copies s's levels above PE pe's current top, the
// receiver install of a cross-machine donation — identical in effect to
// Stack.AppendCopy.  The caller keeps ownership of s.
//
//lint:hotpath
func (a *Arena[S]) AppendFromStack(pe int, s *Stack[S]) {
	for _, lv := range s.levels {
		a.pushLevelRaw(pe, lv)
	}
	a.SyncBits(pe)
}

// ForEachBottomLevel calls f on the bottom k resident levels of PE pe in
// bottom-to-top order — the eviction serialiser's view of the coldest
// levels.  The slices are the arena's own storage and must not be mutated
// or retained.  k must not exceed ResidentDepth(pe).
//
//lint:hotpath
func (a *Arena[S]) ForEachBottomLevel(pe, k int, f func(level []S)) {
	buf := a.bufs[pe]
	off := a.head[pe]
	lo := a.lvlLo[pe]
	for _, n := range a.lvls[pe][lo : lo+k] {
		f(buf[off : off+n : off+n])
		off += n
	}
}

// DropBottom discards the bottom k resident levels of PE pe from memory,
// marking their nodes as ghost: the total Size/Depth the schedule sees is
// unchanged, the bitsets never flip, and only the resident window
// shrinks.  The caller (the spill manager) has already serialised the
// levels to stable storage and must restore them with PrependStack, in
// LIFO order, before anything touches the stack below the resident
// window.  It returns the number of nodes dropped.  k must be positive
// and at most ResidentDepth(pe); dropping every resident level is legal
// as long as a restore happens before the next pop.
//
//lint:hotpath
func (a *Arena[S]) DropBottom(pe, k int) int {
	lo := a.lvlLo[pe]
	nodes := 0
	for _, n := range a.lvls[pe][lo : lo+k] {
		nodes += n
	}
	var zero S
	buf := a.bufs[pe]
	head := a.head[pe]
	for i := head; i < head+nodes; i++ {
		buf[i] = zero
	}
	a.head[pe] = head + nodes
	a.size[pe] -= nodes
	a.lvlLo[pe] = lo + k
	a.depth[pe] -= k
	if a.depth[pe] == 0 {
		a.lvlLo[pe], a.head[pe] = 0, 0
	}
	a.ghost[pe] += nodes
	a.ghLvl[pe] += k
	return nodes
}

// PrependStack reattaches s's levels below PE pe's resident window — the
// restore half of DropBottom, undoing the most recent eviction.  The
// ghost counters shrink by s's node and level counts; the total
// Size/Depth and the bitsets are unchanged.  The caller keeps ownership
// of s.  Restores allocate when the vacated space in front of the window
// has since been reclaimed; the engine only restores at fault events,
// which are outside the steady-state zero-allocation contract.
func (a *Arena[S]) PrependStack(pe int, s *Stack[S]) {
	n := s.size
	k := len(s.levels)
	if n == 0 {
		return
	}
	buf := a.bufs[pe]
	head, sz := a.head[pe], a.size[pe]
	switch {
	case head >= n:
		// The space the eviction vacated is still in front of the window.
		head -= n
	case len(buf) >= n+sz:
		// Enough total capacity, wrong position: slide the window right
		// (copy is memmove, overlap-safe) instead of allocating — an
		// evict/restore thrash cycle must not grow the buffer each fault.
		copy(buf[n:n+sz], buf[head:head+sz])
		head = 0
	default:
		nc := 2 * len(buf)
		if nc < n+sz {
			nc = n + sz
		}
		if nc < minArenaCap {
			nc = minArenaCap
		}
		//lint:allow hotalloc restore fault path allocates by design (outside steady state)
		nb := make([]S, nc)
		copy(nb[n:], buf[head:head+sz])
		a.bufs[pe] = nb
		buf = nb
		head = 0
	}
	off := head
	for _, lv := range s.levels {
		off += copy(buf[off:], lv)
	}
	a.head[pe] = head
	a.size[pe] = sz + n

	// Prepend the level lengths below the live level-table window.
	lv := a.lvls[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	switch {
	case lo >= k:
		lo -= k
	case len(lv) >= k+d:
		copy(lv[k:k+d], lv[lo:lo+d])
		lo = 0
	default:
		nc := 2 * len(lv)
		if nc < k+d {
			nc = k + d
		}
		if nc < minArenaCap {
			nc = minArenaCap
		}
		//lint:allow hotalloc restore fault path allocates by design (outside steady state)
		nl := make([]int, nc)
		copy(nl[k:], lv[lo:lo+d])
		a.lvls[pe] = nl
		lv = nl
		lo = 0
	}
	for i, l := range s.levels {
		lv[lo+i] = len(l)
	}
	a.lvlLo[pe] = lo
	a.depth[pe] = d + k
	a.ghost[pe] -= n
	a.ghLvl[pe] -= k
}

// ArenaSplitter is implemented by splitters that can move work between
// two PEs of an arena directly — as range copies within flat storage —
// instead of materialising Stack values.  The donated contents are
// identical to SplitInto's.  Implementations run on the raw operations
// and do not update the arena bitsets: the engine re-syncs the two
// touched PEs sequentially after each transfer (or after the parallel
// transfer region), because concurrent transfers of different PE pairs
// may share bitset words.
type ArenaSplitter[S any] interface {
	Splitter[S]
	// SplitArena splits PE from's work and appends the donated part above
	// PE to's top, returning the number of nodes moved.
	SplitArena(a *Arena[S], from, to int) int
}

// SplitArena implements ArenaSplitter: the bottom node moves from donor
// to receiver in two O(1) steps (head-offset removal, single-node push).
//
//lint:hotpath
func (BottomNode[S]) SplitArena(a *Arena[S], from, to int) int {
	node, ok := a.removeBottomRaw(from)
	if !ok {
		return 0
	}
	a.pushOneRaw(to, node)
	return 1
}

// SplitArena implements ArenaSplitter: the first half of every donor
// level is appended to the receiver as contiguous range copies, and the
// kept halves are compacted toward the front of the donor's window in a
// single forward pass.
//
//lint:hotpath
func (HalfStack[S]) SplitArena(a *Arena[S], from, to int) int {
	if from == to {
		return 0
	}
	buf := a.bufs[from]
	head := a.head[from]
	lo, d := a.lvlLo[from], a.depth[from]
	lv := a.lvls[from][lo : lo+d]
	moved := 0
	r, w := head, head
	for i, n := range lv {
		k := n / 2
		if k > 0 {
			a.pushLevelRaw(to, buf[r:r+k])
			lv[i] = n - k
			moved += k
		}
		if w != r+k {
			copy(buf[w:], buf[r+k:r+n])
		}
		w += n - k
		r += n
	}
	// Zero the vacated tail for the garbage collector.
	var zero S
	for i := w; i < r; i++ {
		buf[i] = zero
	}
	a.size[from] -= moved
	if moved == 0 {
		// Every level held a single alternative; fall back to the bottom
		// node so the split is still non-empty.
		if node, ok := a.removeBottomRaw(from); ok {
			a.pushOneRaw(to, node)
			moved = 1
		}
	}
	return moved
}

// SplitArena implements ArenaSplitter: the single deepest alternative
// moves to the receiver.
//
//lint:hotpath
func (TopNode[S]) SplitArena(a *Arena[S], from, to int) int {
	node, ok := a.popRaw(from)
	if !ok {
		return 0
	}
	a.pushOneRaw(to, node)
	return 1
}

package stack

import "simdtree/internal/scan"

// Arena is the structure-of-arrays form of P DFS stacks: instead of P
// independent Stack values whose levels are pointer-chased [][]S slices,
// every per-PE quantity lives in one flat array indexed by PE, and each
// PE's nodes occupy one contiguous window of a per-PE buffer.
//
// Layout, for processing element pe:
//
//	bufs[pe][head[pe] : head[pe]+size[pe]]   live nodes, bottom-to-top
//	lvls[pe][lvlLo[pe] : lvlLo[pe]+depth[pe]] level lengths, bottom first
//
// The head offset makes bottom-node removal O(1) (advance head, shrink
// the bottom level) and lets half-stack splits run as one compaction pass
// of range copies.  Two invariants hold at every quiescent point:
//
//  1. Every live level holds at least one node.  Empty levels are dropped
//     the moment they form (a pop draining the top level, a bottom
//     removal draining the bottom one), which the search order cannot
//     observe: every Stack operation skips or trims empty levels, and the
//     wire encoding canonically omits them.
//  2. The has-work bitset has bit pe set iff size[pe] > 0, and the
//     can-split bitset iff size[pe] >= 2 — after SyncBits(pe).  The
//     exported mutators keep the bits fresh themselves; the unexported
//     raw operations (used by ArenaSplitter implementations, which may
//     run on concurrent host shards over arbitrary PE pairs) deliberately
//     do not touch the shared bitset words, and their callers re-sync
//     sequentially afterwards.
//
// An Arena is not safe for concurrent use except as the engine shards it:
// concurrent mutators must touch disjoint PEs, and flag maintenance for
// PEs that may share a bitset word with another shard's PEs must be
// deferred to a sequential reduction (see simd.Context.TransferAll).
type Arena[S any] struct {
	p     int
	bufs  [][]S
	head  []int
	size  []int
	lvls  [][]int
	lvlLo []int
	depth []int
	work  scan.Bits // bit pe: size[pe] > 0
	split scan.Bits // bit pe: size[pe] >= 2
}

// NewArena returns an arena of p empty stacks.  Per-PE buffers are
// allocated lazily on first push, so idle PEs of a large machine cost a
// few words each.
func NewArena[S any](p int) *Arena[S] {
	return &Arena[S]{
		p:     p,
		bufs:  make([][]S, p),
		head:  make([]int, p),
		size:  make([]int, p),
		lvls:  make([][]int, p),
		lvlLo: make([]int, p),
		depth: make([]int, p),
		work:  scan.NewBits(p),
		split: scan.NewBits(p),
	}
}

// P returns the number of PEs.
func (a *Arena[S]) P() int { return a.p }

// Size returns the number of live nodes on PE pe's stack.
func (a *Arena[S]) Size(pe int) int { return a.size[pe] }

// Empty reports that PE pe has no work.
func (a *Arena[S]) Empty(pe int) bool { return a.size[pe] == 0 }

// Splittable reports that PE pe's stack can be divided into two non-empty
// parts (the paper's "busy").
func (a *Arena[S]) Splittable(pe int) bool { return a.size[pe] >= 2 }

// Depth returns the number of live levels on PE pe's stack.
func (a *Arena[S]) Depth(pe int) int { return a.depth[pe] }

// WorkBits exposes the has-work bitset (bit pe: PE pe has nodes).  It is
// the arena's own storage: callers must treat it as read-only and as
// valid only at quiescent points (after the pending SyncBits calls).
func (a *Arena[S]) WorkBits() scan.Bits { return a.work }

// SplitBits exposes the can-split bitset (bit pe: PE pe holds at least
// two nodes).  Same ownership rules as WorkBits.
func (a *Arena[S]) SplitBits() scan.Bits { return a.split }

// NoWork reports that every PE is empty — the run-loop termination
// reduction, one word compare per 64 PEs.
func (a *Arena[S]) NoWork() bool { return a.work.None() }

// AnySplittable reports that some PE could donate.
func (a *Arena[S]) AnySplittable() bool { return a.split.Any() }

// SyncBits recomputes PE pe's has-work and can-split bits from its size.
// The exported mutators call it themselves; callers of the raw splitter
// path (ArenaSplitter) call it once per touched PE, sequentially, after
// any parallel region.
//
//lint:hotpath
func (a *Arena[S]) SyncBits(pe int) {
	sz := a.size[pe]
	a.work.SetTo(pe, sz > 0)
	a.split.SetTo(pe, sz >= 2)
}

// minArenaCap is the initial per-PE buffer capacity on first growth.
const minArenaCap = 16

// ensureTail makes room for n more nodes at PE pe's tail and returns the
// buffer and the index to write the first new node at.  It prefers
// sliding the live window back to the front of the existing buffer
// (reclaiming the space bottom-node removals vacated) over growing.
func (a *Arena[S]) ensureTail(pe, n int) ([]S, int) {
	buf := a.bufs[pe]
	head, sz := a.head[pe], a.size[pe]
	if head+sz+n <= len(buf) {
		return buf, head + sz
	}
	if sz+n <= len(buf) {
		// Slide the live window to the front; zero the vacated tail so the
		// garbage collector can reclaim the nodes.
		copy(buf, buf[head:head+sz])
		var zero S
		for i := sz; i < head+sz; i++ {
			buf[i] = zero
		}
		a.head[pe] = 0
		return buf, sz
	}
	nc := 2 * len(buf)
	if nc < sz+n {
		nc = sz + n
	}
	if nc < minArenaCap {
		nc = minArenaCap
	}
	//lint:allow hotalloc per-PE buffer doubles to the live stack size, then stops growing
	nb := make([]S, nc)
	copy(nb, buf[head:head+sz])
	a.bufs[pe] = nb
	a.head[pe] = 0
	return nb, sz
}

// pushLevelLen appends one level length to PE pe's level table.
func (a *Arena[S]) pushLevelLen(pe, n int) {
	lv := a.lvls[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	switch {
	case lo+d < len(lv):
		lv[lo+d] = n
	case d < len(lv):
		// Slide the live window to the front of the table.
		copy(lv, lv[lo:lo+d])
		a.lvlLo[pe] = 0
		lv[d] = n
	default:
		nc := 2 * len(lv)
		if nc < d+1 {
			nc = d + 1
		}
		if nc < minArenaCap {
			nc = minArenaCap
		}
		//lint:allow hotalloc per-PE level table doubles to the live depth, then stops growing
		nl := make([]int, nc)
		copy(nl, lv[lo:lo+d])
		a.lvls[pe] = nl
		a.lvlLo[pe] = 0
		nl[d] = n
	}
	a.depth[pe] = d + 1
}

// pushLevelRaw copies alts onto PE pe as a deeper level without touching
// the bitsets.  Empty slices are ignored.
func (a *Arena[S]) pushLevelRaw(pe int, alts []S) {
	n := len(alts)
	if n == 0 {
		return
	}
	buf, tail := a.ensureTail(pe, n)
	copy(buf[tail:tail+n], alts)
	a.pushLevelLen(pe, n)
	a.size[pe] += n
}

// PushLevel copies the untried alternatives of a newly expanded node onto
// PE pe as a deeper level; the caller keeps ownership of alts.  It is the
// expansion fast path: a contiguous tail copy plus one level-table write.
//
//lint:hotpath
func (a *Arena[S]) PushLevel(pe int, alts []S) {
	a.pushLevelRaw(pe, alts)
	a.SyncBits(pe)
}

// pushOneRaw pushes a single alternative as a deeper level without
// touching the bitsets.
func (a *Arena[S]) pushOneRaw(pe int, node S) {
	buf, tail := a.ensureTail(pe, 1)
	buf[tail] = node
	a.pushLevelLen(pe, 1)
	a.size[pe]++
}

// PushOne pushes a single alternative as a deeper level — the receiver
// side of a single-node donation.
//
//lint:hotpath
func (a *Arena[S]) PushOne(pe int, node S) {
	a.pushOneRaw(pe, node)
	a.SyncBits(pe)
}

// popRaw removes and returns the deepest alternative without touching the
// bitsets.
func (a *Arena[S]) popRaw(pe int) (S, bool) {
	var zero S
	sz := a.size[pe]
	if sz == 0 {
		return zero, false
	}
	buf := a.bufs[pe]
	tail := a.head[pe] + sz - 1
	node := buf[tail]
	buf[tail] = zero // release the reference for the garbage collector
	a.size[pe] = sz - 1
	lo, d := a.lvlLo[pe], a.depth[pe]
	lv := a.lvls[pe]
	lv[lo+d-1]--
	if lv[lo+d-1] == 0 {
		// Only the decremented top level can have emptied (invariant 1).
		a.depth[pe] = d - 1
		if d == 1 {
			a.lvlLo[pe], a.head[pe] = 0, 0
		}
	}
	return node, true
}

// Pop removes and returns the next node in depth-first order: the last
// untried alternative of the deepest level.  It reports false when PE pe
// is empty.
//
//lint:hotpath
func (a *Arena[S]) Pop(pe int) (S, bool) {
	node, ok := a.popRaw(pe)
	if ok {
		a.SyncBits(pe)
	}
	return node, ok
}

// removeBottomRaw removes and returns the first alternative of the bottom
// level — the node closest to the root — without touching the bitsets.
// Because empty levels are dropped as they form, this is O(1): advance
// the head offset and shrink the bottom level.
func (a *Arena[S]) removeBottomRaw(pe int) (S, bool) {
	var zero S
	sz := a.size[pe]
	if sz == 0 {
		return zero, false
	}
	head := a.head[pe]
	buf := a.bufs[pe]
	node := buf[head]
	buf[head] = zero
	a.head[pe] = head + 1
	a.size[pe] = sz - 1
	lo := a.lvlLo[pe]
	lv := a.lvls[pe]
	lv[lo]--
	if lv[lo] == 0 {
		a.lvlLo[pe] = lo + 1
		a.depth[pe]--
		if a.depth[pe] == 0 {
			a.lvlLo[pe], a.head[pe] = 0, 0
		}
	}
	return node, true
}

// RemoveBottom removes and returns the node closest to the root, which in
// an unstructured tree roots the largest expected untried subtree.
//
//lint:hotpath
func (a *Arena[S]) RemoveBottom(pe int) (S, bool) {
	node, ok := a.removeBottomRaw(pe)
	if ok {
		a.SyncBits(pe)
	}
	return node, ok
}

// clearRaw empties PE pe in place without touching the bitsets, zeroing
// the live node window for the garbage collector.
func (a *Arena[S]) clearRaw(pe int) {
	var zero S
	buf := a.bufs[pe]
	head, sz := a.head[pe], a.size[pe]
	for i := head; i < head+sz; i++ {
		buf[i] = zero
	}
	a.head[pe], a.size[pe] = 0, 0
	a.lvlLo[pe], a.depth[pe] = 0, 0
}

// Clear empties PE pe, keeping its buffers for reuse.
func (a *Arena[S]) Clear(pe int) {
	a.clearRaw(pe)
	a.SyncBits(pe)
}

// ForEachLevel calls f on every live level of PE pe in bottom-to-top
// order.  The slices are the arena's own storage and must not be mutated
// or retained; serialisers use this to preserve level structure without
// copying.
func (a *Arena[S]) ForEachLevel(pe int, f func(level []S)) {
	buf := a.bufs[pe]
	off := a.head[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	for _, n := range a.lvls[pe][lo : lo+d] {
		f(buf[off : off+n : off+n])
		off += n
	}
}

// MaterializeStack returns PE pe's stack as a freshly allocated Stack,
// level structure preserved.  Snapshots and donations use it to cross the
// arena boundary into the Stack-based serialisation surface; it allocates
// by design — hot transfers move nodes within the arena via SplitArena.
func (a *Arena[S]) MaterializeStack(pe int) *Stack[S] {
	//lint:allow hotalloc materialisation allocates by design; hot transfers use SplitArena
	s := &Stack[S]{}
	buf := a.bufs[pe]
	off := a.head[pe]
	lo, d := a.lvlLo[pe], a.depth[pe]
	for _, n := range a.lvls[pe][lo : lo+d] {
		s.PushLevelCopy(buf[off : off+n])
		off += n
	}
	return s
}

// InstallFromStack replaces PE pe's contents with a copy of s, skipping
// any empty interior levels (which the arena never represents — they are
// invisible to the search order and to the wire encoding).  The caller
// keeps ownership of s.
func (a *Arena[S]) InstallFromStack(pe int, s *Stack[S]) {
	a.clearRaw(pe)
	if s != nil {
		for _, lv := range s.levels {
			a.pushLevelRaw(pe, lv)
		}
	}
	a.SyncBits(pe)
}

// AppendFromStack copies s's levels above PE pe's current top, the
// receiver install of a cross-machine donation — identical in effect to
// Stack.AppendCopy.  The caller keeps ownership of s.
//
//lint:hotpath
func (a *Arena[S]) AppendFromStack(pe int, s *Stack[S]) {
	for _, lv := range s.levels {
		a.pushLevelRaw(pe, lv)
	}
	a.SyncBits(pe)
}

// ArenaSplitter is implemented by splitters that can move work between
// two PEs of an arena directly — as range copies within flat storage —
// instead of materialising Stack values.  The donated contents are
// identical to SplitInto's.  Implementations run on the raw operations
// and do not update the arena bitsets: the engine re-syncs the two
// touched PEs sequentially after each transfer (or after the parallel
// transfer region), because concurrent transfers of different PE pairs
// may share bitset words.
type ArenaSplitter[S any] interface {
	Splitter[S]
	// SplitArena splits PE from's work and appends the donated part above
	// PE to's top, returning the number of nodes moved.
	SplitArena(a *Arena[S], from, to int) int
}

// SplitArena implements ArenaSplitter: the bottom node moves from donor
// to receiver in two O(1) steps (head-offset removal, single-node push).
//
//lint:hotpath
func (BottomNode[S]) SplitArena(a *Arena[S], from, to int) int {
	node, ok := a.removeBottomRaw(from)
	if !ok {
		return 0
	}
	a.pushOneRaw(to, node)
	return 1
}

// SplitArena implements ArenaSplitter: the first half of every donor
// level is appended to the receiver as contiguous range copies, and the
// kept halves are compacted toward the front of the donor's window in a
// single forward pass.
//
//lint:hotpath
func (HalfStack[S]) SplitArena(a *Arena[S], from, to int) int {
	if from == to {
		return 0
	}
	buf := a.bufs[from]
	head := a.head[from]
	lo, d := a.lvlLo[from], a.depth[from]
	lv := a.lvls[from][lo : lo+d]
	moved := 0
	r, w := head, head
	for i, n := range lv {
		k := n / 2
		if k > 0 {
			a.pushLevelRaw(to, buf[r:r+k])
			lv[i] = n - k
			moved += k
		}
		if w != r+k {
			copy(buf[w:], buf[r+k:r+n])
		}
		w += n - k
		r += n
	}
	// Zero the vacated tail for the garbage collector.
	var zero S
	for i := w; i < r; i++ {
		buf[i] = zero
	}
	a.size[from] -= moved
	if moved == 0 {
		// Every level held a single alternative; fall back to the bottom
		// node so the split is still non-empty.
		if node, ok := a.removeBottomRaw(from); ok {
			a.pushOneRaw(to, node)
			moved = 1
		}
	}
	return moved
}

// SplitArena implements ArenaSplitter: the single deepest alternative
// moves to the receiver.
//
//lint:hotpath
func (TopNode[S]) SplitArena(a *Arena[S], from, to int) int {
	node, ok := a.popRaw(from)
	if !ok {
		return 0
	}
	a.pushOneRaw(to, node)
	return 1
}

// Package bench pins the benchmark scenarios the repository's performance
// trajectory is measured against.  The same scenario definitions drive the
// root-package micro-benchmarks (`go test -bench`) and cmd/simdbench, the
// harness that writes the committed BENCH_<n>.json baselines the CI
// regression gate compares new runs to.
//
// Scenarios are deliberately tiny compared to the paper's experiments:
// their point is a stable, deterministic per-operation cost (a run's cycle
// and transfer schedule is bit-for-bit reproducible), so regressions in
// allocation count or wall-clock time stand out against a committed
// baseline instead of drowning in workload noise.
package bench

import (
	"context"
	"fmt"
	"os"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/spill"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// Scenario is one pinned benchmark configuration: a synthetic-tree search
// under a fixed scheme and machine size.  Every field participates in the
// deterministic schedule, so two runs of the same Scenario expand the same
// nodes in the same cycles.  MemBudget does NOT change the schedule — that
// is the residency manager's contract — only the eviction/fault traffic.
type Scenario struct {
	Name    string `json:"name"`
	Scheme  string `json:"scheme"`
	P       int    `json:"p"`
	Workers int    `json:"workers"`
	W       int64  `json:"w"`
	Seed    uint64 `json:"seed"`
	// MemBudget bounds resident stack bytes; 0 runs unbounded.  Budgeted
	// scenarios spill cold stack levels to a private temp directory.
	MemBudget int64 `json:"mem_budget,omitempty"`
}

// Run executes the scenario once and returns its Section 3.1 statistics.
func (sc Scenario) Run() (metrics.Stats, error) {
	stats, _, err := sc.RunSpill()
	return stats, err
}

// RunSpill executes the scenario once and also returns the residency
// manager's counters (zero for unbounded scenarios).
func (sc Scenario) RunSpill() (metrics.Stats, spill.Stats, error) {
	sch, err := simd.ParseScheme[synthetic.Node](sc.Scheme)
	if err != nil {
		return metrics.Stats{}, spill.Stats{}, fmt.Errorf("bench %s: %w", sc.Name, err)
	}
	tree := synthetic.New(sc.W, sc.Seed)
	opts := simd.Options{P: sc.P, Workers: sc.Workers, MemBudget: sc.MemBudget}
	m, err := simd.NewMachine[synthetic.Node](tree, sch, opts)
	if err != nil {
		return metrics.Stats{}, spill.Stats{}, fmt.Errorf("bench %s: %w", sc.Name, err)
	}
	var mgr *spill.Manager[synthetic.Node]
	if sc.MemBudget > 0 {
		dir, err := os.MkdirTemp("", "simdbench-spill-*")
		if err != nil {
			return metrics.Stats{}, spill.Stats{}, fmt.Errorf("bench %s: %w", sc.Name, err)
		}
		defer os.RemoveAll(dir) //lint:allow errdrop temp segments; best-effort cleanup
		codec := wire.SyntheticCodec{}
		mgr, err = spill.NewManager[synthetic.Node](codec, spill.Config{
			Dir:       dir,
			MemBudget: sc.MemBudget,
			NodeBytes: wire.NodeSize[synthetic.Node](codec, tree.Root()),
		})
		if err != nil {
			return metrics.Stats{}, spill.Stats{}, fmt.Errorf("bench %s: %w", sc.Name, err)
		}
		m.SetSpiller(mgr)
	}
	//lint:allow ctxflow benchmark scenarios are never cancelled mid-measurement
	stats, err := m.RunContext(context.Background())
	if err != nil {
		return metrics.Stats{}, spill.Stats{}, fmt.Errorf("bench %s: %w", sc.Name, err)
	}
	var sst spill.Stats
	if mgr != nil {
		sst = mgr.Stats()
	}
	return stats, sst, nil
}

// Scenario names shared between bench_test.go, cmd/simdbench and the CI
// gate.  ExpansionCycle and LBPhase isolate the two halves of the engine's
// hot path; the Table5 pair measures the Workers wall-clock speedup at a
// full-scale machine size.
const (
	ExpansionCycle = "expansion-cycle"
	LBPhase        = "lb-phase"
	Table5W1       = "table5-p1024-w1"
	Table5W8       = "table5-p1024-w8"
	SpillTight     = "spill-tight"
	SpillUnbounded = "spill-unbounded"
)

// Scenarios returns the pinned suite.
//
//   - expansion-cycle: S^0.00 never triggers a balancing phase, so the run
//     is node-expansion cycles only — the per-cycle hot path in isolation.
//   - lb-phase: S^1.00 triggers after every cycle, so the run is dominated
//     by load-balancing phases (matching, splitting, transfer accounting).
//   - table5-p1024-w{1,8}: the paper's Table 5 shape (P = 1024, a
//     synthetic tree large enough that the machine saturates) at one and
//     at eight host workers; the ratio of their wall-clock times is the
//     Workers speedup simdbench reports.
//   - spill-{tight,unbounded}: the same deep synthetic run with and
//     without a memory budget.  The tight budget (three 11-byte nodes per
//     PE) forces thousands of evictions and faults, so the pair prices
//     the residency manager: the schedule columns must be identical
//     between the two, and the delta in ns/op and spill bytes/op is the
//     cost of running memory-bounded.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: ExpansionCycle, Scheme: "GP-S0.00", P: 256, Workers: 1, W: 10_000, Seed: 11},
		{Name: LBPhase, Scheme: "GP-S1.00", P: 256, Workers: 1, W: 10_000, Seed: 11},
		{Name: Table5W1, Scheme: "GP-S0.85", P: 1024, Workers: 1, W: 400_000, Seed: 3},
		{Name: Table5W8, Scheme: "GP-S0.85", P: 1024, Workers: 8, W: 400_000, Seed: 3},
		{Name: SpillTight, Scheme: "GP-DK", P: 256, Workers: 1, W: 30_000, Seed: 7, MemBudget: 8448},
		{Name: SpillUnbounded, Scheme: "GP-DK", P: 256, Workers: 1, W: 30_000, Seed: 7},
	}
}

// ByName returns the named pinned scenario.
func ByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("bench: unknown scenario %q", name)
}

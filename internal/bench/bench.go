// Package bench pins the benchmark scenarios the repository's performance
// trajectory is measured against.  The same scenario definitions drive the
// root-package micro-benchmarks (`go test -bench`) and cmd/simdbench, the
// harness that writes the committed BENCH_<n>.json baselines the CI
// regression gate compares new runs to.
//
// Scenarios are deliberately tiny compared to the paper's experiments:
// their point is a stable, deterministic per-operation cost (a run's cycle
// and transfer schedule is bit-for-bit reproducible), so regressions in
// allocation count or wall-clock time stand out against a committed
// baseline instead of drowning in workload noise.
package bench

import (
	"fmt"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
)

// Scenario is one pinned benchmark configuration: a synthetic-tree search
// under a fixed scheme and machine size.  Every field participates in the
// deterministic schedule, so two runs of the same Scenario expand the same
// nodes in the same cycles.
type Scenario struct {
	Name    string `json:"name"`
	Scheme  string `json:"scheme"`
	P       int    `json:"p"`
	Workers int    `json:"workers"`
	W       int64  `json:"w"`
	Seed    uint64 `json:"seed"`
}

// Run executes the scenario once and returns its Section 3.1 statistics.
func (sc Scenario) Run() (metrics.Stats, error) {
	sch, err := simd.ParseScheme[synthetic.Node](sc.Scheme)
	if err != nil {
		return metrics.Stats{}, fmt.Errorf("bench %s: %w", sc.Name, err)
	}
	return simd.Run[synthetic.Node](synthetic.New(sc.W, sc.Seed), sch,
		simd.Options{P: sc.P, Workers: sc.Workers})
}

// Scenario names shared between bench_test.go, cmd/simdbench and the CI
// gate.  ExpansionCycle and LBPhase isolate the two halves of the engine's
// hot path; the Table5 pair measures the Workers wall-clock speedup at a
// full-scale machine size.
const (
	ExpansionCycle = "expansion-cycle"
	LBPhase        = "lb-phase"
	Table5W1       = "table5-p1024-w1"
	Table5W8       = "table5-p1024-w8"
)

// Scenarios returns the pinned suite.
//
//   - expansion-cycle: S^0.00 never triggers a balancing phase, so the run
//     is node-expansion cycles only — the per-cycle hot path in isolation.
//   - lb-phase: S^1.00 triggers after every cycle, so the run is dominated
//     by load-balancing phases (matching, splitting, transfer accounting).
//   - table5-p1024-w{1,8}: the paper's Table 5 shape (P = 1024, a
//     synthetic tree large enough that the machine saturates) at one and
//     at eight host workers; the ratio of their wall-clock times is the
//     Workers speedup simdbench reports.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: ExpansionCycle, Scheme: "GP-S0.00", P: 256, Workers: 1, W: 10_000, Seed: 11},
		{Name: LBPhase, Scheme: "GP-S1.00", P: 256, Workers: 1, W: 10_000, Seed: 11},
		{Name: Table5W1, Scheme: "GP-S0.85", P: 1024, Workers: 1, W: 400_000, Seed: 3},
		{Name: Table5W8, Scheme: "GP-S0.85", P: 1024, Workers: 8, W: 400_000, Seed: 3},
	}
}

// ByName returns the named pinned scenario.
func ByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("bench: unknown scenario %q", name)
}

package wire

import (
	"bytes"
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
)

// Partial-stack round trips: the shapes a distributed donation actually
// ships are not the tidy stacks of TestStackRoundTrip but the leftovers
// of splitting — donors with drained interior levels, single-level
// donated fragments, and the empty stacks of idle PEs.  These tests pin
// each shape through the codecs.

// TestPartialStackInteriorEmptyLevel splits the sole bottom node off a
// stack, leaving an interior empty level on the donor (trim only removes
// empty levels from the top).  The canonical encoding omits the hole, so
// the decode is structurally compacted but preserves search order, and
// re-encoding is byte-stable.
func TestPartialStackInteriorEmptyLevel(t *testing.T) {
	c := PuzzleCodec{}
	s := stack.New(puzzle.Scramble(1, 10))
	s.PushLevel([]puzzle.Node{puzzle.Scramble(2, 12), puzzle.Scramble(3, 14)})
	s.PushLevel([]puzzle.Node{puzzle.Scramble(4, 16), puzzle.Scramble(5, 18)})

	donated := stack.BottomNode[puzzle.Node]{}.Split(s)
	if donated.Size() != 1 {
		t.Fatalf("bottom-node split donated %d nodes, want 1", donated.Size())
	}
	// The donor now carries an empty level below two live ones.
	if s.Depth() != 3 || s.Size() != 4 {
		t.Fatalf("donor depth/size = %d/%d, want 3/4 (interior hole retained)", s.Depth(), s.Size())
	}

	msg := EncodeStack[puzzle.Node](c, s)
	got, err := DecodeStack[puzzle.Node](c, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth() != 2 || got.Size() != s.Size() {
		t.Fatalf("decoded depth/size = %d/%d, want 2/%d (hole omitted)", got.Depth(), got.Size(), s.Size())
	}
	a, b := s.Flatten(), got.Flatten()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d changed across the hole", i)
		}
	}
	if again := EncodeStack[puzzle.Node](c, got); !bytes.Equal(msg, again) {
		t.Error("re-encoding the compacted stack changed bytes")
	}
}

// TestPartialStackSingleLevelDonation round-trips the smallest real
// donation — one level, as bottom-node splitting produces — through every
// workload codec.
func TestPartialStackSingleLevelDonation(t *testing.T) {
	t.Run("puzzle", func(t *testing.T) {
		c := PuzzleCodec{}
		src := stack.New(puzzle.Scramble(7, 20), puzzle.Scramble(8, 22))
		d := stack.BottomNode[puzzle.Node]{}.Split(src)
		roundTripPartial(t, c, d)
	})
	t.Run("synthetic", func(t *testing.T) {
		c := SyntheticCodec{}
		src := stack.New(
			synthetic.Node{Budget: 900, Seed: 11},
			synthetic.Node{Budget: 41, Seed: 12},
		)
		d := stack.BottomNode[synthetic.Node]{}.Split(src)
		roundTripPartial(t, c, d)
	})
	t.Run("queens", func(t *testing.T) {
		c := QueensCodec{}
		dom := queens.New(8)
		src := stack.New(dom.Expand(dom.Root(), nil)...)
		d := stack.BottomNode[queens.Node]{}.Split(src)
		roundTripPartial(t, c, d)
	})
}

// TestPartialStackZeroPE pins the zero-PE edge: an idle PE's empty stack
// encodes to the one-byte zero-level frame and decodes back to empty.
// Checkpoint and donation framing rely on this being valid, not an error.
func TestPartialStackZeroPE(t *testing.T) {
	c := SyntheticCodec{}
	s := stack.New[synthetic.Node]()
	msg := EncodeStack[synthetic.Node](c, s)
	if len(msg) != 1 {
		t.Fatalf("empty stack encodes to %d bytes, want 1", len(msg))
	}
	got, err := DecodeStack[synthetic.Node](c, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() || got.Depth() != 0 {
		t.Fatalf("decoded empty stack has size %d depth %d", got.Size(), got.Depth())
	}
	if again := EncodeStack[synthetic.Node](c, got); !bytes.Equal(msg, again) {
		t.Error("empty-stack encoding is not byte-stable")
	}
}

// roundTripPartial checks that a donated fragment survives encode/decode
// with order, size, depth, and bytes intact.
func roundTripPartial[S comparable](t *testing.T, c Codec[S], s *stack.Stack[S]) {
	t.Helper()
	if s.Empty() {
		t.Fatal("donation is empty")
	}
	msg := EncodeStack[S](c, s)
	got, err := DecodeStack[S](c, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != s.Size() || got.Depth() != s.Depth() {
		t.Fatalf("size/depth changed: %d/%d -> %d/%d", s.Size(), s.Depth(), got.Size(), got.Depth())
	}
	a, b := s.Flatten(), got.Flatten()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d changed", i)
		}
	}
	if again := EncodeStack[S](c, got); !bytes.Equal(msg, again) {
		t.Error("re-encoding changed bytes")
	}
}

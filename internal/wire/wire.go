// Package wire serialises search nodes and DFS stacks into the byte
// messages a work transfer actually ships.  The paper's cost model takes
// message sizes as constant because "the stack is a rather compact
// representation of the search space" (Section 3.1); this package makes
// that compactness concrete: it provides binary codecs for each workload's
// node type, a framed stack encoding that preserves level structure, and
// helpers that convert a codec plus a link bandwidth into the per-node
// transfer cost used by the simulator's extended cost model.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"simdtree/internal/stack"
)

// bufPool recycles the scratch byte buffers of stack encoding.  Pooling a
// buffer never affects encoded bytes — every user appends onto a length-0
// slice — so this is safe in deterministic code; it exists because callers
// like checkpoint encoding frame one message per PE stack, P allocations
// per snapshot without reuse.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// GetBuf returns a pooled byte buffer of length 0.  Pass it back with
// PutBuf when done; the pointer indirection avoids an allocation per
// round-trip.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf resets the buffer to length 0 and returns it to the pool, so no
// stale message bytes can leak into a later user.
func PutBuf(b *[]byte) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Codec serialises one node type.
type Codec[S any] interface {
	// Name identifies the codec in reports.
	Name() string
	// AppendNode appends the encoding of n to buf and returns it.
	AppendNode(buf []byte, n S) []byte
	// DecodeNode parses one node from b, returning the node and the
	// remaining bytes.
	DecodeNode(b []byte) (S, []byte, error)
}

// ErrTruncated reports a message that ended mid-node.
var ErrTruncated = errors.New("wire: truncated message")

// EncodeStack frames a whole stack: a uvarint level count, then per level
// a uvarint node count followed by the encoded nodes, bottom level first.
// It is the byte-for-byte payload of one work transfer.  Empty interior
// levels (left behind when bottom-node removal drains a level mid-stack)
// are invisible to the search order — every stack operation skips or
// trims them — so the canonical encoding omits them.
func EncodeStack[S any](c Codec[S], s *stack.Stack[S]) []byte {
	return AppendStack(nil, c, s)
}

// AppendStack appends the EncodeStack framing of s to buf and returns the
// extended buffer — the allocation-free form for callers that reuse a
// scratch buffer (see GetBuf/PutBuf) across many stacks.
func AppendStack[S any](buf []byte, c Codec[S], s *stack.Stack[S]) []byte {
	depth := 0
	s.ForEachLevel(func(lv []S) {
		if len(lv) > 0 {
			depth++
		}
	})
	buf = binary.AppendUvarint(buf, uint64(depth))
	s.ForEachLevel(func(lv []S) {
		if len(lv) == 0 {
			return
		}
		buf = binary.AppendUvarint(buf, uint64(len(lv)))
		for _, n := range lv {
			buf = c.AppendNode(buf, n)
		}
	})
	return buf
}

// EncodeArena frames one PE's stack out of a structure-of-arrays arena
// with the exact EncodeStack framing; the bytes are identical to encoding
// the materialised Stack, without materialising it.
func EncodeArena[S any](c Codec[S], a *stack.Arena[S], pe int) []byte {
	return AppendArena(nil, c, a, pe)
}

// AppendArena appends the EncodeStack framing of arena PE pe to buf and
// returns the extended buffer.  An arena never holds empty levels, so the
// level count is its live depth.
func AppendArena[S any](buf []byte, c Codec[S], a *stack.Arena[S], pe int) []byte {
	buf = binary.AppendUvarint(buf, uint64(a.Depth(pe)))
	a.ForEachLevel(pe, func(lv []S) {
		buf = binary.AppendUvarint(buf, uint64(len(lv)))
		for _, n := range lv {
			buf = c.AppendNode(buf, n)
		}
	})
	return buf
}

// DecodeStack parses a stack encoded by EncodeStack.  Counts are
// validated against the remaining message length before any allocation,
// so a corrupt or hostile message cannot trigger huge allocations.
func DecodeStack[S any](c Codec[S], b []byte) (*stack.Stack[S], error) {
	levels, n := binary.Uvarint(b)
	if n <= 0 || levels > uint64(len(b)) {
		return nil, ErrTruncated
	}
	b = b[n:]
	out := stack.New[S]()
	for l := uint64(0); l < levels; l++ {
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, ErrTruncated
		}
		b = b[n:]
		// Every encoded node occupies at least one byte, so a count
		// beyond the remaining length is corrupt; reject it before
		// allocating.  Stacks never hold empty levels, so a zero count
		// is non-canonical and rejected too — the format round-trips
		// byte-for-byte.
		if count == 0 || count > uint64(len(b)) {
			return nil, fmt.Errorf("wire: invalid level count %d: %w", count, ErrTruncated)
		}
		lv := make([]S, 0, count)
		for i := uint64(0); i < count; i++ {
			node, rest, err := c.DecodeNode(b)
			if err != nil {
				return nil, err
			}
			b = rest
			lv = append(lv, node)
		}
		out.PushLevel(lv)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after stack", len(b))
	}
	return out, nil
}

// NodeSize returns the encoded size of one node under the codec.
func NodeSize[S any](c Codec[S], n S) int {
	return len(c.AppendNode(nil, n))
}

// PerNodeTime converts a codec's node size into the virtual time one node
// adds to a work-transfer message on a link of the given bandwidth — the
// value to plug into the simulator's Costs.PerNodeTransfer for the
// message-size ablation.
func PerNodeTime[S any](c Codec[S], sample S, bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 {
		return 0
	}
	sz := float64(NodeSize(c, sample))
	return time.Duration(sz / bytesPerSecond * float64(time.Second))
}

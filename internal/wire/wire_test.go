package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
)

// TestPuzzleCodecRoundTrip property-checks encode/decode over random
// reachable positions.
func TestPuzzleCodecRoundTrip(t *testing.T) {
	c := PuzzleCodec{}
	f := func(seed uint64, steps uint8) bool {
		n := puzzle.Scramble(seed, int(steps%80))
		n.G = uint16(seed % 50)
		n.Prev = uint8(seed % 4)
		buf := c.AppendNode(nil, n)
		if len(buf) != puzzleNodeSize {
			return false
		}
		got, rest, err := c.DecodeNode(buf)
		return err == nil && len(rest) == 0 && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPuzzleCodecTruncated(t *testing.T) {
	c := PuzzleCodec{}
	buf := c.AppendNode(nil, puzzle.Goal())
	if _, _, err := c.DecodeNode(buf[:5]); err == nil {
		t.Error("truncated node accepted")
	}
}

func TestSyntheticCodecRoundTrip(t *testing.T) {
	c := SyntheticCodec{}
	f := func(budget int64, seed uint64) bool {
		if budget < 0 {
			budget = -budget
		}
		n := synthetic.Node{Budget: budget, Seed: seed}
		got, rest, err := c.DecodeNode(c.AppendNode(nil, n))
		return err == nil && len(rest) == 0 && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQueensCodecRoundTrip(t *testing.T) {
	c := QueensCodec{}
	d := queens.New(10)
	n := d.Root()
	for depth := 0; depth < 5; depth++ {
		buf := c.AppendNode(nil, n)
		got, rest, err := c.DecodeNode(buf)
		if err != nil || len(rest) != 0 || got != n {
			t.Fatalf("round trip failed at depth %d: %v", depth, err)
		}
		children := d.Expand(n, nil)
		if len(children) == 0 {
			break
		}
		n = children[0]
	}
}

// TestStackRoundTrip encodes whole stacks (with level structure) and
// decodes them back.
func TestStackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := PuzzleCodec{}
	for trial := 0; trial < 100; trial++ {
		s := stack.New[puzzle.Node]()
		levels := rng.Intn(5)
		for l := 0; l < levels; l++ {
			width := 1 + rng.Intn(3)
			lv := make([]puzzle.Node, width)
			for i := range lv {
				lv[i] = puzzle.Scramble(rng.Uint64(), rng.Intn(30))
			}
			s.PushLevel(lv)
		}
		msg := EncodeStack[puzzle.Node](c, s)
		got, err := DecodeStack[puzzle.Node](c, msg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Size() != s.Size() || got.Depth() != s.Depth() {
			t.Fatalf("trial %d: size/depth changed: %d/%d -> %d/%d",
				trial, s.Size(), s.Depth(), got.Size(), got.Depth())
		}
		a, b := s.Flatten(), got.Flatten()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: node %d changed", trial, i)
			}
		}
	}
}

func TestDecodeStackErrors(t *testing.T) {
	c := PuzzleCodec{}
	if _, err := DecodeStack[puzzle.Node](c, nil); err == nil {
		t.Error("empty message accepted")
	}
	s := stack.New(puzzle.Goal())
	msg := EncodeStack[puzzle.Node](c, s)
	if _, err := DecodeStack[puzzle.Node](c, msg[:len(msg)-1]); err == nil {
		t.Error("truncated stack accepted")
	}
	if _, err := DecodeStack[puzzle.Node](c, append(msg, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestNodeSizeAndPerNodeTime(t *testing.T) {
	c := PuzzleCodec{}
	if got := NodeSize[puzzle.Node](c, puzzle.Goal()); got != puzzleNodeSize {
		t.Errorf("NodeSize = %d, want %d", got, puzzleNodeSize)
	}
	// 14 bytes at 14 KB/s is one millisecond.
	if got := PerNodeTime[puzzle.Node](c, puzzle.Goal(), 14_000); got != time.Millisecond {
		t.Errorf("PerNodeTime = %v, want 1ms", got)
	}
	if PerNodeTime[puzzle.Node](c, puzzle.Goal(), 0) != 0 {
		t.Error("zero bandwidth should give zero cost")
	}
}

// TestMessageCompactness documents the paper's compactness claim: a
// donated bottom-node message is tens of bytes, not kilobytes.
func TestMessageCompactness(t *testing.T) {
	s := stack.New(puzzle.Scramble(3, 20))
	msg := EncodeStack[puzzle.Node](PuzzleCodec{}, s)
	if len(msg) > 32 {
		t.Errorf("single-node transfer message is %d bytes; expected a compact few dozen", len(msg))
	}
}

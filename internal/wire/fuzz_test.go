package wire

import (
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/stack"
)

// FuzzDecodeStack feeds arbitrary bytes to the stack decoder: it must
// either parse cleanly or return an error — never panic or loop.
func FuzzDecodeStack(f *testing.F) {
	c := PuzzleCodec{}
	s := stack.New(puzzle.Goal(), puzzle.Scramble(1, 10))
	s.PushLevel([]puzzle.Node{puzzle.Scramble(2, 5)})
	f.Add(EncodeStack[puzzle.Node](c, s))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeStack[puzzle.Node](c, data)
		if err != nil {
			return
		}
		// Semantic round-trip: re-encoding and decoding again must yield
		// the same stack.  (Byte-identity would additionally require
		// rejecting non-minimal varints, which the format tolerates.)
		round := EncodeStack[puzzle.Node](c, got)
		again, err := DecodeStack[puzzle.Node](c, round)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if again.Size() != got.Size() || again.Depth() != got.Depth() {
			t.Errorf("round trip changed shape: %d/%d -> %d/%d",
				got.Size(), got.Depth(), again.Size(), again.Depth())
		}
		a, b := got.Flatten(), again.Flatten()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed node %d", i)
			}
		}
	})
}

// FuzzDecodeNode checks the node decoder on arbitrary input.
func FuzzDecodeNode(f *testing.F) {
	c := PuzzleCodec{}
	f.Add(c.AppendNode(nil, puzzle.Goal()))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, rest, err := c.DecodeNode(data)
		if err != nil {
			return
		}
		if len(data)-len(rest) != puzzleNodeSize {
			t.Error("decoder consumed the wrong number of bytes")
		}
		_ = n
	})
}

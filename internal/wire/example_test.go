package wire_test

import (
	"fmt"

	"simdtree/internal/puzzle"
	"simdtree/internal/stack"
	"simdtree/internal/wire"
)

// The compactness the paper's constant-message-size assumption rests on:
// a whole donated stack is a few dozen bytes on the wire.
func ExampleEncodeStack() {
	s := stack.New(puzzle.Scramble(1, 20))
	s.PushLevelCopy([]puzzle.Node{puzzle.Scramble(2, 10), puzzle.Scramble(3, 10)})

	msg := wire.EncodeStack[puzzle.Node](wire.PuzzleCodec{}, s)
	back, err := wire.DecodeStack[puzzle.Node](wire.PuzzleCodec{}, msg)
	fmt.Printf("3 nodes in %d bytes; round trip: %d nodes, err=%v\n", len(msg), back.Size(), err)
	// Output:
	// 3 nodes in 45 bytes; round trip: 3 nodes, err=<nil>
}

package wire

import (
	"encoding/binary"

	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/synthetic"
)

// PuzzleCodec serialises 15-puzzle nodes into 14 bytes: the 16 tiles
// nibble-packed into 8 bytes (every tile value fits in 4 bits), the blank
// position, g and h as 16-bit values, and the previous move.  On the
// CM-2 this is two or three 32-bit words per node — the "rather compact
// representation" the paper leans on.
type PuzzleCodec struct{}

// puzzleNodeSize is the fixed encoding size of one node.
const puzzleNodeSize = 8 + 1 + 2 + 2 + 1

// Name implements Codec.
func (PuzzleCodec) Name() string { return "puzzle" }

// AppendNode implements Codec.
func (PuzzleCodec) AppendNode(buf []byte, n puzzle.Node) []byte {
	for i := 0; i < puzzle.Cells; i += 2 {
		buf = append(buf, n.Tiles[i]<<4|n.Tiles[i+1])
	}
	buf = append(buf, n.Blank)
	buf = binary.BigEndian.AppendUint16(buf, n.G)
	buf = binary.BigEndian.AppendUint16(buf, n.H)
	buf = append(buf, n.Prev)
	return buf
}

// DecodeNode implements Codec.
func (PuzzleCodec) DecodeNode(b []byte) (puzzle.Node, []byte, error) {
	var n puzzle.Node
	if len(b) < puzzleNodeSize {
		return n, b, ErrTruncated
	}
	for i := 0; i < puzzle.Cells/2; i++ {
		n.Tiles[2*i] = b[i] >> 4
		n.Tiles[2*i+1] = b[i] & 0x0F
	}
	n.Blank = b[8]
	n.G = binary.BigEndian.Uint16(b[9:])
	n.H = binary.BigEndian.Uint16(b[11:])
	n.Prev = b[13]
	return n, b[puzzleNodeSize:], nil
}

// SyntheticCodec serialises synthetic-tree nodes: a varint budget plus the
// 8-byte seed.
type SyntheticCodec struct{}

// Name implements Codec.
func (SyntheticCodec) Name() string { return "synthetic" }

// AppendNode implements Codec.
func (SyntheticCodec) AppendNode(buf []byte, n synthetic.Node) []byte {
	buf = binary.AppendVarint(buf, n.Budget)
	return binary.BigEndian.AppendUint64(buf, n.Seed)
}

// DecodeNode implements Codec.
func (SyntheticCodec) DecodeNode(b []byte) (synthetic.Node, []byte, error) {
	var n synthetic.Node
	budget, sz := binary.Varint(b)
	if sz <= 0 || len(b) < sz+8 {
		return n, b, ErrTruncated
	}
	n.Budget = budget
	n.Seed = binary.BigEndian.Uint64(b[sz:])
	return n, b[sz+8:], nil
}

// QueensCodec serialises N-queens nodes: board size, row, and the three
// attack masks as 32-bit words.
type QueensCodec struct{}

// queensNodeSize is the fixed encoding size of one node.
const queensNodeSize = 1 + 1 + 4 + 4 + 4

// Name implements Codec.
func (QueensCodec) Name() string { return "queens" }

// AppendNode implements Codec.
func (QueensCodec) AppendNode(buf []byte, n queens.Node) []byte {
	buf = append(buf, n.N, n.Row)
	buf = binary.BigEndian.AppendUint32(buf, n.Cols)
	buf = binary.BigEndian.AppendUint32(buf, n.D1)
	buf = binary.BigEndian.AppendUint32(buf, n.D2)
	return buf
}

// DecodeNode implements Codec.
func (QueensCodec) DecodeNode(b []byte) (queens.Node, []byte, error) {
	var n queens.Node
	if len(b) < queensNodeSize {
		return n, b, ErrTruncated
	}
	n.N, n.Row = b[0], b[1]
	n.Cols = binary.BigEndian.Uint32(b[2:])
	n.D1 = binary.BigEndian.Uint32(b[6:])
	n.D2 = binary.BigEndian.Uint32(b[10:])
	return n, b[queensNodeSize:], nil
}

package topology

import (
	"math"
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"hypercube", "mesh", "cm2", "crossbar"} {
		net, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if net.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, net.Name())
		}
	}
	if _, err := ByName("torus"); err == nil {
		t.Error("ByName(torus) should fail")
	}
}

func TestHypercubeCosts(t *testing.T) {
	h := Hypercube{}
	if got := h.ScanSteps(1024); got != 10 {
		t.Errorf("ScanSteps(1024) = %v, want 10", got)
	}
	if got := h.TransferSteps(1024); got != 100 {
		t.Errorf("TransferSteps(1024) = %v, want 100", got)
	}
	// Degenerate machines still pay one step.
	if got := h.ScanSteps(1); got != 1 {
		t.Errorf("ScanSteps(1) = %v, want 1", got)
	}
}

func TestMeshCosts(t *testing.T) {
	m := Mesh{}
	if got := m.ScanSteps(256); got != 16 {
		t.Errorf("ScanSteps(256) = %v, want 16", got)
	}
	if got := m.TransferSteps(10000); math.Abs(got-100) > 1e-9 {
		t.Errorf("TransferSteps(10000) = %v, want 100", got)
	}
}

func TestConstantCostNetworks(t *testing.T) {
	for _, p := range []int{2, 64, 65536} {
		cm2 := CM2{}
		if cm2.ScanSteps(p) != 1 || cm2.TransferSteps(p) != 1 {
			t.Errorf("CM2 costs at P=%d should be constant 1", p)
		}
		xbar := Crossbar{}
		if xbar.ScanSteps(p) != 0 || xbar.TransferSteps(p) != 0 {
			t.Errorf("Crossbar costs at P=%d should be 0", p)
		}
	}
}

// TestNeighborsSymmetric checks that every topology's neighbour relation
// is symmetric and irreflexive, for both power-of-two and ragged machine
// sizes.
func TestNeighborsSymmetric(t *testing.T) {
	nets := []Network{Hypercube{}, Mesh{}, CM2{}, Crossbar{}}
	for _, net := range nets {
		for _, p := range []int{1, 2, 16, 17, 64, 100} {
			adj := make(map[[2]int]bool)
			for id := 0; id < p; id++ {
				for _, n := range net.Neighbors(p, id) {
					if n == id {
						t.Fatalf("%s P=%d: %d is its own neighbour", net.Name(), p, id)
					}
					if n < 0 || n >= p {
						t.Fatalf("%s P=%d: neighbour %d of %d out of range", net.Name(), p, n, id)
					}
					adj[[2]int{id, n}] = true
				}
			}
			for k := range adj {
				if !adj[[2]int{k[1], k[0]}] {
					t.Fatalf("%s P=%d: edge %v not symmetric", net.Name(), p, k)
				}
			}
		}
	}
}

func TestHypercubeNeighborsCount(t *testing.T) {
	// A full d-cube gives every node exactly d neighbours.
	for id := 0; id < 16; id++ {
		if got := len(Hypercube{}.Neighbors(16, id)); got != 4 {
			t.Errorf("P=16 id=%d: %d neighbours, want 4", id, got)
		}
	}
}

func TestMeshNeighborsCorners(t *testing.T) {
	// On a 4x4 mesh, corners have 2 neighbours, edges 3, interior 4.
	counts := map[int]int{}
	for id := 0; id < 16; id++ {
		counts[len(Mesh{}.Neighbors(16, id))]++
	}
	if counts[2] != 4 || counts[3] != 8 || counts[4] != 4 {
		t.Errorf("mesh neighbour degree histogram %v, want 4x2 8x3 4x4", counts)
	}
}

func TestSide(t *testing.T) {
	for _, c := range []struct{ p, want int }{{1, 1}, {4, 2}, {5, 3}, {16, 4}, {17, 5}} {
		if got := Side(c.p); got != c.want {
			t.Errorf("Side(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestCrossbarRingNeighbors(t *testing.T) {
	xbar := Crossbar{}
	ns := xbar.Neighbors(5, 0)
	if len(ns) != 2 || ns[0] != 4 || ns[1] != 1 {
		t.Errorf("Crossbar ring neighbours of 0 = %v, want [4 1]", ns)
	}
	if xbar.Neighbors(1, 0) != nil {
		t.Error("single-processor crossbar should have no neighbours")
	}
}

// Package topology models the interconnection networks considered by the
// paper (hypercube, 2-D mesh, the CM-2 with its hardware scan support, and
// an idealised crossbar).  A Network converts a machine size P into the
// abstract step counts of the two communication primitives that dominate a
// load-balancing phase:
//
//   - a sum-scan (used by the setup step: enumerating idle and busy
//     processors, and the GP scheme's global-pointer bookkeeping), and
//   - a general fixed-size data transfer between an arbitrary processor
//     pair (used by the work-transfer step).
//
// Section 3.3 of the paper gives the asymptotic costs reproduced here:
// scans are O(log P) on a hypercube and O(sqrt P) on a mesh; general
// permutations are O(log^2 P) on a hypercube and O(sqrt P) on a mesh; the
// CM-2 performs both in (different) constant times due to dedicated
// hardware.  Step counts are dimensionless; the simulator multiplies them
// by per-step unit costs to obtain virtual time.
package topology

import (
	"fmt"
	"math"
)

// Network abstracts an interconnection topology's communication costs and
// neighbourhood structure for a machine of P processors.
type Network interface {
	// Name identifies the topology in reports and experiment output.
	Name() string

	// ScanSteps returns the number of unit steps one sum-scan over p
	// processors takes on this network.
	ScanSteps(p int) float64

	// TransferSteps returns the number of unit steps a fixed-size
	// point-to-point transfer between an arbitrary processor pair takes
	// (the cost of routing a general permutation).
	TransferSteps(p int) float64

	// Neighbors returns the direct neighbours of processor id in a
	// machine of p processors.  It is used by nearest-neighbour load
	// balancing baselines.
	Neighbors(p, id int) []int
}

// log2 returns the base-2 logarithm of p, at least 1 so that degenerate
// one-processor machines still pay a minimal cost.
func log2(p int) float64 {
	if p <= 2 {
		return 1
	}
	return math.Log2(float64(p))
}

// Hypercube is a binary d-cube: P = 2^d processors, scans in O(log P) and
// general permutations in O(log^2 P) (Section 3.3, equation 5).
type Hypercube struct{}

// Name implements Network.
func (Hypercube) Name() string { return "hypercube" }

// ScanSteps implements Network; a scan is one traversal of the cube's
// dimensions.
func (Hypercube) ScanSteps(p int) float64 { return log2(p) }

// TransferSteps implements Network; a general permutation costs O(log^2 P).
func (Hypercube) TransferSteps(p int) float64 { l := log2(p); return l * l }

// Neighbors implements Network: processor id is adjacent to id with each
// address bit flipped.
func (Hypercube) Neighbors(p, id int) []int {
	var ns []int
	for bit := 1; bit < p; bit <<= 1 {
		if n := id ^ bit; n < p {
			//lint:allow hotalloc neighbor enumeration backs the NN baseline only, lists are small
			ns = append(ns, n)
		}
	}
	return ns
}

// Mesh is a 2-D wrap-free mesh of side sqrt(P); both scans and general
// transfers cost O(sqrt P) (Section 3.3, equation 6).
type Mesh struct{}

// Name implements Network.
func (Mesh) Name() string { return "mesh" }

// ScanSteps implements Network.
func (Mesh) ScanSteps(p int) float64 { return math.Sqrt(float64(p)) }

// TransferSteps implements Network.
func (Mesh) TransferSteps(p int) float64 { return math.Sqrt(float64(p)) }

// Neighbors implements Network: the 4-neighbourhood on a sqrt(P) x sqrt(P)
// grid (edges are not wrapped).
func (Mesh) Neighbors(p, id int) []int {
	side := Side(p)
	r, c := id/side, id%side
	var ns []int
	if r > 0 {
		//lint:allow hotalloc neighbor enumeration backs the NN baseline only, lists are small
		ns = append(ns, id-side)
	}
	if r < side-1 && id+side < p {
		//lint:allow hotalloc neighbor enumeration backs the NN baseline only, lists are small
		ns = append(ns, id+side)
	}
	if c > 0 {
		//lint:allow hotalloc neighbor enumeration backs the NN baseline only, lists are small
		ns = append(ns, id-1)
	}
	if c < side-1 && id+1 < p {
		//lint:allow hotalloc neighbor enumeration backs the NN baseline only, lists are small
		ns = append(ns, id+1)
	}
	return ns
}

// Side returns the side length of the smallest square holding p processors.
func Side(p int) int {
	side := int(math.Sqrt(float64(p)))
	for side*side < p {
		side++
	}
	if side < 1 {
		side = 1
	}
	return side
}

// CM2 models the Connection Machine CM-2 the paper's experiments ran on:
// dedicated scan hardware and an optimised router make both operations
// constant-cost regardless of machine size (Section 3.3).  The underlying
// wiring is a hypercube, which Neighbors exposes.
type CM2 struct{}

// Name implements Network.
func (CM2) Name() string { return "cm2" }

// ScanSteps implements Network; CM-2 scans complete in constant time.
func (CM2) ScanSteps(int) float64 { return 1 }

// TransferSteps implements Network; the CM-2 router's cost is a (larger)
// constant independent of P.
func (CM2) TransferSteps(int) float64 { return 1 }

// Neighbors implements Network via the CM-2's hypercube wiring.
func (CM2) Neighbors(p, id int) []int { return Hypercube{}.Neighbors(p, id) }

// Crossbar is an idealised network where all communication is free.  It
// isolates algorithmic behaviour (cycle and phase counts) from
// communication cost.
type Crossbar struct{}

// Name implements Network.
func (Crossbar) Name() string { return "crossbar" }

// ScanSteps implements Network.
func (Crossbar) ScanSteps(int) float64 { return 0 }

// TransferSteps implements Network.
func (Crossbar) TransferSteps(int) float64 { return 0 }

// Neighbors implements Network: every processor is adjacent to every other.
// To keep the result bounded it returns the ring neighbours, which is a
// valid subset for nearest-neighbour baselines.
func (Crossbar) Neighbors(p, id int) []int {
	if p <= 1 {
		return nil
	}
	//lint:allow hotalloc neighbor enumeration backs the NN baseline only, lists are small
	return []int{(id + p - 1) % p, (id + 1) % p}
}

// ByName returns the named topology; it recognises "hypercube", "mesh",
// "cm2" and "crossbar".
func ByName(name string) (Network, error) {
	switch name {
	case "hypercube":
		return Hypercube{}, nil
	case "mesh":
		return Mesh{}, nil
	case "cm2":
		return CM2{}, nil
	case "crossbar":
		return Crossbar{}, nil
	}
	return nil, fmt.Errorf("topology: unknown network %q", name)
}

// Package plot renders small ASCII charts so the experiment harness can
// show the shape of the paper's figures directly in a terminal: the
// isoefficiency curves of Figures 4 and 7 (W against P log P per
// efficiency level) and the active-processor traces of Figure 8.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Config describes the canvas.
type Config struct {
	Width  int // plot area columns; 0 means 60
	Height int // plot area rows; 0 means 16
	XLabel string
	YLabel string
	LogY   bool // plot log10(Y) instead of Y
	Title  string
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series onto one shared canvas and returns it as a
// string (trailing newline included).  Series with fewer than one point
// are skipped; non-finite and (under LogY) non-positive values are
// dropped.
func Render(cfg Config, series ...Series) string {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}

	type pt struct {
		x, y float64
		mark byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, pt{x, y, mark})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if len(pts) == 0 {
		return "(no data)\n"
	}
	if maxX == minX { //lint:allow floateq exact degenerate-range guard before dividing by maxX-minX
		maxX = minX + 1
	}
	if maxY == minY { //lint:allow floateq exact degenerate-range guard before dividing by maxY-minY
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		c := int(math.Round((p.x - minX) / (maxX - minX) * float64(width-1)))
		r := int(math.Round((p.y - minY) / (maxY - minY) * float64(height-1)))
		row := height - 1 - r // y grows upward
		grid[row][c] = p.mark
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yHi, yLo := maxY, minY
	suffix := ""
	if cfg.LogY {
		suffix = " (log10)"
	}
	fmt.Fprintf(&b, "%11.4g +%s\n", yHi, suffix)
	for r, row := range grid {
		label := strings.Repeat(" ", 11)
		if r == height-1 {
			label = fmt.Sprintf("%11.4g", yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 11), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10.4g%*s%10.4g\n", strings.Repeat(" ", 11), minX, width-20, "", maxX)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s%s\n", strings.Repeat(" ", 11), cfg.XLabel, cfg.YLabel, suffix)
	}
	var legend []string
	for si, s := range series {
		if len(s.X) > 0 {
			legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", 11), strings.Join(legend, "   "))
	}
	return b.String()
}

// Line renders a single unnamed series, a convenience for traces.
func Line(cfg Config, ys []float64) string {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return Render(cfg, Series{Name: "series", X: xs, Y: ys})
}

package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render(Config{Width: 20, Height: 5, Title: "demo", XLabel: "p", YLabel: "w"},
		Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	)
	for _, frag := range []string{"demo", "*", "+", "legend", "a", "b", "x: p"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 8 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(Config{}); got != "(no data)\n" {
		t.Errorf("empty render = %q", got)
	}
	// All-invalid points also give no data.
	if got := Render(Config{LogY: true}, Series{Name: "neg", X: []float64{1}, Y: []float64{-1}}); got != "(no data)\n" {
		t.Errorf("invalid-only render = %q", got)
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// A single point must not divide by zero.
	out := Render(Config{Width: 10, Height: 3}, Series{Name: "pt", X: []float64{5}, Y: []float64{7}})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestRenderLogY(t *testing.T) {
	out := Render(Config{Width: 30, Height: 8, LogY: true},
		Series{Name: "exp", X: []float64{1, 2, 3, 4}, Y: []float64{10, 100, 1000, 10000}})
	if !strings.Contains(out, "log10") {
		t.Error("log scale not labelled")
	}
	// In log space the four points are collinear: each row band should
	// hold one marker as x advances; verify all four plotted (the legend
	// line carries a fifth marker).
	grid := out[:strings.Index(out, "legend")]
	if strings.Count(grid, "*") != 4 {
		t.Errorf("expected 4 markers:\n%s", out)
	}
}

func TestLine(t *testing.T) {
	out := Line(Config{Width: 20, Height: 4}, []float64{1, 2, 3, 2, 1})
	if !strings.Contains(out, "*") {
		t.Error("line not plotted")
	}
}

func TestMismatchedXYLengths(t *testing.T) {
	out := Render(Config{Width: 10, Height: 3},
		Series{Name: "ragged", X: []float64{1, 2, 3}, Y: []float64{1}})
	if !strings.Contains(out, "*") {
		t.Errorf("ragged series dropped entirely:\n%s", out)
	}
}

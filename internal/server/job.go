package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/trace"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusCancelled Status = "cancelled"
	StatusTimeout   Status = "timeout"
	StatusExhausted Status = "exhausted" // cycle budget spent; stats are the completed prefix
	StatusFailed    Status = "failed"
	// StatusDonated marks a job handed off to the fleet for distributed
	// execution: the run stopped at a cycle boundary, its exact-prefix
	// checkpoint stayed in the spool, and the coordinator drives the rest
	// as shards.  Terminal on this node; the merged result lives with the
	// coordinator.
	StatusDonated Status = "donated"
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	switch s {
	case StatusDone, StatusCancelled, StatusTimeout, StatusExhausted, StatusFailed, StatusDonated:
		return true
	}
	return false
}

// Cancellation causes, distinguished via context.Cause so the worker can
// classify how a run ended.
var (
	errCancelRequested = errors.New("cancelled by client")
	errShutdown        = errors.New("server shutting down")
	errDonated         = errors.New("donated to the fleet for distributed execution")
)

// job is one queued/executing search request.
type job struct {
	id     string
	spec   JobSpec // canonical
	key    string  // cache key of spec
	tenant string  // accounting tenant (X-Tenant header, or "default")
	cost   float64 // predicted work in scheduler cost units (1 = no estimate)

	// events is the job's progress stream (status transitions, engine
	// progress ticks, checkpoint writes), feeding the SSE endpoint.
	events *eventLog

	// runCtx and cancel are created at submission (derived from the
	// server's root context), so a job can be cancelled with a cause
	// while still queued; the worker layers the deadline on top.
	runCtx context.Context
	cancel context.CancelCauseFunc

	// resume holds the spooled checkpoint a restarted server recovered
	// for this job; nil for a fresh run.  Set before the job is queued,
	// read only by the worker.
	resume []byte

	mu           sync.Mutex
	status       Status
	stats        metrics.Stats
	errMsg       string
	cacheHit     bool
	resumed      bool
	resumedCycle int
	trace        *trace.Trace
	submitted    time.Time
	started      time.Time
	finished     time.Time

	done chan struct{} // closed when the job reaches a terminal status
}

// setResumed records that the run restored a spooled checkpoint taken at
// the given cycle.
func (j *job) setResumed(cycle int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.resumed = true
	j.resumedCycle = cycle
}

// requestCancel cancels the job's context (queued or running) with cause.
func (j *job) requestCancel(cause error) {
	j.cancel(cause)
}

// finish transitions the job to a terminal status exactly once.
func (j *job) finish(status Status, stats metrics.Stats, tr *trace.Trace, errMsg string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return false
	}
	j.status = status
	j.stats = stats
	j.trace = tr
	j.errMsg = errMsg
	j.finished = now
	close(j.done)
	return true
}

// view is an immutable snapshot for handlers.
type jobView struct {
	ID           string
	Spec         JobSpec
	Key          string
	Tenant       string
	Status       Status
	Stats        metrics.Stats
	ErrMsg       string
	CacheHit     bool
	Resumed      bool
	ResumedCycle int
	Trace        *trace.Trace
	Submitted    time.Time
	Started      time.Time
	Finished     time.Time
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:           j.id,
		Spec:         j.spec,
		Key:          j.key,
		Tenant:       j.tenant,
		Status:       j.status,
		Stats:        j.stats,
		ErrMsg:       j.errMsg,
		CacheHit:     j.cacheHit,
		Resumed:      j.resumed,
		ResumedCycle: j.resumedCycle,
		Trace:        j.trace,
		Submitted:    j.submitted,
		Started:      j.started,
		Finished:     j.finished,
	}
}

// jobStore maps ids to jobs and bounds its memory by evicting the oldest
// *terminal* jobs beyond the history cap (running and queued jobs are
// never evicted).
type jobStore struct {
	mu      sync.Mutex
	byID    map[string]*job
	order   []string // submission order, oldest first
	history int
}

func newJobStore(history int) *jobStore {
	if history < 1 {
		history = 1
	}
	return &jobStore{byID: make(map[string]*job), history: history}
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.history {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.history
	for _, id := range s.order {
		jj := s.byID[id]
		if excess > 0 && jj != nil && jj.isTerminal() {
			delete(s.byID, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (j *job) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.terminal()
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// all returns the stored jobs in submission order.
func (s *jobStore) all() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.byID[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"simdtree/internal/checkpoint"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/steal"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// Distributed work stealing, node side.  A fleet coordinator turns one
// running job into a sharded run in three moves against this API:
//
//  1. GET /v1/jobs/{id}/stealable asks whether the job can be donated.
//  2. POST /v1/jobs/{id}/donate stops the run at a cycle boundary (the
//     same cancellation path a shutdown uses, so the exact-prefix
//     checkpoint lands in the spool) and answers with those checkpoint
//     bytes — the donation.
//  3. POST /v1/steal/sessions (here and on peer nodes) opens shard
//     sessions over PE ranges of that checkpoint; the coordinator then
//     drives them in lock-step via the per-session endpoints, shipping
//     steal.Frames between nodes at load-balancing phases, and ships the
//     assembled cluster-wide checkpoints back to the donor's spool so the
//     distributed job survives restarts.
//
// Sessions hold a full-size machine (only the shard's PE range occupied)
// and are driven strictly one call at a time; a per-session mutex
// serialises overlapping requests.

// maxStealSessions bounds concurrently open shard sessions; a session's
// machine holds up to a whole job's stacks.
const maxStealSessions = 16

// stealSession is one hosted shard of a distributed run.
type stealSession struct {
	id    string
	key   string
	spec  JobSpec
	host  steal.Host
	spool bool // coordinator checkpoints spool under key

	mu sync.Mutex // serialises host operations
}

// stealRegistry tracks open shard sessions.
type stealRegistry struct {
	mu   sync.Mutex
	byID map[string]*stealSession
	next int64
}

func newStealRegistry() *stealRegistry {
	return &stealRegistry{byID: make(map[string]*stealSession)}
}

func (r *stealRegistry) active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// add registers the session under a fresh id; it fails when the registry
// is full.
func (r *stealRegistry) add(sess *stealSession) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.byID) >= maxStealSessions {
		return "", fmt.Errorf("server: %d shard sessions already open", len(r.byID))
	}
	r.next++
	id := "s" + strconv.FormatInt(r.next, 10)
	sess.id = id
	r.byID[id] = sess
	return id, nil
}

func (r *stealRegistry) get(id string) (*stealSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.byID[id]
	return sess, ok
}

func (r *stealRegistry) remove(id string) (*stealSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.byID[id]
	delete(r.byID, id)
	return sess, ok
}

// buildStealHost constructs the shard machine for a decoded donation
// checkpoint, replicating exactly the domain construction of the job
// runners — the byte-identity contract needs the shard to expand the same
// trees the original run would have.
func buildStealHost(spec JobSpec, opts simd.Options, lo, hi int, raw *checkpoint.RawSnapshot) (steal.Host, error) {
	stacks := raw.Stacks[lo:hi]
	switch spec.Domain {
	case "puzzle":
		p := spec.Puzzle
		var start puzzle.Node
		if len(p.Tiles) == 16 {
			var tiles [puzzle.Cells]uint8
			copy(tiles[:], p.Tiles)
			n, err := puzzle.FromTiles(tiles)
			if err != nil {
				return nil, err
			}
			start = n
		} else {
			start = puzzle.Scramble(p.Seed, p.Steps)
		}
		var dom search.CostDomain[puzzle.Node] = puzzle.NewDomain(start)
		if p.LC {
			dom = puzzle.NewDomainLC(start)
		}
		bound := p.Bound
		if bound == 0 {
			bound, _ = search.FinalIterationBound(dom)
		}
		return steal.NewHost[puzzle.Node](search.NewBounded(dom, bound), wire.PuzzleCodec{}, spec.Scheme, opts, lo, hi, stacks, raw.DomainState)
	case "synthetic":
		return steal.NewHost[synthetic.Node](synthetic.New(spec.Synthetic.W, spec.Synthetic.Seed), wire.SyntheticCodec{}, spec.Scheme, opts, lo, hi, stacks, raw.DomainState)
	case "queens":
		return steal.NewHost[queens.Node](queens.New(spec.Queens.N), wire.QueensCodec{}, spec.Scheme, opts, lo, hi, stacks, raw.DomainState)
	}
	return nil, fmt.Errorf("domain %q has no shard host", spec.Domain)
}

// stealableDomain reports whether the domain can host shard sessions
// (injected test runners cannot — the coordinator has no host for them).
func stealableDomain(domain string) bool {
	switch domain {
	case "puzzle", "synthetic", "queens":
		return true
	}
	return false
}

// stealableResponse is the GET /v1/jobs/{id}/stealable verdict.
type stealableResponse struct {
	Stealable       bool   `json:"stealable"`
	Reason          string `json:"reason,omitempty"`
	Status          Status `json:"status"`
	P               int    `json:"p,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
}

// handleStealable implements GET /v1/jobs/{id}/stealable: can this job be
// donated to the fleet right now?
func (s *Server) handleStealable(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	v := j.view()
	resp := stealableResponse{Status: v.Status, P: v.Spec.P, CheckpointEvery: s.cfg.CheckpointEvery}
	switch {
	case v.Status != StatusRunning:
		resp.Reason = fmt.Sprintf("job is %s, not running", v.Status)
	case s.spool == nil:
		resp.Reason = "server runs without a checkpoint spool"
	case s.cfg.CheckpointEvery <= 0:
		resp.Reason = "periodic checkpointing is disabled"
	case v.Spec.P < 2:
		resp.Reason = "single-PE jobs cannot be sharded"
	case !stealableDomain(v.Spec.Domain):
		resp.Reason = fmt.Sprintf("domain %q has no shard host", v.Spec.Domain)
	default:
		resp.Stealable = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDonate implements POST /v1/jobs/{id}/donate: stop the running job
// at its next cycle boundary and answer with the exact-prefix checkpoint —
// the donation the coordinator shards across the fleet.  The spool keeps
// the file (cleanSpool exempts donated jobs), so the node can still
// recover the job if the distributed run dies.
func (s *Server) handleDonate(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	if s.spool == nil {
		writeError(w, http.StatusConflict, "server runs without a checkpoint spool")
		return
	}
	v := j.view()
	if v.Status != StatusRunning {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; only a running job can be donated", v.Status))
		return
	}
	if !stealableDomain(v.Spec.Domain) {
		writeError(w, http.StatusConflict, fmt.Sprintf("domain %q has no shard host", v.Spec.Domain))
		return
	}
	j.requestCancel(errDonated)
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "job did not reach a cycle boundary before the request deadline")
		return
	}
	if st := j.view().Status; st != StatusDonated {
		// The run crossed the finish line (or failed) before the
		// cancellation landed; there is nothing left to steal.
		writeError(w, http.StatusConflict, fmt.Sprintf("job finished as %s before the donation landed", st))
		return
	}
	b, err := s.spool.read(j.key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("donated job left no spooled checkpoint: %v", err))
		return
	}
	if _, err := checkpoint.Peek(b); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("spooled checkpoint invalid: %v", err))
		return
	}
	s.ctr.checkpointsExported.Add(1)
	w.Header().Set("Content-Type", checkpoint.ContentType)
	w.Header().Set("X-Simdtree-Cache-Key", j.key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) //lint:allow errdrop response writer errors are unreportable
}

// handleStealOpen implements POST /v1/steal/sessions: body is a donation
// checkpoint, ?lo= and ?hi= the shard's PE range, ?spool=1 asks the node
// to persist coordinator checkpoints under the job's spool entry.
func (s *Server) handleStealOpen(w http.ResponseWriter, r *http.Request) {
	lo, err1 := strconv.Atoi(r.URL.Query().Get("lo"))
	hi, err2 := strconv.Atoi(r.URL.Query().Get("hi"))
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "lo and hi query parameters must be integers")
		return
	}
	wantSpool := r.URL.Query().Get("spool") == "1"
	if wantSpool && s.spool == nil {
		writeError(w, http.StatusConflict, "server runs without a checkpoint spool")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, checkpoint.MaxFrameSize))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading checkpoint body: %v", err))
		return
	}
	meta, raw, err := checkpoint.DecodeRaw(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad donation checkpoint: %v", err))
		return
	}
	var spec JobSpec
	if len(meta.Extra) == 0 || json.Unmarshal(meta.Extra, &spec) != nil {
		writeError(w, http.StatusBadRequest, "checkpoint carries no job spec in its meta block")
		return
	}
	canonical, err := Canonicalize(spec, s.domains)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("embedded job spec: %v", err))
		return
	}
	if canonical.P != meta.P {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("spec has P=%d, checkpoint has P=%d", canonical.P, meta.P))
		return
	}
	if lo < 0 || hi > canonical.P || lo >= hi {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("shard range [%d, %d) invalid for P=%d", lo, hi, canonical.P))
		return
	}
	opts, err := s.buildOptions(canonical)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	host, err := buildStealHost(canonical, opts, lo, hi, raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("building shard host: %v", err))
		return
	}
	sess := &stealSession{key: CacheKey(canonical), spec: canonical, host: host, spool: wantSpool}
	id, err := s.steal.add(sess)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.ctr.stealSessionsOpened.Add(1)
	allEmpty, anyDonor := host.Status()
	writeJSON(w, http.StatusOK, steal.OpenResponse{
		Session: id, Lo: lo, Hi: hi, AllEmpty: allEmpty, AnyDonor: anyDonor,
	})
}

// stealOpFunc is one session operation, invoked under the session mutex.
type stealOpFunc func(s *Server, sess *stealSession, w http.ResponseWriter, r *http.Request)

// stealOp wraps a session operation with lookup and serialisation.
func (s *Server) stealOp(op stealOpFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, ok := s.steal.get(r.PathValue("sid"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown shard session")
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		op(s, sess, w, r)
	}
}

func opStep(_ *Server, sess *stealSession, w http.ResponseWriter, _ *http.Request) {
	ci := sess.host.Step()
	writeJSON(w, http.StatusOK, steal.StepResponse{
		Active: ci.Active, Goals: ci.Goals, Peak: ci.Peak,
		AllEmpty: ci.AllEmpty, AnyDonor: ci.AnyDonor,
	})
}

func opFlags(_ *Server, sess *stealSession, w http.ResponseWriter, _ *http.Request) {
	busy, idle := sess.host.Flags()
	writeJSON(w, http.StatusOK, steal.FlagsResponse{Busy: busy, Idle: idle})
}

func opStatus(_ *Server, sess *stealSession, w http.ResponseWriter, _ *http.Request) {
	allEmpty, anyDonor := sess.host.Status()
	writeJSON(w, http.StatusOK, steal.StatusResponse{AllEmpty: allEmpty, AnyDonor: anyDonor})
}

func opTransfer(_ *Server, sess *stealSession, w http.ResponseWriter, r *http.Request) {
	var req steal.TransferRequest
	if !decodeStealBody(w, r, &req) {
		return
	}
	moved, err := sess.host.Transfer(req.From, req.To)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, steal.MovedResponse{Moved: moved})
}

func opSplit(s *Server, sess *stealSession, w http.ResponseWriter, r *http.Request) {
	var req steal.SplitRequest
	if !decodeStealBody(w, r, &req) {
		return
	}
	payload, moved, err := sess.host.Split(req.Donation, req.From, req.To)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if moved > 0 {
		s.ctr.stealFramesSplit.Add(1)
	}
	writeJSON(w, http.StatusOK, steal.SplitResponse{Moved: moved, Stack: payload})
}

func opAbsorb(s *Server, sess *stealSession, w http.ResponseWriter, r *http.Request) {
	frame, err := io.ReadAll(http.MaxBytesReader(w, r.Body, steal.MaxFrameSize))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading frame: %v", err))
		return
	}
	moved, err := sess.host.Absorb(frame)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.ctr.stealFramesAbsorbed.Add(1)
	writeJSON(w, http.StatusOK, steal.MovedResponse{Moved: moved})
}

func opExport(_ *Server, sess *stealSession, w http.ResponseWriter, _ *http.Request) {
	stacks, domainState, err := sess.host.Export()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, steal.ExportResponse{Stacks: stacks, DomainState: domainState})
}

func opMerge(_ *Server, sess *stealSession, w http.ResponseWriter, r *http.Request) {
	var req steal.MergeRequest
	if !decodeStealBody(w, r, &req) {
		return
	}
	merged, err := sess.host.Merge(req.States)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, steal.MergeResponse{DomainState: merged})
}

// handleStealCheckpoint implements PUT /v1/steal/sessions/{sid}/checkpoint:
// the coordinator ships an assembled cluster-wide checkpoint, persisted
// under the donated job's spool entry so a restart recovers the sharded
// job (the spool rescan resumes it as an ordinary single-node run).
func (s *Server) handleStealCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.steal.get(r.PathValue("sid"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown shard session")
		return
	}
	if !sess.spool || s.spool == nil {
		writeError(w, http.StatusConflict, "session was not opened with spooling")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, checkpoint.MaxFrameSize))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading checkpoint body: %v", err))
		return
	}
	if _, err := checkpoint.Peek(body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad checkpoint: %v", err))
		return
	}
	if err := s.spool.write(sess.key, body); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("spooling checkpoint: %v", err))
		return
	}
	s.ctr.checkpointsWritten.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleStealClose implements DELETE /v1/steal/sessions/{sid}; with
// ?drop_spool=1 the donated job's spool entry goes too (the distributed
// run completed and its result is recorded elsewhere).
func (s *Server) handleStealClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.steal.remove(r.PathValue("sid"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown shard session")
		return
	}
	if r.URL.Query().Get("drop_spool") == "1" && s.spool != nil {
		s.spool.remove(sess.key)
	}
	w.WriteHeader(http.StatusNoContent)
}

// decodeStealBody parses a small JSON request body, answering 400 itself
// on failure.
func decodeStealBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, steal.MaxFrameSize))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/spill"
	"simdtree/internal/trace"
)

// startWorkers launches the pool.  Each worker pulls from the scheduler
// (the stock FIFO or the traffic layer's fair queue) until it is closed
// by Shutdown and drained.
func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				it, ok := s.sched.Next()
				if !ok {
					return
				}
				s.runJob(it.job)
			}
		}()
	}
}

// runJob executes one job end to end: derive its cancellable context,
// run the domain with panic isolation, classify the outcome, publish the
// result and feed the cache and metrics.
func (s *Server) runJob(j *job) {
	// A queued job may already have been cancelled via DELETE or by
	// shutdown; honour that before paying for a run.
	select {
	case <-j.runCtx.Done():
		s.finishJob(j, StatusCancelled, metrics.Stats{Cancelled: true}, nil, causeMessage(j.runCtx))
		s.cleanSpool(j, context.Cause(j.runCtx))
		return
	default:
	}

	ctx := j.runCtx
	timeout := time.Duration(j.spec.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var cancelTimeout context.CancelFunc
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeoutCause(ctx, timeout, context.DeadlineExceeded)
		defer cancelTimeout()
	}

	opts, err := s.buildOptions(j.spec)
	if err != nil {
		s.finishJob(j, StatusFailed, metrics.Stats{}, nil, err.Error())
		return
	}
	var tr *trace.Trace
	if j.spec.Trace {
		tr = &trace.Trace{}
		opts.Trace = tr
	}

	started := time.Now()
	j.mu.Lock()
	j.status = StatusRunning
	j.started = started
	j.mu.Unlock()
	j.events.append(JobEvent{Type: EventStatus, Status: StatusRunning})
	s.ctr.jobsRunning.Add(1)
	s.ctr.busyWorkers.Add(1)
	defer s.ctr.jobsRunning.Add(-1)
	defer s.ctr.busyWorkers.Add(-1)

	stats, runErr := s.execute(ctx, j, opts)
	latency := time.Since(started)
	s.latencies.observe(j.spec.Scheme, latency)
	s.ctr.runDurSumNS.Add(int64(latency))
	s.ctr.runDurCount.Add(1)

	switch {
	case runErr == nil:
		s.cache.put(j.key, cachedResult{Stats: stats, Trace: tr})
		s.finishJob(j, StatusDone, stats, tr, "")
	case errors.Is(runErr, simd.ErrBudgetExceeded):
		s.finishJob(j, StatusExhausted, stats, tr, runErr.Error())
	case errors.Is(runErr, context.DeadlineExceeded):
		s.finishJob(j, StatusTimeout, stats, tr, runErr.Error())
	case errors.Is(runErr, errDonated):
		s.finishJob(j, StatusDonated, stats, tr, runErr.Error())
	case errors.Is(runErr, context.Canceled),
		errors.Is(runErr, errCancelRequested),
		errors.Is(runErr, errShutdown):
		s.finishJob(j, StatusCancelled, stats, tr, runErr.Error())
	default:
		s.finishJob(j, StatusFailed, stats, tr, runErr.Error())
	}
	s.cleanSpool(j, runErr)
}

// cleanSpool deletes a terminal job's spool file — except when shutdown
// ended the job (the file is exactly what lets the next process resume
// it) or when the job was donated to the fleet (the file is the donation
// payload, and the coordinator's shard sessions keep updating it).
func (s *Server) cleanSpool(j *job, cause error) {
	if s.spool == nil || errors.Is(cause, errShutdown) || errors.Is(cause, errDonated) {
		return
	}
	s.spool.remove(j.key)
}

// runEnv builds the checkpoint plumbing the runner sees: a spool-backed
// writer under the job's cache key, the resume payload when the job was
// recovered from the spool, the counters both feed, and the progress
// sinks that turn engine liveness ticks and checkpoint writes into job
// events for the SSE stream.
func (s *Server) runEnv(j *job) RunEnv {
	env := RunEnv{}
	if s.cfg.ProgressEvery > 0 {
		env.ProgressEvery = s.cfg.ProgressEvery
		env.Progress = func(info simd.ProgressInfo) {
			j.events.append(JobEvent{
				Type: EventProgress, Cycle: info.Cycles, Active: info.Active,
				W: info.W, LBPhases: info.LBPhases,
			})
		}
	}
	if s.spool != nil {
		spec, err := json.Marshal(j.spec)
		if err != nil {
			// A canonical JobSpec is plain data; Marshal cannot fail on it.
			panic(fmt.Sprintf("server: marshal canonical spec: %v", err))
		}
		env.CheckpointEvery = s.cfg.CheckpointEvery
		env.SpecJSON = spec
		env.Write = func(b []byte) error {
			if err := s.spool.write(j.key, b); err != nil {
				return err
			}
			s.ctr.checkpointsWritten.Add(1)
			return nil
		}
		env.Checkpointed = func(cycle int) {
			j.events.append(JobEvent{Type: EventCheckpoint, Cycle: cycle})
		}
		env.SpillDir = s.spool.spillDir(j.key)
	}
	env.SpillStats = func(st spill.Stats) {
		s.ctr.spillEvictions.Add(st.Evictions)
		s.ctr.spillFaults.Add(st.Faults)
		s.ctr.spillBytesWritten.Add(st.BytesWritten)
		s.ctr.spillBytesRead.Add(st.BytesRead)
	}
	if j.resume != nil {
		env.Resume = j.resume
		env.OnResume = func(cycle int) {
			j.setResumed(cycle)
			s.ctr.jobsResumed.Add(1)
		}
	}
	return env
}

// execute dispatches to the domain runner with panic isolation: a
// panicking domain fails its own job and leaves the worker (and process)
// alive.
func (s *Server) execute(ctx context.Context, j *job, opts simd.Options) (stats metrics.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.ctr.panics.Add(1)
			err = fmt.Errorf("domain %q panicked: %v\n%s", j.spec.Domain, r, debug.Stack())
		}
	}()
	run, ok := s.runners[j.spec.Domain]
	if !ok {
		return metrics.Stats{}, fmt.Errorf("no runner for domain %q", j.spec.Domain)
	}
	return run(ctx, j.spec, opts, s.runEnv(j))
}

// finishJob publishes a terminal status and bumps the outcome counters.
func (s *Server) finishJob(j *job, status Status, stats metrics.Stats, tr *trace.Trace, errMsg string) {
	if !j.finish(status, stats, tr, errMsg, time.Now()) {
		return
	}
	j.events.append(JobEvent{
		Type: EventStatus, Status: status, Error: errMsg, Terminal: true,
		Cycle: stats.Cycles, W: stats.W, LBPhases: stats.LBPhases,
	})
	switch status {
	case StatusDone:
		s.ctr.jobsDone.Add(1)
	case StatusCancelled:
		s.ctr.jobsCancelled.Add(1)
	case StatusTimeout:
		s.ctr.jobsTimeout.Add(1)
	case StatusExhausted:
		s.ctr.jobsExhausted.Add(1)
	case StatusFailed:
		s.ctr.jobsFailed.Add(1)
	case StatusDonated:
		s.ctr.jobsDonated.Add(1)
	}
}

// causeMessage renders a context's cancellation cause for the job record.
func causeMessage(ctx context.Context) string {
	if cause := context.Cause(ctx); cause != nil {
		return cause.Error()
	}
	return context.Canceled.Error()
}

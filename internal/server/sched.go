package server

// The admission/dispatch policy between submission and the worker pool is
// pluggable: the stock server uses a bounded FIFO (exactly the original
// global queue), while the traffic layer (internal/traffic) installs a
// per-tenant deficit-round-robin scheduler through Config.Scheduler.  The
// paper's GP invariant — one rotating pointer, no PE picked twice before
// every candidate was offered the work once (§4.1) — reappears here one
// level up, with tenants in the role of the PEs.

// SchedItem is one queued job as the scheduler sees it: the routing facts
// a policy may use (tenant, predicted cost) plus an opaque payload only
// the server reads back.  Schedulers must return items unmodified.
type SchedItem struct {
	// Tenant is the submitting tenant (the X-Tenant header, or "default").
	Tenant string
	// Cost is the predicted work of the job in scheduler cost units
	// (node expansions, normalised by the caller); 1 when no estimate
	// was attached.
	Cost float64

	job *job
}

// Scheduler is the pluggable admission queue.  Push and Close are always
// serialized by the server (both run under the submission lock); Next is
// called concurrently by every pool worker and must block until an item
// is available or the scheduler is closed and drained.
type Scheduler interface {
	// Push admits one item; false means the queue is full and the
	// submission is rejected with 429.
	Push(item SchedItem) bool
	// Next blocks for the next item to execute.  After Close it keeps
	// returning the remaining backlog (graceful drain) and reports
	// ok=false once empty.
	//
	//lint:allow ctxflow scheduler lifetime is bounded by Close; pool workers own the blocking wait
	Next() (SchedItem, bool)
	// Close stops admission.  Next drains the backlog, then returns
	// ok=false to every waiter.
	Close()
	// Depth is the current backlog size across all tenants.
	Depth() int
}

// fifoScheduler is the default policy: one bounded channel, strict global
// submission order, tenant-blind — the pre-traffic-layer behaviour.
type fifoScheduler struct {
	ch chan SchedItem
}

// NewFIFOScheduler returns the stock bounded FIFO policy with the given
// capacity.
func NewFIFOScheduler(capacity int) Scheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &fifoScheduler{ch: make(chan SchedItem, capacity)}
}

func (f *fifoScheduler) Push(item SchedItem) bool {
	select {
	case f.ch <- item:
		return true
	default:
		return false
	}
}

//lint:allow ctxflow scheduler lifetime is bounded by Close; pool workers own the blocking wait
func (f *fifoScheduler) Next() (SchedItem, bool) {
	it, ok := <-f.ch
	return it, ok
}

func (f *fifoScheduler) Close() { close(f.ch) }

func (f *fifoScheduler) Depth() int { return len(f.ch) }

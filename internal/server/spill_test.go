package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// spillSpoolSpec is spoolSpec with a memory budget of roughly three
// dozen nodes across eight PEs — tight enough that the run spills cold
// stack levels from the first few cycles on.
const spillSpoolSpec = `{"domain":"spoolsim","scheme":"GP-DK","p":8,"mem_budget":264}`

// TestSpillServerEquivalence runs the same job with and without a memory
// budget through the full server stack and requires byte-identical result
// statistics — the end-to-end form of the engine's residency contract —
// and that the budgeted run actually generated spill traffic.
func TestSpillServerEquivalence(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})

	free, code := postJob(t, ts, spoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("unbounded submit: %d", code)
	}
	freeFin := waitTerminal(t, ts, free.ID)
	if freeFin.Status != StatusDone {
		t.Fatalf("unbounded job finished %q: %s", freeFin.Status, freeFin.Error)
	}

	tight, code := postJob(t, ts, spillSpoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("budgeted submit: %d", code)
	}
	if tight.CacheKey == free.CacheKey {
		t.Fatal("mem_budget did not enter the cache key; distinct configurations would collide")
	}
	tightFin := waitTerminal(t, ts, tight.ID)
	if tightFin.Status != StatusDone {
		t.Fatalf("budgeted job finished %q: %s", tightFin.Status, tightFin.Error)
	}
	if !bytes.Equal(tightFin.Stats, freeFin.Stats) {
		t.Errorf("budgeted result differs from unbounded run:\n got %s\nwant %s", tightFin.Stats, freeFin.Stats)
	}
	if got := s.ctr.spillEvictions.Load(); got == 0 {
		t.Error("budgeted job recorded no spill evictions; the budget never engaged")
	}
	if got := s.ctr.spillFaults.Load(); got == 0 {
		t.Error("budgeted job recorded no spill faults; the restore path went unexercised")
	}

	var m map[string]any
	getJSON(t, ts, "/metrics", &m)
	if got := m["spill_evictions_total"].(float64); got == 0 {
		t.Error("metrics endpoint does not report spill_evictions_total")
	}
}

// TestSpillSpoolKillAndRestart is the crash-recovery path for a
// memory-bounded job: killed mid-run it leaves a spooled checkpoint AND
// spilled segment files; the restarted server must treat the segments as
// stale cache (the checkpoint reabsorbed every level before being
// written), wipe them, resume from the spool, and finish with result
// bytes identical to an uninterrupted run.
func TestSpillSpoolKillAndRestart(t *testing.T) {
	dir := t.TempDir()

	// Reference: the same budgeted job on a spool-less server.
	_, tsRef := testServer(t, Config{Workers: 1, Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	refJob, code := postJob(t, tsRef, spillSpoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d", code)
	}
	refFin := waitTerminal(t, tsRef, refJob.ID)
	if refFin.Status != StatusDone {
		t.Fatalf("reference job finished %q: %s", refFin.Status, refFin.Error)
	}

	// Process one: checkpoint every 2 cycles and block inside cycle 20's
	// progress callback.  That point is after cycle 19's eviction sweep
	// and before the next boundary's checkpoint could reabsorb those
	// segments (checkpoints land on even cycle counts, i.e. at the top of
	// odd-cycle iterations), so segment files are deterministically on
	// disk while the job hangs.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	gate := func(cycle int) {
		if cycle == 20 {
			once.Do(func() { close(started) })
			<-release
		}
	}
	a, err := New(Config{Workers: 1, Spool: dir, CheckpointEvery: 2,
		Runners: map[string]Runner{"spoolsim": spoolRunner(gate)}})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	sub, code := postJob(t, tsA, spillSpoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-started
	spillDir := filepath.Join(dir, sub.CacheKey+".spill")
	segs, err := filepath.Glob(filepath.Join(spillDir, "*.sspl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatalf("no segment files in %s while the budgeted job hangs mid-run", spillDir)
	}
	// Capture the live segments: the in-process kill below still runs the
	// runner's deferred cleanup (unlike a real SIGKILL), so to exercise
	// the crash contract the files are re-planted before the restart.
	saved := make(map[string][]byte, len(segs))
	for _, p := range segs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[filepath.Base(p)] = b
	}

	jA, ok := a.store.get(sub.ID)
	if !ok {
		t.Fatal("submitted job not in store")
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- a.Shutdown(expired) }()
	<-jA.runCtx.Done()
	close(release)
	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: %v", err)
	}
	ckptPath := filepath.Join(dir, sub.CacheKey+spoolExt)
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("shutdown removed the spooled checkpoint: %v", err)
	}
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range saved {
		if err := os.WriteFile(filepath.Join(spillDir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Process two: the rescan resumes the job from the checkpoint; the
	// stale segments describe stacks the snapshot already reabsorbed and
	// must be wiped, not restored.
	b, err := New(Config{Workers: 1, Spool: dir, CheckpointEvery: 500,
		Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := b.Shutdown(ctx); err != nil {
			t.Errorf("restart shutdown: %v", err)
		}
	})
	resumedID := ""
	for _, j := range b.store.all() {
		resumedID = j.id
	}
	if resumedID == "" {
		t.Fatal("restarted server found no spooled job")
	}
	fin := waitTerminal(t, tsB, resumedID)
	if fin.Status != StatusDone {
		t.Fatalf("resumed job finished %q: %s", fin.Status, fin.Error)
	}
	// The kill path spools a final snapshot at the cancellation boundary —
	// cycle 20, where the gate held the machine — so resumption continues
	// from there, not from the last periodic checkpoint.
	if !fin.Resumed || fin.ResumedFromCycle != 20 {
		t.Errorf("resumed=%t from cycle %d, want resumption from cycle 20 (the cancellation-boundary checkpoint)",
			fin.Resumed, fin.ResumedFromCycle)
	}
	if !bytes.Equal(fin.Stats, refFin.Stats) {
		t.Errorf("resumed result differs from uninterrupted run:\n got %s\nwant %s", fin.Stats, refFin.Stats)
	}
	if _, err := os.Stat(spillDir); !os.IsNotExist(err) {
		t.Errorf("completed job left its spill directory behind (stat err %v)", err)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Errorf("completed job left its spool file behind (stat err %v)", err)
	}
}

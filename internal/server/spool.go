package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"simdtree/internal/checkpoint"
)

// spoolExt is the suffix of persisted checkpoints; anything else in the
// spool directory is ignored (stale temp files are cleaned at open).
const spoolExt = ".ckpt"

// spool is the crash-recovery checkpoint directory.  When Config.Spool
// names one, every running job periodically persists a checkpoint there
// as <cache-key>.ckpt, with the canonical spec JSON embedded in the
// checkpoint's Meta.Extra.  A job that reaches a terminal state deletes
// its file, except when shutdown cancelled it — that file survives so a
// restarted server can rescan the directory, re-queue the job and resume
// from the snapshot.  By the determinism contract the completed result
// is byte-identical to an uninterrupted run's, so it feeds the cache
// exactly as if the first process had never died.
type spool struct {
	dir string
}

// openSpool ensures the directory exists and sweeps temp files a crashed
// writer may have left behind.
func openSpool(dir string) (*spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
			_ = os.Remove(filepath.Join(dir, e.Name())) //lint:allow errdrop a stale temp file is harmless
		}
	}
	return &spool{dir: dir}, nil
}

func (sp *spool) path(key string) string {
	return filepath.Join(sp.dir, key+spoolExt)
}

// spillDir names the job's spill-segment directory, kept next to its
// checkpoint so a memory-bounded job's disk footprint lives in one place.
// The directory holds cache only — rescan ignores it, and the runner
// clears it when the run ends.
func (sp *spool) spillDir(key string) string {
	return filepath.Join(sp.dir, key+".spill")
}

// write atomically replaces the job's spool file: temp file in the same
// directory, sync, rename.  A crash mid-write leaves the previous
// checkpoint intact; a torn rename is caught by the format's CRC at
// rescan.
func (sp *spool) write(key string, b []byte) error {
	f, err := os.CreateTemp(sp.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, sp.path(key))
	}
	if err != nil {
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup after a failed write
		return err
	}
	return nil
}

// read returns the job's spooled checkpoint bytes.
func (sp *spool) read(key string) ([]byte, error) {
	return os.ReadFile(sp.path(key))
}

// remove deletes the job's spool file, if any.
func (sp *spool) remove(key string) {
	_ = os.Remove(sp.path(key)) //lint:allow errdrop a missing file is the desired state
}

// spooledJob is one resumable checkpoint recovered at startup.
type spooledJob struct {
	key  string
	spec JobSpec
	data []byte
}

// rescan returns every valid checkpoint in the spool, in the
// deterministic directory order.  A file is valid when its CRC and
// header parse (checkpoint.Peek), its embedded spec canonicalizes
// against the server's domain set, and the spec's cache key matches the
// filename — the binding that stops a renamed or stale file from
// resurrecting the wrong job.  Invalid files are skipped, never deleted:
// an operator may want to inspect them.
func (sp *spool) rescan(domains map[string]bool) []spooledJob {
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		return nil
	}
	var out []spooledJob
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, spoolExt) {
			continue
		}
		key := strings.TrimSuffix(name, spoolExt)
		b, err := os.ReadFile(filepath.Join(sp.dir, name))
		if err != nil {
			continue
		}
		meta, err := checkpoint.Peek(b)
		if err != nil {
			continue
		}
		var spec JobSpec
		if json.Unmarshal(meta.Extra, &spec) != nil {
			continue
		}
		canonical, err := Canonicalize(spec, domains)
		if err != nil || CacheKey(canonical) != key {
			continue
		}
		out = append(out, spooledJob{key: key, spec: canonical, data: b})
	}
	return out
}

// resumeSpooled re-queues the jobs a previous process left checkpointed
// in the spool.  Each gets a fresh id and carries its checkpoint bytes;
// the runner restores the snapshot and reports the resumed-from cycle.
// Checkpoints that do not fit the queue stay on disk for the next
// restart.
func (s *Server) resumeSpooled() {
	for _, sj := range s.spool.rescan(s.domains) {
		id := "j" + strconv.FormatInt(s.nextID.Add(1), 10)
		j := newJob(s, id, sj.spec, sj.key, time.Now())
		j.resume = sj.data
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			j.cancel(errShutdown)
			return
		}
		if !s.sched.Push(SchedItem{Tenant: j.tenant, Cost: j.cost, job: j}) {
			s.mu.Unlock()
			j.cancel(errShutdown)
			continue
		}
		s.mu.Unlock()
		s.ctr.jobsQueued.Add(1)
		s.store.add(j)
		j.events.append(JobEvent{Type: EventStatus, Status: StatusQueued})
	}
}

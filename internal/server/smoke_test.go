package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
)

// TestConcurrentSmoke is the end-to-end race smoke test: it drives the
// service with >= 8 concurrent jobs over a small worker pool, including
// one job that gets cancelled, one that times out, and one whose domain
// panics, and requires every job to reach a terminal state with the
// process (and every worker) surviving.  CI runs this package with
// -race, which also exercises the submit/cancel/poll paths against the
// pool under the detector.
func TestConcurrentSmoke(t *testing.T) {
	cfg := Config{Workers: 4, QueueSize: 32, Runners: map[string]Runner{
		"explode": func(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
			panic("smoke boom")
		},
	}}
	s, ts := testServer(t, cfg)

	type submission struct {
		name   string
		spec   string
		cancel bool
		want   []Status
	}
	subs := []submission{
		{name: "queens-a", spec: `{"domain":"queens","scheme":"GP-DK","p":32,"queens":{"n":7}}`, want: []Status{StatusDone}},
		{name: "queens-b", spec: `{"domain":"queens","scheme":"nGP-S0.85","p":64,"queens":{"n":8}}`, want: []Status{StatusDone}},
		{name: "synthetic-a", spec: `{"domain":"synthetic","scheme":"GP-DP","p":64,"synthetic":{"w":20000,"seed":1}}`, want: []Status{StatusDone}},
		{name: "synthetic-b", spec: `{"domain":"synthetic","scheme":"GP-DK","p":128,"synthetic":{"w":40000,"seed":2}}`, want: []Status{StatusDone}},
		{name: "puzzle", spec: `{"domain":"puzzle","scheme":"GP-S0.80","p":16,"puzzle":{"seed":5,"steps":16}}`, want: []Status{StatusDone}},
		{name: "budgeted", spec: `{"domain":"synthetic","scheme":"GP-S0.80","p":64,"budget_cycles":25,"synthetic":{"w":5000000,"seed":4}}`, want: []Status{StatusExhausted}},
		{name: "timeout", spec: bigSyntheticSpec(`"timeout_ms":40,`), want: []Status{StatusTimeout}},
		{name: "cancelled", spec: bigSyntheticSpec(""), cancel: true, want: []Status{StatusCancelled}},
		{name: "panic", spec: `{"domain":"explode","scheme":"GP-DK","p":4}`, want: []Status{StatusFailed}},
	}
	if len(subs) < 8 {
		t.Fatalf("smoke needs >= 8 jobs, have %d", len(subs))
	}

	var wg sync.WaitGroup
	results := make([]wireJob, len(subs))
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub submission) {
			defer wg.Done()
			j, code := postJob(t, ts, sub.spec)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("%s: submit status %d", sub.name, code)
				return
			}
			if sub.cancel {
				// Let it get going, then cancel; the job is hours of
				// simulation if the cancel were lost.
				time.Sleep(50 * time.Millisecond)
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("%s: cancel: %v", sub.name, err)
					return
				}
				resp.Body.Close()
			}
			results[i] = waitTerminal(t, ts, j.ID)
		}(i, sub)
	}
	wg.Wait()

	for i, sub := range subs {
		got := results[i].Status
		okStatus := false
		for _, w := range sub.want {
			if got == w {
				okStatus = true
			}
		}
		if !okStatus {
			t.Errorf("%s: finished %q (err %q), want one of %v", sub.name, got, results[i].Error, sub.want)
		}
	}

	// The pool survived the panic: counters line up and a fresh job runs.
	if got := s.ctr.panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	last, _ := postJob(t, ts, `{"domain":"queens","scheme":"GP-DK","p":16,"queens":{"n":6}}`)
	if fin := waitTerminal(t, ts, last.ID); fin.Status != StatusDone {
		t.Errorf("post-smoke job finished %q: %s", fin.Status, fin.Error)
	}

	// /metrics stays consistent under load.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	terminal := m.JobsDone + m.JobsCancelled + m.JobsTimeout + m.JobsExhausted + m.JobsFailed
	if want := int64(len(subs) + 1); terminal != want {
		t.Errorf("terminal jobs = %d, want %d", terminal, want)
	}
	if m.JobsRunning != 0 {
		t.Errorf("%d jobs still running after drain", m.JobsRunning)
	}
	for name, want := range map[string]int64{
		"cancelled": m.JobsCancelled, "timeout": m.JobsTimeout,
		"failed": m.JobsFailed, "exhausted": m.JobsExhausted,
	} {
		if want < 1 {
			t.Errorf("no %s job recorded in metrics", name)
		}
	}
}

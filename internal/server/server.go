package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/trace"
)

// Config shapes a Server.  The zero value is usable: every field has a
// production-sane default.
type Config struct {
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// QueueSize bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with 429 (default 64).
	QueueSize int
	// CacheSize caps the LRU result cache in entries (default 512).
	CacheSize int
	// JobHistory caps the number of finished jobs kept addressable
	// (default 4096); running and queued jobs are never evicted.
	JobHistory int
	// DefaultTimeout applies to jobs that do not set timeout_ms; 0 means
	// no default deadline.
	DefaultTimeout time.Duration
	// SimWorkers shards each simulated cycle across this many goroutines
	// (the engine's Options.Workers); results are identical for any
	// value (default 1).
	SimWorkers int
	// Runners adds or overrides domain runners (tests inject failure
	// modes this way).  Built-ins: puzzle, synthetic, queens.
	Runners map[string]Runner
	// Spool names a directory where running jobs persist checkpoints for
	// crash recovery; "" disables spooling.  On startup the server
	// rescans it and resumes every job a previous process left
	// interrupted.
	Spool string
	// CheckpointEvery is the cycle cadence of spooled checkpoints
	// (default 1000 when Spool is set; ignored otherwise).
	CheckpointEvery int
	// EnablePprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/.  Off by default: the profiles expose internals
	// (heap contents, command line) that do not belong on an open
	// service port.
	EnablePprof bool
	// DrainTimeout is the graceful-shutdown grace period the operator
	// gives running jobs (default 30s).  It is advertised in /version as
	// drain_timeout_ms so a fleet coordinator draining or ejecting this
	// node knows exactly how long to wait before declaring its jobs
	// lost.
	DrainTimeout time.Duration
	// Scheduler overrides the admission/dispatch policy between
	// submission and the worker pool; nil selects the stock bounded FIFO
	// of QueueSize entries.  The traffic layer installs its per-tenant
	// deficit-round-robin queue here.
	Scheduler Scheduler
	// ProgressEvery is the cycle cadence of per-job progress events (the
	// SSE feed); default 250.  Negative disables progress events.
	ProgressEvery int
	// MemBudget is the default per-job memory budget in bytes for the
	// simulated machine's stack storage, applied when a spec leaves
	// mem_budget unset; 0 runs unbounded.  Budgeted runs spill cold stack
	// levels to disk and produce results identical to unbounded ones, so
	// the default sits safely below the cache key.
	MemBudget int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 512
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 4096
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = 1
	}
	if c.Spool != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1000
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 250
	}
	return c
}

// DrainTimeout reports the configured graceful-drain grace period, the
// single source the serving binary and /version both read.
func (s *Server) DrainTimeout() time.Duration { return s.cfg.DrainTimeout }

// Server is the simdserve HTTP service: a bounded job queue over the
// deterministic SIMD simulator, with an LRU result cache and
// observability endpoints.
type Server struct {
	cfg       Config
	runners   map[string]Runner
	domains   map[string]bool
	cache     *resultCache
	store     *jobStore
	latencies *schemeLatencies
	spool     *spool // nil when spooling is disabled
	steal     *stealRegistry
	ctr       counters

	rootCtx  context.Context
	rootStop context.CancelCauseFunc

	mu       sync.Mutex // guards scheduler push vs close
	sched    Scheduler
	draining bool

	nextID  atomic.Int64
	started time.Time
	wg      sync.WaitGroup
}

// New builds a Server and starts its worker pool.  When cfg.Spool is
// set, it also rescans the spool directory and re-queues every job a
// previous process left checkpointed there.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	runners := defaultRunners()
	for name, r := range cfg.Runners {
		runners[name] = r
	}
	domains := make(map[string]bool, len(runners))
	for name := range runners {
		domains[name] = true
	}
	//lint:allow ctxflow server-lifetime root context, cancelled by Shutdown
	rootCtx, rootStop := context.WithCancelCause(context.Background())
	sched := cfg.Scheduler
	if sched == nil {
		sched = NewFIFOScheduler(cfg.QueueSize)
	}
	s := &Server{
		cfg:       cfg,
		runners:   runners,
		domains:   domains,
		cache:     newResultCache(cfg.CacheSize),
		store:     newJobStore(cfg.JobHistory),
		latencies: newSchemeLatencies(),
		steal:     newStealRegistry(),
		rootCtx:   rootCtx,
		rootStop:  rootStop,
		sched:     sched,
		started:   time.Now(),
	}
	if cfg.Spool != "" {
		sp, err := openSpool(cfg.Spool)
		if err != nil {
			rootStop(errShutdown)
			return nil, fmt.Errorf("spool %s: %w", cfg.Spool, err)
		}
		s.spool = sp
	}
	s.startWorkers()
	if s.spool != nil {
		s.resumeSpooled()
	}
	return s, nil
}

// Shutdown drains the service gracefully: no new submissions are
// accepted, queued and running jobs are allowed to finish until ctx
// expires, then the remainder is cancelled and the pool joined.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		s.sched.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Grace period over: cancel everything still running and wait
		// for the workers to observe it.
		s.rootStop(errShutdown)
		<-done
		return ctx.Err()
	}
}

// Handler returns the service's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/import", s.handleImport)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleExportCheckpoint)
	mux.HandleFunc("GET /v1/jobs/{id}/stealable", s.handleStealable)
	mux.HandleFunc("POST /v1/jobs/{id}/donate", s.handleDonate)
	mux.HandleFunc("POST /v1/steal/sessions", s.handleStealOpen)
	mux.HandleFunc("POST /v1/steal/sessions/{sid}/step", s.stealOp(opStep))
	mux.HandleFunc("GET /v1/steal/sessions/{sid}/flags", s.stealOp(opFlags))
	mux.HandleFunc("GET /v1/steal/sessions/{sid}/status", s.stealOp(opStatus))
	mux.HandleFunc("POST /v1/steal/sessions/{sid}/transfer", s.stealOp(opTransfer))
	mux.HandleFunc("POST /v1/steal/sessions/{sid}/split", s.stealOp(opSplit))
	mux.HandleFunc("POST /v1/steal/sessions/{sid}/absorb", s.stealOp(opAbsorb))
	mux.HandleFunc("GET /v1/steal/sessions/{sid}/export", s.stealOp(opExport))
	mux.HandleFunc("POST /v1/steal/sessions/{sid}/merge", s.stealOp(opMerge))
	mux.HandleFunc("PUT /v1/steal/sessions/{sid}/checkpoint", s.handleStealCheckpoint)
	mux.HandleFunc("DELETE /v1/steal/sessions/{sid}", s.handleStealClose)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		// Registered explicitly rather than via the net/http/pprof
		// import side effect, so the handlers exist only on this mux
		// and only when the operator opted in.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// jobResponse is the wire form of a job's state.
type jobResponse struct {
	ID       string  `json:"id"`
	Status   Status  `json:"status"`
	CacheKey string  `json:"cache_key"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Tenant   string  `json:"tenant,omitempty"`
	Error    string  `json:"error,omitempty"`
	Spec     JobSpec `json:"spec"`

	// Resumed marks a job recovered from a spooled checkpoint after a
	// restart; ResumedFromCycle is the cycle the run restored at.
	Resumed          bool `json:"resumed,omitempty"`
	ResumedFromCycle int  `json:"resumed_from_cycle,omitempty"`

	// Result fields are present once the job is terminal.
	Stats      *metrics.Stats `json:"stats,omitempty"`
	Efficiency float64        `json:"efficiency,omitempty"`
	Speedup    float64        `json:"speedup,omitempty"`

	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	LatencyMS   int64  `json:"latency_ms,omitempty"`
}

func renderJob(v jobView) jobResponse {
	r := jobResponse{
		ID:               v.ID,
		Status:           v.Status,
		CacheKey:         v.Key,
		CacheHit:         v.CacheHit,
		Tenant:           v.Tenant,
		Error:            v.ErrMsg,
		Spec:             v.Spec,
		Resumed:          v.Resumed,
		ResumedFromCycle: v.ResumedCycle,
	}
	if !v.Submitted.IsZero() {
		r.SubmittedAt = v.Submitted.UTC().Format(time.RFC3339Nano)
	}
	if !v.Started.IsZero() {
		r.StartedAt = v.Started.UTC().Format(time.RFC3339Nano)
	}
	if v.Status.terminal() {
		st := v.Stats
		r.Stats = &st
		r.Efficiency = st.Efficiency()
		r.Speedup = st.Speedup()
		if !v.Finished.IsZero() {
			r.FinishedAt = v.Finished.UTC().Format(time.RFC3339Nano)
			if !v.Submitted.IsZero() {
				r.LatencyMS = v.Finished.Sub(v.Submitted).Milliseconds()
			}
		}
	}
	return r
}

// newJob builds a queued job with its cancellable context derived from
// the server's root, shared by submission, import and spool resumption.
func newJob(s *Server, id string, canonical JobSpec, key string, now time.Time) *job {
	runCtx, cancel := context.WithCancelCause(s.rootCtx)
	return &job{
		id:        id,
		spec:      canonical,
		key:       key,
		tenant:    DefaultTenant,
		cost:      1,
		runCtx:    runCtx,
		cancel:    cancel,
		status:    StatusQueued,
		submitted: now,
		done:      make(chan struct{}),
		events:    newEventLog(),
	}
}

// finishFromCache is the deterministic-cache fast path: when an identical
// canonical spec already ran to completion, its Stats (and trace) are the
// job's result, byte for byte.  It reports whether the job was finished
// that way.
func (s *Server) finishFromCache(j *job, now time.Time) bool {
	res, ok := s.cache.get(j.key)
	if !ok {
		s.ctr.cacheMisses.Add(1)
		return false
	}
	s.ctr.cacheHits.Add(1)
	j.cacheHit = true
	j.status = StatusDone
	j.stats = res.Stats
	j.trace = res.Trace
	j.started = now
	j.finished = now
	close(j.done)
	j.cancel(nil)
	s.store.add(j)
	s.ctr.jobsDone.Add(1)
	j.events.append(JobEvent{
		Type: EventStatus, Status: StatusDone, CacheHit: true, Terminal: true,
		Cycle: res.Stats.Cycles, W: res.Stats.W, LBPhases: res.Stats.LBPhases,
	})
	return true
}

// enqueue admits j to the bounded queue, honouring drain state and
// backpressure.  On success it returns (0, "") with the job stored; on
// refusal it returns the HTTP status and message, with j's context
// cancelled.
func (s *Server) enqueue(j *job) (int, string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		j.cancel(errShutdown)
		return http.StatusServiceUnavailable, "server is shutting down"
	}
	if !s.sched.Push(SchedItem{Tenant: j.tenant, Cost: j.cost, job: j}) {
		s.mu.Unlock()
		j.cancel(errCancelRequested)
		s.ctr.jobsRejected.Add(1)
		return http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d jobs); retry later", s.cfg.QueueSize)
	}
	s.mu.Unlock()
	s.ctr.jobsQueued.Add(1)
	s.store.add(j)
	j.events.append(JobEvent{Type: EventStatus, Status: StatusQueued})
	return 0, ""
}

// handleSubmit implements POST /v1/jobs: canonicalize, consult the cache,
// otherwise enqueue with backpressure.  A 429 carries a Retry-After
// derived from the backlog and the recent mean job duration.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	tenant, err := TenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	canonical, err := Canonicalize(spec, s.domains)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	h, refusal := s.SubmitCanonical(canonical, CacheKey(canonical), tenant, 1)
	if refusal != nil {
		refusal.apply(w)
		return
	}
	if h.Terminal() {
		writeJSON(w, http.StatusOK, renderJob(h.j.view()))
		return
	}
	writeJSON(w, http.StatusAccepted, renderJob(h.j.view()))
}

// handleGet implements GET /v1/jobs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, renderJob(j.view()))
}

// handleList implements GET /v1/jobs: all addressable jobs, oldest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.all()
	out := make([]jobResponse, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, renderJob(j.view()))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleCancel implements DELETE /v1/jobs/{id}.  Cancelling a terminal
// job is a no-op that reports the final state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	j.requestCancel(errCancelRequested)
	writeJSON(w, http.StatusOK, renderJob(j.view()))
}

// handleTrace implements GET /v1/jobs/{id}/trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	v := j.view()
	if !v.Spec.Trace {
		writeError(w, http.StatusConflict, "job was not submitted with trace=true")
		return
	}
	if !v.Status.terminal() {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; trace is available once it finishes", v.Status))
		return
	}
	if v.Trace == nil {
		writeError(w, http.StatusNotFound, "no trace recorded")
		return
	}
	// ?trace_limit=N bounds the payload to the first N samples and
	// phases; a large-P job's full trace can dwarf everything else a
	// coordinator fans in, and the totals still tell the reader what was
	// cut.
	limit := -1
	if q := r.URL.Query().Get("trace_limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("trace_limit must be a non-negative integer, got %q", q))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, renderTrace(v.ID, v.Trace, limit))
}

// traceResponse is the wire form of a per-cycle trace.  SamplesTotal and
// PhasesTotal are the full lengths; Truncated marks a response bounded
// by ?trace_limit=.
type traceResponse struct {
	ID           string        `json:"id"`
	Samples      []traceSample `json:"samples"`
	Phases       []tracePhase  `json:"phases"`
	SamplesTotal int           `json:"samples_total"`
	PhasesTotal  int           `json:"phases_total"`
	Truncated    bool          `json:"truncated,omitempty"`
}

type traceSample struct {
	Cycle  int `json:"cycle"`
	Active int `json:"active"`
}

type tracePhase struct {
	Cycle     int   `json:"cycle"`
	Transfers int   `json:"transfers"`
	CostNS    int64 `json:"cost_ns"`
}

// renderTrace converts a trace for the wire, keeping the first limit
// samples and phases; limit < 0 means unbounded.
func renderTrace(id string, tr *trace.Trace, limit int) traceResponse {
	nSamples, nPhases := len(tr.Samples), len(tr.Events)
	out := traceResponse{ID: id, SamplesTotal: nSamples, PhasesTotal: nPhases}
	if limit >= 0 && (limit < nSamples || limit < nPhases) {
		out.Truncated = true
		if limit < nSamples {
			nSamples = limit
		}
		if limit < nPhases {
			nPhases = limit
		}
	}
	out.Samples = make([]traceSample, nSamples)
	out.Phases = make([]tracePhase, nPhases)
	for i := range out.Samples {
		sm := tr.Samples[i]
		out.Samples[i] = traceSample{Cycle: sm.Cycle, Active: sm.Active}
	}
	for i := range out.Phases {
		ev := tr.Events[i]
		out.Phases[i] = tracePhase{Cycle: ev.Cycle, Transfers: ev.Transfers, CostNS: int64(ev.Cost)}
	}
	return out
}

// RenderTrace renders a trace in the exact wire form of GET
// /v1/jobs/{id}/trace; limit < 0 means unbounded.  The fleet coordinator
// uses it to serve a distributed job's merged trace byte-identically to a
// node's rendering of the same run.
func RenderTrace(id string, tr *trace.Trace, limit int) any {
	return renderTrace(id, tr, limit)
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

// handleVersion implements GET /version from the embedded build info,
// plus the checkpoint format version the spool writes and accepts.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	out := map[string]string{
		"module":            "simdtree",
		"go":                "",
		"version":           "(devel)",
		"vcs_revision":      "",
		"checkpoint_format": strconv.Itoa(checkpoint.Version),
		"drain_timeout_ms":  strconv.FormatInt(s.cfg.DrainTimeout.Milliseconds(), 10),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["go"] = bi.GoVersion
		if bi.Main.Version != "" {
			out["version"] = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				out["vcs_revision"] = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// metricsResponse is the /metrics document: expvar-style counters plus
// queue and pool gauges and per-scheme latency histograms.
type metricsResponse struct {
	UptimeSeconds       float64                  `json:"uptime_seconds"`
	JobsQueued          int64                    `json:"jobs_queued_total"`
	JobsRunning         int64                    `json:"jobs_running"`
	JobsDone            int64                    `json:"jobs_done_total"`
	JobsCancelled       int64                    `json:"jobs_cancelled_total"`
	JobsTimeout         int64                    `json:"jobs_timeout_total"`
	JobsExhausted       int64                    `json:"jobs_exhausted_total"`
	JobsFailed          int64                    `json:"jobs_failed_total"`
	JobsRejected        int64                    `json:"jobs_rejected_total"`
	DomainPanics        int64                    `json:"domain_panics_total"`
	CacheHits           int64                    `json:"cache_hits_total"`
	CacheMisses         int64                    `json:"cache_misses_total"`
	CacheEntries        int                      `json:"cache_entries"`
	QueueDepth          int                      `json:"queue_depth"`
	QueueCapacity       int                      `json:"queue_capacity"`
	Workers             int                      `json:"workers"`
	BusyWorkers         int64                    `json:"busy_workers"`
	WorkerUtilization   float64                  `json:"worker_utilization"`
	CheckpointsWritten  int64                    `json:"checkpoints_written_total"`
	JobsResumed         int64                    `json:"jobs_resumed_total"`
	SpillEvictions      int64                    `json:"spill_evictions_total"`
	SpillFaults         int64                    `json:"spill_faults_total"`
	SpillBytesWritten   int64                    `json:"spill_bytes_written_total"`
	SpillBytesRead      int64                    `json:"spill_bytes_read_total"`
	CheckpointsExported int64                    `json:"checkpoints_exported_total"`
	JobsImported        int64                    `json:"jobs_imported_total"`
	JobsDonated         int64                    `json:"jobs_donated_total"`
	StealSessionsOpened int64                    `json:"steal_sessions_opened_total"`
	StealSessionsActive int                      `json:"steal_sessions_active"`
	StealFramesAbsorbed int64                    `json:"steal_frames_absorbed_total"`
	StealFramesSplit    int64                    `json:"steal_frames_split_total"`
	SchemeLatencies     map[string]histogramJSON `json:"scheme_latency_ms,omitempty"`
}

// handleMetrics implements GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	busy := s.ctr.busyWorkers.Load()
	writeJSON(w, http.StatusOK, metricsResponse{
		UptimeSeconds:       time.Since(s.started).Seconds(),
		JobsQueued:          s.ctr.jobsQueued.Load(),
		JobsRunning:         s.ctr.jobsRunning.Load(),
		JobsDone:            s.ctr.jobsDone.Load(),
		JobsCancelled:       s.ctr.jobsCancelled.Load(),
		JobsTimeout:         s.ctr.jobsTimeout.Load(),
		JobsExhausted:       s.ctr.jobsExhausted.Load(),
		JobsFailed:          s.ctr.jobsFailed.Load(),
		JobsRejected:        s.ctr.jobsRejected.Load(),
		DomainPanics:        s.ctr.panics.Load(),
		CacheHits:           s.ctr.cacheHits.Load(),
		CacheMisses:         s.ctr.cacheMisses.Load(),
		CacheEntries:        s.cache.len(),
		QueueDepth:          s.sched.Depth(),
		QueueCapacity:       s.cfg.QueueSize,
		Workers:             s.cfg.Workers,
		BusyWorkers:         busy,
		WorkerUtilization:   float64(busy) / float64(s.cfg.Workers),
		CheckpointsWritten:  s.ctr.checkpointsWritten.Load(),
		JobsResumed:         s.ctr.jobsResumed.Load(),
		SpillEvictions:      s.ctr.spillEvictions.Load(),
		SpillFaults:         s.ctr.spillFaults.Load(),
		SpillBytesWritten:   s.ctr.spillBytesWritten.Load(),
		SpillBytesRead:      s.ctr.spillBytesRead.Load(),
		CheckpointsExported: s.ctr.checkpointsExported.Load(),
		JobsImported:        s.ctr.jobsImported.Load(),
		JobsDonated:         s.ctr.jobsDonated.Load(),
		StealSessionsOpened: s.ctr.stealSessionsOpened.Load(),
		StealSessionsActive: s.steal.active(),
		StealFramesAbsorbed: s.ctr.stealFramesAbsorbed.Load(),
		StealFramesSplit:    s.ctr.stealFramesSplit.Load(),
		SchemeLatencies:     s.latencies.snapshot(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode failure here means the client went away; nothing to do.
	_ = enc.Encode(v) //lint:allow errdrop response writer errors are unreportable
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

package server

import (
	"context"
	"fmt"
	"os"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/spill"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
	"simdtree/internal/wire"
)

// RunEnv carries the checkpoint-spool plumbing into a runner.  The zero
// value disables checkpointing, so runners that ignore it (test
// injections) keep working unchanged apart from the extra parameter.
type RunEnv struct {
	// CheckpointEvery asks the runner to snapshot every N completed
	// cycles; 0 disables periodic checkpoints.
	CheckpointEvery int
	// Resume holds an encoded checkpoint to restore before running; nil
	// starts fresh.
	Resume []byte
	// SpecJSON is the canonical spec encoding stored in each
	// checkpoint's Meta.Extra, so a restarted server can rebuild the job
	// from the spool file alone.
	SpecJSON []byte
	// Write persists one encoded checkpoint, atomically replacing the
	// job's previous one.
	Write func([]byte) error
	// OnResume reports the cycle the run restored at, before any new
	// cycle executes.
	OnResume func(cycle int)
	// Progress, when non-nil, receives the engine's periodic liveness
	// snapshots every ProgressEvery cycles (simd.Options.Progress); it
	// feeds the job's SSE event stream.
	Progress func(simd.ProgressInfo)
	// ProgressEvery is the Progress cadence in cycles.
	ProgressEvery int
	// Checkpointed reports the cycle of each successfully persisted
	// periodic checkpoint, after Write returned nil.
	Checkpointed func(cycle int)
	// SpillDir names the directory for the job's spill segments when the
	// run is memory-bounded; "" makes the runner use a private temp
	// directory.  Either way the directory is cleared when the run ends —
	// segments are a cache, the checkpoint spool is the source of truth.
	SpillDir string
	// SpillStats, when non-nil, receives the residency manager's final
	// counters after a memory-bounded run ends.
	SpillStats func(spill.Stats)
}

// Runner executes one canonical job spec on the simulated machine.  Extra
// runners can be registered through Config.Runners — the race smoke test
// injects a panicking domain that way to prove worker isolation.
type Runner func(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error)

// defaultRunners maps the built-in domains.
func defaultRunners() map[string]Runner {
	return map[string]Runner{
		"puzzle":    runPuzzle,
		"synthetic": runSynthetic,
		"queens":    runQueens,
	}
}

// runMachine is the shared checkpointable execution path: build the
// machine, restore the spooled snapshot if the job is a resumption,
// register the periodic checkpoint sink, run, and — when the run is
// cancelled — write one final checkpoint capturing the exact cycle prefix
// so a restarted server loses no completed work.  Because cancellation
// lands only at cycle boundaries, the resumed run replays the identical
// schedule and finishes with the same Stats as an uninterrupted one.
func runMachine[S any](ctx context.Context, d search.Domain[S], codec wire.Codec[S], spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
	sch, err := simd.ParseScheme[S](spec.Scheme)
	if err != nil {
		return metrics.Stats{}, err
	}
	checkpointing := env.Write != nil && env.CheckpointEvery > 0
	if checkpointing {
		opts.CheckpointEvery = env.CheckpointEvery
	}
	if env.Progress != nil && env.ProgressEvery > 0 {
		if opts.Progress != nil && opts.ProgressEvery > 0 {
			// The runner brought its own progress sink (test gates do
			// this): compose rather than clobber.  The engine ticks at
			// the finer cadence and each sink fires at its own, tracked
			// by cycle distance because engine ticks land on multiples
			// of the combined cadence, not of each sink's.
			runnerSink, runnerEvery := opts.Progress, opts.ProgressEvery
			envSink, envEvery := env.Progress, env.ProgressEvery
			every := runnerEvery
			if envEvery < every {
				every = envEvery
			}
			lastRunner, lastEnv := 0, 0
			opts.ProgressEvery = every
			opts.Progress = func(pi simd.ProgressInfo) {
				if pi.Cycles-lastRunner >= runnerEvery {
					lastRunner = pi.Cycles
					runnerSink(pi)
				}
				if pi.Cycles-lastEnv >= envEvery {
					lastEnv = pi.Cycles
					envSink(pi)
				}
			}
		} else {
			opts.Progress = env.Progress
			opts.ProgressEvery = env.ProgressEvery
		}
	}
	m, err := simd.NewMachine[S](d, sch, opts)
	if err != nil {
		return metrics.Stats{}, err
	}
	if opts.MemBudget > 0 {
		dir := env.SpillDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "simdspill-*")
			if err != nil {
				return metrics.Stats{}, fmt.Errorf("spill dir: %w", err)
			}
		}
		// Segments are a residency cache, not state: the spool checkpoint
		// alone resumes the run, so the directory goes when the run does.
		defer os.RemoveAll(dir) //lint:allow errdrop leftover segments are wiped again at the next NewManager
		mgr, err := spill.NewManager[S](codec, spill.Config{
			Dir:       dir,
			MemBudget: opts.MemBudget,
			NodeBytes: wire.NodeSize(codec, d.Root()),
		})
		if err != nil {
			return metrics.Stats{}, err
		}
		m.SetSpiller(mgr)
		if env.SpillStats != nil {
			defer func() { env.SpillStats(mgr.Stats()) }()
		}
	}
	if env.Resume != nil {
		_, snap, err := checkpoint.Decode[S](codec, env.Resume)
		if err != nil {
			return metrics.Stats{}, fmt.Errorf("spooled checkpoint: %w", err)
		}
		if err := m.RestoreSnapshot(snap); err != nil {
			return metrics.Stats{}, fmt.Errorf("spooled checkpoint: %w", err)
		}
		if env.OnResume != nil {
			env.OnResume(snap.Cycle)
		}
	}
	meta := checkpoint.Meta{Domain: spec.Domain, Scheme: spec.Scheme, Topology: spec.Topology, Extra: env.SpecJSON}
	save := func(snap *simd.Snapshot[S]) error {
		b, err := checkpoint.Encode[S](codec, meta, snap)
		if err != nil {
			return err
		}
		if err := env.Write(b); err != nil {
			return err
		}
		if env.Checkpointed != nil {
			env.Checkpointed(snap.Cycle)
		}
		return nil
	}
	if checkpointing {
		m.OnCheckpoint(save)
	}
	stats, runErr := m.RunContext(ctx)
	if runErr != nil && stats.Cancelled && checkpointing {
		// The run stopped at a clean cycle boundary; spool that exact
		// prefix rather than the last cadence tick.  On failure the
		// periodic checkpoint already on disk stays valid for resume.
		if snap, err := m.Snapshot(); err == nil {
			_ = save(snap) //lint:allow errdrop the previous periodic checkpoint remains usable
		}
	}
	return stats, runErr
}

func runPuzzle(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
	p := spec.Puzzle
	var start puzzle.Node
	if len(p.Tiles) == 16 {
		var tiles [puzzle.Cells]uint8
		copy(tiles[:], p.Tiles)
		n, err := puzzle.FromTiles(tiles)
		if err != nil {
			return metrics.Stats{}, err
		}
		start = n
	} else {
		start = puzzle.Scramble(p.Seed, p.Steps)
	}
	var dom search.CostDomain[puzzle.Node] = puzzle.NewDomain(start)
	if p.LC {
		dom = puzzle.NewDomainLC(start)
	}
	bound := p.Bound
	if bound == 0 {
		// The paper's setup: run the final (first solving) IDA*
		// iteration exhaustively.  The bound search itself is serial and
		// not cancellable; explicit bounds sidestep it for huge
		// instances.
		bound, _ = search.FinalIterationBound(dom)
	}
	return runMachine[puzzle.Node](ctx, search.NewBounded(dom, bound), wire.PuzzleCodec{}, spec, opts, env)
}

func runSynthetic(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
	return runMachine[synthetic.Node](ctx, synthetic.New(spec.Synthetic.W, spec.Synthetic.Seed), wire.SyntheticCodec{}, spec, opts, env)
}

func runQueens(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
	return runMachine[queens.Node](ctx, queens.New(spec.Queens.N), wire.QueensCodec{}, spec, opts, env)
}

// buildOptions translates a canonical spec into engine options.  Workers
// and topology resolution are service-side concerns; by the determinism
// contract the Workers count never affects results.
func (s *Server) buildOptions(spec JobSpec) (simd.Options, error) {
	opts := simd.Options{
		P:               spec.P,
		Workers:         s.cfg.SimWorkers,
		MaxCycles:       spec.BudgetCycles,
		StopAtFirstGoal: spec.StopAtFirstGoal,
		MemBudget:       spec.MemBudget,
	}
	if opts.MemBudget == 0 {
		// The operator default is safe to apply below the cache key:
		// results are identical with any budget.
		opts.MemBudget = s.cfg.MemBudget
	}
	opts.Costs = simd.CM2Costs()
	net, err := topology.ByName(spec.Topology)
	if err != nil {
		return simd.Options{}, fmt.Errorf("job topology: %w", err)
	}
	opts.Topology = net
	return opts, nil
}

package server

import (
	"context"
	"fmt"

	"simdtree/internal/metrics"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
)

// Runner executes one canonical job spec on the simulated machine.  Extra
// runners can be registered through Config.Runners — the race smoke test
// injects a panicking domain that way to prove worker isolation.
type Runner func(ctx context.Context, spec JobSpec, opts simd.Options) (metrics.Stats, error)

// defaultRunners maps the built-in domains.
func defaultRunners() map[string]Runner {
	return map[string]Runner{
		"puzzle":    runPuzzle,
		"synthetic": runSynthetic,
		"queens":    runQueens,
	}
}

func runPuzzle(ctx context.Context, spec JobSpec, opts simd.Options) (metrics.Stats, error) {
	p := spec.Puzzle
	var start puzzle.Node
	if len(p.Tiles) == 16 {
		var tiles [puzzle.Cells]uint8
		copy(tiles[:], p.Tiles)
		n, err := puzzle.FromTiles(tiles)
		if err != nil {
			return metrics.Stats{}, err
		}
		start = n
	} else {
		start = puzzle.Scramble(p.Seed, p.Steps)
	}
	var dom search.CostDomain[puzzle.Node] = puzzle.NewDomain(start)
	if p.LC {
		dom = puzzle.NewDomainLC(start)
	}
	bound := p.Bound
	if bound == 0 {
		// The paper's setup: run the final (first solving) IDA*
		// iteration exhaustively.  The bound search itself is serial and
		// not cancellable; explicit bounds sidestep it for huge
		// instances.
		bound, _ = search.FinalIterationBound(dom)
	}
	sch, err := simd.ParseScheme[puzzle.Node](spec.Scheme)
	if err != nil {
		return metrics.Stats{}, err
	}
	return simd.RunContext[puzzle.Node](ctx, search.NewBounded(dom, bound), sch, opts)
}

func runSynthetic(ctx context.Context, spec JobSpec, opts simd.Options) (metrics.Stats, error) {
	sch, err := simd.ParseScheme[synthetic.Node](spec.Scheme)
	if err != nil {
		return metrics.Stats{}, err
	}
	return simd.RunContext[synthetic.Node](ctx, synthetic.New(spec.Synthetic.W, spec.Synthetic.Seed), sch, opts)
}

func runQueens(ctx context.Context, spec JobSpec, opts simd.Options) (metrics.Stats, error) {
	sch, err := simd.ParseScheme[queens.Node](spec.Scheme)
	if err != nil {
		return metrics.Stats{}, err
	}
	return simd.RunContext[queens.Node](ctx, queens.New(spec.Queens.N), sch, opts)
}

// buildOptions translates a canonical spec into engine options.  Workers
// and topology resolution are service-side concerns; by the determinism
// contract the Workers count never affects results.
func (s *Server) buildOptions(spec JobSpec) (simd.Options, error) {
	opts := simd.Options{
		P:               spec.P,
		Workers:         s.cfg.SimWorkers,
		MaxCycles:       spec.BudgetCycles,
		StopAtFirstGoal: spec.StopAtFirstGoal,
	}
	opts.Costs = simd.CM2Costs()
	net, err := topology.ByName(spec.Topology)
	if err != nil {
		return simd.Options{}, fmt.Errorf("job topology: %w", err)
	}
	opts.Topology = net
	return opts, nil
}

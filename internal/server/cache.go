package server

import (
	"container/list"
	"sync"

	"simdtree/internal/metrics"
	"simdtree/internal/trace"
)

// cachedResult is what a completed job leaves behind: the Section 3.1
// statistics and, for traced jobs, the per-cycle samples.  Values are
// stored and returned by value/shared-read only, so a cache hit serves
// byte-identical Stats to the cold run that populated it.
type cachedResult struct {
	Stats metrics.Stats
	Trace *trace.Trace // nil unless the spec requested tracing
}

// resultCache is a size-capped LRU keyed by the canonical spec hash.
// Only successfully completed runs are stored; cancelled, timed-out,
// exhausted and failed jobs never populate it.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res cachedResult
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, promoting it to most recently
// used.
func (c *resultCache) get(key string) (cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return cachedResult{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) put(key string, res cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"simdtree/internal/checkpoint"
)

// Checkpoint transfer endpoints.  A fleet coordinator (internal/cluster)
// keeps a warm copy of every running job's latest spooled checkpoint by
// polling the export endpoint, and on node death ships that copy to a
// survivor through the import endpoint.  Both speak the raw SCKP bytes
// the spool holds on disk (checkpoint.ContentType), so a transferred
// checkpoint is validated by exactly the rules a spool rescan applies:
// CRC-clean, spec embedded in Meta.Extra, cache key recomputed from the
// canonical spec — never trusted from the wire.

// handleExportCheckpoint implements GET /v1/jobs/{id}/checkpoint: the
// raw bytes of the job's latest spooled checkpoint.  404 while no
// checkpoint exists (not started, first cadence tick not reached, or
// already finished and cleaned); 409 when the server runs without a
// spool.
func (s *Server) handleExportCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	if s.spool == nil {
		writeError(w, http.StatusConflict, "server runs without a checkpoint spool")
		return
	}
	b, err := os.ReadFile(s.spool.path(j.key))
	if err != nil {
		writeError(w, http.StatusNotFound, "no checkpoint spooled for this job")
		return
	}
	if _, err := checkpoint.Peek(b); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("spooled checkpoint invalid: %v", err))
		return
	}
	s.ctr.checkpointsExported.Add(1)
	w.Header().Set("Content-Type", checkpoint.ContentType)
	w.Header().Set("X-Simdtree-Cache-Key", j.key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) //lint:allow errdrop response writer errors are unreportable
}

// handleImport implements POST /v1/jobs/import: body is one SCKP frame.
// The job spec is recovered from the checkpoint's Meta.Extra and
// canonicalized exactly like a fresh submission, so the job resumes
// under the same cache key it carried on the dead node and — by the
// determinism contract — completes to the byte-identical result.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	body, meta, err := checkpoint.ReadFrame(http.MaxBytesReader(w, r.Body, checkpoint.MaxFrameSize))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad checkpoint frame: %v", err))
		return
	}
	var spec JobSpec
	if len(meta.Extra) == 0 || json.Unmarshal(meta.Extra, &spec) != nil {
		writeError(w, http.StatusBadRequest, "checkpoint carries no job spec in its meta block")
		return
	}
	canonical, err := Canonicalize(spec, s.domains)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("embedded job spec: %v", err))
		return
	}
	key := CacheKey(canonical)

	id := "j" + strconv.FormatInt(s.nextID.Add(1), 10)
	now := time.Now()
	j := newJob(s, id, canonical, key, now)
	j.resume = body

	// The completed result may already be cached here (the job finished
	// elsewhere, or an identical spec ran locally); serve it instead of
	// re-simulating the tail.
	if s.finishFromCache(j, now) {
		writeJSON(w, http.StatusOK, renderJob(j.view()))
		return
	}

	// Persist the imported checkpoint before accepting the job, so a
	// crash of *this* node between import and the first periodic
	// checkpoint still leaves the work recoverable.
	if s.spool != nil {
		if err := s.spool.write(key, body); err != nil {
			j.cancel(errCancelRequested)
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("spool imported checkpoint: %v", err))
			return
		}
	}
	if code, msg := s.enqueue(j); code != 0 {
		writeError(w, code, msg)
		return
	}
	s.ctr.jobsImported.Add(1)
	writeJSON(w, http.StatusAccepted, renderJob(j.view()))
}

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"simdtree/internal/checkpoint"
)

// TestCheckpointExportImport is the node side of a fleet failover: a
// running job's spooled checkpoint is exported over HTTP while the job
// is held mid-flight, imported into a second node, and the second node
// completes it to bytes identical to an uninterrupted run — the exact
// handoff internal/cluster performs when a node dies.
func TestCheckpointExportImport(t *testing.T) {
	// Reference: the same job on a spool-less server, uninterrupted.
	_, tsRef := testServer(t, Config{Workers: 1, Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	refJob, _ := postJob(t, tsRef, spoolSpec)
	refFin := waitTerminal(t, tsRef, refJob.ID)
	if refFin.Status != StatusDone {
		t.Fatalf("reference job finished %q: %s", refFin.Status, refFin.Error)
	}

	// Node A: hold the job at cycle 3, three checkpoints in the spool.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	releaseGate := func() { once.Do(func() { close(release) }) }
	gate := func(cycle int) {
		if cycle == 3 {
			close(started)
			<-release
		}
	}
	_, tsA := testServer(t, Config{Workers: 1, Spool: t.TempDir(), CheckpointEvery: 1,
		Runners: map[string]Runner{"spoolsim": spoolRunner(gate)}})
	// Registered after testServer so it runs before the server's
	// graceful shutdown — a gate still closed there would deadlock it.
	t.Cleanup(releaseGate)
	sub, code := postJob(t, tsA, spoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-started

	// Export while running: raw SCKP bytes under the checkpoint media
	// type, cache key echoed in the header, frame valid end to end.
	resp, err := http.Get(tsA.URL + "/v1/jobs/" + sub.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != checkpoint.ContentType {
		t.Errorf("export content type %q, want %q", got, checkpoint.ContentType)
	}
	if got := resp.Header.Get("X-Simdtree-Cache-Key"); got != sub.CacheKey {
		t.Errorf("export cache key header %q, want %q", got, sub.CacheKey)
	}
	frame, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, meta, err := checkpoint.ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("exported frame invalid: %v", err)
	}
	var embedded JobSpec
	if err := json.Unmarshal(meta.Extra, &embedded); err != nil || embedded.Domain != "spoolsim" {
		t.Fatalf("embedded spec %q (err %v), want the canonical job spec", meta.Extra, err)
	}
	var m map[string]any
	getJSON(t, tsA, "/metrics", &m)
	if got := m["checkpoints_exported_total"].(float64); got != 1 {
		t.Errorf("checkpoints_exported_total = %v, want 1", got)
	}
	// The frame is in hand; node A's job may finish normally.
	releaseGate()

	// Node B: import the frame; the job resumes from the shipped cycle
	// and completes with the reference bytes, feeding B's cache.
	_, tsB := testServer(t, Config{Workers: 1, Spool: t.TempDir(), CheckpointEvery: 500,
		Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	impResp, err := http.Post(tsB.URL+"/v1/jobs/import", checkpoint.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer impResp.Body.Close()
	if impResp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(impResp.Body)
		t.Fatalf("import: status %d: %s", impResp.StatusCode, body)
	}
	var imp wireJob
	if err := json.NewDecoder(impResp.Body).Decode(&imp); err != nil {
		t.Fatal(err)
	}
	if imp.CacheKey != sub.CacheKey {
		t.Errorf("imported job key %s, want %s (recomputed from the embedded spec)", imp.CacheKey, sub.CacheKey)
	}
	fin := waitTerminal(t, tsB, imp.ID)
	if fin.Status != StatusDone {
		t.Fatalf("imported job finished %q: %s", fin.Status, fin.Error)
	}
	// The gate blocks inside cycle 3's progress callback, before that
	// cycle's checkpoint lands, so the latest exported frame is cycle 2.
	if !fin.Resumed || fin.ResumedFromCycle != 2 {
		t.Errorf("resumed=%t from cycle %d, want resumption from cycle 2", fin.Resumed, fin.ResumedFromCycle)
	}
	if !bytes.Equal(fin.Stats, refFin.Stats) {
		t.Errorf("imported result differs from uninterrupted run:\n got %s\nwant %s", fin.Stats, refFin.Stats)
	}
	hit, code := postJob(t, tsB, spoolSpec)
	if code != http.StatusOK || !hit.CacheHit {
		t.Fatalf("resubmit after import: status %d, cache_hit %t", code, hit.CacheHit)
	}
	getJSON(t, tsB, "/metrics", &m)
	if got := m["jobs_imported_total"].(float64); got != 1 {
		t.Errorf("jobs_imported_total = %v, want 1", got)
	}

	// Re-importing after completion answers from the cache instead of
	// re-simulating.
	again, err := http.Post(tsB.URL+"/v1/jobs/import", checkpoint.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer again.Body.Close()
	var cached wireJob
	if err := json.NewDecoder(again.Body).Decode(&cached); err != nil {
		t.Fatal(err)
	}
	if again.StatusCode != http.StatusOK || !cached.CacheHit {
		t.Errorf("re-import: status %d cache_hit %t, want 200/true", again.StatusCode, cached.CacheHit)
	}
}

// TestCheckpointExportErrors pins the export endpoint's refusals.
func TestCheckpointExportErrors(t *testing.T) {
	// Spool-less server: a job exists but there is nothing to export.
	_, ts := testServer(t, Config{Workers: 1})
	j, _ := postJob(t, ts, queensSpec)
	waitTerminal(t, ts, j.ID)
	for path, want := range map[string]int{
		"/v1/jobs/zzz/checkpoint":          http.StatusNotFound,
		"/v1/jobs/" + j.ID + "/checkpoint": http.StatusConflict,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Spooled server, finished job: the spool file is gone, 404.
	_, tsSp := testServer(t, Config{Workers: 1, Spool: t.TempDir(), CheckpointEvery: 1,
		Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	done, _ := postJob(t, tsSp, spoolSpec)
	waitTerminal(t, tsSp, done.ID)
	resp, err := http.Get(tsSp.URL + "/v1/jobs/" + done.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("export of a finished job: status %d, want 404", resp.StatusCode)
	}
}

// TestImportRejectsBadFrames pins the import endpoint's validation: junk
// bytes and a frame whose embedded domain the node does not serve are
// both refused before anything is enqueued.
func TestImportRejectsBadFrames(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1}) // no spoolsim runner here
	for name, body := range map[string][]byte{
		"junk":  []byte("not a checkpoint"),
		"empty": nil,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs/import", checkpoint.ContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("import %s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// A valid frame for a domain this node cannot run: caught at
	// canonicalization, not at enqueue.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	releaseGate := func() { once.Do(func() { close(release) }) }
	gate := func(cycle int) {
		if cycle == 2 {
			close(started)
			<-release
		}
	}
	_, tsA := testServer(t, Config{Workers: 1, Spool: t.TempDir(), CheckpointEvery: 1,
		Runners: map[string]Runner{"spoolsim": spoolRunner(gate)}})
	// After the server's cleanup registration, so the gate opens before
	// its graceful shutdown waits on the worker.
	t.Cleanup(releaseGate)
	sub, _ := postJob(t, tsA, spoolSpec)
	<-started
	resp, err := http.Get(tsA.URL + "/v1/jobs/" + sub.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	releaseGate()
	foreign, err := http.Post(ts.URL+"/v1/jobs/import", checkpoint.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	foreign.Body.Close()
	if foreign.StatusCode != http.StatusBadRequest {
		t.Errorf("import of an unservable domain: status %d, want 400", foreign.StatusCode)
	}
}

// TestTraceLimit pins the ?trace_limit= contract: the payload is bounded
// to the first N samples and phases, the totals still report the full
// lengths, and malformed limits are rejected.
func TestTraceLimit(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	traced, _ := postJob(t, ts, `{"domain":"queens","scheme":"GP-DK","p":32,"trace":true,"queens":{"n":7}}`)
	fin := waitTerminal(t, ts, traced.ID)
	if fin.Status != StatusDone {
		t.Fatalf("traced job %q: %s", fin.Status, fin.Error)
	}

	fetch := func(query string) (traceResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + traced.ID + "/trace" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr traceResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				t.Fatal(err)
			}
		}
		return tr, resp.StatusCode
	}

	full, code := fetch("")
	if code != http.StatusOK || full.Truncated {
		t.Fatalf("unbounded fetch: status %d truncated %t", code, full.Truncated)
	}
	if full.SamplesTotal != len(full.Samples) || full.PhasesTotal != len(full.Phases) {
		t.Fatalf("unbounded totals %d/%d for %d samples, %d phases",
			full.SamplesTotal, full.PhasesTotal, len(full.Samples), len(full.Phases))
	}
	if full.SamplesTotal < 3 {
		t.Fatalf("trace too short to exercise limits: %d samples", full.SamplesTotal)
	}

	cut, code := fetch("?trace_limit=2")
	if code != http.StatusOK {
		t.Fatalf("limited fetch: status %d", code)
	}
	if len(cut.Samples) != 2 || !cut.Truncated {
		t.Errorf("trace_limit=2 kept %d samples, truncated %t", len(cut.Samples), cut.Truncated)
	}
	if cut.SamplesTotal != full.SamplesTotal || cut.PhasesTotal != full.PhasesTotal {
		t.Errorf("limited totals %d/%d, want the full %d/%d",
			cut.SamplesTotal, cut.PhasesTotal, full.SamplesTotal, full.PhasesTotal)
	}
	if len(cut.Samples) > 0 && cut.Samples[0] != full.Samples[0] {
		t.Error("trace_limit did not keep the first samples")
	}

	zero, code := fetch("?trace_limit=0")
	if code != http.StatusOK || len(zero.Samples) != 0 || len(zero.Phases) != 0 || !zero.Truncated {
		t.Errorf("trace_limit=0: status %d, %d samples, %d phases, truncated %t",
			code, len(zero.Samples), len(zero.Phases), zero.Truncated)
	}

	huge, code := fetch("?trace_limit=1000000")
	if code != http.StatusOK || huge.Truncated || len(huge.Samples) != full.SamplesTotal {
		t.Errorf("oversized limit: status %d truncated %t samples %d", code, huge.Truncated, len(huge.Samples))
	}

	for _, bad := range []string{"?trace_limit=abc", "?trace_limit=-1", "?trace_limit=1.5"} {
		if _, code := fetch(bad); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, code)
		}
	}
}

// TestVersionAdvertisesDrainTimeout pins the /version field a fleet
// coordinator reads to know how long a draining node's jobs may keep
// running.
func TestVersionAdvertisesDrainTimeout(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, DrainTimeout: 7 * time.Second})
	var v map[string]string
	getJSON(t, ts, "/version", &v)
	if v["drain_timeout_ms"] != "7000" {
		t.Errorf("drain_timeout_ms = %q, want \"7000\"", v["drain_timeout_ms"])
	}

	_, tsDef := testServer(t, Config{Workers: 1})
	getJSON(t, tsDef, "/version", &v)
	if v["drain_timeout_ms"] != "30000" {
		t.Errorf("default drain_timeout_ms = %q, want \"30000\"", v["drain_timeout_ms"])
	}
}

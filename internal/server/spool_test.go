package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// spoolRunner executes a fixed synthetic instance through the real
// checkpointable path, so the spool tests exercise exactly the plumbing
// the built-in domains use.  gate, when non-nil, is called at every
// cycle boundary and may block — that is how the kill test holds a job
// mid-flight deterministically.
func spoolRunner(gate func(cycle int)) Runner {
	return func(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
		if gate != nil {
			opts.ProgressEvery = 1
			opts.Progress = func(pi simd.ProgressInfo) { gate(pi.Cycles) }
		}
		return runMachine[synthetic.Node](ctx, synthetic.New(20000, 7), wire.SyntheticCodec{}, spec, opts, env)
	}
}

const spoolSpec = `{"domain":"spoolsim","scheme":"GP-DK","p":8}`

// TestSpoolKillAndRestart is the crash-recovery acceptance path: a
// server with a spool is killed (shutdown with an expired grace period,
// the in-process equivalent of SIGKILL after SIGTERM) while a job is
// mid-run; a second server on the same spool directory finds the
// checkpoint at startup, resumes the job, and completes it with result
// bytes identical to an uninterrupted run — feeding the cache as if the
// first process had never died.
func TestSpoolKillAndRestart(t *testing.T) {
	dir := t.TempDir()

	// Reference: the same job on a spool-less server, uninterrupted.
	_, tsRef := testServer(t, Config{Workers: 1, Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	refJob, code := postJob(t, tsRef, spoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: %d", code)
	}
	refFin := waitTerminal(t, tsRef, refJob.ID)
	if refFin.Status != StatusDone {
		t.Fatalf("reference job finished %q: %s", refFin.Status, refFin.Error)
	}

	// Process one: block the run at cycle 3, after three checkpoints hit
	// the spool, then shut down with the grace period already expired.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	gate := func(cycle int) {
		if cycle == 3 {
			once.Do(func() { close(started) })
			<-release
		}
	}
	a, err := New(Config{Workers: 1, Spool: dir, CheckpointEvery: 1,
		Runners: map[string]Runner{"spoolsim": spoolRunner(gate)}})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	sub, code := postJob(t, tsA, spoolSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-started
	ckptPath := filepath.Join(dir, sub.CacheKey+spoolExt)
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("no spooled checkpoint while running: %v", err)
	}

	jA, ok := a.store.get(sub.ID)
	if !ok {
		t.Fatal("submitted job not in store")
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- a.Shutdown(expired) }()
	// Release the gate only after the kill signal reached the job, so
	// the machine observes the cancellation at the very next boundary.
	<-jA.runCtx.Done()
	close(release)
	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: %v", err)
	}
	if fin := getJob(t, tsA, sub.ID); fin.Status != StatusCancelled {
		t.Fatalf("killed job status %q, want cancelled", fin.Status)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("shutdown removed the spooled checkpoint: %v", err)
	}

	// Process two: same spool, fresh server.  New must rescan the
	// directory and re-queue the interrupted job without any client
	// involvement.
	b, err := New(Config{Workers: 1, Spool: dir, CheckpointEvery: 500,
		Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := b.Shutdown(ctx); err != nil {
			t.Errorf("restart shutdown: %v", err)
		}
	})
	resumedID := ""
	for _, j := range b.store.all() {
		resumedID = j.id
	}
	if resumedID == "" {
		t.Fatal("restarted server found no spooled job")
	}
	fin := waitTerminal(t, tsB, resumedID)
	if fin.Status != StatusDone {
		t.Fatalf("resumed job finished %q: %s", fin.Status, fin.Error)
	}
	if !fin.Resumed || fin.ResumedFromCycle != 3 {
		t.Errorf("resumed=%t from cycle %d, want resumption from cycle 3", fin.Resumed, fin.ResumedFromCycle)
	}
	if fin.CacheKey != sub.CacheKey {
		t.Errorf("resumed job key %s, want %s", fin.CacheKey, sub.CacheKey)
	}
	if !bytes.Equal(fin.Stats, refFin.Stats) {
		t.Errorf("resumed result differs from uninterrupted run:\n got %s\nwant %s", fin.Stats, refFin.Stats)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Errorf("completed job left its spool file behind (stat err %v)", err)
	}

	// The resumed completion fed the cache: resubmitting the spec must
	// hit, with the same bytes again.
	hit, code := postJob(t, tsB, spoolSpec)
	if code != http.StatusOK || !hit.CacheHit {
		t.Fatalf("resubmit after resume: status %d, cache_hit %t", code, hit.CacheHit)
	}
	if !bytes.Equal(hit.Stats, refFin.Stats) {
		t.Errorf("cached result differs from uninterrupted run:\n got %s\nwant %s", hit.Stats, refFin.Stats)
	}

	// S2 observability: the restarted server accounts for the resumption
	// and advertises the checkpoint format version it speaks.
	var m map[string]any
	getJSON(t, tsB, "/metrics", &m)
	if got := m["jobs_resumed_total"].(float64); got != 1 {
		t.Errorf("jobs_resumed_total = %v, want 1", got)
	}
	if got := m["checkpoints_written_total"].(float64); got < 1 {
		t.Errorf("checkpoints_written_total = %v, want >= 1", got)
	}
	var v map[string]string
	getJSON(t, tsB, "/version", &v)
	if v["checkpoint_format"] != strconv.Itoa(checkpoint.Version) {
		t.Errorf("checkpoint_format = %q, want %q", v["checkpoint_format"], strconv.Itoa(checkpoint.Version))
	}
}

// TestSpoolRescanRejectsForeignFiles pins the rescan's integrity rules: a
// renamed checkpoint (filename no longer the spec's cache key) and plain
// junk are both skipped, not resurrected and not deleted.
func TestSpoolRescanRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk"+spoolExt), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Build a real checkpoint under the wrong name by running a job to a
	// shutdown kill, then renaming its spool file.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	gate := func(cycle int) {
		if cycle == 2 {
			once.Do(func() { close(started) })
			<-release
		}
	}
	a, err := New(Config{Workers: 1, Spool: dir, CheckpointEvery: 1,
		Runners: map[string]Runner{"spoolsim": spoolRunner(gate)}})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	sub, _ := postJob(t, tsA, spoolSpec)
	<-started
	jA, _ := a.store.get(sub.ID)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.Shutdown(expired) }()
	<-jA.runCtx.Done()
	close(release)
	<-done
	if err := os.Rename(filepath.Join(dir, sub.CacheKey+spoolExt), filepath.Join(dir, "renamed"+spoolExt)); err != nil {
		t.Fatal(err)
	}

	b, err := New(Config{Workers: 1, Spool: dir,
		Runners: map[string]Runner{"spoolsim": spoolRunner(nil)}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := b.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if jobs := b.store.all(); len(jobs) != 0 {
		t.Fatalf("rescan resurrected %d job(s) from invalid files", len(jobs))
	}
	for _, name := range []string{"junk" + spoolExt, "renamed" + spoolExt} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("rescan deleted %s: %v", name, err)
		}
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

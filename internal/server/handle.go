package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// JobHandle is the programmatic counterpart of the HTTP job API.  The
// traffic layer (internal/traffic) submits and observes jobs through it
// without a network hop, which is what makes single-flight collapsing
// byte-exact: every collapsed subscriber fans out the one rendered
// response of the one real run.
type JobHandle struct {
	s *Server
	j *job
}

// ID returns the job id ("j1", ...).
func (h *JobHandle) ID() string { return h.j.id }

// Key returns the canonical spec cache key, the single-flight collapse
// key.
func (h *JobHandle) Key() string { return h.j.key }

// Tenant returns the tenant the job was admitted under.
func (h *JobHandle) Tenant() string { return h.j.tenant }

// Spec returns the canonical job spec.
func (h *JobHandle) Spec() JobSpec { return h.j.spec }

// CacheHit reports whether the job was answered from the result cache.
func (h *JobHandle) CacheHit() bool {
	h.j.mu.Lock()
	defer h.j.mu.Unlock()
	return h.j.cacheHit
}

// Done returns a channel closed when the job reaches a terminal status.
func (h *JobHandle) Done() <-chan struct{} { return h.j.done }

// Status returns the job's current lifecycle state.
func (h *JobHandle) Status() Status {
	h.j.mu.Lock()
	defer h.j.mu.Unlock()
	return h.j.status
}

// Terminal reports whether the job is finished.
func (h *JobHandle) Terminal() bool { return h.j.isTerminal() }

// Cancel requests cancellation (the DELETE /v1/jobs/{id} action).
func (h *JobHandle) Cancel() { h.j.requestCancel(errCancelRequested) }

// ResponseBytes renders the job document exactly as the HTTP layer
// writes it (indented JSON plus trailing newline), so callers can fan the
// same bytes out to any number of subscribers.
func (h *JobHandle) ResponseBytes() ([]byte, error) {
	b, err := json.MarshalIndent(renderJob(h.j.view()), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// EventsSince returns the buffered job events with Seq > after, plus a
// channel closed when the next event is appended.  See eventLog.since.
func (h *JobHandle) EventsSince(after int64) ([]JobEvent, <-chan struct{}) {
	return h.j.events.since(after)
}

// JobByID looks up an addressable job.
func (s *Server) JobByID(id string) (*JobHandle, bool) {
	j, ok := s.store.get(id)
	if !ok {
		return nil, false
	}
	return &JobHandle{s: s, j: j}, true
}

// CanonicalizeSpec validates and canonicalizes spec against this server's
// domain set (built-ins plus injected runners).
func (s *Server) CanonicalizeSpec(spec JobSpec) (JobSpec, error) {
	return Canonicalize(spec, s.domains)
}

// Refusal describes a rejected submission: the HTTP status to answer
// with, the message, and the Retry-After hint in seconds (429 only).
type Refusal struct {
	Code       int
	Message    string
	RetryAfter int
}

// apply writes the refusal to w.
func (rf *Refusal) apply(w http.ResponseWriter) {
	if rf.Code == http.StatusTooManyRequests && rf.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(rf.RetryAfter))
	}
	writeError(w, rf.Code, rf.Message)
}

// SubmitCanonical is the programmatic submission path shared by the HTTP
// handler and the traffic layer: consult the result cache, otherwise
// admit to the scheduler under the given tenant and predicted cost.  The
// spec must already be canonical and key its cache key.  A nil Refusal
// means the job was accepted (possibly finished instantly from cache).
func (s *Server) SubmitCanonical(canonical JobSpec, key, tenant string, cost float64) (*JobHandle, *Refusal) {
	if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		cost = 1
	}
	id := "j" + strconv.FormatInt(s.nextID.Add(1), 10)
	now := time.Now()
	j := newJob(s, id, canonical, key, now)
	j.tenant = tenant
	j.cost = cost

	if s.finishFromCache(j, now) {
		return &JobHandle{s: s, j: j}, nil
	}
	if code, msg := s.enqueue(j); code != 0 {
		rf := &Refusal{Code: code, Message: msg}
		if code == http.StatusTooManyRequests {
			rf.RetryAfter = s.retryAfterSeconds()
		}
		return nil, rf
	}
	return &JobHandle{s: s, j: j}, nil
}

// retryAfterSeconds derives the 429 Retry-After hint from the current
// backlog and the recent mean job duration: the time the backlog needs to
// drain through the pool, clamped to [1s, 10min].  Before any job has
// completed the mean defaults to one second.
func (s *Server) retryAfterSeconds() int {
	mean := time.Second
	if n := s.ctr.runDurCount.Load(); n > 0 {
		mean = time.Duration(s.ctr.runDurSumNS.Load() / n)
	}
	depth := s.sched.Depth()
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	est := time.Duration(depth/workers+1) * mean
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// TenantHeader is the HTTP header naming the submitting tenant; absent or
// empty means DefaultTenant.
const TenantHeader = "X-Tenant"

// DefaultTenant is the tenant unlabelled traffic is accounted under.
const DefaultTenant = "default"

// maxTenantLen bounds the accepted tenant label.
const maxTenantLen = 64

// TenantFrom extracts and validates the tenant label of a request.
func TenantFrom(r *http.Request) (string, error) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return DefaultTenant, nil
	}
	if len(t) > maxTenantLen {
		return "", fmt.Errorf("%s exceeds %d bytes", TenantHeader, maxTenantLen)
	}
	for _, c := range t {
		if c < 0x21 || c > 0x7e {
			return "", fmt.Errorf("%s carries a non-printable or space character", TenantHeader)
		}
	}
	return t, nil
}

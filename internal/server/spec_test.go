package server

import (
	"strings"
	"testing"
)

func testDomains() map[string]bool {
	return map[string]bool{"puzzle": true, "synthetic": true, "queens": true}
}

// TestCanonicalizeDefaults: specs that spell the defaults explicitly and
// specs that omit them must canonicalize identically — and therefore
// share a cache key.  This is the invariance the golden test below pins
// against accidental drift.
func TestCanonicalizeDefaults(t *testing.T) {
	implicit := JobSpec{Domain: "Puzzle", Scheme: "GP-DK", P: 64, Puzzle: &PuzzleSpec{Seed: 5}}
	explicit := JobSpec{
		Domain:   "puzzle",
		Scheme:   "GP-DK",
		P:        64,
		Topology: "cm2",
		Puzzle:   &PuzzleSpec{Seed: 5, Steps: 40},
	}
	a, err := Canonicalize(implicit, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(explicit, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(a) != CacheKey(b) {
		t.Errorf("default-filled and explicit specs disagree:\n a=%+v key %s\n b=%+v key %s",
			a, CacheKey(a), b, CacheKey(b))
	}
	if a.Topology != "cm2" || a.Puzzle.Steps != 40 {
		t.Errorf("defaults not filled: %+v", a)
	}
	// Canonicalization is idempotent.
	again, err := Canonicalize(a, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(again) != CacheKey(a) {
		t.Error("canonicalization is not idempotent")
	}
}

// TestCacheKeyGolden pins the exact key of one fixed spec.  The key is
// the service's compatibility contract: renaming a JSON field, reordering
// the struct, or changing a default silently invalidates every cached
// result, and this test makes such a change visible in review.
func TestCacheKeyGolden(t *testing.T) {
	spec := JobSpec{
		Domain: "synthetic",
		Scheme: "GP-S0.85",
		P:      128,
		Synthetic: &SyntheticSpec{
			W:    50000,
			Seed: 7,
		},
	}
	c, err := Canonicalize(spec, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	const want = "4d75b31fac9670cb2b90bc05501cecbee5d75c4512ce26cd9829c5014e40baf5"
	if got := CacheKey(c); got != want {
		t.Errorf("cache key drifted:\n got  %s\n want %s", got, want)
	}
}

// TestCacheKeyTimeoutExcluded: the deadline must not fragment the cache —
// a completed result is independent of how long it was allowed to take.
func TestCacheKeyTimeoutExcluded(t *testing.T) {
	base := JobSpec{Domain: "queens", Scheme: "nGP-DP", P: 32, Queens: &QueensSpec{N: 8}}
	timed := base
	timed.TimeoutMS = 12345
	a, err := Canonicalize(base, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(timed, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(a) != CacheKey(b) {
		t.Error("timeout_ms leaked into the cache key")
	}
}

// TestCacheKeyTraceIncluded: traced and untraced runs cache separately.
func TestCacheKeyTraceIncluded(t *testing.T) {
	base := JobSpec{Domain: "queens", Scheme: "nGP-DP", P: 32, Queens: &QueensSpec{N: 8}}
	traced := base
	traced.Trace = true
	a, err := Canonicalize(base, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(traced, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(a) == CacheKey(b) {
		t.Error("trace flag does not participate in the cache key")
	}
}

// TestCanonicalizeRejects exercises the validation table.
func TestCanonicalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string // substring of the error
	}{
		{"unknown domain", JobSpec{Domain: "chess", Scheme: "GP-DK", P: 4}, "unknown domain"},
		{"bad scheme", JobSpec{Domain: "queens", Scheme: "??", P: 4, Queens: &QueensSpec{N: 6}}, "invalid scheme"},
		{"zero p", JobSpec{Domain: "queens", Scheme: "GP-DK", P: 0, Queens: &QueensSpec{N: 6}}, "p must be positive"},
		{"huge p", JobSpec{Domain: "queens", Scheme: "GP-DK", P: MaxP + 1, Queens: &QueensSpec{N: 6}}, "exceeds"},
		{"bad topology", JobSpec{Domain: "queens", Scheme: "GP-DK", P: 4, Topology: "torus", Queens: &QueensSpec{N: 6}}, "unknown network"},
		{"missing sub-spec", JobSpec{Domain: "synthetic", Scheme: "GP-DK", P: 4}, "needs a synthetic sub-spec"},
		{"two sub-specs", JobSpec{Domain: "queens", Scheme: "GP-DK", P: 4, Queens: &QueensSpec{N: 6}, Synthetic: &SyntheticSpec{W: 10}}, "sub-specs"},
		{"bad tiles", JobSpec{Domain: "puzzle", Scheme: "GP-DK", P: 4, Puzzle: &PuzzleSpec{Tiles: []uint8{1, 2, 3}}}, "16"},
		{"negative budget", JobSpec{Domain: "queens", Scheme: "GP-DK", P: 4, BudgetCycles: -1, Queens: &QueensSpec{N: 6}}, "budget_cycles"},
		{"queens n", JobSpec{Domain: "queens", Scheme: "GP-DK", P: 4, Queens: &QueensSpec{N: 99}}, "out of range"},
		{"synthetic w", JobSpec{Domain: "synthetic", Scheme: "GP-DK", P: 4, Synthetic: &SyntheticSpec{W: 0}}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Canonicalize(tc.spec, testDomains())
			if err == nil {
				t.Fatalf("spec %+v accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCanonicalizeTilesNormalizeScramble: an explicit position zeroes the
// scramble parameters so both spellings of the same instance share a key.
func TestCanonicalizeTilesNormalizeScramble(t *testing.T) {
	tiles := []uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0, 15}
	a, err := Canonicalize(JobSpec{Domain: "puzzle", Scheme: "GP-DK", P: 16,
		Puzzle: &PuzzleSpec{Tiles: tiles, Seed: 99, Steps: 7}}, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(JobSpec{Domain: "puzzle", Scheme: "GP-DK", P: 16,
		Puzzle: &PuzzleSpec{Tiles: tiles}}, testDomains())
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(a) != CacheKey(b) {
		t.Error("scramble parameters leaked into the key of an explicit-tiles spec")
	}
}

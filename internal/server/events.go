package server

import "sync"

// Per-job progress events feed the traffic layer's SSE endpoint
// (GET /v1/jobs/{id}/events).  Three sources produce them, all already
// present in the job lifecycle: status transitions (queued → running →
// terminal), the engine's periodic Progress snapshots, and the spool's
// checkpoint writes.  Events are held in a bounded per-job log with
// monotonically increasing sequence numbers, so a client that reconnects
// with Last-Event-ID resumes exactly where its stream broke (best-effort
// once the log has trimmed past that point; the terminal event is always
// retained implicitly because a terminal job stops appending).

// Event types.
const (
	EventStatus     = "status"     // lifecycle transition; Status is set
	EventProgress   = "progress"   // periodic engine liveness snapshot
	EventCheckpoint = "checkpoint" // a spooled checkpoint was persisted
)

// JobEvent is one entry of a job's progress stream.  The JSON encoding is
// the SSE data payload.
type JobEvent struct {
	Seq      int64  `json:"seq"`
	Type     string `json:"type"`
	Status   Status `json:"status,omitempty"`
	Error    string `json:"error,omitempty"`
	Cycle    int    `json:"cycle,omitempty"`
	Active   int    `json:"active,omitempty"`
	W        int64  `json:"w,omitempty"`
	LBPhases int    `json:"lb_phases,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Shard and Shards tag events of a distributed (stolen) run: Shard is
	// the 1-based index of the shard the event describes (so omitempty
	// never drops shard one), Shards the total count.  Single-node runs
	// leave both zero.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
	// Terminal marks the final event of the stream; subscribers close
	// after delivering it.
	Terminal bool `json:"terminal,omitempty"`
}

// eventLogCap bounds the per-job event buffer.  Status and checkpoint
// events are sparse; progress events arrive every Config.ProgressEvery
// cycles, so the buffer covers the most recent ~eventLogCap ticks — a
// reconnecting client older than that restarts from the oldest retained
// event.
const eventLogCap = 1024

// eventLog is a bounded append-only event buffer with sequence numbers
// and edge-triggered wakeups for streaming readers.
type eventLog struct {
	mu     sync.Mutex
	next   int64 // seq the next append will get (first event: 1)
	base   int64 // seq of events[0]
	events []JobEvent
	wake   chan struct{} // closed and replaced on every append
}

func newEventLog() *eventLog {
	return &eventLog{next: 1, base: 1, wake: make(chan struct{})}
}

// append assigns the next sequence number to ev, stores it, and wakes
// every blocked reader.  It is cheap enough to run on the simulation
// goroutine (the engine's Progress contract).
func (l *eventLog) append(ev JobEvent) {
	l.mu.Lock()
	ev.Seq = l.next
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > eventLogCap {
		drop := len(l.events) - eventLogCap
		l.base += int64(drop)
		l.events = append(l.events[:0], l.events[drop:]...)
	}
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

// since returns a copy of the buffered events with Seq > after, plus a
// channel that is closed on the next append — the reader's blocking edge.
func (l *eventLog) since(after int64) ([]JobEvent, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := after + 1 - l.base
	if start < 0 {
		start = 0
	}
	var out []JobEvent
	if int(start) < len(l.events) {
		out = append(out, l.events[start:]...)
	}
	return out, l.wake
}

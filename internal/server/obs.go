package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counters are the expvar-style monotonic counters served at /metrics.
// All fields are atomics; the struct is embedded in Server and never
// copied.
type counters struct {
	jobsQueued    atomic.Int64 // accepted into the queue
	jobsRunning   atomic.Int64 // currently executing (gauge)
	jobsDone      atomic.Int64 // completed successfully
	jobsCancelled atomic.Int64 // cancelled via DELETE or shutdown
	jobsTimeout   atomic.Int64 // hit their deadline
	jobsExhausted atomic.Int64 // hit their cycle budget
	jobsFailed    atomic.Int64 // failed (bad run or panic)
	jobsRejected  atomic.Int64 // refused with 429 (queue full)
	panics        atomic.Int64 // domain panics isolated by a worker
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	busyWorkers   atomic.Int64 // workers executing a job (gauge)

	checkpointsWritten atomic.Int64 // spool files persisted (periodic + final)
	jobsResumed        atomic.Int64 // runs restored from a spooled checkpoint

	spillEvictions    atomic.Int64 // cold level windows evicted to segment files
	spillFaults       atomic.Int64 // segments restored on demand
	spillBytesWritten atomic.Int64 // segment bytes written
	spillBytesRead    atomic.Int64 // segment bytes read back

	checkpointsExported atomic.Int64 // checkpoints served to a fleet coordinator
	jobsImported        atomic.Int64 // jobs accepted with a shipped checkpoint

	jobsDonated         atomic.Int64 // jobs handed off for distributed execution
	stealSessionsOpened atomic.Int64 // shard sessions accepted
	stealFramesAbsorbed atomic.Int64 // donation frames installed into local shards
	stealFramesSplit    atomic.Int64 // donation frames split off local shards

	runDurSumNS atomic.Int64 // total wall-clock of completed runs, feeds Retry-After
	runDurCount atomic.Int64 // number of completed runs
}

// latencyBuckets are the upper bounds of the wall-clock job-latency
// histogram, chosen to straddle both cache-adjacent small jobs and
// multi-minute full-scale simulations.
var latencyBuckets = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
	time.Minute,
	10 * time.Minute,
}

// histogram is a fixed-bucket latency histogram; counts[i] covers
// latencies <= latencyBuckets[i], the final slot is the overflow bucket.
type histogram struct {
	counts []atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	i := sort.Search(len(latencyBuckets), func(i int) bool { return d <= latencyBuckets[i] })
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// histogramJSON is the wire form of one histogram.
type histogramJSON struct {
	Count   int64            `json:"count"`
	MeanMS  float64          `json:"mean_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

func (h *histogram) snapshot() histogramJSON {
	out := histogramJSON{Buckets: make(map[string]int64, len(latencyBuckets)+1)}
	for i := range latencyBuckets {
		out.Buckets["le_"+latencyBuckets[i].String()] = h.counts[i].Load()
	}
	out.Buckets["overflow"] = h.counts[len(latencyBuckets)].Load()
	out.Count = h.n.Load()
	if out.Count > 0 {
		out.MeanMS = float64(h.sumNS.Load()) / float64(out.Count) / 1e6
	}
	return out
}

// schemeLatencies tracks one histogram per scheme label.
type schemeLatencies struct {
	mu sync.Mutex
	m  map[string]*histogram
}

func newSchemeLatencies() *schemeLatencies {
	return &schemeLatencies{m: make(map[string]*histogram)}
}

func (s *schemeLatencies) observe(scheme string, d time.Duration) {
	s.mu.Lock()
	h, ok := s.m[scheme]
	if !ok {
		h = newHistogram()
		s.m[scheme] = h
	}
	s.mu.Unlock()
	h.observe(d)
}

func (s *schemeLatencies) snapshot() map[string]histogramJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]histogramJSON, len(s.m))
	for k, h := range s.m {
		out[k] = h.snapshot()
	}
	return out
}

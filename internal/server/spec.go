// Package server implements simdserve, the long-lived HTTP/JSON search
// service over the lock-step SIMD simulator.  It turns the one-shot CLI
// runs into queued jobs: a request names a problem instance, a
// load-balancing scheme and a machine shape; the service canonicalizes the
// spec into a deterministic cache key, executes it on a bounded worker
// pool with per-job cancellation and deadlines, and serves the
// Section 3.1 statistics (and optionally the per-cycle trace) back over
// HTTP.
//
// The design leans on the simulator's central contract (DESIGN.md §8):
// results are bit-for-bit determined by the canonical spec, so a result
// cache keyed by the spec hash can serve byte-identical answers without
// re-simulating — something the paper's physical CM-2 could never promise.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
)

// JobSpec is the wire format of a search request.  Exactly one of the
// per-domain sub-specs must match Domain; the others must be absent.
//
// The field set, JSON names and default-filling rules define the cache
// key (see CacheKey) and are therefore part of the service's compatibility
// contract: changing any of them invalidates every cached result, and the
// golden test in spec_test.go exists to make such a change deliberate.
type JobSpec struct {
	// Domain selects the workload: "puzzle", "synthetic" or "queens".
	Domain string `json:"domain"`
	// Scheme is a Table 1 load-balancing scheme label, e.g. "GP-DK",
	// "nGP-S0.85".
	Scheme string `json:"scheme"`
	// P is the number of simulated processing elements.
	P int `json:"p"`
	// Topology is the interconnect: "cm2" (default), "hypercube", "mesh"
	// or "crossbar".
	Topology string `json:"topology"`
	// BudgetCycles bounds the node-expansion cycles of the run (the
	// Avis–Devroye style per-request budget); 0 means unbounded.  A job
	// that exhausts its budget finishes with StatusExhausted and partial
	// stats.
	BudgetCycles int `json:"budget_cycles,omitempty"`
	// MemBudget bounds the bytes of stack storage each simulated machine
	// keeps resident; cold stack levels spill to disk and fault back on
	// demand (DESIGN.md §17).  0 selects the server default (unbounded
	// unless the operator set one).  By the determinism contract the
	// budget never changes the result — it participates in the cache key
	// only because the spec encoding does, and omitempty keeps budgetless
	// specs on their historical keys.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// TimeoutMS bounds the job's wall-clock execution; 0 selects the
	// server default.  It is deliberately excluded from the cache key: a
	// completed result does not depend on how long it was allowed to take.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// StopAtFirstGoal stops at the first solution instead of searching
	// exhaustively.
	StopAtFirstGoal bool `json:"stop_at_first_goal,omitempty"`
	// Trace additionally records the per-cycle active-PE trace, served at
	// GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`

	Puzzle    *PuzzleSpec    `json:"puzzle,omitempty"`
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
	Queens    *QueensSpec    `json:"queens,omitempty"`
}

// PuzzleSpec describes a 15-puzzle instance.  Either Tiles gives the
// start position explicitly (16 values, 0 = blank — the format Korf's
// instances are published in), or Seed/Steps scramble one.
type PuzzleSpec struct {
	Seed  uint64  `json:"seed,omitempty"`
	Steps int     `json:"steps,omitempty"`
	Tiles []uint8 `json:"tiles,omitempty"`
	// Bound is the explicit IDA* cost bound; 0 searches the final
	// (first solving) iteration, as the paper's experiments do.
	Bound int `json:"bound,omitempty"`
	// LC selects the Manhattan+linear-conflict heuristic.
	LC bool `json:"lc,omitempty"`
}

// SyntheticSpec describes a deterministic synthetic tree of exactly W
// nodes.
type SyntheticSpec struct {
	W    int64  `json:"w"`
	Seed uint64 `json:"seed,omitempty"`
}

// QueensSpec describes an n-queens instance.
type QueensSpec struct {
	N int `json:"n"`
}

// Limits the canonicalizer enforces; they keep a single request from
// asking the simulator for an absurd machine.
const (
	MaxP          = 1 << 16
	MaxSyntheticW = int64(1) << 31
	MaxQueensN    = 16
	MaxPuzzleStep = 4096
)

// defaultScrambleSteps matches the CLI default for seeded instances.
const defaultScrambleSteps = 40

// Canonicalize validates spec against the known domain set and fills
// defaults so that every spec admitting the same run maps to one
// canonical value.  Canonicalization is idempotent, and CacheKey is
// defined over its output only.
func Canonicalize(spec JobSpec, domains map[string]bool) (JobSpec, error) {
	c := spec
	c.Domain = strings.TrimSpace(strings.ToLower(c.Domain))
	c.Scheme = strings.TrimSpace(c.Scheme)
	c.Topology = strings.TrimSpace(strings.ToLower(c.Topology))

	if !domains[c.Domain] {
		return JobSpec{}, fmt.Errorf("unknown domain %q (have %s)", c.Domain, domainList(domains))
	}
	if _, err := simd.ParseScheme[synthetic.Node](c.Scheme); err != nil {
		return JobSpec{}, fmt.Errorf("invalid scheme %q: %v", c.Scheme, err)
	}
	if c.P <= 0 {
		return JobSpec{}, fmt.Errorf("p must be positive, got %d", c.P)
	}
	if c.P > MaxP {
		return JobSpec{}, fmt.Errorf("p=%d exceeds the service limit %d", c.P, MaxP)
	}
	if c.Topology == "" {
		c.Topology = "cm2"
	}
	if _, err := topology.ByName(c.Topology); err != nil {
		return JobSpec{}, err
	}
	if c.BudgetCycles < 0 {
		return JobSpec{}, fmt.Errorf("budget_cycles must be non-negative, got %d", c.BudgetCycles)
	}
	if c.MemBudget < 0 {
		return JobSpec{}, fmt.Errorf("mem_budget must be non-negative, got %d", c.MemBudget)
	}
	if c.TimeoutMS < 0 {
		return JobSpec{}, fmt.Errorf("timeout_ms must be non-negative, got %d", c.TimeoutMS)
	}

	subs := 0
	if c.Puzzle != nil {
		subs++
	}
	if c.Synthetic != nil {
		subs++
	}
	if c.Queens != nil {
		subs++
	}
	if subs > 1 {
		return JobSpec{}, fmt.Errorf("spec carries %d domain sub-specs, want at most the %q one", subs, c.Domain)
	}

	switch c.Domain {
	case "puzzle":
		p := PuzzleSpec{}
		if c.Puzzle != nil {
			p = *c.Puzzle
		}
		if len(p.Tiles) != 0 {
			if len(p.Tiles) != 16 {
				return JobSpec{}, fmt.Errorf("puzzle.tiles has %d entries, want 16", len(p.Tiles))
			}
			// An explicit position makes the scramble parameters
			// meaningless; zero them so both spellings share a key.
			p.Seed, p.Steps = 0, 0
		} else {
			if p.Steps == 0 {
				p.Steps = defaultScrambleSteps
			}
			if p.Steps < 0 || p.Steps > MaxPuzzleStep {
				return JobSpec{}, fmt.Errorf("puzzle.steps=%d out of range (0, %d]", p.Steps, MaxPuzzleStep)
			}
		}
		if p.Bound < 0 {
			return JobSpec{}, fmt.Errorf("puzzle.bound must be non-negative, got %d", p.Bound)
		}
		c.Puzzle, c.Synthetic, c.Queens = &p, nil, nil
	case "synthetic":
		if c.Synthetic == nil {
			return JobSpec{}, fmt.Errorf("domain %q needs a synthetic sub-spec", c.Domain)
		}
		s := *c.Synthetic
		if s.W <= 0 || s.W > MaxSyntheticW {
			return JobSpec{}, fmt.Errorf("synthetic.w=%d out of range (0, %d]", s.W, MaxSyntheticW)
		}
		if s.Seed == 0 {
			s.Seed = 1
		}
		c.Puzzle, c.Synthetic, c.Queens = nil, &s, nil
	case "queens":
		if c.Queens == nil {
			return JobSpec{}, fmt.Errorf("domain %q needs a queens sub-spec", c.Domain)
		}
		q := *c.Queens
		if q.N <= 0 || q.N > MaxQueensN {
			return JobSpec{}, fmt.Errorf("queens.n=%d out of range (0, %d]", q.N, MaxQueensN)
		}
		c.Puzzle, c.Synthetic, c.Queens = nil, nil, &q
	default:
		// Extra domains (test injections) carry no sub-spec of their own.
		c.Puzzle, c.Synthetic, c.Queens = nil, nil, nil
	}
	return c, nil
}

// CacheKey hashes a canonical spec into the deterministic result-cache
// key.  TimeoutMS is excluded (a completed result is independent of its
// deadline); every other field participates, including Trace, so traced
// and untraced runs cache separately.  The key is the hex SHA-256 of the
// canonical JSON encoding, whose field order is fixed by the struct
// definition.
func CacheKey(canonical JobSpec) string {
	canonical.TimeoutMS = 0
	b, err := json.Marshal(canonical)
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("server: marshal canonical spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// BuiltinDomains names the domains a stock simdserve node serves.  The
// fleet coordinator (internal/cluster) canonicalizes incoming specs
// against this set before routing, so a bad spec is rejected at the
// front door instead of bouncing off every node.
func BuiltinDomains() []string {
	return []string{"puzzle", "queens", "synthetic"}
}

func domainList(domains map[string]bool) string {
	names := make([]string, 0, len(domains))
	for d := range domains {
		names = append(names, d)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

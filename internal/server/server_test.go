package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/simd"
)

// testServer boots a Server behind an httptest listener.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// wireJob mirrors jobResponse with the stats kept raw so tests can check
// byte identity.
type wireJob struct {
	ID               string          `json:"id"`
	Status           Status          `json:"status"`
	CacheKey         string          `json:"cache_key"`
	CacheHit         bool            `json:"cache_hit"`
	Error            string          `json:"error"`
	Resumed          bool            `json:"resumed"`
	ResumedFromCycle int             `json:"resumed_from_cycle"`
	Stats            json.RawMessage `json:"stats"`
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (wireJob, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j wireJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return j, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) wireJob {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var j wireJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitTerminal polls until the job leaves the queue/run states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) wireJob {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j := getJob(t, ts, id)
		if j.Status.terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return wireJob{}
}

const queensSpec = `{"domain":"queens","scheme":"GP-DK","p":32,"queens":{"n":7}}`

// bigSyntheticSpec is a job that takes long enough to cancel or time out:
// ~270M nodes at P=256 is minutes of simulation if left alone.
func bigSyntheticSpec(extra string) string {
	return `{"domain":"synthetic","scheme":"GP-S0.80","p":256,` + extra + `"synthetic":{"w":268435456,"seed":3}}`
}

func TestSubmitPollDone(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	j, code := postJob(t, ts, queensSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if j.Status != StatusQueued {
		t.Errorf("fresh job status %q, want queued", j.Status)
	}
	fin := waitTerminal(t, ts, j.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job finished %q (err %q), want done", fin.Status, fin.Error)
	}
	var st metrics.Stats
	if err := json.Unmarshal(fin.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Goals != 40 {
		t.Errorf("7-queens found %d solutions, want 40", st.Goals)
	}
}

// TestCacheHitByteIdentical is the acceptance-criteria test: a cache hit
// must return byte-identical Stats to the cold run of the same job spec,
// and specs spelled with explicit defaults must hit the same entry.
func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	cold, _ := postJob(t, ts, queensSpec)
	coldFin := waitTerminal(t, ts, cold.ID)
	if coldFin.Status != StatusDone {
		t.Fatalf("cold run %q: %s", coldFin.Status, coldFin.Error)
	}

	warm, code := postJob(t, ts, queensSpec)
	if code != http.StatusOK {
		t.Fatalf("cache-hit submit status %d, want 200", code)
	}
	if !warm.CacheHit || warm.Status != StatusDone {
		t.Fatalf("second submit not served from cache: %+v", warm)
	}
	if !bytes.Equal(coldFin.Stats, warm.Stats) {
		t.Errorf("cache hit is not byte-identical:\ncold %s\nwarm %s", coldFin.Stats, warm.Stats)
	}
	if warm.CacheKey != cold.CacheKey {
		t.Errorf("cache keys differ: %s vs %s", warm.CacheKey, cold.CacheKey)
	}

	// Same job with defaults spelled out hits the same entry.
	explicit := `{"domain":"queens","scheme":"GP-DK","p":32,"topology":"cm2","timeout_ms":60000,"queens":{"n":7}}`
	warm2, _ := postJob(t, ts, explicit)
	if !warm2.CacheHit {
		t.Error("explicitly-defaulted spec missed the cache")
	}
	if !bytes.Equal(coldFin.Stats, warm2.Stats) {
		t.Error("explicitly-defaulted spec returned different stats")
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	j, code := postJob(t, ts, bigSyntheticSpec(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Wait until it is actually running so the cancel exercises the
	// engine's cycle-boundary check, not the queued fast path.
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts, j.ID).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, j.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("cancelled job finished %q (err %q)", fin.Status, fin.Error)
	}
	var st metrics.Stats
	if err := json.Unmarshal(fin.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Error("partial stats do not carry the Cancelled flag")
	}
	if st.Cycles == 0 {
		t.Error("cancelled mid-run but no completed cycles reported")
	}
}

func TestTimeoutJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	j, _ := postJob(t, ts, bigSyntheticSpec(`"timeout_ms":50,`))
	fin := waitTerminal(t, ts, j.ID)
	if fin.Status != StatusTimeout {
		t.Fatalf("job finished %q (err %q), want timeout", fin.Status, fin.Error)
	}
	var st metrics.Stats
	if err := json.Unmarshal(fin.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Error("timed-out stats do not carry the Cancelled flag")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	j, _ := postJob(t, ts, `{"domain":"synthetic","scheme":"GP-S0.80","p":64,"budget_cycles":10,"synthetic":{"w":1000000,"seed":3}}`)
	fin := waitTerminal(t, ts, j.ID)
	if fin.Status != StatusExhausted {
		t.Fatalf("job finished %q (err %q), want exhausted", fin.Status, fin.Error)
	}
	var st metrics.Stats
	if err := json.Unmarshal(fin.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 10 {
		t.Errorf("budgeted job ran %d cycles, want 10", st.Cycles)
	}
}

// TestHandlerTable covers the HTTP error surface.
func TestHandlerTable(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"malformed json", func() *http.Response { return post("/v1/jobs", "{") }, http.StatusBadRequest},
		{"unknown field", func() *http.Response { return post("/v1/jobs", `{"domian":"puzzle"}`) }, http.StatusBadRequest},
		{"unknown domain", func() *http.Response { return post("/v1/jobs", `{"domain":"chess","scheme":"GP-DK","p":4}`) }, http.StatusBadRequest},
		{"bad scheme", func() *http.Response {
			return post("/v1/jobs", `{"domain":"queens","scheme":"zz","p":4,"queens":{"n":6}}`)
		}, http.StatusBadRequest},
		{"unknown job", func() *http.Response { return get("/v1/jobs/j999") }, http.StatusNotFound},
		{"unknown trace", func() *http.Response { return get("/v1/jobs/j999/trace") }, http.StatusNotFound},
		{"method not allowed", func() *http.Response { return post("/healthz", "") }, http.StatusMethodNotAllowed},
		{"healthz", func() *http.Response { return get("/healthz") }, http.StatusOK},
		{"version", func() *http.Response { return get("/version") }, http.StatusOK},
		{"metrics", func() *http.Response { return get("/metrics") }, http.StatusOK},
		{"list", func() *http.Response { return get("/v1/jobs") }, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	// Untraced job: trace endpoint must refuse.
	plain, _ := postJob(t, ts, queensSpec)
	waitTerminal(t, ts, plain.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("untraced trace fetch: status %d, want 409", resp.StatusCode)
	}

	traced, _ := postJob(t, ts, `{"domain":"queens","scheme":"GP-DK","p":32,"trace":true,"queens":{"n":7}}`)
	fin := waitTerminal(t, ts, traced.ID)
	if fin.Status != StatusDone {
		t.Fatalf("traced job %q: %s", fin.Status, fin.Error)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + traced.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", resp.StatusCode)
	}
	var tr traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 {
		t.Error("trace has no samples")
	}
	var st metrics.Stats
	if err := json.Unmarshal(fin.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != st.Cycles {
		t.Errorf("%d trace samples for %d cycles", len(tr.Samples), st.Cycles)
	}
}

// TestQueueBackpressure fills the bounded queue behind a blocked worker
// and expects 429 with Retry-After.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	cfg := Config{Workers: 1, QueueSize: 1, Runners: map[string]Runner{
		"block": func(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
			select {
			case <-ctx.Done():
				return metrics.Stats{Cancelled: true}, context.Cause(ctx)
			case <-release:
				return metrics.Stats{P: spec.P, W: 1}, nil
			}
		},
	}}
	_, ts := testServer(t, cfg)
	spec := func(p int) string {
		return fmt.Sprintf(`{"domain":"block","scheme":"GP-DK","p":%d}`, p)
	}
	// First job occupies the worker, second fills the queue; distinct P
	// keeps their cache keys distinct.
	a, code := postJob(t, ts, spec(1))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// Wait until the worker picked up job A so the queue slot is free.
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, ts, a.ID).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code = postJob(t, ts, spec(2)); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	once.Do(func() { close(release) })
}

// TestPanicIsolation injects a panicking domain: its job fails, the
// worker survives, and the next job completes.
func TestPanicIsolation(t *testing.T) {
	cfg := Config{Workers: 1, Runners: map[string]Runner{
		"explode": func(ctx context.Context, spec JobSpec, opts simd.Options, env RunEnv) (metrics.Stats, error) {
			panic("boom")
		},
	}}
	s, ts := testServer(t, cfg)
	bad, _ := postJob(t, ts, `{"domain":"explode","scheme":"GP-DK","p":4}`)
	fin := waitTerminal(t, ts, bad.ID)
	if fin.Status != StatusFailed {
		t.Fatalf("panicking job finished %q, want failed", fin.Status)
	}
	if !strings.Contains(fin.Error, "panicked") {
		t.Errorf("error %q does not mention the panic", fin.Error)
	}
	if got := s.ctr.panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	// The same (sole) worker must still serve real jobs.
	ok, _ := postJob(t, ts, queensSpec)
	if fin := waitTerminal(t, ts, ok.ID); fin.Status != StatusDone {
		t.Errorf("post-panic job finished %q: %s", fin.Status, fin.Error)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	cold, _ := postJob(t, ts, queensSpec)
	waitTerminal(t, ts, cold.ID)
	postJob(t, ts, queensSpec) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"jobs_done_total":    2,
		"cache_hits_total":   1,
		"cache_misses_total": 1,
		"cache_entries":      1,
		"queue_capacity":     64,
		"workers":            2,
	}
	for k, want := range checks {
		got, ok := m[k].(float64)
		if !ok || int64(got) != int64(want) {
			t.Errorf("metrics[%s] = %v, want %v", k, m[k], want)
		}
	}
	if _, ok := m["scheme_latency_ms"].(map[string]any)["GP-DK"]; !ok {
		t.Error("no GP-DK latency histogram")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	j, _ := postJob(t, ts, queensSpec)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if fin := getJob(t, ts, j.ID); fin.Status != StatusDone {
		t.Errorf("job not drained: %q (%s)", fin.Status, fin.Error)
	}
	// Submissions after drain are refused.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bigSyntheticSpec("")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: status %d, want 503", resp.StatusCode)
	}
}

// Package baselines implements the competing SIMD load-balancing schemes
// the paper discusses in Section 8, so the paper's qualitative comparisons
// can be re-run:
//
//   - FESS (Mahanti & Daniels): balance as soon as one processor is idle,
//     one transfer per phase, nGP-style matching.  The paper's analysis
//     predicts poor scalability: it performs roughly as many phases as
//     node-expansion cycles.
//   - FEGS (Mahanti & Daniels): same trigger, but each phase performs as
//     many transfers as needed to spread the nodes evenly; better balance,
//     far fewer phases, more communication per phase.
//   - Frye & Myczkowski's give-one scheme: each busy processor hands single
//     nodes to as many idle processors as it can serve — a deliberately
//     poor splitting mechanism.
//   - Frye & Myczkowski's nearest-neighbour scheme: after every cycle,
//     busy processors push work to idle direct neighbours; cheap local
//     communication, but work diffuses slowly across the machine.
package baselines

import (
	"time"

	"simdtree/internal/match"
	"simdtree/internal/simd"
	"simdtree/internal/stack"
	"simdtree/internal/topology"
	"simdtree/internal/trigger"
)

// FESS returns the FESS scheme of Mahanti and Daniels: any-idle
// triggering, single transfer round, enumeration matching.
func FESS[S any]() simd.Scheme[S] {
	return simd.Scheme[S]{
		Label:    "FESS",
		Trigger:  trigger.AnyIdle{},
		Balancer: &simd.MatchBalancer[S]{Matcher: &match.NGP{}},
		Splitter: stack.BottomNode[S]{},
	}
}

// FEGS returns the FEGS scheme of Mahanti and Daniels: any-idle
// triggering with repeated transfer rounds per phase until every idle
// processor has been served, using half-stack splits to even out the
// distribution.
func FEGS[S any]() simd.Scheme[S] {
	return simd.Scheme[S]{
		Label:    "FEGS",
		Trigger:  trigger.AnyIdle{},
		Balancer: &simd.MatchBalancer[S]{Matcher: &match.NGP{}, Multi: true},
		Splitter: stack.HalfStack[S]{},
	}
}

// GiveOneBalancer implements Frye and Myczkowski's first scheme: in one
// phase, every busy processor donates one node to each idle processor it
// is assigned, so a donor with k nodes can serve up to k-1 idle
// processors.  Transfers always move a single bottom node regardless of
// the scheme splitter.
type GiveOneBalancer[S any] struct{}

// Name implements simd.Balancer.
func (GiveOneBalancer[S]) Name() string { return "give-one" }

// Balance implements simd.Balancer.
func (GiveOneBalancer[S]) Balance(c *simd.Context[S]) (rounds, transfers int) {
	idle := c.Idle()
	var receivers []int
	for i, f := range idle {
		if f {
			//lint:allow hotalloc baseline balancer is outside the Table 1 schemes' alloc-free contract
			receivers = append(receivers, i)
		}
	}
	busy := c.Busy()
	var donors []int
	for i, f := range busy {
		if f {
			//lint:allow hotalloc baseline balancer is outside the Table 1 schemes' alloc-free contract
			donors = append(donors, i)
		}
	}
	if len(donors) == 0 || len(receivers) == 0 {
		return 1, 0
	}
	// Assign receivers to donors round-robin; a donor drops out once its
	// stack is no longer splittable.
	di := 0
	for _, r := range receivers {
		served := false
		for tries := 0; tries < len(donors); tries++ {
			d := donors[(di+tries)%len(donors)]
			if c.Splittable(d) {
				if c.Transfer(d, r) > 0 {
					transfers++
					served = true
					di = (di + tries + 1) % len(donors)
					break
				}
			}
		}
		if !served {
			break // no splittable donor remains
		}
	}
	return 1, transfers
}

// FryeGiveOne returns Frye and Myczkowski's give-one scheme with a static
// trigger at threshold x.
func FryeGiveOne[S any](x float64) simd.Scheme[S] {
	return simd.Scheme[S]{
		Label:    "Frye-giveone",
		Trigger:  trigger.Static{X: x},
		Balancer: GiveOneBalancer[S]{},
		Splitter: stack.BottomNode[S]{},
	}
}

// NNBalancer implements Frye and Myczkowski's nearest-neighbour scheme:
// each idle processor receives a split from the first splittable direct
// neighbour (per the machine's topology).  Communication is purely local,
// so the phase is charged a single transfer unit instead of the general
// routed cost.
type NNBalancer[S any] struct{}

// Name implements simd.Balancer.
func (NNBalancer[S]) Name() string { return "nearest-neighbour" }

// Balance implements simd.Balancer.
func (NNBalancer[S]) Balance(c *simd.Context[S]) (rounds, transfers int) {
	p := c.P()
	for i := 0; i < p; i++ {
		if !c.Empty(i) {
			continue
		}
		for _, n := range c.Topo.Neighbors(p, i) {
			if c.Splittable(n) {
				if c.Transfer(n, i) > 0 {
					transfers++
				}
				break
			}
		}
	}
	return 1, transfers
}

// PhaseCost implements the optional simd.PhaseCoster: neighbour hops skip
// the scan setup and the general router; one transfer unit covers the
// whole lock-step exchange.
func (NNBalancer[S]) PhaseCost(costs simd.Costs, _ topology.Network, _, _ int) time.Duration {
	return time.Duration(float64(costs.TransferUnit) * costs.EffectiveLBScale())
}

// NearestNeighbor returns the nearest-neighbour scheme: balance after
// every cycle, purely local transfers.
func NearestNeighbor[S any]() simd.Scheme[S] {
	return simd.Scheme[S]{
		Label:    "Frye-NN",
		Trigger:  trigger.AnyIdle{},
		Balancer: NNBalancer[S]{},
		Splitter: stack.HalfStack[S]{},
	}
}

// All returns every baseline scheme for comparison sweeps.
func All[S any]() []simd.Scheme[S] {
	return []simd.Scheme[S]{
		FESS[S](), FEGS[S](), FryeGiveOne[S](0.75), NearestNeighbor[S](),
	}
}

package baselines

import (
	"testing"

	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
)

func runScheme(t *testing.T, sch simd.Scheme[synthetic.Node], w int64, opts simd.Options) (stats interface {
	Efficiency() float64
}, raw simdStats) {
	t.Helper()
	st, err := simd.Run[synthetic.Node](synthetic.New(w, 0xBA5E), sch, opts)
	if err != nil {
		t.Fatalf("%s: %v", sch.Label, err)
	}
	return st, simdStats{w: st.W, cycles: st.Cycles, phases: st.LBPhases, transfers: st.Transfers, e: st.Efficiency()}
}

type simdStats struct {
	w         int64
	cycles    int
	phases    int
	transfers int
	e         float64
}

// TestBaselinesSearchCorrectly verifies every baseline expands exactly the
// serial node count.
func TestBaselinesSearchCorrectly(t *testing.T) {
	const w = 40000
	serial := search.DFS[synthetic.Node](synthetic.New(w, 0xBA5E))
	for _, sch := range All[synthetic.Node]() {
		_, raw := runScheme(t, sch, w, simd.Options{P: 64})
		if raw.w != serial.Expanded {
			t.Errorf("%s: W=%d, serial %d", sch.Label, raw.w, serial.Expanded)
		}
	}
}

// TestFESSBalancesConstantly checks the FESS analysis of Section 8: with
// an any-idle trigger it performs nearly one phase per expansion cycle.
func TestFESSBalancesConstantly(t *testing.T) {
	_, raw := runScheme(t, FESS[synthetic.Node](), 40000, simd.Options{P: 64})
	if float64(raw.phases) < 0.5*float64(raw.cycles) {
		t.Errorf("FESS: %d phases over %d cycles; expected phases ~ cycles", raw.phases, raw.cycles)
	}
}

// TestFEGSSpreadsMoreThanFESS: FEGS's multi-round phases serve every idle
// processor, so it transfers at least as much per phase as FESS.
func TestFEGSSpreadsMoreThanFESS(t *testing.T) {
	_, fess := runScheme(t, FESS[synthetic.Node](), 60000, simd.Options{P: 64})
	_, fegs := runScheme(t, FEGS[synthetic.Node](), 60000, simd.Options{P: 64})
	perPhaseFESS := float64(fess.transfers) / float64(fess.phases)
	perPhaseFEGS := float64(fegs.transfers) / float64(fegs.phases)
	if perPhaseFEGS < perPhaseFESS {
		t.Errorf("FEGS transfers/phase %.1f < FESS %.1f", perPhaseFEGS, perPhaseFESS)
	}
	// FEGS should not need meaningfully more cycles than FESS; small
	// differences arise from its different split strategy.
	if float64(fegs.cycles) > 1.1*float64(fess.cycles) {
		t.Errorf("FEGS needed far more cycles (%d) than FESS (%d) despite better balance", fegs.cycles, fess.cycles)
	}
}

// TestGPBeatsBaselines reproduces the headline comparison: the paper's
// GP-DK outperforms all Section 8 baselines on a sizeable problem.
func TestGPBeatsBaselines(t *testing.T) {
	const w = 120000
	gpdk, err := simd.ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	_, gp := runScheme(t, gpdk, w, simd.Options{P: 256})
	for _, sch := range All[synthetic.Node]() {
		_, base := runScheme(t, sch, w, simd.Options{P: 256})
		if base.e > gp.e+0.03 {
			t.Errorf("%s efficiency %.3f beats GP-DK %.3f", sch.Label, base.e, gp.e)
		}
	}
}

// TestNearestNeighborDiffusesSlowly: with purely local transfers on a
// mesh, filling the machine takes at least on the order of the mesh
// diameter in cycles.
func TestNearestNeighborDiffusesSlowly(t *testing.T) {
	nn := NearestNeighbor[synthetic.Node]()
	opts := simd.Options{P: 64, Topology: topology.Mesh{}}
	st, err := simd.Run[synthetic.Node](synthetic.New(40000, 0xBA5E), nn, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.W != 40000 {
		t.Errorf("W=%d", st.W)
	}
	if st.LBPhases == 0 {
		t.Error("nearest-neighbour scheme never balanced")
	}
}

// TestGiveOneServesManyFromOneDonor checks the Frye scheme's signature
// behaviour: a single busy processor can serve several idle processors in
// one phase, one node each.
func TestGiveOneServesManyFromOneDonor(t *testing.T) {
	sch := FryeGiveOne[synthetic.Node](0.99)
	st, err := simd.Run[synthetic.Node](synthetic.New(30000, 0xBA5E), sch, simd.Options{P: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxTransfer != 1 {
		t.Errorf("give-one moved %d nodes in one transfer, want 1", st.MaxTransfer)
	}
	if st.W != 30000 {
		t.Errorf("W=%d", st.W)
	}
}

package knapsack

import (
	"math/rand"
	"testing"

	"simdtree/internal/search"
	"simdtree/internal/simd"
)

func TestHandInstance(t *testing.T) {
	// Classic example: capacity 10, optimum is items {2,3} = value 9... computed by DP oracle.
	p := New([]Item{{Weight: 5, Value: 10}, {Weight: 4, Value: 40}, {Weight: 6, Value: 30}, {Weight: 3, Value: 50}}, 10)
	want := p.OptimalByDP()
	if want != 90 { // items (4,40) and (3,50): weight 7, value 90
		t.Fatalf("DP oracle says %d, expected 90", want)
	}
	cost, _, ok := search.Optimum[Node](p)
	if !ok || -cost != want {
		t.Errorf("DFBB optimum %d, want %d", -cost, want)
	}
}

// TestDFBBMatchesDP cross-validates branch-and-bound against the dynamic
// programming oracle on random instances.
func TestDFBBMatchesDP(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p := Random(16, seed)
		cost, expanded, ok := search.Optimum[Node](p)
		if !ok {
			t.Fatalf("seed %d: no solution (empty set always completes!)", seed)
		}
		if want := p.OptimalByDP(); -cost != want {
			t.Errorf("seed %d: DFBB %d, DP %d", seed, -cost, want)
		}
		if expanded <= 0 {
			t.Errorf("seed %d: no nodes expanded", seed)
		}
	}
}

// TestBoundAdmissible property-checks the fractional bound: it never
// exceeds (in value terms) the DP optimum of the residual subproblem
// reachable from the root.
func TestBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := Random(14, rng.Uint64())
		// At the root, -LowerBound is an upper bound on the achievable value.
		if ub := -p.LowerBound(p.Root()); ub < p.OptimalByDP() {
			t.Errorf("trial %d: root bound %d below optimum %d (inadmissible)", trial, ub, p.OptimalByDP())
		}
	}
}

func TestBoundExactWhenAllFit(t *testing.T) {
	p := New([]Item{{1, 5}, {1, 7}}, 10)
	if got := -p.LowerBound(p.Root()); got != 12 {
		t.Errorf("bound %d, want exact 12 when everything fits", got)
	}
}

func TestDensitySorting(t *testing.T) {
	p := New([]Item{{Weight: 10, Value: 10}, {Weight: 1, Value: 9}}, 10)
	if p.Items[0].Weight != 1 {
		t.Error("items not sorted by density")
	}
}

// TestParallelDFBBFindsOptimum runs DFBB on the SIMD machine: the node
// count may differ from serial (anomalies), but the optimum must match.
func TestParallelDFBBFindsOptimum(t *testing.T) {
	p := Random(20, 7)
	want := p.OptimalByDP()

	serialCost, serialW, _ := search.Optimum[Node](p)
	if -serialCost != want {
		t.Fatalf("serial DFBB %d, DP %d", -serialCost, want)
	}

	for _, label := range []string{"GP-S0.80", "GP-DK"} {
		sch, err := simd.ParseScheme[Node](label)
		if err != nil {
			t.Fatal(err)
		}
		b := search.NewDFBB[Node](p)
		st, err := simd.Run[Node](b, sch, simd.Options{P: 64})
		if err != nil {
			t.Fatal(err)
		}
		if got := -b.In.Best(); got != want {
			t.Errorf("%s: parallel optimum %d, want %d", label, got, want)
		}
		t.Logf("%s: serial W=%d, parallel W=%d (anomaly ratio %.2f)",
			label, serialW, st.W, float64(st.W)/float64(serialW))
	}
}

// TestCorrelatedInstancesHarder verifies the hard-instance family: on
// strongly correlated items the fractional bound prunes worse, so DFBB
// expands more nodes than on uncorrelated instances of the same size.
func TestCorrelatedInstancesHarder(t *testing.T) {
	var uncorr, corr int64
	for seed := uint64(1); seed <= 5; seed++ {
		_, e1, _ := search.Optimum[Node](Random(20, seed))
		_, e2, _ := search.Optimum[Node](RandomCorrelated(20, seed))
		uncorr += e1
		corr += e2
	}
	if corr <= uncorr {
		t.Errorf("correlated instances expanded %d nodes total vs uncorrelated %d; expected harder", corr, uncorr)
	}
	// And the optimum still matches the DP oracle.
	p := RandomCorrelated(18, 3)
	cost, _, ok := search.Optimum[Node](p)
	if !ok || -cost != p.OptimalByDP() {
		t.Errorf("correlated optimum %d, DP %d", -cost, p.OptimalByDP())
	}
}

func BenchmarkSerialDFBB(b *testing.B) {
	p := Random(24, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := search.Optimum[Node](p); !ok {
			b.Fatal("no optimum")
		}
	}
}

// Package knapsack implements the 0/1 knapsack problem as a depth-first
// branch-and-bound workload: choose a subset of items maximising total
// value under a weight capacity.  Branch-and-bound over take/skip
// decisions with the classic fractional (Dantzig) relaxation bound gives
// the highly irregular, order-sensitive trees the paper's DFBB use case
// (Section 2) implies — and, unlike the exhaustive IDA* workloads, its
// node counts exhibit the speedup anomalies the paper's analysis excludes.
//
// Costs are negated values so the problem fits the repository's
// minimisation interface: Cost = -(total value).
package knapsack

import (
	"sort"
)

// Item is a knapsack item.
type Item struct {
	Weight int64
	Value  int64
}

// Problem is a knapsack instance with items pre-sorted by value density
// (best first), which maximises the strength of the fractional bound.
type Problem struct {
	Items    []Item
	Capacity int64
	// suffixWeight[i] and suffixValue[i] are the totals of items i..n-1,
	// used to short-circuit bound computation.
	suffixWeight []int64
	suffixValue  []int64
}

// Node is a partial decision: items 0..Next-1 decided, of which the taken
// ones weigh Weight and are worth Value.
type Node struct {
	Next   uint16
	Weight int64
	Value  int64
}

// New builds a problem from items and a capacity; the items are copied
// and sorted by density.
func New(items []Item, capacity int64) *Problem {
	p := &Problem{Items: append([]Item(nil), items...), Capacity: capacity}
	sort.SliceStable(p.Items, func(i, j int) bool {
		// value/weight descending, computed cross-multiplied to stay in
		// integers; zero-weight items (free value) come first.
		a, b := p.Items[i], p.Items[j]
		return a.Value*b.Weight > b.Value*a.Weight
	})
	n := len(p.Items)
	p.suffixWeight = make([]int64, n+1)
	p.suffixValue = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		p.suffixWeight[i] = p.suffixWeight[i+1] + p.Items[i].Weight
		p.suffixValue[i] = p.suffixValue[i+1] + p.Items[i].Value
	}
	return p
}

// Random builds a deterministic random instance of n items: weights in
// [1, 100], values in [1, 100], capacity at half the total weight.  These
// are the uncorrelated instances standard in the branch-and-bound
// literature; they are comparatively easy because the fractional bound is
// nearly tight.
func Random(n int, seed uint64) *Problem {
	items := make([]Item, n)
	state := seed ^ 0xDEADBEEFCAFE
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var total int64
	for i := range items {
		items[i].Weight = int64(next()%100) + 1
		items[i].Value = int64(next()%100) + 1
		total += items[i].Weight
	}
	return New(items, total/2)
}

// RandomCorrelated builds a strongly correlated instance (value = weight
// + 10), the classic hard family for Dantzig-bound branch-and-bound:
// densities are nearly uniform, so the fractional relaxation prunes
// poorly and the search tree becomes large and irregular.
func RandomCorrelated(n int, seed uint64) *Problem {
	items := make([]Item, n)
	state := seed ^ 0xC0881A7ED
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var total int64
	for i := range items {
		items[i].Weight = int64(next()%100) + 1
		items[i].Value = items[i].Weight + 10
		total += items[i].Weight
	}
	return New(items, total/2)
}

// Root implements search.OptimizationDomain.
func (p *Problem) Root() Node { return Node{} }

// Complete implements search.OptimizationDomain.
func (p *Problem) Complete(n Node) bool { return int(n.Next) == len(p.Items) }

// Cost implements search.OptimizationDomain: the negated value, so
// minimising cost maximises value.
func (p *Problem) Cost(n Node) int64 { return -n.Value }

// Expand implements search.OptimizationDomain: decide the next item, take
// branch first (good solutions early improve pruning).
func (p *Problem) Expand(n Node, buf []Node) []Node {
	i := int(n.Next)
	if i == len(p.Items) {
		return buf
	}
	it := p.Items[i]
	skip := Node{Next: n.Next + 1, Weight: n.Weight, Value: n.Value}
	//lint:allow hotalloc expansion buffer is reused by the engine and reaches the branching factor
	buf = append(buf, skip)
	if n.Weight+it.Weight <= p.Capacity {
		take := Node{Next: n.Next + 1, Weight: n.Weight + it.Weight, Value: n.Value + it.Value}
		//lint:allow hotalloc expansion buffer is reused by the engine and reaches the branching factor
		buf = append(buf, take)
	}
	return buf
}

// LowerBound implements search.OptimizationDomain via the Dantzig
// fractional relaxation: fill the remaining capacity greedily by density,
// taking a fraction of the first item that does not fit.  The bound is
// admissible: no 0/1 completion can beat the fractional optimum.
func (p *Problem) LowerBound(n Node) int64 {
	i := int(n.Next)
	remaining := p.Capacity - n.Weight
	value := n.Value
	// Everything left fits: the bound is exact.
	if p.suffixWeight[i] <= remaining {
		return -(value + p.suffixValue[i])
	}
	for ; i < len(p.Items); i++ {
		it := p.Items[i]
		if it.Weight <= remaining {
			remaining -= it.Weight
			value += it.Value
			continue
		}
		// Fractional part, rounded up (keeps the bound admissible).
		value += (it.Value*remaining + it.Weight - 1) / it.Weight
		break
	}
	return -value
}

// OptimalByDP solves the instance exactly by dynamic programming over
// capacities — an independent oracle used by the tests to validate
// branch-and-bound.  It runs in O(n * capacity) time and memory.
func (p *Problem) OptimalByDP() int64 {
	cap := int(p.Capacity)
	best := make([]int64, cap+1)
	for _, it := range p.Items {
		w := int(it.Weight)
		for c := cap; c >= w; c-- {
			if v := best[c-w] + it.Value; v > best[c] {
				best[c] = v
			}
		}
	}
	return best[cap]
}

package match

import (
	"math/rand"
	"testing"

	"simdtree/internal/scan"
)

// figure2State is the paper's Figure 2 example: 8 processors, 6 and 7
// idle (1-indexed in the paper; 5 and 6 zero-indexed here), global pointer
// at processor 5 (paper) = index 4.
func figure2State() (busy, idle []bool) {
	busy = []bool{true, true, true, true, true, false, false, true}
	idle = []bool{false, false, false, false, false, true, true, false}
	return
}

// TestFigure2NGP reproduces the nGP half of the paper's Figure 2: idle
// processors 6 and 7 are matched to busy processors 1 and 2 (paper
// numbering), and the matching repeats identically next phase.
func TestFigure2NGP(t *testing.T) {
	busy, idle := figure2State()
	m := &NGP{}
	for round := 0; round < 2; round++ {
		pairs := m.Match(busy, idle)
		want := []scan.Pair{{From: 0, To: 5}, {From: 1, To: 6}}
		if len(pairs) != 2 || pairs[0] != want[0] || pairs[1] != want[1] {
			t.Fatalf("round %d: pairs %v, want %v", round, pairs, want)
		}
	}
}

// TestFigure2GP reproduces the GP half of Figure 2: with the pointer at
// processor 5 (index 4), idle 6,7 are matched to busy 8,1 (indices 7,0);
// the pointer advances, so the next identical state matches 6,7 to 2,3
// (indices 1,2).
func TestFigure2GP(t *testing.T) {
	busy, idle := figure2State()
	g := NewGP()
	g.pointer = 4 // paper: global pointer at processor 5

	pairs := g.Match(busy, idle)
	want := []scan.Pair{{From: 7, To: 5}, {From: 0, To: 6}}
	if len(pairs) != 2 {
		t.Fatalf("pairs %v, want 2", pairs)
	}
	got := map[scan.Pair]bool{}
	for _, p := range pairs {
		got[p] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("first phase pairs %v, want to contain %v", pairs, want)
		}
	}
	if g.pointer != 0 {
		t.Fatalf("pointer = %d, want 0 (paper: advanced to processor 1)", g.pointer)
	}

	pairs = g.Match(busy, idle)
	want = []scan.Pair{{From: 1, To: 5}, {From: 2, To: 6}}
	got = map[scan.Pair]bool{}
	for _, p := range pairs {
		got[p] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("second phase pairs %v, want to contain %v", pairs, want)
		}
	}
	if g.pointer != 2 {
		t.Fatalf("pointer = %d, want 2 (paper: processor 3)", g.pointer)
	}
}

func TestGPFirstPhaseMatchesNGP(t *testing.T) {
	busy, idle := figure2State()
	g := NewGP()
	n := &NGP{}
	gp := g.Match(busy, idle)
	ng := n.Match(busy, idle)
	if len(gp) != len(ng) {
		t.Fatalf("fresh GP %v vs nGP %v", gp, ng)
	}
	for i := range gp {
		if gp[i] != ng[i] {
			t.Fatalf("fresh GP %v differs from nGP %v", gp, ng)
		}
	}
}

func TestReset(t *testing.T) {
	g := NewGP()
	g.pointer = 3
	g.Reset()
	if g.pointer != -1 {
		t.Errorf("Reset left pointer at %d", g.pointer)
	}
}

// TestMatchersOneOnOne property-checks both matchers on random states:
// min(|busy|,|idle|) pairs, donors busy, receivers idle, no endpoint used
// twice.
func TestMatchersOneOnOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGP()
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		busy := make([]bool, n)
		idle := make([]bool, n)
		nb, ni := 0, 0
		for i := range busy {
			switch rng.Intn(3) {
			case 0:
				busy[i] = true
				nb++
			case 1:
				idle[i] = true
				ni++
			}
		}
		for _, m := range []Matcher{&NGP{}, g} {
			pairs := m.Match(busy, idle)
			want := nb
			if ni < want {
				want = ni
			}
			if len(pairs) != want {
				t.Fatalf("%s trial %d: %d pairs, want %d", m.Name(), trial, len(pairs), want)
			}
			seenF, seenT := map[int]bool{}, map[int]bool{}
			for _, p := range pairs {
				if !busy[p.From] || !idle[p.To] || seenF[p.From] || seenT[p.To] {
					t.Fatalf("%s trial %d: bad pair %v in %v", m.Name(), trial, p, pairs)
				}
				seenF[p.From] = true
				seenT[p.To] = true
			}
		}
	}
}

// TestGPRotatesBurden verifies the motivation of Section 2.2: with a
// stable busy set and few idle processors, GP cycles through all donors
// while nGP hammers the same ones.
func TestGPRotatesBurden(t *testing.T) {
	const p = 16
	busy := make([]bool, p)
	idle := make([]bool, p)
	for i := range busy {
		busy[i] = true
	}
	busy[p-1] = false
	idle[p-1] = true

	donationsGP := map[int]int{}
	donationsNGP := map[int]int{}
	g := NewGP()
	n := &NGP{}
	for phase := 0; phase < p-1; phase++ {
		for _, pr := range g.Match(busy, idle) {
			donationsGP[pr.From]++
		}
		for _, pr := range n.Match(busy, idle) {
			donationsNGP[pr.From]++
		}
	}
	if len(donationsGP) != p-1 {
		t.Errorf("GP used %d distinct donors over %d phases, want %d", len(donationsGP), p-1, p-1)
	}
	if len(donationsNGP) != 1 {
		t.Errorf("nGP used %d distinct donors, want 1 (always the first)", len(donationsNGP))
	}
}

// TestGPWrapsAround checks pointer wrap-around past the last processor.
func TestGPWrapsAround(t *testing.T) {
	busy := []bool{true, false, true}
	idle := []bool{false, true, false}
	g := NewGP()
	g.pointer = 2 // last processor: enumeration restarts from 0
	pairs := g.Match(busy, idle)
	if len(pairs) != 1 || pairs[0] != (scan.Pair{From: 0, To: 1}) {
		t.Errorf("pairs %v, want [{0 1}]", pairs)
	}
}

func TestEmptyMachine(t *testing.T) {
	g := NewGP()
	if pairs := g.Match(nil, nil); pairs != nil {
		t.Errorf("empty machine produced pairs %v", pairs)
	}
	n := &NGP{}
	if pairs := n.Match([]bool{false}, []bool{false}); len(pairs) != 0 {
		t.Errorf("no busy/idle processors produced pairs %v", pairs)
	}
}

package match_test

import (
	"fmt"

	"simdtree/internal/match"
)

// The paper's Figure 2 scenario: eight processors, 6 and 7 idle (paper
// numbering), everyone else busy.  nGP always matches from the start of
// the enumeration; GP rotates past its global pointer, spreading the
// donation burden.
func Example() {
	busy := []bool{true, true, true, true, true, false, false, true}
	idle := []bool{false, false, false, false, false, true, true, false}

	ngp := &match.NGP{}
	gp := match.NewGP()
	for phase := 1; phase <= 2; phase++ {
		fmt.Printf("phase %d: nGP %v  GP %v\n", phase, ngp.Match(busy, idle), gp.Match(busy, idle))
	}
	// Output:
	// phase 1: nGP [{0 5} {1 6}]  GP [{0 5} {1 6}]
	// phase 2: nGP [{0 5} {1 6}]  GP [{2 5} {3 6}]
}

// Package match implements the two schemes the paper studies for mapping
// idle processors to busy donors during a load-balancing phase (Section 2):
//
//   - nGP — the pre-existing scheme of Powley/Korf/Ferguson and
//     Mahanti/Daniels: both sets are enumerated from processor 0 and matched
//     rank-to-rank by rendezvous allocation.  Busy processors early in the
//     enumeration donate over and over, which drives the phase bound
//     V(P) <= log^((2x-1)/(1-x)) W (Appendix B).
//
//   - GP — the paper's new global-pointer scheme: a pointer remembers the
//     last donor of the previous phase and the busy enumeration starts just
//     after it, wrapping around, so the donation burden rotates across the
//     machine and V(P) <= ceil(1/(1-x)) (Section 4.1).
//
// Matchers operate on busy/idle flags only; stacks are split by the engine.
// A Matcher is deliberately sequential state (the global pointer), matching
// how the CM-2 host maintained it between phases.  Both matchers keep
// reusable enumeration scratch so the per-phase matching step does not
// allocate in steady state, and accept a host-parallelism hint
// (SetParallelism) that shards the enumeration scans across goroutines with
// a deterministic reduction — the pairs are bit-identical for any setting.
package match

import "simdtree/internal/scan"

// Matcher pairs idle processors with busy donors for one transfer round.
type Matcher interface {
	// Name identifies the scheme ("nGP" or "GP") in reports.
	Name() string
	// Match returns donor-to-receiver pairs.  busy[i] reports that
	// processor i can split its work (at least two stack nodes); idle[i]
	// that it has none.  Exactly min(#busy, #idle) pairs are returned.
	// The returned slice is the matcher's reusable scratch: it is valid
	// until the next Match call on the same matcher.
	Match(busy, idle []bool) []scan.Pair
	// Reset clears any cross-phase state (the global pointer).
	Reset()
}

// ParallelMatcher is implemented by matchers whose enumeration scans can be
// sharded across host goroutines.  The hint never changes the pairs a
// matcher returns — only how fast they are computed — so the engine wires
// its Workers option through without affecting determinism.
type ParallelMatcher interface {
	Matcher
	// SetParallelism hints how many goroutines Match may use; values
	// below 2 select the sequential scans.
	SetParallelism(workers int)
}

// BitMatcher is implemented by matchers that can run their enumeration
// scans directly on the engine's flag bitsets (scan.Bits), visiting only
// the set bits instead of walking P booleans.  MatchBits returns exactly
// the pairs Match would for the equivalent []bool flags — the bitset form
// is a representation change, never a schedule change.  Both matchers in
// this package implement it; the engine falls back to Match for foreign
// ones.
type BitMatcher interface {
	Matcher
	// MatchBits is Match over word-packed flags; n is the machine size.
	MatchBits(busy, idle scan.Bits, n int) []scan.Pair
}

// arena is the reusable matching scratch shared by both schemes: the busy
// and idle enumeration ranks, the rendezvous rank-inversion table, and the
// returned pair slice.  None of it is semantic state — Reset does not touch
// it — it only keeps steady-state matching allocation-free.
type arena struct {
	workers   int
	busyRanks []int
	idleRanks []int
	inv       []int
	pairs     []scan.Pair
}

// SetParallelism implements ParallelMatcher.
func (a *arena) SetParallelism(workers int) { a.workers = workers }

// grow sizes the rank scratch for an n-processor machine.
//
//lint:hotpath
func (a *arena) grow(n int) {
	if cap(a.busyRanks) < n {
		//lint:allow hotalloc rank scratch grows once to P and is reused across phases
		a.busyRanks = make([]int, n)
		//lint:allow hotalloc rank scratch grows once to P and is reused across phases
		a.idleRanks = make([]int, n)
	}
	a.busyRanks = a.busyRanks[:n]
	a.idleRanks = a.idleRanks[:n]
}

// NGP is the pointer-free matching scheme of the prior work: enumeration
// always starts at processor 0.  The zero value is ready for use.
type NGP struct {
	arena
}

// Name implements Matcher.
func (*NGP) Name() string { return "nGP" }

// Reset implements Matcher; NGP carries no cross-phase state.
func (*NGP) Reset() {}

// Match implements Matcher.
//
//lint:hotpath
func (g *NGP) Match(busy, idle []bool) []scan.Pair {
	g.grow(len(busy))
	scan.EnumerateParallelInto(g.busyRanks, busy, g.workers)
	scan.EnumerateParallelInto(g.idleRanks, idle, g.workers)
	g.pairs, g.inv = scan.RendezvousInto(g.pairs[:0], g.inv, g.busyRanks, g.idleRanks)
	return g.pairs
}

// MatchBits implements BitMatcher.
//
//lint:hotpath
func (g *NGP) MatchBits(busy, idle scan.Bits, n int) []scan.Pair {
	g.grow(n)
	scan.EnumerateBitsInto(g.busyRanks, busy, n)
	scan.EnumerateBitsInto(g.idleRanks, idle, n)
	g.pairs, g.inv = scan.RendezvousInto(g.pairs[:0], g.inv, g.busyRanks, g.idleRanks)
	return g.pairs
}

// GP is the paper's global-pointer matching scheme.
type GP struct {
	arena
	pointer int // last processor that donated work; -1 before the first phase
}

// NewGP returns a GP matcher with the pointer parked before processor 0,
// so the first phase enumerates from processor 0 exactly like nGP.
func NewGP() *GP { return &GP{pointer: -1} }

// Name implements Matcher.
func (g *GP) Name() string { return "GP" }

// Reset implements Matcher, parking the pointer again.
func (g *GP) Reset() { g.pointer = -1 }

// Pointer returns the global pointer: the last processor that donated
// work, or -1 while the pointer is parked before the first phase.  It is
// the matcher's only cross-phase state, captured by checkpoints.
func (g *GP) Pointer() int { return g.pointer }

// SetPointer restores the global pointer, the inverse of Pointer.
// Checkpoint restore uses it to resume the donation rotation exactly where
// the snapshotted run left it.
func (g *GP) SetPointer(p int) {
	if p < -1 {
		p = -1
	}
	g.pointer = p
}

// Match implements Matcher: busy processors are enumerated starting from
// the first busy processor after the global pointer (wrapping around), the
// idle ones from processor 0, and ranks are matched by rendezvous.  The
// pointer then advances to the last processor that donated.
//
//lint:hotpath
func (g *GP) Match(busy, idle []bool) []scan.Pair {
	n := len(busy)
	if n == 0 {
		return nil
	}
	start := (g.pointer + 1) % n
	if g.pointer < 0 {
		start = 0
	}
	g.grow(n)
	nBusy := scan.EnumerateFromParallelInto(g.busyRanks, busy, start, g.workers)
	nIdle := scan.EnumerateParallelInto(g.idleRanks, idle, g.workers)
	g.pairs, g.inv = scan.RendezvousInto(g.pairs[:0], g.inv, g.busyRanks, g.idleRanks)
	// Advance the pointer to the donor with the highest matched rank.
	matched := nBusy
	if nIdle < matched {
		matched = nIdle
	}
	if matched > 0 {
		last := matched - 1
		for i, r := range g.busyRanks {
			if r == last {
				g.pointer = i
				break
			}
		}
	}
	return g.pairs
}

// MatchBits implements BitMatcher, reproducing Match exactly: the busy
// enumeration rotates from the flag after the global pointer, the idle
// one starts at 0, and the pointer advances to the donor with the highest
// matched rank.
//
//lint:hotpath
func (g *GP) MatchBits(busy, idle scan.Bits, n int) []scan.Pair {
	if n == 0 {
		return nil
	}
	start := (g.pointer + 1) % n
	if g.pointer < 0 {
		start = 0
	}
	g.grow(n)
	nBusy := scan.EnumerateBitsFromInto(g.busyRanks, busy, start, n)
	nIdle := scan.EnumerateBitsInto(g.idleRanks, idle, n)
	g.pairs, g.inv = scan.RendezvousInto(g.pairs[:0], g.inv, g.busyRanks, g.idleRanks)
	matched := nBusy
	if nIdle < matched {
		matched = nIdle
	}
	if matched > 0 {
		last := matched - 1
		for i, r := range g.busyRanks {
			if r == last {
				g.pointer = i
				break
			}
		}
	}
	return g.pairs
}

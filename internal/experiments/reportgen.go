package experiments

import (
	"fmt"
	"io"

	"simdtree/internal/analysis"
	"simdtree/internal/report"
)

// WriteReport runs the complete reproduction at the suite's scale and
// writes an EXPERIMENTS.md-style markdown report: per experiment, the
// measured rows, the paper's corresponding CM-2 numbers where they exist,
// and a computed verdict on whether the paper's qualitative claims hold
// in the measurement.
func WriteReport[S any](s *Suite[S], scale Scale, out io.Writer) error {
	// The report is the only output; silence the runners' text tables.
	quiet := *s
	quiet.Out = io.Discard
	s = &quiet

	doc := report.New("Experiment report: Unstructured Tree Search on SIMD Parallel Computers")
	doc.Para("Scale `%s`: P = %d simulated processors, problem tiers %v, cost model Ucalc = 30ms, tlb = 13ms (the paper's CM-2 constants). "+
		"Absolute efficiencies depend on (W, P); the paper ran P = 8192 with W up to 16.1M, so shape comparisons, not absolute matches, are the standard here.",
		scale.Name, s.P, tierSizes(s))

	if err := reportTable2(s, doc); err != nil {
		return err
	}
	if err := reportTable3(s, doc); err != nil {
		return err
	}
	if err := reportTable4(s, doc); err != nil {
		return err
	}
	if err := reportTable5(s, scale, doc); err != nil {
		return err
	}
	reportTable6(doc)
	if err := reportIsoGrids(scale, doc); err != nil {
		return err
	}
	if err := reportFig8(s, scale, doc); err != nil {
		return err
	}
	if err := reportExtras(scale, doc); err != nil {
		return err
	}
	_, err := io.WriteString(out, doc.String())
	return err
}

func tierSizes[S any](s *Suite[S]) []int64 {
	out := make([]int64, len(s.Workloads))
	for i, wl := range s.Workloads {
		out[i] = wl.W
	}
	return out
}

func reportTable2[S any](s *Suite[S], doc *report.Doc) error {
	rows, err := s.Table2(quietThresholds(s))
	if err != nil {
		return err
	}
	doc.Section("Table 2 — static triggering")
	header := []string{"W", "x", "nGP Nexp/Nlb/E", "GP Nexp/Nlb/E", "xo (eq. 18)"}
	var body [][]string
	worstGap, bestGap := 1.0, -1.0
	equalAtHalf := true
	for _, r := range rows {
		body = append(body, []string{
			fmt.Sprint(r.W), fmt.Sprintf("%.2f", r.X),
			fmt.Sprintf("%d / %d / %.2f", r.NGP.Nexpand, r.NGP.Nlb, r.NGP.E),
			fmt.Sprintf("%d / %d / %.2f", r.GP.Nexpand, r.GP.Nlb, r.GP.E),
			fmt.Sprintf("%.2f", r.Xo),
		})
		gap := r.GP.E - r.NGP.E
		if gap < worstGap {
			worstGap = gap
		}
		if gap > bestGap {
			bestGap = gap
		}
		//lint:allow floateq thresholds come verbatim from the quietThresholds literals, so 0.50 matches exactly
		if r.X == 0.50 && r.NGP.Nlb != r.GP.Nlb {
			equalAtHalf = false
		}
	}
	doc.Table(header, body)
	doc.Para("Paper (P=8192): at x=0.90 and W=16.1M, nGP reaches E=0.71 with 1756 phases while GP reaches E=0.91 with 172 phases; at x=0.50 the schemes coincide.")
	doc.Verdict("schemes identical at x=0.5: %v; GP-nGP efficiency gap ranges %+.3f to %+.3f (paper: 0 at x=0.5 growing to +0.20 at x=0.9, largest W).",
		equalAtHalf, worstGap, bestGap)
	return nil
}

// quietThresholds is the x sweep for reports.
func quietThresholds[S any](*Suite[S]) []float64 {
	return []float64{0.50, 0.60, 0.70, 0.80, 0.90}
}

func reportTable3[S any](s *Suite[S], doc *report.Doc) error {
	rows, err := s.Table3()
	if err != nil {
		return err
	}
	doc.Section("Table 3 — efficiencies around the analytic optimal trigger")
	var body [][]string
	maxSpread := 0.0
	byW := map[int64][2]float64{}
	for _, r := range rows {
		body = append(body, []string{
			fmt.Sprint(r.W), fmt.Sprintf("%.3f", r.Xo), fmt.Sprintf("%.3f", r.X), fmt.Sprintf("%.3f", r.E),
		})
		mm, ok := byW[r.W]
		if !ok {
			mm = [2]float64{r.E, r.E}
		}
		if r.E < mm[0] {
			mm[0] = r.E
		}
		if r.E > mm[1] {
			mm[1] = r.E
		}
		byW[r.W] = mm
	}
	for _, mm := range byW {
		if sp := mm[1] - mm[0]; sp > maxSpread {
			maxSpread = sp
		}
	}
	doc.Table([]string{"W", "xo", "x", "E"}, body)
	doc.Verdict("efficiency varies by at most %.3f across the +/-0.03 neighbourhood of xo — the analytic trigger sits on the flat top of the efficiency curve, as in the paper's Table 3.", maxSpread)
	return nil
}

func reportTable4[S any](s *Suite[S], doc *report.Doc) error {
	rows, err := s.Table4()
	if err != nil {
		return err
	}
	doc.Section("Table 4 — dynamic triggering")
	var body [][]string
	gpWins := 0
	for _, r := range rows {
		body = append(body, []string{
			fmt.Sprint(r.W),
			cellStr(r.NGPDP), cellStr(r.GPDP), cellStr(r.NGPDK), cellStr(r.GPDK),
		})
		if r.GPDP.E >= r.NGPDP.E && r.GPDK.E >= r.NGPDK.E {
			gpWins++
		}
	}
	doc.Table([]string{"W", "nGP-DP", "GP-DP", "nGP-DK", "GP-DK"}, body)
	doc.Para("Paper (P=8192, largest W): nGP-DP 2191/935/0.75, GP-DP 2055/217/0.92, nGP-DK 2293/598/0.76, GP-DK 2067/192/0.92 (Nexpand / work transfers / E).")
	doc.Verdict("GP matches or beats nGP under both dynamic triggers in %d/%d problem sizes; dynamic efficiencies track the optimal static ones, as in the paper.", gpWins, len(rows))
	return nil
}

func cellStr(c CellResult) string {
	return fmt.Sprintf("%d / %d / %.2f", c.Nexpand, c.Transfers, c.E)
}

func reportTable5[S any](s *Suite[S], scale Scale, doc *report.Doc) error {
	wl := closestTier(s, scale.Table5W)
	rows, err := s.Table5(wl)
	if err != nil {
		return err
	}
	doc.Section("Table 5 — inflated load-balancing cost")
	var body [][]string
	for i, r := range rows {
		paper := PaperTable5[i]
		body = append(body, []string{
			fmt.Sprintf("%.0fx", r.LBScale),
			fmt.Sprintf("%d / %d / %.2f", r.DP.Nexpand, r.DP.Nlb, r.DP.E),
			fmt.Sprintf("%d / %d / %.2f", r.DK.Nexpand, r.DK.Nlb, r.DK.E),
			fmt.Sprintf("%d / %d / %.2f", r.SXo.Nexpand, r.SXo.Nlb, r.SXo.E),
			fmt.Sprintf("%.2f / %.2f / %.2f", paper.DP.E, paper.DK.E, paper.SXo.E),
		})
	}
	doc.Table([]string{"tlb scale", "GP-DP (Nexp/Nlb/E)", "GP-DK", "GP-S^xo", "paper E (DP/DK/S^xo)"}, body)
	last := rows[len(rows)-1]
	adv := 0.0
	if last.DP.E > 0 {
		adv = last.DK.E/last.DP.E - 1
	}
	doc.Verdict("at 16x cost, D^K beats D^P by %.0f%% (paper: 40%%) and stays within %.0f%% of the optimal static trigger (paper: ~10%%).",
		adv*100, (1-ratioOr1(last.DK.E, last.SXo.E))*100)
	return nil
}

func ratioOr1(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

func closestTier[S any](s *Suite[S], target int64) Workload[S] {
	best := s.Workloads[0]
	bd := absDiff(best.W, target)
	for _, wl := range s.Workloads[1:] {
		if d := absDiff(wl.W, target); d < bd {
			best, bd = wl, d
		}
	}
	return best
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func reportTable6(doc *report.Doc) {
	doc.Section("Table 6 — isoefficiency functions (analytic)")
	var body [][]string
	for _, r := range analysis.Table6() {
		body = append(body, []string{r.Topology, r.NGP, r.GP})
	}
	doc.Table([]string{"architecture", "nGP-S^x", "GP-S^x"}, body)
	doc.Verdict("derived from the master relation W = O(P V(P) logW tlb) with the Section 3.3 topology costs; matches the paper's Table 6 up to the log factors the paper elides.")
}

func reportIsoGrids(scale Scale, doc *report.Doc) error {
	levels := []float64{0.50, 0.65, 0.75}
	for _, fig := range []struct {
		name   string
		labels []string
	}{
		{"Figure 4 — isoefficiency of static triggering", Fig4Labels()},
		{"Figure 7 — isoefficiency of dynamic triggering", Fig7Labels()},
	} {
		results, err := IsoGrid(fig.labels, scale.GridPs, scale.GridWs, scale.Workers, levels, nil)
		if err != nil {
			return err
		}
		doc.Section(fig.name)
		var body [][]string
		for _, res := range results {
			for _, lv := range levels {
				if b, ok := res.Exponents[lv]; ok {
					body = append(body, []string{res.Scheme, fmt.Sprintf("%.2f", lv), fmt.Sprintf("%.2f", b), fmt.Sprint(len(res.Curves[lv]))})
				}
			}
		}
		doc.Table([]string{"scheme", "E level", "growth exponent b (W ~ (P log P)^b)", "points"}, body)
		doc.Verdict("b near 1 is the paper's O(P log P) verdict (expected for GP-*); missing or steep high-E rows for nGP at high thresholds reproduce its degradation.")
	}
	return nil
}

func reportFig8[S any](s *Suite[S], scale Scale, doc *report.Doc) error {
	wl := closestTier(s, scale.Table5W)
	series, err := s.Fig8(wl)
	if err != nil {
		return err
	}
	doc.Section("Figure 8 — active processors per cycle")
	var body [][]string
	minAt := map[string]int{}
	for _, sr := range series {
		min := sr.Active[0]
		for _, a := range sr.Active {
			if a < min {
				min = a
			}
		}
		key := fmt.Sprintf("%s @ %.0fx", sr.Label, sr.LBScale)
		minAt[key] = min
		body = append(body, []string{key, fmt.Sprint(len(sr.Active)), fmt.Sprint(min)})
	}
	doc.Table([]string{"scheme @ tlb scale", "cycles", "min active"}, body)
	doc.Verdict("at 16x cost, GP-DP's active count sags to %d while GP-DK holds %d or more between phases — the paper's Section 6.1 failure mode for D^P.",
		minAt["GP-DP @ 16x"], minAt["GP-DK @ 16x"])
	return nil
}

func reportExtras(scale Scale, doc *report.Doc) error {
	w := scale.Tiers[len(scale.Tiers)/2]

	doc.Section("Section 8 baselines")
	base, err := BaselineComparison(w, scale.P, scale.Workers, nil)
	if err != nil {
		return err
	}
	var body [][]string
	for _, label := range []string{"GP-DK", "FESS", "FEGS", "Frye-giveone", "Frye-NN"} {
		st := base[label]
		body = append(body, []string{label, fmt.Sprint(st.Cycles), fmt.Sprint(st.LBPhases), fmt.Sprintf("%.3f", st.Efficiency())})
	}
	doc.Table([]string{"scheme", "Nexpand", "Nlb", "E"}, body)
	doc.Verdict("FESS balances nearly every cycle (its Section 8 critique); GP-DK leads or ties the field.")

	doc.Section("SIMD vs MIMD work stealing (Section 9 claim)")
	m, err := MIMDComparison(w, scale.P, scale.Workers, 1, nil)
	if err != nil {
		return err
	}
	body = nil
	for _, key := range []string{"SIMD GP-DK", "MIMD GRR", "MIMD ARR", "MIMD RP"} {
		body = append(body, []string{key, fmt.Sprintf("%.3f", m[key])})
	}
	doc.Table([]string{"scheme", "E"}, body)
	doc.Verdict("the SIMD scheme lands in the same efficiency band as receiver-initiated MIMD stealing under identical cost constants — \"similar scalability for both MIMD and SIMD\" (Section 9); the residual gap is the SIMD idling overhead the paper acknowledges.")

	doc.Section("Speedup anomalies (excluded by the paper's Section 3)")
	rows, err := Anomalies(22, []uint64{1, 2, 3}, []int{16, 64, 256}, scale.Workers, nil)
	if err != nil {
		return err
	}
	body = nil
	allOptimal := true
	for _, r := range rows {
		body = append(body, []string{
			fmt.Sprint(r.Seed), fmt.Sprint(r.P), fmt.Sprint(r.SerialW), fmt.Sprint(r.ParallelW),
			fmt.Sprintf("%.2f", r.Ratio), fmt.Sprint(r.Optimal),
		})
		allOptimal = allOptimal && r.Optimal
	}
	doc.Table([]string{"seed", "P", "serial W", "parallel W", "ratio", "optimal"}, body)
	doc.Verdict("parallel DFBB node counts diverge from serial (all optima still correct: %v) — exactly the anomaly class the paper excludes by searching bounded trees exhaustively.", allOptimal)
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"simdtree/internal/baselines"
	"simdtree/internal/match"
	"simdtree/internal/metrics"
	"simdtree/internal/mimd"
	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
	"simdtree/internal/trigger"
)

// AblationSplitters compares the alpha-splitting mechanisms under GP-S^x:
// the paper's bottom-node split, the half-stack split, and the
// deliberately poor top-node split (Section 3's claim that efficiency
// drops as the splitter degrades).
func AblationSplitters(w int64, p int, x float64, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB1)
	for _, split := range []stack.Splitter[synthetic.Node]{
		stack.BottomNode[synthetic.Node]{},
		stack.HalfStack[synthetic.Node]{},
		stack.TopNode[synthetic.Node]{},
	} {
		sch, err := simd.StaticScheme[synthetic.Node]("GP", x)
		if err != nil {
			return nil, err
		}
		sch.Splitter = split
		opts := simd.Options{P: p, Workers: workers}
		opts.Costs = simd.CM2Costs()
		st, err := simd.Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			return nil, err
		}
		results[split.Name()] = st
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: splitter quality (GP-S%.2f, W=%d, P=%d)\n", x, w, p)
		fmt.Fprintln(tww, "splitter\tNexpand\tNlb\tE")
		for _, name := range []string{"bottom-node", "half-stack", "top-node"} {
			st := results[name]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%.3f\n", name, st.Cycles, st.LBPhases, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AblationInit compares the dynamic schemes with and without the S^0.85
// initial-distribution phase of Section 7.
func AblationInit(w int64, p, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB2)
	for _, label := range []string{"GP-DP", "GP-DK"} {
		for _, init := range []float64{0, -1} { // 0 selects the paper default; -1 disables
			sch, err := simd.ParseScheme[synthetic.Node](label)
			if err != nil {
				return nil, err
			}
			opts := simd.Options{P: p, Workers: workers, InitThreshold: init}
			opts.Costs = simd.CM2Costs()
			st, err := simd.Run[synthetic.Node](tree, sch, opts)
			if err != nil {
				return nil, err
			}
			key := label + "+init"
			if init < 0 {
				key = label + "-init"
			}
			results[key] = st
		}
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: S^0.85 initial distribution (W=%d, P=%d)\n", w, p)
		fmt.Fprintln(tww, "variant\tNexpand\tNlb\tE")
		for _, key := range []string{"GP-DP+init", "GP-DP-init", "GP-DK+init", "GP-DK-init"} {
			st := results[key]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%.3f\n", key, st.Cycles, st.LBPhases, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AblationTransfers compares single vs multiple work transfers per phase
// for D^P triggering (the paper requires multiple; Section 2.3).
func AblationTransfers(w int64, p, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB3)
	for _, multi := range []bool{true, false} {
		// Built by hand: NewScheme would force multiple transfers for D^P.
		sch := simd.Scheme[synthetic.Node]{
			Label:    "GP-DP",
			Trigger:  trigger.DP{},
			Balancer: &simd.MatchBalancer[synthetic.Node]{Matcher: match.NewGP(), Multi: multi},
			Splitter: stack.BottomNode[synthetic.Node]{},
			WantInit: true,
		}
		opts := simd.Options{P: p, Workers: workers, InitThreshold: 0.85}
		opts.Costs = simd.CM2Costs()
		st, err := simd.Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			return nil, err
		}
		key := "GP-DP-single"
		if multi {
			key = "GP-DP-multi"
		}
		results[key] = st
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: D^P transfer policy (W=%d, P=%d)\n", w, p)
		fmt.Fprintln(tww, "variant\tNexpand\tNlb\ttransfers\tE")
		for _, key := range []string{"GP-DP-multi", "GP-DP-single"} {
			st := results[key]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%d\t%.3f\n", key, st.Cycles, st.LBPhases, st.Transfers, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AblationTopology runs GP-S^x over the topology cost models of Section
// 3.3, showing how communication cost moves efficiency (Table 6's
// architecture dependence, measured).
func AblationTopology(w int64, p int, x float64, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB4)
	for _, name := range []string{"cm2", "hypercube", "mesh", "crossbar"} {
		net, err := topology.ByName(name)
		if err != nil {
			return nil, err
		}
		sch, err := simd.StaticScheme[synthetic.Node]("GP", x)
		if err != nil {
			return nil, err
		}
		opts := simd.Options{P: p, Workers: workers, Topology: net}
		opts.Costs = simd.CM2Costs()
		st, err := simd.Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			return nil, err
		}
		results[name] = st
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: topology cost model (GP-S%.2f, W=%d, P=%d)\n", x, w, p)
		fmt.Fprintln(tww, "topology\tNexpand\tNlb\tE")
		for _, name := range []string{"crossbar", "cm2", "hypercube", "mesh"} {
			st := results[name]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%.3f\n", name, st.Cycles, st.LBPhases, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AblationMessageSize relaxes the paper's constant-message-size
// assumption (Section 3.1): with a per-node transfer cost, the bottom-node
// splitter's one-node messages stay cheap while the half-stack splitter's
// bulk messages get expensive — the tradeoff between balance quality and
// message volume becomes visible.
func AblationMessageSize(w int64, p, workers int, perNodeMs float64, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB7)
	for _, split := range []stack.Splitter[synthetic.Node]{
		stack.BottomNode[synthetic.Node]{},
		stack.HalfStack[synthetic.Node]{},
	} {
		for _, perNode := range []float64{0, perNodeMs} {
			sch, err := simd.ParseScheme[synthetic.Node]("GP-DK")
			if err != nil {
				return nil, err
			}
			sch.Splitter = split
			opts := simd.Options{P: p, Workers: workers}
			opts.Costs = simd.CM2Costs()
			opts.Costs.PerNodeTransfer = time.Duration(perNode * float64(time.Millisecond))
			st, err := simd.Run[synthetic.Node](tree, sch, opts)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s@%.1fms/node", split.Name(), perNode)
			results[key] = st
		}
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: message-size-dependent transfer cost (GP-DK, W=%d, P=%d)\n", w, p)
		fmt.Fprintln(tww, "variant\tNexpand\tNlb\tmax transfer\tE")
		for _, key := range []string{
			fmt.Sprintf("bottom-node@%.1fms/node", 0.0),
			fmt.Sprintf("bottom-node@%.1fms/node", perNodeMs),
			fmt.Sprintf("half-stack@%.1fms/node", 0.0),
			fmt.Sprintf("half-stack@%.1fms/node", perNodeMs),
		} {
			st := results[key]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%d\t%.3f\n", key, st.Cycles, st.LBPhases, st.MaxTransfer, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AblationDKGamma sweeps the aggressiveness factor of the generalised
// D^K trigger; gamma = 1 is the paper's choice.
func AblationDKGamma(w int64, p, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB8)
	gammas := []float64{0.25, 0.5, 1, 2, 4}
	for _, g := range gammas {
		sch, err := simd.NewScheme[synthetic.Node]("GP", trigger.DKGamma{Gamma: g}, false)
		if err != nil {
			return nil, err
		}
		sch.WantInit = true
		opts := simd.Options{P: p, Workers: workers}
		opts.Costs = simd.CM2Costs()
		st, err := simd.Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			return nil, err
		}
		results[sch.Trigger.Name()] = st
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: D^K gamma sweep (GP matching, W=%d, P=%d)\n", w, p)
		fmt.Fprintln(tww, "gamma\tNexpand\tNlb\tE")
		for _, g := range gammas {
			st := results[trigger.DKGamma{Gamma: g}.Name()]
			fmt.Fprintf(tww, "%.2f\t%d\t%d\t%.3f\n", g, st.Cycles, st.LBPhases, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AblationHeuristic compares the Manhattan-distance bound against the
// Manhattan+linear-conflict bound on the same 15-puzzle instance under
// GP-DK: the stronger heuristic shrinks the problem size W.  Note the
// virtual cost model charges one Ucalc per expansion regardless of
// heuristic, matching the paper's accounting; the tradeoff a real machine
// would see between bound strength and per-node cost is outside the
// virtual clock.
func AblationHeuristic(scrambleSeed uint64, steps, p, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	inst := puzzle.Scramble(scrambleSeed, steps)
	results := map[string]metrics.Stats{}
	ws := map[string]int64{}
	for _, v := range []struct {
		name string
		dom  search.CostDomain[puzzle.Node]
	}{
		{"manhattan", puzzle.NewDomain(inst)},
		{"manhattan+lc", puzzle.NewDomainLC(inst)},
	} {
		bound, w := search.FinalIterationBound(v.dom)
		sch, err := simd.ParseScheme[puzzle.Node]("GP-DK")
		if err != nil {
			return nil, err
		}
		opts := simd.Options{P: p, Workers: workers}
		opts.Costs = simd.CM2Costs()
		st, err := simd.Run[puzzle.Node](search.NewBounded(v.dom, bound), sch, opts)
		if err != nil {
			return nil, err
		}
		results[v.name] = st
		ws[v.name] = w
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Ablation: heuristic strength (GP-DK, P=%d, scramble %d/%d)\n", p, scrambleSeed, steps)
		fmt.Fprintln(tww, "heuristic\tW\tNexpand\tNlb\tE")
		for _, name := range []string{"manhattan", "manhattan+lc"} {
			st := results[name]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%d\t%.3f\n", name, ws[name], st.Cycles, st.LBPhases, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// BaselineComparison runs the Section 8 baseline schemes next to GP-DK on
// the same workload.
func BaselineComparison(w int64, p, workers int, out io.Writer) (map[string]metrics.Stats, error) {
	results := map[string]metrics.Stats{}
	tree := synthetic.New(w, 0xAB5)
	schemes := baselines.All[synthetic.Node]()
	gpdk, err := simd.ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		return nil, err
	}
	schemes = append(schemes, gpdk)
	order := make([]string, 0, len(schemes))
	for _, sch := range schemes {
		opts := simd.Options{P: p, Workers: workers}
		opts.Costs = simd.CM2Costs()
		st, err := simd.Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			return nil, err
		}
		results[sch.Label] = st
		order = append(order, sch.Label)
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# Section 8 baselines vs GP-DK (W=%d, P=%d)\n", w, p)
		fmt.Fprintln(tww, "scheme\tNexpand\tNlb\ttransfers\tE")
		for _, label := range order {
			st := results[label]
			fmt.Fprintf(tww, "%s\t%d\t%d\t%d\t%.3f\n", label, st.Cycles, st.LBPhases, st.Transfers, st.Efficiency())
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MIMDComparison backs the paper's Section 9 claim that the SIMD schemes
// scale comparably to MIMD work stealing: GP-DK on the SIMD machine vs
// GRR/ARR/RP stealing, identical workload and cost constants.
func MIMDComparison(w int64, p, workers int, seed uint64, out io.Writer) (map[string]float64, error) {
	tree := synthetic.New(w, 0xAB6)
	results := map[string]float64{}

	sch, err := simd.ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		return nil, err
	}
	opts := simd.Options{P: p, Workers: workers}
	opts.Costs = simd.CM2Costs()
	st, err := simd.Run[synthetic.Node](tree, sch, opts)
	if err != nil {
		return nil, err
	}
	results["SIMD GP-DK"] = st.Efficiency()

	for _, pol := range []mimd.Policy{mimd.GRR, mimd.ARR, mimd.RP} {
		// Same network cost model as the SIMD run: the CM-2's
		// constant-cost router, so neither side pays for routing the
		// other is spared.
		ms, err := mimd.Run[synthetic.Node](tree, mimd.Options{
			P: p, Policy: pol, Seed: seed, Topology: topology.CM2{},
		})
		if err != nil {
			return nil, err
		}
		results["MIMD "+pol.String()] = ms.Efficiency()
	}
	if out != nil {
		tww := tw(out)
		fmt.Fprintf(tww, "# SIMD vs MIMD (W=%d, P=%d)\n", w, p)
		fmt.Fprintln(tww, "scheme\tE")
		for _, key := range []string{"SIMD GP-DK", "MIMD GRR", "MIMD ARR", "MIMD RP"} {
			fmt.Fprintf(tww, "%s\t%.3f\n", key, results[key])
		}
		if err := tww.Flush(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

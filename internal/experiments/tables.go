package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"simdtree/internal/analysis"
	"simdtree/internal/metrics"
	"simdtree/internal/simd"
)

// Alpha is the work-splitting quality assumed when evaluating the paper's
// closed forms (equation 18 and the V(P) bounds).  The paper notes the
// optimal-trigger equation "is not too sensitive on alpha and any
// reasonable approximation should be acceptable"; one half matches the
// intent of bottom-node splitting.
const Alpha = 0.5

// CostRatio is tlb/Ucalc for the paper's CM-2 measurements: a 13 ms
// load-balancing phase against a 30 ms node expansion cycle.
const CostRatio = 13.0 / 30.0

// Suite bundles the workloads and machine configuration the table
// experiments share.
type Suite[S any] struct {
	Workloads []Workload[S]
	P         int
	Workers   int
	Out       io.Writer
}

// run simulates one scheme on one workload with the suite's machine.
func (s *Suite[S]) run(label string, w Workload[S], lbScale float64) (metrics.Stats, error) {
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		return metrics.Stats{}, err
	}
	opts := simd.Options{P: s.P, Workers: s.Workers}
	opts.Costs = simd.CM2Costs()
	opts.Costs.LBScale = lbScale
	return simd.Run[S](w.Domain, sch, opts)
}

// CellResult is the (Nexpand, Nlb, E) triple the paper's tables report per
// scheme and problem size.
type CellResult struct {
	Nexpand   int
	Nlb       int
	Transfers int
	E         float64
}

func cell(st metrics.Stats) CellResult {
	return CellResult{Nexpand: st.Cycles, Nlb: st.LBPhases, Transfers: st.Transfers, E: st.Efficiency()}
}

// Table2Row is one (W, x) entry of Table 2.
type Table2Row struct {
	W   int64
	X   float64
	NGP CellResult
	GP  CellResult
	Xo  float64 // analytic optimal static trigger (equation 18)
}

// Table2 reproduces the paper's Table 2: static triggering at thresholds
// xs for both matching schemes over every workload, plus the analytic
// optimal trigger.
func (s *Suite[S]) Table2(xs []float64) ([]Table2Row, error) {
	var rows []Table2Row
	w := tw(s.Out)
	fmt.Fprintln(w, "# Table 2: static triggering (Nexpand / Nlb / E), paper layout")
	fmt.Fprintln(w, "W\tx\tnGP Nexp\tnGP Nlb\tnGP E\tGP Nexp\tGP Nlb\tGP E\txo")
	for _, wl := range s.Workloads {
		xo := analysis.OptimalStaticTrigger(float64(wl.W), float64(s.P), CostRatio, Alpha)
		for _, x := range xs {
			ngpStats, err := s.run(fmt.Sprintf("nGP-S%.2f", x), wl, 1)
			if err != nil {
				return rows, err
			}
			gpStats, err := s.run(fmt.Sprintf("GP-S%.2f", x), wl, 1)
			if err != nil {
				return rows, err
			}
			row := Table2Row{W: wl.W, X: x, NGP: cell(ngpStats), GP: cell(gpStats), Xo: xo}
			rows = append(rows, row)
			fmt.Fprintf(w, "%d\t%.2f\t%d\t%d\t%.2f\t%d\t%d\t%.2f\t%.2f\n",
				row.W, row.X,
				row.NGP.Nexpand, row.NGP.Nlb, row.NGP.E,
				row.GP.Nexpand, row.GP.Nlb, row.GP.E, row.Xo)
		}
	}
	return rows, w.Flush()
}

// Table3Row is one (W, x) efficiency probe around the analytic optimum.
type Table3Row struct {
	W  int64
	X  float64
	E  float64
	Xo float64
}

// Table3 reproduces the paper's Table 3: GP-S^x efficiencies for
// thresholds around the analytically computed optimum, verifying that
// equation 18 lands near the empirical best.
func (s *Suite[S]) Table3() ([]Table3Row, error) {
	offsets := []float64{-0.03, -0.02, -0.01, 0, 0.01, 0.02, 0.03}
	var rows []Table3Row
	w := tw(s.Out)
	fmt.Fprintln(w, "# Table 3: GP-S^x efficiency around the analytic optimum xo")
	fmt.Fprintln(w, "W\txo\tx\tE")
	for _, wl := range s.Workloads {
		xo := analysis.OptimalStaticTrigger(float64(wl.W), float64(s.P), CostRatio, Alpha)
		for _, off := range offsets {
			x := xo + off
			if x <= 0 || x >= 1 {
				continue
			}
			st, err := s.run(fmt.Sprintf("GP-S%.4f", x), wl, 1)
			if err != nil {
				return rows, err
			}
			row := Table3Row{W: wl.W, X: x, E: st.Efficiency(), Xo: xo}
			rows = append(rows, row)
			fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", row.W, row.Xo, row.X, row.E)
		}
	}
	return rows, w.Flush()
}

// Table4Row is one workload row of Table 4: the four dynamic-trigger
// scheme combinations.
type Table4Row struct {
	W     int64
	NGPDP CellResult
	GPDP  CellResult
	NGPDK CellResult
	GPDK  CellResult
}

// Table4 reproduces the paper's Table 4: both dynamic triggering schemes
// under both matchers, with the S^0.85 initial distribution (Section 7).
// *Nlb in the paper counts work transfers; CellResult.Transfers carries
// it.
func (s *Suite[S]) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	w := tw(s.Out)
	fmt.Fprintln(w, "# Table 4: dynamic triggering (Nexpand / *Nlb / E)")
	fmt.Fprintln(w, "W\tnGP-DP\tGP-DP\tnGP-DK\tGP-DK")
	for _, wl := range s.Workloads {
		var row Table4Row
		row.W = wl.W
		for _, e := range []struct {
			label string
			dst   *CellResult
		}{
			{"nGP-DP", &row.NGPDP},
			{"GP-DP", &row.GPDP},
			{"nGP-DK", &row.NGPDK},
			{"GP-DK", &row.GPDK},
		} {
			st, err := s.run(e.label, wl, 1)
			if err != nil {
				return rows, err
			}
			*e.dst = cell(st)
		}
		rows = append(rows, row)
		f := func(c CellResult) string {
			return fmt.Sprintf("%d/%d/%.2f", c.Nexpand, c.Transfers, c.E)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\n", row.W, f(row.NGPDP), f(row.GPDP), f(row.NGPDK), f(row.GPDK))
	}
	return rows, w.Flush()
}

// Table5Row is one cost-scale column of Table 5.
type Table5Row struct {
	LBScale float64
	DP      CellResult
	DK      CellResult
	SXo     CellResult
	Xo      float64
}

// Table5 reproduces the paper's Table 5: GP matching under D^P, D^K and
// the optimal static trigger when the load-balancing cost is inflated
// 12x and 16x, the regime where D^P degrades and D^K tracks S^xo.
func (s *Suite[S]) Table5(wl Workload[S]) ([]Table5Row, error) {
	var rows []Table5Row
	w := tw(s.Out)
	fmt.Fprintln(w, "# Table 5: GP matching under inflated load-balancing cost (Nexpand / Nlb / E)")
	fmt.Fprintf(w, "# workload %s, W=%d\n", wl.Name, wl.W)
	fmt.Fprintln(w, "tlb scale\tDP\tDK\tS^xo\txo")
	for _, scale := range []float64{1, 12, 16} {
		xo := analysis.OptimalStaticTrigger(float64(wl.W), float64(s.P), CostRatio*scale, Alpha)
		var row Table5Row
		row.LBScale = scale
		row.Xo = xo
		dp, err := s.run("GP-DP", wl, scale)
		if err != nil {
			return rows, err
		}
		dk, err := s.run("GP-DK", wl, scale)
		if err != nil {
			return rows, err
		}
		sx, err := s.run(fmt.Sprintf("GP-S%.4f", xo), wl, scale)
		if err != nil {
			return rows, err
		}
		row.DP, row.DK, row.SXo = cell(dp), cell(dk), cell(sx)
		rows = append(rows, row)
		f := func(c CellResult) string { return fmt.Sprintf("%d/%d/%.2f", c.Nexpand, c.Nlb, c.E) }
		fmt.Fprintf(w, "%.0fx\t%s\t%s\t%s\t%.3f\n", scale, f(row.DP), f(row.DK), f(row.SXo), xo)
	}
	return rows, w.Flush()
}

// Table6 prints the paper's Table 6 (symbolic isoefficiency functions) and
// the numeric exponents from the analysis package for a range of static
// thresholds.
func Table6(out io.Writer) error {
	w := tw(out)
	fmt.Fprintln(w, "# Table 6: isoefficiency functions of the matching schemes (x >= 0.5)")
	fmt.Fprintln(w, "architecture\tnGP-S^x\tGP-S^x")
	for _, r := range analysis.Table6() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Topology, r.NGP, r.GP)
	}
	fmt.Fprintln(w, "\n# Numeric forms for selected x:")
	fmt.Fprintln(w, "architecture\tx\tnGP\tGP")
	for _, topo := range []string{"hypercube", "mesh", "cm2"} {
		for _, x := range []float64{0.5, 0.7, 0.8, 0.9} {
			ngp, err := analysis.IsoStatic("nGP", x, topo)
			if err != nil {
				return fmt.Errorf("table6 %s x=%.1f: %w", topo, x, err)
			}
			gp, err := analysis.IsoStatic("GP", x, topo)
			if err != nil {
				return fmt.Errorf("table6 %s x=%.1f: %w", topo, x, err)
			}
			fmt.Fprintf(w, "%s\t%.1f\t%s\t%s\n", topo, x, ngp, gp)
		}
	}
	return w.Flush()
}

func tw(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}

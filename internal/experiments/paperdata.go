package experiments

// The paper's own CM-2 measurements (8192 processors), transcribed from
// Tables 2, 4 and 5, kept as data so reports can show paper-vs-measured
// side by side and so tests can verify that the repository's efficiency
// accounting reproduces the paper's published efficiencies from its
// published cycle and phase counts.

// PaperCell is one (Nexpand, Nlb-or-transfers, E) measurement.
type PaperCell struct {
	Nexpand int
	Nlb     int
	E       float64
}

// PaperTable2Entry is one (W, x) row of the paper's Table 2.
type PaperTable2Entry struct {
	W   int64
	X   float64
	NGP PaperCell
	GP  PaperCell
}

// PaperTable2 is the paper's Table 2: static triggering on 8192 CM-2
// processors.  Nlb counts load-balancing phases.
var PaperTable2 = []PaperTable2Entry{
	{941852, 0.50, PaperCell{198, 54, 0.52}, PaperCell{198, 54, 0.52}},
	{941852, 0.60, PaperCell{181, 77, 0.53}, PaperCell{174, 59, 0.58}},
	{941852, 0.70, PaperCell{164, 119, 0.53}, PaperCell{161, 69, 0.60}},
	{941852, 0.80, PaperCell{151, 138, 0.55}, PaperCell{150, 88, 0.61}},
	{941852, 0.90, PaperCell{153, 151, 0.52}, PaperCell{142, 122, 0.59}},

	{3055171, 0.50, PaperCell{606, 59, 0.59}, PaperCell{606, 59, 0.59}},
	{3055171, 0.60, PaperCell{542, 111, 0.63}, PaperCell{535, 62, 0.66}},
	{3055171, 0.70, PaperCell{459, 234, 0.67}, PaperCell{486, 76, 0.72}},
	{3055171, 0.80, PaperCell{420, 353, 0.65}, PaperCell{445, 98, 0.77}},
	{3055171, 0.90, PaperCell{409, 408, 0.64}, PaperCell{417, 152, 0.78}},

	{6073623, 0.50, PaperCell{1155, 56, 0.63}, PaperCell{1155, 56, 0.63}},
	{6073623, 0.60, PaperCell{1022, 133, 0.69}, PaperCell{1029, 63, 0.70}},
	{6073623, 0.70, PaperCell{894, 336, 0.71}, PaperCell{936, 78, 0.76}},
	{6073623, 0.80, PaperCell{809, 577, 0.70}, PaperCell{863, 104, 0.82}},
	{6073623, 0.90, PaperCell{774, 736, 0.67}, PaperCell{805, 170, 0.85}},

	{16110463, 0.50, PaperCell{2969, 52, 0.66}, PaperCell{2969, 52, 0.66}},
	{16110463, 0.60, PaperCell{2657, 177, 0.72}, PaperCell{2652, 61, 0.73}},
	{16110463, 0.70, PaperCell{2339, 655, 0.75}, PaperCell{2422, 75, 0.80}},
	{16110463, 0.80, PaperCell{2109, 1303, 0.74}, PaperCell{2240, 101, 0.86}},
	{16110463, 0.90, PaperCell{2015, 1756, 0.71}, PaperCell{2099, 172, 0.91}},
}

// PaperTable2Xo is the analytic-trigger column of Table 2 per problem
// size (equation 18 evaluated by the authors).
var PaperTable2Xo = map[int64]float64{
	941852:   0.82,
	3055171:  0.89,
	6073623:  0.92,
	16110463: 0.95,
}

// PaperTable4Entry is one problem-size row of the paper's Table 4.  Nlb
// in these cells counts work transfers (*Nlb), not phases.
type PaperTable4Entry struct {
	W     int64
	NGPDP PaperCell
	GPDP  PaperCell
	NGPDK PaperCell
	GPDK  PaperCell
}

// PaperTable4 is the paper's Table 4: dynamic triggering on 8192 CM-2
// processors.
var PaperTable4 = []PaperTable4Entry{
	{941852, PaperCell{153, 164, 0.51}, PaperCell{149, 100, 0.58}, PaperCell{176, 89, 0.53}, PaperCell{164, 70, 0.58}},
	{3055171, PaperCell{441, 312, 0.64}, PaperCell{426, 143, 0.76}, PaperCell{486, 179, 0.66}, PaperCell{440, 104, 0.77}},
	{6073623, PaperCell{842, 518, 0.68}, PaperCell{808, 170, 0.83}, PaperCell{905, 285, 0.72}, PaperCell{819, 132, 0.84}},
	{16110463, PaperCell{2191, 935, 0.75}, PaperCell{2055, 217, 0.92}, PaperCell{2293, 598, 0.76}, PaperCell{2067, 192, 0.92}},
}

// PaperTable5Entry is one cost-scale row of the paper's Table 5
// (W = 2067137, GP matching).
type PaperTable5Entry struct {
	Scale float64
	DP    PaperCell
	DK    PaperCell
	SXo   PaperCell
}

// PaperTable5 is the paper's Table 5.
var PaperTable5 = []PaperTable5Entry{
	{1, PaperCell{310, 110, 0.69}, PaperCell{314, 83, 0.71}, PaperCell{307, 87, 0.72}},
	{12, PaperCell{505, 102, 0.26}, PaperCell{487, 44, 0.32}, PaperCell{365, 58, 0.34}},
	{16, PaperCell{615, 109, 0.20}, PaperCell{533, 45, 0.28}, PaperCell{410, 50, 0.31}},
}

// PaperTable5W is the problem size of the paper's Table 5 runs.
const PaperTable5W = 2067137

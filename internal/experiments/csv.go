package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"simdtree/internal/trace"
)

// CSV emitters: machine-readable copies of the experiment rows, one file
// per table or figure, so results can be re-plotted outside this
// repository.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func itoa(v int) string   { return strconv.Itoa(v) }

// Table2CSV emits the Table 2 rows.
func Table2CSV(rows []Table2Row, w io.Writer) error {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			strconv.FormatInt(r.W, 10), f3(r.X),
			itoa(r.NGP.Nexpand), itoa(r.NGP.Nlb), f3(r.NGP.E),
			itoa(r.GP.Nexpand), itoa(r.GP.Nlb), f3(r.GP.E),
			f3(r.Xo),
		})
	}
	return writeCSV(w, []string{
		"w", "x", "ngp_nexpand", "ngp_nlb", "ngp_e", "gp_nexpand", "gp_nlb", "gp_e", "xo",
	}, body)
}

// Table3CSV emits the Table 3 rows.
func Table3CSV(rows []Table3Row, w io.Writer) error {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{strconv.FormatInt(r.W, 10), f3(r.Xo), f3(r.X), f3(r.E)})
	}
	return writeCSV(w, []string{"w", "xo", "x", "e"}, body)
}

// Table4CSV emits the Table 4 rows.
func Table4CSV(rows []Table4Row, w io.Writer) error {
	var body [][]string
	for _, r := range rows {
		cells := []string{strconv.FormatInt(r.W, 10)}
		for _, c := range []CellResult{r.NGPDP, r.GPDP, r.NGPDK, r.GPDK} {
			cells = append(cells, itoa(c.Nexpand), itoa(c.Transfers), f3(c.E))
		}
		body = append(body, cells)
	}
	return writeCSV(w, []string{
		"w",
		"ngp_dp_nexpand", "ngp_dp_transfers", "ngp_dp_e",
		"gp_dp_nexpand", "gp_dp_transfers", "gp_dp_e",
		"ngp_dk_nexpand", "ngp_dk_transfers", "ngp_dk_e",
		"gp_dk_nexpand", "gp_dk_transfers", "gp_dk_e",
	}, body)
}

// Table5CSV emits the Table 5 rows.
func Table5CSV(rows []Table5Row, w io.Writer) error {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			f3(r.LBScale),
			itoa(r.DP.Nexpand), itoa(r.DP.Nlb), f3(r.DP.E),
			itoa(r.DK.Nexpand), itoa(r.DK.Nlb), f3(r.DK.E),
			itoa(r.SXo.Nexpand), itoa(r.SXo.Nlb), f3(r.SXo.E),
			f3(r.Xo),
		})
	}
	return writeCSV(w, []string{
		"lb_scale",
		"dp_nexpand", "dp_nlb", "dp_e",
		"dk_nexpand", "dk_nlb", "dk_e",
		"sxo_nexpand", "sxo_nlb", "sxo_e",
		"xo",
	}, body)
}

// GridCSV emits every isoefficiency grid sample and the extracted
// iso-curve points (Figures 4 and 7).
func GridCSV(results []GridResult, w io.Writer) error {
	var body [][]string
	for _, res := range results {
		for _, s := range res.Samples {
			body = append(body, []string{res.Scheme, "sample", itoa(s.P), strconv.FormatInt(s.W, 10), f3(s.E)})
		}
		for lv, pts := range res.Curves {
			for _, pt := range pts {
				body = append(body, []string{res.Scheme, fmt.Sprintf("iso_%.2f", lv), itoa(pt.P), f3(pt.W), f3(lv)})
			}
		}
	}
	return writeCSV(w, []string{"scheme", "kind", "p", "w", "e"}, body)
}

// TraceCSV emits a per-cycle trace (Figures 1 and 8).
func TraceCSV(tr *trace.Trace, w io.Writer) error {
	var body [][]string
	for _, s := range tr.Samples {
		body = append(body, []string{
			itoa(s.Cycle), itoa(s.Active),
			strconv.FormatInt(int64(s.R1), 10), strconv.FormatInt(int64(s.R2), 10),
		})
	}
	return writeCSV(w, []string{"cycle", "active", "r1_ns", "r2_ns"}, body)
}

// AnomalyCSV emits the DFBB anomaly measurements.
func AnomalyCSV(rows []AnomalyRow, w io.Writer) error {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			strconv.FormatUint(r.Seed, 10), itoa(r.P),
			strconv.FormatInt(r.SerialW, 10), strconv.FormatInt(r.ParallelW, 10),
			f3(r.Ratio), strconv.FormatBool(r.Optimal),
		})
	}
	return writeCSV(w, []string{"seed", "p", "serial_w", "parallel_w", "ratio", "optimal"}, body)
}

package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"simdtree/internal/analysis"
	"simdtree/internal/trace"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return records
}

func TestTable2CSV(t *testing.T) {
	rows := []Table2Row{{
		W: 941852, X: 0.9,
		NGP: CellResult{Nexpand: 153, Nlb: 151, E: 0.52},
		GP:  CellResult{Nexpand: 142, Nlb: 122, E: 0.59},
		Xo:  0.82,
	}}
	var buf bytes.Buffer
	if err := Table2CSV(rows, &buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 2 || len(recs[0]) != 9 {
		t.Fatalf("records %v", recs)
	}
	if recs[1][0] != "941852" || recs[1][5] != "142" {
		t.Errorf("row %v", recs[1])
	}
}

func TestTable3And4And5CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3CSV([]Table3Row{{W: 5, Xo: 0.8, X: 0.79, E: 0.6}}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, &buf)); got != 2 {
		t.Errorf("table3: %d records", got)
	}

	buf.Reset()
	if err := Table4CSV([]Table4Row{{W: 5}}, &buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 2 || len(recs[1]) != 13 {
		t.Errorf("table4: %v", recs)
	}

	buf.Reset()
	if err := Table5CSV([]Table5Row{{LBScale: 16}}, &buf); err != nil {
		t.Fatal(err)
	}
	recs = parseCSV(t, &buf)
	if len(recs) != 2 || recs[1][0] != "16.0000" {
		t.Errorf("table5: %v", recs)
	}
}

func TestGridCSV(t *testing.T) {
	res := []GridResult{{
		Scheme:  "GP-S0.90",
		Samples: []analysis.Sample{{P: 16, W: 1000, E: 0.5}},
		Curves:  map[float64][]analysis.Point{0.5: {{P: 16, W: 900}}},
	}}
	var buf bytes.Buffer
	if err := GridCSV(res, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sample") || !strings.Contains(out, "iso_0.50") {
		t.Errorf("grid CSV missing kinds:\n%s", out)
	}
}

func TestTraceAndAnomalyCSV(t *testing.T) {
	tr := &trace.Trace{}
	tr.RecordCycle(trace.Sample{Cycle: 0, Active: 7})
	var buf bytes.Buffer
	if err := TraceCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, &buf)); got != 2 {
		t.Errorf("trace: %d records", got)
	}

	buf.Reset()
	if err := AnomalyCSV([]AnomalyRow{{Seed: 1, P: 16, SerialW: 10, ParallelW: 30, Ratio: 3, Optimal: true}}, &buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 2 || recs[1][5] != "true" {
		t.Errorf("anomaly: %v", recs)
	}
}

package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"simdtree/internal/synthetic"
)

func tinySyntheticSuite(out io.Writer) *Suite[synthetic.Node] {
	sc := TinyScale
	return &Suite[synthetic.Node]{
		Workloads: SyntheticWorkloads(sc.Tiers),
		P:         sc.P,
		Workers:   sc.Workers,
		Out:       out,
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"full", "quick", "tiny"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("gigantic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSyntheticWorkloadsExactSizes(t *testing.T) {
	wls := SyntheticWorkloads([]int64{1000, 5000})
	if len(wls) != 2 || wls[0].W != 1000 || wls[1].W != 5000 {
		t.Fatalf("workloads %+v", wls)
	}
}

// TestTable2Shape runs Table 2 at tiny scale and asserts the paper-shape
// invariants: at x=0.5 the schemes coincide; the nGP-GP phase gap is
// non-negative at every threshold; efficiencies are sane.
func TestTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	s := tinySyntheticSuite(&buf)
	rows, err := s.Table2([]float64{0.50, 0.90})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Workloads)*2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.X == 0.50 && r.NGP.Nlb != r.GP.Nlb {
			t.Errorf("W=%d x=0.5: phase counts differ (nGP %d, GP %d)", r.W, r.NGP.Nlb, r.GP.Nlb)
		}
		if r.NGP.Nlb < r.GP.Nlb {
			t.Errorf("W=%d x=%.2f: GP performed more phases than nGP", r.W, r.X)
		}
		for _, e := range []float64{r.NGP.E, r.GP.E} {
			if e <= 0 || e > 1 {
				t.Errorf("W=%d x=%.2f: efficiency %f out of range", r.W, r.X, e)
			}
		}
		if r.Xo <= 0 || r.Xo >= 1 {
			t.Errorf("analytic trigger %f out of range", r.Xo)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("missing table header in output")
	}
}

func TestTable3RunsAroundOptimum(t *testing.T) {
	s := tinySyntheticSuite(io.Discard)
	s.Workloads = s.Workloads[:1]
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.X <= 0 || r.X >= 1 || r.E <= 0 || r.E > 1 {
			t.Errorf("bad row %+v", r)
		}
	}
}

// TestTable4Shape asserts GP dominates nGP under both dynamic triggers.
func TestTable4Shape(t *testing.T) {
	s := tinySyntheticSuite(io.Discard)
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GPDP.E < r.NGPDP.E-0.05 {
			t.Errorf("W=%d: GP-DP (%.3f) far below nGP-DP (%.3f)", r.W, r.GPDP.E, r.NGPDP.E)
		}
		if r.GPDK.E < r.NGPDK.E-0.05 {
			t.Errorf("W=%d: GP-DK (%.3f) far below nGP-DK (%.3f)", r.W, r.GPDK.E, r.NGPDK.E)
		}
	}
}

// TestTable5Shape asserts the load-balancing-cost story: every scheme
// degrades as tlb inflates, and at 16x D^K is at least as good as D^P.
func TestTable5Shape(t *testing.T) {
	s := tinySyntheticSuite(io.Discard)
	rows, err := s.Table5(s.Workloads[len(s.Workloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].LBScale != 1 || rows[2].LBScale != 16 {
		t.Fatalf("scales %v %v", rows[0].LBScale, rows[2].LBScale)
	}
	for _, pair := range [][2]int{{0, 1}, {1, 2}} {
		if rows[pair[1]].DK.E > rows[pair[0]].DK.E+0.01 {
			t.Errorf("DK efficiency rose with more expensive LB: %+v", rows)
		}
	}
	last := rows[2]
	if last.DK.E < last.DP.E-0.01 {
		t.Errorf("at 16x cost, DK (%.3f) should not trail DP (%.3f)", last.DK.E, last.DP.E)
	}
	if last.Xo >= rows[0].Xo {
		t.Error("analytic trigger should fall as LB cost rises")
	}
}

func TestTable6Prints(t *testing.T) {
	var buf bytes.Buffer
	Table6(&buf)
	out := buf.String()
	for _, frag := range []string{"hypercube", "mesh", "log^3", "GP-S^x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 6 output missing %q", frag)
		}
	}
}

func TestFig1EmitsTriggerGeometry(t *testing.T) {
	var buf bytes.Buffer
	s := tinySyntheticSuite(&buf)
	tr, err := s.Fig1("GP-DK", s.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	// R2 for DK is L*P, which is positive once a phase has run.
	positives := 0
	for _, smp := range tr.Samples {
		if smp.R2 > 0 {
			positives++
		}
	}
	if positives == 0 {
		t.Error("R2 never positive; trigger geometry missing")
	}
	if !strings.Contains(buf.String(), "R1(ms)") {
		t.Error("missing column header")
	}
}

func TestFig3Derivation(t *testing.T) {
	rows := []Table2Row{
		{W: 1000, X: 0.9, NGP: CellResult{Nlb: 30}, GP: CellResult{Nlb: 20}},
	}
	var buf bytes.Buffer
	Fig3(rows, &buf)
	if !strings.Contains(buf.String(), "10") {
		t.Error("difference column missing")
	}
}

// TestIsoGridShape runs a miniature Figure 4 grid and checks the headline
// scalability result: nGP-S0.90's isoefficiency curves grow at least as
// fast as GP-S0.90's.
func TestIsoGridShape(t *testing.T) {
	sc := TinyScale
	levels := []float64{0.50, 0.65}
	results, err := IsoGrid([]string{"GP-S0.90", "nGP-S0.90"}, sc.GridPs, sc.GridWs, sc.Workers, levels, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	gp, ngp := results[0], results[1]
	for _, lv := range levels {
		gpPts, ngpPts := gp.Curves[lv], ngp.Curves[lv]
		if len(gpPts) == 0 {
			t.Errorf("GP curve at E=%.2f empty", lv)
			continue
		}
		// At every shared machine size the nGP curve needs at least
		// (roughly) as much W as GP.
		byP := map[int]float64{}
		for _, pt := range gpPts {
			byP[pt.P] = pt.W
		}
		for _, pt := range ngpPts {
			if gw, ok := byP[pt.P]; ok && pt.W < gw*0.8 {
				t.Errorf("E=%.2f P=%d: nGP needs less work (%.0f) than GP (%.0f)", lv, pt.P, pt.W, gw)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	s := tinySyntheticSuite(io.Discard)
	series, err := s.Fig8(s.Workloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4 (2 schemes x 2 costs)", len(series))
	}
	for _, sr := range series {
		if len(sr.Active) == 0 {
			t.Errorf("%s @%.0fx: empty series", sr.Label, sr.LBScale)
		}
	}
}

func TestAblations(t *testing.T) {
	const w = 4000
	split, err := AblationSplitters(w, 64, 0.85, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 3 {
		t.Fatalf("splitter ablation returned %d entries", len(split))
	}
	// The deliberately poor top-node splitter should not beat bottom-node.
	if split["top-node"].Efficiency() > split["bottom-node"].Efficiency()+0.05 {
		t.Errorf("top-node (%.3f) beat bottom-node (%.3f)",
			split["top-node"].Efficiency(), split["bottom-node"].Efficiency())
	}

	inits, err := AblationInit(w, 64, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(inits) != 4 {
		t.Fatalf("init ablation returned %d entries", len(inits))
	}

	tr, err := AblationTransfers(w, 64, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	multi, single := tr["GP-DP-multi"], tr["GP-DP-single"]
	// Per phase, the multi policy transfers at least as much as single (a
	// phase may run several matching rounds); total counts can go either
	// way because better balance needs fewer phases.
	perMulti := float64(multi.Transfers) / float64(multi.LBPhases)
	perSingle := float64(single.Transfers) / float64(single.LBPhases)
	if perMulti < perSingle {
		t.Errorf("multi-transfer DP moved less per phase (%.1f) than single (%.1f)", perMulti, perSingle)
	}

	topo, err := AblationTopology(w, 64, 0.85, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if topo["crossbar"].Efficiency() < topo["mesh"].Efficiency() {
		t.Error("free communication should not be less efficient than mesh costs")
	}

	heur, err := AblationHeuristic(2023, 24, 64, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if heur["manhattan+lc"].W > heur["manhattan"].W {
		t.Errorf("linear conflict expanded more nodes (%d) than Manhattan alone (%d)",
			heur["manhattan+lc"].W, heur["manhattan"].W)
	}
}

func TestBaselineAndMIMDComparisons(t *testing.T) {
	base, err := BaselineComparison(4000, 64, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 5 {
		t.Fatalf("baseline comparison returned %d entries", len(base))
	}
	m, err := MIMDComparison(4000, 64, 2, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for key, e := range m {
		if e <= 0 || e > 1 {
			t.Errorf("%s: efficiency %f out of range", key, e)
		}
	}
}

// TestVariance checks the instance-variance experiment: spreads are
// bounded and GP-S0.90 averages at least nGP-S0.90.
func TestVariance(t *testing.T) {
	rows, err := Variance(20000, 64, 2, 4, []string{"GP-S0.90", "nGP-S0.90"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	byScheme := map[string]VarianceRow{}
	for _, r := range rows {
		if r.MinE > r.MeanE || r.MeanE > r.MaxE {
			t.Errorf("%s: min/mean/max out of order: %+v", r.Scheme, r)
		}
		if r.StdDev < 0 || r.StdDev > 0.2 {
			t.Errorf("%s: implausible stddev %f", r.Scheme, r.StdDev)
		}
		byScheme[r.Scheme] = r
	}
	if byScheme["GP-S0.90"].MeanE < byScheme["nGP-S0.90"].MeanE-0.02 {
		t.Errorf("GP mean %f below nGP mean %f", byScheme["GP-S0.90"].MeanE, byScheme["nGP-S0.90"].MeanE)
	}
}

// TestPuzzleWorkloadsSmallTargets exercises the instance calibration on
// small tiers (fast); each workload must land within a factor of two.
func TestPuzzleWorkloadsSmallTargets(t *testing.T) {
	targets := []int64{500, 3000}
	wls := PuzzleWorkloads(targets, nil)
	if len(wls) != 2 {
		t.Fatalf("%d workloads", len(wls))
	}
	for i, wl := range wls {
		lo, hi := targets[i]/2, targets[i]*2
		if wl.W < lo || wl.W > hi {
			t.Errorf("tier %d: W=%d outside [%d, %d]", i, wl.W, lo, hi)
		}
	}
}

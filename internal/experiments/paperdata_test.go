package experiments

import (
	"math"
	"testing"
	"time"
)

// TestPaperTable2SelfConsistent verifies that the repository's efficiency
// accounting (Section 3.1 as implemented in internal/metrics) reproduces
// the paper's published efficiencies from its published cycle and phase
// counts under the paper's own cost constants (Ucalc = 30ms, tlb = 13ms,
// P = 8192).  This cross-checks both the transcription of the table and
// the cost model.
func TestPaperTable2SelfConsistent(t *testing.T) {
	const (
		p     = 8192
		ucalc = 30 * time.Millisecond
		tlb   = 13 * time.Millisecond
	)
	for _, e := range PaperTable2 {
		for _, cell := range []struct {
			name string
			c    PaperCell
		}{{"nGP", e.NGP}, {"GP", e.GP}} {
			tpar := time.Duration(cell.c.Nexpand)*ucalc + time.Duration(cell.c.Nlb)*tlb
			eff := float64(e.W) * float64(ucalc) / (float64(p) * float64(tpar))
			if math.Abs(eff-cell.c.E) > 0.011 {
				t.Errorf("W=%d x=%.2f %s: accounting gives E=%.3f, paper prints %.2f",
					e.W, e.X, cell.name, eff, cell.c.E)
			}
		}
	}
}

// TestPaperTable2Shape re-verifies, on the paper's own data, the claims
// the reproduction must reproduce: schemes identical at x=0.5, GP's phase
// count no larger than nGP's, and the Nlb gap growing with x for each W.
func TestPaperTable2Shape(t *testing.T) {
	lastGap := map[int64]int{}
	for _, e := range PaperTable2 {
		if e.X == 0.50 {
			if e.NGP != e.GP {
				t.Errorf("W=%d: x=0.5 rows differ", e.W)
			}
		}
		if e.GP.Nlb > e.NGP.Nlb {
			t.Errorf("W=%d x=%.2f: GP phases exceed nGP", e.W, e.X)
		}
		gap := e.NGP.Nlb - e.GP.Nlb
		// Monotone growth of the gap holds for the larger problems; for
		// small W the number of phases is capped by the number of cycles
		// and the gap saturates (the paper's Section 4.2 "saturation"
		// remark and Figure 3's flattening small-W curve).
		if prev, ok := lastGap[e.W]; ok && gap < prev && e.W > 1_000_000 {
			t.Errorf("W=%d x=%.2f: phase gap shrank (%d after %d)", e.W, e.X, gap, prev)
		}
		lastGap[e.W] = gap
	}
}

// TestPaperTable4Shape: GP dominates nGP under both dynamic triggers in
// the paper's own data.
func TestPaperTable4Shape(t *testing.T) {
	for _, e := range PaperTable4 {
		if e.GPDP.E < e.NGPDP.E {
			t.Errorf("W=%d: paper has GP-DP below nGP-DP", e.W)
		}
		if e.GPDK.E < e.NGPDK.E {
			t.Errorf("W=%d: paper has GP-DK below nGP-DK", e.W)
		}
		if e.GPDP.Nlb > e.NGPDP.Nlb {
			t.Errorf("W=%d: paper has GP-DP transferring more than nGP-DP", e.W)
		}
	}
}

// TestPaperTable5Shape: D^K's advantage over D^P grows with the
// load-balancing cost; the paper quantifies it as 23% at 12x and 40% at
// 16x.
func TestPaperTable5Shape(t *testing.T) {
	for _, e := range PaperTable5 {
		if e.DK.E < e.DP.E {
			t.Errorf("scale %vx: paper has DK below DP", e.Scale)
		}
		if e.SXo.E < e.DK.E-0.01 {
			t.Errorf("scale %vx: paper has S^xo below DK", e.Scale)
		}
	}
	adv12 := PaperTable5[1].DK.E/PaperTable5[1].DP.E - 1
	adv16 := PaperTable5[2].DK.E/PaperTable5[2].DP.E - 1
	if math.Abs(adv12-0.23) > 0.01 || math.Abs(adv16-0.40) > 0.01 {
		t.Errorf("DK advantage %v%% / %v%%, paper quotes 23%% / 40%%", adv12*100, adv16*100)
	}
}

// TestPaperXoOrdering: the analytic triggers rise with W.
func TestPaperXoOrdering(t *testing.T) {
	prev := 0.0
	for _, w := range []int64{941852, 3055171, 6073623, 16110463} {
		xo := PaperTable2Xo[w]
		if xo <= prev {
			t.Errorf("xo not increasing at W=%d", w)
		}
		prev = xo
	}
}

package experiments

import (
	"fmt"
	"io"
	"math"

	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
)

// VarianceRow summarises one scheme's efficiency distribution across
// problem instances of the same size.
type VarianceRow struct {
	Scheme string
	W      int64
	Runs   int
	MeanE  float64
	MinE   float64
	MaxE   float64
	StdDev float64
}

// Variance measures instance-to-instance spread: the paper's tables rest
// on one instance per problem size, so this experiment quantifies how
// much the efficiencies move across `runs` different trees of identical
// size.  Tight spreads justify the paper's single-instance methodology;
// they also separate scheme effects from instance luck.
func Variance(w int64, p, workers, runs int, labels []string, out io.Writer) ([]VarianceRow, error) {
	if runs < 2 {
		runs = 5
	}
	var rows []VarianceRow
	for _, label := range labels {
		var es []float64
		for r := 0; r < runs; r++ {
			sch, err := simd.ParseScheme[synthetic.Node](label)
			if err != nil {
				return nil, err
			}
			opts := simd.Options{P: p, Workers: workers}
			opts.Costs = simd.CM2Costs()
			st, err := simd.Run[synthetic.Node](synthetic.New(w, 0x5EED0+uint64(r)*7919), sch, opts)
			if err != nil {
				return nil, err
			}
			es = append(es, st.Efficiency())
		}
		row := VarianceRow{Scheme: label, W: w, Runs: runs}
		row.MinE, row.MaxE = es[0], es[0]
		for _, e := range es {
			row.MeanE += e
			if e < row.MinE {
				row.MinE = e
			}
			if e > row.MaxE {
				row.MaxE = e
			}
		}
		row.MeanE /= float64(runs)
		for _, e := range es {
			d := e - row.MeanE
			row.StdDev += d * d
		}
		row.StdDev = math.Sqrt(row.StdDev / float64(runs))
		rows = append(rows, row)
	}
	if out != nil {
		w := tw(out)
		fmt.Fprintf(w, "# Instance variance: %d instances per scheme, identical size\n", runs)
		fmt.Fprintln(w, "scheme\tW\tmean E\tmin\tmax\tstddev")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.4f\n",
				r.Scheme, r.W, r.MeanE, r.MinE, r.MaxE, r.StdDev)
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

package experiments

import (
	"io"
	"testing"

	"simdtree/internal/synthetic"
)

// TestQuickScaleIntegration runs a slice of the quick-scale suite end to
// end (seconds, skipped under -short) and asserts the paper's headline
// numbers hold at that scale: GP-S0.90 and GP-DK reach high efficiency on
// a 250k-node problem over 256 processors, and nGP trails GP.
func TestQuickScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale integration skipped in -short mode")
	}
	s := &Suite[synthetic.Node]{
		Workloads: SyntheticWorkloads([]int64{250_000}),
		P:         256,
		Workers:   2,
		Out:       io.Discard,
	}
	rows, err := s.Table2([]float64{0.50, 0.90})
	if err != nil {
		t.Fatal(err)
	}
	var at90 Table2Row
	for _, r := range rows {
		if r.X == 0.90 {
			at90 = r
		}
	}
	if at90.GP.E < 0.80 {
		t.Errorf("GP-S0.90 efficiency %.3f at W=250k/P=256, want >= 0.80", at90.GP.E)
	}
	if at90.GP.E < at90.NGP.E {
		t.Errorf("GP (%.3f) below nGP (%.3f) at x=0.9", at90.GP.E, at90.NGP.E)
	}
	if at90.GP.Nlb > at90.NGP.Nlb {
		t.Errorf("GP phases (%d) exceed nGP's (%d)", at90.GP.Nlb, at90.NGP.Nlb)
	}

	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if e := t4[0].GPDK.E; e < 0.80 {
		t.Errorf("GP-DK efficiency %.3f, want >= 0.80 (dynamic tracks optimal static)", e)
	}
}

package experiments

import (
	"fmt"
	"io"

	"simdtree/internal/analysis"
	"simdtree/internal/plot"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
)

// Fig1 regenerates the trigger geometry of Figure 1 from a live run: the
// per-cycle R1 and R2 quantities of the requested dynamic trigger
// ("GP-DP" or "GP-DK").  A load balance fires whenever R1 >= R2.
func (s *Suite[S]) Fig1(label string, wl Workload[S]) (*trace.Trace, error) {
	tr := &trace.Trace{}
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		return nil, err
	}
	opts := simd.Options{P: s.P, Workers: s.Workers, Trace: tr}
	opts.Costs = simd.CM2Costs()
	if _, err := simd.Run[S](wl.Domain, sch, opts); err != nil {
		return nil, err
	}
	w := tw(s.Out)
	fmt.Fprintf(w, "# Figure 1: per-cycle trigger quantities for %s on %s\n", label, wl.Name)
	fmt.Fprintln(w, "cycle\tactive\tR1(ms)\tR2(ms)")
	stride := len(tr.Samples)/60 + 1
	for i, smp := range tr.Samples {
		if i%stride != 0 {
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\n", smp.Cycle, smp.Active,
			float64(smp.R1)/1e6, float64(smp.R2)/1e6)
	}
	return tr, w.Flush()
}

// Fig3 derives Figure 3 from Table 2 data: the difference in the number
// of load-balancing phases performed by nGP and GP as a function of the
// static threshold, for each problem size.  The gap should grow with both
// x and W.
func Fig3(rows []Table2Row, out io.Writer) error {
	w := tw(out)
	fmt.Fprintln(w, "# Figure 3: Nlb(nGP) - Nlb(GP) vs static threshold x")
	fmt.Fprintln(w, "W\tx\tnGP Nlb\tGP Nlb\tdiff")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%d\t%d\t%d\n", r.W, r.X, r.NGP.Nlb, r.GP.Nlb, r.NGP.Nlb-r.GP.Nlb)
	}
	return w.Flush()
}

// GridResult is the outcome of one scheme's isoefficiency grid.
type GridResult struct {
	Scheme  string
	Samples []analysis.Sample
	Curves  map[float64][]analysis.Point
	// Exponents maps an efficiency level to the fitted growth exponent b
	// in W ~ (P log P)^b for its curve.
	Exponents map[float64]float64
}

// IsoGrid runs the isoefficiency grids behind Figures 4 and 7: every
// scheme over the cartesian product of machine sizes and synthetic
// problem sizes, then extracts experimental isoefficiency curves at the
// given efficiency levels.  Flat W/(P log P) — growth exponent near 1 —
// is the paper's O(P log P) verdict for GP; rising curves reproduce nGP's
// degradation.
func IsoGrid(labels []string, ps []int, ws []int64, workers int, levels []float64, out io.Writer) ([]GridResult, error) {
	var results []GridResult
	for _, label := range labels {
		res := GridResult{Scheme: label}
		for _, p := range ps {
			for _, wSize := range ws {
				sch, err := simd.ParseScheme[synthetic.Node](label)
				if err != nil {
					return nil, err
				}
				opts := simd.Options{P: p, Workers: workers}
				opts.Costs = simd.CM2Costs()
				st, err := simd.Run[synthetic.Node](synthetic.New(wSize, 0xBEEF^uint64(wSize)), sch, opts)
				if err != nil {
					return nil, err
				}
				res.Samples = append(res.Samples, analysis.Sample{P: p, W: st.W, E: st.Efficiency()})
			}
		}
		res.Curves = analysis.IsoCurves(res.Samples, levels)
		res.Exponents = make(map[float64]float64, len(levels))
		for _, lv := range levels {
			if b, ok := analysis.GrowthExponent(res.Curves[lv]); ok {
				res.Exponents[lv] = b
			}
		}
		results = append(results, res)
	}
	if out != nil {
		if err := printGrid(results, levels, out); err != nil {
			return results, err
		}
	}
	return results, nil
}

func printGrid(results []GridResult, levels []float64, out io.Writer) error {
	w := tw(out)
	fmt.Fprintln(w, "# Experimental isoefficiency curves (Figures 4/7 style)")
	for _, res := range results {
		fmt.Fprintf(w, "\n## scheme %s\n", res.Scheme)
		fmt.Fprintln(w, "E\tP\tW\tW/(P log2 P)")
		for _, lv := range levels {
			for _, pt := range res.Curves[lv] {
				norm := pt.W / (float64(pt.P) * log2f(pt.P))
				fmt.Fprintf(w, "%.2f\t%d\t%.0f\t%.1f\n", lv, pt.P, pt.W, norm)
			}
			if b, ok := res.Exponents[lv]; ok {
				fmt.Fprintf(w, "%.2f\tfit\tW ~ (P log P)^%.2f\t\n", lv, b)
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		// The paper plots W against P log P per efficiency level; flat
		// normalised curves confirm O(P log P) isoefficiency.
		var series []plot.Series
		for _, lv := range levels {
			s := plot.Series{Name: fmt.Sprintf("E=%.2f", lv)}
			for _, pt := range res.Curves[lv] {
				s.X = append(s.X, float64(pt.P)*log2f(pt.P))
				s.Y = append(s.Y, pt.W)
			}
			series = append(series, s)
		}
		fmt.Fprintln(out, plot.Render(plot.Config{
			Title: res.Scheme, XLabel: "P log2 P", YLabel: "W", LogY: true,
		}, series...))
	}
	return w.Flush()
}

func log2f(p int) float64 {
	l := 0.0
	for v := p; v > 1; v >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// Fig4Labels are the schemes of the paper's Figure 4 panels.
func Fig4Labels() []string {
	return []string{"GP-S0.90", "nGP-S0.90", "nGP-S0.80", "nGP-S0.70"}
}

// Fig7Labels are the schemes of the paper's Figure 7 panels.
func Fig7Labels() []string {
	return []string{"GP-DK", "GP-DP", "nGP-DK", "nGP-DP"}
}

// Fig8Series is one panel of Figure 8: the active-processor count per
// node-expansion cycle.
type Fig8Series struct {
	Label   string
	LBScale float64
	Active  []int
}

// Fig8 reproduces Figure 8: active processors per cycle for GP-D^P and
// GP-D^K at the measured and at 16x-inflated load-balancing cost.  At the
// high cost, D^P lets the active count sag far lower between phases than
// D^K does — the paper's Section 6.1 failure mode.
func (s *Suite[S]) Fig8(wl Workload[S]) ([]Fig8Series, error) {
	var series []Fig8Series
	for _, scale := range []float64{1, 16} {
		for _, label := range []string{"GP-DP", "GP-DK"} {
			tr := &trace.Trace{}
			sch, err := simd.ParseScheme[S](label)
			if err != nil {
				return nil, err
			}
			opts := simd.Options{P: s.P, Workers: s.Workers, Trace: tr}
			opts.Costs = simd.CM2Costs()
			opts.Costs.LBScale = scale
			if _, err := simd.Run[S](wl.Domain, sch, opts); err != nil {
				return nil, err
			}
			series = append(series, Fig8Series{Label: label, LBScale: scale, Active: tr.ActiveSeries()})
		}
	}
	w := tw(s.Out)
	fmt.Fprintf(w, "# Figure 8: active processors per cycle on %s (W=%d, P=%d)\n", wl.Name, wl.W, s.P)
	for _, sr := range series {
		min := sr.Active[0]
		for _, a := range sr.Active {
			if a < min {
				min = a
			}
		}
		fmt.Fprintf(w, "\n## %s at %.0fx tlb: %d cycles, min active %d\n", sr.Label, sr.LBScale, len(sr.Active), min)
		if err := w.Flush(); err != nil {
			return series, err
		}
		ys := make([]float64, len(sr.Active))
		for i, a := range sr.Active {
			ys[i] = float64(a)
		}
		fmt.Fprintln(s.Out, plot.Line(plot.Config{
			Title:  fmt.Sprintf("%s @ %.0fx tlb", sr.Label, sr.LBScale),
			XLabel: "node expansion cycle", YLabel: "active processors",
		}, ys))
	}
	return series, w.Flush()
}

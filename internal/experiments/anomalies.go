package experiments

import (
	"fmt"
	"io"

	"simdtree/internal/knapsack"
	"simdtree/internal/search"
	"simdtree/internal/simd"
)

// AnomalyRow records one parallel DFBB run against its serial baseline.
type AnomalyRow struct {
	Seed      uint64
	P         int
	SerialW   int64
	ParallelW int64
	Ratio     float64 // ParallelW / SerialW; <1 acceleration, >1 deceleration
	Optimal   bool    // parallel search found the true optimum
}

// Anomalies measures the speedup anomalies of parallel depth-first
// branch-and-bound, the effect Section 3 of the paper explicitly assumes
// away ("we study the performance ... in absence of such speedup
// anomalies"): on knapsack instances, the number of nodes the parallel
// search expands differs from the serial count because incumbents arrive
// in a different order.  The paper's own workloads avoid this by
// exhaustive bounded search; this experiment shows what that choice
// dodges.
func Anomalies(items int, seeds []uint64, ps []int, workers int, out io.Writer) ([]AnomalyRow, error) {
	var rows []AnomalyRow
	for _, seed := range seeds {
		prob := knapsack.RandomCorrelated(items, seed)
		want := prob.OptimalByDP()
		serialCost, serialW, ok := search.Optimum[knapsack.Node](prob)
		if !ok || -serialCost != want {
			return nil, fmt.Errorf("anomalies: serial DFBB wrong on seed %d", seed)
		}
		for _, p := range ps {
			sch, err := simd.ParseScheme[knapsack.Node]("GP-DK")
			if err != nil {
				return nil, err
			}
			b := search.NewDFBB[knapsack.Node](prob)
			st, err := simd.Run[knapsack.Node](b, sch, simd.Options{P: p, Workers: workers})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AnomalyRow{
				Seed:      seed,
				P:         p,
				SerialW:   serialW,
				ParallelW: st.W,
				Ratio:     float64(st.W) / float64(serialW),
				Optimal:   -b.In.Best() == want,
			})
		}
	}
	if out != nil {
		w := tw(out)
		fmt.Fprintln(w, "# Speedup anomalies of parallel DFBB (knapsack, GP-DK)")
		fmt.Fprintln(w, "seed\tP\tserial W\tparallel W\tratio\toptimal")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.3f\t%v\n", r.Seed, r.P, r.SerialW, r.ParallelW, r.Ratio, r.Optimal)
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteReport generates the full markdown report at tiny scale and
// checks it contains every experiment section with tables and verdicts.
func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	s := tinySyntheticSuite(&buf) // suite text output must NOT reach buf
	var md bytes.Buffer
	if err := WriteReport(s, TinyScale, &md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, frag := range []string{
		"# Experiment report",
		"## Table 2",
		"## Table 3",
		"## Table 4",
		"## Table 5",
		"## Table 6",
		"## Figure 4",
		"## Figure 7",
		"## Figure 8",
		"## Section 8 baselines",
		"## SIMD vs MIMD",
		"## Speedup anomalies",
		"**Verdict:**",
		"|---|",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	if strings.Contains(out, "\t") {
		t.Error("report contains raw tab-formatted runner output")
	}
	if buf.Len() != 0 {
		t.Errorf("report generation leaked %d bytes to the suite writer", buf.Len())
	}
	if got := strings.Count(out, "**Verdict:**"); got < 10 {
		t.Errorf("only %d verdicts, want at least 10", got)
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 2-6, Figures 1, 3, 4, 7, 8) plus the ablations and
// the MIMD comparison described in DESIGN.md.  Each experiment is a
// function that runs the required simulations and writes the paper-shaped
// rows to an io.Writer; cmd/experiments exposes them as subcommands and
// the repository's top-level benchmarks run them at reduced scale.
package experiments

import (
	"fmt"
	"io"
	"runtime"

	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/synthetic"
)

// Workload is a problem instance of a known size W.
type Workload[S any] struct {
	Name   string
	W      int64 // serial node count, measured
	Domain search.Domain[S]
}

// Scale selects experiment sizes.  Full reproduces the paper's setup
// (P = 8192, problem sizes around 1M..16M nodes); Quick shrinks both by
// roughly two orders of magnitude for interactive runs; Tiny drives unit
// tests and benchmarks.
type Scale struct {
	Name    string
	P       int     // machine size for the table experiments
	Tiers   []int64 // target problem sizes W
	Table5W int64   // problem size for the load-balancing-cost study
	GridPs  []int   // machine sizes for the isoefficiency grids
	GridWs  []int64 // problem sizes for the isoefficiency grids
	Workers int     // goroutines per simulated cycle
}

// Predefined scales.
var (
	// FullScale mirrors the paper: 8192 CM-2 processors, problem sizes
	// 0.94M / 3.1M / 6.1M / 16.1M, a 2.1M-node Table 5 instance, and an
	// isoefficiency grid reaching half a million P*logP.
	FullScale = Scale{
		Name:    "full",
		P:       8192,
		Tiers:   []int64{940_000, 3_100_000, 6_100_000, 16_100_000},
		Table5W: 2_070_000,
		GridPs:  []int{1024, 2048, 4096, 8192, 16384},
		GridWs:  []int64{250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000, 64_000_000},
		Workers: runtime.NumCPU(),
	}
	// QuickScale divides the machine by 32 and the problems by ~64.
	QuickScale = Scale{
		Name:    "quick",
		P:       256,
		Tiers:   []int64{15_000, 48_000, 95_000, 250_000},
		Table5W: 32_000,
		GridPs:  []int{64, 128, 256, 512, 1024},
		GridWs:  []int64{4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000, 512_000},
		Workers: runtime.NumCPU(),
	}
	// TinyScale keeps unit tests and benchmarks fast.
	TinyScale = Scale{
		Name:    "tiny",
		P:       64,
		Tiers:   []int64{2_000, 6_000},
		Table5W: 4_000,
		GridPs:  []int{16, 32, 64, 128},
		GridWs:  []int64{1_000, 2_000, 4_000, 8_000, 16_000, 32_000},
		Workers: runtime.NumCPU(),
	}
)

// ScaleByName returns the named scale ("full", "quick" or "tiny").
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "full":
		return FullScale, nil
	case "quick":
		return QuickScale, nil
	case "tiny":
		return TinyScale, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q", name)
}

// SyntheticWorkloads builds synthetic-tree workloads hitting the targets
// exactly (the tree construction guarantees the node count).
func SyntheticWorkloads(targets []int64) []Workload[synthetic.Node] {
	out := make([]Workload[synthetic.Node], len(targets))
	for i, w := range targets {
		tree := synthetic.New(w, 0xC0FFEE+uint64(i))
		out[i] = Workload[synthetic.Node]{
			Name:   fmt.Sprintf("synthetic-%d", w),
			W:      w,
			Domain: tree,
		}
	}
	return out
}

// SyntheticWorkload builds a single synthetic workload of exactly w nodes.
func SyntheticWorkload(w int64, seed uint64) Workload[synthetic.Node] {
	return Workload[synthetic.Node]{
		Name:   fmt.Sprintf("synthetic-%d", w),
		W:      w,
		Domain: synthetic.New(w, seed),
	}
}

// PuzzleWorkloads finds, for every target size, a scrambled 15-puzzle
// instance and an IDA* cost bound whose exhaustive bounded search expands
// close to the target number of nodes (within [0.5, 2]x), the way the
// paper's experiments pinned their four problem sizes.  The search over
// (seed, bound) is deterministic; progress is reported on log when
// non-nil because measuring W requires serial searches of comparable
// size.
func PuzzleWorkloads(targets []int64, log io.Writer) []Workload[puzzle.Node] {
	out := make([]Workload[puzzle.Node], 0, len(targets))
	used := map[string]bool{}
	for i, target := range targets {
		name := fmt.Sprintf("puzzle-tier%d", i+1)
		// If no instance lands in the window, the closest unused one is
		// returned instead; experiments report measured W on every row,
		// so a best-effort tier stays honest.
		wl, _ := findPuzzleWorkload(target, 60, used)
		wl.Name = name
		if log != nil {
			fmt.Fprintf(log, "# %s: target W=%d, instance W=%d\n", name, target, wl.W)
		}
		out = append(out, wl)
	}
	return out
}

// findPuzzleWorkload scans scramble seeds for an instance with a cost
// bound whose bounded search size lands near target, skipping instances
// already claimed by another tier (the used set, keyed by seed+bound).
// Acceptance is asymmetric — [0.6, 1.7]x — so neighbouring tiers spaced
// ~2x apart cannot both claim the same search size.
func findPuzzleWorkload(target int64, maxSeeds int, used map[string]bool) (Workload[puzzle.Node], bool) {
	lo := target * 6 / 10
	hi := target * 17 / 10
	best := Workload[puzzle.Node]{}
	bestKey := ""
	bestDist := int64(-1)
	for seed := uint64(1); seed <= uint64(maxSeeds); seed++ {
		inst := puzzle.Scramble(seed*7919, 80)
		dom := puzzle.NewDomain(inst)
		bound := dom.F(inst)
		for {
			b := search.NewBounded(dom, bound)
			r := search.DFS[puzzle.Node](b)
			key := fmt.Sprintf("%d@%d", seed, bound)
			if !used[key] {
				d := r.Expanded - target
				if d < 0 {
					d = -d
				}
				if bestDist < 0 || d < bestDist {
					bestDist = d
					bestKey = key
					best = Workload[puzzle.Node]{W: r.Expanded, Domain: search.NewBounded(dom, bound)}
				}
				if r.Expanded >= lo && r.Expanded <= hi {
					used[key] = true
					return Workload[puzzle.Node]{W: r.Expanded, Domain: search.NewBounded(dom, bound)}, true
				}
			}
			if r.Expanded > hi {
				break
			}
			next, ok := b.NextBound()
			if !ok {
				break
			}
			bound = next
		}
	}
	if bestKey != "" {
		used[bestKey] = true
	}
	return best, bestDist >= 0
}

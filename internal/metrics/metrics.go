// Package metrics defines the performance accounting of Section 3.1 of the
// paper.  All times are virtual: the simulator charges the paper's unit
// costs (a node expansion cycle costs Ucalc, a load-balancing phase tlb) to
// a deterministic clock, so efficiencies are exactly reproducible and
// independent of the host machine.
//
// The identities the paper relies on hold by construction and are verified
// by tests:
//
//	P * Tpar = Tcalc + Tidle + Tlb
//	E        = Tcalc / (Tcalc + Tidle + Tlb)
//	Tcalc    = W * Ucalc
package metrics

import (
	"fmt"
	"time"
)

// Stats aggregates one parallel search run.
type Stats struct {
	P int // processors

	W     int64 // problem size: nodes expanded (equals the serial count)
	Goals int64 // goal nodes found

	Cycles    int // Nexpand: node-expansion cycles
	LBPhases  int // Nlb: load-balancing phases
	Transfers int // *Nlb: individual work transfers

	InitCycles int // expansion cycles spent in the initial distribution
	InitPhases int // LB phases spent in the initial distribution

	Tcalc time.Duration // useful computation, summed over processors (W * Ucalc)
	Tidle time.Duration // idling during search phases, summed over processors
	Tlb   time.Duration // load balancing, summed over processors
	Tpar  time.Duration // parallel (virtual wall-clock) running time

	PeakStack   int // deepest per-processor stack seen, in nodes
	MaxTransfer int // largest single work transfer, in stack nodes

	// Cancelled marks a run stopped early by context cancellation or
	// deadline.  The aggregates above then cover the completed prefix of
	// the schedule only; every completed cycle is identical to the same
	// cycle of an uncancelled run (cancellation is checked strictly at
	// cycle boundaries), so partial stats remain deterministic.
	Cancelled bool
}

// Efficiency returns E = Tcalc / (Tcalc + Tidle + Tlb), the paper's
// effective utilisation of computing resources.
func (s Stats) Efficiency() float64 {
	denom := s.Tcalc + s.Tidle + s.Tlb
	if denom == 0 {
		return 0
	}
	return float64(s.Tcalc) / float64(denom)
}

// Speedup returns S = Tcalc / Tpar.
func (s Stats) Speedup() float64 {
	if s.Tpar == 0 {
		return 0
	}
	return float64(s.Tcalc) / float64(s.Tpar)
}

// Overhead returns the total non-useful processor-time Tidle + Tlb.
func (s Stats) Overhead() time.Duration { return s.Tidle + s.Tlb }

// BalanceCheck returns the residual of the accounting identity
// P*Tpar - (Tcalc + Tidle + Tlb); a correct simulation yields zero.
func (s Stats) BalanceCheck() time.Duration {
	return time.Duration(s.P)*s.Tpar - (s.Tcalc + s.Tidle + s.Tlb)
}

// String summarises the run in one line, mirroring the metrics the paper's
// tables report.
func (s Stats) String() string {
	return fmt.Sprintf("P=%d W=%d Nexpand=%d Nlb=%d transfers=%d E=%.3f speedup=%.1f",
		s.P, s.W, s.Cycles, s.LBPhases, s.Transfers, s.Efficiency(), s.Speedup())
}

package metrics

import (
	"strings"
	"testing"
	"time"
)

func sample() Stats {
	// A consistent run: P=4, 10 cycles of 30ms with W=32 expansions (8
	// idle slots), 2 phases of 13ms.
	return Stats{
		P:        4,
		W:        32,
		Cycles:   10,
		LBPhases: 2,
		Tcalc:    32 * 30 * time.Millisecond,
		Tidle:    8 * 30 * time.Millisecond,
		Tlb:      4 * 2 * 13 * time.Millisecond,
		Tpar:     (10*30 + 2*13) * time.Millisecond,
	}
}

func TestAccountingIdentity(t *testing.T) {
	s := sample()
	if res := s.BalanceCheck(); res != 0 {
		t.Errorf("identity residual %v, want 0", res)
	}
}

func TestEfficiency(t *testing.T) {
	s := sample()
	want := float64(s.Tcalc) / float64(s.Tcalc+s.Tidle+s.Tlb)
	if got := s.Efficiency(); got != want {
		t.Errorf("E = %v, want %v", got, want)
	}
	if (Stats{}).Efficiency() != 0 {
		t.Error("zero stats should have zero efficiency")
	}
}

func TestEfficiencyMatchesPaperFormula(t *testing.T) {
	// Table 2, first cell: W=941852, P=8192, Nexpand=198, Nlb=54,
	// Ucalc=30ms, tlb=13ms => E=0.52.
	ucalc := 30 * time.Millisecond
	tlb := 13 * time.Millisecond
	s := Stats{
		P:     8192,
		W:     941852,
		Tcalc: 941852 * ucalc,
		Tpar:  198*ucalc + 54*tlb,
	}
	s.Tlb = time.Duration(s.P) * 54 * tlb
	s.Tidle = time.Duration(s.P)*s.Tpar - s.Tcalc - s.Tlb
	if e := s.Efficiency(); e < 0.515 || e > 0.525 {
		t.Errorf("E = %.4f, the paper reports 0.52", e)
	}
}

func TestSpeedup(t *testing.T) {
	s := sample()
	if got, want := s.Speedup(), float64(s.Tcalc)/float64(s.Tpar); got != want {
		t.Errorf("speedup %v, want %v", got, want)
	}
	if (Stats{}).Speedup() != 0 {
		t.Error("zero stats should have zero speedup")
	}
}

func TestOverhead(t *testing.T) {
	s := sample()
	if s.Overhead() != s.Tidle+s.Tlb {
		t.Error("Overhead mismatch")
	}
}

func TestString(t *testing.T) {
	str := sample().String()
	for _, frag := range []string{"P=4", "W=32", "Nexpand=10", "Nlb=2", "E=0."} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() = %q, missing %q", str, frag)
		}
	}
}

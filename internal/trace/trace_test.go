package trace

import (
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.RecordCycle(Sample{Cycle: 1, Active: 5})
	tr.RecordPhase(Event{Cycle: 1})
	if tr.ActiveSeries() != nil {
		t.Error("nil trace should return nil series")
	}
	if a, c := tr.MinActive(); a != 0 || c != -1 {
		t.Errorf("nil trace MinActive = %d,%d", a, c)
	}
}

func TestRecording(t *testing.T) {
	tr := &Trace{}
	tr.RecordCycle(Sample{Cycle: 0, Active: 10, R1: time.Millisecond})
	tr.RecordCycle(Sample{Cycle: 1, Active: 3})
	tr.RecordCycle(Sample{Cycle: 2, Active: 7})
	tr.RecordPhase(Event{Cycle: 1, Transfers: 4, Cost: 13 * time.Millisecond})

	series := tr.ActiveSeries()
	want := []int{10, 3, 7}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series %v, want %v", series, want)
		}
	}
	if a, c := tr.MinActive(); a != 3 || c != 1 {
		t.Errorf("MinActive = %d at %d, want 3 at 1", a, c)
	}
	if len(tr.Events) != 1 || tr.Events[0].Transfers != 4 {
		t.Errorf("events %v", tr.Events)
	}
}

func TestMinActiveEmpty(t *testing.T) {
	tr := &Trace{}
	if a, c := tr.MinActive(); a != 0 || c != -1 {
		t.Errorf("empty trace MinActive = %d,%d", a, c)
	}
}

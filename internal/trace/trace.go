// Package trace records per-cycle machine state during a simulated run.
// Figure 8 of the paper plots the number of active processors at each node
// expansion cycle; Figure 1 illustrates the trigger quantities R1 and R2.
// A Trace captures both so the experiment harness can emit the same
// series.
package trace

import "time"

// Event marks a load-balancing phase in the cycle stream.
type Event struct {
	Cycle     int           // expansion cycle after which the phase ran
	Transfers int           // work transfers performed in the phase
	Cost      time.Duration // virtual duration of the phase
	// Donors lists the processors that gave work during the phase; it is
	// populated only when the trace's CaptureDonors flag is set (it costs
	// memory proportional to transfers).  The Appendix A/B validation
	// tests use it to measure V(P) empirically.
	Donors []int
}

// Sample captures the trigger-relevant state after one expansion cycle.
type Sample struct {
	Cycle  int
	Active int           // processors with work (A)
	R1     time.Duration // trigger quantity R1 (scheme-dependent; see Figure 1)
	R2     time.Duration // trigger quantity R2
}

// Trace accumulates samples and events; a nil *Trace is a valid no-op
// recorder, so the engine can be run untraced at zero cost.
type Trace struct {
	Samples []Sample
	Events  []Event
	// CaptureDonors asks the engine to record per-phase donor lists.
	CaptureDonors bool
}

// WantDonors reports whether donor capture is requested; it is nil-safe.
func (t *Trace) WantDonors() bool { return t != nil && t.CaptureDonors }

// Clone returns a deep copy of the trace (donor lists included), so a
// checkpoint can carry the recorded prefix without aliasing the live run.
// It is nil-safe.
func (t *Trace) Clone() *Trace {
	if t == nil {
		return nil
	}
	c := &Trace{CaptureDonors: t.CaptureDonors}
	if t.Samples != nil {
		c.Samples = append([]Sample(nil), t.Samples...)
	}
	if t.Events != nil {
		c.Events = make([]Event, len(t.Events))
		for i, e := range t.Events {
			if e.Donors != nil {
				e.Donors = append([]int(nil), e.Donors...)
			}
			c.Events[i] = e
		}
	}
	return c
}

// RecordCycle appends a per-cycle sample.
func (t *Trace) RecordCycle(s Sample) {
	if t == nil {
		return
	}
	t.Samples = append(t.Samples, s)
}

// RecordPhase appends a load-balancing event.
func (t *Trace) RecordPhase(e Event) {
	if t == nil {
		return
	}
	//lint:allow hotalloc tracing is opt-in (Options.Trace) and outside the steady-state alloc contract
	t.Events = append(t.Events, e)
}

// ActiveSeries returns the active-processor count per expansion cycle, the
// series Figure 8 plots.
func (t *Trace) ActiveSeries() []int {
	if t == nil {
		return nil
	}
	out := make([]int, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.Active
	}
	return out
}

// MinActive returns the lowest active count observed and its cycle; it is
// the headline number for the D^P starvation analyses (Section 6.1).
func (t *Trace) MinActive() (active, cycle int) {
	if t == nil || len(t.Samples) == 0 {
		return 0, -1
	}
	active, cycle = t.Samples[0].Active, t.Samples[0].Cycle
	for _, s := range t.Samples[1:] {
		if s.Active < active {
			active, cycle = s.Active, s.Cycle
		}
	}
	return active, cycle
}

// Package synthetic generates highly irregular, deterministic search trees
// with an exactly controllable total node count W.  The isoefficiency
// experiments (Figures 4 and 7 of the paper) need dense grids of (W, P)
// runs; the 15-puzzle cannot dial W continuously, but these trees can, and
// their node expansion is so cheap that grids of hundreds of runs complete
// in minutes.
//
// Construction: every node carries a budget.  Expanding a node consumes one
// unit and splits the remainder across a random number of children using
// skewed random weights, so sibling subtrees differ in size by orders of
// magnitude — the "highly irregular" trees the paper targets.  By
// induction the tree rooted at budget W contains exactly W nodes, and the
// whole tree is a pure function of the seed.
package synthetic

// Node is a synthetic tree node: the size of its subtree and the PRNG seed
// that determines its children.
type Node struct {
	Budget int64  // number of nodes in the subtree rooted here (>= 1)
	Seed   uint64 // deterministic source of this node's branching
}

// Tree is a synthetic search domain.  It implements search.Domain[Node].
type Tree struct {
	W         int64   // total nodes in the tree (root budget)
	Seed      uint64  // tree identity
	MaxBranch int     // maximum children per node (>= 2)
	Skew      float64 // imbalance exponent; larger = more irregular
}

// New returns a tree of exactly w nodes.  maxBranch defaults to 4 and skew
// to 3 when zero; both defaults produce trees with depth O(log W) but
// sibling subtrees of wildly different sizes.
func New(w int64, seed uint64) *Tree {
	return &Tree{W: w, Seed: seed, MaxBranch: 4, Skew: 3}
}

// Root implements search.Domain.
func (t *Tree) Root() Node {
	w := t.W
	if w < 1 {
		w = 1
	}
	return Node{Budget: w, Seed: t.Seed ^ 0x1234567890abcdef}
}

// Goal implements search.Domain; synthetic trees have no goal nodes — the
// workload is exhaustive traversal, as in the paper's all-solutions runs.
func (t *Tree) Goal(Node) bool { return false }

// Expand implements search.Domain, deterministically splitting the node's
// remaining budget across its children.
func (t *Tree) Expand(n Node, buf []Node) []Node {
	remaining := n.Budget - 1
	if remaining <= 0 {
		return buf
	}
	maxBranch := t.MaxBranch
	if maxBranch < 2 {
		maxBranch = 4
	}
	skew := t.Skew
	if skew <= 0 {
		skew = 3
	}
	// Scratch arrays are fixed-size so the hot expansion path (called
	// once per simulated node) does not allocate.
	const maxK = 16
	if maxBranch > maxK {
		maxBranch = maxK
	}
	state := n.Seed
	k := 1 + int(splitmix64(&state)%uint64(maxBranch))
	if int64(k) > remaining {
		k = int(remaining)
	}
	// Draw skewed weights: w_i = u_i^skew with u_i uniform in (0, 1].
	var weights [maxK]float64
	var total float64
	for i := 0; i < k; i++ {
		u := float64(splitmix64(&state)>>11)/(1<<53) + 1e-12
		w := u
		for e := 1; e < int(skew); e++ {
			w *= u
		}
		weights[i] = w
		total += w
	}
	// Give every child one node up front, then split the rest by weight.
	spare := remaining - int64(k)
	var assigned int64
	var budgets [maxK]int64
	for i := 0; i < k; i++ {
		b := int64(float64(spare) * weights[i] / total)
		budgets[i] = 1 + b
		assigned += 1 + b
	}
	// Rounding leftovers go to the heaviest child.
	heaviest := 0
	for i := 1; i < k; i++ {
		if budgets[i] > budgets[heaviest] {
			heaviest = i
		}
	}
	budgets[heaviest] += remaining - assigned
	for _, b := range budgets[:k] {
		//lint:allow hotalloc expansion buffer is reused by the engine and reaches the branching factor
		buf = append(buf, Node{Budget: b, Seed: splitmix64(&state)})
	}
	return buf
}

// splitmix64 is the same tiny PRNG used across the repository's
// deterministic generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

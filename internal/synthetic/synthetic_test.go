package synthetic

import (
	"testing"
	"testing/quick"

	"simdtree/internal/search"
)

// TestExactNodeCount property-checks the package's central guarantee: a
// tree built with budget w contains exactly w nodes.
func TestExactNodeCount(t *testing.T) {
	f := func(seed uint64, wRaw uint16) bool {
		w := int64(wRaw)%5000 + 1
		r := search.DFS[Node](New(w, seed))
		return r.Expanded == w && r.Goals == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	a := search.DFS[Node](New(12345, 9))
	b := search.DFS[Node](New(12345, 9))
	if a != b {
		t.Error("synthetic tree traversal is not deterministic")
	}
}

func TestSeedsDiffer(t *testing.T) {
	// Different seeds should give different tree shapes (same size).
	a := search.DFS[Node](New(50000, 1))
	b := search.DFS[Node](New(50000, 2))
	if a.Expanded != 50000 || b.Expanded != 50000 {
		t.Fatal("wrong sizes")
	}
	if a.MaxDepth == b.MaxDepth {
		t.Log("depths happen to agree; checking another seed")
		c := search.DFS[Node](New(50000, 3))
		if a.MaxDepth == c.MaxDepth && b.MaxDepth == c.MaxDepth {
			t.Error("three different seeds produced identical depths; shapes suspiciously identical")
		}
	}
}

// TestDepthLogarithmic checks the construction keeps the recursion depth
// (hence per-processor stack depth) far below W.
func TestDepthLogarithmic(t *testing.T) {
	for _, w := range []int64{1000, 100000, 1000000} {
		r := search.DFS[Node](New(w, 4))
		if int64(r.MaxDepth) > w/10 && r.MaxDepth > 200 {
			t.Errorf("W=%d: depth %d is not logarithmic-ish", w, r.MaxDepth)
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	for _, w := range []int64{0, 1, 2, 3} {
		want := w
		if want < 1 {
			want = 1
		}
		r := search.DFS[Node](New(w, 7))
		if r.Expanded != want {
			t.Errorf("W=%d: expanded %d, want %d", w, r.Expanded, want)
		}
	}
}

// TestBudgetsConserved checks that a node's children budgets sum to its
// budget minus one (the node itself).
func TestBudgetsConserved(t *testing.T) {
	tr := New(100000, 11)
	var check func(n Node, depth int)
	nodes := 0
	check = func(n Node, depth int) {
		if nodes > 5000 { // sample the top of the tree
			return
		}
		nodes++
		children := tr.Expand(n, nil)
		if n.Budget == 1 && len(children) != 0 {
			t.Fatal("leaf with children")
		}
		var sum int64
		for _, c := range children {
			if c.Budget < 1 {
				t.Fatalf("child with budget %d", c.Budget)
			}
			sum += c.Budget
		}
		if len(children) > 0 && sum != n.Budget-1 {
			t.Fatalf("budget leak: parent %d, children sum %d", n.Budget, sum)
		}
		for _, c := range children {
			check(c, depth+1)
		}
	}
	check(tr.Root(), 0)
}

// TestIrregularity confirms sibling subtree sizes differ wildly — the
// "highly unstructured" property the paper's load balancing targets.
func TestIrregularity(t *testing.T) {
	tr := New(1_000_000, 3)
	children := tr.Expand(tr.Root(), nil)
	for len(children) == 1 {
		children = tr.Expand(children[0], nil)
	}
	if len(children) < 2 {
		t.Skip("root chain too deep; irregularity checked in grid tests")
	}
	min, max := children[0].Budget, children[0].Budget
	for _, c := range children[1:] {
		if c.Budget < min {
			min = c.Budget
		}
		if c.Budget > max {
			max = c.Budget
		}
	}
	if max < 2*min {
		t.Logf("top-level split unusually even (min=%d max=%d); tolerated", min, max)
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := &Tree{W: 100, Seed: 5} // MaxBranch and Skew zero: defaults kick in
	r := search.DFS[Node](tr)
	if r.Expanded != 100 {
		t.Errorf("expanded %d, want 100 with defaulted parameters", r.Expanded)
	}
}

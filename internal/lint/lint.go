// Package lint implements simdlint, the repository's zero-dependency
// static analyser.  The simulator's core contract (see the doc comment of
// internal/simd/machine.go) is that schedules, node counts and virtual
// times are bit-for-bit deterministic for a given (domain, scheme,
// options) and invariant under the Workers shard count; this package
// enforces the coding rules that contract depends on, plus a few generic
// correctness checks, using only the standard library's go/parser, go/ast
// and go/types (the repository deliberately has no external dependencies,
// so golang.org/x/tools is off limits).
//
// The per-package suite:
//
//   - detrand: wall-clock reads and process-global randomness inside the
//     deterministic packages.
//   - maporder: order-sensitive writes inside `range` loops over maps in
//     the deterministic packages.
//   - floateq: == and != between floating-point operands.
//   - errdrop: statements and blank assignments that discard an error.
//   - syncmisuse: WaitGroup.Add inside the goroutine it gates, and lock
//     values copied through parameters, results or receivers.
//   - poolreset: sync.Pool.Put of an object that shows no reset before
//     the Put, which would leak stale state to the next Get.
//
// The module suite runs over a whole-module call graph (callgraph.go)
// with interface calls devirtualised and a cross-package facts store
// (facts.go):
//
//   - hotalloc: allocating constructs in any function statically
//     reachable from a //lint:hotpath root, reported with the call
//     chain from the root.
//   - ctxflow: exported blocking functions of the engine and service
//     packages without a context.Context, and root contexts minted in
//     library code.
//   - lockorder: mutex pairs acquired in inconsistent orders anywhere
//     in the module, including orders induced through callees.
//   - atomicmix: objects accessed both through sync/atomic and with
//     plain reads or writes.
//   - sseflush: functions producing a text/event-stream response from
//     which no Flush call, or no context-cancellation check, is
//     statically reachable.
//
// A finding is suppressed by a line comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the same line as the finding, on the line directly above it, or on
// the line directly above the start of the (possibly multi-line)
// statement containing it.  The reason is mandatory: a directive without
// one is itself reported, and the underlying finding is kept.
//
// Diagnostics are emitted sorted by file, line, column and analyzer, so
// two runs over the same tree render byte-identical reports.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
)

// A Diagnostic is one finding of one analyzer at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// An Analyzer is one named check.  Per-package analyzers set Run and are
// handed one package at a time; module analyzers set RunModule instead and
// see the whole package set at once, together with the cross-package call
// graph and fact store (see callgraph.go and facts.go).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// A Pass hands one package to one analyzer and collects its reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// deterministicPkgs names the packages whose results must be bit-for-bit
// reproducible; detrand and maporder only fire inside these.
var deterministicPkgs = map[string]bool{
	"simd":     true,
	"search":   true,
	"stack":    true,
	"trigger":  true,
	"match":    true,
	"scan":     true,
	"topology": true,
	"wire":     true,
}

// deterministic reports whether pkg is subject to the determinism-only
// analyzers.
func deterministic(pkg *Package) bool {
	return deterministicPkgs[path.Base(pkg.Path)]
}

// Analyzers returns the full suite in a fixed order: the six per-package
// analyzers followed by the four cross-package (call-graph) ones.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRand, MapOrder, FloatEq, ErrDrop, SyncMisuse, PoolReset,
		HotAlloc, CtxFlow, LockOrder, AtomicMix, SSEFlush,
	}
}

// Run applies analyzers to pkgs, resolves //lint:allow suppressions, and
// returns the surviving diagnostics sorted by position.  Module analyzers
// share one call graph and fact store, built once per Run.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	var graph *CallGraph
	var facts *Facts
	for _, a := range analyzers {
		if a.RunModule == nil || len(pkgs) == 0 {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
			facts = NewFacts()
		}
		a.RunModule(&ModulePass{
			Analyzer: a,
			Pkgs:     pkgs,
			Graph:    graph,
			Facts:    facts,
			Fset:     graph.Fset,
			report:   report,
		})
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   report,
			}
			a.Run(pass)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs, dirDiags := directives(pkgs, known)
	diags = append(diags, dirDiags...)
	spans := stmtSpans(pkgs)
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(d, dirs, spans) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// A directive is one well-formed //lint:allow comment.
type directive struct {
	file     string
	line     int
	analyzer string
}

const directivePrefix = "//lint:allow"

// directives collects well-formed suppressions from every file's comments
// and reports malformed ones (missing analyzer, unknown analyzer, missing
// reason) as diagnostics in their own right, attributed to the pseudo
// analyzer "directive".
func directives(pkgs []*Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //lint:allowance — not a directive
					}
					pos := pkg.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "directive",
							Message:  fmt.Sprintf(format, args...),
						})
					}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						bad("malformed %s: missing analyzer name and reason", directivePrefix)
					case !known[fields[0]]:
						bad("%s names unknown analyzer %q", directivePrefix, fields[0])
					case len(fields) == 1:
						bad("%s %s: missing reason (a justification is mandatory)", directivePrefix, fields[0])
					default:
						dirs = append(dirs, directive{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
					}
				}
			}
		}
	}
	return dirs, diags
}

// stmtSpan is the line extent of one statement (or declaration) of one
// file, used to anchor suppression directives to whole statements.
type stmtSpan struct {
	start, end int
}

// stmtSpans indexes, per file, the line extents of every statement and
// top-level non-function declaration.  A finding on any line of a
// multi-line statement is then suppressible by a directive above the
// statement's first line, not just above the finding's own line — a
// wrapped call would otherwise be impossible to annotate.
func stmtSpans(pkgs []*Package) map[string][]stmtSpan {
	spans := map[string][]stmtSpan{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ast.Inspect(f, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.GenDecl:
				default:
					if _, ok := n.(ast.Stmt); !ok {
						return true
					}
				}
				start := pkg.Fset.Position(n.Pos()).Line
				end := pkg.Fset.Position(n.End()).Line
				if end > start {
					spans[name] = append(spans[name], stmtSpan{start: start, end: end})
				}
				return true
			})
		}
	}
	return spans
}

// anchorLine returns the first line of the innermost multi-line statement
// covering line in file, or line itself when no statement does.
func anchorLine(spans map[string][]stmtSpan, file string, line int) int {
	anchor := line
	bestStart, bestEnd := -1, int(^uint(0)>>1)
	for _, s := range spans[file] {
		if s.start > line || line > s.end {
			continue
		}
		if s.start > bestStart || (s.start == bestStart && s.end < bestEnd) {
			bestStart, bestEnd = s.start, s.end
			anchor = s.start
		}
	}
	return anchor
}

// suppressed reports whether a well-formed directive covers d: on the same
// line, on the line directly above, or on the line directly above the
// innermost multi-line statement containing the finding.  Directive
// diagnostics are never suppressible.
func suppressed(d Diagnostic, dirs []directive, spans map[string][]stmtSpan) bool {
	if d.Analyzer == "directive" {
		return false
	}
	anchor := anchorLine(spans, d.Pos.Filename, d.Pos.Line)
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 ||
			dir.line == anchor || dir.line == anchor-1 {
			return true
		}
	}
	return false
}

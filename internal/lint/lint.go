// Package lint implements simdlint, the repository's zero-dependency
// static analyser.  The simulator's core contract (see the doc comment of
// internal/simd/machine.go) is that schedules, node counts and virtual
// times are bit-for-bit deterministic for a given (domain, scheme,
// options) and invariant under the Workers shard count; this package
// enforces the coding rules that contract depends on, plus a few generic
// correctness checks, using only the standard library's go/parser, go/ast
// and go/types (the repository deliberately has no external dependencies,
// so golang.org/x/tools is off limits).
//
// The suite:
//
//   - detrand: wall-clock reads and process-global randomness inside the
//     deterministic packages.
//   - maporder: order-sensitive writes inside `range` loops over maps in
//     the deterministic packages.
//   - floateq: == and != between floating-point operands.
//   - errdrop: statements and blank assignments that discard an error.
//   - syncmisuse: WaitGroup.Add inside the goroutine it gates, and lock
//     values copied through parameters, results or receivers.
//   - poolreset: sync.Pool.Put of an object that shows no reset before
//     the Put, which would leak stale state to the next Get.
//
// A finding is suppressed by a line comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the same line as the finding or on the line directly above it.  The
// reason is mandatory: a directive without one is itself reported, and the
// underlying finding is kept.
package lint

import (
	"fmt"
	"go/token"
	"path"
	"sort"
	"strings"
)

// A Diagnostic is one finding of one analyzer at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass hands one package to one analyzer and collects its reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// deterministicPkgs names the packages whose results must be bit-for-bit
// reproducible; detrand and maporder only fire inside these.
var deterministicPkgs = map[string]bool{
	"simd":     true,
	"search":   true,
	"stack":    true,
	"trigger":  true,
	"match":    true,
	"scan":     true,
	"topology": true,
	"wire":     true,
}

// deterministic reports whether pkg is subject to the determinism-only
// analyzers.
func deterministic(pkg *Package) bool {
	return deterministicPkgs[path.Base(pkg.Path)]
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, FloatEq, ErrDrop, SyncMisuse, PoolReset}
}

// Run applies analyzers to pkgs, resolves //lint:allow suppressions, and
// returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs, dirDiags := directives(pkgs, known)
	diags = append(diags, dirDiags...)
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// A directive is one well-formed //lint:allow comment.
type directive struct {
	file     string
	line     int
	analyzer string
}

const directivePrefix = "//lint:allow"

// directives collects well-formed suppressions from every file's comments
// and reports malformed ones (missing analyzer, unknown analyzer, missing
// reason) as diagnostics in their own right, attributed to the pseudo
// analyzer "directive".
func directives(pkgs []*Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //lint:allowance — not a directive
					}
					pos := pkg.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "directive",
							Message:  fmt.Sprintf(format, args...),
						})
					}
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						bad("malformed %s: missing analyzer name and reason", directivePrefix)
					case !known[fields[0]]:
						bad("%s names unknown analyzer %q", directivePrefix, fields[0])
					case len(fields) == 1:
						bad("%s %s: missing reason (a justification is mandatory)", directivePrefix, fields[0])
					default:
						dirs = append(dirs, directive{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
					}
				}
			}
		}
	}
	return dirs, diags
}

// suppressed reports whether a well-formed directive on the same line as d
// or on the line directly above covers it.  Directive diagnostics are
// never suppressible.
func suppressed(d Diagnostic, dirs []directive) bool {
	if d.Analyzer == "directive" {
		return false
	}
	for _, dir := range dirs {
		if dir.analyzer == d.Analyzer && dir.file == d.Pos.Filename &&
			(dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// sseMIME is the literal that marks a function as an SSE producer.
const sseMIME = "text/event-stream"

// SSEFlush enforces the two invariants of a Server-Sent-Events write
// path.  A function whose body mentions the "text/event-stream" media
// type is producing (or proxying) an SSE stream, and from it two things
// must be statically reachable through the call graph:
//
//   - a Flush call (http.Flusher or http.ResponseController): SSE rides
//     a never-ending chunked response, so an unflushed event sits in the
//     ResponseWriter's buffer — the client sees a connected stream that
//     never delivers;
//
//   - context plumbing — a ctx.Done() receive or an
//     http.NewRequestWithContext derived upstream request: the stream is
//     an unbounded loop, and without the request context in the loop a
//     departed client leaks the handler goroutine forever.
//
// The media-type literal is the trigger rather than handler signatures so
// the check covers proxies and helpers, not just top-level handlers.
var SSEFlush = &Analyzer{
	Name: "sseflush",
	Doc:  "SSE producer (mentions text/event-stream) with no reachable Flush call or no reachable ctx cancellation check",
	RunModule: func(p *ModulePass) {
		for _, fn := range p.Graph.Sorted {
			if !mentionsSSE(fn) {
				continue
			}
			flushes, honoursCtx := scanSSEPath(fn)
			if !flushes {
				p.Reportf(fn.Decl.Name.Pos(),
					"%s writes an SSE stream but no Flush call is reachable; buffered events never reach the client",
					fn.DisplayName())
			}
			if !honoursCtx {
				p.Reportf(fn.Decl.Name.Pos(),
					"%s writes an SSE stream but neither ctx.Done() nor a context-derived upstream request is reachable; a departed client leaks the stream goroutine",
					fn.DisplayName())
			}
		}
	},
}

// mentionsSSE reports whether fn's body (closures included) contains the
// SSE media-type literal.
func mentionsSSE(fn *Function) bool {
	found := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		lit, ok := n.(*ast.BasicLit)
		if !ok {
			return true
		}
		if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, sseMIME) {
			found = true
		}
		return !found
	})
	return found
}

// scanSSEPath walks the static call graph from fn and reports whether a
// Flush call and a cancellation check are reachable.  Method names are
// matched loosely (Flush/FlushError, Done) — the receiver may be an
// http.Flusher, a ResponseController, or a wrapper, and over-matching
// here only makes the check more permissive, never noisier.
func scanSSEPath(fn *Function) (flushes, honoursCtx bool) {
	seen := map[*Function]bool{fn: true}
	queue := []*Function{fn}
	for len(queue) > 0 && !(flushes && honoursCtx) {
		cur := queue[0]
		queue = queue[1:]
		f, c := sseEvidence(cur)
		flushes = flushes || f
		honoursCtx = honoursCtx || c
		for _, e := range cur.Calls {
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return flushes, honoursCtx
}

// sseEvidence inspects one function body (closures included) for the two
// facts scanSSEPath accumulates.
func sseEvidence(fn *Function) (flushes, honoursCtx bool) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Flush", "FlushError":
				flushes = true
			case "Done":
				honoursCtx = true
			}
		}
		if pkgFuncCall(info, call, "net/http", "NewRequestWithContext") {
			honoursCtx = true
		}
		return true
	})
	return flushes, honoursCtx
}

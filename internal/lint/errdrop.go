package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements that silently discard a returned error: a call
// used as a statement whose results include an error, and blank (`_`)
// assignments of error values.
//
// Conventional never-fail cases are exempt: fmt's Print and Fprint
// families (formatted-write errors surface at the eventual Flush or
// Close, which errdrop does flag) and methods of strings.Builder and
// bytes.Buffer, which are documented to always return a nil error.
// Deferred calls (`defer f.Close()`) are likewise outside this
// analyzer's scope.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "call statements and blank assignments that discard an error",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(s.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.returnsError(call) && !p.errAllowed(call) {
					p.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle or assign it", types.ExprString(call.Fun))
				}
			case *ast.AssignStmt:
				p.checkBlankError(s)
			}
			return true
		})
	}
}

// returnsError reports whether call's result type includes an error.
func (p *Pass) returnsError(call *ast.CallExpr) bool {
	t := p.Pkg.Info.TypeOf(call)
	switch rt := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

// checkBlankError reports error values assigned to the blank identifier.
func (p *Pass) checkBlankError(s *ast.AssignStmt) {
	report := func(lhs ast.Expr, rhs ast.Expr) {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && p.errAllowed(call) {
			return
		}
		p.Reportf(lhs.Pos(), "error assigned to the blank identifier; handle it or annotate with %s errdrop", directivePrefix)
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		tup, ok := p.Pkg.Info.TypeOf(s.Rhs[0]).(*types.Tuple)
		if !ok || tup.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				report(lhs, s.Rhs[0])
			}
		}
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(p.Pkg.Info.TypeOf(s.Rhs[i])) {
				report(lhs, s.Rhs[i])
			}
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errAllowed reports the conventional exemptions described on ErrDrop.
func (p *Pass) errAllowed(call *ast.CallExpr) bool {
	fn := p.callee(call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	return false
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleePkgFunc resolves a call of the form pkg.Func to the package's
// import path and the function name; any other call shape yields "", "".
func (p *Pass) calleePkgFunc(call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	if _, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// callee resolves the static *types.Func a call targets (package function
// or method); calls through function-typed values yield nil.
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isFloat reports whether e's type is a floating-point basic type.
func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant expression.
func (p *Pass) isConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to exactly zero.
func (p *Pass) isZeroConst(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

var errType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errType)
}

// isSyncType reports whether t (possibly behind one pointer) is the named
// sync package type with the given name.
func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

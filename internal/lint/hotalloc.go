package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the zero-allocation contract of the engine's hot path.
// A function marked with a //lint:hotpath directive is a root: the
// expansion cycle, the load-balancing phase, the scan *Into variants, the
// stack transfer operations and the matcher arenas.  The analyzer walks
// everything statically reachable from the roots over the module call
// graph (interface calls devirtualised to every module implementation) and
// flags each construct that can allocate, with the call chain from the
// nearest root in the diagnostic so the finding is explainable without
// rerunning the analysis.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation in a function reachable from a //lint:hotpath root",
	RunModule: func(p *ModulePass) {
		parent := p.Graph.ReachableFromHot()
		if len(parent) == 0 {
			return
		}
		for _, fn := range p.Graph.Sorted {
			if _, hot := parent[fn]; !hot {
				continue
			}
			trace := HotTrace(parent, fn)
			checkHotFunction(p, fn, trace)
		}
	},
}

// checkHotFunction reports every potentially allocating construct in fn's
// body (function literals included — code lexically inside a hot function
// runs on the hot path through the worker pool).
func checkHotFunction(p *ModulePass, fn *Function, trace string) {
	info := fn.Pkg.Info
	flag := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s on the hot path (%s)", what, trace)
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, info, n, flag)
		case *ast.CompositeLit:
			checkHotCompositeLit(info, n, flag)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flag(lit.Pos(), "composite literal escapes through &")
				}
			}
		case *ast.FuncLit:
			flag(n.Pos(), "function literal allocates a closure")
		case *ast.GoStmt:
			flag(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) && !isConstExpr(info, n) {
				flag(n.OpPos, "string concatenation allocates")
			}
		}
		return true
	})
}

// checkHotCall flags the allocating call shapes: the allocating builtins,
// allocating string/byte conversions, interface boxing of concrete
// arguments, and variadic calls that materialise their argument slice.
func checkHotCall(p *ModulePass, info *types.Info, call *ast.CallExpr, flag func(token.Pos, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				flag(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy their contents.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src != nil && isStringByteConversion(dst, src) && !isConstExpr(info, call.Args[0]) {
			flag(call.Pos(), "string conversion allocates")
		}
		return
	}
	sig, ok := typeOfCallFun(info, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through
			}
			if slice, isSlice := params.At(params.Len() - 1).Type().(*types.Slice); isSlice {
				paramT = slice.Elem()
				if i == params.Len()-1 {
					flag(arg.Pos(), "variadic call allocates its argument slice")
				}
			}
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) || hasTypeParams(paramT, 0) {
			continue
		}
		argT := info.TypeOf(arg)
		if argT == nil || types.IsInterface(argT) || isConstExpr(info, arg) || isNilExpr(info, arg) {
			continue
		}
		if _, isTP := argT.(*types.TypeParam); isTP {
			continue
		}
		flag(arg.Pos(), "interface boxing of "+types.TypeString(argT, types.RelativeTo(nil))+" at call site")
	}
}

// checkHotCompositeLit flags composite literals of reference kinds, whose
// backing storage is heap-allocated; plain struct and array values stay on
// the stack and escape only through & (handled at the UnaryExpr).
func checkHotCompositeLit(info *types.Info, lit *ast.CompositeLit, flag func(token.Pos, string)) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		flag(lit.Pos(), "slice literal allocates")
	case *types.Map:
		flag(lit.Pos(), "map literal allocates")
	}
}

// typeOfCallFun returns the signature a call invokes, following function
// values as well as named functions and methods.
func typeOfCallFun(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// isStringByteConversion reports whether converting src to dst copies
// string contents ([]byte <-> string, []rune <-> string).
func isStringByteConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isStringExpr reports whether e has string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringType(t)
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one parsed and type-checked package of the tree under lint.
type Package struct {
	Path  string // import path ("fixture/<dir>" when no go.mod is present)
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// sharedFset and sharedStd let successive Loads (the driver plus the test
// suite) reuse the source importer's cache of type-checked standard
// library packages, which dominates load time.  Loads are sequential; no
// locking is needed.
var (
	sharedFset = token.NewFileSet()
	sharedStd  types.ImporterFrom
)

func stdImporter() types.ImporterFrom {
	if sharedStd == nil {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	return sharedStd
}

// modImporter resolves module-internal import paths from the packages
// checked so far and everything else (the standard library) from source.
type modImporter struct {
	mod map[string]*types.Package
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return stdImporter().ImportFrom(path, "", 0)
}

// Load parses and type-checks every non-test package under root.  root is
// either a module root (go.mod supplies the import-path prefix) or a bare
// fixture tree (import paths become fixture/<rel>).  Test files are never
// loaded: the analyzers deliberately police production code only, and
// several of them (floateq, errdrop) are specified to skip tests.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath := modulePath(root)
	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}

	type parsed struct {
		pkg  *Package
		deps []string // module-internal import paths
	}
	byPath := make(map[string]*parsed, len(dirs))
	var paths []string
	for _, dir := range dirs {
		pkg, err := parseDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		byPath[pkg.Path] = &parsed{pkg: pkg}
		paths = append(paths, pkg.Path)
	}
	sort.Strings(paths)

	for _, p := range byPath {
		seen := map[string]bool{}
		for _, f := range p.pkg.Files {
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := byPath[ipath]; ok && !seen[ipath] {
					seen[ipath] = true
					p.deps = append(p.deps, ipath)
				}
			}
		}
		sort.Strings(p.deps)
	}

	// Type-check in dependency order.
	checked := map[string]*types.Package{}
	imp := &modImporter{mod: checked}
	var out []*Package
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(byPath))
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		p := byPath[path]
		for _, dep := range p.deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		if err := check(p.pkg, imp); err != nil {
			return err
		}
		checked[path] = p.pkg.Types
		state[path] = done
		out = append(out, p.pkg)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// check type-checks one parsed package, filling in Types and Info.
func check(pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	//lint:allow errdrop type errors are collected through conf.Error and reported below
	tpkg, _ := conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, err := range errs {
			if i == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, err.Error())
		}
		return fmt.Errorf("lint: type errors in %s:\n\t%s", pkg.Path, strings.Join(msgs, "\n\t"))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// parseDir parses the non-test Go files of one directory; it returns nil
// when none are left after filtering.
func parseDir(root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(sharedFset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			rel := dir
			if r, rerr := filepath.Rel(root, dir); rerr == nil {
				rel = r
			}
			return nil, fmt.Errorf("lint: parse errors in package %s:\n\t%v", rel, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	name := files[0].Name.Name
	for _, f := range files[1:] {
		if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: mixed package names %s and %s", dir, name, f.Name.Name)
		}
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	prefix := modPath
	if prefix == "" {
		prefix = "fixture"
	}
	ipath := prefix
	if rel != "." {
		ipath = prefix + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: ipath, Name: name, Dir: dir, Fset: sharedFset, Files: files}, nil
}

// goDirs returns every directory under root holding Go files, skipping
// testdata, vendor, and hidden or underscore-prefixed directories.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root {
			name := d.Name()
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath reads the module path from root/go.mod, or "" if absent.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

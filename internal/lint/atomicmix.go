package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// AtomicMix flags fields and variables that are accessed both through the
// old-style sync/atomic functions (atomic.AddInt64(&x.f, ...) and
// friends) and through plain reads or writes anywhere else in the module.
// Mixing the two races: the plain access is invisible to the atomic one.
// The typed atomic.Int64-style wrappers are immune by construction (the
// value is unexported inside the wrapper) and are the recommended fix.
//
// The analysis is cross-package by way of the facts store: phase one
// collects every object that appears as the pointer argument of a
// sync/atomic call in any package, phase two finds plain uses of those
// objects module-wide.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "object accessed both through sync/atomic and with plain reads/writes",
	RunModule: func(p *ModulePass) {
		am := &atomicMixState{
			p:      p,
			exempt: map[ast.Expr]bool{},
		}
		for _, fn := range p.Graph.Sorted {
			am.collectAtomicSites(fn)
		}
		if am.sites == 0 {
			return
		}
		for _, fn := range p.Graph.Sorted {
			am.flagPlainUses(fn)
		}
	},
}

// atomicFact is the facts-store key under which phase one publishes each
// atomically accessed object's first atomic site (a token.Pos).
const atomicFact = "atomic-site"

type atomicMixState struct {
	p *ModulePass
	// sites counts the objects published to the facts store.
	sites int
	// exempt marks the operand expressions inside &x passed to atomic
	// calls, which must not double as plain-use findings.
	exempt map[ast.Expr]bool
}

// collectAtomicSites records objects passed by address to sync/atomic
// functions in fn.
func (am *atomicMixState) collectAtomicSites(fn *Function) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicPkgCall(info, call) || len(call.Args) == 0 {
			return true
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		operand := ast.Unparen(addr.X)
		obj := accessObj(info, operand)
		if obj == nil {
			return true
		}
		am.exempt[operand] = true
		if _, seen := am.p.Facts.Get(obj, atomicFact); !seen {
			am.p.Facts.Set(obj, atomicFact, call.Pos())
			am.sites++
		}
		return true
	})
}

// flagPlainUses reports every non-atomic use in fn of an object that is
// atomically accessed somewhere in the module.
func (am *atomicMixState) flagPlainUses(fn *Function) {
	info := fn.Pkg.Info
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var found []finding
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if am.exempt[e] {
			return true
		}
		obj := accessObj(info, e)
		if obj == nil {
			return true
		}
		if _, isAtomic := am.p.Facts.Get(obj, atomicFact); !isAtomic {
			return true
		}
		found = append(found, finding{pos: e.Pos(), obj: obj})
		return false // the inner Ident of a SelectorExpr is the same use
	})
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		site, _ := am.p.Facts.Get(f.obj, atomicFact)
		atomicPos := am.p.Fset.Position(site.(token.Pos))
		am.p.Reportf(f.pos,
			"%q is accessed atomically (e.g. %s:%d) but read/written plainly here; use the atomic.Int64-style typed wrappers",
			f.obj.Name(), filepath.Base(atomicPos.Filename), atomicPos.Line)
	}
}

// isAtomicPkgCall reports whether call invokes any sync/atomic
// package-level function.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// accessObj resolves an identifier or field selection to the variable
// object it denotes; selections resolve to the field, so accesses through
// different instances of the same struct share an identity.
func accessObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			// Only package-level variables have a module-wide identity
			// worth tracking; locals cannot be shared across functions
			// (closures aside, which the Uses resolution still catches).
			return v
		}
		return nil
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

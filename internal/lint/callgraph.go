package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the cross-package analyzers
// (hotalloc, ctxflow, lockorder, atomicmix) run on.  The graph is purely
// static and stdlib-only: direct calls resolve through go/types object use
// information, generic instantiations are canonicalised to their origin
// declaration, and calls through module-defined interfaces are
// devirtualised with a class-hierarchy approximation — an edge is added to
// every module method that can satisfy the interface method.  Calls into
// the standard library and calls through plain function values are not
// edges; analyzers that need soundness there handle the call expression
// itself (e.g. hotalloc checks interface boxing at any call site).

// hotpathDirective marks a function declaration as a zero-allocation hot
// path root for the hotalloc analyzer: the function and everything
// statically reachable from it must not allocate.
const hotpathDirective = "//lint:hotpath"

// A Function is one module function or method with a body, as a call-graph
// node.
type Function struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hot records a //lint:hotpath directive on the declaration.
	Hot bool
	// Calls are the outgoing edges in source order.
	Calls []*Edge
}

// An Edge is one static call site from Caller to Callee.
type Edge struct {
	Caller *Function
	Callee *Function
	Site   token.Pos
	// Dynamic marks a devirtualised interface call: the callee is one of
	// possibly several implementations the site can reach.
	Dynamic bool
}

// A CallGraph indexes every module function and its statically resolvable
// call edges.
type CallGraph struct {
	Fset  *token.FileSet
	Funcs map[*types.Func]*Function
	// Sorted lists the functions in (filename, offset) order so analyzers
	// iterate deterministically.
	Sorted []*Function
}

// FuncOf returns the graph node for obj (canonicalised through Origin), or
// nil when obj is not a module function with a body.
func (g *CallGraph) FuncOf(obj *types.Func) *Function {
	if obj == nil {
		return nil
	}
	return g.Funcs[obj.Origin()]
}

// DisplayName renders a function as pkg.Name or pkg.(*Recv).Name for
// diagnostics.
func (f *Function) DisplayName() string {
	pkg := f.Pkg.Name
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + f.Obj.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
		ptr = "*"
	}
	name := "?"
	switch t := recv.(type) {
	case *types.Named:
		name = t.Obj().Name()
	case *types.TypeParam:
		name = t.Obj().Name()
	}
	if ptr == "" {
		return fmt.Sprintf("%s.%s.%s", pkg, name, f.Obj.Name())
	}
	return fmt.Sprintf("%s.(%s%s).%s", pkg, ptr, name, f.Obj.Name())
}

// StableID renders a function with its full import path, the form the
// -hotpath root listing pins.
func (f *Function) StableID() string {
	base := f.DisplayName()
	if i := strings.IndexByte(base, '.'); i >= 0 {
		return f.Pkg.Path + base[i:]
	}
	return f.Pkg.Path + "." + base
}

// BuildCallGraph constructs the module call graph over pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: map[*types.Func]*Function{}}
	if len(pkgs) == 0 {
		return g
	}
	g.Fset = pkgs[0].Fset

	// Pass 1: register every function declaration and its hotpath mark.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			hotLines := hotpathLines(pkg, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Function{Obj: obj, Decl: fd, Pkg: pkg, Hot: hotMark(pkg, fd, hotLines)}
				g.Funcs[obj] = fn
				g.Sorted = append(g.Sorted, fn)
			}
		}
	}
	sort.Slice(g.Sorted, func(i, j int) bool {
		a := g.Fset.Position(g.Sorted[i].Decl.Pos())
		b := g.Fset.Position(g.Sorted[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	// Method index for devirtualisation: every module method by name.
	methodsByName := map[string][]*Function{}
	for _, fn := range g.Sorted {
		if sig, ok := fn.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			methodsByName[fn.Obj.Name()] = append(methodsByName[fn.Obj.Name()], fn)
		}
	}

	// Pass 2: resolve call sites to edges.
	for _, fn := range g.Sorted {
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info, call)
			if callee == nil {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && isInterfaceRecv(sig.Recv().Type()) {
				for _, impl := range devirtualize(callee, methodsByName) {
					fn.Calls = append(fn.Calls, &Edge{Caller: fn, Callee: impl, Site: call.Lparen, Dynamic: true})
				}
				return true
			}
			if target := g.FuncOf(callee); target != nil {
				fn.Calls = append(fn.Calls, &Edge{Caller: fn, Callee: target, Site: call.Lparen})
			}
			return true
		})
	}
	return g
}

// hotpathLines collects the lines of every //lint:hotpath comment in file.
func hotpathLines(pkg *Package, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if text := strings.TrimSpace(c.Text); text == hotpathDirective ||
				strings.HasPrefix(text, hotpathDirective+" ") {
				lines[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// hotMark reports whether fd carries a hotpath directive: inside its doc
// comment or on the line directly above the declaration.
func hotMark(pkg *Package, fd *ast.FuncDecl, hotLines map[int]bool) bool {
	if len(hotLines) == 0 {
		return false
	}
	start := pkg.Fset.Position(fd.Pos()).Line
	if fd.Doc != nil {
		docStart := pkg.Fset.Position(fd.Doc.Pos()).Line
		docEnd := pkg.Fset.Position(fd.Doc.End()).Line
		for l := docStart; l <= docEnd; l++ {
			if hotLines[l] {
				return true
			}
		}
	}
	return hotLines[start-1]
}

// staticCallee resolves the *types.Func a call expression names, Origin
// canonicalised; nil for builtins, conversions and plain function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// isInterfaceRecv reports whether a method receiver type is an interface
// (or a type parameter, whose method set is interface-shaped).
func isInterfaceRecv(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	return types.IsInterface(t)
}

// devirtualize returns the module methods an interface-method call can
// statically reach.  For ground (non-generic) interfaces the candidates
// are checked with types.Implements; when the interface involves type
// parameters the check degrades to name plus parameter/result arity, a
// deliberate over-approximation that keeps reachability sound.
func devirtualize(iface *types.Func, methodsByName map[string][]*Function) []*Function {
	var out []*Function
	sig, ok := iface.Type().(*types.Signature)
	if !ok {
		return nil
	}
	recv := sig.Recv().Type()
	ground := !hasTypeParams(recv, 0)
	var ifaceT *types.Interface
	if ground {
		if u, isIface := recv.Underlying().(*types.Interface); isIface {
			ifaceT = u
		} else {
			ground = false
		}
	}
	for _, cand := range methodsByName[iface.Name()] {
		csig, ok := cand.Obj.Type().(*types.Signature)
		if !ok || csig.Recv() == nil || isInterfaceRecv(csig.Recv().Type()) {
			continue
		}
		if ground && !hasTypeParams(csig.Recv().Type(), 0) {
			ct := csig.Recv().Type()
			if p, isPtr := ct.(*types.Pointer); isPtr {
				ct = p.Elem()
			}
			if types.Implements(ct, ifaceT) || types.Implements(types.NewPointer(ct), ifaceT) {
				out = append(out, cand)
			}
			continue
		}
		// Generic interface (or generic implementation): match by name and
		// arity.  Variadic/non-variadic mismatches are tolerated.
		if csig.Params().Len() == sig.Params().Len() && csig.Results().Len() == sig.Results().Len() {
			out = append(out, cand)
		}
	}
	return out
}

// hasTypeParams reports whether t mentions a type parameter anywhere in
// its structure (bounded depth, cycles broken by the named-type shortcut).
func hasTypeParams(t types.Type, depth int) bool {
	if depth > 8 || t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Named:
		if t.TypeParams().Len() > 0 && t.TypeArgs().Len() == 0 {
			return true
		}
		for i := 0; i < t.TypeArgs().Len(); i++ {
			if hasTypeParams(t.TypeArgs().At(i), depth+1) {
				return true
			}
		}
		return false
	case *types.Pointer:
		return hasTypeParams(t.Elem(), depth+1)
	case *types.Slice:
		return hasTypeParams(t.Elem(), depth+1)
	case *types.Array:
		return hasTypeParams(t.Elem(), depth+1)
	case *types.Map:
		return hasTypeParams(t.Key(), depth+1) || hasTypeParams(t.Elem(), depth+1)
	case *types.Chan:
		return hasTypeParams(t.Elem(), depth+1)
	case *types.Signature:
		for i := 0; i < t.Params().Len(); i++ {
			if hasTypeParams(t.Params().At(i).Type(), depth+1) {
				return true
			}
		}
		for i := 0; i < t.Results().Len(); i++ {
			if hasTypeParams(t.Results().At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return false
}

// HotRoots returns the hotpath-annotated functions in deterministic order.
// HotpathRoots returns the stable identifiers of every //lint:hotpath
// root in pkgs, sorted — the driver's -hotpath listing, which the
// lint-hotpath make target diffs against the committed inventory so a
// root cannot silently lose its annotation.
func HotpathRoots(pkgs []*Package) []string {
	g := BuildCallGraph(pkgs)
	var ids []string
	for _, fn := range g.HotRoots() {
		ids = append(ids, fn.StableID())
	}
	sort.Strings(ids)
	return ids
}

func (g *CallGraph) HotRoots() []*Function {
	var roots []*Function
	for _, fn := range g.Sorted {
		if fn.Hot {
			roots = append(roots, fn)
		}
	}
	return roots
}

// ReachableFromHot computes the functions statically reachable from the
// hotpath roots.  The returned map carries, for every reachable function,
// the edge that first discovered it (nil for roots), from which a
// root-to-function explanation trace can be reconstructed; the BFS visits
// edges in deterministic (source) order so traces are stable.
func (g *CallGraph) ReachableFromHot() map[*Function]*Edge {
	parent := map[*Function]*Edge{}
	var queue []*Function
	for _, root := range g.HotRoots() {
		if _, seen := parent[root]; !seen {
			parent[root] = nil
			queue = append(queue, root)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range fn.Calls {
			if _, seen := parent[e.Callee]; !seen {
				parent[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}
	}
	return parent
}

// HotTrace renders the root-to-fn call chain recorded by ReachableFromHot
// as "root → ... → fn".
func HotTrace(parent map[*Function]*Edge, fn *Function) string {
	var names []string
	for cur := fn; ; {
		names = append(names, cur.DisplayName())
		e := parent[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

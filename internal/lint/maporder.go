package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` loops over maps in the deterministic packages
// whose bodies perform order-sensitive writes: appends, string
// concatenation, floating-point accumulation (addition is not
// associative), or channel sends.  Go randomises map iteration order, so
// any of these leaks nondeterminism into schedules or output.
//
// Heuristic escape: a function that also calls sort.* (or slices.Sort*)
// is taken to implement the collect-then-sort idiom and is not reported.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "order-sensitive writes inside map iteration in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !deterministic(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if p.callsSort(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := p.Pkg.Info.TypeOf(rng.X); t == nil || !isMapType(t) {
					return true
				}
				p.checkMapBody(rng)
				return true
			})
		}
	}
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// callsSort reports whether body contains any call into package sort or a
// slices.Sort* call — the collect-then-sort idiom.
func (p *Pass) callsSort(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := p.calleePkgFunc(call)
		if pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort")) {
			found = true
		}
		return true
	})
	return found
}

// checkMapBody reports each order-sensitive write inside one map range.
func (p *Pass) checkMapBody(rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			p.Reportf(s.Pos(), "channel send inside map iteration publishes values in nondeterministic order")
		case *ast.AssignStmt:
			if s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 {
				return true
			}
			t := p.Pkg.Info.TypeOf(s.Lhs[0])
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok {
				switch {
				case b.Info()&types.IsString != 0:
					p.Reportf(s.Pos(), "string concatenation inside map iteration depends on iteration order")
				case b.Info()&types.IsFloat != 0:
					p.Reportf(s.Pos(), "floating-point accumulation inside map iteration is order-sensitive (addition is not associative)")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					p.Reportf(s.Pos(), "append inside map iteration collects elements in nondeterministic order; sort the result or iterate sorted keys")
				}
			}
		}
		return true
	})
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The facts store decouples what one analyzer learns about a function from
// where that knowledge is consumed: local collectors record per-function
// facts (allocation sites, blocking operations, lock acquisitions, atomic
// accesses) keyed by the function's types.Object, and the module analyzers
// read them back while propagating over the call graph — across package
// boundaries, since every package's objects live in the same store.

// A factKey addresses one named fact about one object.
type factKey struct {
	obj  types.Object
	name string
}

// Facts is the cross-package fact store shared by the module analyzers of
// one Run.
type Facts struct {
	m map[factKey]any
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: map[factKey]any{}} }

// Set records fact name about obj.
func (f *Facts) Set(obj types.Object, name string, v any) {
	f.m[factKey{obj, name}] = v
}

// Get returns fact name about obj.
func (f *Facts) Get(obj types.Object, name string) (any, bool) {
	v, ok := f.m[factKey{obj, name}]
	return v, ok
}

// A ModulePass hands the whole package set, the call graph and the fact
// store to one module-level analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph
	Facts    *Facts
	Fset     *token.FileSet
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// bodyWalk visits the statements of fn's declaration.  enterClosures
// selects whether function-literal bodies are visited too: facts about
// what a function itself does when called (blocking) must skip closures,
// which may run on another goroutine, while facts about the code a
// function lexically contains (allocations) include them.
func bodyWalk(fn *Function, enterClosures bool, visit func(ast.Node) bool) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && !enterClosures {
			return false
		}
		return visit(n)
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// acceptsContext reports whether fn takes a context.Context parameter.
func acceptsContext(fn *Function) bool {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// pkgFuncCall reports whether call names pkgPath.name, resolved through
// the type info (not import aliases).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false // a method of the package's types, e.g. http.Header.Get
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// methodOn reports whether call invokes method name on a value of the
// named type pkgPath.typeName (possibly behind a pointer).
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

package lint

import (
	"go/ast"
	"go/types"
)

// SyncMisuse flags two concurrency hazards that have bitten lock-step
// sharding code like the Workers path of internal/simd:
//
//   - sync.WaitGroup.Add called inside the goroutine it gates, which
//     races with Wait (Add must happen-before the go statement);
//   - lock-bearing values (sync.Mutex, RWMutex, WaitGroup, Once, Cond,
//     Pool, Map, or any struct containing one) passed or returned by
//     value, which silently copies the lock state.
var SyncMisuse = &Analyzer{
	Name: "syncmisuse",
	Doc:  "WaitGroup.Add inside its goroutine; lock values copied via params/results/receivers",
	Run:  runSyncMisuse,
}

func runSyncMisuse(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					p.checkGoroutineAdd(lit)
				}
			case *ast.FuncDecl:
				if s.Recv != nil {
					p.checkLockFields(s.Recv, "receiver")
				}
				p.checkFuncType(s.Type)
			case *ast.FuncLit:
				p.checkFuncType(s.Type)
			}
			return true
		})
	}
}

// checkGoroutineAdd reports WaitGroup.Add calls inside a go func literal.
func (p *Pass) checkGoroutineAdd(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if isSyncType(sig.Recv().Type(), "WaitGroup") {
			p.Reportf(call.Pos(), "WaitGroup.Add inside the goroutine it gates races with Wait; call Add before the go statement")
		}
		return true
	})
}

func (p *Pass) checkFuncType(ft *ast.FuncType) {
	if ft.Params != nil {
		p.checkLockFields(ft.Params, "parameter")
	}
	if ft.Results != nil {
		p.checkLockFields(ft.Results, "result")
	}
}

// checkLockFields reports fields whose type carries a lock by value.
func (p *Pass) checkLockFields(fl *ast.FieldList, kind string) {
	for _, field := range fl.List {
		t := p.Pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if lock := containsLock(t, nil); lock != "" {
			p.Reportf(field.Type.Pos(), "%s type %s carries %s by value, copying the lock; use a pointer", kind, types.TypeString(t, types.RelativeTo(p.Pkg.Types)), lock)
		}
	}
}

// lockTypes are the sync types whose values must not be copied.
var lockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

// containsLock reports the first lock type reachable from t without
// crossing a pointer, slice, map, channel or interface (copying those
// does not copy the lock).  It returns "" when there is none.
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if l := containsLock(u.Field(i).Type(), seen); l != "" {
				return l
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}

// Package simd is a suppression fixture: it mimics a deterministic
// package so detrand fires, and exercises //lint:allow handling.  The
// expectations live in TestAllowDirectives, not in want comments.
package simd

import "time"

var epoch time.Time

// Logged uses a trailing directive with a reason and is suppressed.
func Logged() time.Duration {
	return time.Since(epoch) //lint:allow detrand wall-clock used for operator logging only
}

// Above uses the directive on the preceding line and is suppressed.
func Above() time.Time {
	//lint:allow detrand fixture demonstrating the above-line form
	return time.Now()
}

// Wrapped demonstrates the multi-line form: the directive sits above a
// statement that spans several lines, and suppresses a finding on any of
// them, not just the first.
func Wrapped() []time.Time {
	//lint:allow detrand the directive anchors to the statement start, later lines included
	stamps := []time.Time{
		time.Now(),
	}
	return stamps
}

// Bad has a directive without a reason: the directive itself is reported
// and the underlying finding survives.
func Bad() time.Time {
	return time.Now() //lint:allow detrand
}

// Unknown names a nonexistent analyzer: reported, finding survives.
func Unknown() time.Time {
	return time.Now() //lint:allow nosuchcheck this analyzer does not exist
}

// Mismatched allows the wrong analyzer, so the detrand finding stays.
func Mismatched() time.Time {
	return time.Now() //lint:allow errdrop wrong analyzer on purpose
}

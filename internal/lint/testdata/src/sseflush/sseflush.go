// Package sseflush is a lint fixture for the SSE write-path analyzer.
package sseflush

import (
	"context"
	"fmt"
	"net/http"
)

// NoFlushNoCtx streams events but neither flushes nor watches the
// request context: the buffered events never leave the process and a
// departed client leaks the loop.
func NoFlushNoCtx(w http.ResponseWriter, events <-chan string) { // want "sseflush: .*no Flush call is reachable" // want "sseflush: .*neither ctx.Done"
	w.Header().Set("Content-Type", "text/event-stream")
	for ev := range events {
		fmt.Fprintf(w, "data: %s\n\n", ev)
	}
}

// FlushButNoCtx flushes every event but never consults the context.
func FlushButNoCtx(w http.ResponseWriter, events <-chan string) { // want "sseflush: .*neither ctx.Done"
	w.Header().Set("Content-Type", "text/event-stream")
	rc := http.NewResponseController(w)
	for ev := range events {
		fmt.Fprintf(w, "data: %s\n\n", ev)
		if err := rc.Flush(); err != nil {
			return
		}
	}
}

// CtxButNoFlush watches the context but never flushes.
func CtxButNoFlush(ctx context.Context, w http.ResponseWriter, events <-chan string) { // want "sseflush: .*no Flush call is reachable"
	w.Header().Set("Content-Type", "text/event-stream")
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-events:
			fmt.Fprintf(w, "data: %s\n\n", ev)
		}
	}
}

// Good does both, directly.
func Good(ctx context.Context, w http.ResponseWriter, events <-chan string) {
	w.Header().Set("Content-Type", "text/event-stream")
	rc := http.NewResponseController(w)
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-events:
			fmt.Fprintf(w, "data: %s\n\n", ev)
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// GoodViaHelper reaches both obligations through a callee — the analyzer
// follows the call graph, not just the handler body.
func GoodViaHelper(ctx context.Context, w http.ResponseWriter, events <-chan string) {
	w.Header().Set("Content-Type", "text/event-stream")
	for {
		if !emit(ctx, w, events) {
			return
		}
	}
}

func emit(ctx context.Context, w http.ResponseWriter, events <-chan string) bool {
	select {
	case <-ctx.Done():
		return false
	case ev := <-events:
		fmt.Fprintf(w, "data: %s\n\n", ev)
		if err := http.NewResponseController(w).Flush(); err != nil {
			return false
		}
		return true
	}
}

// GoodProxy is the streaming-proxy shape: cancellation rides the
// context-derived upstream request (a cancelled subscriber fails the
// upstream read), so no literal Done() receive appears.
func GoodProxy(w http.ResponseWriter, r *http.Request, upstream string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, upstream, nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	rc := http.NewResponseController(w)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if ferr := rc.Flush(); ferr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

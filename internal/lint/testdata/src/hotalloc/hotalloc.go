// Package hotalloc exercises the hot-path allocation analyzer: Cycle is
// a //lint:hotpath root, and everything statically reachable from it —
// in this package, in the dep subpackage, and behind the Expander
// interface — must be allocation-free.
package hotalloc

import "fixture/hotalloc/dep"

// Expander is the domain-style interface of the fixture; the call through
// it in Cycle devirtualises to dep.Widget, whose allocation is reported
// with the cross-package trace.
type Expander interface{ Expand(int) }

// scratch mimics the engine's reused buffers.
var scratch []int

// Cycle is the fixture's expansion-cycle root.
//
//lint:hotpath
func Cycle(e Expander, n int) {
	scratch = dep.Grow(scratch)
	e.Expand(n)
	helper(n)
}

// PrefixSumInto mirrors internal/scan's contract: an Into variant that
// deliberately appends instead of writing in place — the regression the
// hot-path gate exists to catch.
//
//lint:hotpath
func PrefixSumInto(dst, src []int) []int {
	run := 0
	for _, v := range src {
		run += v
		dst = append(dst, run) // want "hotalloc: append may grow its backing array"
	}
	return dst
}

// helper is reachable from Cycle and demonstrates every allocating shape
// the analyzer recognises.
func helper(n int) {
	s := make([]int, n)    // want "hotalloc: make allocates"
	p := new(int)          // want "hotalloc: new allocates"
	s = append(s, *p)      // want "hotalloc: append may grow its backing array"
	l := []int{n}          // want "hotalloc: slice literal allocates"
	m := map[int]int{n: n} // want "hotalloc: map literal allocates"
	pt := &point{x: n}     // want "hotalloc: composite literal escapes through &"
	f := func() {}         // want "hotalloc: function literal allocates a closure"
	go f()                 // want "hotalloc: go statement allocates a goroutine"
	c := "n=" + itoa(n)    // want "hotalloc: string concatenation allocates"
	b := []byte(c)         // want "hotalloc: string conversion allocates"
	sink(n)                // want "hotalloc: interface boxing of int at call site"
	_ = variadicSum(n, n)  // want "hotalloc: variadic call allocates its argument slice"
	_, _, _, _, _ = s, l, m, pt, b
}

type point struct{ x int }

func sink(v any) { _ = v }

func variadicSum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// itoa is a minimal conversion that avoids pulling strconv into the
// fixture; byte-appends into a fixed array do not allocate.
func itoa(n int) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(buf[i:]) // want "hotalloc: string conversion allocates"
}

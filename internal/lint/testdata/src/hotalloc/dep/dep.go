// Package dep is the callee side of the cross-package hot-path fixture:
// the root in the parent package reaches these functions through the
// module call graph and through interface devirtualisation, so their
// findings carry cross-package traces.
package dep

// Grow is reached from the hotalloc root across the package boundary.
func Grow(xs []int) []int {
	return append(xs, 1) // want "hotalloc: append may grow its backing array"
}

// Widget implements the parent package's Expander interface; the
// interface call in the root devirtualises to this method.
type Widget struct{ buf []int }

// Expand allocates a fresh buffer every call.
func (w *Widget) Expand(n int) {
	w.buf = make([]int, n) // want "hotalloc: make allocates"
}

// Package server exercises the context-flow analyzer: the exported
// blocking API of the service packages must accept a context.Context,
// and library code must not mint root contexts.
package server

import (
	"context"
	"sync"
	"time"
)

// Wait blocks on a channel receive with no way to bound the wait.
func Wait(ch chan int) int { // want "ctxflow: exported server\.Wait blocks"
	return <-ch
}

// Broadcast blocks on a channel send.
func Broadcast(ch chan int, v int) { // want "ctxflow: exported server\.Broadcast blocks"
	ch <- v
}

// Drain ranges over a channel, blocking until it closes.
func Drain(ch chan int) (total int) { // want "ctxflow: exported server\.Drain blocks"
	for v := range ch {
		total += v
	}
	return total
}

// Join waits on a WaitGroup.
func Join(wg *sync.WaitGroup) { // want "ctxflow: exported server\.Join blocks"
	wg.Wait()
}

// Pause sleeps unconditionally.
func Pause() { // want "ctxflow: exported server\.Pause blocks"
	time.Sleep(time.Millisecond)
}

// WaitCtx is the compliant form of Wait: the same receive, but the
// select on ctx.Done lets the caller bound it.
func WaitCtx(ctx context.Context, ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	case <-ctx.Done():
		return 0, false
	}
}

// Poll is exported and selects, but the default clause makes it
// non-blocking, so no context is required.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// detach mints a root context in library code, silently detaching the
// work from the caller's cancellation.
func detach() context.Context {
	return context.Background() // want "ctxflow: context\.Background\(\) in library code"
}

var _ = detach

// Package poolreset is a lint fixture for the pool-reset analyzer.
package poolreset

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// LeakyPut returns the buffer to the pool still holding its contents.
func LeakyPut(b *bytes.Buffer) {
	bufPool.Put(b) // want "Put of b without a visible reset"
}

// ResetPut is the safe pattern: Reset before Put.
func ResetPut(b *bytes.Buffer) {
	b.Reset()
	bufPool.Put(b)
}

// ResetAfterPut resets too late; the object is already published.
func ResetAfterPut(b *bytes.Buffer) {
	bufPool.Put(b) // want "Put of b without a visible reset"
	b.Reset()
}

var slicePool = sync.Pool{New: func() any {
	s := make([]byte, 0, 64)
	return &s
}}

// TruncatePut truncates through the pointer before returning it; the
// assignment counts as reset evidence.
func TruncatePut(s *[]byte) {
	*s = (*s)[:0]
	slicePool.Put(s)
}

// LeakySlice forgets the truncation.
func LeakySlice(s *[]byte) {
	slicePool.Put(s) // want "Put of s without a visible reset"
}

// FreshPut hands the pool a brand-new object; there is nothing stale to
// reset and the analyzer stays quiet.
func FreshPut() {
	bufPool.Put(new(bytes.Buffer))
}

// AddressPut puts the address of a local after clearing it.
func AddressPut() {
	var scratch []byte
	scratch = append(scratch, 1, 2, 3)
	use(scratch)
	scratch = scratch[:0]
	slicePool.Put(&scratch)
}

// AllowedPut demonstrates a reasoned suppression for an object whose
// reset happens in a helper the analyzer cannot see.
func AllowedPut(b *bytes.Buffer) {
	resetElsewhere(b)
	bufPool.Put(b) //lint:allow poolreset reset happens inside resetElsewhere
}

func resetElsewhere(b *bytes.Buffer) { b.Reset() }

func use([]byte) {}

// Package lockorder exercises the lock-order analyzer: two mutexes are
// acquired in both orders — one order directly, the other through a
// callee while a lock is held, the cross-function case the call-graph
// propagation exists to catch.
package lockorder

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[int]int
}

type ring struct {
	mu    sync.RWMutex
	seats []int
}

var (
	reg = &registry{items: map[int]int{}}
	rng = &ring{}
)

// Update acquires registry.mu, then ring.mu.
func Update() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	rng.mu.Lock() // want "lockorder: lock order inconsistency"
	defer rng.mu.Unlock()
	reg.items[0] = len(rng.seats)
}

// Resize acquires ring.mu and then, through register, registry.mu: the
// opposite order, witnessed via the call graph.
func Resize(n int) {
	rng.mu.Lock()
	defer rng.mu.Unlock()
	rng.seats = append(rng.seats, n)
	register(n)
}

func register(n int) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.items[n] = n
}

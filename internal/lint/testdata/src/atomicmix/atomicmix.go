// Package atomicmix exercises the atomic-mixing analyzer: fields updated
// through sync/atomic in one function and read or written plainly in
// another race, because the plain access is invisible to the atomic one.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

var c counter

// Incr updates both fields atomically, as every access should.
func Incr() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Snapshot reads hits plainly, racing with Incr.
func Snapshot() int64 {
	return c.hits // want "atomicmix: \"hits\" is accessed atomically"
}

// Reset writes both fields plainly.
func Reset() {
	c.hits = 0  // want "atomicmix: \"hits\" is accessed atomically"
	c.total = 0 // want "atomicmix: \"total\" is accessed atomically"
}

// Loaded is the compliant form: the same field, read atomically.
func Loaded() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Package errdrop is a lint fixture for the dropped-error analyzer.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

// Dropped ignores os.Remove's error outright.
func Dropped(path string) {
	os.Remove(path) // want "error that is discarded"
}

// Blank discards the error through the blank identifier.
func Blank(path string) {
	_ = os.Remove(path) // want "blank identifier"
}

// BlankTuple drops the error half of a tuple result.
func BlankTuple(path string) string {
	data, _ := os.ReadFile(path) // want "blank identifier"
	return string(data)
}

// Allowed exercises the conventional exemptions: fmt print families and
// the never-failing strings.Builder methods.
func Allowed(b *strings.Builder) string {
	fmt.Println("hello")
	b.WriteString("x")
	fmt.Fprintf(b, "%d", 1)
	return b.String()
}

// Checked handles its error and is clean.
func Checked(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

// Package syncmisuse is a lint fixture for the sync-misuse analyzer.
package syncmisuse

import "sync"

// Spawn calls Add inside the goroutines it is supposed to gate, racing
// with Wait.
func Spawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "Add inside the goroutine"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Correct is the safe pattern: Add happens before the go statement.
func Correct(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Guarded carries a mutex, so copying it by value copies the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// N reads the counter through a copied receiver.
func (g Guarded) N() int { return g.n } // want "receiver type Guarded carries sync\.Mutex"

// ByValue copies a mutex in through a parameter.
func ByValue(mu sync.Mutex) { _ = mu } // want "parameter type sync\.Mutex carries sync\.Mutex"

// Make returns a lock-bearing struct by value.
func Make() Guarded { return Guarded{} } // want "result type Guarded carries sync\.Mutex"

// Pointers are fine.
func Pointers(g *Guarded, mu *sync.Mutex) (*Guarded, *sync.Mutex) { return g, mu }

// Package simd is a lint fixture that mimics a deterministic package, so
// the detrand and maporder analyzers fire here.
package simd

import (
	"math/rand"
	"time"
)

// Clock reads the wall clock twice.
func Clock() time.Duration {
	start := time.Now()      // want "time\.Now"
	return time.Since(start) // want "time\.Since"
}

// Roll mixes a global draw with an allowed seeded generator.
func Roll() int {
	n := rand.Intn(6) // want "global math/rand"
	r := rand.New(rand.NewSource(42))
	return n + r.Intn(6)
}

// Shuffle permutes through the process-global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand"
}

// Jitter draws from the global source inside an expression.
func Jitter() float64 {
	return rand.Float64() * 0.5 // want "global math/rand"
}

package simd

import "sort"

// Keys collects map keys without sorting them.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside map iteration"
	}
	return keys
}

// SortedKeys is the collect-then-sort idiom and is clean.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Join concatenates map values in iteration order.
func Join(m map[int]string) string {
	var out string
	for _, v := range m {
		out += v // want "string concatenation inside map iteration"
	}
	return out
}

// Publish sends keys in iteration order; the send also makes it an
// exported blocking function without a context.
func Publish(m map[int]int, ch chan<- int) { // want "ctxflow: exported simd\.Publish blocks"
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

// Total accumulates floats in iteration order.
func Total(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point accumulation"
	}
	return total
}

// Count is clean: integer addition is order-insensitive.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

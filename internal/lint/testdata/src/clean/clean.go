// Package clean shows that wall-clock reads and unsorted map iteration
// are acceptable outside the deterministic packages: no analyzer should
// report anything in this file.
package clean

import "time"

// Uptime may read the wall clock; clean is not a deterministic package.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Keys may iterate a map unsorted here.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Package floateq is a lint fixture for the float-equality analyzer,
// which applies to every package, not just the deterministic ones.
package floateq

// Threshold compares computed floats exactly.
func Threshold(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// Differs uses != on float32.
func Differs(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

// Mixed compares a variable against a nonzero constant.
func Mixed(x float64) bool {
	return x == 0.5 // want "floating-point == comparison"
}

// Unset tests the exact-zero sentinel and is clean.
func Unset(x float64) bool {
	return x == 0
}

const half = 0.5

// ConstsOnly compares compile-time constants, which is exact and clean.
func ConstsOnly() bool {
	return half+half == 1.0
}

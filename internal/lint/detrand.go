package lint

import (
	"go/ast"
)

// DetRand flags wall-clock reads and process-global randomness inside the
// deterministic packages.  The virtual clock of internal/simd is the only
// admissible notion of time there, and any randomness must come from an
// explicitly seeded rand.New(rand.NewSource(...)) so runs replay
// bit-for-bit.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "wall-clock reads (time.Now/Since) and global math/rand calls in deterministic packages",
	Run:  runDetRand,
}

// detRandSeeded are the math/rand constructors that take an explicit
// source or seed and are therefore reproducible.
var detRandSeeded = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetRand(p *Pass) {
	if !deterministic(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := p.calleePkgFunc(call)
			switch pkgPath {
			case "time":
				if name == "Now" || name == "Since" {
					p.Reportf(call.Pos(), "call to time.%s reads the wall clock; deterministic packages must charge the virtual clock instead", name)
				}
			case "math/rand", "math/rand/v2":
				switch {
				case name == "New" && len(call.Args) == 0:
					p.Reportf(call.Pos(), "argless rand.New has no explicit seed; use rand.New(rand.NewSource(seed)) so runs replay")
				case !detRandSeeded[name]:
					p.Reportf(call.Pos(), "call to global math/rand function %s uses process-global state; use a seeded rand.New(rand.NewSource(...))", name)
				}
			}
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolReset flags sync.Pool.Put calls that return an object to the pool
// without any visible reset first.  A pooled object that still carries
// the previous user's state is handed to the next Get caller, which in
// this repository's deterministic packages turns into schedule-dependent
// output (the classic "stale buffer" bug) and elsewhere into plain data
// leaks.
//
// The check is intentionally shallow and syntactic: inside the function
// containing the Put, the object must show reset evidence before the Put
// position — a method call whose name starts with Reset or Clear on the
// object, or an assignment through the object (x = ..., *x = ...,
// x.field = ..., x[i] = ...; truncations like *b = (*b)[:0] count).
// Arguments that cannot carry stale state into the pool (fresh composite
// literals, call results, &T{} expressions) are skipped.
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc:  "sync.Pool.Put of an object with no visible reset before the Put",
	Run:  runPoolReset,
}

func runPoolReset(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					p.checkPoolPuts(fn.Body)
				}
			case *ast.FuncLit:
				p.checkPoolPuts(fn.Body)
			}
			return true
		})
	}
}

// checkPoolPuts examines the Pool.Put calls lexically inside body; nested
// function literals are excluded here because the outer walk visits them
// as functions in their own right.
func (p *Pass) checkPoolPuts(body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || !p.isPoolPut(call) {
			return
		}
		obj := p.putArgObject(call.Args[0])
		if obj == nil {
			return // fresh literal, call result, etc.: nothing stale to reset
		}
		if p.hasResetBefore(body, obj, call.Pos()) {
			return
		}
		p.Reportf(call.Pos(), "sync.Pool.Put of %s without a visible reset; clear or truncate it first so pooled state cannot leak to the next Get", obj.Name())
	})
}

// isPoolPut reports whether call is a method call of (*sync.Pool).Put.
func (p *Pass) isPoolPut(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isSyncType(sig.Recv().Type(), "Pool")
}

// putArgObject resolves the object a Put argument hands to the pool when
// the argument is a plain identifier or its address; any other shape is
// unanalyzable (and usually fresh) and yields nil.
func (p *Pass) putArgObject(arg ast.Expr) types.Object {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Pkg.Info.ObjectOf(id)
}

// hasResetBefore reports whether body shows reset evidence for obj at any
// position before put: a ResetX/ClearX method call on the object or an
// assignment whose left-hand side roots at it.
func (p *Pass) hasResetBefore(body *ast.BlockStmt, obj types.Object, put token.Pos) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		if found || n == nil || n.Pos() >= put {
			return
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if p.rootObject(lhs) == obj {
					found = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			if name := sel.Sel.Name; !strings.HasPrefix(name, "Reset") && !strings.HasPrefix(name, "Clear") {
				return
			}
			if p.rootObject(sel.X) == obj {
				found = true
			}
		}
	})
	return found
}

// rootObject resolves the identifier an lvalue-like expression is rooted
// in: *x, x.f, x[i], x[:k] and &x all root in x.
func (p *Pass) rootObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			return p.Pkg.Info.ObjectOf(x)
		default:
			return nil
		}
	}
}

// inspectShallow walks root like ast.Inspect but does not descend into
// nested function literals.
func inspectShallow(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n)
		return true
	})
}

package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regexp"` annotations from fixture files; the
// regexp is matched against "analyzer: message".
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantAnn struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, root string) []*wantAnn {
	t.Helper()
	var wants []*wantAnn
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &wantAnn{file: abs, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want annotations found under %s", root)
	}
	return wants
}

// TestGoldenCorpus runs the full suite over the bad-fixture tree and
// matches every diagnostic against the in-source want annotations, in
// both directions.
func TestGoldenCorpus(t *testing.T) {
	pkgs, err := Load("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded %d fixture packages, want at least 5", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	if len(diags) == 0 {
		t.Fatal("golden corpus produced no diagnostics")
	}
	wants := parseWants(t, "testdata/src")
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
	// Each analyzer of the suite must be exercised at least once.
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, a := range Analyzers() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s produced no corpus findings", a.Name)
		}
	}
}

// TestAllowDirectives checks the suppression contract: a reasoned
// directive (trailing or on the line above) silences its analyzer, a
// reasonless or unknown-analyzer directive is itself reported and
// suppresses nothing, and a directive for the wrong analyzer is inert.
func TestAllowDirectives(t *testing.T) {
	const fixture = "testdata/allow/simd/allow.go"
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(match func(string) bool, what string) int {
		for i, line := range strings.Split(string(data), "\n") {
			if match(line) {
				return i + 1
			}
		}
		t.Fatalf("fixture line for %s not found", what)
		return 0
	}
	noReason := lineOf(func(s string) bool { return strings.HasSuffix(strings.TrimSpace(s), "//lint:allow detrand") }, "reasonless directive")
	unknown := lineOf(func(s string) bool { return strings.Contains(s, "nosuchcheck") }, "unknown analyzer")
	mismatch := lineOf(func(s string) bool { return strings.Contains(s, "//lint:allow errdrop") }, "mismatched analyzer")

	pkgs, err := Load("testdata/allow")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())

	want := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{noReason, "directive", "missing reason"},
		{noReason, "detrand", "time.Now"},
		{unknown, "directive", "unknown analyzer"},
		{unknown, "detrand", "time.Now"},
		{mismatch, "detrand", "time.Now"},
	}
	matched := make([]bool, len(diags))
	for _, w := range want {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Pos.Line == w.line && d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic: line %d %s (%q)", w.line, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic (suppression failed?): %s", d)
		}
	}
}

// TestRepoClean is the invariant the linter exists to protect: the real
// codebase must load and pass the full suite with zero unsuppressed
// findings.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, p := range pkgs {
		paths[p.Path] = true
	}
	for _, want := range []string{
		"simdtree",
		"simdtree/internal/simd",
		"simdtree/internal/lint",
		"simdtree/cmd/simdlint",
	} {
		if !paths[want] {
			t.Errorf("loader missed package %s", want)
		}
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

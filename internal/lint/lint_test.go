package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regexp"` annotations from fixture files; the
// regexp is matched against "analyzer: message".
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantAnn struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, root string) []*wantAnn {
	t.Helper()
	var wants []*wantAnn
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &wantAnn{file: abs, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want annotations found under %s", root)
	}
	return wants
}

// TestGoldenCorpus runs the full suite over the bad-fixture tree and
// matches every diagnostic against the in-source want annotations, in
// both directions.
func TestGoldenCorpus(t *testing.T) {
	pkgs, err := Load("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded %d fixture packages, want at least 5", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	if len(diags) == 0 {
		t.Fatal("golden corpus produced no diagnostics")
	}
	wants := parseWants(t, "testdata/src")
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
	// Each analyzer of the suite must be exercised at least once.
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, a := range Analyzers() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s produced no corpus findings", a.Name)
		}
	}
}

// TestAllowDirectives checks the suppression contract: a reasoned
// directive (trailing or on the line above) silences its analyzer, a
// reasonless or unknown-analyzer directive is itself reported and
// suppresses nothing, and a directive for the wrong analyzer is inert.
func TestAllowDirectives(t *testing.T) {
	const fixture = "testdata/allow/simd/allow.go"
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(match func(string) bool, what string) int {
		for i, line := range strings.Split(string(data), "\n") {
			if match(line) {
				return i + 1
			}
		}
		t.Fatalf("fixture line for %s not found", what)
		return 0
	}
	noReason := lineOf(func(s string) bool { return strings.HasSuffix(strings.TrimSpace(s), "//lint:allow detrand") }, "reasonless directive")
	unknown := lineOf(func(s string) bool { return strings.Contains(s, "nosuchcheck") }, "unknown analyzer")
	mismatch := lineOf(func(s string) bool { return strings.Contains(s, "//lint:allow errdrop") }, "mismatched analyzer")

	pkgs, err := Load("testdata/allow")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())

	want := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{noReason, "directive", "missing reason"},
		{noReason, "detrand", "time.Now"},
		{unknown, "directive", "unknown analyzer"},
		{unknown, "detrand", "time.Now"},
		{mismatch, "detrand", "time.Now"},
	}
	matched := make([]bool, len(diags))
	for _, w := range want {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Pos.Line == w.line && d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic: line %d %s (%q)", w.line, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic (suppression failed?): %s", d)
		}
	}
}

// TestDeterministicOutput pins the reporting contract: diagnostics come
// out sorted by file, line, column and analyzer, and two runs over the
// same tree produce byte-identical reports — CI diffs and the golden
// corpus depend on it.
func TestDeterministicOutput(t *testing.T) {
	render := func() []string {
		pkgs, err := Load("testdata/src")
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, d := range Run(pkgs, Analyzers()) {
			out = append(out, d.String())
		}
		return out
	}
	first := render()
	if len(first) == 0 {
		t.Fatal("corpus produced no diagnostics")
	}
	pkgs, err := Load("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && (a.Pos.Line > b.Pos.Line ||
				(a.Pos.Line == b.Pos.Line && (a.Pos.Column > b.Pos.Column ||
					(a.Pos.Column == b.Pos.Column && a.Analyzer > b.Analyzer))))) {
			t.Errorf("diagnostics out of order at %d:\n\t%s\n\t%s", i, a, b)
		}
	}
	second := make([]string, len(diags))
	for i, d := range diags {
		second[i] = d.String()
	}
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Errorf("two runs differ:\nfirst:\n%s\nsecond:\n%s",
			strings.Join(first, "\n"), strings.Join(second, "\n"))
	}
}

// TestLoadErrors checks that broken trees fail with the offending
// package named, which the driver surfaces verbatim before exiting 2.
func TestLoadErrors(t *testing.T) {
	t.Run("parse", func(t *testing.T) {
		dir := t.TempDir()
		sub := filepath.Join(dir, "broken")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "broken.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(dir)
		if err == nil {
			t.Fatal("Load succeeded on a tree with a parse error")
		}
		if !strings.Contains(err.Error(), "parse errors in package broken") {
			t.Errorf("parse error does not name the package: %v", err)
		}
	})
	t.Run("type", func(t *testing.T) {
		dir := t.TempDir()
		sub := filepath.Join(dir, "untyped")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "untyped.go"), []byte("package untyped\n\nvar x = undefinedIdent\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(dir)
		if err == nil {
			t.Fatal("Load succeeded on a tree with a type error")
		}
		if !strings.Contains(err.Error(), "type errors in fixture/untyped") {
			t.Errorf("type error does not name the package: %v", err)
		}
	})
}

// TestRepoClean is the invariant the linter exists to protect: the real
// codebase must load and pass the full suite with zero unsuppressed
// findings.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, p := range pkgs {
		paths[p.Path] = true
	}
	for _, want := range []string{
		"simdtree",
		"simdtree/internal/simd",
		"simdtree/internal/lint",
		"simdtree/cmd/simdlint",
	} {
		if !paths[want] {
			t.Errorf("loader missed package %s", want)
		}
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

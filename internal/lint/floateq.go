package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands in every
// package.  Equality after floating-point arithmetic is unreliable (the
// repository has already been bitten once: see the epsilon guard in
// internal/analysis.VBoundGP); comparisons should use a tolerance.
//
// Two exact idioms are exempt: comparisons where both operands are
// compile-time constants (Go constant arithmetic is exact), and
// comparisons against the constant zero, which test an unset default or
// guard a division and involve no arithmetic noise.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "floating-point == / != comparisons (except against constant zero)",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(be.X) && !p.isFloat(be.Y) {
				return true
			}
			if p.isConst(be.X) && p.isConst(be.Y) {
				return true
			}
			if p.isZeroConst(be.X) || p.isZeroConst(be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison is unreliable after arithmetic; compare with an explicit tolerance", be.Op)
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// ctxPkgs names the packages whose exported blocking functions must
// accept a context.Context: the engine and the two service layers, where
// an unbounded wait without cancellation hangs a worker or a request.
var ctxPkgs = map[string]bool{
	"simd":    true,
	"server":  true,
	"cluster": true,
	"traffic": true,
	"steal":   true,
}

// CtxFlow enforces context propagation: an exported function of the
// engine/server/cluster packages whose body can block — channel
// operations, selects without a default, WaitGroup/Cond waits, HTTP
// round-trips, sleeps — must accept a context.Context so callers can bound
// the wait.  Function literals are skipped when classifying a function as
// blocking (a closure may run on another goroutine), but the whole module
// is checked for context.Background()/context.TODO() in library code,
// which silently detaches work from the caller's cancellation: only
// main packages (cmd, examples) may mint root contexts.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking function without a context.Context, or a root context minted in library code",
	RunModule: func(p *ModulePass) {
		for _, fn := range p.Graph.Sorted {
			if fn.Pkg.Name != "main" {
				checkRootContexts(p, fn)
			}
			if !ctxPkgs[path.Base(fn.Pkg.Path)] || !fn.Obj.Exported() || acceptsContext(fn) {
				continue
			}
			if pos, what, blocks := firstBlockingOp(fn); blocks {
				p.Reportf(fn.Decl.Name.Pos(),
					"exported %s blocks (%s at line %d) but does not accept a context.Context",
					fn.DisplayName(), what, p.Fset.Position(pos).Line)
			}
		}
	},
}

// checkRootContexts flags context.Background()/TODO() anywhere in fn,
// closures included.
func checkRootContexts(p *ModulePass, fn *Function) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if pkgFuncCall(info, call, "context", name) {
				p.Reportf(call.Pos(),
					"context.%s() in library code detaches from the caller's cancellation; accept and propagate a context instead",
					name)
			}
		}
		return true
	})
}

// firstBlockingOp returns the first operation in fn's own body (closures
// excluded) that can block indefinitely.
func firstBlockingOp(fn *Function) (pos token.Pos, what string, blocks bool) {
	info := fn.Pkg.Info
	comm := selectCommOps(fn)
	bodyWalk(fn, false, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm[n] {
				pos, what, blocks = n.Pos(), "channel receive", true
			}
		case *ast.SendStmt:
			if !comm[n] {
				pos, what, blocks = n.Arrow, "channel send", true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				pos, what, blocks = n.Pos(), "select without default", true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pos, what, blocks = n.Pos(), "range over channel", true
				}
			}
		case *ast.CallExpr:
			if w, isBlocking := blockingCall(info, n); isBlocking {
				pos, what, blocks = n.Pos(), w, true
			}
		}
		return !blocks
	})
	return pos, what, blocks
}

// selectCommOps collects the channel operations that are the comm
// statements of select clauses in fn: those do not block by themselves —
// the enclosing select does (and only without a default clause), so it
// alone is classified.
func selectCommOps(fn *Function) map[ast.Node]bool {
	comm := map[ast.Node]bool{}
	bodyWalk(fn, false, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch s := cc.Comm.(type) {
			case *ast.SendStmt:
				comm[s] = true
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					comm[u] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range s.Rhs {
					if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						comm[u] = true
					}
				}
			}
		}
		return true
	})
	return comm
}

// selectHasDefault reports whether sel has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies the well-known blocking calls of the standard
// library: synchronisation waits, HTTP round-trips and sleeps.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch {
	case methodOn(info, call, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait", true
	case methodOn(info, call, "sync", "Cond", "Wait"):
		return "sync.Cond.Wait", true
	case methodOn(info, call, "net/http", "Client", "Do"),
		methodOn(info, call, "net/http", "Client", "Get"),
		methodOn(info, call, "net/http", "Client", "Post"),
		methodOn(info, call, "net/http", "Client", "PostForm"),
		methodOn(info, call, "net/http", "Client", "Head"):
		return "HTTP round-trip", true
	case pkgFuncCall(info, call, "net/http", "Get"),
		pkgFuncCall(info, call, "net/http", "Post"),
		pkgFuncCall(info, call, "net/http", "PostForm"),
		pkgFuncCall(info, call, "net/http", "Head"):
		return "HTTP round-trip", true
	case pkgFuncCall(info, call, "time", "Sleep"):
		return "time.Sleep", true
	}
	return "", false
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockOrder detects lock-ordering inconsistencies across the whole module:
// it records, per function, the order in which mutexes are acquired
// (textually, with defer-unlocks holding to the end of the function) and
// propagates the may-acquire set over the call graph, so a function that
// calls into another package while holding a lock contributes cross-
// package pairs — the server job map versus the cluster ring state being
// the motivating risk.  Two locks acquired in both orders anywhere in the
// module are reported once, at the earlier witness, with both positions.
//
// Locks are identified by their declaring object (a struct field or a
// variable), so the ordering discipline is enforced per lock declaration,
// not per instance.  Function literals are analysed as their own acquire
// contexts: a closure's acquisitions count toward the enclosing function's
// may-acquire set, but the closure does not inherit the enclosing held
// set, since it may run on another goroutine after the caller unlocked.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutexes acquired in inconsistent orders across the call graph",
	RunModule: func(p *ModulePass) {
		lo := &lockOrderState{
			p:        p,
			acquires: map[*Function]map[types.Object]bool{},
			orders:   map[[2]types.Object]*lockWitness{},
		}
		for _, fn := range p.Graph.Sorted {
			lo.collectAcquires(fn)
		}
		lo.propagate()
		// Publish the closed may-acquire sets as facts keyed by the
		// function object, where collectPairs (and any future analyzer)
		// reads them back across package boundaries.
		for fn, set := range lo.acquires {
			if len(set) > 0 {
				p.Facts.Set(fn.Obj, acquiresFact, set)
			}
		}
		for _, fn := range p.Graph.Sorted {
			lo.collectPairs(fn)
		}
		lo.reportConflicts()
	},
}

// acquiresFact is the facts-store key under which each function's
// transitively closed may-acquire set (a map[types.Object]bool) is
// published.
const acquiresFact = "may-acquire"

// lockWitness is the first observed site of one ordered acquisition pair.
type lockWitness struct {
	pos token.Pos
	via string // non-empty when the second lock is taken through a callee
}

type lockOrderState struct {
	p *ModulePass
	// acquires is the may-acquire set per function, transitively closed
	// over the call graph by propagate.
	acquires map[*Function]map[types.Object]bool
	// orders maps an ordered pair (held, acquired) to its first witness;
	// orderKeys preserves insertion order for deterministic reporting.
	orders    map[[2]types.Object]*lockWitness
	orderKeys [][2]types.Object
}

// lockCallKind classifies call as a mutex acquire or release.
func lockCallKind(info *types.Info, call *ast.CallExpr) (acquire, release bool) {
	switch {
	case methodOn(info, call, "sync", "Mutex", "Lock"),
		methodOn(info, call, "sync", "RWMutex", "Lock"),
		methodOn(info, call, "sync", "RWMutex", "RLock"):
		return true, false
	case methodOn(info, call, "sync", "Mutex", "Unlock"),
		methodOn(info, call, "sync", "RWMutex", "Unlock"),
		methodOn(info, call, "sync", "RWMutex", "RUnlock"):
		return false, true
	}
	return false, false
}

// lockObj resolves the declared object (field or variable) a mutex method
// is invoked on, the identity lock ordering is tracked by.
func lockObj(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return lockRecvObj(info, sel.X)
}

func lockRecvObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return s.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return lockRecvObj(info, e.X)
	case *ast.StarExpr:
		return lockRecvObj(info, e.X)
	}
	return nil
}

// lockName renders a lock object with its declaration site, which
// disambiguates the many fields named "mu".
func (lo *lockOrderState) lockName(obj types.Object) string {
	pos := lo.p.Fset.Position(obj.Pos())
	return fmt.Sprintf("%q (%s:%d)", obj.Name(), filepath.Base(pos.Filename), pos.Line)
}

// contexts returns fn's acquire contexts: the main body plus every
// function literal body, each walked without descending into nested
// literals.
func contexts(fn *Function) []ast.Node {
	out := []ast.Node{fn.Decl.Body}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// walkContext visits ctx's nodes in source order without entering nested
// function literals.
func walkContext(ctx ast.Node, visit func(ast.Node) bool) {
	first := true
	ast.Inspect(ctx, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if first {
			first = false
			return visit(n)
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// collectAcquires records fn's directly acquired locks (all contexts).
func (lo *lockOrderState) collectAcquires(fn *Function) {
	info := fn.Pkg.Info
	set := map[types.Object]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if acquire, _ := lockCallKind(info, call); acquire {
			if obj := lockObj(info, call); obj != nil {
				set[obj] = true
			}
		}
		return true
	})
	lo.acquires[fn] = set
}

// propagate closes the may-acquire sets over the call graph to a fixpoint.
func (lo *lockOrderState) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range lo.p.Graph.Sorted {
			set := lo.acquires[fn]
			for _, e := range fn.Calls {
				for obj := range lo.acquires[e.Callee] {
					if !set[obj] {
						set[obj] = true
						changed = true
					}
				}
			}
		}
	}
}

// record notes an ordered acquisition (held, then acquired) at pos.
func (lo *lockOrderState) record(held, acquired types.Object, pos token.Pos, via string) {
	if held == acquired {
		return
	}
	key := [2]types.Object{held, acquired}
	if _, seen := lo.orders[key]; seen {
		return
	}
	lo.orders[key] = &lockWitness{pos: pos, via: via}
	lo.orderKeys = append(lo.orderKeys, key)
}

// collectPairs simulates fn's contexts textually, tracking the held set
// and recording ordered pairs, including those induced by calling a
// function whose may-acquire set is non-empty while holding a lock.
func (lo *lockOrderState) collectPairs(fn *Function) {
	info := fn.Pkg.Info
	for _, ctx := range contexts(fn) {
		var held []types.Object
		walkContext(ctx, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// A deferred unlock keeps the lock held to the end of the
				// context; a deferred module call still contributes pairs.
				if _, release := lockCallKind(info, n.Call); release {
					return false
				}
				return true
			case *ast.CallExpr:
				acquire, release := lockCallKind(info, n)
				switch {
				case acquire:
					obj := lockObj(info, n)
					if obj == nil {
						return true
					}
					for _, h := range held {
						lo.record(h, obj, n.Pos(), "")
					}
					held = append(held, obj)
				case release:
					obj := lockObj(info, n)
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == obj {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				default:
					if len(held) == 0 {
						return true
					}
					for _, e := range fn.Calls {
						if e.Site != n.Lparen {
							continue
						}
						callees := lo.sortedAcquires(e.Callee)
						for _, obj := range callees {
							for _, h := range held {
								lo.record(h, obj, n.Pos(), " via call to "+e.Callee.DisplayName())
							}
						}
					}
				}
			}
			return true
		})
	}
}

// sortedAcquires returns callee's may-acquire set in deterministic
// (declaration position) order.
func (lo *lockOrderState) sortedAcquires(callee *Function) []types.Object {
	v, ok := lo.p.Facts.Get(callee.Obj, acquiresFact)
	if !ok {
		return nil
	}
	set := v.(map[types.Object]bool)
	objs := make([]types.Object, 0, len(set))
	for obj := range set {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}

// reportConflicts emits one diagnostic per lock pair seen in both orders,
// at the earlier witness.
func (lo *lockOrderState) reportConflicts() {
	reported := map[[2]types.Object]bool{}
	for _, key := range lo.orderKeys {
		rev := [2]types.Object{key[1], key[0]}
		if reported[key] || reported[rev] {
			continue
		}
		w, wRev := lo.orders[key], lo.orders[rev]
		if wRev == nil {
			continue
		}
		reported[key], reported[rev] = true, true
		first := key
		a, b := w, wRev
		if posLess(lo.p.Fset.Position(wRev.pos), lo.p.Fset.Position(w.pos)) {
			first = rev
			a, b = wRev, w
		}
		otherPos := lo.p.Fset.Position(b.pos)
		lo.p.Reportf(a.pos,
			"lock order inconsistency: %s acquired while holding %s%s, but the opposite order occurs at %s:%d%s",
			lo.lockName(first[1]), lo.lockName(first[0]), a.via,
			filepath.Base(otherPos.Filename), otherPos.Line, b.via)
	}
}

// posLess orders two positions by (filename, offset).
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Offset < b.Offset
}

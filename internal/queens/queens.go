// Package queens implements the N-queens backtracking tree, a second real
// workload exercising the same search API as the 15-puzzle: place one
// queen per row so that no two attack each other, exhaustively counting
// solutions.  Its trees are unstructured in the sense the paper cares
// about — subtree sizes under different first-row placements vary widely —
// and its total node count scales smoothly with N, which makes it a
// convenient mid-size workload for examples and integration tests.
package queens

// Node is a partial placement: queens fixed in rows 0..Row-1.
type Node struct {
	N    uint8  // board size
	Row  uint8  // next row to fill
	Cols uint32 // columns already attacked
	D1   uint32 // "/" diagonals attacked (row+col)
	D2   uint32 // "\" diagonals attacked (row-col+N-1)
}

// Domain is the N-queens search domain; it implements search.Domain[Node].
type Domain struct {
	N int
}

// New returns the N-queens domain; n must be between 1 and 16.
func New(n int) *Domain {
	if n < 1 || n > 16 {
		panic("queens: board size out of range [1,16]")
	}
	return &Domain{N: n}
}

// Root implements search.Domain.
func (d *Domain) Root() Node { return Node{N: uint8(d.N)} }

// Goal implements search.Domain: all rows filled.
func (d *Domain) Goal(n Node) bool { return n.Row == n.N }

// Expand implements search.Domain: try every non-attacked column of the
// next row.
func (d *Domain) Expand(n Node, buf []Node) []Node {
	if n.Row == n.N {
		return buf
	}
	for col := uint8(0); col < n.N; col++ {
		d1 := n.Row + col
		d2 := n.Row - col + n.N - 1
		if n.Cols&(1<<col) != 0 || n.D1&(1<<d1) != 0 || n.D2&(1<<d2) != 0 {
			continue
		}
		//lint:allow hotalloc expansion buffer is reused by the engine and reaches the branching factor
		buf = append(buf, Node{
			N:    n.N,
			Row:  n.Row + 1,
			Cols: n.Cols | 1<<col,
			D1:   n.D1 | 1<<d1,
			D2:   n.D2 | 1<<d2,
		})
	}
	return buf
}

package queens

import (
	"testing"

	"simdtree/internal/search"
)

// Known solution counts for N-queens.
var solutions = map[int]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724,
}

func TestSolutionCounts(t *testing.T) {
	for n, want := range solutions {
		r := search.DFS[Node](New(n))
		if r.Goals != want {
			t.Errorf("N=%d: %d solutions, want %d", n, r.Goals, want)
		}
	}
}

func TestNodeCountsGrow(t *testing.T) {
	prev := int64(0)
	for n := 4; n <= 10; n++ {
		r := search.DFS[Node](New(n))
		if r.Expanded <= prev {
			t.Errorf("N=%d: %d nodes, expected growth past %d", n, r.Expanded, prev)
		}
		prev = r.Expanded
	}
}

func TestExpandRespectsAttacks(t *testing.T) {
	d := New(8)
	root := d.Root()
	level1 := d.Expand(root, nil)
	if len(level1) != 8 {
		t.Fatalf("first row has %d placements, want 8", len(level1))
	}
	// After placing in column 0, the second row cannot use columns 0 or 1.
	level2 := d.Expand(level1[0], nil)
	for _, n := range level2 {
		col := -1
		for c := 0; c < 8; c++ {
			if n.Cols&(1<<c) != 0 && c != 0 {
				col = c
			}
		}
		if col == 0 || col == 1 {
			t.Errorf("second-row placement in attacked column %d", col)
		}
	}
	if len(level2) != 6 {
		t.Errorf("second row has %d placements, want 6", len(level2))
	}
}

func TestGoalOnlyAtFullBoard(t *testing.T) {
	d := New(4)
	if d.Goal(d.Root()) {
		t.Error("empty board is not a solution")
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, 17, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
}

package mimd

import (
	"testing"

	"simdtree/internal/search"
	"simdtree/internal/synthetic"
)

// TestWorkConservation verifies that every policy expands exactly the
// serial node count: work stealing moves nodes, never duplicates or drops
// them.
func TestWorkConservation(t *testing.T) {
	tree := synthetic.New(30000, 5)
	serial := search.DFS[synthetic.Node](tree)
	for _, pol := range []Policy{GRR, ARR, RP} {
		stats, err := Run[synthetic.Node](tree, Options{P: 32, Policy: pol, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if stats.W != serial.Expanded {
			t.Errorf("%v: W=%d, serial=%d", pol, stats.W, serial.Expanded)
		}
		if e := stats.Efficiency(); e <= 0 || e > 1 {
			t.Errorf("%v: efficiency %f out of range", pol, e)
		}
		if stats.StealSuccesses == 0 {
			t.Errorf("%v: no successful steals on a 32-processor run", pol)
		}
		if stats.StealSuccesses > stats.StealAttempts {
			t.Errorf("%v: more successes (%d) than attempts (%d)", pol, stats.StealSuccesses, stats.StealAttempts)
		}
	}
}

// TestSingleProcessor checks the degenerate machine: everything is useful
// computation, efficiency 1.
func TestSingleProcessor(t *testing.T) {
	tree := synthetic.New(500, 5)
	stats, err := Run[synthetic.Node](tree, Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.W != 500 {
		t.Errorf("W=%d, want 500", stats.W)
	}
	if e := stats.Efficiency(); e < 0.999 {
		t.Errorf("efficiency %f, want ~1", e)
	}
}

// TestDeterminism verifies repeated runs agree bit-for-bit.
func TestDeterminism(t *testing.T) {
	tree := synthetic.New(10000, 77)
	a, err := Run[synthetic.Node](tree, Options{P: 16, Policy: RP, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run[synthetic.Node](tree, Options{P: 16, Policy: RP, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
}

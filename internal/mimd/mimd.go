// Package mimd implements an asynchronous (MIMD) work-stealing simulator
// for the same tree-search workloads the SIMD engine runs.  The paper's
// headline claim (Sections 1 and 9) is that its SIMD load-balancing
// schemes scale no worse than the best receiver-initiated MIMD schemes;
// this package provides those MIMD schemes — global round robin (GRR),
// asynchronous round robin (ARR) and random polling (RP), following Kumar,
// Grama and Rao — so the claim can be tested head-to-head under an
// identical cost model.
//
// The simulation is event-driven over the same virtual clock: each
// processor expands nodes from its private DFS stack at Ucalc per node;
// when its stack drains it polls victims, one request per round trip of
// the topology's transfer latency, until a victim with a splittable stack
// answers with part of its work.  Unlike the SIMD machine there is no
// global synchronisation: only the two processors involved in a steal
// interact, which is exactly the advantage over SIMD the paper's
// introduction describes.
package mimd

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/search"
	"simdtree/internal/stack"
	"simdtree/internal/topology"
)

// Policy selects the victim-choice rule of an idle processor.
type Policy int

// Victim-selection policies.
const (
	// GRR uses a single global counter: steal target = counter++ mod P.
	GRR Policy = iota
	// ARR gives each processor its own round-robin counter.
	ARR
	// RP picks victims uniformly at random (seeded, deterministic).
	RP
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case GRR:
		return "GRR"
	case ARR:
		return "ARR"
	case RP:
		return "RP"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy recognises "GRR", "ARR" and "RP".
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "GRR":
		return GRR, nil
	case "ARR":
		return ARR, nil
	case "RP":
		return RP, nil
	}
	return 0, fmt.Errorf("mimd: unknown policy %q", name)
}

// Options configures a MIMD run.  The cost model mirrors the SIMD one: a
// node expansion costs NodeExpansion; one steal message costs
// TransferUnit * topology.TransferSteps(P) each way.
type Options struct {
	P             int
	Policy        Policy
	Topology      topology.Network // nil means hypercube
	NodeExpansion time.Duration    // Ucalc; 0 means 30ms (the paper's CM-2 value)
	TransferUnit  time.Duration    // per transfer step; 0 means 10ms
	Seed          uint64           // RP determinism
	MaxEvents     int              // safety valve; 0 means no limit
}

// Stats extends the shared metrics with steal accounting.
type Stats struct {
	metrics.Stats
	StealAttempts  int // requests sent
	StealSuccesses int // requests answered with work
}

type eventKind int

const (
	evExpand eventKind = iota // pe finishes one node expansion
	evSteal                   // steal request from `from` arrives at pe
	evReply                   // reply (possibly with work) arrives at pe
)

// event is a simulator occurrence ordered by virtual time.
type event[S any] struct {
	at   time.Duration
	kind eventKind
	pe   int // processor the event happens on
	from int // requester, for steal requests
	work *stack.Stack[S]
	seq  int // FIFO tie-break for determinism
}

// eventQueue is a deterministic min-heap over (at, seq).
type eventQueue[S any] []*event[S]

func (q eventQueue[S]) Len() int { return len(q) }
func (q eventQueue[S]) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue[S]) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue[S]) Push(x any)   { *q = append(*q, x.(*event[S])) }
func (q *eventQueue[S]) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// peState tracks one simulated processor.
type peState[S any] struct {
	stk      *stack.Stack[S]
	busy     bool          // an evExpand event is outstanding
	stealing bool          // a steal request or reply is in flight
	idleFrom time.Duration // when the processor last ran out of work
	rr       int           // ARR counter
}

// Run simulates an asynchronous work-stealing search of d and returns its
// statistics under the same efficiency accounting as the SIMD engine.
func Run[S any](d search.Domain[S], opts Options) (Stats, error) {
	if d == nil {
		return Stats{}, errors.New("mimd: nil domain")
	}
	if opts.P <= 0 {
		return Stats{}, fmt.Errorf("mimd: invalid processor count %d", opts.P)
	}
	topo := opts.Topology
	if topo == nil {
		topo = topology.Hypercube{}
	}
	ucalc := opts.NodeExpansion
	if ucalc <= 0 {
		ucalc = 30 * time.Millisecond
	}
	xferUnit := opts.TransferUnit
	if xferUnit <= 0 {
		xferUnit = 10 * time.Millisecond
	}
	latency := time.Duration(float64(xferUnit) * topo.TransferSteps(opts.P))
	if latency <= 0 {
		latency = time.Nanosecond
	}

	sim := &simulator[S]{
		d:        d,
		opts:     opts,
		ucalc:    ucalc,
		latency:  latency,
		pes:      make([]peState[S], opts.P),
		rngState: opts.Seed ^ 0x9e3779b97f4a7c15,
		splitter: stack.HalfStack[S]{},
	}
	for i := range sim.pes {
		sim.pes[i].stk = stack.New[S]()
		// ARR counters start staggered (the usual initialisation) so the
		// first polling wave does not converge on processor 0.
		sim.pes[i].rr = i + 1
	}
	sim.pes[0].stk.PushLevel([]S{d.Root()})
	sim.pes[0].busy = true
	sim.schedule(&event[S]{at: ucalc, kind: evExpand, pe: 0})
	// Every other processor starts idle and immediately begins polling.
	for i := 1; i < opts.P; i++ {
		sim.goIdle(i)
	}

	if err := sim.run(); err != nil {
		return sim.stats, err
	}
	sim.finish()
	return sim.stats, nil
}

type simulator[S any] struct {
	d            search.Domain[S]
	opts         Options
	ucalc        time.Duration
	latency      time.Duration
	pes          []peState[S]
	queue        eventQueue[S]
	seq          int
	now          time.Duration
	grr          int
	rngState     uint64
	stats        Stats
	splitter     stack.Splitter[S]
	workInFlight int // replies carrying work that are still travelling
	buf          []S
}

func (s *simulator[S]) schedule(e *event[S]) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

func (s *simulator[S]) run() error {
	events := 0
	for s.queue.Len() > 0 {
		if s.opts.MaxEvents > 0 && events >= s.opts.MaxEvents {
			return fmt.Errorf("mimd: exceeded MaxEvents=%d", s.opts.MaxEvents)
		}
		events++
		e := heap.Pop(&s.queue).(*event[S])
		s.now = e.at
		switch e.kind {
		case evExpand:
			s.handleExpand(e.pe)
		case evSteal:
			s.handleSteal(e.pe, e.from)
		case evReply:
			s.handleReply(e.pe, e.work)
		}
	}
	return nil
}

// handleExpand completes one node expansion on pe and decides its next
// action: expand again, or start stealing.
func (s *simulator[S]) handleExpand(pe int) {
	st := &s.pes[pe]
	node, ok := st.stk.Pop()
	if !ok {
		// Cannot happen — steals leave at least one node — but degrade
		// gracefully rather than corrupt the accounting.
		st.busy = false
		s.goIdle(pe)
		return
	}
	s.stats.W++
	if s.d.Goal(node) {
		s.stats.Goals++
	}
	s.buf = s.d.Expand(node, s.buf[:0])
	st.stk.PushLevelCopy(s.buf)
	if sz := st.stk.Size(); sz > s.stats.PeakStack {
		s.stats.PeakStack = sz
	}
	if !st.stk.Empty() {
		s.schedule(&event[S]{at: s.now + s.ucalc, kind: evExpand, pe: pe})
		return
	}
	st.busy = false
	s.goIdle(pe)
}

// goIdle marks pe idle and, if work exists (or is in flight) anywhere,
// sends a steal request.
func (s *simulator[S]) goIdle(pe int) {
	st := &s.pes[pe]
	if !st.stealing {
		st.idleFrom = s.now
	}
	victim := s.pickVictim(pe)
	if victim < 0 {
		st.stealing = false
		return
	}
	st.stealing = true
	s.stats.StealAttempts++
	s.schedule(&event[S]{at: s.now + s.latency, kind: evSteal, pe: victim, from: pe})
}

// pickVictim returns the next steal target for pe, or -1 when no work
// exists anywhere (termination for this processor).
func (s *simulator[S]) pickVictim(pe int) int {
	anyWork := s.workInFlight > 0
	if !anyWork {
		for i := range s.pes {
			if i != pe && !s.pes[i].stk.Empty() {
				anyWork = true
				break
			}
		}
	}
	if !anyWork {
		return -1
	}
	for {
		var v int
		switch s.opts.Policy {
		case GRR:
			v = s.grr % s.opts.P
			s.grr++
		case ARR:
			v = s.pes[pe].rr % s.opts.P
			s.pes[pe].rr++
		default: // RP
			v = int(splitmix64(&s.rngState) % uint64(s.opts.P))
		}
		if v != pe || s.opts.P == 1 {
			return v
		}
	}
}

// handleSteal processes a steal request arriving at victim from requester
// and sends back a reply, with work when the victim can split.
func (s *simulator[S]) handleSteal(victim, requester int) {
	vs := &s.pes[victim]
	e := &event[S]{at: s.now + s.latency, kind: evReply, pe: requester}
	if vs.stk.Splittable() {
		e.work = s.splitter.Split(vs.stk)
		s.stats.StealSuccesses++
		s.stats.Transfers++
		s.workInFlight++
		if n := e.work.Size(); n > s.stats.MaxTransfer {
			s.stats.MaxTransfer = n
		}
	}
	s.schedule(e)
}

// handleReply delivers a steal reply (with or without work) to pe.
func (s *simulator[S]) handleReply(pe int, w *stack.Stack[S]) {
	st := &s.pes[pe]
	if w != nil {
		s.workInFlight--
		st.stk.Append(w)
	}
	if !st.stk.Empty() {
		// The idle period ends now; charge it.
		s.stats.Tidle += s.now - st.idleFrom
		st.stealing = false
		st.busy = true
		s.schedule(&event[S]{at: s.now + s.ucalc, kind: evExpand, pe: pe})
		return
	}
	// Rejected: try the next victim.
	s.goIdle(pe)
}

// finish closes the books: processors that went idle and never received
// work again idle until the machine-wide finish time.
func (s *simulator[S]) finish() {
	s.stats.P = s.opts.P
	s.stats.Tpar = s.now
	s.stats.Tcalc = time.Duration(s.stats.W) * s.ucalc
	for i := range s.pes {
		st := &s.pes[i]
		if !st.busy && st.stk.Empty() && st.idleFrom < s.now {
			s.stats.Tidle += s.now - st.idleFrom
		}
	}
	// Everything that is neither computation nor idling is steal traffic;
	// report it in Tlb so Efficiency() keeps its Section 3.1 meaning.
	total := time.Duration(s.opts.P) * s.stats.Tpar
	if rest := total - s.stats.Tcalc - s.stats.Tidle; rest > 0 {
		s.stats.Tlb = rest
	}
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

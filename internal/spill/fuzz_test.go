package spill

import (
	"bytes"
	"testing"

	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// FuzzDecodeSpillSegment hammers the strict segment decoder: any input
// either decodes cleanly or returns a classified error — never a panic,
// never an unbounded allocation.  A successful decode must be canonical:
// re-encoding the decoded levels reproduces the input byte for byte.
func FuzzDecodeSpillSegment(f *testing.F) {
	valid := encodeSample()
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                 // truncated
	f.Add(valid[:len(valid)-1])                 // CRC clipped
	f.Add(append([]byte("NOPE"), valid[4:]...)) // bad magic
	f.Add([]byte(Magic))                        // magic only
	f.Add(reseal(valid, func(b []byte) []byte { // wrong version, valid CRC
		b[len(Magic)] = 0x7F
		return b
	}))
	f.Add(reseal(valid, func(b []byte) []byte { // trailing byte, valid CRC
		return append(b, 0x00)
	}))
	f.Add(reseal(valid, func(b []byte) []byte { // body bit flip, valid CRC
		b[len(b)/2] ^= 0x40
		return b
	}))

	codec := wire.SyntheticCodec{}
	f.Fuzz(func(t *testing.T, data []byte) {
		pe, seq, s, err := DecodeSegment(codec, data)
		if err != nil {
			return
		}
		if pe >= 1<<12 {
			// Re-encoding needs an arena of pe+1 PEs; skip absurd sizes —
			// the decode itself already proved panic-freedom.
			return
		}
		a := stack.NewArena[synthetic.Node](pe + 1)
		a.InstallFromStack(pe, s)
		re := AppendSegment(nil, codec, a, pe, seq, s.Depth())
		if !bytes.Equal(re, data) {
			t.Fatalf("decode→encode not canonical:\n in %x\nout %x", data, re)
		}
	})
}

package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"simdtree/internal/stack"
	"simdtree/internal/wire"
)

// Magic identifies a spill segment file.
const Magic = "SSPL"

// Version is the current segment format version.  Any change to the byte
// layout must increment it; the golden-file test in this package exists
// to make silent format drift impossible.
const Version = 1

// Sentinel decode errors.  Every malformed input maps to exactly one of
// these (possibly wrapped with detail); none of them is ever a panic.
var (
	ErrBadMagic  = errors.New("spill: not a spill segment")
	ErrVersion   = errors.New("spill: unsupported format version")
	ErrChecksum  = errors.New("spill: checksum mismatch")
	ErrTruncated = errors.New("spill: truncated")
	ErrCorrupt   = errors.New("spill: corrupt")
)

// maxP bounds the PE index a segment header may claim, mirroring the
// checkpoint format's machine-size bound, so a corrupt header cannot
// address absurd PEs.
const maxP = 1 << 20

// AppendSegment appends the encoding of one spill segment to buf and
// returns the extended buffer: the bottom k resident levels of PE pe,
// exactly as the arena holds them, framed as
//
//	"SSPL" | version byte | uvarint pe | uvarint seq |
//	uvarint level count | per level: uvarint node count + nodes |
//	CRC32-IEEE (little-endian) over everything before it
//
// The level framing is the canonical wire stack framing (bottom level
// first, no empty levels), so a segment is byte-for-byte reproducible
// from the stack contents alone.
func AppendSegment[S any](buf []byte, c wire.Codec[S], a *stack.Arena[S], pe int, seq uint64, k int) []byte {
	buf = append(buf, Magic...)
	buf = append(buf, Version)
	buf = binary.AppendUvarint(buf, uint64(pe))
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(k))
	a.ForEachBottomLevel(pe, k, func(lv []S) {
		buf = binary.AppendUvarint(buf, uint64(len(lv)))
		for _, n := range lv {
			buf = c.AppendNode(buf, n)
		}
	})
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// uvarint reads one canonically encoded uvarint, rejecting truncation,
// overflow and non-minimal encodings (the format is strict: one value,
// one byte sequence).
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if n < 0 {
			return 0, nil, fmt.Errorf("uvarint overflow: %w", ErrCorrupt)
		}
		return 0, nil, ErrTruncated
	}
	if n > 1 && b[n-1] == 0 {
		return 0, nil, fmt.Errorf("non-minimal uvarint: %w", ErrCorrupt)
	}
	return v, b[n:], nil
}

// DecodeSegment parses a segment encoded by AppendSegment, returning the
// PE it belongs to, its sequence number, and the evicted levels as a
// Stack (bottom level first).  Decoding is strict: bad magic, an unknown
// version, a CRC mismatch, truncation, zero-node levels, non-minimal
// varints and trailing bytes are all rejected with classified errors, and
// re-encoding the decoded levels reproduces the original bytes exactly.
func DecodeSegment[S any](c wire.Codec[S], b []byte) (pe int, seq uint64, s *stack.Stack[S], err error) {
	if len(b) < len(Magic)+1+4 {
		return 0, 0, nil, ErrTruncated
	}
	if string(b[:len(Magic)]) != Magic {
		return 0, 0, nil, ErrBadMagic
	}
	if b[len(Magic)] != Version {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrVersion, b[len(Magic)])
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return 0, 0, nil, ErrChecksum
	}
	r := body[len(Magic)+1:]
	peV, r, err := uvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if peV >= maxP {
		return 0, 0, nil, fmt.Errorf("PE %d out of range: %w", peV, ErrCorrupt)
	}
	seq, r, err = uvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	levels, r, err := uvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	// A segment holds at least one level, and every encoded node occupies
	// at least one byte, so counts beyond the remaining length are corrupt;
	// reject them before allocating.
	if levels == 0 || levels > uint64(len(r)) {
		return 0, 0, nil, fmt.Errorf("invalid level count %d: %w", levels, ErrCorrupt)
	}
	s = stack.New[S]()
	for l := uint64(0); l < levels; l++ {
		var count uint64
		count, r, err = uvarint(r)
		if err != nil {
			return 0, 0, nil, err
		}
		if count == 0 || count > uint64(len(r)) {
			return 0, 0, nil, fmt.Errorf("invalid node count %d: %w", count, ErrCorrupt)
		}
		lv := make([]S, 0, count)
		for i := uint64(0); i < count; i++ {
			var node S
			node, r, err = c.DecodeNode(r)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("node decode: %w: %v", ErrCorrupt, err)
			}
			lv = append(lv, node)
		}
		s.PushLevel(lv)
	}
	if len(r) != 0 {
		return 0, 0, nil, fmt.Errorf("%d trailing bytes: %w", len(r), ErrCorrupt)
	}
	return int(peV), seq, s, nil
}
